// Multi-scale structure exploration with OPTICS on top of the hybrid
// pipeline: one GPU-built neighbor table at eps_max, one OPTICS ordering,
// then DBSCAN-equivalent clusterings for any smaller eps extracted in
// microseconds — the full two-parameter "Computer-Aided Discovery" sweep
// from a single device pass.
//
//   $ ./build/examples/optics_explorer
#include <cstdio>
#include <vector>

#include "analysis/cluster_analysis.hpp"
#include "core/neighbor_table_builder.hpp"
#include "common/timer.hpp"
#include "cudasim/device.hpp"
#include "data/datasets.hpp"
#include "dbscan/optics.hpp"
#include "index/grid_index.hpp"

int main() {
  using namespace hdbscan;

  cudasim::Device device;
  const std::vector<Point2> points = data::make_dataset("SW1", 20'000);
  const float eps_max = 1.0f;
  const int minpts = 8;

  std::printf("SW1-like dataset, %zu points. Density map:\n\n",
              points.size());
  std::printf("%s\n", analysis::ascii_density_map(points, 64, 20).c_str());

  // One device pass: grid index + batched neighbor table at eps_max.
  WallTimer table_timer;
  const GridIndex index = build_grid_index(points, eps_max);
  NeighborTableBuilder builder(device);
  const NeighborTable table = builder.build(index, eps_max);
  std::printf("neighbor table at eps=%.2f: %zu pairs in %.3f s\n", eps_max,
              table.total_pairs(), table_timer.seconds());

  // One OPTICS ordering serves every eps' <= eps_max.
  WallTimer optics_timer;
  const OpticsResult ordering = optics(index.points, table, eps_max, minpts);
  std::printf("OPTICS ordering (minpts=%d) in %.3f s\n\n", minpts,
              optics_timer.seconds());

  std::printf("%8s %10s %10s %14s\n", "eps'", "clusters", "noise",
              "extract time");
  for (const float eps_prime : {0.2f, 0.35f, 0.5f, 0.7f, 1.0f}) {
    WallTimer extract_timer;
    const ClusterResult clusters =
        extract_dbscan_clustering(ordering, eps_prime);
    const double extract_s = extract_timer.seconds();
    std::printf("%8.2f %10d %10zu %11.1f us\n", eps_prime,
                clusters.num_clusters, clusters.noise_count(),
                extract_s * 1e6);
  }

  // Show the clustering at a mid scale, rendered in the terminal.
  const ClusterResult mid = extract_dbscan_clustering(ordering, 0.5f);
  std::printf("\nclusters at eps'=0.50 ('a' = largest, '.' = noise):\n\n%s\n",
              analysis::ascii_cluster_map(index.points, mid, 64, 20).c_str());

  const auto stats = analysis::compute_cluster_stats(index.points, mid);
  std::printf("top clusters by size:\n");
  for (std::size_t i = 0; i < stats.size() && i < 5; ++i) {
    std::printf("  #%zu: %6zu pts, centroid (%.1f, %.1f), rms radius %.2f\n",
                i, stats[i].size, stats[i].centroid.x, stats[i].centroid.y,
                stats[i].rms_radius);
  }
  return 0;
}
