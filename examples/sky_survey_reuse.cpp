// Galaxy-survey scenario: fix the linking length (eps) and sweep the
// density threshold (minpts) to pick out structures of different richness
// — the paper's data-reuse scheme (§VII-F): the neighbor table T depends
// only on eps, so it is built once and shared by every minpts run.
//
//   $ ./build/examples/sky_survey_reuse
#include <cstdio>
#include <vector>

#include "common/makespan.hpp"
#include "core/reuse.hpp"
#include "cudasim/device.hpp"
#include "data/datasets.hpp"

int main() {
  using namespace hdbscan;

  cudasim::Device device;
  const std::vector<Point2> points = data::make_dataset("SDSS1");
  std::printf("SDSS1-like galaxy sample: %zu points\n\n", points.size());

  const float eps = 0.5f;
  const std::vector<int> minpts_values{5,  10, 15, 20, 25, 30, 35, 40,
                                       45, 50, 55, 60, 65, 70, 75, 80};

  std::vector<ClusterResult> results;
  const ReuseReport report = cluster_minpts_sweep(
      device, points, eps, minpts_values, /*num_threads=*/4, {}, &results);

  std::printf("one neighbor table (eps=%.2f) built in %.3f s, reused %zu"
              " times:\n\n", eps, report.table_seconds, minpts_values.size());
  std::printf("%8s %10s %14s %16s\n", "minpts", "clusters", "largest",
              "clustered frac");
  for (std::size_t i = 0; i < minpts_values.size(); ++i) {
    const auto sizes = results[i].cluster_sizes();
    std::size_t largest = 0;
    for (const std::size_t s : sizes) largest = std::max(largest, s);
    std::printf("%8d %10d %14zu %15.1f%%\n", minpts_values[i],
                results[i].num_clusters, largest,
                100.0 * static_cast<double>(results[i].clustered_count()) /
                    static_cast<double>(points.size()));
  }

  std::printf("\nthroughput: %zu clusterings in %.3f s wall;"
              " a 16-core host would need ~%.3f s\n",
              minpts_values.size(), report.total_seconds,
              report.modeled_table_seconds +
                  makespan_seconds(report.variant_seconds, 16));
  std::printf(
      "Reading the sweep: low minpts keeps poor groups and filaments;"
      "\nraising it strips them away until only rich cluster cores"
      " survive.\n");
  return 0;
}
