// Computer-aided discovery on a space-weather-like dataset: sweep eps
// across a wide range with the multi-clustering pipeline and report how
// the cluster structure evolves — the paper's motivating scenario of
// "examining datasets at different densities and scales" (§III).
//
//   $ ./build/examples/space_weather_sweep
#include <cstdio>
#include <vector>

#include "common/env.hpp"
#include "core/pipeline.hpp"
#include "cudasim/device.hpp"
#include "data/datasets.hpp"

int main() {
  using namespace hdbscan;

  cudasim::Device device;
  const std::vector<Point2> points = data::make_dataset("SW1");
  std::printf("SW1-like ionospheric TEC dataset: %zu points\n\n",
              points.size());

  // The S2-style sweep: one DBSCAN variant per eps, minpts fixed at 4.
  std::vector<Variant> variants;
  for (float eps = 0.1f; eps <= 1.5f + 1e-6f; eps += 0.1f) {
    variants.push_back({eps, 4});
  }

  PipelineOptions options;
  options.pipelined = true;  // T of v_{i+1} builds while v_i clusters
  const PipelineReport report =
      run_multi_clustering(device, points, variants, options);

  std::printf("%6s %10s %12s %12s %12s\n", "eps", "clusters", "noise",
              "T time (s)", "DBSCAN (s)");
  for (const VariantTiming& t : report.variants) {
    std::printf("%6.2f %10d %12zu %12.3f %12.3f\n", t.variant.eps,
                t.num_clusters, t.noise_count, t.table_seconds,
                t.dbscan_seconds);
  }
  std::printf(
      "\npipeline processed %zu variants in %.3f s wall"
      " (%.1f variants/minute)\n",
      variants.size(), report.total_seconds,
      60.0 * static_cast<double>(variants.size()) / report.total_seconds);
  std::printf(
      "Reading the sweep: small eps fragments the ionospheric hotspots into"
      "\nmany dense cores; growing eps merges them until the receivers'"
      "\nregional structure chains into a handful of super-clusters.\n");
  return 0;
}
