// Quickstart: cluster a small 2-D dataset with HYBRID-DBSCAN.
//
//   $ ./build/examples/quickstart
//
// Walks through the whole public API surface in ~40 lines: create a
// simulated device, generate points, run hybrid_dbscan(), inspect labels.
#include <cstdio>

#include "core/hybrid_dbscan.hpp"
#include "cudasim/device.hpp"
#include "data/generators.hpp"

int main() {
  using namespace hdbscan;

  // 1. A simulated GPU (Tesla K20c-like by default — 5 GB, PCIe 2.0).
  cudasim::Device device;

  // 2. Some clustered data: 20k points in 12 Gaussian blobs + 10% noise.
  const std::vector<Point2> points = data::generate_gaussian_blobs(
      20'000, /*seed=*/42, /*num_blobs=*/12, /*sigma=*/0.25f,
      /*width=*/30.0f, /*height=*/30.0f, /*noise_fraction=*/0.10);

  // 3. Cluster. eps is the neighborhood radius, minpts the density
  //    threshold; timings report the phase breakdown of Algorithm 4.
  const float eps = 0.5f;
  const int minpts = 8;
  HybridTimings timings;
  const ClusterResult result =
      hybrid_dbscan(device, points, eps, minpts, &timings);

  // 4. Inspect the result. Labels are in input order; -1 means noise.
  std::printf("clustered %zu points with eps=%.2f minpts=%d\n", points.size(),
              eps, minpts);
  std::printf("  clusters: %d   noise points: %zu\n", result.num_clusters,
              result.noise_count());
  const auto sizes = result.cluster_sizes();
  for (std::size_t c = 0; c < sizes.size() && c < 15; ++c) {
    std::printf("  cluster %2zu: %6zu points\n", c, sizes[c]);
  }
  std::printf(
      "phases: index %.3f s | neighbor table %.3f s (modeled GPU %.3f s) | "
      "DBSCAN %.3f s\n",
      timings.index_seconds, timings.gpu_table_seconds,
      timings.modeled_gpu_table_seconds, timings.dbscan_seconds);
  std::printf("neighbor pairs shipped from the device: %llu (in %u batches)\n",
              static_cast<unsigned long long>(
                  timings.build_report.total_pairs),
              timings.build_report.batches_run);
  return 0;
}
