// Clustering your own data: load 2-D points from a CSV ("x,y" per line),
// cluster them, and write the labels next to the input.
//
//   $ ./build/examples/csv_clustering [points.csv [eps minpts]]
//
// Run with no arguments to see it on a generated demo file.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/hybrid_dbscan.hpp"
#include "cudasim/device.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"

int main(int argc, char** argv) {
  using namespace hdbscan;

  std::string path;
  float eps = 0.5f;
  int minpts = 8;
  if (argc >= 2) {
    path = argv[1];
    if (argc >= 4) {
      eps = std::strtof(argv[2], nullptr);
      minpts = std::atoi(argv[3]);
    }
  } else {
    // Demo mode: synthesize a dataset and write it where the labels will
    // also go, so the example is runnable with zero setup.
    path = "/tmp/hybrid_dbscan_demo.csv";
    const auto demo = data::generate_gaussian_blobs(
        10'000, 7, /*num_blobs=*/6, /*sigma=*/0.3f, 20.0f, 20.0f, 0.05);
    data::save_csv(path, demo);
    std::printf("no input given — wrote a demo dataset to %s\n", path.c_str());
  }

  const auto points = data::load_csv(path);
  if (points.empty()) {
    std::fprintf(stderr, "no points in %s\n", path.c_str());
    return 1;
  }
  std::printf("loaded %zu points from %s\n", points.size(), path.c_str());

  cudasim::Device device;
  HybridTimings timings;
  const ClusterResult result =
      hybrid_dbscan(device, points, eps, minpts, &timings);
  std::printf("eps=%.3f minpts=%d -> %d clusters, %zu noise (%.3f s)\n", eps,
              minpts, result.num_clusters, result.noise_count(),
              timings.total_seconds);

  const std::string out_path = path + ".labels";
  std::ofstream out(out_path);
  out << "# x,y,cluster (-1 = noise)\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    out << points[i].x << ',' << points[i].y << ',' << result.labels[i]
        << '\n';
  }
  std::printf("labels written to %s\n", out_path.c_str());
  return 0;
}
