// Ablation: multi-GPU neighbor-table construction (the scaling direction
// of Mr. Scan, the paper's citation [7]: a tree-based network of GPGPU
// nodes). The index is replicated per device and batches are interleaved
// across devices x streams; the modeled build time should scale down until
// fixed costs (index upload, estimation, host appends) dominate.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/neighbor_table_builder.hpp"
#include "index/grid_index.hpp"

int main() {
  using namespace hdbscan;
  bench::banner("Ablation — multi-GPU table construction",
                "paper §II-B [7] (Mr. Scan's GPU-per-node scaling)");

  const auto points = bench::load("SDSS3");
  const float eps = 0.11f;
  const GridIndex index = build_grid_index(points, eps);

  std::printf("\n  %8s %14s %12s %10s\n", "devices", "modeled (s)",
              "batches", "speedup");
  double baseline = 0.0;
  for (const int num_devices : {1, 2, 4, 8}) {
    std::vector<std::unique_ptr<cudasim::Device>> devices;
    std::vector<cudasim::Device*> ptrs;
    for (int d = 0; d < num_devices; ++d) {
      devices.push_back(std::make_unique<cudasim::Device>());
      ptrs.push_back(devices.back().get());
    }
    NeighborTableBuilder builder(ptrs);
    BuildReport report;
    (void)builder.build(index, eps, &report);
    if (num_devices == 1) baseline = report.modeled_table_seconds;
    std::printf("  %8d %14.3f %12u %9.2fx\n", num_devices,
                report.modeled_table_seconds, report.plan.num_batches,
                baseline / report.modeled_table_seconds);
  }
  std::printf(
      "\nExpected shape: near-linear modeled speedup for the device-bound"
      " portion,\nflattening as the replicated-index upload and host-side"
      " table construction\nbecome the bottleneck (Amdahl).\n");
  return 0;
}
