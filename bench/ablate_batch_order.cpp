// Ablation: strided vs contiguous batch-to-point assignment (paper §VI,
// Figure 2).
//
// The batching scheme assigns point i = gid * n_b + l to batch l, striding
// through the spatially sorted database so every batch samples the space
// uniformly and |R_l| stays balanced. The obvious alternative — contiguous
// chunks of the sorted database — concentrates whole hotspots into single
// batches and blows the per-batch buffer.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "cudasim/kernel.hpp"
#include "gpu/device_index.hpp"
#include "gpu/kernels.hpp"
#include "gpu/result_sink.hpp"
#include "index/grid_index.hpp"

namespace {

using namespace hdbscan;

/// Contiguous-chunk variant of the batched GPUCalcGlobal.
struct ContiguousBatchKernel {
  GridView view;
  float eps2;
  std::uint32_t begin, end;  // point-id range of this batch
  gpu::ResultSinkView sink;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t i = begin + ctx.global_id();
    if (i >= end) return;
    const Point2 point = view.points[i];
    std::array<std::uint32_t, 9> cells{};
    const unsigned n =
        get_neighbor_cells(view.params, view.params.linear_cell(point), cells);
    for (unsigned c = 0; c < n; ++c) {
      const CellRange range = view.cells[cells[c]];
      for (std::uint32_t a = range.begin; a < range.end; ++a) {
        const PointId candidate = view.lookup[a];
        if (dist2(point, view.points[candidate]) <= eps2) {
          sink.push({static_cast<PointId>(i), candidate}, ctx);
        }
      }
    }
  }
};

void print_stats(const char* label, const std::vector<std::uint64_t>& sizes) {
  RunningStats stats;
  for (const std::uint64_t s : sizes) stats.add(static_cast<double>(s));
  std::printf("  %-12s min %12s   max %12s   max/min %6.2f   cv %.3f\n",
              label, format_count(static_cast<std::uint64_t>(stats.min())).c_str(),
              format_count(static_cast<std::uint64_t>(stats.max())).c_str(),
              stats.max() / std::max(1.0, stats.min()),
              stats.stddev() / std::max(1e-9, stats.mean()));
}

}  // namespace

int main() {
  bench::banner("Ablation — strided vs contiguous batch assignment",
                "paper §VI / Figure 2 (strided keeps |R_l| balanced)");

  const auto points = bench::load("SW1");
  const float eps = 0.7f;
  const GridIndex index = build_grid_index(points, eps);
  cudasim::Device device = bench::make_device();
  cudasim::Stream stream(device);
  gpu::GridDeviceIndex dev_index(device, stream, index);
  stream.synchronize();
  const GridView view = dev_index.view();

  for (const std::uint32_t nb : {4u, 8u, 16u}) {
    std::printf("\n  n_b = %u\n", nb);
    // Strided (the paper's scheme).
    std::vector<std::uint64_t> strided_sizes;
    for (std::uint32_t l = 0; l < nb; ++l) {
      gpu::ResultSetDevice sink(device, 1);  // counting only
      gpu::run_calc_global(device, view, eps, {l, nb}, sink.view());
      strided_sizes.push_back(sink.count());
    }
    print_stats("strided", strided_sizes);

    // Contiguous chunks of the spatially sorted database.
    std::vector<std::uint64_t> contiguous_sizes;
    const std::uint32_t chunk = (view.num_points + nb - 1) / nb;
    for (std::uint32_t l = 0; l < nb; ++l) {
      const std::uint32_t begin = l * chunk;
      const std::uint32_t end = std::min(view.num_points, begin + chunk);
      if (begin >= end) {
        contiguous_sizes.push_back(0);
        continue;
      }
      gpu::ResultSetDevice sink(device, 1);
      cudasim::run_flat_kernel(
          device, (end - begin + 255) / 256, 256,
          ContiguousBatchKernel{view, eps * eps, begin, end, sink.view()});
      contiguous_sizes.push_back(sink.count());
    }
    print_stats("contiguous", contiguous_sizes);
  }
  std::printf(
      "\nExpected shape: strided batches stay within a few percent of each"
      " other\n(max/min ~ 1), so Eq. 1's small alpha suffices; contiguous"
      " batches swing by\nlarge factors on skewed data, which would force"
      " much larger buffers.\n");
  return 0;
}
