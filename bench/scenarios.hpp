// Experimental scenarios from the paper (Tables III and V).
//
// S1 (Table II): single kernel invocations, eps 0.2 on the ~2M-point
//   datasets (SW1, SDSS1) and 0.07 on the ~5M-point ones (SW4, SDSS2).
// S2 (Table III): per-dataset eps sweeps at minpts = 4 — one HYBRID-DBSCAN
//   execution per variant; also the workload of Figures 3 and 4.
// S3 (Table V): fixed eps per row, 16 minpts values, reusing one neighbor
//   table — the workload of Figures 5 and 6.
#pragma once

#include <string>
#include <vector>

namespace hdbscan::bench {

struct SweepScenario {
  std::string dataset;
  std::vector<float> eps_values;
  int minpts = 4;
};

/// Scenario S2 (Table III): eps sweeps, minpts = 4.
inline std::vector<SweepScenario> scenario_s2() {
  auto range = [](float lo, float hi, float step) {
    std::vector<float> v;
    for (float e = lo; e <= hi + 1e-6f; e += step) v.push_back(e);
    return v;
  };
  return {
      {"SW1", range(0.1f, 1.5f, 0.1f), 4},
      {"SW4", range(0.1f, 0.5f, 0.05f), 4},
      {"SDSS1", range(0.1f, 1.5f, 0.1f), 4},
      {"SDSS2", range(0.1f, 0.5f, 0.05f), 4},
      {"SDSS3", range(0.06f, 0.13f, 0.01f), 4},
  };
}

struct ReuseScenario {
  std::string dataset;
  float eps;
  std::vector<int> minpts_values;
};

/// Scenario S3 (Table V): fixed eps, 16 minpts values per row.
inline std::vector<ReuseScenario> scenario_s3() {
  const std::vector<int> sw{10,  20,  30,  40,  50,   60,   70,   80,
                            90,  100, 200, 400, 800,  1000, 2000, 3000};
  const std::vector<int> sdss1{5,  10, 15, 20, 25, 30, 35, 40,
                               45, 50, 55, 60, 65, 70, 75, 80};
  const std::vector<int> sdss2{5,  10, 20, 30, 40,  50,  60,  70,
                               80, 90, 100, 110, 120, 130, 140, 150};
  return {
      {"SW1", 0.3f, sw},    {"SW1", 0.5f, sw},    {"SW1", 0.7f, sw},
      {"SW4", 0.1f, sw},    {"SW4", 0.2f, sw},    {"SW4", 0.3f, sw},
      {"SDSS1", 0.3f, sdss1}, {"SDSS1", 0.5f, sdss1}, {"SDSS1", 0.7f, sdss1},
      {"SDSS2", 0.2f, sdss2}, {"SDSS2", 0.3f, sdss2}, {"SDSS2", 0.4f, sdss2},
      {"SDSS3", 0.07f, sdss1}, {"SDSS3", 0.11f, sdss1}, {"SDSS3", 0.15f, sdss1},
  };
}

/// Scenario S1 / Table II rows: dataset and the eps used for the kernel
/// efficiency comparison.
inline std::vector<std::pair<std::string, float>> scenario_s1() {
  return {{"SW1", 0.2f}, {"SW4", 0.07f}, {"SDSS1", 0.2f}, {"SDSS2", 0.07f}};
}

/// Table I rows: (dataset, eps) pairs for the R-tree fraction measurement.
inline std::vector<std::pair<std::string, float>> table1_rows() {
  return {{"SW1", 0.2f},   {"SW1", 1.4f},   {"SW4", 0.15f}, {"SW4", 0.45f},
          {"SDSS1", 0.2f}, {"SDSS1", 1.4f}, {"SDSS2", 0.15f},
          {"SDSS2", 0.45f}, {"SDSS3", 0.07f}, {"SDSS3", 0.12f}};
}

}  // namespace hdbscan::bench
