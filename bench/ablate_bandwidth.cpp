// Ablation: host-GPU link bandwidth (paper §VIII future work).
//
// "The performance of HYBRID-DBSCAN is likely to improve over CPU
// algorithms as host-GPU bandwidth increases (e.g., with NVLink)." We
// sweep the modeled pinned-transfer rate from PCIe 2.0 (6 GB/s) down to a
// degraded link and up through NVLink-class rates, and measure the wall
// time of the batched neighbor-table construction.
#include <cstdio>

#include "bench_common.hpp"
#include "core/neighbor_table_builder.hpp"
#include "index/grid_index.hpp"

int main() {
  using namespace hdbscan;
  bench::banner("Ablation — host-GPU bandwidth sweep",
                "paper §VIII (PCIe 2.0 -> NVLink prediction)");

  const auto points = bench::load("SW4");
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);

  std::printf("\n  %14s %12s %16s %14s\n", "pinned (GB/s)", "wall (s)",
              "transfer (s)", "pairs");
  for (const double gbps : {1.5, 3.0, 6.0, 12.0, 25.0, 50.0, 100.0}) {
    cudasim::DeviceConfig cfg;
    cfg.pcie_pinned_gbps = gbps;
    cfg.pcie_pageable_gbps = gbps / 2.0;
    cudasim::Device device(cfg, cudasim::SimulationOptions{});
    NeighborTableBuilder builder(device);
    BuildReport report;
    WallTimer t;
    (void)builder.build(index, eps, &report);
    std::printf("  %14.1f %12.3f %16.3f %14llu\n", gbps, t.seconds(),
                device.metrics().transfer_seconds,
                static_cast<unsigned long long>(report.total_pairs));
  }
  std::printf(
      "\nExpected shape: wall time falls as the link speeds up, then"
      " flattens once\nkernel execution (not the transfer) is the"
      " bottleneck — the paper's NVLink\nprediction. 'transfer (s)' is the"
      " summed modeled link time (overlapped across\nstreams, so wall"
      " shrinks less than transfer does).\n");
  return 0;
}
