// Table I: fraction of total sequential-DBSCAN response time spent
// searching the R-tree (minpts = 4). The paper measures 0.48-0.72 across
// these rows — the observation motivating the GPU offload of the
// neighborhood searches.
#include <cstdio>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "dbscan/dbscan.hpp"
#include "index/rtree.hpp"
#include "scenarios.hpp"

int main() {
  using namespace hdbscan;
  bench::banner("Table I — fraction of DBSCAN time in R-tree search",
                "Table I (paper: 0.480 .. 0.722, minpts = 4)");

  std::printf("\n%-8s %8s %12s %12s %10s\n", "Dataset", "eps", "total (s)",
              "search (s)", "fraction");

  std::string cached_name;
  std::vector<Point2> points;
  for (const auto& [name, eps] : bench::table1_rows()) {
    if (name != cached_name) {
      points = bench::load(name);
      cached_name = name;
    }
    const RTree rtree(points);
    TimeAccumulator search_time;
    WallTimer total_timer;
    const ClusterResult result =
        dbscan_rtree(points, eps, 4, rtree, &search_time);
    const double total_s = total_timer.seconds();
    const double frac = search_time.total_seconds() / total_s;
    std::printf("%-8s %8.2f %12.3f %12.3f %10.3f   (%d clusters)\n",
                name.c_str(), eps, total_s, search_time.total_seconds(), frac,
                result.num_clusters);
  }
  std::printf(
      "\nExpected shape: index search dominates (paper: 48%%-72%% of total"
      " response time).\n");
  return 0;
}
