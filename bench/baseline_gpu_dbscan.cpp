// Baseline comparison: HYBRID-DBSCAN vs in-GPU clustering (the
// CUDA-DClust / G-DBSCAN / Mr. Scan family the paper positions against,
// §II-B: "subclusters are formed and then are merged to form the final
// clusters").
//
// The in-GPU baseline transfers only labels (tiny D2H) but must re-run its
// whole pipeline for every parameter variant; HYBRID-DBSCAN ships the full
// neighbor list once per eps and then reuses it across minpts and pipelines
// across eps — the throughput argument of §III. Both sides use the same
// cost model for device work and measured host times elsewhere.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/makespan.hpp"
#include "core/hybrid_dbscan.hpp"
#include "core/reuse.hpp"
#include "gpu/gpu_dbscan.hpp"
#include "index/grid_index.hpp"
#include "scenarios.hpp"

int main() {
  using namespace hdbscan;
  bench::banner("Baseline — in-GPU DBSCAN vs HYBRID-DBSCAN",
                "paper §II-B/§III (throughput across variants)");

  const std::vector<int> minpts_sweep{10, 20,  30,  40,  50,   60,   70,  80,
                                      90, 100, 200, 400, 800, 1000, 2000, 3000};

  for (const char* name : {"SW1", "SDSS1", "SDSS3"}) {
    const auto points = bench::load(name);
    const float eps = name == std::string("SDSS3") ? 0.11f : 0.5f;
    const GridIndex index = build_grid_index(points, eps);

    // --- single variant ---
    cudasim::Device device_a = bench::make_device();
    gpu::GpuDbscanReport gpu_report;
    const ClusterResult in_gpu =
        gpu::gpu_dbscan(device_a, index, eps, 4, &gpu_report);

    cudasim::Device device_b = bench::make_device();
    HybridTimings hybrid_t;
    const ClusterResult hybrid =
        hybrid_dbscan(device_b, points, eps, 4, &hybrid_t);

    std::printf("\n  [%s eps=%.2f]  single variant (minpts=4):\n", name, eps);
    std::printf("    in-GPU DBSCAN:  %7.3f s modeled (%u propagation iters,"
                " D2H %s)\n",
                gpu_report.modeled_seconds, gpu_report.propagation_iterations,
                format_bytes(gpu_report.d2h_bytes).c_str());
    std::printf("    HYBRID-DBSCAN:  %7.3f s modeled (D2H %s of pairs)\n",
                hybrid_t.modeled_total_seconds,
                format_bytes(hybrid_t.build_report.total_pairs *
                             sizeof(NeighborPair))
                    .c_str());
    std::printf("    clusters: %d vs %d\n", in_gpu.num_clusters,
                hybrid.num_clusters);

    // --- 16-variant minpts sweep (scenario S3's workload) ---
    double gpu_sweep_s = 0.0;
    cudasim::Device device_c = bench::make_device();
    for (const int minpts : minpts_sweep) {
      gpu::GpuDbscanReport r;
      (void)gpu::gpu_dbscan(device_c, index, eps, minpts, &r);
      gpu_sweep_s += r.modeled_seconds;
    }

    cudasim::Device device_d = bench::make_device();
    const ReuseReport reuse =
        cluster_minpts_sweep(device_d, points, eps, minpts_sweep, 1);
    const double hybrid_sweep_s =
        reuse.modeled_table_seconds +
        makespan_seconds(reuse.variant_seconds, 16);

    std::printf("  16-variant minpts sweep:\n");
    std::printf("    in-GPU DBSCAN:  %7.3f s (re-runs everything per"
                " variant)\n", gpu_sweep_s);
    std::printf("    HYBRID reuse:   %7.3f s (one T + 16 host threads)"
                "  -> %.1fx\n",
                hybrid_sweep_s, gpu_sweep_s / hybrid_sweep_s);
  }
  std::printf(
      "\nExpected shape: the in-GPU baseline wins single variants (tiny"
      " label-only\nD2H), and its edge shrinks or flips on the minpts sweep"
      " where HYBRID-DBSCAN\nreuses one T across all 16 variants — most"
      " clearly on the skewed SW- data,\nwhere label propagation needs"
      " several times more iterations. The baseline's\niteration count is"
      " data-dependent and it can reuse nothing across eps, which\nis the"
      " paper's broader throughput argument for the hybrid design.\n");
  return 0;
}
