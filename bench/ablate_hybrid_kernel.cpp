// Ablation: the paper's future-work kernel split — "combine the two
// approaches such that GPUCalcShared processes the dense regions of a
// dataset and GPUCalcGlobal processes the remainder" (§VII-C).
//
// Cells with occupancy >= threshold go to the shared (block-per-cell)
// kernel; the remaining points go to a global-memory kernel that skips
// dense-cell points. We verify the union covers exactly the full result
// and compare modeled GPU times.
#include <array>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "core/estimator.hpp"
#include "cudasim/kernel.hpp"
#include "gpu/device_index.hpp"
#include "gpu/kernels.hpp"
#include "gpu/result_sink.hpp"
#include "index/grid_index.hpp"

namespace {

using namespace hdbscan;

/// GPUCalcGlobal restricted to points whose home cell is NOT dense.
struct SparseOnlyKernelBody {
  GridView view;
  float eps2;
  const std::uint8_t* dense_cell;
  gpu::ResultSinkView sink;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t i = ctx.global_id();
    if (i >= view.num_points) return;
    const Point2 point = view.points[i];
    ctx.count_global_bytes(sizeof(Point2));
    const std::uint32_t home = view.params.linear_cell(point);
    if (dense_cell[home] != 0) return;  // covered by the shared kernel
    std::array<std::uint32_t, 9> cells{};
    const unsigned n = get_neighbor_cells(view.params, home, cells);
    for (unsigned c = 0; c < n; ++c) {
      const CellRange range = view.cells[cells[c]];
      ctx.count_global_bytes(sizeof(CellRange) +
                             std::uint64_t(range.count()) *
                                 (sizeof(PointId) + sizeof(Point2)));
      ctx.count_flops(std::uint64_t(range.count()) * 6);
      for (std::uint32_t a = range.begin; a < range.end; ++a) {
        const PointId candidate = view.lookup[a];
        if (dist2(point, view.points[candidate]) <= eps2) {
          sink.push({static_cast<PointId>(i), candidate}, ctx);
        }
      }
    }
  }
};

}  // namespace

int main() {
  bench::banner("Ablation — hybrid dense/sparse kernel split",
                "paper §VII-C / §VIII future work");

  for (const char* name : {"SW1", "SDSS1"}) {
    const auto points = bench::load(name);
    const float eps = 0.5f;
    const GridIndex index = build_grid_index(points, eps);

    cudasim::Device device = bench::make_device();
    cudasim::Stream stream(device);
    gpu::GridDeviceIndex dev_index(device, stream, index);
    stream.synchronize();
    const GridView view = dev_index.view();

    const auto est = estimate_result_size(device, view, eps, 1.0);
    const std::uint64_t cap = est.estimated_total + 1024;

    // Baselines.
    gpu::ResultSetDevice sink(device, cap);
    const auto global_all =
        gpu::run_calc_global(device, view, eps, {}, sink.view());
    const std::uint64_t expected_pairs = sink.count();
    sink.reset();
    const auto shared_all = gpu::run_calc_shared(
        device, view, index.nonempty_cells.data(),
        static_cast<std::uint32_t>(index.nonempty_cells.size()), eps,
        sink.view());

    std::printf("\n  [%s eps=%.2f]  max cell occupancy = %u\n", name, eps,
                index.max_cell_occupancy);
    std::printf("  %-22s %12s %14s\n", "variant", "model (ms)", "pairs");
    std::printf("  %-22s %12.3f %14s\n", "global only",
                global_all.modeled_seconds * 1e3,
                format_count(expected_pairs).c_str());
    std::printf("  %-22s %12.3f %14s\n", "shared only",
                shared_all.modeled_seconds * 1e3,
                format_count(sink.count()).c_str());

    for (const std::uint32_t threshold : {16u, 32u, 64u, 128u, 256u}) {
      // Partition the schedule.
      std::vector<std::uint32_t> dense_schedule;
      std::vector<std::uint8_t> dense_mask(index.cells.size(), 0);
      for (const std::uint32_t cell : index.nonempty_cells) {
        if (index.cells[cell].count() >= threshold) {
          dense_schedule.push_back(cell);
          dense_mask[cell] = 1;
        }
      }
      sink.reset();
      double model_ms = 0.0;
      if (!dense_schedule.empty()) {
        const auto s = gpu::run_calc_shared(
            device, view, dense_schedule.data(),
            static_cast<std::uint32_t>(dense_schedule.size()), eps,
            sink.view());
        model_ms += s.modeled_seconds * 1e3;
      }
      const unsigned grid_dim = (view.num_points + 255) / 256;
      const auto g = cudasim::run_flat_kernel(
          device, grid_dim, 256,
          SparseOnlyKernelBody{view, eps * eps, dense_mask.data(),
                               sink.view()});
      model_ms += g.modeled_seconds * 1e3;
      const bool complete = !sink.overflowed() && sink.count() == expected_pairs;
      std::printf("  split @ occupancy %-4u %12.3f %14s %s (%zu dense cells)\n",
                  threshold, model_ms, format_count(sink.count()).c_str(),
                  complete ? "OK " : "MISMATCH", dense_schedule.size());
    }
  }
  std::printf(
      "\nExpected shape: on skewed SW- data a split threshold can approach"
      " or beat\nglobal-only (dense cells amortize their block well); on"
      " uniform SDSS- data\nthe split buys nothing (paper: shared kernel"
      " loses badly there).\n");
  return 0;
}
