// Ablation: the over-estimation factor alpha (paper Eq. 1, §VI).
//
// alpha trades pinned-memory over-allocation and batch count against the
// risk of result-buffer overflow when the 1%-sample estimate is off.
// The paper picks alpha = 0.05 (doubled for small/noisy estimates).
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "core/neighbor_table_builder.hpp"
#include "index/grid_index.hpp"

int main() {
  using namespace hdbscan;
  bench::banner("Ablation — over-estimation factor alpha (Eq. 1)",
                "paper §VI (alpha = 0.05, x2 for small result sets)");

  const auto points = bench::load("SW1");
  const float eps = 0.7f;
  const GridIndex index = build_grid_index(points, eps);

  std::printf("\n  %7s %6s %14s %9s %10s %10s %10s\n", "alpha", "n_b",
              "buffer (MiB)", "batches", "splits", "wall (s)", "pinned(s)");

  for (const double alpha : {0.0, 0.01, 0.05, 0.10, 0.25, 0.50}) {
    cudasim::Device device = bench::make_device();
    BatchPolicy policy;
    policy.alpha = alpha;
    policy.sample_fraction = 0.01;  // the paper's noisy 1% estimate
    NeighborTableBuilder builder(device, policy);
    BuildReport report;
    WallTimer t;
    (void)builder.build(index, eps, &report);
    std::printf("  %7.2f %6u %14.2f %9u %10u %10.3f %10.3f\n", alpha,
                report.plan.num_batches,
                static_cast<double>(report.plan.buffer_pairs) *
                    sizeof(NeighborPair) / double(1 << 20),
                report.batches_run, report.overflow_splits, t.seconds(),
                device.metrics().pinned_alloc_seconds);
  }
  std::printf(
      "\nExpected shape: tiny alpha risks overflow splits (extra kernel"
      " launches);\nlarge alpha buys safety with bigger pinned buffers and"
      " allocation time.\nalpha ~ 0.05-0.10 is the sweet spot the paper"
      " chose.\n");
  return 0;
}
