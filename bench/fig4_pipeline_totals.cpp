// Figure 4 + Table IV / Scenario S2: total response time of
//   (a) the reference implementation run per variant,
//   (b) non-pipelined HYBRID-DBSCAN (variants back to back),
//   (c) pipelined HYBRID-DBSCAN (T construction of v_{i+1} overlaps
//       DBSCAN of v_i),
// over each dataset's full S2 variant set.
//
// Paper shape: pipelined 1.42-1.66x over non-pipelined and 3.36-5.13x over
// the reference, growing with dataset size (largest on SDSS3).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/makespan.hpp"
#include "core/hybrid_dbscan.hpp"
#include "core/pipeline.hpp"
#include "dbscan/dbscan.hpp"
#include "index/rtree.hpp"
#include "scenarios.hpp"

int main() {
  using namespace hdbscan;
  bench::banner(
      "Figure 4 + Table IV — multi-clustering pipeline totals (S2)",
      "Fig. 4 / Table IV (paper: pipelined 1.42-1.66x vs non-pipelined, "
      "3.36-5.13x vs reference)");

  std::printf("\n%-8s %10s %14s %12s | %11s %11s\n", "Dataset", "ref (s)",
              "non-pipe (s)", "pipe (s)", "pipe/ref", "pipe/nonp");

  for (const auto& scenario : bench::scenario_s2()) {
    const auto points = bench::load(scenario.dataset);
    std::vector<Variant> variants;
    for (const float eps : scenario.eps_values) {
      variants.push_back({eps, scenario.minpts});
    }

    // (a) reference: one sequential run per variant over a shared R-tree
    // (index construction excluded, as in the paper).
    const RTree rtree(points);
    WallTimer ref_timer;
    for (const Variant& v : variants) {
      (void)dbscan_rtree(points, v.eps, v.minpts, rtree);
    }
    const double ref_s = ref_timer.seconds();

    cudasim::Device device = bench::make_device();

    // (b)+(c): run the pipelined code path once (exercises the real
    // producer/consumer machinery and collects per-variant phase times),
    // then compose the modeled totals: device-side work uses the K20c
    // cost model, host-side DBSCAN is the measured time.
    PipelineOptions pipe_opts;
    pipe_opts.pipelined = true;
    const PipelineReport pipe =
        run_multi_clustering(device, points, variants, pipe_opts);

    std::vector<double> produce, consume;
    double nonpipe_s = 0.0;  // back-to-back: sum of both phases
    for (const VariantTiming& t : pipe.variants) {
      produce.push_back(t.modeled_table_seconds);
      consume.push_back(t.dbscan_seconds);
      nonpipe_s += t.modeled_table_seconds + t.dbscan_seconds;
    }
    const double pipe_s =
        pipeline_makespan_seconds(produce, consume, pipe_opts.num_consumers);

    std::printf("%-8s %10.2f %14.2f %12.2f | %10.2fx %10.2fx   (wall %.2f)\n",
                scenario.dataset.c_str(), ref_s, nonpipe_s, pipe_s,
                ref_s / pipe_s, nonpipe_s / pipe_s, pipe.total_seconds);
  }
  std::printf(
      "\nDevice-side work uses the K20c cost model; DBSCAN-over-T is"
      " measured host time;\n'pipe' overlaps T construction of v_{i+1} with"
      " DBSCAN of v_i (3 consumers), as in\nthe paper. 'wall' is the"
      " single-core simulator wall time. Expected shape:\npipe < non-pipe <"
      " ref (paper: 1.42-1.66x and 3.36-5.13x), gap widest on SDSS3.\n");

  // --- intra-variant streaming overlap --------------------------------
  // The paper's pipeline only overlaps *across* variants; a single
  // variant still pays build + cluster serially. Streaming mode unions
  // core-core edges on the builder's stream threads while the GPU fills
  // later batches, so one variant's wall time approaches
  // max(build, union) + a short resolution tail and T is never held in
  // memory. One representative (mid-sweep) variant per dataset.
  std::printf("\n%-8s %6s | %10s %10s %7s | %10s %10s %8s %8s\n", "Dataset",
              "eps", "serial (s)", "stream (s)", "ratio", "model ser",
              "model str", "overlap", "mem x");
  for (const auto& scenario : bench::scenario_s2()) {
    const auto points = bench::load(scenario.dataset);
    const float eps =
        scenario.eps_values[scenario.eps_values.size() / 2];
    const int minpts = scenario.minpts;

    cudasim::Device serial_dev = bench::make_device();
    HybridTimings serial_t;
    (void)hybrid_dbscan(serial_dev, points, eps, minpts, &serial_t, {},
                        ClusterMode::kBatchTable);
    const double serial_wall =
        serial_t.gpu_table_seconds + serial_t.dbscan_seconds;
    const std::uint64_t table_bytes =
        serial_t.build_report.total_pairs * sizeof(PointId) +
        points.size() * 2 * sizeof(std::uint32_t);

    cudasim::Device stream_dev = bench::make_device();
    HybridTimings stream_t;
    (void)hybrid_dbscan(stream_dev, points, eps, minpts, &stream_t, {},
                        ClusterMode::kStreaming);
    const double stream_wall =
        stream_t.gpu_table_seconds + stream_t.dbscan_seconds;

    std::printf(
        "%-8s %6.2f | %10.3f %10.3f %6.2fx | %10.4f %10.4f %8.2f %7.1fx\n",
        scenario.dataset.c_str(), eps, serial_wall, stream_wall,
        serial_wall / stream_wall,
        serial_t.index_seconds + serial_t.modeled_gpu_table_seconds +
            serial_t.dbscan_seconds,
        stream_t.modeled_total_seconds, stream_t.overlap_fraction,
        static_cast<double>(table_bytes) /
            static_cast<double>(
                std::max<std::size_t>(1, stream_t.peak_consumer_bytes)));
  }
  std::printf(
      "\n'serial' is one variant's build + cluster back to back; 'stream'"
      " unions CSR\nbatches on the builder's stream threads as they arrive"
      " (T never materialized).\n'overlap' is the share of union work"
      " hidden under the build; 'mem x' is the\nresident table footprint"
      " over the streaming consumer's high-water.\n");
  return 0;
}
