// Figure 4 + Table IV / Scenario S2: total response time of
//   (a) the reference implementation run per variant,
//   (b) non-pipelined HYBRID-DBSCAN (variants back to back),
//   (c) pipelined HYBRID-DBSCAN (T construction of v_{i+1} overlaps
//       DBSCAN of v_i),
// over each dataset's full S2 variant set.
//
// Paper shape: pipelined 1.42-1.66x over non-pipelined and 3.36-5.13x over
// the reference, growing with dataset size (largest on SDSS3).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/makespan.hpp"
#include "core/pipeline.hpp"
#include "dbscan/dbscan.hpp"
#include "index/rtree.hpp"
#include "scenarios.hpp"

int main() {
  using namespace hdbscan;
  bench::banner(
      "Figure 4 + Table IV — multi-clustering pipeline totals (S2)",
      "Fig. 4 / Table IV (paper: pipelined 1.42-1.66x vs non-pipelined, "
      "3.36-5.13x vs reference)");

  std::printf("\n%-8s %10s %14s %12s | %11s %11s\n", "Dataset", "ref (s)",
              "non-pipe (s)", "pipe (s)", "pipe/ref", "pipe/nonp");

  for (const auto& scenario : bench::scenario_s2()) {
    const auto points = bench::load(scenario.dataset);
    std::vector<Variant> variants;
    for (const float eps : scenario.eps_values) {
      variants.push_back({eps, scenario.minpts});
    }

    // (a) reference: one sequential run per variant over a shared R-tree
    // (index construction excluded, as in the paper).
    const RTree rtree(points);
    WallTimer ref_timer;
    for (const Variant& v : variants) {
      (void)dbscan_rtree(points, v.eps, v.minpts, rtree);
    }
    const double ref_s = ref_timer.seconds();

    cudasim::Device device = bench::make_device();

    // (b)+(c): run the pipelined code path once (exercises the real
    // producer/consumer machinery and collects per-variant phase times),
    // then compose the modeled totals: device-side work uses the K20c
    // cost model, host-side DBSCAN is the measured time.
    PipelineOptions pipe_opts;
    pipe_opts.pipelined = true;
    const PipelineReport pipe =
        run_multi_clustering(device, points, variants, pipe_opts);

    std::vector<double> produce, consume;
    double nonpipe_s = 0.0;  // back-to-back: sum of both phases
    for (const VariantTiming& t : pipe.variants) {
      produce.push_back(t.modeled_table_seconds);
      consume.push_back(t.dbscan_seconds);
      nonpipe_s += t.modeled_table_seconds + t.dbscan_seconds;
    }
    const double pipe_s =
        pipeline_makespan_seconds(produce, consume, pipe_opts.num_consumers);

    std::printf("%-8s %10.2f %14.2f %12.2f | %10.2fx %10.2fx   (wall %.2f)\n",
                scenario.dataset.c_str(), ref_s, nonpipe_s, pipe_s,
                ref_s / pipe_s, nonpipe_s / pipe_s, pipe.total_seconds);
  }
  std::printf(
      "\nDevice-side work uses the K20c cost model; DBSCAN-over-T is"
      " measured host time;\n'pipe' overlaps T construction of v_{i+1} with"
      " DBSCAN of v_i (3 consumers), as in\nthe paper. 'wall' is the"
      " single-core simulator wall time. Expected shape:\npipe < non-pipe <"
      " ref (paper: 1.42-1.66x and 3.36-5.13x), gap widest on SDSS3.\n");
  return 0;
}
