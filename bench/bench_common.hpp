// Shared bench utilities: device factory, banner, timing helpers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/timer.hpp"
#include "cudasim/device.hpp"
#include "data/datasets.hpp"

namespace hdbscan::bench {

/// Device in realistic mode: transfer and pinned-allocation throttling on,
/// so wall times include the modeled PCIe behaviour the paper's batching
/// scheme is designed around.
inline cudasim::Device make_device() {
  return cudasim::Device(cudasim::DeviceConfig{}, cudasim::SimulationOptions{});
}

inline void banner(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("HDBSCAN_SCALE=%.2f  trials=%d\n", env_scale(), env_trials());
  std::printf("==============================================================\n");
}

/// Loads a named dataset at its scaled default size and prints one line.
inline std::vector<Point2> load(const std::string& name) {
  std::vector<Point2> points = data::make_dataset(name);
  std::printf("  dataset %-6s |D| = %zu (paper: %zu)\n", name.c_str(),
              points.size(), data::dataset_info(name).paper_size);
  return points;
}

/// Runs fn env_trials() times and returns the mean seconds.
template <typename F>
double timed_mean(F&& fn) {
  const int trials = env_trials();
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    WallTimer timer;
    fn();
    total += timer.seconds();
  }
  return total / trials;
}

}  // namespace hdbscan::bench
