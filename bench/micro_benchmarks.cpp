// google-benchmark microbenchmarks for the core primitives: index build,
// point queries (grid vs R-tree), on-device sort, kernels, and DBSCAN
// over a neighbor table.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/device.hpp"
#include "cudasim/sort.hpp"
#include "data/generators.hpp"
#include "dbscan/dbscan.hpp"
#include "dbscan/neighbor_table.hpp"
#include "dbscan/union_find.hpp"
#include "gpu/kernels.hpp"
#include "gpu/result_sink.hpp"
#include "index/grid_index.hpp"
#include "index/rtree.hpp"

namespace {

using namespace hdbscan;

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  return opt;
}

const std::vector<Point2>& bench_points() {
  static const auto points = data::generate_space_weather(
      20000, 7, {.width = 20.0f, .height = 20.0f});
  return points;
}

void BM_GridIndexBuild(benchmark::State& state) {
  const auto points = data::generate_sky_survey(
      static_cast<std::size_t>(state.range(0)), 11,
      {.width = 20.0f, .height = 20.0f});
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_grid_index(points, 0.3f));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GridIndexBuild)->Arg(10000)->Arg(50000)->Arg(200000);

void BM_RTreeBuild(benchmark::State& state) {
  const auto points = data::generate_sky_survey(
      static_cast<std::size_t>(state.range(0)), 12,
      {.width = 20.0f, .height = 20.0f});
  for (auto _ : state) {
    benchmark::DoNotOptimize(RTree(points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBuild)->Arg(10000)->Arg(50000)->Arg(200000);

void BM_GridQuery(benchmark::State& state) {
  const auto& points = bench_points();
  const GridIndex index = build_grid_index(points, 0.3f);
  std::vector<PointId> out;
  std::size_t q = 0;
  for (auto _ : state) {
    grid_query(index, index.points[q % index.size()], 0.3f, out);
    benchmark::DoNotOptimize(out.data());
    q += 37;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GridQuery);

void BM_RTreeQuery(benchmark::State& state) {
  const auto& points = bench_points();
  const RTree tree(points);
  std::vector<PointId> out;
  std::size_t q = 0;
  for (auto _ : state) {
    out.clear();
    tree.query_circle(points[q % points.size()], 0.3f, out);
    benchmark::DoNotOptimize(out.data());
    q += 37;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeQuery);

void BM_SortByKey(benchmark::State& state) {
  cudasim::Device device({}, fast_options());
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(3);
  std::vector<NeighborPair> pairs(n);
  for (auto& p : pairs) {
    p.key = static_cast<std::uint32_t>(rng());
    p.value = static_cast<std::uint32_t>(rng());
  }
  cudasim::DeviceBuffer<NeighborPair> buf(device, n);
  for (auto _ : state) {
    state.PauseTiming();
    std::copy(pairs.begin(), pairs.end(), buf.unsafe_host_view().begin());
    state.ResumeTiming();
    cudasim::sort_by_key(device, buf, n,
                         [](const NeighborPair& p) { return p.key; });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortByKey)->Arg(100000)->Arg(1000000);

void BM_CalcGlobalKernel(benchmark::State& state) {
  const auto& points = bench_points();
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);
  cudasim::Device device({}, fast_options());
  const NeighborTable oracle = build_neighbor_table_host(index, eps);
  gpu::ResultSetDevice sink(device, oracle.total_pairs() + 1024);
  for (auto _ : state) {
    sink.reset();
    gpu::run_calc_global(device, GridView::of(index), eps, {}, sink.view());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_CalcGlobalKernel);

void BM_DbscanOverTable(benchmark::State& state) {
  const auto& points = bench_points();
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable table = build_neighbor_table_host(index, eps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbscan_neighbor_table(table, 4));
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_DbscanOverTable);

void BM_UnionFind(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Xoshiro256 rng(5);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ops(n);
  for (auto& op : ops) {
    op = {static_cast<std::uint32_t>(rng.below(n)),
          static_cast<std::uint32_t>(rng.below(n))};
  }
  for (auto _ : state) {
    UnionFind uf(n);
    for (const auto& [a, b] : ops) uf.unite(a, b);
    benchmark::DoNotOptimize(uf.find(0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnionFind)->Arg(100000)->Arg(1000000);

}  // namespace

BENCHMARK_MAIN();
