// Figure 6 / Scenario S3: speedup of 16-thread HYBRID-DBSCAN reusing a
// single neighbor table over the reference implementation clustering each
// of the 16 minpts variants individually.
//
// Paper shape: 27x-54x across the Table V rows — the headline result.
#include <cstdio>

#include "bench_common.hpp"
#include "common/makespan.hpp"
#include "core/reuse.hpp"
#include "dbscan/dbscan.hpp"
#include "index/rtree.hpp"
#include "scenarios.hpp"

int main() {
  using namespace hdbscan;
  bench::banner("Figure 6 — reuse speedup vs reference (S3)",
                "Fig. 6 (paper: 27x-54x with 16 threads and one T per eps)");

  std::printf("\n%-8s %6s | %12s %14s | %10s\n", "Dataset", "eps", "ref (s)",
              "hybrid16 (s)", "speedup");

  std::string cached_name;
  std::vector<Point2> points;
  double grand_ref = 0.0, grand_hybrid = 0.0;
  for (const auto& scenario : bench::scenario_s3()) {
    if (scenario.dataset != cached_name) {
      points = bench::load(scenario.dataset);
      cached_name = scenario.dataset;
    }

    // Reference: one full sequential run per minpts value (the index
    // searches repeat identically each time — exactly the waste the reuse
    // scheme removes).
    const RTree rtree(points);
    WallTimer ref_timer;
    for (const int minpts : scenario.minpts_values) {
      (void)dbscan_rtree(points, scenario.eps, minpts, rtree);
    }
    const double ref_s = ref_timer.seconds();

    // Hybrid: T once, then the 16 variants on 16 modeled workers.
    cudasim::Device device = bench::make_device();
    const ReuseReport report = cluster_minpts_sweep(
        device, points, scenario.eps, scenario.minpts_values, 1);
    const double hybrid_s = report.modeled_table_seconds +
                            makespan_seconds(report.variant_seconds, 16);

    grand_ref += ref_s;
    grand_hybrid += hybrid_s;
    std::printf("%-8s %6.2f | %12.2f %14.3f | %9.1fx\n",
                scenario.dataset.c_str(), scenario.eps, ref_s, hybrid_s,
                ref_s / hybrid_s);
  }
  std::printf("%-8s %6s | %12.2f %14.3f | %9.1fx\n", "TOTAL", "", grand_ref,
              grand_hybrid, grand_ref / grand_hybrid);
  std::printf(
      "\n'hybrid16' = one T build + modeled 16-worker makespan of the"
      " measured\nper-variant DBSCAN times. Expected shape: tens-fold"
      " speedups (paper: 27x-54x),\nlargest where the eps-neighborhoods are"
      " big and the R-tree re-search cost high.\n");
  return 0;
}
