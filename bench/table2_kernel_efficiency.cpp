// Table II / Scenario S1: kernel efficiency of GPUCalcGlobal vs
// GPUCalcShared — single kernel invocation per cell, no transfer overheads.
//
// Paper shape: GPUCalcGlobal wins on every dataset; GPUCalcShared launches
// far more threads (nGPU = non-empty cells x block size) and loses the
// most on uniformly distributed (SDSS-) data and small eps, where
// block-per-cell overhead dominates. We report the cost-model GPU time
// (this host has no GPU; see DESIGN.md) plus raw work counters.
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "core/estimator.hpp"
#include "gpu/device_index.hpp"
#include "gpu/kernels.hpp"
#include "gpu/result_sink.hpp"
#include "index/grid_index.hpp"
#include "scenarios.hpp"

int main() {
  using namespace hdbscan;
  bench::banner("Table II — kernel efficiency (S1)",
                "Table II (paper: global wins; shared worst on uniform data)");

  std::printf("\n%-8s %6s | %12s %14s | %12s %14s | %7s\n", "Dataset", "eps",
              "global (ms)", "global nGPU", "shared (ms)", "shared nGPU",
              "ratio");

  for (const auto& [name, eps] : bench::scenario_s1()) {
    const auto points = bench::load(name);
    const GridIndex index = build_grid_index(points, eps);

    cudasim::Device device = bench::make_device();
    cudasim::Stream stream(device);
    gpu::GridDeviceIndex device_index(device, stream, index);
    stream.synchronize();

    // Size the sink from an exact census so neither kernel overflows.
    const auto est =
        estimate_result_size(device, device_index.view(), eps, 1.0);
    gpu::ResultSetDevice sink(device, est.estimated_total + 1024);

    const auto global_stats = gpu::run_calc_global(
        device, device_index.view(), eps, {}, sink.view());
    sink.reset();
    const auto shared_stats = gpu::run_calc_shared(
        device, device_index.view(), device_index.schedule(),
        device_index.num_nonempty_cells(), eps, sink.view());

    std::printf("%-8s %6.2f | %12.3f %14s | %12.3f %14s | %6.1fx\n",
                name.c_str(), eps, global_stats.modeled_seconds * 1e3,
                format_count(global_stats.threads).c_str(),
                shared_stats.modeled_seconds * 1e3,
                format_count(shared_stats.threads).c_str(),
                shared_stats.modeled_seconds / global_stats.modeled_seconds);
  }
  std::printf(
      "\nExpected shape (paper): shared/global ratio > 1 everywhere;"
      " largest on the\nuniform SDSS- datasets (paper: 143%% slower on SW4,"
      " 2023%% slower on SDSS2).\nTimes are modeled Tesla-K20c seconds"
      " from counted work (no physical GPU).\n");
  return 0;
}
