// Figure 5 / Scenario S3: response time vs number of host threads when one
// neighbor table (fixed eps) is reused for 16 minpts variants.
//
// Paper shape: strong drop from 1 to ~8 threads, flattening after;
// speedups 4.4-6.1x (SW1) and 2.9-5.1x (SDSS1) at 16 threads. On this
// single-core host the per-variant durations are measured sequentially and
// scheduled onto k modeled workers (greedy FIFO, like the real pool); the
// concurrent code path itself is exercised once at 16 threads.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/makespan.hpp"
#include "core/reuse.hpp"
#include "scenarios.hpp"

int main() {
  using namespace hdbscan;
  bench::banner("Figure 5 — response time vs threads, reusing T (S3)",
                "Fig. 5 (paper: 2.9-6.1x from 16 threads)");

  const unsigned thread_counts[] = {1, 2, 4, 8, 12, 16};

  for (const auto& scenario : bench::scenario_s3()) {
    // Figure 5 plots SW1, SW4, SDSS1 and SDSS3 only (SDSS2 omitted there).
    if (scenario.dataset == "SDSS2") continue;
    const auto points = bench::load(scenario.dataset);
    cudasim::Device device = bench::make_device();

    // Measure per-variant durations (single worker) once.
    const ReuseReport report = cluster_minpts_sweep(
        device, points, scenario.eps, scenario.minpts_values, /*threads=*/1);
    // Exercise the concurrent path for real (correctness under threads).
    cudasim::Device device16 = bench::make_device();
    const ReuseReport wall16 = cluster_minpts_sweep(
        device16, points, scenario.eps, scenario.minpts_values, 16);

    std::printf("\n  [%s eps=%.2f]  T build (modeled): %.3f s, %zu variants\n",
                scenario.dataset.c_str(), scenario.eps,
                report.modeled_table_seconds,
                scenario.minpts_values.size());
    std::printf("  %8s %14s %14s %9s\n", "threads", "dbscan (s)", "total (s)",
                "speedup");
    double t1 = 0.0;
    for (const unsigned k : thread_counts) {
      const double dbscan_s = makespan_seconds(report.variant_seconds, k);
      const double total_s = report.modeled_table_seconds + dbscan_s;
      if (k == 1) t1 = total_s;
      std::printf("  %8u %14.3f %14.3f %8.2fx\n", k, dbscan_s, total_s,
                  t1 / total_s);
    }
    std::printf("  (16-thread wall on this 1-core host: %.3f s)\n",
                wall16.total_seconds);
  }
  std::printf(
      "\n'dbscan (s)' = modeled k-worker makespan of the measured"
      " per-variant durations.\nExpected shape: near-linear drop to ~8"
      " threads, flattening beyond; the gap\nbetween total and dbscan time"
      " is the one-off T construction.\n");
  return 0;
}
