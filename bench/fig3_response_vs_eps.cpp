// Figure 3 / Scenario S2: response time vs eps for HYBRID-DBSCAN (total,
// DBSCAN-over-T, GPU table construction) against the reference sequential
// R-tree implementation, minpts = 4.
//
// Paper shape: hybrid total < reference everywhere, including small eps
// and the small datasets; GPU-table time roughly tracks DBSCAN time.
#include <cstdio>

#include "bench_common.hpp"
#include "core/hybrid_dbscan.hpp"
#include "dbscan/dbscan.hpp"
#include "index/rtree.hpp"
#include "scenarios.hpp"

int main() {
  using namespace hdbscan;
  bench::banner("Figure 3 — response time vs eps (S2)",
                "Fig. 3 (paper: hybrid beats reference across the sweep)");

  for (const auto& scenario : bench::scenario_s2()) {
    const auto points = bench::load(scenario.dataset);
    const RTree rtree(points);
    cudasim::Device device = bench::make_device();

    std::printf("\n  [%s]  minpts = %d\n", scenario.dataset.c_str(),
                scenario.minpts);
    std::printf("  %6s %10s %13s %13s %11s %9s %12s\n", "eps", "ref (s)",
                "hybrid (s)", "dbscan (s)", "gpu T (s)", "speedup",
                "sim wall(s)");

    for (const float eps : scenario.eps_values) {
      const double ref_s = bench::timed_mean([&] {
        (void)dbscan_rtree(points, eps, scenario.minpts, rtree);
      });
      HybridTimings timings;
      const double wall_s = bench::timed_mean([&] {
        (void)hybrid_dbscan(device, points, eps, scenario.minpts, &timings);
      });
      // 'hybrid' and 'gpu T' are modeled response times on the paper's
      // hardware (K20c + PCIe 2.0); the simulator runs device code on the
      // host CPU, whose wall time is shown in the last column.
      std::printf("  %6.2f %10.3f %13.3f %13.3f %11.3f %8.2fx %12.3f\n", eps,
                  ref_s, timings.modeled_total_seconds,
                  timings.dbscan_seconds,
                  timings.index_seconds + timings.modeled_gpu_table_seconds,
                  ref_s / timings.modeled_total_seconds, wall_s);
    }
  }
  std::printf(
      "\n'hybrid'/'gpu T' use the K20c cost model for device work (no"
      " physical GPU here);\nDBSCAN-over-T and index build are measured"
      " host times. Expected shape (paper\nFig. 3): hybrid total under the"
      " reference curve at every eps; T-construction\nand DBSCAN phases"
      " comparable in cost.\n");
  return 0;
}
