// Ablation: number of CUDA-style streams used by the batching scheme.
//
// Paper §VI: "assigning each batch to one of 3 CUDA streams (as we found
// that more streams achieved no performance gain)". Streams overlap the
// result-set transfers and host-side table construction with kernel
// execution; once transfers are hidden, extra streams only add buffers.
// We run the sweep twice: with the default PCIe model and with a deliberately
// slow link that makes transfers dominant (where overlap matters most).
#include <cstdio>

#include "bench_common.hpp"
#include "core/neighbor_table_builder.hpp"
#include "index/grid_index.hpp"

int main() {
  using namespace hdbscan;
  bench::banner("Ablation — stream count in the batching scheme",
                "paper §VI (3 streams; more gained nothing)");

  const auto points = bench::load("SW4");
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);

  for (const double pinned_gbps : {6.0, 0.75}) {
    std::printf("\n  PCIe model: %.2f GB/s pinned (%s)\n", pinned_gbps,
                pinned_gbps > 1.0 ? "K20c-like default"
                                  : "transfer-dominant stress case");
    std::printf("  %8s %12s %14s %14s %16s\n", "streams", "wall (s)",
                "modeled (s)", "batches", "transfer (s)");
    for (const unsigned streams : {1u, 2u, 3u, 4u, 6u}) {
      cudasim::DeviceConfig cfg;
      cfg.pcie_pinned_gbps = pinned_gbps;
      cfg.pcie_pageable_gbps = pinned_gbps / 2.0;
      cudasim::Device device(cfg, cudasim::SimulationOptions{});
      BatchPolicy policy;
      policy.num_streams = streams;
      // Keep buffer sizing fixed across stream counts so only overlap
      // changes: force the static path with a constant buffer.
      policy.static_threshold_pairs = 1;
      policy.static_buffer_pairs = 2'000'000;
      NeighborTableBuilder builder(device, policy);
      BuildReport report;
      WallTimer t;
      (void)builder.build(index, eps, &report);
      std::printf("  %8u %12.3f %14.3f %14u %16.3f\n", streams, t.seconds(),
                  report.modeled_table_seconds, report.batches_run,
                  device.metrics().transfer_seconds);
    }
  }
  std::printf(
      "\nExpected shape: modeled build time drops from 1 stream to ~3 and"
      " flattens\n(the paper found no gain past 3); the drop is steeper on"
      " the slow link where\ntransfers dominate the per-stream timeline."
      " Wall time on this 1-core host is\nkernel-CPU-bound and flat.\n");
  return 0;
}
