// A/B benchmark of the neighbor-table build pipelines at Fig. 3 scenario
// sizes: the two-pass CSR builder (count -> scan -> fill, default) against
// the legacy pair-sort pipeline (kernel -> sort_by_key -> D2H), each under
// both scan modes (full pair evaluation vs the half-comparison scan that
// tests each candidate pair once and expands symmetry on the host). A
// four-variant reuse sweep on one device then shows the buffer pool paying
// the pinned page-lock cost only on the first variant.
//
// Expected shape: CSR wins both host wall-clock and modeled K20c device
// seconds — it drops the device sort, halves the D2H bytes (bare PointId
// values instead of (key, value) pairs), and issues no result-set atomics
// (pair mode pays one bulk reservation per 128-pair staged flush, itself
// >= 10x fewer atomics than the historical one-per-pair scheme).
//
// A sharded-scaling sweep (schema v4) then builds the same workloads
// spatially partitioned across k = 1..4 simulated devices (a grid-row slab
// plus its eps-halo per device; see core/sharded_build.hpp) and reports
// the modeled speedup, the halo-duplication overhead, and the cross-shard
// edge count; the bench fails unless k=4 reaches >= 3.2x modeled speedup
// on at least one workload.
//
// Emits BENCH_table_build.json (schema_version 8) alongside the
// human-readable table. The JSON is self-describing: a `scenario` block
// records the scale factor, trial count, and the exact generator seed and
// size of every dataset, so a stored result can be reproduced bit-for-bit.
// The service section (schema 5) serves a Zipf workload naive /
// cache-only / cache+coalesce, plus (schema 6) the same reuse config with
// request tracing fully enabled.
//
// The fused-clustering matrix (schema 7) runs batch / streaming / fused
// end-to-end DBSCAN across the grid and BVH index backends on a skewed
// and a uniform scenario. Its gate is the fused path's reason to exist:
// on the skewed workload, fused-BVH must beat streaming-grid on modeled
// response time while materializing zero table bytes and producing labels
// bit-identical to batch DBSCAN.
//
// The quality frontier (schema 8) prices the approximate clustering modes
// at 10x the fused-matrix sizes, where the exact build's quadratic
// neighbor search is the bottleneck the quality knob exists to break:
// exact vs subsampled SNG at s = 0.1 / 0.3 vs the cell graph on a skewed,
// a uniform, and a well-separated workload. Its gates: each approximate
// mode reaches >= 5x modeled speedup over exact on at least one workload,
// every approximate mode scores rand index >= 0.99 on the separated
// workload, and subsampled labels are bit-identical across two runs with
// the same seed.
//
// The run ends with the disabled-tracing overhead guard: it counts the
// TRACE sites one build executes, microbenchmarks the disabled fast path
// (one relaxed atomic load per site) with a request context installed,
// adds the per-thread-hop context capture/install cost, and fails the
// bench if the projected total exceeds 2% of the build's wall time.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "common/request_context.hpp"
#include "core/hybrid_dbscan.hpp"
#include "core/neighbor_table_builder.hpp"
#include "core/sharded_build.hpp"
#include "data/generators.hpp"
#include "dbscan/cluster_compare.hpp"
#include "dbscan/dbscan.hpp"
#include "dbscan/streaming_dbscan.hpp"
#include "index/grid_index.hpp"
#include "obs/trace.hpp"
#include "scenarios.hpp"
#include "service/scheduler.hpp"
#include "service/workload.hpp"

namespace {

struct ModeResult {
  std::string mode;
  std::string scan;               ///< "full" or "half"
  double wall_seconds = 0.0;
  double modeled_seconds = 0.0;
  double pairs_per_second = 0.0;  ///< total pairs / wall seconds
  double expand_seconds = 0.0;    ///< host half-table expansion (half only)
  std::uint64_t total_pairs = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t kernel_flops = 0;
  std::uint64_t kernel_global_bytes = 0;
};

ModeResult run_mode(cudasim::Device& device, const hdbscan::GridIndex& index,
                    float eps, hdbscan::TableBuildMode mode,
                    hdbscan::ScanMode scan) {
  using namespace hdbscan;
  ModeResult r;
  r.mode = mode == TableBuildMode::kCsrTwoPass ? "csr_two_pass" : "pair_sort";
  r.scan = scan == ScanMode::kHalf ? "half" : "full";
  BatchPolicy policy;
  policy.build_mode = mode;
  policy.scan_mode = scan;
  NeighborTableBuilder builder(device, policy);
  BuildReport report;
  // Min-of-N: the builds take tens of milliseconds at bench scale, where
  // scheduler noise swamps a mean-of-1; the minimum is the stable signal.
  // The modeled total also needs it — it folds in *measured* host append
  // time (charged to the stream timelines, as in the paper's overlap).
  const int repeats = std::max(3, hdbscan::env_trials());
  r.wall_seconds = 1e30;
  r.modeled_seconds = 1e30;
  for (int t = 0; t < repeats; ++t) {
    WallTimer timer;
    (void)builder.build(index, eps, &report);
    r.wall_seconds = std::min(r.wall_seconds, timer.seconds());
    r.modeled_seconds = std::min(r.modeled_seconds,
                                 report.modeled_table_seconds);
  }
  r.total_pairs = report.total_pairs;
  r.pairs_per_second =
      r.wall_seconds > 0.0
          ? static_cast<double>(report.total_pairs) / r.wall_seconds
          : 0.0;
  r.expand_seconds = report.expand_seconds;
  r.d2h_bytes = report.d2h_bytes;
  r.atomic_ops = report.atomic_ops;
  r.kernel_flops = report.kernel_flops;
  r.kernel_global_bytes = report.kernel_global_bytes;
  return r;
}

}  // namespace

int main() {
  using namespace hdbscan;
  bench::banner("Table-build A/B — two-pass CSR vs pair-sort",
                "Fig. 3 workload sizes; tentpole pipeline comparison");

  struct Row {
    std::string dataset;
    float eps;
    std::size_t n = 0;
    std::uint64_t seed = 0;
    std::vector<ModeResult> modes;
  };
  std::vector<Row> rows;

  // eps values from the Fig. 3 sweeps, chosen where the neighborhood
  // degree is representative (sparser settings make the fixed per-point
  // offsets array and per-thread flush dominate both pipelines equally).
  for (const auto& [dataset, eps] :
       std::vector<std::pair<std::string, float>>{{"SW1", 0.3f},
                                                  {"SDSS1", 0.5f}}) {
    const auto points = bench::load(dataset);
    const GridIndex index = build_grid_index(points, eps);
    cudasim::Device device = bench::make_device();

    Row row{dataset, eps, points.size(), data::dataset_seed(dataset), {}};
    for (const TableBuildMode mode :
         {TableBuildMode::kCsrTwoPass, TableBuildMode::kPairSort}) {
      for (const ScanMode scan : {ScanMode::kFull, ScanMode::kHalf}) {
        row.modes.push_back(run_mode(device, index, eps, mode, scan));
      }
    }

    std::printf("\n  [%s]  eps = %.2f  |T| = %llu pairs\n", dataset.c_str(),
                eps,
                static_cast<unsigned long long>(row.modes[0].total_pairs));
    std::printf("  %-13s %-5s %9s %10s %12s %12s %14s\n", "mode", "scan",
                "wall (s)", "model (s)", "flops", "D2H bytes", "pairs/s");
    for (const ModeResult& r : row.modes) {
      std::printf("  %-13s %-5s %9.3f %10.4f %12llu %12llu %14.3e\n",
                  r.mode.c_str(), r.scan.c_str(), r.wall_seconds,
                  r.modeled_seconds,
                  static_cast<unsigned long long>(r.kernel_flops),
                  static_cast<unsigned long long>(r.d2h_bytes),
                  r.pairs_per_second);
    }
    const ModeResult& csr_full = row.modes[0];
    const ModeResult& csr_half = row.modes[1];
    std::printf("  half-csr vs full-csr: %.2fx wall, %.2fx modeled,"
                " %.2fx flops, %.2fx D2H (equal output: %s)\n",
                csr_full.wall_seconds / csr_half.wall_seconds,
                csr_full.modeled_seconds / csr_half.modeled_seconds,
                static_cast<double>(csr_full.kernel_flops) /
                    static_cast<double>(csr_half.kernel_flops),
                static_cast<double>(csr_full.d2h_bytes) /
                    static_cast<double>(csr_half.d2h_bytes),
                csr_full.total_pairs == csr_half.total_pairs ? "yes" : "NO");
    rows.push_back(std::move(row));
  }

  // --- N-variant reuse sweep: pinned allocation paid once ------------
  // Four same-index builds on one device (an eps-reuse sweep's shape):
  // the buffer pool page-locks staging on the first variant only, so the
  // cumulative modeled pinned-alloc time must stay flat afterwards.
  struct SweepVariant {
    double pinned_alloc_seconds = 0.0;  ///< cumulative modeled page-lock
    std::uint64_t pinned_misses = 0;    ///< cumulative pool misses
  };
  std::vector<SweepVariant> sweep;
  {
    const auto points = bench::load("SW1");
    const float eps = 0.3f;
    const GridIndex index = build_grid_index(points, eps);
    cudasim::Device device = bench::make_device();
    NeighborTableBuilder builder(device, {});
    std::printf("\n  reuse sweep (4 variants, same device):\n");
    for (int v = 0; v < 4; ++v) {
      (void)builder.build(index, eps);
      sweep.push_back({device.metrics().pinned_alloc_seconds,
                       device.metrics().pool_pinned_misses});
      std::printf("    variant %d: cumulative pinned-alloc %.6f s"
                  " (%llu pool misses)\n",
                  v, sweep.back().pinned_alloc_seconds,
                  static_cast<unsigned long long>(sweep.back().pinned_misses));
    }
  }

  // --- intra-variant streaming overlap (single variant) ---------------
  // Serial: build T, then cluster it (build + DBSCAN, back to back).
  // Streaming: a StreamingDbscan consumer unions core-core edges on the
  // builder's stream threads while the GPU is still filling later
  // batches; T is never materialized. The streamed wall time should land
  // near max(build, union) plus a short resolution tail, with the
  // consumer's peak footprint far below the table's.
  struct StreamingCompare {
    double serial_wall = 1e30;    ///< build + DBSCAN-over-T, min-of-N
    double serial_modeled = 1e30; ///< modeled build + measured DBSCAN
    double stream_wall = 1e30;
    double stream_modeled = 1e30; ///< max(modeled build, union) + tail
    double overlap_fraction = 0.0;
    double streamed_fraction = 0.0;
    std::uint64_t table_bytes = 0;        ///< serial high-water (T resident)
    std::uint64_t consumer_peak_bytes = 0;  ///< streaming high-water
  } scomp;
  {
    const auto points = bench::load("SW1");
    const float eps = 0.3f;
    const int minpts = 4;
    const GridIndex index = build_grid_index(points, eps);
    // The wall gap between the two modes is a few ms on a ~20 ms run;
    // min-of-N needs more samples here than the build-only sections.
    const int repeats = std::max(7, env_trials());

    cudasim::Device serial_dev = bench::make_device();
    NeighborTableBuilder serial_builder(serial_dev, {});
    for (int t = 0; t < repeats; ++t) {
      WallTimer timer;
      BuildReport report;
      const NeighborTable table = serial_builder.build(index, eps, &report);
      const ClusterResult r = dbscan_neighbor_table(table, minpts);
      (void)r;
      WallTimer dbscan_timer;  // re-measure clustering alone for the model
      (void)dbscan_neighbor_table(table, minpts);
      const double dbscan_s = dbscan_timer.seconds();
      scomp.serial_wall = std::min(scomp.serial_wall, timer.seconds());
      scomp.serial_modeled = std::min(
          scomp.serial_modeled, report.modeled_table_seconds + dbscan_s);
      scomp.table_bytes =
          table.total_pairs() * sizeof(PointId) +
          table.num_points() * 2 * sizeof(std::uint32_t);
    }

    cudasim::Device stream_dev = bench::make_device();
    NeighborTableBuilder stream_builder(stream_dev, {});
    for (int t = 0; t < repeats; ++t) {
      WallTimer timer;
      StreamingDbscan consumer(index.size(), minpts);
      BuildReport report;
      stream_builder.build(index, eps, &report, &consumer,
                           /*materialize_table=*/false);
      const ClusterResult r = consumer.finalize();
      (void)r;
      const StreamingDbscan::Stats& st = consumer.stats();
      const double wall = timer.seconds();
      const double modeled =
          std::max(report.modeled_table_seconds,
                   st.max_thread_consume_seconds) +
          st.finalize_seconds;
      if (wall < scomp.stream_wall) {
        scomp.stream_wall = wall;
        scomp.stream_modeled = modeled;
        scomp.overlap_fraction = st.overlap_fraction();
        scomp.streamed_fraction = st.streamed_fraction();
        scomp.consumer_peak_bytes = consumer.peak_memory_bytes();
      }
    }

    std::printf("\n  single-variant streaming overlap (SW1, eps=%.2f,"
                " minpts=%d):\n", eps, minpts);
    std::printf("    serial (build + cluster): %.3f s wall, %.4f s modeled,"
                " %llu B table\n",
                scomp.serial_wall, scomp.serial_modeled,
                static_cast<unsigned long long>(scomp.table_bytes));
    std::printf("    streaming:                %.3f s wall, %.4f s modeled,"
                " %llu B consumer peak\n",
                scomp.stream_wall, scomp.stream_modeled,
                static_cast<unsigned long long>(scomp.consumer_peak_bytes));
    std::printf("    -> %.2fx wall, %.2fx modeled; overlap %.2f,"
                " streamed %.2f, memory %.1fx smaller\n",
                scomp.serial_wall / scomp.stream_wall,
                scomp.serial_modeled / scomp.stream_modeled,
                scomp.overlap_fraction, scomp.streamed_fraction,
                static_cast<double>(scomp.table_bytes) /
                    static_cast<double>(
                        std::max<std::uint64_t>(1,
                                                scomp.consumer_peak_bytes)));
  }

  // --- fused no-table clustering: backends x modes (schema 7) --------
  // End-to-end DBSCAN (index + neighbor search + labels) four ways on one
  // device: the batch table build (the paper's pipeline), streaming over
  // grid CSR batches, and the fused traversal on both index backends. The
  // skewed scenario is where the BVH earns its keep — overflowing hot
  // grid cells make the eps-cell stencil scan far more candidates than
  // the leaf-pruned tree descent — while the uniform scenario shows the
  // regime where the grid's O(1) cell lookup stays competitive.
  struct FusedCell {
    const char* config = "";
    double wall_seconds = 1e30;
    double modeled_seconds = 1e30;
    std::uint64_t d2h_bytes = 0;
    std::uint64_t peak_bytes = 0;  ///< resident table, or consumer peak
    bool table_materialized = true;
    bool labels_identical = true;  ///< vs the batch cell of the same row
  };
  struct FusedRow {
    std::string scenario;
    float eps = 0.0f;
    int minpts = 4;
    std::size_t n = 0;
    std::vector<FusedCell> cells;
  };
  std::vector<FusedRow> fused_rows;
  bool fused_ok = true;  // the skewed-workload gate, see below
  {
    const auto skewed_points = bench::load("SW1");
    const std::vector<Point2> uniform_points =
        data::generate_uniform(skewed_points.size(), 97, 10.0f, 10.0f);
    const int repeats = std::max(3, env_trials());
    const int minpts = 4;
    for (const auto& [scenario, pts] :
         std::vector<std::pair<std::string, const std::vector<Point2>*>>{
             {"skewed", &skewed_points}, {"uniform", &uniform_points}}) {
      const float eps = 0.3f;
      FusedRow row{scenario, eps, minpts, pts->size(), {}};

      struct Config {
        const char* name;
        ClusterMode mode;
        IndexBackend backend;
      };
      std::vector<std::int32_t> batch_labels;
      for (const Config cfg :
           {Config{"batch-grid", ClusterMode::kBatchTable, IndexBackend::kGrid},
            Config{"stream-grid", ClusterMode::kStreaming, IndexBackend::kGrid},
            Config{"fused-grid", ClusterMode::kFused, IndexBackend::kGrid},
            Config{"fused-bvh", ClusterMode::kFused, IndexBackend::kBvh}}) {
        FusedCell cell;
        cell.config = cfg.name;
        BatchPolicy policy;
        policy.index_backend = cfg.backend;
        cudasim::Device device = bench::make_device();
        for (int t = 0; t < repeats; ++t) {
          HybridTimings timings;
          WallTimer timer;
          const ClusterResult result = hybrid_dbscan(
              device, *pts, eps, minpts, &timings, policy, cfg.mode);
          cell.wall_seconds = std::min(cell.wall_seconds, timer.seconds());
          if (timings.modeled_total_seconds < cell.modeled_seconds) {
            cell.modeled_seconds = timings.modeled_total_seconds;
            cell.d2h_bytes = timings.build_report.d2h_bytes;
            cell.table_materialized =
                timings.build_report.table_materialized;
            cell.peak_bytes =
                cfg.mode == ClusterMode::kBatchTable
                    ? timings.build_report.total_pairs * sizeof(PointId) +
                          pts->size() * 2 * sizeof(std::uint32_t)
                    : timings.peak_consumer_bytes;
          }
          if (t == 0) {
            if (batch_labels.empty()) {
              batch_labels = result.labels;  // the batch cell runs first
            } else {
              cell.labels_identical = result.labels == batch_labels;
            }
          }
        }
        row.cells.push_back(cell);
      }

      std::printf("\n  fused matrix [%s, n=%zu, eps=%.2f, minpts=%d]:\n",
                  row.scenario.c_str(), row.n, eps, minpts);
      std::printf("  %-12s %9s %10s %12s %12s %6s %6s\n", "config",
                  "wall (s)", "model (s)", "D2H bytes", "peak bytes",
                  "table", "exact");
      for (const FusedCell& c : row.cells) {
        std::printf("  %-12s %9.3f %10.4f %12llu %12llu %6s %6s\n",
                    c.config, c.wall_seconds, c.modeled_seconds,
                    static_cast<unsigned long long>(c.d2h_bytes),
                    static_cast<unsigned long long>(c.peak_bytes),
                    c.table_materialized ? "yes" : "no",
                    c.labels_identical ? "yes" : "NO");
      }
      fused_rows.push_back(std::move(row));
    }

    // The gate: on the skewed workload the fused-BVH run must (a) beat
    // streaming-grid on modeled response time, (b) materialize no table,
    // and (c) label every point exactly like batch DBSCAN — on both
    // scenarios and both fused backends.
    const FusedRow& skewed = fused_rows.front();
    const FusedCell& stream_grid = skewed.cells[1];
    const FusedCell& fused_bvh = skewed.cells[3];
    for (const FusedRow& row : fused_rows) {
      for (const FusedCell& c : row.cells) {
        fused_ok = fused_ok && c.labels_identical;
        if (std::string_view(c.config).starts_with("fused")) {
          fused_ok = fused_ok && !c.table_materialized;
        }
      }
    }
    fused_ok =
        fused_ok && fused_bvh.modeled_seconds < stream_grid.modeled_seconds;
    std::printf(
        "  fused-BVH beats streaming-grid on the skewed workload with no"
        " table and exact labels: %s (%.4fs vs %.4fs, %.2fx)\n",
        fused_ok ? "PASS" : "FAIL", fused_bvh.modeled_seconds,
        stream_grid.modeled_seconds,
        stream_grid.modeled_seconds / fused_bvh.modeled_seconds);
  }

  // --- quality frontier: approximate modes at 10x n (schema 8) -------
  // Exact vs subsampled SNG (s = 0.1 / 0.3, fixed seed) vs the cell
  // graph, each end-to-end through hybrid_dbscan, at 10x the fused-matrix
  // point counts in the same areas — the density regime where the exact
  // build's quadratic neighbor search dominates and the quality knob
  // earns its keep. The skewed and uniform workloads show the throughput
  // frontier; the well-separated cluster grid (clusters of ~1500 points
  // on a 20-unit pitch, no inter-cluster edge possible at its eps) is
  // where any correct clustering recovers the exact partition, so its
  // rand-index gate is sharp rather than statistical. Each config runs
  // once: the gates read modeled seconds, which are deterministic, and
  // the subsampled determinism check needs a second run of s = 0.3 only.
  // Modeled seconds exclude the grid-index build — it is a function of
  // (dataset, eps) only, identical across every quality config, and the
  // single-device rows above exclude it as setup for the same reason.
  struct QualityCell {
    std::string config;
    float sample_rate = 1.0f;
    double wall_seconds = 0.0;
    double modeled_seconds = 0.0;
    double speedup = 1.0;          ///< exact modeled / this modeled
    double rand_vs_exact = 1.0;
    bool deterministic = true;     ///< same seed, two runs, same labels
    bool table_materialized = true;
    std::uint64_t pairs = 0;  ///< kernel pairs, or cell-graph distance tests
  };
  struct QualityRow {
    std::string scenario;
    float eps = 0.3f;
    int minpts = 4;
    std::size_t n = 0;
    std::vector<QualityCell> cells;
  };
  std::vector<QualityRow> quality_rows;
  bool quality_ok = true;
  {
    const std::size_t frontier_n = 10 * data::make_dataset("SW1").size();
    const auto skewed_points = data::make_dataset("SW1", frontier_n);
    const std::vector<Point2> uniform_points =
        data::generate_uniform(frontier_n, 97, 10.0f, 10.0f);
    // Well-separated by construction: clusters of ~1500 points jittered
    // over 2x2-unit boxes on a 20-unit grid pitch. At eps = 0.5 no pair
    // of clusters can ever share an edge.
    std::vector<Point2> separated_points;
    separated_points.reserve(frontier_n);
    {
      const std::size_t clusters =
          std::max<std::size_t>(1, frontier_n / 1500);
      const std::size_t side = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(clusters))));
      std::uint64_t s = 0x51f7eedull;
      const auto jitter = [&s] {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return 2.0f * static_cast<float>((s >> 33) & 0xffff) / 65536.0f;
      };
      for (std::size_t i = 0; i < frontier_n; ++i) {
        const std::size_t c = i % clusters;
        separated_points.push_back(
            {20.0f * static_cast<float>(c % side) + jitter(),
             20.0f * static_cast<float>(c / side) + jitter()});
      }
    }

    struct QualityWorkload {
      const char* scenario;
      const std::vector<Point2>* points;
      float eps;
      int minpts;
    };
    for (const QualityWorkload w :
         {QualityWorkload{"skewed", &skewed_points, 0.3f, 4},
          QualityWorkload{"uniform", &uniform_points, 0.3f, 4},
          QualityWorkload{"separated", &separated_points, 0.5f, 8}}) {
      QualityRow row{w.scenario, w.eps, w.minpts, w.points->size(), {}};

      const auto run_config = [&](const char* name, QualitySpec q,
                                  std::vector<std::int32_t>* labels_out) {
        QualityCell cell;
        cell.config = name;
        cell.sample_rate = q.sampled() ? q.sample_rate : 1.0f;
        BatchPolicy policy;
        policy.quality = q;
        cudasim::Device device = bench::make_device();
        HybridTimings timings;
        WallTimer timer;
        const ClusterResult result =
            hybrid_dbscan(device, *w.points, w.eps, w.minpts, &timings,
                          policy);
        cell.wall_seconds = timer.seconds();
        cell.modeled_seconds =
            timings.modeled_total_seconds - timings.index_seconds;
        cell.table_materialized = timings.build_report.table_materialized;
        cell.pairs = timings.build_report.total_pairs;
        if (labels_out != nullptr) *labels_out = result.labels;
        return cell;
      };

      std::vector<std::int32_t> exact_labels;
      row.cells.push_back(run_config("exact", {}, &exact_labels));

      const QualitySpec sub01{ClusterQuality::kSubsampled, 0.1f, 42};
      const QualitySpec sub03{ClusterQuality::kSubsampled, 0.3f, 42};
      std::vector<std::int32_t> labels;
      row.cells.push_back(run_config("subsampled-0.1", sub01, &labels));
      row.cells.back().rand_vs_exact = rand_index(labels, exact_labels);

      row.cells.push_back(run_config("subsampled-0.3", sub03, &labels));
      row.cells.back().rand_vs_exact = rand_index(labels, exact_labels);
      {
        std::vector<std::int32_t> replay;
        (void)run_config("subsampled-0.3", sub03, &replay);
        row.cells.back().deterministic = replay == labels;
      }

      row.cells.push_back(
          run_config("cellgraph", {ClusterQuality::kCellGraph}, &labels));
      row.cells.back().rand_vs_exact = rand_index(labels, exact_labels);

      const double exact_modeled = row.cells.front().modeled_seconds;
      for (QualityCell& cell : row.cells) {
        cell.speedup = exact_modeled / std::max(1e-12, cell.modeled_seconds);
      }

      std::printf(
          "\n  quality frontier [%s, n=%zu, eps=%.2f, minpts=%d]:\n",
          row.scenario.c_str(), row.n, row.eps, row.minpts);
      std::printf("  %-15s %9s %10s %8s %10s %6s %6s %14s\n", "config",
                  "wall (s)", "model (s)", "speedup", "rand idx", "det",
                  "table", "pairs");
      for (const QualityCell& c : row.cells) {
        std::printf(
            "  %-15s %9.3f %10.4f %7.2fx %10.6f %6s %6s %14llu\n",
            c.config.c_str(), c.wall_seconds, c.modeled_seconds, c.speedup,
            c.rand_vs_exact, c.deterministic ? "yes" : "NO",
            c.table_materialized ? "yes" : "no",
            static_cast<unsigned long long>(c.pairs));
      }
      quality_rows.push_back(std::move(row));
    }

    // The gates: each approximate mode must justify itself at 10x n with
    // >= 5x modeled speedup on at least one workload; on the separated
    // workload every approximate mode must stay within rand index 0.99 of
    // exact; subsampled labels must replay bit-identically per seed; and
    // the cell graph must never materialize a table.
    bool sub_5x = false;
    bool cg_5x = false;
    for (const QualityRow& row : quality_rows) {
      for (const QualityCell& c : row.cells) {
        if (c.config == "exact") continue;
        quality_ok = quality_ok && c.deterministic;
        if (std::string_view(c.config).starts_with("subsampled")) {
          sub_5x = sub_5x || c.speedup >= 5.0;
        }
        if (c.config == "cellgraph") {
          cg_5x = cg_5x || c.speedup >= 5.0;
          quality_ok = quality_ok && !c.table_materialized;
        }
        if (row.scenario == "separated") {
          quality_ok = quality_ok && c.rand_vs_exact >= 0.99;
        }
      }
    }
    quality_ok = quality_ok && sub_5x && cg_5x;
    std::printf(
        "  approximate modes reach >= 5x modeled speedup at 10x n with"
        " rand index >= 0.99 on the separated workload: %s\n",
        quality_ok ? "PASS" : "FAIL");
  }
  // Spatial slab sharding (one grid-row slab + eps-halo per device): each
  // device holds ~1/k of the index and does ~1/k of the distance tests,
  // and the modeled critical path charges the slowest shard per round —
  // never the sum — so k devices should approach k-fold modeled speedup.
  // Two modes per k: the materialized build (the merged global CSR table,
  // eroded by the serial fan-in merge and half-table expansion) and the
  // streaming labels-only build (deliveries flow to a sink with global
  // keys; no merge, no expansion — the deployment mode a multi-GPU
  // pipeline actually runs, cf. the streaming comparison above). The
  // sweep runs at 200k points rather than the 1/32-scale defaults:
  // sharding targets large workloads, and at a few-ms total build the
  // per-build fixed costs swamp the device phases being scaled.
  struct ShardPoint {
    unsigned k = 1;
    std::uint32_t shards = 0;
    double wall_seconds = 1e30;
    double modeled_seconds = 1e30;    ///< materialized build
    double streamed_seconds = 1e30;   ///< labels-only (sink) build
    double speedup = 1.0;             ///< materialized modeled, vs k=1
    double streamed_speedup = 1.0;    ///< streamed modeled, vs k=1
    double fixed_seconds = 0.0;       ///< serial host share (materialized)
    double partition_seconds = 0.0;   ///< one-time plan_shards critical path
    double halo_fraction = 0.0;       ///< ghost residents / owned points
    std::uint64_t halo_ghosts = 0;
    std::uint64_t cross_pairs = 0;  ///< forward pairs spanning two owners
  };
  struct ShardScalingRow {
    std::string dataset;
    float eps;
    std::size_t size = 0;
    std::vector<ShardPoint> points;
  };
  // Pair-count sink standing in for a label consumer: the build's cost is
  // what is measured, so the sink does the least work that still drains
  // every delivery.
  struct PairCountSink final : hdbscan::BatchSink {
    std::atomic<std::uint64_t> pairs{0};
    void consume(const hdbscan::BatchDelivery& d) override {
      pairs.fetch_add(d.values.size(), std::memory_order_relaxed);
    }
  };
  constexpr std::size_t kShardSweepSize = 200000;
  std::vector<ShardScalingRow> shard_rows;
  bool shard_ok = false;  // >= 3.2x modeled at k=4 on some workload
  for (const auto& [dataset, eps] :
       std::vector<std::pair<std::string, float>>{{"SW1", 0.3f},
                                                  {"SDSS1", 0.5f}}) {
    const auto points = data::make_dataset(dataset, kShardSweepSize);
    std::printf("  dataset %-6s |D| = %zu (sharded sweep)\n",
                dataset.c_str(), points.size());
    const GridIndex index = build_grid_index(points, eps);
    ShardScalingRow row{dataset, eps, points.size(), {}};
    const int repeats = std::max(3, env_trials());
    for (unsigned k = 1; k <= 4; ++k) {
      std::vector<std::unique_ptr<cudasim::Device>> fleet;
      std::vector<cudasim::Device*> fleet_ptrs;
      for (unsigned d = 0; d < k; ++d) {
        fleet.push_back(std::make_unique<cudasim::Device>(
            cudasim::DeviceConfig{}, cudasim::SimulationOptions{}));
        fleet_ptrs.push_back(fleet.back().get());
      }
      // Partition once per (workload, k) and reuse it across trials and
      // modes — the plan is a function of the index and eps only, so a
      // deployment computes it at setup time, exactly like the grid index
      // (whose construction the single-device numbers above exclude too).
      // Its one-time critical path is reported alongside the build times.
      const ShardPlan plan = plan_shards(
          index, k,
          static_cast<unsigned>(cudasim::DeviceConfig{}.host_cores));
      ShardedBuildOptions options;
      options.num_shards = k;
      options.plan = &plan;
      ShardPoint pt;
      pt.k = k;
      pt.partition_seconds = plan.critical_seconds;
      for (int t = 0; t < repeats; ++t) {
        WallTimer timer;
        BuildReport report;
        (void)build_sharded_neighbor_table(fleet_ptrs, index, eps, options,
                                           &report);
        pt.wall_seconds = std::min(pt.wall_seconds, timer.seconds());
        if (report.modeled_table_seconds < pt.modeled_seconds) {
          pt.modeled_seconds = report.modeled_table_seconds;
          pt.fixed_seconds = report.shard_fixed_seconds;
          pt.shards = report.shards;
          pt.halo_ghosts = report.halo_ghost_points;
          pt.cross_pairs = report.cross_shard_pairs;
        }
        PairCountSink sink;
        BuildReport streamed;
        (void)build_sharded_neighbor_table(fleet_ptrs, index, eps, options,
                                           &streamed, &sink,
                                           /*materialize_table=*/false);
        pt.streamed_seconds =
            std::min(pt.streamed_seconds, streamed.modeled_table_seconds);
      }
      pt.halo_fraction = static_cast<double>(pt.halo_ghosts) /
                         static_cast<double>(points.size());
      row.points.push_back(pt);
    }
    for (ShardPoint& pt : row.points) {
      pt.speedup = row.points.front().modeled_seconds / pt.modeled_seconds;
      pt.streamed_speedup =
          row.points.front().streamed_seconds / pt.streamed_seconds;
    }
    std::printf("\n  sharded scaling [%s, eps=%.2f, n=%zu]:\n",
                dataset.c_str(), eps, row.size);
    std::printf("  %3s %7s %10s %9s %10s %9s %8s %12s %12s\n", "k",
                "shards", "table (s)", "speedup", "stream(s)", "speedup",
                "halo", "ghosts", "cross pairs");
    for (const ShardPoint& pt : row.points) {
      std::printf(
          "  %3u %7u %10.4f %8.2fx %10.4f %8.2fx %7.1f%% %12llu %12llu\n",
          pt.k, pt.shards, pt.modeled_seconds, pt.speedup,
          pt.streamed_seconds, pt.streamed_speedup,
          100.0 * pt.halo_fraction,
          static_cast<unsigned long long>(pt.halo_ghosts),
          static_cast<unsigned long long>(pt.cross_pairs));
    }
    shard_ok = shard_ok || row.points.back().speedup >= 3.2 ||
               row.points.back().streamed_speedup >= 3.2;
    shard_rows.push_back(std::move(row));
  }
  std::printf(
      "  k=4 modeled speedup >= 3.2x on some workload (either mode): %s\n",
      shard_ok ? "PASS" : "FAIL");

  // --- service front-end: skewed workload vs naive baseline ----------
  // The same Zipf-over-eps multi-tenant workload served three ways on a
  // two-device fleet: naive (every job builds its own table), cache-only,
  // and cache+coalescing. The reuse machinery must beat the naive
  // baseline on modeled makespan — that gate is the point of schema 5.
  struct ServeResult {
    std::string config;
    bool traced = false;  ///< tracer enabled for the whole replay
    double makespan = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double throughput = 0.0;
    std::uint64_t cache_hits = 0;
    std::uint64_t coalesced_jobs = 0;
  };
  std::vector<ServeResult> serve_results;
  bool serve_ok = false;
  {
    const auto serve_points = data::make_dataset("SW1");
    service::WorkloadSpec wl;
    wl.num_jobs = 32;
    wl.seed = 4242;
    const std::vector<service::JobSpec> jobs = service::make_zipf_workload(wl);

    struct Config {
      const char* name;
      bool cache;
      bool coalesce;
      bool trace;
    };
    // The fourth row replays the best config with full request tracing on
    // (schema 6): what the stage-attribution machinery costs when it is
    // actually recording, next to the disabled-path guard below.
    for (const Config cfg : {Config{"naive", false, false, false},
                             Config{"cache", true, false, false},
                             Config{"cache+coalesce", true, true, false},
                             Config{"cache+coalesce+trace", true, true,
                                    true}}) {
      cudasim::SimulationOptions sopt;
      sopt.throttle_transfers = false;
      sopt.throttle_pinned_alloc = false;
      cudasim::Device d0({}, sopt), d1({}, sopt);
      service::ServiceOptions opt;
      opt.num_workers = 2;
      opt.cache_bytes_budget = cfg.cache ? (512ull << 20) : 0;
      opt.coalesce = cfg.coalesce;
      service::ClusterService svc({&d0, &d1}, opt);
      svc.register_dataset("default", serve_points, 0.9f);
      if (cfg.trace && obs::kTraceCompiled) obs::Tracer::global().enable();
      const std::vector<service::JobResult> results = svc.replay(jobs);
      if (cfg.trace && obs::kTraceCompiled) obs::Tracer::global().disable();
      const service::ServiceStats stats = svc.stats();

      ServeResult r;
      r.config = cfg.name;
      r.traced = cfg.trace;
      r.makespan = stats.modeled_makespan_seconds;
      std::vector<double> lat;
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].state == service::JobState::kCompleted) {
          lat.push_back(
              results[i].modeled_latency_seconds(jobs[i].arrival_seconds));
        }
      }
      std::sort(lat.begin(), lat.end());
      if (!lat.empty()) {
        r.p50 = lat[lat.size() / 2];
        r.p99 = lat[std::min(lat.size() - 1,
                             static_cast<std::size_t>(
                                 static_cast<double>(lat.size() - 1) * 0.99))];
      }
      r.throughput = r.makespan > 0.0
                         ? static_cast<double>(stats.completed) / r.makespan
                         : 0.0;
      r.cache_hits = stats.cache_hits;
      r.coalesced_jobs = stats.coalesced_jobs;
      serve_results.push_back(std::move(r));
    }
    // The reuse gate compares the untraced cache+coalesce row to naive;
    // the traced row is reported alongside it.
    serve_ok = serve_results[2].makespan <= serve_results.front().makespan;
    std::printf("\n  service front-end, %u-job Zipf workload (SW1, 2"
                " devices):\n", wl.num_jobs);
    for (const ServeResult& r : serve_results) {
      std::printf("    %-21s makespan %.4fs  p50 %.4fs  p99 %.4fs  %6.1f"
                  " jobs/s  (%llu cache hits, %llu coalesced)\n",
                  r.config.c_str(), r.makespan, r.p50, r.p99, r.throughput,
                  static_cast<unsigned long long>(r.cache_hits),
                  static_cast<unsigned long long>(r.coalesced_jobs));
    }
    std::printf("  cache+coalescing beats naive on modeled makespan: %s\n",
                serve_ok ? "PASS" : "FAIL");
  }

  // --- disabled-tracing overhead guard -------------------------------
  // (a) one traced SW1 build counts the TRACE sites it executes; (b) the
  // disabled fast path is microbenchmarked *with a request context
  // installed* — the serving condition, where every record checks the
  // enabled flag and every thread hop copies + installs the submitter's
  // context; (c) assert that sites x (per-site + per-hop) cost stays
  // under 2% of the build's disabled-mode wall time. Hops <= sites
  // (every hop wraps at least one span), so billing a hop per site
  // overstates the true cost — the guard is conservative.
  std::size_t guard_sites = 0;
  double guard_per_site_ns = 0.0;
  double guard_per_hop_ns = 0.0;
  double guard_overhead_pct = 0.0;
  bool guard_ok = true;
  {
    const float eps = rows.front().eps;
    const auto points = data::make_dataset(rows.front().dataset);
    const GridIndex index = build_grid_index(points, eps);
    cudasim::Device device = bench::make_device();
    NeighborTableBuilder builder(device, {});

    obs::Tracer& tracer = obs::Tracer::global();
    if (obs::kTraceCompiled) {
      tracer.enable();
      (void)builder.build(index, eps);
      tracer.disable();
      guard_sites = tracer.snapshot().size() +
                    static_cast<std::size_t>(tracer.dropped());
    }

    double build_s = 1e30;
    for (int t = 0; t < 3; ++t) {
      WallTimer timer;
      (void)builder.build(index, eps);
      build_s = std::min(build_s, timer.seconds());
    }

    constexpr int kProbes = 1'000'000;
    RequestContext probe_ctx;
    probe_ctx.request_id = mint_request_id();
    probe_ctx.set_tenant("bench");
    RequestScope probe_scope(probe_ctx);
    WallTimer probe;
    for (int i = 0; i < kProbes; ++i) {
      TRACE_SPAN("bench", "overhead probe");
    }
    guard_per_site_ns = probe.seconds() / kProbes * 1e9;

    // Per-hop cost of the context plumbing itself: copy the calling
    // thread's context (what every submit/enqueue lambda captures) and
    // install/restore it (what the worker does).
    std::uint64_t hop_sink = 0;  // keeps the loop observable
    WallTimer hop_probe;
    for (int i = 0; i < kProbes; ++i) {
      const RequestContext captured = current_request_context();
      RequestScope hop(captured);
      hop_sink += current_request_context().request_id;
    }
    guard_per_hop_ns = hop_probe.seconds() / kProbes * 1e9;
    if (hop_sink == 0) std::printf("  (hop probe ran unattributed)\n");

    const double projected_s = static_cast<double>(guard_sites) *
                               (guard_per_site_ns + guard_per_hop_ns) * 1e-9;
    guard_overhead_pct = build_s > 0.0 ? 100.0 * projected_s / build_s : 0.0;
    guard_ok = guard_overhead_pct < 2.0;
    std::printf(
        "\n  trace-overhead guard: %zu sites/build x (%.1f ns/site +"
        " %.1f ns/hop) vs %.3f s build -> %.4f%% overhead when disabled"
        " (< 2%%: %s)\n",
        guard_sites, guard_per_site_ns, guard_per_hop_ns, build_s,
        guard_overhead_pct, guard_ok ? "PASS" : "FAIL");
  }

  std::FILE* out = std::fopen("BENCH_table_build.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_table_build.json for writing\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"table_build\",\n"
               "  \"schema_version\": 8,\n"
               "  \"scenario\": {\n"
               "    \"scale\": %.4f,\n"
               "    \"trials\": %d,\n"
               "    \"datasets\": [\n",
               env_scale(), std::max(3, env_trials()));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "      {\"name\": \"%s\", \"n\": %zu, \"seed\": %llu, "
                 "\"eps\": %.3f}%s\n",
                 row.dataset.c_str(), row.n,
                 static_cast<unsigned long long>(row.seed), row.eps,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n  },\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"dataset\": \"%s\", \"eps\": %.3f, \"modes\": [\n",
                 row.dataset.c_str(), row.eps);
    for (std::size_t m = 0; m < row.modes.size(); ++m) {
      const ModeResult& r = row.modes[m];
      std::fprintf(
          out,
          "      {\"mode\": \"%s\", \"scan\": \"%s\", "
          "\"wall_seconds\": %.6f, "
          "\"modeled_seconds\": %.6f, \"pairs_per_second\": %.3e, "
          "\"expand_seconds\": %.6f, "
          "\"total_pairs\": %llu, \"d2h_bytes\": %llu, "
          "\"atomic_ops\": %llu, \"kernel_flops\": %llu, "
          "\"kernel_global_bytes\": %llu}%s\n",
          r.mode.c_str(), r.scan.c_str(), r.wall_seconds, r.modeled_seconds,
          r.pairs_per_second, r.expand_seconds,
          static_cast<unsigned long long>(r.total_pairs),
          static_cast<unsigned long long>(r.d2h_bytes),
          static_cast<unsigned long long>(r.atomic_ops),
          static_cast<unsigned long long>(r.kernel_flops),
          static_cast<unsigned long long>(r.kernel_global_bytes),
          m + 1 < row.modes.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"reuse_sweep\": [\n");
  for (std::size_t v = 0; v < sweep.size(); ++v) {
    std::fprintf(out,
                 "    {\"variant\": %zu, "
                 "\"cumulative_pinned_alloc_seconds\": %.6f, "
                 "\"cumulative_pool_pinned_misses\": %llu}%s\n",
                 v, sweep[v].pinned_alloc_seconds,
                 static_cast<unsigned long long>(sweep[v].pinned_misses),
                 v + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(
      out,
      "  ],\n  \"streaming_single_variant\": {\"dataset\": \"SW1\", "
      "\"eps\": 0.300, \"minpts\": 4,\n"
      "    \"serial_wall_seconds\": %.6f, "
      "\"serial_modeled_seconds\": %.6f,\n"
      "    \"streaming_wall_seconds\": %.6f, "
      "\"streaming_modeled_seconds\": %.6f,\n"
      "    \"overlap_fraction\": %.4f, \"streamed_fraction\": %.4f,\n"
      "    \"serial_table_bytes\": %llu, "
      "\"streaming_peak_bytes\": %llu},\n",
      scomp.serial_wall, scomp.serial_modeled, scomp.stream_wall,
      scomp.stream_modeled, scomp.overlap_fraction, scomp.streamed_fraction,
      static_cast<unsigned long long>(scomp.table_bytes),
      static_cast<unsigned long long>(scomp.consumer_peak_bytes));
  std::fprintf(out, "  \"fused_clustering\": {\n    \"rows\": [\n");
  for (std::size_t i = 0; i < fused_rows.size(); ++i) {
    const FusedRow& row = fused_rows[i];
    std::fprintf(out,
                 "      {\"scenario\": \"%s\", \"eps\": %.3f, "
                 "\"minpts\": %d, \"n\": %zu, \"configs\": [\n",
                 row.scenario.c_str(), row.eps, row.minpts, row.n);
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      const FusedCell& cell = row.cells[c];
      std::fprintf(
          out,
          "        {\"config\": \"%s\", \"wall_seconds\": %.6f, "
          "\"modeled_seconds\": %.6f, \"d2h_bytes\": %llu, "
          "\"peak_bytes\": %llu, \"table_materialized\": %s, "
          "\"labels_identical_to_batch\": %s}%s\n",
          cell.config, cell.wall_seconds, cell.modeled_seconds,
          static_cast<unsigned long long>(cell.d2h_bytes),
          static_cast<unsigned long long>(cell.peak_bytes),
          cell.table_materialized ? "true" : "false",
          cell.labels_identical ? "true" : "false",
          c + 1 < row.cells.size() ? "," : "");
    }
    std::fprintf(out, "      ]}%s\n", i + 1 < fused_rows.size() ? "," : "");
  }
  std::fprintf(out,
               "    ],\n    \"fused_bvh_gate\": {\"scenario\": \"skewed\", "
               "\"beats\": \"stream-grid\", \"metric\": "
               "\"modeled_seconds\", \"requires_no_table\": true, "
               "\"requires_identical_labels\": true, \"pass\": %s}},\n",
               fused_ok ? "true" : "false");
  std::fprintf(out, "  \"quality_frontier\": {\n    \"rows\": [\n");
  for (std::size_t i = 0; i < quality_rows.size(); ++i) {
    const QualityRow& row = quality_rows[i];
    std::fprintf(out,
                 "      {\"scenario\": \"%s\", \"eps\": %.3f, "
                 "\"minpts\": %d, \"n\": %zu, \"configs\": [\n",
                 row.scenario.c_str(), row.eps, row.minpts, row.n);
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      const QualityCell& cell = row.cells[c];
      std::fprintf(
          out,
          "        {\"config\": \"%s\", \"sample_rate\": %.2f, "
          "\"wall_seconds\": %.6f, \"modeled_seconds\": %.6f, "
          "\"modeled_speedup_vs_exact\": %.4f, "
          "\"rand_index_vs_exact\": %.6f, \"deterministic\": %s, "
          "\"table_materialized\": %s, \"pairs\": %llu}%s\n",
          cell.config.c_str(), cell.sample_rate, cell.wall_seconds,
          cell.modeled_seconds, cell.speedup, cell.rand_vs_exact,
          cell.deterministic ? "true" : "false",
          cell.table_materialized ? "true" : "false",
          static_cast<unsigned long long>(cell.pairs),
          c + 1 < row.cells.size() ? "," : "");
    }
    std::fprintf(out, "      ]}%s\n", i + 1 < quality_rows.size() ? "," : "");
  }
  std::fprintf(out,
               "    ],\n    \"gates\": {\"n_multiple\": 10, "
               "\"min_modeled_speedup\": 5.0, "
               "\"min_rand_index\": 0.99, "
               "\"rand_index_scenario\": \"separated\", "
               "\"requires_deterministic_replay\": true, \"pass\": %s}},\n",
               quality_ok ? "true" : "false");
  std::fprintf(out, "  \"sharded_scaling\": [\n");
  for (std::size_t i = 0; i < shard_rows.size(); ++i) {
    const ShardScalingRow& row = shard_rows[i];
    std::fprintf(out,
                 "    {\"dataset\": \"%s\", \"eps\": %.3f, \"size\": %zu, "
                 "\"points\": [\n",
                 row.dataset.c_str(), row.eps, row.size);
    for (std::size_t p = 0; p < row.points.size(); ++p) {
      const ShardPoint& pt = row.points[p];
      std::fprintf(
          out,
          "      {\"k\": %u, \"shards\": %u, \"wall_seconds\": %.6f, "
          "\"modeled_seconds\": %.6f, \"modeled_speedup\": %.4f, "
          "\"modeled_streamed_seconds\": %.6f, \"streamed_speedup\": %.4f, "
          "\"fixed_seconds\": %.6f, \"partition_seconds\": %.6f, "
          "\"halo_ghost_points\": %llu, \"halo_overhead_fraction\": %.4f, "
          "\"cross_shard_pairs\": %llu}%s\n",
          pt.k, pt.shards, pt.wall_seconds, pt.modeled_seconds, pt.speedup,
          pt.streamed_seconds, pt.streamed_speedup, pt.fixed_seconds,
          pt.partition_seconds,
          static_cast<unsigned long long>(pt.halo_ghosts), pt.halo_fraction,
          static_cast<unsigned long long>(pt.cross_pairs),
          p + 1 < row.points.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", i + 1 < shard_rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"sharded_speedup_gate\": {\"k\": 4, "
               "\"min_modeled_speedup\": 3.2, "
               "\"modes\": [\"materialized\", \"streamed\"], "
               "\"pass\": %s},\n",
               shard_ok ? "true" : "false");
  std::fprintf(out,
               "  \"service\": {\"dataset\": \"SW1\", \"jobs\": 32, "
               "\"tenants\": 4, \"zipf_s\": 1.2, \"devices\": 2,\n"
               "    \"configs\": [\n");
  for (std::size_t i = 0; i < serve_results.size(); ++i) {
    const ServeResult& r = serve_results[i];
    std::fprintf(out,
                 "      {\"config\": \"%s\", \"traced\": %s, "
                 "\"modeled_makespan_seconds\": %.6f, "
                 "\"modeled_p50_seconds\": %.6f, "
                 "\"modeled_p99_seconds\": %.6f, "
                 "\"modeled_jobs_per_second\": %.3f, "
                 "\"cache_hits\": %llu, \"coalesced_jobs\": %llu}%s\n",
                 r.config.c_str(), r.traced ? "true" : "false", r.makespan,
                 r.p50, r.p99, r.throughput,
                 static_cast<unsigned long long>(r.cache_hits),
                 static_cast<unsigned long long>(r.coalesced_jobs),
                 i + 1 < serve_results.size() ? "," : "");
  }
  std::fprintf(out,
               "    ],\n    \"reuse_beats_naive_gate\": {\"metric\": "
               "\"modeled_makespan_seconds\", \"pass\": %s}},\n",
               serve_ok ? "true" : "false");
  std::fprintf(out,
               "  \"trace_overhead_guard\": {\"sites\": %zu, "
               "\"per_site_ns\": %.2f, \"per_hop_ns\": %.2f, "
               "\"overhead_percent\": %.4f, "
               "\"limit_percent\": 2.0, \"pass\": %s}\n}\n",
               guard_sites, guard_per_site_ns, guard_per_hop_ns,
               guard_overhead_pct, guard_ok ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote BENCH_table_build.json\n");
  return guard_ok && shard_ok && serve_ok && fused_ok && quality_ok ? 0 : 1;
}
