// Barrier semantics of the cooperative (coroutine) kernel engine — the
// simulator's __syncthreads() must provide real phase separation, which
// GPUCalcShared's tiling depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "cudasim/device.hpp"
#include "cudasim/kernel.hpp"

namespace {

using cudasim::CoopCtx;
using cudasim::Device;
using cudasim::KernelStats;
using cudasim::KernelTask;
using cudasim::LaunchError;
using cudasim::SimulationOptions;

SimulationOptions fast_options() {
  SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

// Each thread writes its id into shared memory, barriers, then reads its
// neighbor's slot. Without a correct barrier the read races the write.
KernelTask neighbor_exchange(CoopCtx& ctx, std::uint32_t* out) {
  auto slots = ctx.shared_array<std::uint32_t>(0, ctx.block_dim);
  slots[ctx.thread_idx] = ctx.thread_idx * 10;
  co_await ctx.sync();
  const unsigned neighbor = (ctx.thread_idx + 1) % ctx.block_dim;
  out[ctx.global_id()] = slots[neighbor];
}

TEST(CoopKernel, BarrierMakesSharedWritesVisible) {
  Device dev({}, fast_options());
  const unsigned grid = 8, block = 32;
  std::vector<std::uint32_t> out(grid * block, 0xffffffffu);
  cudasim::run_coop_kernel(
      dev, grid, block, block * sizeof(std::uint32_t),
      [&](CoopCtx& ctx) { return neighbor_exchange(ctx, out.data()); });
  for (unsigned b = 0; b < grid; ++b) {
    for (unsigned t = 0; t < block; ++t) {
      EXPECT_EQ(out[b * block + t], ((t + 1) % block) * 10);
    }
  }
}

// Multi-phase reduction: tree sum in shared memory with a barrier per
// level, the classic CUDA pattern.
KernelTask tree_reduce(CoopCtx& ctx, const std::uint32_t* in,
                       std::uint32_t* out) {
  auto scratch = ctx.shared_array<std::uint32_t>(0, ctx.block_dim);
  scratch[ctx.thread_idx] = in[ctx.global_id()];
  co_await ctx.sync();
  for (unsigned stride = ctx.block_dim / 2; stride > 0; stride /= 2) {
    if (ctx.thread_idx < stride) {
      scratch[ctx.thread_idx] += scratch[ctx.thread_idx + stride];
    }
    co_await ctx.sync();
  }
  if (ctx.thread_idx == 0) out[ctx.block_idx] = scratch[0];
}

TEST(CoopKernel, TreeReductionAcrossManyBarriers) {
  Device dev({}, fast_options());
  const unsigned grid = 16, block = 64;
  std::vector<std::uint32_t> in(grid * block);
  std::iota(in.begin(), in.end(), 0u);
  std::vector<std::uint32_t> out(grid, 0);
  cudasim::run_coop_kernel(dev, grid, block, block * sizeof(std::uint32_t),
                           [&](CoopCtx& ctx) {
                             return tree_reduce(ctx, in.data(), out.data());
                           });
  for (unsigned b = 0; b < grid; ++b) {
    std::uint32_t expect = 0;
    for (unsigned t = 0; t < block; ++t) expect += b * block + t;
    EXPECT_EQ(out[b], expect);
  }
}

TEST(CoopKernel, BarrierCountIsPerBlock) {
  Device dev({}, fast_options());
  auto body = [&](CoopCtx& ctx) -> KernelTask {
    co_await ctx.sync();
    co_await ctx.sync();
  };
  const KernelStats stats = cudasim::run_coop_kernel(dev, 4, 16, 64, body);
  EXPECT_EQ(stats.work.barriers, 8u);  // 2 barriers x 4 blocks
}

TEST(CoopKernel, SharedMemoryIsPerBlock) {
  Device dev({}, fast_options());
  std::vector<std::atomic<std::uint32_t>> block_sums(8);
  auto body = [&](CoopCtx& ctx) -> KernelTask {
    auto slot = ctx.shared_array<std::uint32_t>(0, 1);
    if (ctx.thread_idx == 0) slot[0] = ctx.block_idx;
    co_await ctx.sync();
    // Every thread must see its own block's id, never another block's.
    block_sums[ctx.block_idx].fetch_add(slot[0] == ctx.block_idx ? 1 : 1000);
  };
  cudasim::run_coop_kernel(dev, 8, 32, 64, body);
  for (auto& s : block_sums) EXPECT_EQ(s.load(), 32u);
}

TEST(CoopKernel, SharedArrayOverflowThrows) {
  Device dev({}, fast_options());
  auto body = [&](CoopCtx& ctx) -> KernelTask {
    auto too_big = ctx.shared_array<std::uint64_t>(0, 100);  // > 64 bytes
    (void)too_big;
    co_return;
  };
  EXPECT_THROW(cudasim::run_coop_kernel(dev, 1, 1, 64, body), LaunchError);
}

TEST(CoopKernel, SharedMemoryRequestOverLimitRejected) {
  Device dev({}, fast_options());
  auto body = [](CoopCtx&) -> KernelTask { co_return; };
  EXPECT_THROW(cudasim::run_coop_kernel(
                   dev, 1, 1, dev.config().shared_mem_per_block + 1, body),
               LaunchError);
}

TEST(CoopKernel, ExceptionInThreadPropagates) {
  Device dev({}, fast_options());
  auto body = [](CoopCtx& ctx) -> KernelTask {
    co_await ctx.sync();
    if (ctx.thread_idx == 3) throw std::runtime_error("thread fault");
  };
  EXPECT_THROW(cudasim::run_coop_kernel(dev, 1, 8, 0, body),
               std::runtime_error);
}

TEST(CoopKernel, ThreadsMayFinishAtDifferentBarrierDepths) {
  // Threads exit the loop after differing iteration counts; the engine
  // must not hang when some threads are done while others still barrier.
  Device dev({}, fast_options());
  std::atomic<std::uint32_t> total{0};
  auto body = [&](CoopCtx& ctx) -> KernelTask {
    for (unsigned i = 0; i < ctx.thread_idx % 4; ++i) {
      co_await ctx.sync();
    }
    total.fetch_add(1);
  };
  cudasim::run_coop_kernel(dev, 2, 16, 0, body);
  EXPECT_EQ(total.load(), 32u);
}

TEST(CoopKernel, CountsThreadsLikeThePaper) {
  // nGPU = blocks x block size, the quantity reported in Table II.
  Device dev({}, fast_options());
  auto body = [](CoopCtx&) -> KernelTask { co_return; };
  const KernelStats stats = cudasim::run_coop_kernel(dev, 146131, 256 / 256,
                                                     0, body);
  EXPECT_EQ(stats.threads, 146131u);
}

}  // namespace
