#include "analysis/cluster_analysis.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "data/generators.hpp"
#include "dbscan/dbscan.hpp"

namespace hdbscan {
namespace {

using analysis::ClusterMatch;
using analysis::ClusterStats;

TEST(ClusterStats, TwoKnownClusters) {
  std::vector<Point2> points;
  // Cluster 0: square corners around (1, 1); cluster 1: around (5, 5).
  for (const auto& d : {Point2{0.9f, 0.9f}, Point2{1.1f, 0.9f},
                        Point2{0.9f, 1.1f}, Point2{1.1f, 1.1f}}) {
    points.push_back(d);
  }
  points.push_back({5.0f, 5.0f});
  points.push_back({5.2f, 5.0f});
  points.push_back({90.0f, 90.0f});  // noise
  ClusterResult clusters;
  clusters.labels = {0, 0, 0, 0, 1, 1, -1};
  clusters.num_clusters = 2;

  const auto stats = analysis::compute_cluster_stats(points, clusters);
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by size: cluster 0 (4 points) first.
  EXPECT_EQ(stats[0].cluster, 0);
  EXPECT_EQ(stats[0].size, 4u);
  EXPECT_FLOAT_EQ(stats[0].centroid.x, 1.0f);
  EXPECT_FLOAT_EQ(stats[0].centroid.y, 1.0f);
  EXPECT_NEAR(stats[0].rms_radius, std::sqrt(0.02f), 1e-5f);
  EXPECT_FLOAT_EQ(stats[0].bounds.min_x, 0.9f);
  EXPECT_FLOAT_EQ(stats[0].bounds.max_y, 1.1f);
  EXPECT_EQ(stats[1].cluster, 1);
  EXPECT_EQ(stats[1].size, 2u);
  EXPECT_FLOAT_EQ(stats[1].centroid.x, 5.1f);
}

TEST(ClusterStats, DegenerateClusterHasInfiniteDensity) {
  std::vector<Point2> points{{2.0f, 2.0f}, {2.0f, 2.0f}};
  ClusterResult clusters;
  clusters.labels = {0, 0};
  clusters.num_clusters = 1;
  const auto stats = analysis::compute_cluster_stats(points, clusters);
  EXPECT_TRUE(std::isinf(stats[0].density));
}

TEST(ClusterStats, SizeMismatchThrows) {
  std::vector<Point2> points{{0, 0}};
  ClusterResult clusters;
  clusters.labels = {0, 0};
  clusters.num_clusters = 1;
  EXPECT_THROW(analysis::compute_cluster_stats(points, clusters),
               std::invalid_argument);
}

TEST(AsciiDensityMap, DimensionsAndDensestCell) {
  std::vector<Point2> points;
  Xoshiro256 rng(1);
  // Dense blob bottom-left, sparse elsewhere.
  for (int i = 0; i < 900; ++i) {
    points.push_back({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f)});
  }
  for (int i = 0; i < 100; ++i) {
    points.push_back({rng.uniform(0.0f, 10.0f), rng.uniform(0.0f, 10.0f)});
  }
  const std::string map = analysis::ascii_density_map(points, 20, 10);
  // 10 rows of 20 chars + newline each.
  EXPECT_EQ(map.size(), 10u * 21u);
  // Bottom-left corner (last row, first column) is the densest: '#'.
  EXPECT_EQ(map[9 * 21], '#');
  // Some cell must be empty.
  EXPECT_NE(map.find(' '), std::string::npos);
}

TEST(AsciiClusterMap, LargestClustersGetLetters) {
  const auto points = data::generate_gaussian_blobs(
      1500, 2, 3, 0.2f, 12.0f, 12.0f, 0.1);
  const auto clusters = dbscan_rtree(points, 0.5f, 4);
  ASSERT_GE(clusters.num_clusters, 3);
  const std::string map =
      analysis::ascii_cluster_map(points, clusters, 40, 20);
  EXPECT_EQ(map.size(), 20u * 41u);
  EXPECT_NE(map.find('a'), std::string::npos);
  EXPECT_NE(map.find('b'), std::string::npos);
  EXPECT_NE(map.find('c'), std::string::npos);
}

TEST(AsciiMaps, RejectEmptyInput) {
  EXPECT_THROW(analysis::ascii_density_map({}, 10, 10), std::invalid_argument);
  std::vector<Point2> one{{0, 0}};
  EXPECT_THROW(analysis::ascii_density_map(one, 0, 10),
               std::invalid_argument);
}

TEST(TrackClusters, IdentityTracksPerfectly) {
  ClusterResult a;
  a.labels = {0, 0, 1, 1, 1, -1};
  a.num_clusters = 2;
  const auto matches = analysis::track_clusters(a, a);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].to_cluster, 0);
  EXPECT_DOUBLE_EQ(matches[0].jaccard, 1.0);
  EXPECT_EQ(matches[1].to_cluster, 1);
  EXPECT_DOUBLE_EQ(matches[1].jaccard, 1.0);
}

TEST(TrackClusters, MergeDetected) {
  // Two clusters in `from` merge into one in `to`.
  ClusterResult from;
  from.labels = {0, 0, 0, 1, 1, 1};
  from.num_clusters = 2;
  ClusterResult to;
  to.labels = {0, 0, 0, 0, 0, 0};
  to.num_clusters = 1;
  const auto matches = analysis::track_clusters(from, to);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].to_cluster, 0);
  EXPECT_EQ(matches[1].to_cluster, 0);
  EXPECT_DOUBLE_EQ(matches[0].jaccard, 0.5);  // 3 shared / 6 union
}

TEST(TrackClusters, DissolvedClusterHasNoTarget) {
  ClusterResult from;
  from.labels = {0, 0, 0};
  from.num_clusters = 1;
  ClusterResult to;
  to.labels = {-1, -1, -1};
  to.num_clusters = 0;
  const auto matches = analysis::track_clusters(from, to);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].to_cluster, kNoise);
  EXPECT_EQ(matches[0].shared, 0u);
}

TEST(TrackClusters, RealSweepAdjacentEpsOverlapStrongly) {
  const auto points = data::generate_gaussian_blobs(
      2000, 3, 6, 0.2f, 15.0f, 15.0f, 0.05);
  const auto a = dbscan_rtree(points, 0.45f, 4);
  const auto b = dbscan_rtree(points, 0.55f, 4);
  const auto matches = analysis::track_clusters(a, b);
  // Every sizable cluster at eps=0.45 should map onto some cluster at
  // eps=0.55 with strong overlap (clusters only grow with eps).
  std::size_t strong = 0;
  for (const ClusterMatch& m : matches) {
    if (m.shared >= 50 && m.jaccard > 0.5) ++strong;
  }
  EXPECT_GE(strong, 5u);
}

}  // namespace
}  // namespace hdbscan
