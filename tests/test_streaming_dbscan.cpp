// Streaming DBSCAN (intra-variant overlap): the union-find consumer that
// ingests CSR batches on the builder's stream threads must produce a
// clustering equivalent to batch DBSCAN over the materialized table —
// including under randomized fault plans, where retried / split / failed-
// over batches must be delivered exactly once (checked via degree parity
// against the host oracle).
#include "dbscan/streaming_dbscan.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/hybrid_dbscan.hpp"
#include "core/neighbor_table_builder.hpp"
#include "core/pipeline.hpp"
#include "core/reuse.hpp"
#include "cudasim/fault.hpp"
#include "data/generators.hpp"
#include "dbscan/cluster_compare.hpp"
#include "dbscan/dbscan_parallel.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

cudasim::SimulationOptions faulted_options(cudasim::FaultPlan plan) {
  cudasim::SimulationOptions opt = fast_options();
  opt.fault = std::make_shared<cudasim::FaultInjector>(std::move(plan));
  return opt;
}

struct Scenario {
  std::vector<Point2> points;
  GridIndex index;
  NeighborTable oracle;  ///< full symmetric table, index point order
  float eps = 0.0f;
};

Scenario make_scenario(std::size_t n, float eps, std::uint64_t seed) {
  Scenario s;
  s.eps = eps;
  s.points = data::generate_space_weather(
      n, seed, {.width = 10.0f, .height = 10.0f});
  s.index = build_grid_index(s.points, eps);
  s.oracle = build_neighbor_table_host(s.index, eps);
  return s;
}

/// Many small batches so deliveries interleave across streams (and faults
/// reliably land mid-build).
BatchPolicy many_batch_policy(const Scenario& s, ScanMode scan) {
  BatchPolicy policy;
  policy.build_mode = TableBuildMode::kCsrTwoPass;
  policy.scan_mode = scan;
  policy.estimated_total_override = s.oracle.total_pairs();
  policy.static_threshold_pairs = 1;
  policy.static_buffer_pairs =
      std::max<std::uint64_t>(1, s.oracle.total_pairs() / 12);
  return policy;
}

/// Streams a build into a StreamingDbscan and checks the result against
/// batch DBSCAN over the oracle table, plus exactly-once degree parity.
void expect_streaming_equivalent(NeighborTableBuilder& builder,
                                 const Scenario& s, int minpts) {
  StreamingDbscan consumer(s.index.size(), minpts);
  BuildReport report;
  builder.build(s.index, s.eps, &report, &consumer,
                /*materialize_table=*/false);
  EXPECT_TRUE(report.streamed);
  EXPECT_FALSE(report.table_materialized);
  EXPECT_GT(report.sink_batches, 0u);

  // Exactly-once: every retry / split / failover path must deliver each
  // row's contribution once. Any drop or double-delivery skews a degree.
  for (PointId i = 0; i < s.index.size(); ++i) {
    ASSERT_EQ(consumer.degree(i), s.oracle.neighbor_count(i))
        << "degree mismatch at point " << i;
  }

  const ClusterResult got = consumer.finalize();
  const ClusterResult want = dbscan_parallel(s.oracle, minpts);
  const auto outcome = compare_clusterings(got, want, s.oracle, minpts);
  EXPECT_TRUE(outcome.equivalent) << outcome.diagnostic;
  EXPECT_EQ(got.noise_count(), want.noise_count());
  EXPECT_EQ(consumer.stats().edges_seen,
            consumer.stats().edges_streamed + consumer.stats().edges_deferred);
}

class StreamingScanMode : public ::testing::TestWithParam<ScanMode> {};

TEST_P(StreamingScanMode, EquivalentToBatchDbscan) {
  const Scenario s = make_scenario(2500, 0.35f, 91);
  cudasim::Device device({}, fast_options());
  NeighborTableBuilder builder(device, many_batch_policy(s, GetParam()));
  expect_streaming_equivalent(builder, s, 4);
}

TEST_P(StreamingScanMode, EquivalentAcrossMinpts) {
  const Scenario s = make_scenario(1800, 0.3f, 92);
  cudasim::Device device({}, fast_options());
  for (const int minpts : {1, 2, 8, 40}) {
    NeighborTableBuilder builder(device, many_batch_policy(s, GetParam()));
    expect_streaming_equivalent(builder, s, minpts);
  }
}

TEST_P(StreamingScanMode, EquivalentUnderRandomizedFaultPlans) {
  const Scenario s = make_scenario(2000, 0.35f, 93);
  BatchPolicy policy = many_batch_policy(s, GetParam());
  policy.resilience.host_fallback = true;  // survive whatever the plan stacks
  for (const std::uint64_t seed : {11ull, 23ull, 37ull, 58ull}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    cudasim::Device dev0(
        {}, faulted_options(cudasim::FaultPlan::randomized(seed)));
    cudasim::Device dev1(
        {}, faulted_options(cudasim::FaultPlan::randomized(seed + 1000)));
    NeighborTableBuilder builder({&dev0, &dev1}, policy);
    expect_streaming_equivalent(builder, s, 4);
  }
}

TEST_P(StreamingScanMode, EquivalentUnderDeviceLossFailover) {
  const Scenario s = make_scenario(2500, 0.35f, 94);
  BatchPolicy policy = many_batch_policy(s, GetParam());
  cudasim::FaultPlan lost;
  lost.lost_at_op = 25;
  cudasim::Device dev0({}, fast_options());
  cudasim::Device dev1({}, faulted_options(lost));
  NeighborTableBuilder builder({&dev0, &dev1}, policy);
  expect_streaming_equivalent(builder, s, 4);
}

TEST_P(StreamingScanMode, EquivalentUnderHostFallback) {
  const Scenario s = make_scenario(1500, 0.3f, 95);
  BatchPolicy policy = many_batch_policy(s, GetParam());
  policy.resilience.host_fallback = true;
  cudasim::FaultPlan lost;
  lost.lost_at_op = 20;  // sole device dies -> host drain delivers the rows
  cudasim::Device device({}, faulted_options(lost));
  NeighborTableBuilder builder(device, policy);
  expect_streaming_equivalent(builder, s, 4);
}

INSTANTIATE_TEST_SUITE_P(ScanModes, StreamingScanMode,
                         ::testing::Values(ScanMode::kHalf, ScanMode::kFull));

TEST(StreamingDbscan, SinkAndMaterializedTableCanCoexist) {
  // materialize_table=true with a sink: the caller gets T *and* the
  // streamed labels (the reuse scheme's OPTICS-style callers need both).
  const Scenario s = make_scenario(1200, 0.3f, 96);
  cudasim::Device device({}, fast_options());
  NeighborTableBuilder builder(device,
                               many_batch_policy(s, ScanMode::kHalf));
  StreamingDbscan consumer(s.index.size(), 4);
  BuildReport report;
  NeighborTable table =
      builder.build(s.index, s.eps, &report, &consumer,
                    /*materialize_table=*/true);
  EXPECT_TRUE(report.table_materialized);
  table.canonicalize();
  NeighborTable want = s.oracle;
  want.canonicalize();
  EXPECT_TRUE(table.identical_to(want));
  const ClusterResult got = consumer.finalize();
  const auto outcome = compare_clusterings(
      got, dbscan_parallel(s.oracle, 4), s.oracle, 4);
  EXPECT_TRUE(outcome.equivalent) << outcome.diagnostic;
}

TEST(StreamingDbscan, RejectsPairSortPolicyAndBadArgs) {
  const Scenario s = make_scenario(300, 0.3f, 97);
  cudasim::Device device({}, fast_options());
  BatchPolicy pair_sort;
  pair_sort.build_mode = TableBuildMode::kPairSort;
  NeighborTableBuilder builder(device, pair_sort);
  StreamingDbscan consumer(s.index.size(), 4);
  EXPECT_THROW(builder.build(s.index, s.eps, nullptr, &consumer, true),
               std::invalid_argument);
  // No sink and no table: nothing to produce.
  NeighborTableBuilder csr(device, many_batch_policy(s, ScanMode::kHalf));
  EXPECT_THROW(csr.build(s.index, s.eps, nullptr, nullptr, false),
               std::invalid_argument);
  EXPECT_THROW(StreamingDbscan(10, 0), std::invalid_argument);
  StreamingDbscan done(4, 1);
  (void)done.finalize();
  EXPECT_THROW((void)done.finalize(), std::logic_error);
}

TEST(StreamingDbscan, HybridStreamingModeMatchesBatchMode) {
  const auto points = data::generate_sky_survey(
      3000, 98, {.width = 10.0f, .height = 10.0f});
  const float eps = 0.35f;
  const int minpts = 4;
  cudasim::Device dev_a({}, fast_options());
  cudasim::Device dev_b({}, fast_options());

  HybridTimings batch_t;
  const ClusterResult batch = hybrid_dbscan(dev_a, points, eps, minpts,
                                            &batch_t, BatchPolicy{},
                                            ClusterMode::kBatchTable);
  HybridTimings stream_t;
  const ClusterResult stream = hybrid_dbscan(dev_b, points, eps, minpts,
                                             &stream_t, BatchPolicy{},
                                             ClusterMode::kStreaming);

  EXPECT_FALSE(batch_t.streamed);
  EXPECT_TRUE(stream_t.streamed);
  EXPECT_FALSE(stream_t.build_report.table_materialized);
  EXPECT_GT(stream_t.peak_consumer_bytes, 0u);

  // Labels are in input order on both paths; compare over an input-order
  // oracle table.
  const GridIndex index = build_grid_index(points, eps);
  NeighborTable oracle(points.size());
  {
    std::vector<PointId> neighbors;
    std::vector<NeighborPair> pairs;
    for (PointId i = 0; i < points.size(); ++i) {
      grid_query(index, points[i], eps, neighbors);
      pairs.clear();
      for (const PointId v : neighbors) {
        pairs.push_back({i, index.original_ids[v]});
      }
      oracle.append_sorted_batch(pairs);
    }
  }
  const auto outcome = compare_clusterings(stream, batch, oracle, minpts);
  EXPECT_TRUE(outcome.equivalent) << outcome.diagnostic;
}

TEST(StreamingDbscan, ReuseSweepStreamsAllMinpts) {
  const auto points = data::generate_space_weather(
      2000, 99, {.width = 10.0f, .height = 10.0f});
  const float eps = 0.35f;
  const std::vector<int> minpts{2, 4, 16};
  cudasim::Device dev_a({}, fast_options());
  cudasim::Device dev_b({}, fast_options());

  std::vector<ClusterResult> batch_results;
  const ReuseReport batch =
      cluster_minpts_sweep(dev_a, points, eps, minpts, 3, {}, &batch_results);
  std::vector<ClusterResult> stream_results;
  const ReuseReport stream =
      cluster_minpts_sweep(dev_b, points, eps, minpts, 3, {}, &stream_results,
                           ClusterMode::kStreaming);

  EXPECT_FALSE(batch.streamed);
  EXPECT_TRUE(stream.streamed);
  const GridIndex index = build_grid_index(points, eps);
  for (std::size_t i = 0; i < minpts.size(); ++i) {
    EXPECT_TRUE(stream.outcomes[i].ok);
    EXPECT_EQ(stream.variant_clusters[i], batch.variant_clusters[i]);
    // Labels are input-order; rebuild an input-order oracle.
    NeighborTable oracle(points.size());
    std::vector<PointId> neighbors;
    std::vector<NeighborPair> pairs;
    for (PointId p = 0; p < points.size(); ++p) {
      grid_query(index, points[p], eps, neighbors);
      pairs.clear();
      for (const PointId v : neighbors) {
        pairs.push_back({p, index.original_ids[v]});
      }
      oracle.append_sorted_batch(pairs);
    }
    const auto outcome = compare_clusterings(
        stream_results[i], batch_results[i], oracle, minpts[i]);
    EXPECT_TRUE(outcome.equivalent)
        << "minpts " << minpts[i] << ": " << outcome.diagnostic;
  }
}

TEST(StreamingDbscan, ReuseSweepRecordsInvalidMinptsAndKeepsSiblings) {
  const auto points = data::generate_uniform(800, 100, 8.0f, 8.0f);
  const std::vector<int> minpts{4, 0, 8};  // 0 is invalid
  cudasim::Device device({}, fast_options());
  const ReuseReport report = cluster_minpts_sweep(
      device, points, 0.3f, minpts, 2, {}, nullptr, ClusterMode::kStreaming);
  EXPECT_TRUE(report.outcomes[0].ok);
  EXPECT_FALSE(report.outcomes[1].ok);
  EXPECT_FALSE(report.outcomes[1].error.empty());
  EXPECT_TRUE(report.outcomes[2].ok);
  EXPECT_GT(report.variant_clusters[0], 0);
}

TEST(StreamingDbscan, PipelineStreamingModeMatchesBatchMode) {
  const auto points = data::generate_space_weather(
      2000, 101, {.width = 10.0f, .height = 10.0f});
  const std::vector<Variant> variants{{0.25f, 4}, {0.35f, 8}, {0.45f, 4}};
  cudasim::Device dev_a({}, fast_options());
  cudasim::Device dev_b({}, fast_options());

  PipelineOptions batch_opts;
  batch_opts.keep_results = true;
  const PipelineReport batch =
      run_multi_clustering(dev_a, points, variants, batch_opts);
  PipelineOptions stream_opts;
  stream_opts.keep_results = true;
  stream_opts.cluster_mode = ClusterMode::kStreaming;
  const PipelineReport stream =
      run_multi_clustering(dev_b, points, variants, stream_opts);

  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_TRUE(stream.variants[i].streamed) << "variant " << i;
    EXPECT_EQ(stream.variants[i].num_clusters, batch.variants[i].num_clusters);
    EXPECT_EQ(stream.variants[i].noise_count, batch.variants[i].noise_count);
    const GridIndex index = build_grid_index(points, variants[i].eps);
    NeighborTable oracle(points.size());
    std::vector<PointId> neighbors;
    std::vector<NeighborPair> pairs;
    for (PointId p = 0; p < points.size(); ++p) {
      grid_query(index, points[p], variants[i].eps, neighbors);
      pairs.clear();
      for (const PointId v : neighbors) {
        pairs.push_back({p, index.original_ids[v]});
      }
      oracle.append_sorted_batch(pairs);
    }
    const auto outcome =
        compare_clusterings(stream.results[i], batch.results[i], oracle,
                            variants[i].minpts);
    EXPECT_TRUE(outcome.equivalent)
        << "variant " << i << ": " << outcome.diagnostic;
  }
}

TEST(StreamingDbscan, FanoutSinkReplicatesDeliveries) {
  const Scenario s = make_scenario(900, 0.3f, 102);
  cudasim::Device device({}, fast_options());
  NeighborTableBuilder builder(device,
                               many_batch_policy(s, ScanMode::kHalf));
  StreamingDbscan a(s.index.size(), 2);
  StreamingDbscan b(s.index.size(), 10);
  FanoutSink fanout;
  fanout.add(&a);
  fanout.add(&b);
  builder.build(s.index, s.eps, nullptr, &fanout, /*materialize_table=*/false);
  for (PointId i = 0; i < s.index.size(); ++i) {
    ASSERT_EQ(a.degree(i), s.oracle.neighbor_count(i));
    ASSERT_EQ(b.degree(i), s.oracle.neighbor_count(i));
  }
  const auto out_a = compare_clusterings(a.finalize(),
                                         dbscan_parallel(s.oracle, 2),
                                         s.oracle, 2);
  const auto out_b = compare_clusterings(b.finalize(),
                                         dbscan_parallel(s.oracle, 10),
                                         s.oracle, 10);
  EXPECT_TRUE(out_a.equivalent) << out_a.diagnostic;
  EXPECT_TRUE(out_b.equivalent) << out_b.diagnostic;
}

}  // namespace
}  // namespace hdbscan
