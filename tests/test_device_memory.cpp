#include <gtest/gtest.h>

#include "cudasim/buffer.hpp"
#include "cudasim/device.hpp"

namespace {

using cudasim::Device;
using cudasim::DeviceBuffer;
using cudasim::DeviceConfig;
using cudasim::DeviceOutOfMemory;
using cudasim::PinnedBuffer;
using cudasim::SimulationOptions;

DeviceConfig small_config(std::size_t bytes) {
  DeviceConfig cfg;
  cfg.global_mem_bytes = bytes;
  return cfg;
}

SimulationOptions fast_options() {
  SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 1;
  return opt;
}

TEST(DeviceMemory, TracksUsage) {
  Device dev(small_config(1 << 20), fast_options());
  EXPECT_EQ(dev.used_global_bytes(), 0u);
  {
    DeviceBuffer<float> buf(dev, 1000);
    EXPECT_EQ(dev.used_global_bytes(), 4000u);
    EXPECT_EQ(buf.size(), 1000u);
    EXPECT_EQ(buf.bytes(), 4000u);
  }
  EXPECT_EQ(dev.used_global_bytes(), 0u);
}

TEST(DeviceMemory, ThrowsWhenExceedingCapacity) {
  Device dev(small_config(1000), fast_options());
  DeviceBuffer<char> a(dev, 600);
  EXPECT_THROW(DeviceBuffer<char> b(dev, 600), DeviceOutOfMemory);
  // The failed allocation must not leak accounting.
  EXPECT_EQ(dev.used_global_bytes(), 600u);
  DeviceBuffer<char> c(dev, 400);  // exactly fits
  EXPECT_EQ(dev.free_global_bytes(), 0u);
}

TEST(DeviceMemory, OutOfMemoryCarriesDetails) {
  Device dev(small_config(100), fast_options());
  try {
    DeviceBuffer<char> b(dev, 200);
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_EQ(e.requested_bytes, 200u);
    EXPECT_EQ(e.used_bytes, 0u);
    EXPECT_EQ(e.capacity_bytes, 100u);
  }
}

TEST(DeviceMemory, PeakTracksHighWaterMark) {
  Device dev(small_config(1 << 20), fast_options());
  {
    DeviceBuffer<char> a(dev, 1000);
    { DeviceBuffer<char> b(dev, 2000); }
    DeviceBuffer<char> c(dev, 500);
  }
  const auto m = dev.metrics();
  EXPECT_EQ(m.peak_mem_bytes, 3000u);
  EXPECT_EQ(m.current_mem_bytes, 0u);
}

TEST(DeviceMemory, MoveTransfersOwnership) {
  Device dev(small_config(1 << 20), fast_options());
  DeviceBuffer<int> a(dev, 100);
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(dev.used_global_bytes(), 400u);
  a = std::move(b);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(dev.used_global_bytes(), 400u);
}

TEST(DeviceMemory, DefaultConfigModelsK20c) {
  const DeviceConfig cfg;
  EXPECT_EQ(cfg.global_mem_bytes, 5ull << 30);
  EXPECT_EQ(cfg.sm_count, 13);
  // Peak ~3.5 TFLOP/s single precision.
  EXPECT_NEAR(cfg.peak_flops(), 3.52e12, 0.1e12);
}

TEST(PinnedMemory, AllocationIsAccounted) {
  Device dev(small_config(1 << 20), fast_options());
  { PinnedBuffer<float> staging(dev, 1 << 16); }
  EXPECT_GT(dev.metrics().pinned_alloc_seconds, 0.0);
  // Pinned memory is host memory: device accounting untouched.
  EXPECT_EQ(dev.used_global_bytes(), 0u);
}

TEST(PinnedMemory, HostAccessible) {
  Device dev(small_config(1 << 20), fast_options());
  PinnedBuffer<int> buf(dev, 16);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf.data()[i] = static_cast<int>(i * i);
  }
  EXPECT_EQ(buf.span()[15], 225);
}

TEST(DeviceMemory, ResetMetricsKeepsCurrentUsage) {
  Device dev(small_config(1 << 20), fast_options());
  DeviceBuffer<char> a(dev, 100);
  dev.reset_metrics();
  const auto m = dev.metrics();
  EXPECT_EQ(m.current_mem_bytes, 100u);
  EXPECT_EQ(m.peak_mem_bytes, 100u);
  EXPECT_EQ(m.kernel_launches, 0u);
}

TEST(DeviceMemory, ZeroSizedBufferIsValid) {
  Device dev(small_config(1 << 20), fast_options());
  DeviceBuffer<int> buf(dev, 0);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(dev.used_global_bytes(), 0u);
}

}  // namespace
