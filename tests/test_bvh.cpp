// Packed BVH index (IndexBackend::kBvh): structural invariants of the
// LBVH-style bottom-up packing, query equivalence against brute force,
// the id-ownership rule behind ScanMode::kHalf tree traversal, the device
// upload round-trip, and table equivalence against the grid backend.
#include "index/bvh.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/neighbor_table_builder.hpp"
#include "cudasim/device.hpp"
#include "cudasim/stream.hpp"
#include "data/generators.hpp"
#include "dbscan/neighbor_table.hpp"
#include "gpu/bvh_device_index.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

std::vector<PointId> brute_circle(std::span<const Point2> pts, const Point2& q,
                                  float eps) {
  std::vector<PointId> out;
  for (PointId i = 0; i < pts.size(); ++i) {
    if (dist2(q, pts[i]) <= eps * eps) out.push_back(i);
  }
  return out;
}

TEST(Bvh, RejectsBadInput) {
  const std::vector<Point2> points{{0, 0}};
  EXPECT_THROW(build_bvh_index({}), std::invalid_argument);
  EXPECT_THROW(build_bvh_index(points, 1), std::invalid_argument);
  EXPECT_THROW(build_bvh_index(points, 16, 1), std::invalid_argument);
}

TEST(Bvh, SinglePoint) {
  const std::vector<Point2> points{{1.0f, 2.0f}};
  const BvhIndex index = build_bvh_index(points);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.height, 1u);
  std::vector<PointId> out;
  bvh_query(index, {1.0f, 2.0f}, 0.1f, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
  out.clear();
  bvh_query(index, {5.0f, 5.0f}, 0.1f, out);
  EXPECT_TRUE(out.empty());
}

/// Every node's MBR must contain its subtree, children must be packed
/// contiguously, max_id must be the true subtree maximum (the kHalf prune
/// key), and the leaves must partition the id space exactly once.
TEST(Bvh, PackedStructureInvariants) {
  const auto points = data::generate_space_weather(
      3000, 31, {.width = 10.0f, .height = 10.0f});
  const BvhIndex index = build_bvh_index(points, 8, 4);
  ASSERT_LT(index.root, index.nodes.size());

  std::vector<std::uint32_t> seen(points.size(), 0);
  std::vector<std::uint32_t> stack{index.root};
  while (!stack.empty()) {
    const BvhNode& node = index.nodes[stack.back()];
    stack.pop_back();
    ASSERT_GT(node.count, 0u);
    if (node.leaf != 0) {
      ASSERT_LE(node.first + node.count, index.leaf_ids.size());
      std::uint32_t max_id = 0;
      for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
        const PointId id = index.leaf_ids[k];
        ASSERT_LT(id, points.size());
        ++seen[id];
        max_id = std::max<std::uint32_t>(max_id, id);
        // The leaf-packed point copy must match the id-ordered array, and
        // sit inside the leaf MBR.
        EXPECT_EQ(index.leaf_points[k].x, index.points[id].x);
        EXPECT_EQ(index.leaf_points[k].y, index.points[id].y);
        EXPECT_TRUE(node.mbr.contains(index.leaf_points[k]));
      }
      EXPECT_EQ(node.max_id, max_id);
    } else {
      ASSERT_LE(node.first + node.count, index.nodes.size());
      std::uint32_t max_id = 0;
      for (std::uint32_t c = node.first; c < node.first + node.count; ++c) {
        const BvhNode& child = index.nodes[c];
        EXPECT_LE(node.mbr.min_x, child.mbr.min_x);
        EXPECT_LE(node.mbr.min_y, child.mbr.min_y);
        EXPECT_GE(node.mbr.max_x, child.mbr.max_x);
        EXPECT_GE(node.mbr.max_y, child.mbr.max_y);
        max_id = std::max(max_id, child.max_id);
        stack.push_back(c);
      }
      EXPECT_EQ(node.max_id, max_id);
    }
  }
  for (const std::uint32_t count : seen) EXPECT_EQ(count, 1u);
}

class BvhQueryProperty
    : public ::testing::TestWithParam<std::tuple<int, float, unsigned>> {};

TEST_P(BvhQueryProperty, CircleMatchesBruteForce) {
  const auto [family, eps, capacity] = GetParam();
  const std::size_t n = 1200;
  const std::vector<Point2> points =
      family == 0
          ? data::generate_uniform(n, 33, 8.0f, 8.0f)
          : data::generate_space_weather(n, 34, {.width = 8.0f, .height = 8.0f});
  const BvhIndex index = build_bvh_index(points, capacity);
  std::vector<PointId> out;
  for (PointId q = 0; q < n; q += 47) {
    out.clear();
    bvh_query(index, points[q], eps, out);
    std::sort(out.begin(), out.end());
    EXPECT_EQ(out, brute_circle(points, points[q], eps));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BvhQueryProperty,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0.1f, 0.5f, 1.5f),
                       ::testing::Values(2u, 8u, 16u, 64u)));

/// The kHalf id-ownership rule: row i owns exactly the in-range candidates
/// with id >= i. The union of forward rows, transposed, must reconstruct
/// every full eps-neighborhood with each cross pair appearing exactly once
/// — the expand_half_table contract the fused and CSR paths rely on.
TEST(Bvh, ForwardQueryCoversEachPairExactlyOnce) {
  const float eps = 0.45f;
  const auto points = data::generate_space_weather(
      1500, 35, {.width = 8.0f, .height = 8.0f});
  const BvhIndex index = build_bvh_index(points, 8);

  std::vector<std::vector<PointId>> full(points.size());
  std::vector<PointId> out;
  for (PointId q = 0; q < points.size(); ++q) {
    out.clear();
    bvh_query_forward(index, q, eps, out);
    bool found_self = false;
    for (const PointId v : out) {
      ASSERT_GE(v, q) << "forward row " << q << " emitted a backward id";
      found_self |= (v == q);
      full[q].push_back(v);
      if (v != q) full[v].push_back(q);  // transpose the cross pair
    }
    EXPECT_TRUE(found_self) << "row " << q << " missing its own point";
  }
  for (PointId q = 0; q < points.size(); ++q) {
    std::sort(full[q].begin(), full[q].end());
    // Exactly-once: a doubled cross pair would surface as a duplicate id.
    EXPECT_EQ(full[q], brute_circle(points, points[q], eps))
        << "reconstructed neighborhood of " << q << " diverges";
  }
}

TEST(Bvh, DuplicatePointsAllFoundOnce) {
  std::vector<Point2> points(500, Point2{2.0f, 2.0f});
  const BvhIndex index = build_bvh_index(points);
  std::vector<PointId> out;
  bvh_query(index, {2.0f, 2.0f}, 0.01f, out);
  EXPECT_EQ(out.size(), 500u);
  // Forward rows under the id rule: row i sees the 500 - i larger ids.
  out.clear();
  bvh_query_forward(index, 499, 0.01f, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 499u);
}

TEST(Bvh, BuildIsDeterministic) {
  const auto points = data::generate_uniform(2000, 36, 9.0f, 9.0f);
  const BvhIndex a = build_bvh_index(points, 16, 4);
  const BvhIndex b = build_bvh_index(points, 16, 4);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_EQ(a.root, b.root);
  EXPECT_EQ(a.leaf_ids, b.leaf_ids);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].first, b.nodes[i].first);
    EXPECT_EQ(a.nodes[i].count, b.nodes[i].count);
    EXPECT_EQ(a.nodes[i].max_id, b.nodes[i].max_id);
    EXPECT_EQ(a.nodes[i].leaf, b.nodes[i].leaf);
  }
}

/// Device round-trip: the uploaded view must answer exactly like the host
/// index (the simulator's buffers are addressable host memory, so the
/// view's pointers can be walked directly).
TEST(Bvh, DeviceUploadRoundTripsTheView) {
  const auto points = data::generate_uniform(800, 37, 6.0f, 6.0f);
  const BvhIndex host = build_bvh_index(points, 8);
  cudasim::Device device({}, fast_options());
  cudasim::Stream stream(device);
  const gpu::BvhDeviceIndex uploaded(device, stream, host);
  stream.synchronize();

  const BvhView view = uploaded.view();
  EXPECT_EQ(view.num_nodes, host.nodes.size());
  EXPECT_EQ(view.num_points, host.points.size());
  EXPECT_EQ(view.root, host.root);
  EXPECT_GT(uploaded.upload_bytes(), 0u);
  for (std::uint32_t i = 0; i < view.num_nodes; ++i) {
    EXPECT_EQ(view.nodes[i].first, host.nodes[i].first);
    EXPECT_EQ(view.nodes[i].count, host.nodes[i].count);
    EXPECT_EQ(view.nodes[i].leaf, host.nodes[i].leaf);
  }
  for (std::uint32_t i = 0; i < view.num_points; ++i) {
    EXPECT_EQ(view.leaf_ids[i], host.leaf_ids[i]);
    EXPECT_EQ(view.points[i].x, host.points[i].x);
  }
}

/// Backend equivalence at the table layer: a BVH-backed device build must
/// produce a table byte-identical (after canonicalize) to the grid host
/// oracle — same id space, same pair cover, different traversal.
TEST(Bvh, DeviceTableMatchesGridOracleAcrossScanModes) {
  const float eps = 0.4f;
  const auto points = data::generate_space_weather(
      2000, 38, {.width = 10.0f, .height = 10.0f});
  const GridIndex index = build_grid_index(points, eps);
  NeighborTable oracle = build_neighbor_table_host(index, eps);
  oracle.canonicalize();

  cudasim::Device device({}, fast_options());
  for (const ScanMode scan : {ScanMode::kHalf, ScanMode::kFull}) {
    SCOPED_TRACE(scan == ScanMode::kHalf ? "kHalf" : "kFull");
    BatchPolicy policy;
    policy.index_backend = IndexBackend::kBvh;
    policy.scan_mode = scan;
    NeighborTableBuilder builder(device, policy);
    BuildReport report;
    NeighborTable table = builder.build(index, eps, &report);
    table.canonicalize();
    EXPECT_TRUE(table.identical_to(oracle));
    EXPECT_EQ(report.index_backend, IndexBackend::kBvh);
    EXPECT_EQ(report.total_pairs, oracle.total_pairs());
  }
}

}  // namespace
}  // namespace hdbscan
