// ScanMode::kHalf property tests: every pipeline's half-comparison build
// must canonicalize to the exact table the legacy full scan produces —
// including on the inputs that stress the ordering invariant (duplicate
// coordinates, points sitting exactly on cell boundaries, one dense cell)
// — while doing roughly half the distance-test FLOPs.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/hybrid_dbscan3.hpp"
#include "core/neighbor_table_builder.hpp"
#include "data/generators.hpp"
#include "index/grid_index.hpp"
#include "index/grid_index3.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

void expect_identical(NeighborTable got, NeighborTable want) {
  got.canonicalize();
  want.canonicalize();
  ASSERT_EQ(got.num_points(), want.num_points());
  EXPECT_EQ(got.total_pairs(), want.total_pairs());
  EXPECT_TRUE(got.identical_to(want));
}

/// Builds the same index twice — once per scan mode — and checks byte
/// equality after canonicalization.
void expect_half_matches_full(const std::vector<Point2>& points, float eps,
                              TableBuildMode build_mode,
                              bool use_shared = false) {
  const GridIndex index = build_grid_index(points, eps);
  BatchPolicy policy;
  policy.build_mode = build_mode;
  policy.use_shared_kernel = use_shared;

  policy.scan_mode = ScanMode::kFull;
  cudasim::Device full_dev({}, fast_options());
  NeighborTable full = NeighborTableBuilder(full_dev, policy).build(index, eps);

  policy.scan_mode = ScanMode::kHalf;
  cudasim::Device half_dev({}, fast_options());
  NeighborTable half = NeighborTableBuilder(half_dev, policy).build(index, eps);

  expect_identical(std::move(half), std::move(full));
}

/// Duplicate coordinates: zero-distance pairs between distinct ids, where
/// "tested exactly once" leans entirely on the lookup-position ordering
/// (coordinates cannot break the tie).
std::vector<Point2> duplicate_heavy_points() {
  std::vector<Point2> points;
  for (int i = 0; i < 60; ++i) points.push_back({1.05f, 1.05f});
  for (int i = 0; i < 40; ++i) points.push_back({1.05f, 1.35f});
  const auto filler = data::generate_uniform(400, 11, 4.0f, 4.0f);
  points.insert(points.end(), filler.begin(), filler.end());
  return points;
}

/// Points exactly on cell boundaries: candidates sit in the first row/col
/// of their cell, where an off-by-one in the forward stencil would drop or
/// double-count cross-cell pairs.
std::vector<Point2> cell_boundary_points(float eps) {
  std::vector<Point2> points;
  for (int cx = 0; cx < 8; ++cx) {
    for (int cy = 0; cy < 8; ++cy) {
      points.push_back({cx * eps, cy * eps});          // cell corner
      points.push_back({cx * eps + eps / 2, cy * eps});  // edge midpoint
    }
  }
  return points;
}

TEST(HalfComparison, CsrMatchesFullOnDuplicateCoordinates) {
  expect_half_matches_full(duplicate_heavy_points(), 0.3f,
                           TableBuildMode::kCsrTwoPass);
}

TEST(HalfComparison, PairSortMatchesFullOnDuplicateCoordinates) {
  expect_half_matches_full(duplicate_heavy_points(), 0.3f,
                           TableBuildMode::kPairSort);
}

TEST(HalfComparison, CsrMatchesFullOnCellBoundaryPoints) {
  expect_half_matches_full(cell_boundary_points(0.25f), 0.25f,
                           TableBuildMode::kCsrTwoPass);
}

TEST(HalfComparison, PairSortMatchesFullOnCellBoundaryPoints) {
  expect_half_matches_full(cell_boundary_points(0.25f), 0.25f,
                           TableBuildMode::kPairSort);
}

TEST(HalfComparison, CsrMatchesFullOnDenseSingleCell) {
  // Every point in one grid cell: the same-cell >= rule carries the whole
  // invariant (the stencil contributes nothing).
  std::vector<Point2> points(500, Point2{2.0f, 2.0f});
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].x += 0.0001f * static_cast<float>(i % 7);
  }
  expect_half_matches_full(points, 0.5f, TableBuildMode::kCsrTwoPass);
}

TEST(HalfComparison, SharedKernelMatchesFull) {
  // The shared-tile kernel restores symmetry device-side (push_dual), so
  // its half build needs no host expand — it must still match byte-for-byte.
  expect_half_matches_full(data::generate_sky_survey(3000, 91), 0.35f,
                           TableBuildMode::kPairSort, /*use_shared=*/true);
  expect_half_matches_full(duplicate_heavy_points(), 0.3f,
                           TableBuildMode::kPairSort, /*use_shared=*/true);
}

TEST(HalfComparison, MatchesHostOracle) {
  // Not just full-vs-half consistency: the half build equals the
  // independently computed host table.
  const auto points = data::generate_space_weather(
      2000, 33, {.width = 8.0f, .height = 8.0f});
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);
  cudasim::Device dev({}, fast_options());
  NeighborTable table = NeighborTableBuilder(dev).build(index, eps);
  expect_identical(std::move(table), build_neighbor_table_host(index, eps));
}

TEST(HalfComparison, HostStridedForwardShardsExpandToFullTable) {
  // The degradation ladder's host rung builds *forward* shards in half
  // mode; merged and expanded they must equal the full host table.
  const auto points = data::generate_uniform(1500, 7, 6.0f, 6.0f);
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);
  NeighborTable merged(index.size());
  const std::uint32_t stride = 3;
  for (std::uint32_t first = 0; first < stride; ++first) {
    merged.absorb_shard(build_neighbor_table_host_strided(
        index, eps, first, stride, ScanMode::kHalf));
  }
  const double expand_seconds = merged.expand_half_table();
  EXPECT_GE(expand_seconds, 0.0);
  expect_identical(std::move(merged), build_neighbor_table_host(index, eps));
}

TEST(HalfComparison, Device3MatchesFullAndHost) {
  std::vector<Point3> points;
  Xoshiro256 rng(19);
  for (int i = 0; i < 1200; ++i) {
    points.push_back({rng.uniform(0.0f, 4.0f), rng.uniform(0.0f, 4.0f),
                      rng.uniform(0.0f, 4.0f)});
  }
  // Duplicate-coordinate clump in 3-D too.
  for (int i = 0; i < 30; ++i) points.push_back({1.5f, 1.5f, 1.5f});
  const float eps = 0.4f;
  const GridIndex3 index = build_grid_index3(points, eps);

  cudasim::Device full_dev({}, fast_options());
  NeighborTable full = build_neighbor_table_device3(
      full_dev, index, eps, nullptr, ScanMode::kFull);
  cudasim::Device half_dev({}, fast_options());
  NeighborTable half = build_neighbor_table_device3(
      half_dev, index, eps, nullptr, ScanMode::kHalf);

  NeighborTable oracle = build_neighbor_table_host3(index, eps);
  expect_identical(std::move(half), std::move(full));

  cudasim::Device dev2({}, fast_options());
  NeighborTable again = build_neighbor_table_device3(
      dev2, index, eps, nullptr, ScanMode::kHalf);
  expect_identical(std::move(again), std::move(oracle));
}

TEST(HalfComparison, HalfScanRoughlyHalvesDistanceFlops) {
  // The tentpole's arithmetic claim, as a regression gate: on uniform data
  // the half scan must cut the batch kernels' distance-test FLOPs to
  // under 0.6x of the full scan (ideal is ~0.5x; self-pairs and stencil
  // edges keep it above that).
  const auto points = data::generate_uniform(6000, 5, 8.0f, 8.0f);
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);

  BatchPolicy policy;
  BuildReport full_report, half_report;
  policy.scan_mode = ScanMode::kFull;
  cudasim::Device full_dev({}, fast_options());
  NeighborTable full =
      NeighborTableBuilder(full_dev, policy).build(index, eps, &full_report);
  policy.scan_mode = ScanMode::kHalf;
  cudasim::Device half_dev({}, fast_options());
  NeighborTable half =
      NeighborTableBuilder(half_dev, policy).build(index, eps, &half_report);

  ASSERT_GT(full_report.kernel_flops, 0u);
  ASSERT_GT(half_report.kernel_flops, 0u);
  const double ratio = static_cast<double>(half_report.kernel_flops) /
                       static_cast<double>(full_report.kernel_flops);
  EXPECT_LT(ratio, 0.6);
  // Same output, and the half build shipped fewer result bytes.
  EXPECT_EQ(half_report.total_pairs, full_report.total_pairs);
  EXPECT_LT(half_report.d2h_bytes, full_report.d2h_bytes);
  EXPECT_GT(half_report.expand_seconds, 0.0);
  EXPECT_EQ(half_report.scan_mode, ScanMode::kHalf);
  EXPECT_EQ(full_report.scan_mode, ScanMode::kFull);
  expect_identical(std::move(half), std::move(full));
}

}  // namespace
}  // namespace hdbscan
