#include "index/rtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "data/generators.hpp"

namespace hdbscan {
namespace {

std::vector<PointId> brute_circle(std::span<const Point2> pts, const Point2& q,
                                  float eps) {
  std::vector<PointId> out;
  for (PointId i = 0; i < pts.size(); ++i) {
    if (dist2(q, pts[i]) <= eps * eps) out.push_back(i);
  }
  return out;
}

TEST(RTree, RejectsBadInput) {
  const std::vector<Point2> points{{0, 0}};
  EXPECT_THROW(RTree({}, 16), std::invalid_argument);
  EXPECT_THROW(RTree(points, 1), std::invalid_argument);
}

TEST(RTree, SinglePoint) {
  const std::vector<Point2> points{{1.0f, 2.0f}};
  const RTree tree(points);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  std::vector<PointId> out;
  tree.query_circle({1.0f, 2.0f}, 0.1f, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
  out.clear();
  tree.query_circle({5.0f, 5.0f}, 0.1f, out);
  EXPECT_TRUE(out.empty());
}

TEST(RTree, HeightGrowsLogarithmically) {
  const auto points = data::generate_uniform(10000, 3, 10.0f, 10.0f);
  const RTree tree(points, 16);
  // 10000 / 16 = 625 leaves; /16 = 40; /16 = 3; /16 = 1 -> height 4.
  EXPECT_EQ(tree.height(), 4u);
  EXPECT_GT(tree.node_count(), 625u);
}

class RTreeQueryProperty
    : public ::testing::TestWithParam<std::tuple<int, float, unsigned>> {};

TEST_P(RTreeQueryProperty, CircleMatchesBruteForce) {
  const auto [family, eps, capacity] = GetParam();
  const std::size_t n = 1200;
  const std::vector<Point2> points =
      family == 0
          ? data::generate_uniform(n, 91, 8.0f, 8.0f)
          : data::generate_space_weather(n, 92, {.width = 8.0f, .height = 8.0f});
  const RTree tree(points, capacity);
  std::vector<PointId> out;
  for (PointId q = 0; q < n; q += 53) {
    out.clear();
    tree.query_circle(points[q], eps, out);
    std::sort(out.begin(), out.end());
    EXPECT_EQ(out, brute_circle(points, points[q], eps));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeQueryProperty,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0.1f, 0.5f, 1.5f),
                       ::testing::Values(2u, 8u, 16u, 64u)));

TEST(RTree, RectQueryMatchesBruteForce) {
  const auto points = data::generate_uniform(2000, 6, 10.0f, 10.0f);
  const RTree tree(points);
  const Rect2 rect{2.0f, 3.0f, 5.0f, 6.5f};
  std::vector<PointId> out;
  tree.query_rect(rect, out);
  std::sort(out.begin(), out.end());
  std::vector<PointId> expected;
  for (PointId i = 0; i < points.size(); ++i) {
    if (rect.contains(points[i])) expected.push_back(i);
  }
  EXPECT_EQ(out, expected);
}

TEST(RTree, QueryChargesAccumulator) {
  const auto points = data::generate_uniform(5000, 7, 10.0f, 10.0f);
  const RTree tree(points);
  TimeAccumulator acc;
  std::vector<PointId> out;
  for (int i = 0; i < 50; ++i) {
    out.clear();
    tree.query_circle(points[static_cast<std::size_t>(i) * 13], 0.5f, out,
                      &acc);
  }
  EXPECT_EQ(acc.count(), 50u);
  EXPECT_GT(acc.total_seconds(), 0.0);
}

TEST(RTree, DuplicatePoints) {
  std::vector<Point2> points(500, Point2{2.0f, 2.0f});
  const RTree tree(points);
  std::vector<PointId> out;
  tree.query_circle({2.0f, 2.0f}, 0.01f, out);
  EXPECT_EQ(out.size(), 500u);
}

TEST(RTree, EmptyResultOutsideExtent) {
  const auto points = data::generate_uniform(100, 8, 1.0f, 1.0f);
  const RTree tree(points);
  std::vector<PointId> out;
  tree.query_circle({50.0f, 50.0f}, 0.5f, out);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// Build variants: parallel STR bit-identity, incremental query equivalence
// ---------------------------------------------------------------------------

/// The parallel STR build only distributes the slice sorts and the leaf
/// packing; the packed layout must come out bit-identical to the serial
/// build — node MBRs, entry order, everything structurally_equal checks.
TEST(RTreeBuilds, ParallelStrIsBitIdenticalToSerial) {
  // Sizes straddling slice boundaries (exact multiples, one-off remainders,
  // fewer points than one leaf) and both dataset shapes.
  for (const std::size_t n : {5u, 16u, 17u, 255u, 1024u, 3000u}) {
    for (const unsigned capacity : {2u, 8u, 16u}) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " capacity=" + std::to_string(capacity));
      const auto points = data::generate_space_weather(
          n, 93, {.width = 9.0f, .height = 9.0f});
      const RTree serial(points, capacity, RTreeBuild::kStrSerial);
      const RTree parallel(points, capacity, RTreeBuild::kStrParallel);
      EXPECT_TRUE(serial.structurally_equal(parallel));
      EXPECT_EQ(serial.node_count(), parallel.node_count());
      EXPECT_EQ(serial.height(), parallel.height());
    }
  }
}

/// Guttman's incremental build packs a generally different — and worse —
/// tree, but every circle query must return exactly the same id set.
TEST(RTreeBuilds, IncrementalBuildAnswersIdentically) {
  const std::size_t n = 1500;
  for (const int family : {0, 1}) {
    SCOPED_TRACE("family " + std::to_string(family));
    const std::vector<Point2> points =
        family == 0 ? data::generate_uniform(n, 94, 8.0f, 8.0f)
                    : data::generate_space_weather(
                          n, 95, {.width = 8.0f, .height = 8.0f});
    const RTree str(points, 8, RTreeBuild::kStrSerial);
    const RTree incremental(points, 8, RTreeBuild::kIncremental);
    EXPECT_EQ(incremental.size(), n);
    std::vector<PointId> got, want;
    for (PointId q = 0; q < n; q += 37) {
      for (const float eps : {0.2f, 0.9f}) {
        got.clear();
        want.clear();
        incremental.query_circle(points[q], eps, got);
        str.query_circle(points[q], eps, want);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want) << "q=" << q << " eps=" << eps;
        EXPECT_EQ(got, brute_circle(points, points[q], eps));
      }
    }
  }
}

TEST(RTreeBuilds, IncrementalHandlesDuplicatesAndSinglePoint) {
  const std::vector<Point2> one{{1.0f, 1.0f}};
  const RTree single(one, 4, RTreeBuild::kIncremental);
  std::vector<PointId> out;
  single.query_circle({1.0f, 1.0f}, 0.1f, out);
  EXPECT_EQ(out.size(), 1u);

  // Coincident points force repeated linear splits of zero-area nodes.
  const std::vector<Point2> dupes(300, Point2{2.0f, 2.0f});
  const RTree tree(dupes, 4, RTreeBuild::kIncremental);
  out.clear();
  tree.query_circle({2.0f, 2.0f}, 0.01f, out);
  EXPECT_EQ(out.size(), 300u);
}

TEST(RTreeBuilds, RectQueriesAgreeAcrossBuilds) {
  const auto points = data::generate_uniform(2000, 96, 10.0f, 10.0f);
  const Rect2 rect{1.5f, 2.5f, 6.0f, 7.0f};
  std::vector<std::vector<PointId>> results;
  for (const RTreeBuild build :
       {RTreeBuild::kStrSerial, RTreeBuild::kStrParallel,
        RTreeBuild::kIncremental}) {
    const RTree tree(points, 16, build);
    std::vector<PointId> out;
    tree.query_rect(rect, out);
    std::sort(out.begin(), out.end());
    results.push_back(std::move(out));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
  EXPECT_FALSE(results[0].empty());
}

}  // namespace
}  // namespace hdbscan
