#include "dbscan/optics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "data/generators.hpp"
#include "dbscan/dbscan.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

struct OpticsFixture {
  explicit OpticsFixture(std::size_t n = 2000, float eps_in = 0.6f,
                         int minpts_in = 5, std::uint64_t seed = 31) {
    points = data::generate_gaussian_blobs(n, seed, 8, 0.25f, 15.0f, 15.0f,
                                           0.15);
    eps = eps_in;
    minpts = minpts_in;
    index = build_grid_index(points, eps);
    table = build_neighbor_table_host(index, eps);
    result = optics(index.points, table, eps, minpts);
  }
  std::vector<Point2> points;
  float eps;
  int minpts;
  GridIndex index;
  NeighborTable table;
  OpticsResult result;
};

TEST(Optics, OrderIsPermutation) {
  const OpticsFixture f;
  ASSERT_EQ(f.result.order.size(), f.points.size());
  std::vector<PointId> sorted = f.result.order;
  std::sort(sorted.begin(), sorted.end());
  for (PointId i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Optics, CoreDistanceMatchesDefinition) {
  const OpticsFixture f;
  for (PointId i = 0; i < f.table.num_points(); i += 17) {
    const auto neighbors = f.table.neighbors(i);
    if (neighbors.size() < static_cast<std::size_t>(f.minpts)) {
      EXPECT_EQ(f.result.core_distance[i], kUndefinedDistance);
      continue;
    }
    std::vector<float> dists;
    for (const PointId j : neighbors) {
      dists.push_back(dist(f.index.points[i], f.index.points[j]));
    }
    std::sort(dists.begin(), dists.end());
    EXPECT_FLOAT_EQ(f.result.core_distance[i],
                    dists[static_cast<std::size_t>(f.minpts - 1)]);
    EXPECT_LE(f.result.core_distance[i], f.eps);
  }
}

TEST(Optics, ReachabilityNeverBelowCoreDistanceOfPredecessors) {
  const OpticsFixture f;
  for (PointId i = 0; i < f.points.size(); ++i) {
    const float r = f.result.reachability[i];
    if (r == kUndefinedDistance) continue;
    // Reachability is max(core-dist <= eps, dist <= eps) for some core,
    // so it can never exceed eps.
    EXPECT_LE(r, f.eps + 1e-5f);
    EXPECT_GT(r, 0.0f);
  }
}

TEST(Optics, ExtractionAtFullEpsMatchesDbscanOnCores) {
  const OpticsFixture f;
  const ClusterResult extracted = extract_dbscan_clustering(f.result, f.eps);
  const ClusterResult reference = dbscan_neighbor_table(f.table, f.minpts);
  // Exact agreement on core points (extraction may demote a few border
  // points to noise — an inherent property of ExtractDBSCAN).
  std::map<std::int32_t, std::int32_t> mapping;
  for (PointId i = 0; i < f.points.size(); ++i) {
    if (f.table.neighbor_count(i) < static_cast<std::uint32_t>(f.minpts)) {
      continue;  // not core
    }
    ASSERT_GE(extracted.labels[i], 0) << "core " << i << " unclustered";
    ASSERT_GE(reference.labels[i], 0);
    auto [it, inserted] =
        mapping.try_emplace(reference.labels[i], extracted.labels[i]);
    EXPECT_EQ(it->second, extracted.labels[i]) << "core partition differs";
  }
  EXPECT_EQ(extracted.num_clusters, reference.num_clusters);
}

class OpticsExtractSweep : public ::testing::TestWithParam<float> {};

TEST_P(OpticsExtractSweep, MatchesDbscanCoresAtSmallerEps) {
  const float eps_prime = GetParam();
  const OpticsFixture f(1500, 0.8f, 5, 33);
  const ClusterResult extracted =
      extract_dbscan_clustering(f.result, eps_prime);

  // Reference DBSCAN at eps'.
  const GridIndex index_p = build_grid_index(f.points, eps_prime);
  const NeighborTable table_p = build_neighbor_table_host(index_p, eps_prime);
  const ClusterResult ref_indexed = dbscan_neighbor_table(table_p, f.minpts);

  // Compare in a common (input) order on eps'-core points only.
  std::vector<std::int32_t> ref_input(f.points.size());
  std::vector<bool> core_input(f.points.size(), false);
  for (PointId i = 0; i < f.points.size(); ++i) {
    ref_input[index_p.original_ids[i]] = ref_indexed.labels[i];
    core_input[index_p.original_ids[i]] =
        table_p.neighbor_count(i) >= static_cast<std::uint32_t>(f.minpts);
  }
  std::vector<std::int32_t> ext_input(f.points.size());
  for (PointId i = 0; i < f.points.size(); ++i) {
    ext_input[f.index.original_ids[i]] = extracted.labels[i];
  }

  std::map<std::int32_t, std::int32_t> fwd, bwd;
  for (std::size_t i = 0; i < f.points.size(); ++i) {
    if (!core_input[i]) continue;
    ASSERT_GE(ext_input[i], 0) << "eps'-core point " << i << " unclustered";
    auto [f1, in1] = fwd.try_emplace(ref_input[i], ext_input[i]);
    EXPECT_EQ(f1->second, ext_input[i]);
    auto [b1, in2] = bwd.try_emplace(ext_input[i], ref_input[i]);
    EXPECT_EQ(b1->second, ref_input[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(EpsPrimes, OpticsExtractSweep,
                         ::testing::Values(0.2f, 0.35f, 0.5f, 0.65f, 0.8f));

TEST(Optics, RejectsBadInput) {
  const OpticsFixture f(200, 0.4f, 4, 9);
  EXPECT_THROW(optics(std::span<const Point2>(f.index.points.data(), 10),
                      f.table, f.eps, f.minpts),
               std::invalid_argument);
  EXPECT_THROW(optics(f.index.points, f.table, f.eps, 0),
               std::invalid_argument);
  EXPECT_THROW(extract_dbscan_clustering(f.result, f.eps * 2.0f),
               std::invalid_argument);
}

TEST(Optics, MinptsOneEveryPointCore) {
  const OpticsFixture f(300, 0.4f, 1, 10);
  for (PointId i = 0; i < f.points.size(); ++i) {
    // With minpts = 1 the core distance is the self distance: 0.
    EXPECT_EQ(f.result.core_distance[i], 0.0f);
  }
  const ClusterResult extracted = extract_dbscan_clustering(f.result, 0.4f);
  EXPECT_EQ(extracted.noise_count(), 0u);
}

}  // namespace
}  // namespace hdbscan
