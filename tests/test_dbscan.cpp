#include "dbscan/dbscan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "data/generators.hpp"
#include "dbscan/cluster_compare.hpp"

namespace hdbscan {
namespace {

TEST(Dbscan, EmptyishInput) {
  const std::vector<Point2> one{{0, 0}};
  const auto r = dbscan_rtree(one, 1.0f, 4);
  ASSERT_EQ(r.labels.size(), 1u);
  EXPECT_EQ(r.labels[0], kNoise);
  EXPECT_EQ(r.num_clusters, 0);
}

TEST(Dbscan, MinptsOneMakesEveryPointCore) {
  const auto points = data::generate_uniform(100, 1, 100.0f, 100.0f);
  const auto r = dbscan_rtree(points, 0.5f, 1);
  EXPECT_EQ(r.noise_count(), 0u);
  EXPECT_GT(r.num_clusters, 0);
}

TEST(Dbscan, RejectsInvalidMinpts) {
  const std::vector<Point2> points{{0, 0}, {1, 1}};
  EXPECT_THROW(dbscan_rtree(points, 1.0f, 0), std::invalid_argument);
}

TEST(Dbscan, TwoSeparatedBlobsFormTwoClusters) {
  std::vector<Point2> points;
  Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) {
    points.push_back({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f)});
  }
  for (int i = 0; i < 100; ++i) {
    points.push_back({rng.uniform(10.0f, 11.0f), rng.uniform(10.0f, 11.0f)});
  }
  const auto r = dbscan_rtree(points, 0.4f, 4);
  EXPECT_EQ(r.num_clusters, 2);
  EXPECT_EQ(r.noise_count(), 0u);
  // All of blob 1 shares a label distinct from blob 2.
  const std::int32_t l0 = r.labels[0];
  const std::int32_t l1 = r.labels[100];
  EXPECT_NE(l0, l1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.labels[i], l0);
  for (int i = 100; i < 200; ++i) EXPECT_EQ(r.labels[i], l1);
}

TEST(Dbscan, IsolatedPointsAreNoise) {
  std::vector<Point2> points;
  // A tight clump of 10 plus 5 far-away singletons.
  for (int i = 0; i < 10; ++i) {
    points.push_back({0.01f * static_cast<float>(i), 0.0f});
  }
  for (int i = 0; i < 5; ++i) {
    points.push_back({100.0f + 10.0f * static_cast<float>(i), 100.0f});
  }
  const auto r = dbscan_rtree(points, 0.5f, 4);
  EXPECT_EQ(r.num_clusters, 1);
  EXPECT_EQ(r.noise_count(), 5u);
  for (int i = 10; i < 15; ++i) EXPECT_EQ(r.labels[i], kNoise);
}

TEST(Dbscan, RecoversGeneratedBlobs) {
  std::vector<int> truth;
  const auto points = data::generate_gaussian_blobs(
      2000, 5, /*num_blobs=*/9, /*sigma=*/0.2f, 30.0f, 30.0f, 0.0, &truth);
  const auto r = dbscan_rtree(points, 0.5f, 4);
  EXPECT_EQ(r.num_clusters, 9);
  // Points from the same blob that are clustered must share a label.
  std::vector<std::int32_t> blob_to_label(9, -10);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (r.labels[i] < 0) continue;
    auto& m = blob_to_label[static_cast<std::size_t>(truth[i])];
    if (m == -10) {
      m = r.labels[i];
    } else {
      EXPECT_EQ(m, r.labels[i]) << "blob " << truth[i] << " split";
    }
  }
}

TEST(Dbscan, LargerEpsMergesClusters) {
  const auto points = data::generate_gaussian_blobs(1000, 6, 4, 0.3f, 10.0f,
                                                    10.0f);
  const auto tight = dbscan_rtree(points, 0.3f, 4);
  const auto loose = dbscan_rtree(points, 6.0f, 4);
  EXPECT_GE(tight.num_clusters, loose.num_clusters);
  EXPECT_EQ(loose.num_clusters, 1);
}

TEST(Dbscan, HigherMinptsIncreasesNoise) {
  const auto points = data::generate_sky_survey(3000, 7);
  const auto low = dbscan_rtree(points, 0.3f, 4);
  const auto high = dbscan_rtree(points, 0.3f, 30);
  EXPECT_LE(low.noise_count(), high.noise_count());
}

TEST(Dbscan, GridVariantMatchesRtreeVariant) {
  const auto points = data::generate_space_weather(2000, 8);
  const float eps = 0.35f;
  const int minpts = 4;
  const auto ref = dbscan_rtree(points, eps, minpts);
  const GridIndex index = build_grid_index(points, eps);
  const auto via_grid_indexed = dbscan_grid(index, eps, minpts);

  // Map grid-order labels back to input order before comparing.
  ClusterResult via_grid;
  via_grid.num_clusters = via_grid_indexed.num_clusters;
  via_grid.labels.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    via_grid.labels[index.original_ids[i]] = via_grid_indexed.labels[i];
  }

  // Both must be valid DBSCAN results w.r.t. an input-order neighbor
  // table; build one by brute force through the grid.
  const GridIndex check_index = build_grid_index(points, eps);
  NeighborTable input_order_table(points.size());
  std::vector<PointId> neighbors;
  for (PointId i = 0; i < points.size(); ++i) {
    grid_query(check_index, points[i], eps, neighbors);
    std::vector<NeighborPair> pairs;
    for (const PointId v : neighbors) {
      pairs.push_back({i, check_index.original_ids[v]});
    }
    std::sort(pairs.begin(), pairs.end());
    input_order_table.append_sorted_batch(pairs);
  }
  const auto outcome =
      compare_clusterings(ref, via_grid, input_order_table, minpts);
  EXPECT_TRUE(outcome.equivalent) << outcome.diagnostic;
}

TEST(Dbscan, NeighborTableVariantMatchesGridVariant) {
  const auto points = data::generate_sky_survey(2500, 9);
  const float eps = 0.4f;
  const int minpts = 5;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable table = build_neighbor_table_host(index, eps);
  const auto a = dbscan_grid(index, eps, minpts);
  const auto b = dbscan_neighbor_table(table, minpts);
  const auto outcome = compare_clusterings(a, b, table, minpts);
  EXPECT_TRUE(outcome.equivalent) << outcome.diagnostic;
  // Same search order -> labels should even be bitwise identical.
  EXPECT_EQ(a.labels, b.labels);
}

TEST(ClusterResult, CanonicalizeIsOrderInvariant) {
  ClusterResult a;
  a.labels = {2, 2, 0, 1, -1, 0};
  a.num_clusters = 3;
  ClusterResult b;
  b.labels = {0, 0, 1, 2, -1, 1};
  b.num_clusters = 3;
  EXPECT_EQ(canonicalize(a).labels, canonicalize(b).labels);
  EXPECT_EQ(canonicalize(a).num_clusters, 3);
}

TEST(ClusterResult, Accessors) {
  ClusterResult r;
  r.labels = {0, 0, 1, -1, -1, 1, 1};
  r.num_clusters = 2;
  EXPECT_EQ(r.noise_count(), 2u);
  EXPECT_EQ(r.clustered_count(), 5u);
  const auto sizes = r.cluster_sizes();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 3u);
}

}  // namespace
}  // namespace hdbscan
