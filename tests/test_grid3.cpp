// 3-D grid index, kernels and end-to-end HYBRID-DBSCAN.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/hybrid_dbscan3.hpp"
#include "cudasim/buffer_pool.hpp"
#include "dbscan/cluster_compare.hpp"
#include "dbscan/dbscan.hpp"
#include "gpu/kernels3.hpp"
#include "index/grid_index3.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

std::vector<Point3> random_points3(std::size_t n, std::uint64_t seed,
                                   float extent) {
  Xoshiro256 rng(seed);
  std::vector<Point3> points(n);
  for (auto& p : points) {
    p = {rng.uniform(0.0f, extent), rng.uniform(0.0f, extent),
         rng.uniform(0.0f, extent)};
  }
  return points;
}

/// Clustered 3-D data: blobs plus background noise.
std::vector<Point3> blobs3(std::size_t n, std::uint64_t seed, unsigned blobs,
                           float sigma, float extent, double noise_frac) {
  Xoshiro256 rng(seed);
  std::vector<Point3> centers(blobs);
  for (auto& c : centers) {
    c = {rng.uniform(0.0f, extent), rng.uniform(0.0f, extent),
         rng.uniform(0.0f, extent)};
  }
  std::vector<Point3> points;
  points.reserve(n);
  auto clamp01 = [extent](double v) {
    return static_cast<float>(std::min<double>(extent, std::max(0.0, v)));
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < noise_frac) {
      points.push_back({rng.uniform(0.0f, extent), rng.uniform(0.0f, extent),
                        rng.uniform(0.0f, extent)});
    } else {
      const Point3& c = centers[rng.below(blobs)];
      points.push_back({clamp01(rng.normal(c.x, sigma)),
                        clamp01(rng.normal(c.y, sigma)),
                        clamp01(rng.normal(c.z, sigma))});
    }
  }
  return points;
}

std::vector<PointId> brute3(std::span<const Point3> pts, const Point3& q,
                            float eps) {
  std::vector<PointId> out;
  for (PointId i = 0; i < pts.size(); ++i) {
    if (dist2(q, pts[i]) <= eps * eps) out.push_back(i);
  }
  return out;
}

TEST(GridIndex3, RejectsBadInput) {
  const std::vector<Point3> points{{0, 0, 0}};
  EXPECT_THROW(build_grid_index3({}, 1.0f), std::invalid_argument);
  EXPECT_THROW(build_grid_index3(points, -0.5f), std::invalid_argument);
}

TEST(GridIndex3, LookupIsPermutation) {
  const auto points = random_points3(3000, 1, 5.0f);
  const GridIndex3 g = build_grid_index3(points, 0.4f);
  std::vector<PointId> sorted(g.lookup.begin(), g.lookup.end());
  std::sort(sorted.begin(), sorted.end());
  for (PointId i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  // Reordered points match originals through original_ids.
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.points[i], points[g.original_ids[i]]);
  }
}

TEST(NeighborCells3, InteriorCellHas27) {
  GridParams3 p{0, 0, 0, 1.0f, 5, 5, 5};
  std::array<std::uint32_t, 27> out{};
  // Center cell of the 5x5x5 grid: (2,2,2) -> (2*5+2)*5+2 = 62.
  EXPECT_EQ(get_neighbor_cells3(p, 62, out), 27u);
  std::set<std::uint32_t> cells(out.begin(), out.begin() + 27);
  EXPECT_EQ(cells.size(), 27u);
  EXPECT_TRUE(cells.count(62));
}

TEST(NeighborCells3, CornerCellHasEight) {
  GridParams3 p{0, 0, 0, 1.0f, 5, 5, 5};
  std::array<std::uint32_t, 27> out{};
  EXPECT_EQ(get_neighbor_cells3(p, 0, out), 8u);
  EXPECT_EQ(get_neighbor_cells3(p, 124, out), 8u);  // far corner
}

class Grid3QueryProperty : public ::testing::TestWithParam<float> {};

TEST_P(Grid3QueryProperty, MatchesBruteForce) {
  const float eps = GetParam();
  const auto points = blobs3(1200, 7, 5, 0.3f, 4.0f, 0.2);
  const GridIndex3 g = build_grid_index3(points, eps);
  std::vector<PointId> got;
  for (PointId q = 0; q < g.size(); q += 31) {
    grid_query3(g, g.points[q], eps, got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute3(g.points, g.points[q], eps)) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Eps, Grid3QueryProperty,
                         ::testing::Values(0.1f, 0.3f, 0.8f, 2.0f));

TEST(Kernels3, GlobalKernelMatchesHostQueries) {
  const auto points = blobs3(1500, 8, 4, 0.25f, 4.0f, 0.2);
  const float eps = 0.35f;
  const GridIndex3 index = build_grid_index3(points, eps);
  const NeighborTable oracle = build_neighbor_table_host3(index, eps);

  cudasim::Device dev({}, fast_options());
  gpu::ResultSetDevice sink(dev, oracle.total_pairs() + 16);
  gpu::run_calc_global3(dev, GridView3::of(index), eps, {}, sink.view());
  ASSERT_FALSE(sink.overflowed());
  EXPECT_EQ(sink.count(), oracle.total_pairs());

  auto view = sink.pairs().unsafe_host_view();
  std::vector<NeighborPair> got(view.begin(),
                                view.begin() + static_cast<std::ptrdiff_t>(
                                                   sink.count()));
  std::sort(got.begin(), got.end());
  std::vector<NeighborPair> expected;
  for (PointId i = 0; i < oracle.num_points(); ++i) {
    for (const PointId v : oracle.neighbors(i)) expected.push_back({i, v});
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
}

TEST(Kernels3, BatchedUnionEqualsUnbatched) {
  const auto points = blobs3(1000, 9, 3, 0.3f, 4.0f, 0.3);
  const float eps = 0.4f;
  const GridIndex3 index = build_grid_index3(points, eps);
  const NeighborTable oracle = build_neighbor_table_host3(index, eps);
  cudasim::Device dev({}, fast_options());
  std::vector<NeighborPair> all;
  const std::uint32_t nb = 5;
  for (std::uint32_t l = 0; l < nb; ++l) {
    gpu::ResultSetDevice sink(dev, oracle.total_pairs() + 16);
    gpu::run_calc_global3(dev, GridView3::of(index), eps, {l, nb},
                          sink.view());
    auto view = sink.pairs().unsafe_host_view();
    all.insert(all.end(), view.begin(),
               view.begin() + static_cast<std::ptrdiff_t>(sink.count()));
  }
  EXPECT_EQ(all.size(), oracle.total_pairs());
}

TEST(Kernels3, CountCensusMatchesOracle) {
  const auto points = random_points3(1500, 10, 4.0f);
  const float eps = 0.3f;
  const GridIndex3 index = build_grid_index3(points, eps);
  const NeighborTable oracle = build_neighbor_table_host3(index, eps);
  cudasim::Device dev({}, fast_options());
  EXPECT_EQ(gpu::run_count_kernel3(dev, GridView3::of(index), eps, 1),
            oracle.total_pairs());
}

TEST(HybridDbscan3, RecoversThreeDBlobs) {
  // Six well-separated blob centers on a lattice (random centers can land
  // close enough to merge, which is not what this test is about).
  const std::array<Point3, 6> centers{{{1.5f, 1.5f, 1.5f},
                                       {6.5f, 1.5f, 1.5f},
                                       {1.5f, 6.5f, 1.5f},
                                       {6.5f, 6.5f, 1.5f},
                                       {1.5f, 1.5f, 6.5f},
                                       {6.5f, 6.5f, 6.5f}}};
  Xoshiro256 rng(11);
  std::vector<Point3> points;
  for (int i = 0; i < 3000; ++i) {
    const Point3& c = centers[rng.below(centers.size())];
    points.push_back({static_cast<float>(rng.normal(c.x, 0.15)),
                      static_cast<float>(rng.normal(c.y, 0.15)),
                      static_cast<float>(rng.normal(c.z, 0.15))});
  }
  cudasim::Device dev({}, fast_options());
  const ClusterResult r = hybrid_dbscan3(dev, points, 0.4f, 8);
  EXPECT_EQ(r.num_clusters, 6);
}

TEST(HybridDbscan3, EquivalentToBruteForceDbscan) {
  const auto points = blobs3(1200, 12, 4, 0.2f, 5.0f, 0.25);
  const float eps = 0.35f;
  const int minpts = 6;
  cudasim::Device dev({}, fast_options());
  Build3Report report;
  const ClusterResult hybrid =
      hybrid_dbscan3(dev, points, eps, minpts, &report);
  EXPECT_GT(report.total_pairs, 0u);
  EXPECT_GT(report.modeled_table_seconds, 0.0);

  // Oracle: input-order neighbor table by brute force, then the
  // comparator's full DBSCAN-validity machinery.
  NeighborTable oracle(points.size());
  for (PointId i = 0; i < points.size(); ++i) {
    std::vector<NeighborPair> pairs;
    for (const PointId v : brute3(points, points[i], eps)) {
      pairs.push_back({i, v});
    }
    oracle.append_sorted_batch(pairs);
  }
  const ClusterResult reference = dbscan_neighbor_table(oracle, minpts);
  const auto outcome = compare_clusterings(hybrid, reference, oracle, minpts);
  EXPECT_TRUE(outcome.equivalent) << outcome.diagnostic;
}

TEST(HybridDbscan3, DeviceMemoryReleased) {
  const auto points = random_points3(800, 13, 3.0f);
  cudasim::Device dev({}, fast_options());
  hybrid_dbscan3(dev, points, 0.3f, 4);
  dev.pool().trim();  // drop pooled scratch before the leak check
  EXPECT_EQ(dev.used_global_bytes(), 0u);
}

}  // namespace
}  // namespace hdbscan
