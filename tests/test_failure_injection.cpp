// Failure injection and degenerate inputs: the pipeline must fail loudly
// and cleanly (never silently drop pairs), and handle pathological data.
#include <gtest/gtest.h>

#include <vector>

#include "core/hybrid_dbscan.hpp"
#include "core/neighbor_table_builder.hpp"
#include "core/pipeline.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/buffer_pool.hpp"
#include "data/generators.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

TEST(FailureInjection, DeviceTooSmallForIndexThrowsOom) {
  const auto points = data::generate_uniform(10000, 1, 10.0f, 10.0f);
  const GridIndex index = build_grid_index(points, 0.3f);
  cudasim::DeviceConfig cfg;
  cfg.global_mem_bytes = 16 << 10;  // 16 KiB: not even D fits
  cudasim::Device device(cfg, fast_options());
  NeighborTableBuilder builder(device);
  EXPECT_THROW((void)builder.build(index, 0.3f), cudasim::DeviceOutOfMemory);
  // Nothing leaks after the failure.
  EXPECT_EQ(device.used_global_bytes(), 0u);
}

TEST(FailureInjection, MultiDeviceTooSmallThrowsOomAndReleasesAll) {
  // Both devices are too small for the index: the multi-device build must
  // drain every stream, release every allocation on every device, and only
  // then surface DeviceOutOfMemory.
  const auto points = data::generate_uniform(10000, 1, 10.0f, 10.0f);
  const GridIndex index = build_grid_index(points, 0.3f);
  cudasim::DeviceConfig cfg;
  cfg.global_mem_bytes = 16 << 10;
  cudasim::Device d0(cfg, fast_options());
  cudasim::Device d1(cfg, fast_options());
  NeighborTableBuilder builder({&d0, &d1});
  EXPECT_THROW((void)builder.build(index, 0.3f), cudasim::DeviceOutOfMemory);
  EXPECT_EQ(d0.used_global_bytes(), 0u);
  EXPECT_EQ(d1.used_global_bytes(), 0u);
}

TEST(FailureInjection, OneTinyDeviceAmongHealthyDegradesNotFails) {
  // A device that cannot even hold the index is dropped at setup; the
  // healthy one carries the whole build and the table is still exact.
  const auto points = data::generate_uniform(5000, 6, 10.0f, 10.0f);
  const GridIndex index = build_grid_index(points, 0.3f);
  cudasim::Device healthy({}, fast_options());
  cudasim::DeviceConfig tiny_cfg;
  tiny_cfg.global_mem_bytes = 16 << 10;
  cudasim::Device tiny(tiny_cfg, fast_options());
  NeighborTableBuilder builder({&healthy, &tiny});
  BuildReport report;
  NeighborTable table = builder.build(index, 0.3f, &report);
  EXPECT_EQ(report.devices_lost, 1u);
  EXPECT_TRUE(report.degraded());
  EXPECT_EQ(tiny.used_global_bytes(), 0u);
  NeighborTable oracle = build_neighbor_table_host(index, 0.3f);
  table.canonicalize();
  oracle.canonicalize();
  EXPECT_TRUE(table.identical_to(oracle));
}

TEST(FailureInjection, OverflowBeyondSplitDepthThrowsNotCorrupts) {
  // Estimate claims ~nothing; buffers so tiny that even max-depth splits
  // cannot fit a dense clump's neighborhood -> builder must throw.
  std::vector<Point2> points(4000, Point2{1.0f, 1.0f});  // one dense cell
  const GridIndex index = build_grid_index(points, 0.5f);
  cudasim::Device device({}, fast_options());
  BatchPolicy policy;
  policy.estimated_total_override = 8;  // absurd: real total is 16M pairs
  NeighborTableBuilder builder(device, policy);
  EXPECT_THROW((void)builder.build(index, 0.5f), std::runtime_error);
  device.pool().trim();  // drop pooled scratch before the leak check
  EXPECT_EQ(device.used_global_bytes(), 0u);
}

TEST(FailureInjection, PipelineSurfacesConsumerVisibleErrors) {
  const auto points = data::generate_uniform(500, 2, 5.0f, 5.0f);
  cudasim::Device device({}, fast_options());
  // minpts < 1 blows up inside the consumers, not the producer.
  const std::vector<Variant> bad{{0.3f, 0}};
  EXPECT_THROW(run_multi_clustering(device, points, bad, {}),
               std::invalid_argument);
}

TEST(DegenerateInputs, SinglePointDataset) {
  const std::vector<Point2> one{{2.0f, 3.0f}};
  cudasim::Device device({}, fast_options());
  const ClusterResult r = hybrid_dbscan(device, one, 0.5f, 2);
  ASSERT_EQ(r.labels.size(), 1u);
  EXPECT_EQ(r.labels[0], kNoise);
  const ClusterResult solo = hybrid_dbscan(device, one, 0.5f, 1);
  EXPECT_EQ(solo.labels[0], 0);  // minpts = 1: a cluster of one
}

TEST(DegenerateInputs, AllIdenticalPoints) {
  const std::vector<Point2> points(500, Point2{1.0f, 1.0f});
  cudasim::Device device({}, fast_options());
  const ClusterResult r = hybrid_dbscan(device, points, 0.1f, 4);
  EXPECT_EQ(r.num_clusters, 1);
  EXPECT_EQ(r.noise_count(), 0u);
}

TEST(DegenerateInputs, CollinearPoints) {
  std::vector<Point2> points;
  for (int i = 0; i < 1000; ++i) {
    points.push_back({static_cast<float>(i) * 0.05f, 0.0f});
  }
  cudasim::Device device({}, fast_options());
  const ClusterResult r = hybrid_dbscan(device, points, 0.06f, 2);
  EXPECT_EQ(r.num_clusters, 1);  // one chain
  EXPECT_EQ(r.noise_count(), 0u);
}

TEST(DegenerateInputs, DuplicateVariantsInPipeline) {
  const auto points = data::generate_uniform(800, 3, 5.0f, 5.0f);
  cudasim::Device device({}, fast_options());
  const std::vector<Variant> variants{{0.3f, 4}, {0.3f, 4}, {0.3f, 4}};
  const PipelineReport report =
      run_multi_clustering(device, points, variants, {});
  ASSERT_EQ(report.variants.size(), 3u);
  EXPECT_EQ(report.variants[0].num_clusters, report.variants[1].num_clusters);
  EXPECT_EQ(report.variants[1].num_clusters, report.variants[2].num_clusters);
}

TEST(DegenerateInputs, NegativeCoordinates) {
  const auto base = data::generate_gaussian_blobs(1000, 4, 3, 0.2f, 10.0f,
                                                  10.0f);
  std::vector<Point2> shifted;
  for (const Point2& p : base) shifted.push_back({p.x - 50.0f, p.y - 50.0f});
  cudasim::Device device({}, fast_options());
  const ClusterResult a = hybrid_dbscan(device, base, 0.5f, 4);
  const ClusterResult b = hybrid_dbscan(device, shifted, 0.5f, 4);
  // Translation invariance.
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.noise_count(), b.noise_count());
}

TEST(DegenerateInputs, TinyEpsMakesEverythingNoise) {
  // eps far below the mean nearest-neighbor distance: everything is noise.
  const auto points = data::generate_uniform(500, 5, 100.0f, 100.0f);
  cudasim::Device device({}, fast_options());
  const ClusterResult r = hybrid_dbscan(device, points, 0.05f, 2);
  EXPECT_EQ(r.num_clusters, 0);
  EXPECT_EQ(r.noise_count(), points.size());
}

}  // namespace
}  // namespace hdbscan
