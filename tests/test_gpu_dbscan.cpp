#include "gpu/gpu_dbscan.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "data/generators.hpp"
#include "dbscan/cluster_compare.hpp"
#include "dbscan/dbscan.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

class GpuDbscanSweep
    : public ::testing::TestWithParam<std::tuple<int, float, int>> {};

TEST_P(GpuDbscanSweep, EquivalentToSequentialDbscan) {
  const auto [family, eps, minpts] = GetParam();
  const std::size_t n = 2500;
  const std::vector<Point2> points =
      family == 0 ? data::generate_sky_survey(n, 95,
                                              {.width = 10.0f, .height = 10.0f})
                  : data::generate_space_weather(
                        n, 96, {.width = 10.0f, .height = 10.0f});
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable table = build_neighbor_table_host(index, eps);

  cudasim::Device device({}, fast_options());
  gpu::GpuDbscanReport report;
  const ClusterResult in_gpu = gpu_dbscan(device, index, eps, minpts, &report);
  const ClusterResult sequential = dbscan_neighbor_table(table, minpts);

  const auto outcome =
      compare_clusterings(sequential, in_gpu, table, minpts);
  EXPECT_TRUE(outcome.equivalent)
      << "family=" << family << " eps=" << eps << " minpts=" << minpts
      << ": " << outcome.diagnostic;
  EXPECT_EQ(sequential.num_clusters, in_gpu.num_clusters);
  EXPECT_GT(report.propagation_iterations, 0u);
  EXPECT_GT(report.modeled_seconds, 0.0);
  EXPECT_EQ(report.d2h_bytes, index.size() * sizeof(std::uint32_t));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GpuDbscanSweep,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0.25f, 0.5f),
                       ::testing::Values(3, 8, 24)));

TEST(GpuDbscan, CorePointCountMatchesTable) {
  const auto points = data::generate_sky_survey(
      1500, 97, {.width = 8.0f, .height = 8.0f});
  const float eps = 0.4f;
  const int minpts = 6;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable table = build_neighbor_table_host(index, eps);
  std::uint64_t expected_cores = 0;
  for (PointId i = 0; i < table.num_points(); ++i) {
    expected_cores +=
        table.neighbor_count(i) >= static_cast<std::uint32_t>(minpts);
  }
  cudasim::Device device({}, fast_options());
  gpu::GpuDbscanReport report;
  gpu_dbscan(device, index, eps, minpts, &report);
  EXPECT_EQ(report.core_points, expected_cores);
}

TEST(GpuDbscan, ChainTopologyConvergesInFewIterations) {
  // A long 1-D chain is the propagation worst case: the min label must
  // travel the whole chain. Pointer jumping (plus the executor's in-pass
  // visibility, which real GPUs also exhibit between blocks) keeps the
  // iteration count far below the chain length.
  std::vector<Point2> points;
  for (int i = 0; i < 4000; ++i) {
    points.push_back({0.09f * static_cast<float>(i), 0.0f});
  }
  const GridIndex index = build_grid_index(points, 0.1f);
  cudasim::Device device({}, fast_options());
  gpu::GpuDbscanReport report;
  const ClusterResult r = gpu_dbscan(device, index, 0.1f, 2, &report);
  EXPECT_EQ(r.num_clusters, 1);
  EXPECT_EQ(r.noise_count(), 0u);
  EXPECT_GE(report.propagation_iterations, 2u);  // at least reach fixpoint
  EXPECT_LT(report.propagation_iterations, 64u);  // never O(chain length)
}

TEST(GpuDbscan, AllNoise) {
  const auto points = data::generate_uniform(300, 98, 100.0f, 100.0f);
  const GridIndex index = build_grid_index(points, 0.1f);
  cudasim::Device device({}, fast_options());
  const ClusterResult r = gpu::gpu_dbscan(device, index, 0.1f, 5);
  EXPECT_EQ(r.num_clusters, 0);
  EXPECT_EQ(r.noise_count(), points.size());
}

TEST(GpuDbscan, DeviceMemoryReleased) {
  const auto points = data::generate_uniform(2000, 99, 10.0f, 10.0f);
  const GridIndex index = build_grid_index(points, 0.3f);
  cudasim::Device device({}, fast_options());
  gpu::gpu_dbscan(device, index, 0.3f, 4);
  EXPECT_EQ(device.used_global_bytes(), 0u);
}

}  // namespace
}  // namespace hdbscan
