// Multi-device sharded table builds: spatial slab partitioning with an
// eps-halo of ghost points per shard, merged through absorb_shard into a
// table — and labels — bit-identical to the single-device batch build,
// including under injected device loss (the shard re-partition rung).
#include "core/sharded_build.hpp"

#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/shard_planner.hpp"
#include "cudasim/buffer_pool.hpp"
#include "cudasim/fault.hpp"
#include "data/generators.hpp"
#include "dbscan/cluster_compare.hpp"
#include "dbscan/dbscan_parallel.hpp"
#include "dbscan/streaming_dbscan.hpp"
#include "index/grid_index.hpp"
#include "obs/registry.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

cudasim::SimulationOptions faulted_options(cudasim::FaultPlan plan) {
  cudasim::SimulationOptions opt = fast_options();
  opt.fault = std::make_shared<cudasim::FaultInjector>(std::move(plan));
  return opt;
}

struct Fleet {
  std::vector<std::unique_ptr<cudasim::Device>> owned;
  std::vector<cudasim::Device*> ptrs;

  void add(cudasim::SimulationOptions opt) {
    owned.push_back(std::make_unique<cudasim::Device>(cudasim::DeviceConfig{},
                                                      std::move(opt)));
    ptrs.push_back(owned.back().get());
  }
};

Fleet make_fleet(int n) {
  Fleet f;
  for (int d = 0; d < n; ++d) f.add(fast_options());
  return f;
}

struct Scenario {
  std::vector<Point2> points;
  GridIndex index;
  NeighborTable oracle;  ///< full symmetric table, index point order
  float eps = 0.0f;
};

Scenario make_scenario(std::size_t n, float eps, std::uint64_t seed) {
  Scenario s;
  s.eps = eps;
  s.points = data::generate_space_weather(
      n, seed, {.width = 10.0f, .height = 10.0f});
  s.index = build_grid_index(s.points, eps);
  s.oracle = build_neighbor_table_host(s.index, eps);
  return s;
}

/// Small batches so every shard runs several of them per stream.
BatchPolicy many_batch_policy(const Scenario& s, ScanMode scan) {
  BatchPolicy policy;
  policy.build_mode = TableBuildMode::kCsrTwoPass;
  policy.scan_mode = scan;
  policy.estimated_total_override = s.oracle.total_pairs();
  policy.static_threshold_pairs = 1;
  policy.static_buffer_pairs =
      std::max<std::uint64_t>(1, s.oracle.total_pairs() / 12);
  return policy;
}

// ---------------------------------------------------------------------------
// Shard planner
// ---------------------------------------------------------------------------

TEST(ShardPlanner, EveryPointOwnedExactlyOnceWithRowHomogeneousShards) {
  const Scenario s = make_scenario(4000, 0.35f, 11);
  const ShardPlan plan = plan_shards(s.index, 4);
  ASSERT_GE(plan.shards.size(), 1u);
  ASSERT_LE(plan.shards.size(), 4u);

  std::vector<std::uint32_t> seen(s.index.size(), 0);
  std::uint64_t owned_total = 0;
  for (const GridShard& shard : plan.shards) {
    EXPECT_GT(shard.num_owned, 0u);
    EXPECT_EQ(shard.index.num_query, shard.num_owned);
    EXPECT_EQ(shard.index.size(), shard.to_global.size());
    owned_total += shard.num_owned;
    for (std::uint32_t l = 0; l < shard.num_owned; ++l) {
      const PointId g = shard.to_global[l];
      ++seen[g];
      EXPECT_EQ(plan.owner_of[g], shard.shard_id);
      // Owned points keep global coordinates, so every cell hash matches.
      EXPECT_EQ(shard.index.points[l].x, s.index.points[g].x);
      EXPECT_EQ(shard.index.points[l].y, s.index.points[g].y);
    }
    // Kernels emit neighbor values through the emission map, which must
    // be exactly the local->global relabeling.
    EXPECT_EQ(shard.index.emit_ids, shard.to_global);
    // Owned-first numbering is ascending in global id within each block —
    // the monotone relabeling the forward-pair argument relies on.
    EXPECT_TRUE(std::is_sorted(shard.to_global.begin(),
                               shard.to_global.begin() + shard.num_owned));
    EXPECT_TRUE(std::is_sorted(shard.to_global.begin() + shard.num_owned,
                               shard.to_global.end()));
    // The slab keeps the ascending-in-cell invariant the half-comparison
    // kernels binary-search on.
    for (std::size_t c = 0; c < shard.index.cells.size(); ++c) {
      const CellRange r = shard.index.cells[c];
      for (std::uint32_t a = r.begin; a + 1 < r.end; ++a) {
        EXPECT_LT(shard.index.lookup[a], shard.index.lookup[a + 1]);
      }
    }
  }
  EXPECT_EQ(owned_total, s.index.size());
  EXPECT_EQ(plan.owned_points, s.index.size());
  for (const std::uint32_t count : seen) EXPECT_EQ(count, 1u);
  EXPECT_GT(plan.total_ghosts, 0u);
  EXPECT_GT(plan.halo_overhead_fraction(), 0.0);
}

TEST(ShardPlanner, SingleShardIsTheWholeGridWithoutGhosts) {
  const Scenario s = make_scenario(1200, 0.3f, 12);
  const ShardPlan plan = plan_shards(s.index, 1);
  ASSERT_EQ(plan.shards.size(), 1u);
  const GridShard& shard = plan.shards.front();
  EXPECT_EQ(shard.num_owned, s.index.size());
  EXPECT_EQ(shard.num_ghosts(), 0u);
  EXPECT_EQ(shard.index.cell_base, 0u);
  EXPECT_EQ(plan.total_ghosts, 0u);
  EXPECT_EQ(plan.halo_overhead_fraction(), 0.0);
}

TEST(ShardPlanner, ClampsToRowCountAndRejectsBadInput) {
  const Scenario s = make_scenario(600, 0.3f, 13);
  const std::uint32_t rows = s.index.params.cells_y;
  const ShardPlan plan = plan_shards(s.index, rows * 4);
  EXPECT_LE(plan.shards.size(), rows);

  EXPECT_THROW(plan_shards(s.index, 2, 3, 3), std::invalid_argument);
  EXPECT_THROW(plan_shards(s.index, 2, 0, rows + 1), std::invalid_argument);
  GridIndex already_shard = plan.shards.front().index;
  EXPECT_THROW(plan_shards(already_shard, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// NeighborTable::translate and absorb_shard edge cases
// ---------------------------------------------------------------------------

NeighborTable table_with_rows(
    std::size_t n, const std::vector<std::vector<PointId>>& rows) {
  NeighborTable t(n);
  std::vector<NeighborPair> pairs;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    pairs.clear();
    for (const PointId v : rows[k]) {
      pairs.push_back({static_cast<PointId>(k), v});
    }
    if (!pairs.empty()) t.append_sorted_batch(pairs);
  }
  return t;
}

TEST(NeighborTableTranslate, RebasesOwnedRowsAndKeepsGlobalValues) {
  // Shard: residents 3 (owned 0,1 -> global 4,7; ghost 2 -> global 9).
  // Values are stored ALREADY GLOBAL — the slab kernels emit through the
  // shard's emission map — so translate moves only the row keys and the
  // value storage is handed over untouched.
  NeighborTable local = table_with_rows(3, {{4, 7, 9}, {7, 9}});
  const std::vector<PointId> to_global{4, 7, 9};
  NeighborTable global =
      std::move(local).translate(to_global, /*num_owned=*/2,
                                 /*num_global=*/12);
  ASSERT_EQ(global.num_points(), 12u);
  EXPECT_EQ(global.total_pairs(), 5u);
  const std::vector<PointId> row4(global.neighbors(4).begin(),
                                  global.neighbors(4).end());
  const std::vector<PointId> row7(global.neighbors(7).begin(),
                                  global.neighbors(7).end());
  EXPECT_EQ(row4, (std::vector<PointId>{4, 7, 9}));
  EXPECT_EQ(row7, (std::vector<PointId>{7, 9}));
  EXPECT_EQ(global.neighbor_count(9), 0u);  // ghost row never emitted
}

TEST(NeighborTableTranslate, RejectsBadMapsAndKeys) {
  const std::vector<PointId> to_global{4, 7, 9};
  EXPECT_THROW((void)NeighborTable(2).translate(to_global, 2, 12),
               std::invalid_argument);  // map size != residents
  EXPECT_THROW((void)NeighborTable(3).translate(to_global, 4, 12),
               std::invalid_argument);  // num_owned > residents
  EXPECT_THROW((void)table_with_rows(3, {{0, 1}}).translate(to_global, 2, 5),
               std::out_of_range);  // global key 7 outside 5-row target
}

TEST(AbsorbShard, EmptyAndGhostOnlyShardsAreNoOps) {
  NeighborTable table = table_with_rows(6, {{0, 1}, {1}});
  table.absorb_shard(NeighborTable(6));  // never-filled shard
  // A "ghost-only" shard materializes as a global-sized table whose every
  // row is empty (translate() of a shard that owned nothing would produce
  // exactly this); absorbing it must not disturb existing rows.
  NeighborTable ghost_only(6);
  table.absorb_shard(std::move(ghost_only));
  EXPECT_EQ(table.total_pairs(), 3u);
  EXPECT_EQ(table.neighbor_count(0), 2u);
  EXPECT_EQ(table.neighbor_count(1), 1u);

  // First-absorb into a fresh table steals storage; an empty first shard
  // must not wedge the fast path for the real shards that follow.
  NeighborTable fresh(6);
  fresh.absorb_shard(NeighborTable(6));
  fresh.absorb_shard(table_with_rows(6, {{0, 1}, {1}}));
  EXPECT_EQ(fresh.total_pairs(), 3u);
}

TEST(AbsorbShard, OrderPermutationsCanonicalizeByteIdentical) {
  const std::vector<std::vector<PointId>> rows_a{{0, 2}, {1, 2, 3}};
  const std::vector<std::vector<PointId>> rows_b{{}, {}, {2, 3}};
  const std::vector<std::vector<PointId>> rows_c{{}, {}, {}, {0, 3}, {4}};
  std::vector<int> order{0, 1, 2};
  NeighborTable want;
  bool first = true;
  do {
    NeighborTable merged(5);
    for (const int which : order) {
      const auto& rows = which == 0 ? rows_a : which == 1 ? rows_b : rows_c;
      merged.absorb_shard(table_with_rows(5, rows));
    }
    merged.canonicalize();
    if (first) {
      want = std::move(merged);
      first = false;
    } else {
      EXPECT_TRUE(merged.identical_to(want));
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(AbsorbShard, RejectsDuplicateKeysAndSizeMismatch) {
  NeighborTable table = table_with_rows(4, {{0, 1}});
  EXPECT_THROW(table.absorb_shard(table_with_rows(4, {{0, 2}})),
               std::logic_error);
  EXPECT_THROW(table.absorb_shard(NeighborTable(5)), std::invalid_argument);
}

TEST(AbsorbShard, ParallelFanInMatchesSerialAbsorb) {
  const std::vector<std::vector<PointId>> rows_a{{0, 2}, {1, 2, 3}};
  const std::vector<std::vector<PointId>> rows_b{{}, {}, {2, 3}};
  const std::vector<std::vector<PointId>> rows_c{{}, {}, {}, {0, 3}, {4}};
  NeighborTable serial(5);
  serial.absorb_shard(table_with_rows(5, rows_a));
  serial.absorb_shard(table_with_rows(5, rows_b));
  serial.absorb_shard(table_with_rows(5, rows_c));

  std::vector<NeighborTable> parts;
  parts.push_back(table_with_rows(5, rows_a));
  parts.push_back(table_with_rows(5, rows_b));
  parts.push_back(table_with_rows(5, rows_c));
  NeighborTable fanin(5);
  (void)fanin.absorb_shards(std::move(parts), 3);
  // Byte-identical layout, not just equal sets: the fan-in's region order
  // must reproduce exactly what serial absorption would have built.
  EXPECT_TRUE(fanin.identical_to(serial));

  // A single part steals its storage wholesale.
  std::vector<NeighborTable> one;
  one.push_back(table_with_rows(5, rows_a));
  NeighborTable stolen(5);
  (void)stolen.absorb_shards(std::move(one), 4);
  EXPECT_EQ(stolen.total_pairs(), 5u);

  // Strictness survives the parallel path: duplicate keys, mismatched
  // sizes, and a non-empty target are all rejected.
  std::vector<NeighborTable> dup;
  dup.push_back(table_with_rows(5, rows_a));
  dup.push_back(table_with_rows(5, {{4}}));  // key 0 again
  NeighborTable target(5);
  EXPECT_THROW((void)target.absorb_shards(std::move(dup), 2),
               std::logic_error);

  std::vector<NeighborTable> wrong;
  wrong.push_back(table_with_rows(4, {{1}}));
  NeighborTable target2(5);
  EXPECT_THROW((void)target2.absorb_shards(std::move(wrong), 2),
               std::invalid_argument);

  NeighborTable nonempty = table_with_rows(5, {{1}});
  std::vector<NeighborTable> more;
  more.push_back(table_with_rows(5, {{}, {2}}));
  EXPECT_THROW((void)nonempty.absorb_shards(std::move(more), 2),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sharded builds: tables and labels bit-identical to one device
// ---------------------------------------------------------------------------

struct ShardedCase {
  ScanMode scan;
  unsigned shards;
};

class ShardedBuild : public ::testing::TestWithParam<ShardedCase> {};

TEST_P(ShardedBuild, TableBitIdenticalToSingleDeviceBuild) {
  const ShardedCase param = GetParam();
  const Scenario s = make_scenario(4000, 0.35f, 21);

  cudasim::Device single({}, fast_options());
  NeighborTableBuilder baseline(single, many_batch_policy(s, param.scan));
  NeighborTable want = baseline.build(s.index, s.eps);
  want.canonicalize();

  Fleet fleet = make_fleet(static_cast<int>(param.shards));
  ShardedBuildOptions options;
  options.num_shards = param.shards;
  options.policy = many_batch_policy(s, param.scan);
  BuildReport report;
  NeighborTable got = build_sharded_neighbor_table(fleet.ptrs, s.index,
                                                   s.eps, options, &report);
  got.canonicalize();
  EXPECT_TRUE(got.identical_to(want));

  EXPECT_GE(report.shards, 1u);
  EXPECT_LE(report.shards, param.shards);
  EXPECT_EQ(report.shard_repartitions, 0u);
  EXPECT_EQ(report.devices_lost, 0u);
  if (report.shards > 1) {
    EXPECT_GT(report.halo_ghost_points, 0u);
    EXPECT_GT(report.cross_shard_pairs, 0u);
  }
}

TEST_P(ShardedBuild, StreamingLabelsBitIdenticalToSingleDevice) {
  const ShardedCase param = GetParam();
  const Scenario s = make_scenario(3000, 0.35f, 22);
  const int minpts = 4;

  cudasim::Device single({}, fast_options());
  NeighborTableBuilder baseline(single, many_batch_policy(s, param.scan));
  StreamingDbscan want_consumer(s.index.size(), minpts);
  baseline.build(s.index, s.eps, nullptr, &want_consumer,
                 /*materialize_table=*/false);
  const ClusterResult want = want_consumer.finalize();

  Fleet fleet = make_fleet(static_cast<int>(param.shards));
  ShardedBuildOptions options;
  options.num_shards = param.shards;
  options.policy = many_batch_policy(s, param.scan);
  StreamingDbscan consumer(s.index.size(), minpts);
  BuildReport report;
  (void)build_sharded_neighbor_table(fleet.ptrs, s.index, s.eps, options,
                                     &report, &consumer,
                                     /*materialize_table=*/false);
  EXPECT_TRUE(report.streamed);
  EXPECT_FALSE(report.table_materialized);

  // Exactly-once delivery: every degree matches the oracle even though
  // each cross-shard pair was producible by two shards.
  for (PointId i = 0; i < s.index.size(); ++i) {
    ASSERT_EQ(consumer.degree(i), s.oracle.neighbor_count(i))
        << "degree mismatch at point " << i;
  }

  const ClusterResult got = consumer.finalize();
  // Bit-identical, not merely equivalent: the streaming consumer's
  // finalize is deterministic in point-id order, so identical edge sets
  // and degrees must produce identical label vectors.
  EXPECT_EQ(got.labels, want.labels);
  EXPECT_EQ(got.num_clusters, want.num_clusters);
}

INSTANTIATE_TEST_SUITE_P(
    ScanModesAndShardCounts, ShardedBuild,
    ::testing::Values(ShardedCase{ScanMode::kHalf, 1},
                      ShardedCase{ScanMode::kHalf, 2},
                      ShardedCase{ScanMode::kHalf, 3},
                      ShardedCase{ScanMode::kHalf, 4},
                      ShardedCase{ScanMode::kFull, 2},
                      ShardedCase{ScanMode::kFull, 4}));

TEST(ShardedBuildScaling, ModeledTimeImprovesWithShards) {
  const Scenario s = make_scenario(16000, 0.4f, 23);

  // Min of three trials per shard count: the model folds in measured host
  // CPU (planning, merge, expansion), so a descheduled thread on a loaded
  // CI host can inflate any single trial.
  auto modeled_with = [&](unsigned k) {
    double best = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < 3; ++trial) {
      Fleet fleet = make_fleet(static_cast<int>(k));
      ShardedBuildOptions options;
      options.num_shards = k;
      BuildReport report;
      (void)build_sharded_neighbor_table(fleet.ptrs, s.index, s.eps, options,
                                         &report);
      best = std::min(best, report.modeled_table_seconds);
    }
    return best;
  };

  const double one = modeled_with(1);
  const double four = modeled_with(4);
  EXPECT_LT(four, one);
}

TEST(ShardedBuildFleet, DeviceMemoryReleasedOnAllShards) {
  const Scenario s = make_scenario(2500, 0.3f, 24);
  Fleet fleet = make_fleet(3);
  ShardedBuildOptions options;
  options.num_shards = 3;
  (void)build_sharded_neighbor_table(fleet.ptrs, s.index, s.eps, options);
  for (const auto& dev : fleet.owned) {
    dev->pool().trim();  // drop pooled scratch before the leak check
    EXPECT_EQ(dev->used_global_bytes(), 0u);
  }
}

TEST(ShardedBuildFleet, RejectsEmptyDeviceList) {
  const Scenario s = make_scenario(300, 0.3f, 25);
  EXPECT_THROW(build_sharded_neighbor_table({}, s.index, s.eps, {}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Chaos: device loss mid-build re-partitions the dead shard
// ---------------------------------------------------------------------------

TEST(ShardedBuildChaos, DeviceLossRepartitionsOntoSurvivorsExactly) {
  const Scenario s = make_scenario(3000, 0.35f, 26);
  const int minpts = 4;

  // Fault-free reference labels (streaming consumer, single device).
  cudasim::Device single({}, fast_options());
  NeighborTableBuilder baseline(single, many_batch_policy(s, ScanMode::kHalf));
  StreamingDbscan want_consumer(s.index.size(), minpts);
  baseline.build(s.index, s.eps, nullptr, &want_consumer, false);
  const ClusterResult want = want_consumer.finalize();

  cudasim::FaultPlan lost;
  lost.lost_at_op = 30;  // one shard's device dies mid-build
  Fleet fleet;
  fleet.add(fast_options());
  fleet.add(faulted_options(lost));
  fleet.add(fast_options());

  ShardedBuildOptions options;
  options.num_shards = 3;
  options.policy = many_batch_policy(s, ScanMode::kHalf);
  StreamingDbscan consumer(s.index.size(), minpts);
  BuildReport report;
  NeighborTable table = build_sharded_neighbor_table(
      fleet.ptrs, s.index, s.eps, options, &report, &consumer,
      /*materialize_table=*/true);

  EXPECT_EQ(report.devices_lost, 1u);
  EXPECT_GE(report.shard_repartitions, 1u);
  EXPECT_GT(report.shards, 3u);  // dead slab re-planned onto survivors
  EXPECT_FALSE(report.used_host_fallback);

  // Exact labels despite the mid-build loss.
  for (PointId i = 0; i < s.index.size(); ++i) {
    ASSERT_EQ(consumer.degree(i), s.oracle.neighbor_count(i))
        << "degree mismatch at point " << i;
  }
  EXPECT_EQ(consumer.finalize().labels, want.labels);

  // And the materialized table lost nothing either.
  table.canonicalize();
  NeighborTable oracle = s.oracle;
  oracle.canonicalize();
  EXPECT_TRUE(table.identical_to(oracle));

  // No leaked pinned/device buffers on the survivors (the dead device
  // refuses further ops; its memory dies with it).
  for (const auto& dev : fleet.owned) {
    if (dev->lost()) continue;
    dev->pool().trim();
    EXPECT_EQ(dev->used_global_bytes(), 0u);
  }
}

TEST(ShardedBuildChaos, RandomizedFaultPlansKeepLabelsExact) {
  const Scenario s = make_scenario(2000, 0.35f, 27);
  const int minpts = 4;

  cudasim::Device single({}, fast_options());
  NeighborTableBuilder baseline(single, many_batch_policy(s, ScanMode::kHalf));
  StreamingDbscan want_consumer(s.index.size(), minpts);
  baseline.build(s.index, s.eps, nullptr, &want_consumer, false);
  const ClusterResult want = want_consumer.finalize();

  for (const std::uint64_t seed : {5ull, 17ull, 42ull, 71ull}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    Fleet fleet;
    for (int d = 0; d < 3; ++d) {
      fleet.add(faulted_options(
          cudasim::FaultPlan::randomized(seed + 100ull * d)));
    }
    ShardedBuildOptions options;
    options.num_shards = 3;
    options.policy = many_batch_policy(s, ScanMode::kHalf);
    options.policy.resilience.host_fallback = true;  // survive total loss
    StreamingDbscan consumer(s.index.size(), minpts);
    BuildReport report;
    (void)build_sharded_neighbor_table(fleet.ptrs, s.index, s.eps, options,
                                       &report, &consumer,
                                       /*materialize_table=*/false);
    for (PointId i = 0; i < s.index.size(); ++i) {
      ASSERT_EQ(consumer.degree(i), s.oracle.neighbor_count(i))
          << "degree mismatch at point " << i;
    }
    EXPECT_EQ(consumer.finalize().labels, want.labels);
  }
}

TEST(ShardedBuildChaos, AllDevicesLostThrowsWithoutHostFallback) {
  const Scenario s = make_scenario(1000, 0.3f, 28);
  cudasim::FaultPlan lost;
  lost.lost_at_op = 1;
  Fleet fleet;
  fleet.add(faulted_options(lost));
  ShardedBuildOptions options;
  options.num_shards = 1;
  EXPECT_THROW(build_sharded_neighbor_table(fleet.ptrs, s.index, s.eps,
                                            options),
               cudasim::DeviceLost);
}

// ---------------------------------------------------------------------------
// Metrics: per-shard series plus the fleet roll-up
// ---------------------------------------------------------------------------

TEST(ShardedBuildMetrics, PublishesPerShardAndFleetSeries) {
  obs::Registry& reg = obs::Registry::global();
  reg.reset_values();
  const Scenario s = make_scenario(2000, 0.35f, 29);
  Fleet fleet = make_fleet(2);
  ShardedBuildOptions options;
  options.num_shards = 2;
  options.policy = many_batch_policy(s, ScanMode::kHalf);
  BuildReport report;
  (void)build_sharded_neighbor_table(fleet.ptrs, s.index, s.eps, options,
                                     &report);
  ASSERT_EQ(report.shards, 2u);

  // Each shard publishes its own labeled series — concurrent shard builds
  // must not overwrite one another's last-value gauges.
  EXPECT_GT(reg.counter("build_batches_run", "shard=0").value(), 0u);
  EXPECT_GT(reg.counter("build_batches_run", "shard=1").value(), 0u);
  EXPECT_GT(reg.gauge("build_last_estimate_pairs", "shard=0").value(), 0.0);
  EXPECT_GT(reg.gauge("build_last_estimate_pairs", "shard=1").value(), 0.0);

  // The orchestrator publishes the combined (unlabeled) report once.
  EXPECT_EQ(reg.counter("build_sharded_builds").value(), 1u);
  EXPECT_EQ(reg.counter("build_shards").value(), 2u);
  EXPECT_GT(reg.counter("build_halo_ghost_points").value(), 0u);
  EXPECT_GT(reg.counter("build_cross_shard_pairs").value(), 0u);
  EXPECT_EQ(reg.counter("build_batches_run").value(),
            static_cast<std::uint64_t>(report.batches_run));

  // Fleet roll-up: summed device gauges under device=fleet.
  EXPECT_EQ(reg.gauge("cudasim_fleet_devices", "device=fleet").value(), 2.0);
  const double fleet_launches =
      reg.gauge("cudasim_kernel_launches", "device=fleet").value();
  double per_device = 0.0;
  for (const auto& dev : fleet.owned) {
    per_device += static_cast<double>(dev->metrics().kernel_launches);
  }
  EXPECT_EQ(fleet_launches, per_device);
}

// ---------------------------------------------------------------------------
// Fleet pipeline: the byte-budget one-item minimum under k>1 shard builds
// ---------------------------------------------------------------------------

// Regression: a queue_bytes_budget smaller than any single table must
// still drain a multi-variant fleet pipeline when each table is built
// across k>1 shards. The empty-queue one-item minimum is what prevents
// the sharded producer (which holds the fleet's worker threads) from
// deadlocking against consumers that cannot admit an over-budget table.
TEST(ShardedBuildPipeline, ByteBudgetOneItemMinimumDrainsShardedBuilds) {
  const Scenario s = make_scenario(3000, 0.35f, 31);
  const std::vector<Variant> variants = {
      {0.35f, 4}, {0.35f, 8}, {0.35f, 12}, {0.35f, 16}};

  PipelineOptions want_opts;
  want_opts.pipelined = false;
  want_opts.keep_results = true;
  want_opts.policy = many_batch_policy(s, ScanMode::kHalf);
  cudasim::Device single({}, fast_options());
  const PipelineReport want =
      run_multi_clustering(single, s.points, variants, want_opts);

  Fleet fleet = make_fleet(2);
  PipelineOptions opts;
  opts.pipelined = true;
  opts.keep_results = true;
  opts.num_shards = 2;
  opts.queue_capacity = 3;
  opts.queue_bytes_budget = 1;  // every table is over budget
  opts.policy = many_batch_policy(s, ScanMode::kHalf);
  const PipelineReport got =
      run_multi_clustering(fleet.ptrs, s.points, variants, opts);

  ASSERT_EQ(got.variants.size(), variants.size());
  ASSERT_EQ(got.results.size(), variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_TRUE(got.variants[i].outcome.ok) << got.variants[i].outcome.error;
    EXPECT_EQ(got.variants[i].outcome.failure, FailureReason::kNone);
    EXPECT_EQ(got.results[i].labels, want.results[i].labels)
        << "variant " << i << " labels diverge under byte-budget 1";
  }
  // The budget pressure must not leak device memory on either shard.
  for (const auto& dev : fleet.owned) {
    dev->pool().trim();
    EXPECT_EQ(dev->used_global_bytes(), 0u);
  }
}

}  // namespace
}  // namespace hdbscan
