#include "core/reuse.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/hybrid_dbscan.hpp"
#include "data/generators.hpp"
#include "dbscan/cluster_compare.hpp"
#include "dbscan/dbscan.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

NeighborTable input_order_table(std::span<const Point2> points, float eps) {
  const GridIndex index = build_grid_index(points, eps);
  NeighborTable table(points.size());
  std::vector<PointId> neighbors;
  std::vector<NeighborPair> pairs;
  for (PointId i = 0; i < points.size(); ++i) {
    grid_query(index, points[i], eps, neighbors);
    pairs.clear();
    for (const PointId v : neighbors) {
      pairs.push_back({i, index.original_ids[v]});
    }
    table.append_sorted_batch(pairs);
  }
  return table;
}

class ReuseThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReuseThreads, SweepMatchesIndividualRunsForAnyThreadCount) {
  const unsigned threads = GetParam();
  const auto points = data::generate_space_weather(
      2000, 81, {.width = 10.0f, .height = 10.0f});
  const float eps = 0.4f;
  const std::vector<int> minpts{2, 4, 8, 16, 32, 64, 128, 256};
  cudasim::Device dev({}, fast_options());

  std::vector<ClusterResult> results;
  const ReuseReport report = cluster_minpts_sweep(
      dev, points, eps, minpts, threads, {}, &results);

  ASSERT_EQ(results.size(), minpts.size());
  const NeighborTable oracle = input_order_table(points, eps);
  for (std::size_t i = 0; i < minpts.size(); ++i) {
    const ClusterResult fresh = hybrid_dbscan(dev, points, eps, minpts[i]);
    const auto outcome =
        compare_clusterings(results[i], fresh, oracle, minpts[i]);
    EXPECT_TRUE(outcome.equivalent)
        << "threads=" << threads << " minpts=" << minpts[i] << ": "
        << outcome.diagnostic;
    EXPECT_EQ(results[i].num_clusters, report.variant_clusters[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ReuseThreads,
                         ::testing::Values(1u, 2u, 4u, 16u));

TEST(Reuse, ReportFieldsPopulated) {
  const auto points = data::generate_sky_survey(
      1500, 82, {.width = 8.0f, .height = 8.0f});
  const std::vector<int> minpts{4, 8, 16};
  cudasim::Device dev({}, fast_options());
  const ReuseReport report =
      cluster_minpts_sweep(dev, points, 0.35f, minpts, 2);
  EXPECT_EQ(report.eps, 0.35f);
  EXPECT_GT(report.table_seconds, 0.0);
  EXPECT_GT(report.dbscan_wall_seconds, 0.0);
  EXPECT_GE(report.total_seconds,
            report.table_seconds + report.dbscan_wall_seconds - 1e-6);
  ASSERT_EQ(report.variant_seconds.size(), 3u);
  for (const double s : report.variant_seconds) EXPECT_GT(s, 0.0);
}

TEST(Reuse, MoreNoiseWithHigherMinpts) {
  const auto points = data::generate_sky_survey(
      2500, 83, {.width = 8.0f, .height = 8.0f});
  const std::vector<int> minpts{2, 300};
  cudasim::Device dev({}, fast_options());
  std::vector<ClusterResult> results;
  cluster_minpts_sweep(dev, points, 0.3f, minpts, 2, {}, &results);
  EXPECT_LE(results[0].noise_count(), results[1].noise_count());
}

TEST(Reuse, EmptyMinptsListIsNoop) {
  const auto points = data::generate_uniform(500, 84, 5.0f, 5.0f);
  cudasim::Device dev({}, fast_options());
  const ReuseReport report = cluster_minpts_sweep(dev, points, 0.3f, {}, 4);
  EXPECT_TRUE(report.variant_seconds.empty());
  EXPECT_GT(report.table_seconds, 0.0);  // T is still built
}

}  // namespace
}  // namespace hdbscan
