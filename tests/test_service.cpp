// Clustering service front-end: cancellation plumbing, the structured
// failure taxonomy, the eps-keyed table cache, admission control /
// shedding, the circuit breaker, and the cache-hit == fresh-build
// bit-identity invariant.
#include "service/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "core/failure.hpp"
#include "cudasim/buffer_pool.hpp"
#include "cudasim/error.hpp"
#include "data/generators.hpp"
#include "obs/registry.hpp"
#include "service/circuit_breaker.hpp"
#include "service/table_cache.hpp"
#include "service/workload.hpp"

namespace hdbscan {
namespace {

using service::ClusterService;
using service::JobResult;
using service::JobSpec;
using service::JobState;
using service::Priority;
using service::ServiceOptions;
using service::TableCache;

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

// ---------------------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------------------

TEST(CancelToken, CancelLatchesAndCheckThrowsWithReason) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
  try {
    token.check();
    FAIL() << "check() must throw after cancel()";
  } catch (const OperationCancelled& e) {
    EXPECT_EQ(e.reason(), CancelReason::kCancelled);
  }
}

TEST(CancelToken, ExpiredDeadlineLatchesDeadlineReason) {
  CancelToken token;
  token.set_deadline_after(0.0);  // already expired
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  EXPECT_THROW(token.check(), OperationCancelled);
}

TEST(CancelToken, FutureDeadlineDoesNotFirePrematurely) {
  CancelToken token;
  token.set_deadline_after(3600.0);
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, FirstReasonWins) {
  CancelToken token;
  token.cancel();
  token.set_deadline_after(0.0);
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);
}

TEST(CancelToken, CheckCancelHelperToleratesNull) {
  EXPECT_NO_THROW(check_cancel(nullptr));
  CancelToken token;
  token.cancel();
  EXPECT_THROW(check_cancel(&token), OperationCancelled);
}

// ---------------------------------------------------------------------------
// FailureReason classification
// ---------------------------------------------------------------------------

FailureReason classify(std::exception_ptr ep) {
  try {
    std::rethrow_exception(std::move(ep));
  } catch (...) {
    return classify_current_exception();
  }
}

TEST(FailureReason, ClassifiesTheExceptionTaxonomy) {
  EXPECT_EQ(classify(std::make_exception_ptr(
                OperationCancelled(CancelReason::kCancelled))),
            FailureReason::kCancelled);
  EXPECT_EQ(classify(std::make_exception_ptr(
                OperationCancelled(CancelReason::kDeadline))),
            FailureReason::kDeadlineExceeded);
  EXPECT_EQ(classify(std::make_exception_ptr(
                cudasim::TransientKernelFault("kernel fault"))),
            FailureReason::kTransientExhausted);
  EXPECT_EQ(classify(std::make_exception_ptr(
                cudasim::DeviceOutOfMemory(64, 0, 32))),
            FailureReason::kOutOfMemory);
  EXPECT_EQ(
      classify(std::make_exception_ptr(cudasim::DeviceLost("device lost"))),
      FailureReason::kDeviceLost);
  EXPECT_EQ(classify(std::make_exception_ptr(std::runtime_error("misc"))),
            FailureReason::kOther);
}

TEST(FailureReason, NamesAreStable) {
  EXPECT_STREQ(failure_reason_name(FailureReason::kNone), "none");
  EXPECT_STREQ(failure_reason_name(FailureReason::kDeviceLost),
               "device_lost");
  EXPECT_STREQ(failure_reason_name(FailureReason::kDeadlineExceeded),
               "deadline_exceeded");
}

// ---------------------------------------------------------------------------
// TableCache
// ---------------------------------------------------------------------------

service::CachedTable make_entry(std::size_t n, std::size_t bytes) {
  service::CachedTable e;
  e.table = NeighborTable(n);
  e.original_ids.resize(n);
  for (std::size_t i = 0; i < n; ++i) e.original_ids[i] = PointId(i);
  e.bytes = bytes;
  return e;
}

TEST(TableCacheTest, DisabledCacheNeverStores) {
  TableCache cache(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.insert({"d", 1}, make_entry(4, 100)));
  EXPECT_FALSE(cache.find({"d", 1}));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TableCacheTest, LruEvictionUnderByteBudget) {
  TableCache cache(250);
  { auto h = cache.insert({"d", 1}, make_entry(4, 100)); }
  { auto h = cache.insert({"d", 2}, make_entry(4, 100)); }
  EXPECT_EQ(cache.resident_bytes(), 200u);
  // Touch key 1 so key 2 is the LRU victim.
  { auto h = cache.find({"d", 1}); EXPECT_TRUE(h); }
  { auto h = cache.insert({"d", 3}, make_entry(4, 100)); }
  EXPECT_TRUE(cache.contains({"d", 1}));
  EXPECT_FALSE(cache.contains({"d", 2}));
  EXPECT_TRUE(cache.contains({"d", 3}));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.resident_bytes(), 250u);
}

TEST(TableCacheTest, PinnedEntryIsNeverEvictedWhileInFlight) {
  TableCache cache(150);
  // The in-flight coalesced build holds its handle across the insert of
  // a competing over-budget entry.
  TableCache::Handle pinned = cache.insert({"d", 1}, make_entry(4, 100));
  ASSERT_TRUE(pinned);
  TableCache::Handle second = cache.insert({"d", 2}, make_entry(4, 100));
  // Both pinned: budget exceeded but nothing evictable.
  EXPECT_TRUE(cache.contains({"d", 1}));
  EXPECT_TRUE(cache.contains({"d", 2}));
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_GT(cache.resident_bytes(), 150u);
  // Releasing the older pin lets the budget reassert itself.
  pinned = TableCache::Handle();
  EXPECT_FALSE(cache.contains({"d", 1}));
  EXPECT_TRUE(cache.contains({"d", 2}));
  EXPECT_LE(cache.resident_bytes(), 150u);
}

/// Regression: the cache key must include the index backend and the scan
/// mode. A backend A/B (grid vs BVH) or a kHalf/kFull sweep over the same
/// (dataset, eps) would otherwise serve one variant's table as the
/// other's measurement.
TEST(TableCacheTest, KeyIncludesBackendAndScanMode) {
  TableCache cache(1000);
  const TableCache::Key grid_half{"d", 1, IndexBackend::kGrid,
                                  ScanMode::kHalf};
  { auto h = cache.insert(grid_half, make_entry(4, 100)); }
  EXPECT_TRUE(cache.contains(grid_half));
  EXPECT_FALSE(
      cache.find({"d", 1, IndexBackend::kBvh, ScanMode::kHalf}));
  EXPECT_FALSE(
      cache.find({"d", 1, IndexBackend::kGrid, ScanMode::kFull}));
  EXPECT_FALSE(
      cache.find({"d", 1, IndexBackend::kBvh, ScanMode::kFull}));
  // All four variants coexist as distinct entries.
  { auto h = cache.insert({"d", 1, IndexBackend::kBvh, ScanMode::kHalf},
                          make_entry(4, 100)); }
  { auto h = cache.insert({"d", 1, IndexBackend::kGrid, ScanMode::kFull},
                          make_entry(4, 100)); }
  { auto h = cache.insert({"d", 1, IndexBackend::kBvh, ScanMode::kFull},
                          make_entry(4, 100)); }
  EXPECT_EQ(cache.size(), 4u);
}

TEST(TableCacheTest, RacingInsertAdoptsThePinnedIncumbent) {
  TableCache cache(1000);
  TableCache::Handle first = cache.insert({"d", 1}, make_entry(4, 100));
  TableCache::Handle racer = cache.insert({"d", 1}, make_entry(4, 100));
  // Same storage: the second group adopted the incumbent entry.
  EXPECT_EQ(first.get(), racer.get());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.resident_bytes(), 100u);
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndProbesAfterCooldown) {
  service::CircuitBreaker breaker(1, /*failure_threshold=*/2,
                                  /*cooldown_dispatches=*/3);
  EXPECT_TRUE(breaker.allow(0));
  breaker.record_failure(0);
  EXPECT_TRUE(breaker.allow(0));
  breaker.record_failure(0);  // second consecutive -> open
  EXPECT_EQ(breaker.state(0), service::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  // Cooldown counted in dispatch attempts.
  EXPECT_FALSE(breaker.allow(0));
  EXPECT_FALSE(breaker.allow(0));
  EXPECT_FALSE(breaker.allow(0));
  // Cooldown elapsed: half-open, exactly one probe.
  EXPECT_TRUE(breaker.allow(0));
  EXPECT_EQ(breaker.state(0), service::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(0));  // probe already in flight
  breaker.record_success(0);
  EXPECT_EQ(breaker.state(0), service::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(0));
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  service::CircuitBreaker breaker(1, 1, 1);
  breaker.record_failure(0);
  EXPECT_EQ(breaker.state(0), service::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(0));
  EXPECT_TRUE(breaker.allow(0));  // probe
  breaker.record_failure(0);
  EXPECT_EQ(breaker.state(0), service::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
}

// ---------------------------------------------------------------------------
// Workload sources
// ---------------------------------------------------------------------------

TEST(Workload, ZipfGenerationIsDeterministicAndSkewed) {
  service::WorkloadSpec spec;
  spec.num_jobs = 200;
  const auto a = service::make_zipf_workload(spec);
  const auto b = service::make_zipf_workload(spec);
  ASSERT_EQ(a.size(), 200u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].eps, b[i].eps);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
  }
  // Zipf skew: the hottest eps must dominate the coldest.
  std::size_t hot = 0, cold = 0;
  for (const JobSpec& j : a) {
    if (j.eps == spec.eps_choices.front()) ++hot;
    if (j.eps == spec.eps_choices.back()) ++cold;
  }
  EXPECT_GT(hot, cold * 2);
}

TEST(Workload, ParsesJobLinesAndRejectsMalformedOnes) {
  const auto jobs = service::parse_jobs(
      "# comment\n"
      "t0 sky 0.4 4\n"
      "\n"
      "t1 sky 0.6 8 interactive 0.25 1.5\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].tenant, "t0");
  EXPECT_EQ(jobs[0].priority, Priority::kNormal);
  EXPECT_EQ(jobs[1].priority, Priority::kInteractive);
  EXPECT_DOUBLE_EQ(jobs[1].deadline_seconds, 0.25);
  EXPECT_DOUBLE_EQ(jobs[1].wall_deadline_seconds, 1.5);
  EXPECT_THROW(service::parse_jobs("t0 sky 0.4\n"), std::runtime_error);
  EXPECT_THROW(service::parse_jobs("t0 sky 0.4 4 urgent\n"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// ClusterService
// ---------------------------------------------------------------------------

struct ServiceFixture {
  std::unique_ptr<cudasim::Device> device =
      std::make_unique<cudasim::Device>(cudasim::DeviceConfig{},
                                        fast_options());
  std::vector<Point2> points =
      data::generate_uniform(1500, 5, 12.0f, 12.0f);

  std::unique_ptr<ClusterService> make(ServiceOptions opt) {
    auto svc = std::make_unique<ClusterService>(
        std::vector<cudasim::Device*>{device.get()}, opt);
    svc->register_dataset("sky", points, 0.8f);
    return svc;
  }
};

JobSpec job(float eps, int minpts = 4, Priority prio = Priority::kNormal,
            const std::string& tenant = "t0") {
  JobSpec j;
  j.tenant = tenant;
  j.dataset = "sky";
  j.eps = eps;
  j.minpts = minpts;
  j.priority = prio;
  return j;
}

TEST(ClusterServiceTest, UnknownDatasetIsRejectedWithReason) {
  ServiceFixture f;
  auto svc = f.make({});
  JobSpec bad = job(0.4f);
  bad.dataset = "nope";
  const auto results = svc->replay({bad});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].state, JobState::kRejected);
  EXPECT_NE(results[0].reject_reason.find("nope"), std::string::npos);
  EXPECT_EQ(svc->stats().rejected, 1u);
}

TEST(ClusterServiceTest, PricingScalesQuadraticallyWithEps) {
  ServiceFixture f;
  auto svc = f.make({});
  const auto [pairs_small, bytes_small] = svc->price("sky", 0.4f);
  const auto [pairs_large, bytes_large] = svc->price("sky", 0.8f);
  EXPECT_GT(pairs_small, 0u);
  // (0.8/0.4)^2 = 4x, exact by construction of the pricing formula.
  EXPECT_EQ(pairs_large, pairs_small * 4);
  EXPECT_GT(bytes_large, bytes_small);
  EXPECT_EQ(svc->price("nope", 0.4f).first, 0u);
}

TEST(ClusterServiceTest, OneItemMinimumAdmitsExactlyOneOverBudgetJob) {
  ServiceFixture f;
  ServiceOptions opt;
  opt.queue_bytes_budget = 1;  // every job is over budget
  opt.num_workers = 1;
  auto svc = f.make(opt);
  const auto results =
      svc->replay({job(0.4f), job(0.5f), job(0.6f)});
  ASSERT_EQ(results.size(), 3u);
  // The empty queue admits the first job whatever its price; with no
  // lower class to shed, the rest are rejected.
  EXPECT_EQ(results[0].state, JobState::kCompleted);
  EXPECT_EQ(results[1].state, JobState::kRejected);
  EXPECT_EQ(results[2].state, JobState::kRejected);
  EXPECT_EQ(svc->stats().admitted, 1u);
}

TEST(ClusterServiceTest, HigherPriorityArrivalShedsQueuedLowerClass) {
  ServiceFixture f;
  ServiceOptions opt;
  opt.queue_depth_limit = 2;
  opt.num_workers = 1;
  auto svc = f.make(opt);
  const auto results = svc->replay({
      job(0.4f, 4, Priority::kBatch),
      job(0.5f, 4, Priority::kBatch),
      job(0.6f, 4, Priority::kInteractive),
  });
  ASSERT_EQ(results.size(), 3u);
  // The interactive arrival evicts the most recently queued batch job.
  EXPECT_EQ(results[0].state, JobState::kCompleted);
  EXPECT_EQ(results[1].state, JobState::kShed);
  EXPECT_FALSE(results[1].reject_reason.empty());
  EXPECT_EQ(results[2].state, JobState::kCompleted);
  EXPECT_EQ(svc->stats().shed, 1u);
  // Shed work never touched a device.
  EXPECT_EQ(results[1].modeled_device_seconds, 0.0);
  EXPECT_EQ(results[1].device_id, -1);
}

TEST(ClusterServiceTest, AbandonedJobIsCancelledWithoutDeviceTime) {
  ServiceFixture f;
  ServiceOptions opt;
  opt.num_workers = 1;
  auto svc = f.make(opt);
  JobSpec gone = job(0.4f);
  gone.abandoned = true;
  const auto results = svc->replay({gone});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].state, JobState::kCancelled);
  EXPECT_EQ(results[0].failure, FailureReason::kCancelled);
  EXPECT_EQ(results[0].modeled_device_seconds, 0.0);
  EXPECT_EQ(results[0].device_id, -1);
}

TEST(ClusterServiceTest, ExpiredWallDeadlineCancelsMidBuildAndFreesPool) {
  ServiceFixture f;
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.cache_bytes_budget = 64ull << 20;
  auto svc = f.make(opt);
  JobSpec late = job(0.5f);
  late.wall_deadline_seconds = 1e-9;
  const auto results = svc->replay({late});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].state, JobState::kDeadlineExceeded);
  EXPECT_EQ(results[0].failure, FailureReason::kDeadlineExceeded);
  // The cooperative unwind returned every pooled buffer.
  f.device->pool().trim();
  EXPECT_EQ(f.device->used_global_bytes(), 0u);
  // And the aborted build never populated the cache.
  EXPECT_EQ(svc->cache().size(), 0u);
}

TEST(ClusterServiceTest, ModeledDeadlineAlreadyMissedSkipsTheDevice) {
  ServiceFixture f;
  ServiceOptions opt;
  opt.num_workers = 1;
  auto svc = f.make(opt);
  JobSpec overdue = job(0.4f);
  overdue.deadline_seconds = 1e-12;
  overdue.arrival_seconds = 1.0;  // arrived after its own deadline
  const auto results = svc->replay({overdue});
  EXPECT_EQ(results[0].state, JobState::kDeadlineExceeded);
  EXPECT_EQ(results[0].modeled_device_seconds, 0.0);
}

/// Cache-hit labels must be byte-identical to the fresh build's, across
/// scan modes and minpts — the canonicalize property carried through the
/// service: both servings run the same host DBSCAN over byte-identical
/// tables.
TEST(ClusterServiceTest, CacheHitLabelsBitIdenticalAcrossScanModesAndMinpts) {
  ServiceFixture f;
  std::vector<std::vector<std::int32_t>> label_sets;
  for (const ScanMode scan : {ScanMode::kHalf, ScanMode::kFull}) {
    ServiceOptions opt;
    opt.num_workers = 1;
    opt.cache_bytes_budget = 256ull << 20;
    opt.coalesce = false;  // force the second same-eps job to hit the cache
    opt.keep_labels = true;
    opt.policy.scan_mode = scan;
    auto svc = f.make(opt);
    const auto results = svc->replay({
        job(0.5f, 4),   // fresh build
        job(0.5f, 4),   // cache hit, same minpts
        job(0.5f, 12),  // cache hit, different minpts
    });
    ASSERT_EQ(results.size(), 3u);
    for (const JobResult& r : results) {
      ASSERT_EQ(r.state, JobState::kCompleted);
    }
    EXPECT_FALSE(results[0].cache_hit);
    EXPECT_TRUE(results[1].cache_hit);
    EXPECT_TRUE(results[2].cache_hit);
    EXPECT_EQ(svc->stats().cache_hits, 2u);
    // Same (eps, minpts): bit-identical labels.
    EXPECT_EQ(results[0].labels, results[1].labels);
    // Different minpts: a different clustering of the same table.
    EXPECT_FALSE(results[2].labels.empty());
    label_sets.push_back(results[0].labels);
    label_sets.push_back(results[2].labels);
  }
  // Across scan modes the canonicalized tables are byte-identical, so the
  // labels must be too (kHalf run vs kFull run, matched by minpts).
  ASSERT_EQ(label_sets.size(), 4u);
  EXPECT_EQ(label_sets[0], label_sets[2]);  // minpts 4
  EXPECT_EQ(label_sets[1], label_sets[3]);  // minpts 12
}

TEST(ClusterServiceTest, CoalescedGroupSharesOneBuild) {
  ServiceFixture f;
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.cache_bytes_budget = 0;  // FanoutSink streaming path
  opt.keep_labels = true;
  auto svc = f.make(opt);
  const auto results = svc->replay({
      job(0.5f, 4, Priority::kNormal, "t0"),
      job(0.5f, 8, Priority::kNormal, "t1"),
      job(0.5f, 4, Priority::kBatch, "t2"),
  });
  ASSERT_EQ(results.size(), 3u);
  const service::ServiceStats s = svc->stats();
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.coalesced_builds, 1u);
  EXPECT_EQ(s.coalesced_jobs, 2u);
  for (const JobResult& r : results) {
    EXPECT_EQ(r.state, JobState::kCompleted);
    EXPECT_TRUE(r.coalesced);
  }
  // Same minpts across the fanout: identical labels from one build.
  EXPECT_EQ(results[0].labels, results[2].labels);
}

/// Fused jobs coalesce only with fused jobs of the same (eps, minpts) —
/// the union-find threshold is baked into the traversal — and a plain job
/// with the same eps never rides the fused build.
TEST(ClusterServiceTest, FusedJobsCoalesceByMinptsAndSkipTableJobs) {
  ServiceFixture f;
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.cache_bytes_budget = 256ull << 20;
  opt.keep_labels = true;
  auto svc = f.make(opt);
  JobSpec f1 = job(0.5f, 4);
  JobSpec f2 = job(0.5f, 4, Priority::kNormal, "t1");
  JobSpec f3 = job(0.5f, 8, Priority::kNormal, "t2");  // different minpts
  f1.fused = f2.fused = f3.fused = true;
  const auto results = svc->replay({f1, f2, f3, job(0.5f, 4)});
  ASSERT_EQ(results.size(), 4u);
  for (const JobResult& r : results) {
    ASSERT_EQ(r.state, JobState::kCompleted);
  }
  EXPECT_TRUE(results[0].fused);
  EXPECT_TRUE(results[1].fused);
  EXPECT_TRUE(results[2].fused);
  EXPECT_FALSE(results[3].fused);
  const service::ServiceStats s = svc->stats();
  EXPECT_EQ(s.fused_jobs, 3u);
  // Only the matched (eps, minpts) fused pair shared a build.
  EXPECT_EQ(s.coalesced_builds, 1u);
  EXPECT_EQ(s.coalesced_jobs, 1u);
  // Fused builds never populate the cache; the plain job's build did.
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(svc->cache().size(), 1u);
  // The fused labels are bit-identical to the table path's for the same
  // (eps, minpts) — the service-level echo of the kernel equivalence.
  EXPECT_EQ(results[0].labels, results[3].labels);
  EXPECT_EQ(results[0].labels, results[1].labels);
}

/// A fused job must bypass the cache even when a matching-key table is
/// already resident: serving a no-table request from a table would skew
/// every measurement the fused path exists to make.
TEST(ClusterServiceTest, FusedJobsBypassAResidentCacheEntry) {
  ServiceFixture f;
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.cache_bytes_budget = 256ull << 20;
  opt.coalesce = false;
  opt.keep_labels = true;
  auto svc = f.make(opt);
  JobSpec fused_job = job(0.5f, 4, Priority::kNormal, "t1");
  fused_job.fused = true;
  const auto results =
      svc->replay({job(0.5f, 4), job(0.5f, 4), fused_job});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].cache_hit);  // fresh build, inserts
  EXPECT_TRUE(results[1].cache_hit);   // same key, plain job: hit
  EXPECT_FALSE(results[2].cache_hit);  // fused: bypassed the entry
  EXPECT_TRUE(results[2].fused);
  EXPECT_EQ(svc->stats().cache_hits, 1u);
  EXPECT_EQ(results[2].labels, results[0].labels);
}

// ---------------------------------------------------------------------------
// Quality knob (DESIGN.md §16)
// ---------------------------------------------------------------------------

/// Regression: the cache key must include the quality mode, sample rate,
/// and seed. A subsampled table is missing a seeded subset of every row;
/// serving it to an exact job (or to a subsampled job with a different
/// rate/seed) would silently return approximate labels for an exact
/// request.
TEST(TableCacheTest, KeyIncludesQualityModeRateAndSeed) {
  TableCache cache(1000);
  const TableCache::Key exact{"d", 1, IndexBackend::kGrid, ScanMode::kHalf};
  TableCache::Key sub = exact;
  sub.quality = ClusterQuality::kSubsampled;
  sub.sample_rate_bits = 0x3e99999a;  // 0.3f
  sub.sample_seed = 7;
  { auto h = cache.insert(exact, make_entry(4, 100)); }
  EXPECT_TRUE(cache.contains(exact));
  EXPECT_FALSE(cache.find(sub));
  { auto h = cache.insert(sub, make_entry(4, 100)); }
  EXPECT_EQ(cache.size(), 2u);
  // Different seed or rate: yet another entry.
  TableCache::Key other_seed = sub;
  other_seed.sample_seed = 8;
  EXPECT_FALSE(cache.find(other_seed));
  TableCache::Key other_rate = sub;
  other_rate.sample_rate_bits = 0x3f000000;  // 0.5f
  EXPECT_FALSE(cache.find(other_rate));
}

/// The end-to-end version of the same regression: with the cache hot from
/// a subsampled build, an exact job with the same (dataset, eps) must
/// miss, build its own table, and insert a second entry — and vice versa
/// a later subsampled job with the same spec must hit its own entry.
TEST(ClusterServiceTest, ExactJobNeverAdoptsASubsampledTable) {
  ServiceFixture f;
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.cache_bytes_budget = 256ull << 20;
  opt.keep_labels = true;
  auto svc = f.make(opt);
  JobSpec sub = job(0.5f, 8);
  sub.quality = {ClusterQuality::kSubsampled, 0.3f, 7};
  const auto first = svc->replay({sub, job(0.5f, 8)});
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(first[0].state, JobState::kCompleted);
  ASSERT_EQ(first[1].state, JobState::kCompleted);
  // Quality differs, so no coalescing and no cache sharing: two builds,
  // two entries.
  EXPECT_FALSE(first[0].coalesced);
  EXPECT_FALSE(first[1].coalesced);
  EXPECT_FALSE(first[0].cache_hit);
  EXPECT_FALSE(first[1].cache_hit);
  EXPECT_EQ(svc->cache().size(), 2u);
  EXPECT_EQ(svc->stats().coalesced_builds, 0u);

  // Replays against the hot cache: each quality hits its own entry.
  const auto exact_again = svc->replay({job(0.5f, 8)});
  ASSERT_EQ(exact_again[0].state, JobState::kCompleted);
  EXPECT_TRUE(exact_again[0].cache_hit);
  EXPECT_EQ(exact_again[0].labels, first[1].labels);
  const auto sub_again = svc->replay({sub});
  ASSERT_EQ(sub_again[0].state, JobState::kCompleted);
  EXPECT_TRUE(sub_again[0].cache_hit);
  EXPECT_EQ(sub_again[0].labels, first[0].labels);
}

TEST(ClusterServiceTest, SubsampledJobsCoalesceOnlyOnMatchingRateAndSeed) {
  ServiceFixture f;
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.cache_bytes_budget = 256ull << 20;
  opt.keep_labels = true;
  auto svc = f.make(opt);
  JobSpec a = job(0.5f, 8, Priority::kNormal, "t0");
  JobSpec b = job(0.5f, 8, Priority::kNormal, "t1");
  JobSpec c = job(0.5f, 8, Priority::kNormal, "t2");
  a.quality = {ClusterQuality::kSubsampled, 0.3f, 7};
  b.quality = a.quality;
  c.quality = {ClusterQuality::kSubsampled, 0.3f, 8};  // different seed
  const auto results = svc->replay({a, b, c});
  ASSERT_EQ(results.size(), 3u);
  for (const JobResult& r : results) {
    ASSERT_EQ(r.state, JobState::kCompleted);
  }
  const service::ServiceStats s = svc->stats();
  EXPECT_EQ(s.coalesced_builds, 1u);
  EXPECT_EQ(s.coalesced_jobs, 1u);
  EXPECT_EQ(results[0].labels, results[1].labels);
}

TEST(ClusterServiceTest, CellGraphJobCompletesWithoutTableOrDevice) {
  ServiceFixture f;
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.cache_bytes_budget = 256ull << 20;
  opt.keep_labels = true;
  auto svc = f.make(opt);
  JobSpec cg = job(0.5f, 4);
  cg.quality.mode = ClusterQuality::kCellGraph;
  const auto results = svc->replay({cg, cg});
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(results[0].state, JobState::kCompleted);
  ASSERT_EQ(results[1].state, JobState::kCompleted);
  // One host-side cell-graph pass served the coalesced pair; no device
  // was occupied and nothing was cached.
  EXPECT_EQ(results[0].device_id, -1);
  EXPECT_EQ(results[0].modeled_device_seconds, 0.0);
  EXPECT_TRUE(results[0].coalesced);
  EXPECT_EQ(results[0].labels, results[1].labels);
  EXPECT_EQ(svc->cache().size(), 0u);
  EXPECT_EQ(svc->stats().cell_graph_jobs, 2u);
  EXPECT_GT(results[0].num_clusters, 0);
}

TEST(ClusterServiceTest, FusedCellGraphIsRejectedWithReason) {
  ServiceFixture f;
  auto svc = f.make({});
  JobSpec bad = job(0.5f, 4);
  bad.fused = true;
  bad.quality.mode = ClusterQuality::kCellGraph;
  const auto results = svc->replay({bad});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].state, JobState::kRejected);
  EXPECT_NE(results[0].reject_reason.find("cellgraph"), std::string::npos);
}

TEST(ClusterServiceTest, InvalidSampleRateIsRejectedWithReason) {
  ServiceFixture f;
  auto svc = f.make({});
  JobSpec bad = job(0.5f, 4);
  bad.quality = {ClusterQuality::kSubsampled, 1.5f, 0};
  const auto results = svc->replay({bad});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].state, JobState::kRejected);
  EXPECT_NE(results[0].reject_reason.find("sample_rate"), std::string::npos);
}

/// Admission prices what a subsampled build will actually emit: ~rate of
/// the exact pair count — charging the exact price would reject the very
/// jobs the quality knob exists to admit.
TEST(ClusterServiceTest, SubsampledJobsArePricedAtTheSampledRate) {
  ServiceFixture f;
  ServiceOptions opt;
  opt.num_workers = 1;
  auto svc = f.make(opt);
  JobSpec sub = job(0.5f, 8);
  sub.quality = {ClusterQuality::kSubsampled, 0.25f, 7};
  const auto results = svc->replay({job(0.5f, 8), sub});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].priced_pairs, 0u);
  EXPECT_GT(results[1].priced_pairs, 0u);
  EXPECT_LT(results[1].priced_pairs, results[0].priced_pairs / 2);
}

TEST(ClusterServiceTest, PublishesRequestOutcomeCounters) {
  obs::Registry& reg = obs::Registry::global();
  reg.reset_values();
  ServiceFixture f;
  ServiceOptions opt;
  opt.queue_bytes_budget = 1;
  opt.num_workers = 1;
  auto svc = f.make(opt);
  (void)svc->replay({job(0.4f), job(0.5f)});
  EXPECT_EQ(reg.counter("service_requests", "outcome=completed").value(), 1u);
  EXPECT_EQ(reg.counter("service_requests", "outcome=rejected").value(), 1u);
  EXPECT_EQ(reg.counter("service_requests", "outcome=admitted").value(), 1u);
}

}  // namespace
}  // namespace hdbscan
