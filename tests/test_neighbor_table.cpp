#include "dbscan/neighbor_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "data/generators.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

TEST(NeighborTable, EmptyTableHasEmptyRanges) {
  const NeighborTable t(5);
  EXPECT_EQ(t.num_points(), 5u);
  for (PointId i = 0; i < 5; ++i) {
    EXPECT_EQ(t.neighbor_count(i), 0u);
    EXPECT_TRUE(t.neighbors(i).empty());
  }
}

TEST(NeighborTable, SingleBatchRanges) {
  NeighborTable t(4);
  const std::vector<NeighborPair> pairs{
      {0, 0}, {0, 2}, {1, 1}, {3, 3}, {3, 0}, {3, 1}};
  t.append_sorted_batch(pairs);
  EXPECT_EQ(t.total_pairs(), 6u);
  ASSERT_EQ(t.neighbor_count(0), 2u);
  EXPECT_EQ(t.neighbors(0)[0], 0u);
  EXPECT_EQ(t.neighbors(0)[1], 2u);
  EXPECT_EQ(t.neighbor_count(1), 1u);
  EXPECT_EQ(t.neighbor_count(2), 0u);
  ASSERT_EQ(t.neighbor_count(3), 3u);
  EXPECT_EQ(t.neighbors(3)[2], 1u);
}

TEST(NeighborTable, MultipleBatchesWithInterleavedKeys) {
  NeighborTable t(6);
  // Strided batches: keys {0, 2, 4} then {1, 3, 5}.
  t.append_sorted_batch(std::vector<NeighborPair>{{0, 9}, {2, 8}, {4, 7}});
  t.append_sorted_batch(std::vector<NeighborPair>{{1, 6}, {3, 5}, {5, 4}});
  for (PointId i = 0; i < 6; ++i) {
    ASSERT_EQ(t.neighbor_count(i), 1u) << i;
  }
  EXPECT_EQ(t.neighbors(0)[0], 9u);
  EXPECT_EQ(t.neighbors(5)[0], 4u);
  EXPECT_EQ(t.total_pairs(), 6u);
}

TEST(NeighborTable, RejectsKeyOutOfRange) {
  NeighborTable t(3);
  EXPECT_THROW(t.append_sorted_batch(std::vector<NeighborPair>{{7, 0}}),
               std::out_of_range);
}

TEST(NeighborTable, RejectsKeyInTwoBatches) {
  NeighborTable t(3);
  t.append_sorted_batch(std::vector<NeighborPair>{{1, 0}});
  EXPECT_THROW(t.append_sorted_batch(std::vector<NeighborPair>{{1, 2}}),
               std::logic_error);
}

TEST(NeighborTable, HostBuildMatchesGridQueries) {
  const auto points = data::generate_sky_survey(2500, 21);
  const float eps = 0.4f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable table = build_neighbor_table_host(index, eps);
  EXPECT_EQ(table.num_points(), index.size());

  std::vector<PointId> expected;
  for (PointId i = 0; i < index.size(); i += 41) {
    grid_query(index, index.points[i], eps, expected);
    std::sort(expected.begin(), expected.end());
    std::vector<PointId> got(table.neighbors(i).begin(),
                             table.neighbors(i).end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "point " << i;
    // Self always included.
    EXPECT_TRUE(std::binary_search(got.begin(), got.end(), i));
  }
}

TEST(NeighborTable, TotalPairsMatchesSumOfCounts) {
  const auto points = data::generate_space_weather(1500, 22);
  const GridIndex index = build_grid_index(points, 0.3f);
  const NeighborTable table = build_neighbor_table_host(index, 0.3f);
  std::uint64_t sum = 0;
  for (PointId i = 0; i < table.num_points(); ++i) {
    sum += table.neighbor_count(i);
  }
  EXPECT_EQ(sum, table.total_pairs());
}

TEST(NeighborTable, SymmetricNeighborhoods) {
  // j in N(i) <=> i in N(j) (Euclidean distance is symmetric).
  const auto points = data::generate_uniform(800, 23, 5.0f, 5.0f);
  const GridIndex index = build_grid_index(points, 0.5f);
  const NeighborTable table = build_neighbor_table_host(index, 0.5f);
  for (PointId i = 0; i < table.num_points(); ++i) {
    for (const PointId j : table.neighbors(i)) {
      const auto back = table.neighbors(j);
      EXPECT_TRUE(std::find(back.begin(), back.end(), i) != back.end())
          << i << " -> " << j << " not symmetric";
    }
  }
}

TEST(NeighborTable, ParallelHostBuildEqualsSequential) {
  const auto points = data::generate_space_weather(3000, 24);
  const float eps = 0.35f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable sequential = build_neighbor_table_host(index, eps);
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const NeighborTable parallel =
        build_neighbor_table_host_parallel(index, eps, threads);
    ASSERT_EQ(parallel.total_pairs(), sequential.total_pairs());
    for (PointId i = 0; i < sequential.num_points(); ++i) {
      const auto a = sequential.neighbors(i);
      const auto b = parallel.neighbors(i);
      ASSERT_EQ(std::vector<PointId>(a.begin(), a.end()),
                std::vector<PointId>(b.begin(), b.end()))
          << "threads=" << threads << " point " << i;
    }
  }
}

}  // namespace
}  // namespace hdbscan
