// Request-scoped tracing (DESIGN.md §14): RequestContext/RequestScope
// semantics, propagation across thread hops (ThreadPool, cudasim
// streams), tracer stamping + span links, the StageBreakdown ledger, the
// critical-path analyzer, and end-to-end attribution through a traced
// service replay.
#include "common/request_context.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/device.hpp"
#include "cudasim/stream.hpp"
#include "data/generators.hpp"
#include "obs/analyzer.hpp"
#include "obs/trace.hpp"
#include "service/request.hpp"
#include "service/scheduler.hpp"
#include "service/workload.hpp"

namespace hdbscan {
namespace {

using service::Stage;
using service::StageBreakdown;

RequestContext make_ctx(std::uint64_t id, const char* tenant) {
  RequestContext ctx;
  ctx.request_id = id;
  ctx.set_tenant(tenant);
  return ctx;
}

// ---------------------------------------------------------------------------
// RequestContext / RequestScope
// ---------------------------------------------------------------------------

TEST(RequestContext, DefaultIsUnattributed) {
  EXPECT_FALSE(current_request_context().valid());
  EXPECT_EQ(current_request_context().request_id, 0u);
}

TEST(RequestContext, MintedIdsAreUniqueAndNonZero) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = mint_request_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
}

TEST(RequestContext, TenantTruncatesSafely) {
  RequestContext ctx;
  ctx.set_tenant("a-tenant-name-much-longer-than-the-fixed-buffer");
  EXPECT_EQ(std::strlen(ctx.tenant), sizeof(ctx.tenant) - 1);
  ctx.set_tenant(nullptr);
  EXPECT_STREQ(ctx.tenant, "");
}

TEST(RequestScope, NestedScopesUnwind) {
  const RequestContext a = make_ctx(11, "alice");
  const RequestContext b = make_ctx(22, "bob");
  {
    RequestScope outer(a);
    EXPECT_EQ(current_request_context().request_id, 11u);
    {
      RequestScope inner(b);
      EXPECT_EQ(current_request_context().request_id, 22u);
      EXPECT_STREQ(current_request_context().tenant, "bob");
    }
    EXPECT_EQ(current_request_context().request_id, 11u);
    EXPECT_STREQ(current_request_context().tenant, "alice");
  }
  EXPECT_FALSE(current_request_context().valid());
}

TEST(RequestScope, ThreadPoolTasksInheritSubmitterContext) {
  ThreadPool pool(2);
  const RequestContext ctx = make_ctx(33, "carol");
  std::uint64_t seen = 0;
  {
    RequestScope scope(ctx);
    seen = pool.submit([] { return current_request_context().request_id; })
               .get();
  }
  EXPECT_EQ(seen, 33u);
  // A task submitted outside any scope runs unattributed.
  EXPECT_EQ(pool.submit([] { return current_request_context().request_id; })
                .get(),
            0u);
}

// ---------------------------------------------------------------------------
// Tracer stamping + links
// ---------------------------------------------------------------------------

#if !defined(HDBSCAN_TRACE_DISABLED)

TEST(RequestTrace, SpansCarryTheInstalledContext) {
  obs::Tracer& t = obs::Tracer::global();
  t.enable();
  obs::set_thread_track(obs::kHostPid, "test");
  {
    RequestContext ctx = make_ctx(44, "dora");
    ctx.link_id = 40;
    RequestScope scope(ctx);
    TRACE_SPAN("test", "attributed");
  }
  {
    TRACE_SPAN("test", "anonymous");
  }
  t.disable();
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].request_id, 44u);
  EXPECT_EQ(events[0].link_id, 40u);
  EXPECT_STREQ(events[0].tenant, "dora");
  EXPECT_EQ(events[1].request_id, 0u);
}

TEST(RequestTrace, DeviceStreamWorkInheritsEnqueuerContext) {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  cudasim::Device device{cudasim::DeviceConfig{}, opt};

  obs::Tracer& t = obs::Tracer::global();
  t.enable();
  {
    RequestContext ctx = make_ctx(55, "eve");
    RequestScope scope(ctx);
    cudasim::Stream stream(device);
    std::vector<float> host(1024, 1.0f);
    cudasim::DeviceBuffer<float> buf(device, host.size());
    stream.memcpy_to_device(buf, host.data(), host.size());
    stream.synchronize();
  }
  t.disable();
  std::size_t attributed_device_spans = 0;
  for (const auto& e : t.snapshot()) {
    if (e.type == obs::EventType::kSpan && e.pid >= obs::kDevicePidBase &&
        e.request_id == 55u) {
      ++attributed_device_spans;
    }
  }
  EXPECT_GT(attributed_device_spans, 0u)
      << "device-side spans must carry the enqueuing request's id";
}

TEST(RequestTrace, LinkInstantRecordsBothEnds) {
  obs::Tracer& t = obs::Tracer::global();
  t.enable();
  obs::link("cache_hit", 70, "frank", 60);
  t.disable();
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, obs::EventType::kInstant);
  EXPECT_STREQ(events[0].category, "link");
  EXPECT_EQ(events[0].request_id, 70u);
  EXPECT_EQ(events[0].link_id, 60u);
  EXPECT_STREQ(events[0].tenant, "frank");
}

#endif  // !HDBSCAN_TRACE_DISABLED

// ---------------------------------------------------------------------------
// StageBreakdown
// ---------------------------------------------------------------------------

TEST(StageBreakdown, SumsAndDominant) {
  StageBreakdown b;
  b.add(Stage::kQueueWait, 0.010);
  b.add(Stage::kBuild, 0.050, 0.040);
  b.add(Stage::kBuild, 0.025, 0.010);  // accumulates
  b.add(Stage::kFinalize, 0.001);
  EXPECT_DOUBLE_EQ(b.wall(Stage::kBuild), 0.075);
  EXPECT_DOUBLE_EQ(b.total_wall_seconds(), 0.086);
  EXPECT_EQ(b.dominant(), Stage::kBuild);
  EXPECT_STREQ(service::stage_name(b.dominant()), "build");
}

TEST(StageBreakdown, StageNamesAreStable) {
  EXPECT_STREQ(service::stage_name(Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(service::stage_name(Stage::kAdmission), "admission");
  EXPECT_STREQ(service::stage_name(Stage::kCache), "cache");
  EXPECT_STREQ(service::stage_name(Stage::kBuild), "build");
  EXPECT_STREQ(service::stage_name(Stage::kStreamUnion), "stream_union");
  EXPECT_STREQ(service::stage_name(Stage::kFinalize), "finalize");
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

#if !defined(HDBSCAN_TRACE_DISABLED)

TEST(Analyzer, AttributesStagesAndRanksBySlowness) {
  obs::Tracer& t = obs::Tracer::global();
  t.enable();
  obs::set_thread_track(obs::kHostPid, "test");
  {
    RequestScope scope(make_ctx(101, "slow"));
    obs::Tracer::global().record(obs::EventType::kSpan, "stage",
                                 "queue_wait", 0.0, 3000.0, -1.0, -1.0, 0.0);
    obs::Tracer::global().record(obs::EventType::kSpan, "stage", "build",
                                 3000.0, 7000.0, 0.0, 5000.0, 0.0);
    obs::Tracer::global().record(obs::EventType::kSpan, "build", "kernel",
                                 3500.0, 2000.0, -1.0, -1.0, 0.0);
  }
  {
    RequestScope scope(make_ctx(102, "fast"));
    obs::Tracer::global().record(obs::EventType::kSpan, "stage", "build",
                                 0.0, 1000.0, -1.0, -1.0, 0.0);
  }
  t.disable();

  const obs::RequestAnalysis a = obs::analyze_request_trace(t.snapshot());
  ASSERT_EQ(a.requests.size(), 2u);
  // Slowest first.
  EXPECT_EQ(a.requests[0].request_id, 101u);
  EXPECT_EQ(a.requests[1].request_id, 102u);

  const obs::RequestProfile& slow = a.requests[0];
  EXPECT_EQ(slow.tenant, "slow");
  EXPECT_NEAR(slow.latency_seconds, 0.010, 1e-9);  // stage spans sum
  EXPECT_EQ(slow.dominant_stage, "build");
  EXPECT_NEAR(slow.dominant_seconds, 0.007, 1e-9);
  EXPECT_NEAR(slow.modeled_seconds, 0.005, 1e-9);
  ASSERT_FALSE(slow.categories.empty());
  EXPECT_EQ(slow.categories[0].name, "build");
  EXPECT_NEAR(slow.categories[0].wall_seconds, 0.002, 1e-9);
  EXPECT_EQ(a.p99_dominant_stage, "build");
  EXPECT_EQ(a.unattributed_spans, 0u);
}

TEST(Analyzer, LinkInstantsPopulateLinkedTo) {
  obs::Tracer& t = obs::Tracer::global();
  t.enable();
  obs::set_thread_track(obs::kHostPid, "test");
  {
    RequestScope scope(make_ctx(201, "member"));
    obs::Tracer::global().record(obs::EventType::kSpan, "stage", "build",
                                 0.0, 500.0, -1.0, -1.0, 0.0);
  }
  obs::link("coalesced", 201, "member", 200);
  t.disable();
  const obs::RequestAnalysis a = obs::analyze_request_trace(t.snapshot());
  ASSERT_EQ(a.requests.size(), 1u);
  ASSERT_EQ(a.requests[0].linked_to.size(), 1u);
  EXPECT_EQ(a.requests[0].linked_to[0], 200u);
}

// ---------------------------------------------------------------------------
// End-to-end: traced service replay
// ---------------------------------------------------------------------------

TEST(RequestTrace, ReplayAttributesEverySpanAndResult) {
  const std::vector<Point2> points = data::generate_uniform(1500, 3, 20.0f,
                                                            20.0f);
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  cudasim::Device device{cudasim::DeviceConfig{}, opt};
  std::vector<cudasim::Device*> devices{&device};

  obs::Tracer& t = obs::Tracer::global();
  t.enable();

  service::ServiceOptions sopt;
  sopt.num_workers = 2;
  sopt.cache_bytes_budget = 32ull << 20;
  service::ClusterService svc(devices, sopt);
  svc.register_dataset("uni", points, 0.8f);

  std::vector<service::JobSpec> jobs;
  for (int i = 0; i < 6; ++i) {
    service::JobSpec j;
    j.tenant = i % 2 == 0 ? "alice" : "bob";
    j.dataset = "uni";
    j.eps = i < 3 ? 0.6f : 0.9f;  // repeats exercise cache/coalescing
    j.minpts = 4;
    jobs.push_back(j);
  }
  const std::vector<service::JobResult> results = svc.replay(jobs);
  t.disable();

  std::set<std::uint64_t> ids;
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].state, service::JobState::kCompleted);
    EXPECT_NE(results[i].request_id, 0u) << "job " << i;
    EXPECT_TRUE(ids.insert(results[i].request_id).second)
        << "request ids must be unique";
    EXPECT_GT(results[i].stages.total_wall_seconds(), 0.0) << "job " << i;
  }

  // Every span recorded during the replay carries a request id: the
  // service installs a scope on each worker and every thread hop
  // (builder pump, stream executor, pool tasks) re-installs it.
  std::size_t spans = 0;
  for (const auto& e : t.snapshot()) {
    if (e.type != obs::EventType::kSpan) continue;
    ++spans;
    EXPECT_NE(e.request_id, 0u)
        << "unattributed span '" << e.name << "' in category '" << e.category
        << "'";
  }
  EXPECT_GT(spans, 0u);

  // The analyzer sees one profile per request (register_dataset's system
  // request included) and reconstructs each job's stage ledger.
  const obs::RequestAnalysis a = obs::analyze_request_trace(t.snapshot());
  EXPECT_GE(a.requests.size(), results.size());
  EXPECT_EQ(a.unattributed_spans, 0u);
  for (const auto& r : a.requests) {
    EXPECT_FALSE(r.stages.empty() && r.categories.empty());
  }

  // The SLO report aggregates the same runs per tenant.
  const auto slo = svc.slo_report();
  ASSERT_EQ(slo.size(), 2u);
  EXPECT_EQ(slo[0].tenant, "alice");
  EXPECT_EQ(slo[1].tenant, "bob");
  for (const auto& row : slo) {
    EXPECT_EQ(row.submitted, 3u);
    EXPECT_EQ(row.completed, 3u);
    EXPECT_TRUE(row.target_met);  // no target configured
    EXPECT_GT(row.p99_seconds, 0.0);
    EXPECT_GE(row.p99_seconds, row.p50_seconds);
    EXPECT_DOUBLE_EQ(row.error_fraction(), 0.0);
    EXPECT_DOUBLE_EQ(row.shed_fraction(), 0.0);
  }
}

#endif  // !HDBSCAN_TRACE_DISABLED

}  // namespace
}  // namespace hdbscan
