#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "cudasim/buffer.hpp"
#include "cudasim/device.hpp"
#include "cudasim/stream.hpp"

namespace {

using cudasim::Device;
using cudasim::DeviceBuffer;
using cudasim::Event;
using cudasim::HostMem;
using cudasim::PinnedBuffer;
using cudasim::SimulationOptions;
using cudasim::Stream;

SimulationOptions fast_options() {
  SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 1;
  return opt;
}

TEST(Stream, OpsExecuteInOrder) {
  Device dev({}, fast_options());
  Stream stream(dev);
  std::vector<int> log;
  for (int i = 0; i < 10; ++i) {
    stream.host_fn([&log, i] { log.push_back(i); });
  }
  stream.synchronize();
  ASSERT_EQ(log.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(log[i], i);
}

TEST(Stream, RoundTripTransferPreservesData) {
  Device dev({}, fast_options());
  Stream stream(dev);
  std::vector<float> host_in(1024);
  for (std::size_t i = 0; i < host_in.size(); ++i) {
    host_in[i] = static_cast<float>(i) * 0.5f;
  }
  DeviceBuffer<float> dbuf(dev, host_in.size());
  std::vector<float> host_out(host_in.size(), -1.0f);
  stream.memcpy_to_device(dbuf, host_in.data(), host_in.size());
  stream.memcpy_to_host(host_out.data(), dbuf, host_in.size());
  stream.synchronize();
  EXPECT_EQ(host_in, host_out);
}

TEST(Stream, TransferMetricsRecorded) {
  Device dev({}, fast_options());
  Stream stream(dev);
  DeviceBuffer<char> dbuf(dev, 1000);
  std::vector<char> host(1000, 'x');
  stream.memcpy_to_device(dbuf, host.data(), 1000);
  stream.memcpy_to_host(host.data(), dbuf, 500);
  stream.synchronize();
  const auto m = dev.metrics();
  EXPECT_EQ(m.h2d_bytes, 1000u);
  EXPECT_EQ(m.d2h_bytes, 500u);
  EXPECT_GT(m.transfer_seconds, 0.0);
}

TEST(Stream, PinnedTransfersModelFasterLink) {
  Device dev({}, fast_options());
  DeviceBuffer<char> dbuf(dev, 1 << 20);
  std::vector<char> pageable(1 << 20);
  PinnedBuffer<char> pinned(dev, 1 << 20);

  Stream stream(dev);
  stream.memcpy_to_device(dbuf, pageable.data(), pageable.size(),
                          HostMem::Pageable);
  stream.synchronize();
  const double pageable_s = dev.metrics().transfer_seconds;

  dev.reset_metrics();
  stream.memcpy_to_device(dbuf, pinned.data(), pinned.size(), HostMem::Pinned);
  stream.synchronize();
  const double pinned_s = dev.metrics().transfer_seconds;

  EXPECT_LT(pinned_s, pageable_s);
  // Default model: 6 GB/s pinned vs 3 GB/s pageable -> roughly 2x.
  EXPECT_NEAR(pageable_s / pinned_s, 2.0, 0.5);
}

TEST(Event, GatesCrossStreamWork) {
  Device dev({}, fast_options());
  Stream producer(dev);
  Stream consumer(dev);
  std::atomic<int> value{0};
  Event ready;

  producer.host_fn([&] { value.store(42); });
  producer.record(ready);
  consumer.wait(ready);
  int observed = -1;
  consumer.host_fn([&] { observed = value.load(); });
  consumer.synchronize();
  EXPECT_EQ(observed, 42);
}

TEST(Event, QueryReflectsCompletion) {
  Device dev({}, fast_options());
  Event e;
  EXPECT_FALSE(e.query());
  Stream stream(dev);
  stream.record(e);
  e.wait();
  EXPECT_TRUE(e.query());
}

TEST(Stream, SynchronizeIsIdempotent) {
  Device dev({}, fast_options());
  Stream stream(dev);
  stream.host_fn([] {});
  stream.synchronize();
  stream.synchronize();
  SUCCEED();
}

TEST(Stream, ThrottledTransferSleepsModelTime) {
  cudasim::DeviceConfig cfg;
  cfg.pcie_pinned_gbps = 1.0;  // 1 GB/s -> 8 MB takes ~8 ms
  cfg.pcie_latency_us = 0.0;
  SimulationOptions opt;
  opt.throttle_transfers = true;
  opt.executor_threads = 1;
  opt.throttle_pinned_alloc = false;
  Device dev(cfg, opt);
  Stream stream(dev);
  DeviceBuffer<char> dbuf(dev, 8 << 20);
  PinnedBuffer<char> host(dev, 8 << 20);
  const auto start = std::chrono::steady_clock::now();
  stream.memcpy_to_device(dbuf, host.data(), 8 << 20, HostMem::Pinned);
  stream.synchronize();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.007);
}

TEST(Stream, ManyStreamsProgressIndependently) {
  Device dev({}, fast_options());
  std::vector<std::unique_ptr<Stream>> streams;
  std::atomic<int> total{0};
  for (int s = 0; s < 4; ++s) {
    streams.push_back(std::make_unique<Stream>(dev));
  }
  for (int i = 0; i < 25; ++i) {
    for (auto& s : streams) {
      s->host_fn([&total] { total++; });
    }
  }
  for (auto& s : streams) s->synchronize();
  EXPECT_EQ(total.load(), 100);
}

TEST(Event, ElapsedSecondsBetweenRecordedEvents) {
  Device dev({}, fast_options());
  Stream stream(dev);
  Event start, stop;
  stream.record(start);
  stream.host_fn([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  stream.record(stop);
  stream.synchronize();
  const double elapsed = Event::elapsed_seconds(start, stop);
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
}

TEST(Event, ElapsedThrowsWhenNotReady) {
  Event a, b;
  EXPECT_THROW(Event::elapsed_seconds(a, b), cudasim::SimError);
}

}  // namespace
