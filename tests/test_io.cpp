#include "data/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/generators.hpp"

namespace hdbscan {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "hdbscan_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, BinaryRoundTrip) {
  const auto points = data::generate_space_weather(5000, 11);
  data::save_binary(path("pts.bin"), points);
  EXPECT_EQ(data::load_binary(path("pts.bin")), points);
}

TEST_F(IoTest, BinaryEmptyRoundTrip) {
  data::save_binary(path("empty.bin"), {});
  EXPECT_TRUE(data::load_binary(path("empty.bin")).empty());
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  std::ofstream out(path("bad.bin"), std::ios::binary);
  out << "NOPE and some bytes";
  out.close();
  EXPECT_THROW(data::load_binary(path("bad.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  const auto points = data::generate_uniform(100, 12, 1.0f, 1.0f);
  data::save_binary(path("trunc.bin"), points);
  std::filesystem::resize_file(path("trunc.bin"), 100);
  EXPECT_THROW(data::load_binary(path("trunc.bin")), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(data::load_binary(path("missing.bin")), std::runtime_error);
  EXPECT_THROW(data::load_csv(path("missing.csv")), std::runtime_error);
}

TEST_F(IoTest, CsvRoundTrip) {
  const auto points = data::generate_sky_survey(500, 13);
  data::save_csv(path("pts.csv"), points);
  const auto loaded = data::load_csv(path("pts.csv"));
  ASSERT_EQ(loaded.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_NEAR(loaded[i].x, points[i].x, 1e-4f);
    EXPECT_NEAR(loaded[i].y, points[i].y, 1e-4f);
  }
}

TEST_F(IoTest, CsvSkipsCommentsAndBlanks) {
  std::ofstream out(path("mixed.csv"));
  out << "# header comment\n"
      << "1.5,2.5\n"
      << "\n"
      << "3.0,4.0\n";
  out.close();
  const auto loaded = data::load_csv(path("mixed.csv"));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_FLOAT_EQ(loaded[0].x, 1.5f);
  EXPECT_FLOAT_EQ(loaded[1].y, 4.0f);
}

TEST_F(IoTest, CsvRejectsMalformedLine) {
  std::ofstream out(path("bad.csv"));
  out << "1.0,2.0\n"
      << "not a point\n";
  out.close();
  EXPECT_THROW(data::load_csv(path("bad.csv")), std::runtime_error);
}

}  // namespace
}  // namespace hdbscan
