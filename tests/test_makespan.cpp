#include "common/makespan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace hdbscan {
namespace {

TEST(Makespan, SingleWorkerIsSum) {
  const std::vector<double> d{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(makespan_seconds(d, 1), 6.0);
}

TEST(Makespan, EnoughWorkersIsMax) {
  const std::vector<double> d{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(makespan_seconds(d, 3), 3.0);
  EXPECT_DOUBLE_EQ(makespan_seconds(d, 10), 3.0);
}

TEST(Makespan, GreedyListSchedule) {
  // Two workers, FIFO: w1 gets 4, w2 gets 3; then 2 -> w2 (free at 3),
  // then 1 -> w1 (free at 4). Finish times: w1 = 5, w2 = 5.
  const std::vector<double> d{4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(makespan_seconds(d, 2), 5.0);
}

TEST(Makespan, EmptyTaskListIsZero) {
  EXPECT_DOUBLE_EQ(makespan_seconds({}, 4), 0.0);
}

TEST(Makespan, ZeroWorkersThrows) {
  const std::vector<double> d{1.0};
  EXPECT_THROW(makespan_seconds(d, 0), std::invalid_argument);
}

TEST(Makespan, MonotoneInWorkers) {
  std::vector<double> d;
  for (int i = 0; i < 40; ++i) d.push_back(0.1 * (i % 7 + 1));
  double prev = makespan_seconds(d, 1);
  for (std::size_t k = 2; k <= 16; ++k) {
    const double m = makespan_seconds(d, k);
    EXPECT_LE(m, prev + 1e-12);
    prev = m;
  }
}

TEST(PipelineMakespan, ProducerBound) {
  // Production dominates: consumers always wait on the producer.
  const std::vector<double> produce{1.0, 1.0, 1.0};
  const std::vector<double> consume{0.1, 0.1, 0.1};
  EXPECT_DOUBLE_EQ(pipeline_makespan_seconds(produce, consume, 2), 3.1);
}

TEST(PipelineMakespan, ConsumerBoundWithOneConsumer) {
  const std::vector<double> produce{0.1, 0.1, 0.1};
  const std::vector<double> consume{1.0, 1.0, 1.0};
  // Consumer start times: max(0.1, 0)=0.1, then 1.1, then 2.1 -> ends 3.1.
  EXPECT_DOUBLE_EQ(pipeline_makespan_seconds(produce, consume, 1), 3.1);
}

TEST(PipelineMakespan, ExtraConsumersOverlap) {
  const std::vector<double> produce{0.1, 0.1, 0.1};
  const std::vector<double> consume{1.0, 1.0, 1.0};
  // 3 consumers: items start at 0.1, 0.2, 0.3 and overlap fully -> 1.3.
  EXPECT_DOUBLE_EQ(pipeline_makespan_seconds(produce, consume, 3), 1.3);
}

TEST(PipelineMakespan, MismatchedLengthsThrow) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(pipeline_makespan_seconds(a, b, 1), std::invalid_argument);
}

TEST(PipelineMakespan, ZeroConsumersThrows) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(pipeline_makespan_seconds(a, a, 0), std::invalid_argument);
}

TEST(IntervalUnion, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(interval_union_seconds({}), 0.0);
}

TEST(IntervalUnion, SingleInterval) {
  const std::vector<Interval> v{{1.0, 3.5}};
  EXPECT_DOUBLE_EQ(interval_union_seconds(v), 2.5);
}

TEST(IntervalUnion, DisjointIntervalsSum) {
  const std::vector<Interval> v{{0.0, 1.0}, {2.0, 3.0}, {10.0, 10.5}};
  EXPECT_DOUBLE_EQ(interval_union_seconds(v), 2.5);
}

TEST(IntervalUnion, OverlapCountedOnce) {
  // [0,2) and [1,3) overlap on [1,2): the union is [0,3).
  const std::vector<Interval> v{{0.0, 2.0}, {1.0, 3.0}};
  EXPECT_DOUBLE_EQ(interval_union_seconds(v), 3.0);
}

TEST(IntervalUnion, NestedIntervalAddsNothing) {
  // A span fully inside another (a kernel inside its batch) must not
  // inflate busy time.
  const std::vector<Interval> v{{0.0, 10.0}, {2.0, 4.0}, {5.0, 6.0}};
  EXPECT_DOUBLE_EQ(interval_union_seconds(v), 10.0);
}

TEST(IntervalUnion, TouchingEndpointsMerge) {
  // Half-open intervals: [0,1) and [1,2) tile [0,2) with no gap.
  const std::vector<Interval> v{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_DOUBLE_EQ(interval_union_seconds(v), 2.0);
}

TEST(IntervalUnion, UnsortedInputHandled) {
  const std::vector<Interval> v{{5.0, 7.0}, {0.0, 1.0}, {6.0, 9.0}};
  EXPECT_DOUBLE_EQ(interval_union_seconds(v), 5.0);
}

TEST(IntervalUnion, DegenerateIntervalsIgnored) {
  // Zero-length and inverted intervals contribute nothing.
  const std::vector<Interval> v{{1.0, 1.0}, {3.0, 2.0}, {4.0, 5.0}};
  EXPECT_DOUBLE_EQ(interval_union_seconds(v), 1.0);
}

}  // namespace
}  // namespace hdbscan
