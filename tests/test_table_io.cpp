#include "dbscan/table_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/generators.hpp"
#include "dbscan/dbscan.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

class TableIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "hdbscan_table_io";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(TableIoTest, RoundTripPreservesEveryNeighborhood) {
  const auto points = data::generate_space_weather(
      2000, 71, {.width = 8.0f, .height = 8.0f});
  const float eps = 0.35f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable table = build_neighbor_table_host(index, eps);

  save_neighbor_table(path("t.bin"), table, eps);
  TableHeader header;
  const NeighborTable loaded = load_neighbor_table(path("t.bin"), &header);

  EXPECT_FLOAT_EQ(header.eps, eps);
  EXPECT_EQ(header.num_points, table.num_points());
  EXPECT_EQ(header.total_pairs, table.total_pairs());
  ASSERT_EQ(loaded.num_points(), table.num_points());
  for (PointId i = 0; i < table.num_points(); ++i) {
    const auto a = table.neighbors(i);
    const auto b = loaded.neighbors(i);
    ASSERT_EQ(std::vector<PointId>(a.begin(), a.end()),
              std::vector<PointId>(b.begin(), b.end()))
        << "point " << i;
  }
}

TEST_F(TableIoTest, LoadedTableClustersIdentically) {
  const auto points = data::generate_sky_survey(
      1500, 72, {.width = 8.0f, .height = 8.0f});
  const float eps = 0.4f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable table = build_neighbor_table_host(index, eps);
  save_neighbor_table(path("t.bin"), table, eps);
  const NeighborTable loaded = load_neighbor_table(path("t.bin"));
  for (const int minpts : {2, 5, 20}) {
    EXPECT_EQ(dbscan_neighbor_table(table, minpts).labels,
              dbscan_neighbor_table(loaded, minpts).labels);
  }
}

TEST_F(TableIoTest, EmptyTableRoundTrips) {
  const NeighborTable table(10);
  save_neighbor_table(path("empty.bin"), table, 0.1f);
  const NeighborTable loaded = load_neighbor_table(path("empty.bin"));
  EXPECT_EQ(loaded.num_points(), 10u);
  EXPECT_EQ(loaded.total_pairs(), 0u);
}

TEST_F(TableIoTest, RejectsBadMagic) {
  std::ofstream out(path("bad.bin"), std::ios::binary);
  out << "JUNKJUNKJUNKJUNKJUNK";
  out.close();
  EXPECT_THROW(load_neighbor_table(path("bad.bin")), std::runtime_error);
}

TEST_F(TableIoTest, RejectsTruncatedFile) {
  const auto points = data::generate_uniform(200, 73, 3.0f, 3.0f);
  const GridIndex index = build_grid_index(points, 0.3f);
  save_neighbor_table(path("trunc.bin"),
                      build_neighbor_table_host(index, 0.3f), 0.3f);
  const auto full = std::filesystem::file_size(path("trunc.bin"));
  std::filesystem::resize_file(path("trunc.bin"), full / 2);
  EXPECT_THROW(load_neighbor_table(path("trunc.bin")), std::runtime_error);
}

TEST_F(TableIoTest, MissingFileThrows) {
  EXPECT_THROW(load_neighbor_table(path("missing.bin")), std::runtime_error);
}

}  // namespace
}  // namespace hdbscan
