#include "dbscan/cluster_compare.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "data/generators.hpp"
#include "dbscan/dbscan.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

/// Line of 5 points spaced 1 apart, eps=1.2, minpts=3:
/// points 1..3 are core; 0 and 4 are border.
struct LineFixture {
  LineFixture() {
    for (int i = 0; i < 5; ++i) {
      points.push_back({static_cast<float>(i), 0.0f});
    }
    index = build_grid_index(points, 1.2f);
    table = build_neighbor_table_host(index, 1.2f);
    // The line is symmetric, so index order == spatial order here; map to
    // input order just in case.
    valid = dbscan_neighbor_table(table, 3);
  }
  std::vector<Point2> points;
  GridIndex index;
  NeighborTable table;
  ClusterResult valid;
};

TEST(ValidateDbscan, AcceptsRealResult) {
  LineFixture f;
  const auto outcome = validate_dbscan_result(f.valid, f.table, 3);
  EXPECT_TRUE(outcome.equivalent) << outcome.diagnostic;
}

TEST(ValidateDbscan, RejectsCoreMarkedNoise) {
  LineFixture f;
  ClusterResult broken = f.valid;
  broken.labels[2] = kNoise;  // middle point is core
  const auto outcome = validate_dbscan_result(broken, f.table, 3);
  EXPECT_FALSE(outcome.equivalent);
}

TEST(ValidateDbscan, RejectsSplitCoreComponent) {
  LineFixture f;
  ClusterResult broken = f.valid;
  broken.num_clusters = 2;
  broken.labels[3] = 1;  // split connected cores into two clusters
  const auto outcome = validate_dbscan_result(broken, f.table, 3);
  EXPECT_FALSE(outcome.equivalent);
}

TEST(ValidateDbscan, RejectsReachableNoise) {
  LineFixture f;
  ClusterResult broken = f.valid;
  broken.labels[0] = kNoise;  // border point, reachable from core 1
  const auto outcome = validate_dbscan_result(broken, f.table, 3);
  EXPECT_FALSE(outcome.equivalent);
}

TEST(ValidateDbscan, RejectsMergedComponents) {
  // Two separated triples: cores in distinct components.
  std::vector<Point2> points;
  for (int i = 0; i < 3; ++i) points.push_back({static_cast<float>(i) * 0.1f, 0});
  for (int i = 0; i < 3; ++i) points.push_back({10.0f + static_cast<float>(i) * 0.1f, 0});
  const GridIndex index = build_grid_index(points, 0.5f);
  const NeighborTable table = build_neighbor_table_host(index, 0.5f);
  ClusterResult good = dbscan_neighbor_table(table, 3);
  ASSERT_EQ(good.num_clusters, 2);
  ClusterResult merged = good;
  for (auto& l : merged.labels) l = 0;  // claim one big cluster
  merged.num_clusters = 1;
  const auto outcome = validate_dbscan_result(merged, table, 3);
  EXPECT_FALSE(outcome.equivalent);
}

TEST(ValidateDbscan, RejectsUnvisitedPoints) {
  LineFixture f;
  ClusterResult broken = f.valid;
  broken.labels[4] = kUnvisited;
  const auto outcome = validate_dbscan_result(broken, f.table, 3);
  EXPECT_FALSE(outcome.equivalent);
}

TEST(CompareClusterings, IdenticalResultsAreEquivalent) {
  LineFixture f;
  const auto outcome = compare_clusterings(f.valid, f.valid, f.table, 3);
  EXPECT_TRUE(outcome.equivalent) << outcome.diagnostic;
}

TEST(CompareClusterings, LabelPermutationIsEquivalent) {
  // Two well-separated clusters; swap the ids.
  std::vector<Point2> points;
  for (int i = 0; i < 4; ++i) points.push_back({static_cast<float>(i) * 0.1f, 0});
  for (int i = 0; i < 4; ++i) points.push_back({10.0f + static_cast<float>(i) * 0.1f, 0});
  const GridIndex index = build_grid_index(points, 0.5f);
  const NeighborTable table = build_neighbor_table_host(index, 0.5f);
  ClusterResult a = dbscan_neighbor_table(table, 3);
  ASSERT_EQ(a.num_clusters, 2);
  ClusterResult b = a;
  for (auto& l : b.labels) {
    if (l >= 0) l = 1 - l;
  }
  const auto outcome = compare_clusterings(a, b, table, 3);
  EXPECT_TRUE(outcome.equivalent) << outcome.diagnostic;
}

TEST(CompareClusterings, BorderPointMayJoinEitherAdjacentCluster) {
  // Two core chains with one border point within eps of exactly one core
  // of each: classic visit-order ambiguity. eps = 1.0, minpts = 4; the
  // border at x = 1 sees only {itself, chain end at 0, chain end at 2}.
  std::vector<Point2> points{{1.0f, 0}};
  for (int i = 0; i < 5; ++i) {
    points.push_back({-0.1f * static_cast<float>(i), 0.0f});
    points.push_back({2.0f + 0.1f * static_cast<float>(i), 0.0f});
  }
  const GridIndex index = build_grid_index(points, 1.0f);
  const NeighborTable table = build_neighbor_table_host(index, 1.0f);
  ClusterResult a = dbscan_neighbor_table(table, 4);
  ASSERT_EQ(a.num_clusters, 2);
  // Find the border point (x = 1.0) in index order.
  PointId border = 0;
  for (PointId i = 0; i < index.size(); ++i) {
    if (index.points[i].x == 1.0f) border = i;
  }
  ASSERT_GE(a.labels[border], 0);
  ClusterResult b = a;
  b.labels[border] = 1 - a.labels[border];  // the other adjacent cluster
  const auto outcome = compare_clusterings(a, b, table, 4);
  EXPECT_TRUE(outcome.equivalent) << outcome.diagnostic;
}

TEST(CompareClusterings, DetectsNoiseDisagreement) {
  LineFixture f;
  ClusterResult b = f.valid;
  // Claim border 0 is noise in one result only -> must be rejected since
  // border/noise status is deterministic.
  b.labels[0] = kNoise;
  const auto outcome = compare_clusterings(f.valid, b, f.table, 3);
  EXPECT_FALSE(outcome.equivalent);
}

TEST(CompareClusterings, DetectsSizeMismatch) {
  LineFixture f;
  ClusterResult b = f.valid;
  b.labels.pop_back();
  const auto outcome = compare_clusterings(f.valid, b, f.table, 3);
  EXPECT_FALSE(outcome.equivalent);
}

TEST(CompareClusterings, RealRunsAcrossSearchOrdersAgree) {
  // DBSCAN over the grid index (index order) vs over a reversed-input
  // R-tree ordering: equivalent after mapping to a common order.
  const auto points = data::generate_gaussian_blobs(800, 31, 6, 0.25f, 12.0f,
                                                    12.0f, 0.1);
  const float eps = 0.5f;
  const int minpts = 4;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable table = build_neighbor_table_host(index, eps);
  const ClusterResult a = dbscan_neighbor_table(table, minpts);

  // Reference run in input order, mapped into index order.
  const ClusterResult ref = dbscan_rtree(points, eps, minpts);
  ClusterResult ref_indexed;
  ref_indexed.num_clusters = ref.num_clusters;
  ref_indexed.labels.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ref_indexed.labels[i] = ref.labels[index.original_ids[i]];
  }
  const auto outcome = compare_clusterings(a, ref_indexed, table, minpts);
  EXPECT_TRUE(outcome.equivalent) << outcome.diagnostic;
}

// ---------------------------------------------------------------------------
// rand_index — the quality metric of the approximate clustering modes
// ---------------------------------------------------------------------------

TEST(RandIndex, EmptyAndSingletonInputsArePerfectAgreement) {
  EXPECT_DOUBLE_EQ(rand_index(std::vector<std::int32_t>{},
                              std::vector<std::int32_t>{}),
                   1.0);
  EXPECT_DOUBLE_EQ(rand_index(std::vector<std::int32_t>{0},
                              std::vector<std::int32_t>{kNoise}),
                   1.0);  // no pairs to disagree on
}

TEST(RandIndex, SizeMismatchThrows) {
  const std::vector<std::int32_t> a{0, 0};
  const std::vector<std::int32_t> b{0};
  EXPECT_THROW(rand_index(a, b), std::invalid_argument);
}

TEST(RandIndex, AllNoiseAgreesWithAllNoise) {
  // Noise points are singletons: every pair is "apart" in both inputs
  // even though they share the sentinel label.
  const std::vector<std::int32_t> noise(6, kNoise);
  EXPECT_DOUBLE_EQ(rand_index(noise, noise), 1.0);
}

TEST(RandIndex, AllNoiseVersusOneClusterIsTotalDisagreement) {
  const std::vector<std::int32_t> noise(4, kNoise);
  const std::vector<std::int32_t> together(4, 0);
  EXPECT_DOUBLE_EQ(rand_index(noise, together), 0.0);
  EXPECT_DOUBLE_EQ(rand_index(together, noise), 0.0);
}

TEST(RandIndex, SingleClusterMatchesUnderAnyLabelValue) {
  const std::vector<std::int32_t> a(5, 0);
  const std::vector<std::int32_t> b(5, 1234);
  EXPECT_DOUBLE_EQ(rand_index(a, b), 1.0);
}

TEST(RandIndex, InvariantUnderLabelPermutation) {
  const std::vector<std::int32_t> a{0, 0, 1, 1, 2, 2, kNoise};
  const std::vector<std::int32_t> b{2, 2, 0, 0, 1, 1, kNoise};
  EXPECT_DOUBLE_EQ(rand_index(a, b), 1.0);
  EXPECT_DOUBLE_EQ(rand_index(a, a), 1.0);
}

TEST(RandIndex, PartialDisagreementLandsStrictlyBetween) {
  // Split one 4-cluster into two 2-clusters: the 4 cross pairs flip from
  // together to apart; 2 same-half pairs agree. With n = 4 (6 pairs):
  // RI = 1 - (6 + 2 - 2*2) / 6 = 1 - 4/6.
  const std::vector<std::int32_t> a{0, 0, 0, 0};
  const std::vector<std::int32_t> b{0, 0, 1, 1};
  const double ri = rand_index(a, b);
  EXPECT_NEAR(ri, 1.0 - 4.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(rand_index(a, b), rand_index(b, a));
}

}  // namespace
}  // namespace hdbscan
