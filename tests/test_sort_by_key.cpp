#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/buffer_pool.hpp"
#include "cudasim/device.hpp"
#include "cudasim/sort.hpp"

namespace {

using cudasim::Device;
using cudasim::DeviceBuffer;
using cudasim::SimulationOptions;
using hdbscan::NeighborPair;
using hdbscan::Xoshiro256;

SimulationOptions fast_options() {
  SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 1;
  return opt;
}

std::vector<NeighborPair> random_pairs(std::size_t n, std::uint64_t seed,
                                       std::uint32_t key_range) {
  Xoshiro256 rng(seed);
  std::vector<NeighborPair> pairs(n);
  for (auto& p : pairs) {
    p.key = static_cast<std::uint32_t>(rng.below(key_range));
    p.value = static_cast<std::uint32_t>(rng());
  }
  return pairs;
}

class SortByKeySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortByKeySizes, MatchesStableSort) {
  const std::size_t n = GetParam();
  Device dev({}, fast_options());
  auto pairs = random_pairs(n, 42 + n, 1000);
  auto expected = pairs;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const NeighborPair& a, const NeighborPair& b) {
                     return a.key < b.key;
                   });

  DeviceBuffer<NeighborPair> buf(dev, n);
  std::copy(pairs.begin(), pairs.end(), buf.unsafe_host_view().begin());
  cudasim::sort_by_key(dev, buf, n,
                       [](const NeighborPair& p) { return p.key; });
  const auto sorted = buf.unsafe_host_view();
  ASSERT_EQ(sorted.size(), expected.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(sorted[i].key, expected[i].key) << "at " << i;
    EXPECT_EQ(sorted[i].value, expected[i].value) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortByKeySizes,
                         ::testing::Values(0, 1, 2, 3, 255, 256, 257, 10000,
                                           100001));

TEST(SortByKey, StabilityPreservesValueOrderPerKey) {
  Device dev({}, fast_options());
  // All same key: the value sequence must be untouched (radix is stable).
  const std::size_t n = 5000;
  DeviceBuffer<NeighborPair> buf(dev, n);
  auto view = buf.unsafe_host_view();
  for (std::size_t i = 0; i < n; ++i) {
    view[i] = {7u, static_cast<std::uint32_t>(i)};
  }
  cudasim::sort_by_key(dev, buf, n,
                       [](const NeighborPair& p) { return p.key; });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(view[i].value, i);
  }
}

TEST(SortByKey, FullKeyRange) {
  Device dev({}, fast_options());
  const std::size_t n = 20000;
  auto pairs = random_pairs(n, 9, 1);
  Xoshiro256 rng(17);
  for (auto& p : pairs) p.key = static_cast<std::uint32_t>(rng());
  DeviceBuffer<NeighborPair> buf(dev, n);
  std::copy(pairs.begin(), pairs.end(), buf.unsafe_host_view().begin());
  cudasim::sort_by_key(dev, buf, n,
                       [](const NeighborPair& p) { return p.key; });
  const auto view = buf.unsafe_host_view();
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_LE(view[i - 1].key, view[i].key);
  }
}

TEST(SortByKey, SortsOnlyPrefix) {
  Device dev({}, fast_options());
  DeviceBuffer<NeighborPair> buf(dev, 10);
  auto view = buf.unsafe_host_view();
  for (std::size_t i = 0; i < 10; ++i) {
    view[i] = {static_cast<std::uint32_t>(9 - i), 0u};
  }
  cudasim::sort_by_key(dev, buf, 5,
                       [](const NeighborPair& p) { return p.key; });
  for (std::size_t i = 1; i < 5; ++i) EXPECT_LE(view[i - 1].key, view[i].key);
  // Tail untouched.
  for (std::size_t i = 5; i < 10; ++i) EXPECT_EQ(view[i].key, 9 - i);
}

TEST(SortByKey, CountBeyondBufferThrows) {
  Device dev({}, fast_options());
  DeviceBuffer<NeighborPair> buf(dev, 10);
  EXPECT_THROW(cudasim::sort_by_key(
                   dev, buf, 11, [](const NeighborPair& p) { return p.key; }),
               cudasim::SimError);
}

TEST(SortByKey, RecordsModeledTime) {
  Device dev({}, fast_options());
  DeviceBuffer<NeighborPair> buf(dev, 1000);
  cudasim::sort_by_key(dev, buf, 1000,
                       [](const NeighborPair& p) { return p.key; });
  EXPECT_GT(dev.metrics().sort_seconds, 0.0);
}

TEST(SortByKey, ScratchAllocationIsReleased) {
  Device dev({}, fast_options());
  DeviceBuffer<NeighborPair> buf(dev, 1000);
  const std::size_t before = dev.used_global_bytes();
  cudasim::sort_by_key(dev, buf, 1000,
                       [](const NeighborPair& p) { return p.key; });
  // The scratch lives in the device's buffer pool between sorts; trimming
  // must return the device to its pre-sort footprint.
  dev.pool().trim();
  EXPECT_EQ(dev.used_global_bytes(), before);
  // But the peak shows the Thrust-style temp buffer.
  EXPECT_GE(dev.metrics().peak_mem_bytes, 2 * before);
}

class ExclusiveScanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExclusiveScanSizes, MatchesSerialScanAndReturnsTotal) {
  const std::size_t n = GetParam();
  Device dev({}, fast_options());
  Xoshiro256 rng(100 + n);
  std::vector<std::uint32_t> counts(n);
  for (auto& c : counts) c = static_cast<std::uint32_t>(rng.below(1000));

  std::vector<std::uint32_t> expected(n);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = static_cast<std::uint32_t>(running);
    running += counts[i];
  }

  DeviceBuffer<std::uint32_t> buf(dev, std::max<std::size_t>(1, n));
  std::copy(counts.begin(), counts.end(), buf.unsafe_host_view().begin());
  const std::uint64_t total = cudasim::exclusive_scan(dev, buf, n);
  EXPECT_EQ(total, running);
  const auto scanned = buf.unsafe_host_view();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(scanned[i], expected[i]) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExclusiveScanSizes,
                         ::testing::Values(0, 1, 2, 255, 256, 257, 10000));

TEST(ExclusiveScan, ScansOnlyPrefix) {
  Device dev({}, fast_options());
  DeviceBuffer<std::uint32_t> buf(dev, 10);
  auto view = buf.unsafe_host_view();
  for (std::size_t i = 0; i < 10; ++i) view[i] = 5;
  const std::uint64_t total = cudasim::exclusive_scan(dev, buf, 4);
  EXPECT_EQ(total, 20u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(view[i], 5 * i);
  for (std::size_t i = 4; i < 10; ++i) EXPECT_EQ(view[i], 5u);  // untouched
}

TEST(ExclusiveScan, CountBeyondBufferThrows) {
  Device dev({}, fast_options());
  DeviceBuffer<std::uint32_t> buf(dev, 10);
  EXPECT_THROW(cudasim::exclusive_scan(dev, buf, 11), cudasim::SimError);
}

TEST(ExclusiveScan, RecordsModeledTime) {
  Device dev({}, fast_options());
  DeviceBuffer<std::uint32_t> buf(dev, 1000);
  auto view = buf.unsafe_host_view();
  for (auto& c : view) c = 1;
  cudasim::exclusive_scan(dev, buf, 1000);
  EXPECT_GT(dev.metrics().scan_seconds, 0.0);
}

}  // namespace
