// Multi-device neighbor-table construction: the index is replicated and
// batches are interleaved across devices (Mr. Scan's GPU-per-node
// direction, the paper's citation [7]).
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "core/neighbor_table_builder.hpp"
#include "cudasim/buffer_pool.hpp"
#include "data/generators.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

void expect_tables_equal(const NeighborTable& got, const NeighborTable& want) {
  ASSERT_EQ(got.num_points(), want.num_points());
  ASSERT_EQ(got.total_pairs(), want.total_pairs());
  for (PointId i = 0; i < got.num_points(); ++i) {
    std::vector<PointId> a(got.neighbors(i).begin(), got.neighbors(i).end());
    std::vector<PointId> b(want.neighbors(i).begin(), want.neighbors(i).end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << "point " << i;
  }
}

class MultiDevice : public ::testing::TestWithParam<int> {};

TEST_P(MultiDevice, MatchesHostOracle) {
  const int num_devices = GetParam();
  const auto points = data::generate_space_weather(
      3000, 101, {.width = 10.0f, .height = 10.0f});
  const float eps = 0.35f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable oracle = build_neighbor_table_host(index, eps);

  std::vector<std::unique_ptr<cudasim::Device>> devices;
  std::vector<cudasim::Device*> device_ptrs;
  for (int d = 0; d < num_devices; ++d) {
    devices.push_back(
        std::make_unique<cudasim::Device>(cudasim::DeviceConfig{},
                                          fast_options()));
    device_ptrs.push_back(devices.back().get());
  }
  NeighborTableBuilder builder(device_ptrs);
  BuildReport report;
  expect_tables_equal(builder.build(index, eps, &report), oracle);
  // Every device's contexts get at least one batch.
  EXPECT_GE(report.plan.num_batches, static_cast<std::uint32_t>(num_devices));
  // Work actually lands on every device.
  for (const auto& dev : devices) {
    EXPECT_GT(dev->metrics().kernel_launches, 0u);
    EXPECT_GT(dev->metrics().d2h_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, MultiDevice,
                         ::testing::Values(1, 2, 3, 4));

TEST(MultiDeviceBuilder, RejectsEmptyAndNullDeviceLists) {
  EXPECT_THROW(NeighborTableBuilder(std::vector<cudasim::Device*>{}),
               std::invalid_argument);
  EXPECT_THROW(NeighborTableBuilder(std::vector<cudasim::Device*>{nullptr}),
               std::invalid_argument);
}

TEST(MultiDeviceBuilder, ModeledTimeImprovesWithDevices) {
  const auto points = data::generate_sky_survey(
      20000, 102, {.width = 12.0f, .height = 12.0f});
  const float eps = 0.4f;
  const GridIndex index = build_grid_index(points, eps);

  // Min of three trials per device count: the model folds in measured
  // host CPU (staging appends), so a descheduled thread on a loaded CI
  // host can inflate any single trial.
  auto modeled_with = [&](int num_devices) {
    double best = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < 3; ++trial) {
      std::vector<std::unique_ptr<cudasim::Device>> devices;
      std::vector<cudasim::Device*> ptrs;
      for (int d = 0; d < num_devices; ++d) {
        devices.push_back(std::make_unique<cudasim::Device>(
            cudasim::DeviceConfig{}, fast_options()));
        ptrs.push_back(devices.back().get());
      }
      NeighborTableBuilder builder(ptrs);
      BuildReport report;
      (void)builder.build(index, eps, &report);
      best = std::min(best, report.modeled_table_seconds);
    }
    return best;
  };

  const double one = modeled_with(1);
  const double four = modeled_with(4);
  EXPECT_LT(four, one);
}

TEST(MultiDeviceBuilder, DeviceMemoryReleasedOnAll) {
  const auto points = data::generate_uniform(2000, 103, 8.0f, 8.0f);
  const GridIndex index = build_grid_index(points, 0.3f);
  std::vector<std::unique_ptr<cudasim::Device>> devices;
  std::vector<cudasim::Device*> ptrs;
  for (int d = 0; d < 3; ++d) {
    devices.push_back(std::make_unique<cudasim::Device>(
        cudasim::DeviceConfig{}, fast_options()));
    ptrs.push_back(devices.back().get());
  }
  {
    NeighborTableBuilder builder(ptrs);
    builder.build(index, 0.3f);
  }
  for (const auto& dev : devices) {
    dev->pool().trim();  // drop pooled scratch before the leak check
    EXPECT_EQ(dev->used_global_bytes(), 0u);
  }
}

}  // namespace
}  // namespace hdbscan
