// The quality knob (DESIGN.md §16): QualitySpec's seeded per-pair
// Bernoulli sampling, the SNG-rescaled core threshold, subsampled-mode
// determinism across backends and cluster modes, and cell-graph DBSCAN's
// agreement with the exact pipelines on separable data.
#include "common/types.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/cell_graph.hpp"
#include "core/hybrid_dbscan.hpp"
#include "cudasim/device.hpp"
#include "data/generators.hpp"
#include "dbscan/cluster_compare.hpp"
#include "dbscan/dbscan.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

/// Four dense clusters on a 20-unit grid pitch, ~1 unit across each: at
/// eps = 0.5 every cluster is internally dense and the gaps are > 19
/// units, so exact, subsampled, and cell-graph runs must all recover the
/// same four-way partition (rand index 1 up to stray border points).
std::vector<Point2> separated_clusters(std::size_t per_cluster) {
  const float cx[4] = {5.0f, 25.0f, 5.0f, 25.0f};
  const float cy[4] = {5.0f, 5.0f, 25.0f, 25.0f};
  std::uint64_t s = 0x9e3779b9u;
  const auto jitter = [&s] {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<float>((s >> 33) & 0xffff) / 65536.0f;
  };
  std::vector<Point2> pts;
  pts.reserve(per_cluster * 4);
  for (int c = 0; c < 4; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      pts.push_back({cx[c] + jitter(), cy[c] + jitter()});
    }
  }
  return pts;
}

// ---------------------------------------------------------------------------
// QualitySpec
// ---------------------------------------------------------------------------

TEST(QualitySpec, SelfPairsAndRateOneAlwaysKept) {
  QualitySpec exact;
  EXPECT_FALSE(exact.sampled());
  EXPECT_TRUE(exact.keep_pair(3, 99));

  QualitySpec full{ClusterQuality::kSubsampled, 1.0f, 42};
  EXPECT_FALSE(full.sampled());
  for (PointId i = 0; i < 100; ++i) EXPECT_TRUE(full.keep_pair(i, i + 1));

  QualitySpec tiny{ClusterQuality::kSubsampled, 0.01f, 42};
  EXPECT_TRUE(tiny.sampled());
  for (PointId i = 0; i < 100; ++i) EXPECT_TRUE(tiny.keep_pair(i, i));
}

TEST(QualitySpec, KeepPairIsSymmetricAndSeedDeterministic) {
  QualitySpec q{ClusterQuality::kSubsampled, 0.5f, 1234};
  QualitySpec same{ClusterQuality::kSubsampled, 0.5f, 1234};
  QualitySpec other{ClusterQuality::kSubsampled, 0.5f, 1235};
  bool any_disagreement_across_seeds = false;
  for (PointId a = 0; a < 200; ++a) {
    for (PointId b = a + 1; b < a + 20; ++b) {
      EXPECT_EQ(q.keep_pair(a, b), q.keep_pair(b, a));
      EXPECT_EQ(q.keep_pair(a, b), same.keep_pair(a, b));
      if (q.keep_pair(a, b) != other.keep_pair(a, b)) {
        any_disagreement_across_seeds = true;
      }
    }
  }
  EXPECT_TRUE(any_disagreement_across_seeds);
}

TEST(QualitySpec, KeepRateTracksSampleRate) {
  QualitySpec q{ClusterQuality::kSubsampled, 0.3f, 7};
  std::uint64_t kept = 0;
  const std::uint64_t trials = 100000;
  for (std::uint64_t i = 0; i < trials; ++i) {
    if (q.keep_pair(static_cast<PointId>(i), static_cast<PointId>(i + 1))) {
      ++kept;
    }
  }
  const double rate = static_cast<double>(kept) / static_cast<double>(trials);
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(QualitySpec, ScaledMinptsFollowsSngRescaling) {
  QualitySpec exact;
  EXPECT_EQ(exact.scaled_minpts(8), 8);
  QualitySpec half{ClusterQuality::kSubsampled, 0.5f, 0};
  EXPECT_EQ(half.scaled_minpts(8), 4);
  QualitySpec tiny{ClusterQuality::kSubsampled, 0.01f, 0};
  EXPECT_EQ(tiny.scaled_minpts(8), 1);  // floor at 1, never 0
  QualitySpec cg{ClusterQuality::kCellGraph, 0.5f, 0};
  EXPECT_EQ(cg.scaled_minpts(8), 8);  // rescaling is a sampling concept
}

// ---------------------------------------------------------------------------
// Subsampled mode, end to end
// ---------------------------------------------------------------------------

TEST(SubsampledMode, DeterministicForFixedSeedAndNearExactOnSeparatedData) {
  cudasim::Device device{cudasim::DeviceConfig{}, fast_options()};
  const auto points = separated_clusters(200);
  const float eps = 0.5f;
  const int minpts = 8;

  const ClusterResult exact = hybrid_dbscan(device, points, eps, minpts);
  ASSERT_EQ(exact.num_clusters, 4);

  BatchPolicy sampled;
  sampled.quality = {ClusterQuality::kSubsampled, 0.3f, 99};
  const ClusterResult a =
      hybrid_dbscan(device, points, eps, minpts, nullptr, sampled);
  const ClusterResult b =
      hybrid_dbscan(device, points, eps, minpts, nullptr, sampled);
  // Bit-identical labels across runs for a fixed seed: sampling is a pure
  // function of (seed, pair), independent of batching or retry history.
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_GE(rand_index(a.labels, exact.labels), 0.99);
  EXPECT_EQ(a.num_clusters, 4);
}

TEST(SubsampledMode, GridAndBvhBackendsSampleTheSamePairSet) {
  cudasim::Device device{cudasim::DeviceConfig{}, fast_options()};
  const auto points = separated_clusters(150);
  BatchPolicy grid;
  grid.quality = {ClusterQuality::kSubsampled, 0.4f, 17};
  BatchPolicy bvh = grid;
  bvh.index_backend = IndexBackend::kBvh;
  const ClusterResult g =
      hybrid_dbscan(device, points, 0.5f, 8, nullptr, grid);
  const ClusterResult t =
      hybrid_dbscan(device, points, 0.5f, 8, nullptr, bvh);
  // The Bernoulli decision hashes resident point ids, not traversal
  // order, so both backends drop exactly the same pairs.
  EXPECT_EQ(g.labels, t.labels);
}

TEST(SubsampledMode, StreamingAndFusedAgreeWithTheBatchTable) {
  cudasim::Device device{cudasim::DeviceConfig{}, fast_options()};
  const auto points = separated_clusters(150);
  BatchPolicy policy;
  policy.quality = {ClusterQuality::kSubsampled, 0.35f, 5};
  const ClusterResult batch = hybrid_dbscan(device, points, 0.5f, 8, nullptr,
                                            policy, ClusterMode::kBatchTable);
  const ClusterResult stream = hybrid_dbscan(device, points, 0.5f, 8, nullptr,
                                             policy, ClusterMode::kStreaming);
  const ClusterResult fused = hybrid_dbscan(device, points, 0.5f, 8, nullptr,
                                            policy, ClusterMode::kFused);
  EXPECT_EQ(batch.num_clusters, stream.num_clusters);
  EXPECT_EQ(batch.num_clusters, fused.num_clusters);
  EXPECT_DOUBLE_EQ(rand_index(batch.labels, stream.labels), 1.0);
  EXPECT_DOUBLE_EQ(rand_index(batch.labels, fused.labels), 1.0);
}

// ---------------------------------------------------------------------------
// Cell-graph mode
// ---------------------------------------------------------------------------

TEST(CellGraphMode, MatchesExactOnSeparatedDataAndIsDeterministic) {
  cudasim::Device device{cudasim::DeviceConfig{}, fast_options()};
  const auto points = separated_clusters(200);
  const float eps = 0.5f;
  const int minpts = 8;

  const ClusterResult exact = hybrid_dbscan(device, points, eps, minpts);
  CellGraphReport report;
  const ClusterResult a =
      cell_graph_dbscan(points, eps, minpts, device.config(), &report);
  const ClusterResult b =
      cell_graph_dbscan(points, eps, minpts, device.config());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.num_clusters, 4);
  EXPECT_GE(rand_index(a.labels, exact.labels), 0.99);

  // Dense 1-unit clusters at side eps/sqrt(2): most points must be made
  // core wholesale, and the distance work must be far below the exact
  // pair count.
  EXPECT_GT(report.dense_points, 0u);
  EXPECT_GT(report.dense_cells, 0u);
  EXPECT_LE(report.dense_cells, report.num_cells);
  HybridTimings timings;
  hybrid_dbscan(device, points, eps, minpts, &timings);
  EXPECT_LT(report.distance_tests, timings.build_report.total_pairs);
  EXPECT_GT(report.modeled_seconds, 0.0);
}

TEST(CellGraphMode, HybridOrchestratorRoutesAndSkipsTheTable) {
  cudasim::Device device{cudasim::DeviceConfig{}, fast_options()};
  const auto points = separated_clusters(100);
  BatchPolicy policy;
  policy.quality.mode = ClusterQuality::kCellGraph;
  HybridTimings timings;
  const ClusterResult via_hybrid =
      hybrid_dbscan(device, points, 0.5f, 8, &timings, policy);
  const ClusterResult direct =
      cell_graph_dbscan(points, 0.5f, 8, device.config());
  EXPECT_EQ(via_hybrid.labels, direct.labels);
  EXPECT_FALSE(timings.build_report.table_materialized);
  EXPECT_GT(timings.modeled_total_seconds, 0.0);
}

TEST(CellGraphMode, FusedModeIsRejected) {
  cudasim::Device device{cudasim::DeviceConfig{}, fast_options()};
  const auto points = separated_clusters(50);
  BatchPolicy policy;
  policy.quality.mode = ClusterQuality::kCellGraph;
  EXPECT_THROW(hybrid_dbscan(device, points, 0.5f, 8, nullptr, policy,
                             ClusterMode::kFused),
               std::invalid_argument);
}

TEST(CellGraphMode, ValidatesInputsAndHandlesEmpty) {
  cudasim::DeviceConfig config;
  const ClusterResult empty =
      cell_graph_dbscan(std::vector<Point2>{}, 0.5f, 4, config);
  EXPECT_EQ(empty.num_clusters, 0);
  EXPECT_TRUE(empty.labels.empty());
  const std::vector<Point2> one{{0.0f, 0.0f}};
  EXPECT_THROW(cell_graph_dbscan(one, 0.0f, 4, config),
               std::invalid_argument);
  EXPECT_THROW(cell_graph_dbscan(one, 0.5f, 0, config),
               std::invalid_argument);
}

TEST(CellGraphMode, RecoversSeparated3dClusters) {
  std::vector<Point3> pts;
  std::uint64_t s = 77;
  const auto jitter = [&s] {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<float>((s >> 33) & 0xffff) / 65536.0f;
  };
  for (int c = 0; c < 2; ++c) {
    const float base = static_cast<float>(c) * 30.0f;
    for (int i = 0; i < 200; ++i) {
      pts.push_back({base + jitter(), base + jitter(), base + jitter()});
    }
  }
  CellGraphReport report;
  const ClusterResult r =
      cell_graph_dbscan3(pts, 0.6f, 8, cudasim::DeviceConfig{}, &report);
  EXPECT_EQ(r.num_clusters, 2);
  EXPECT_EQ(r.noise_count(), 0u);
  // The two generating clusters never mix.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(r.labels[i], r.labels[0]);
    EXPECT_EQ(r.labels[200 + i], r.labels[200]);
  }
  EXPECT_NE(r.labels[0], r.labels[200]);
  EXPECT_GT(report.dense_points, 0u);
}

}  // namespace
}  // namespace hdbscan
