// BufferPool lifecycle: bucket reuse and fresh flags, the flat pinned-alloc
// guarantee across reuse sweeps, trim-and-retry on device OOM (and the cold
// pool rethrowing so scripted faults still reach the degradation ladder),
// outright frees on lost devices, and survival under concurrent checkout
// hammering and randomized fault plans — no leaks, no double-returns.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/neighbor_table_builder.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/buffer_pool.hpp"
#include "cudasim/device.hpp"
#include "cudasim/error.hpp"
#include "cudasim/fault.hpp"
#include "data/generators.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

TEST(BufferPool, BucketRounding) {
  EXPECT_EQ(cudasim::BufferPool::bucket_for(0), 256u);
  EXPECT_EQ(cudasim::BufferPool::bucket_for(1), 256u);
  EXPECT_EQ(cudasim::BufferPool::bucket_for(256), 256u);
  EXPECT_EQ(cudasim::BufferPool::bucket_for(257), 512u);
  EXPECT_EQ(cudasim::BufferPool::bucket_for(100'000), 1u << 17);
}

TEST(BufferPool, DeviceCheckoutReusesBucket) {
  cudasim::Device dev({}, fast_options());
  void* first_ptr = nullptr;
  {
    cudasim::PooledDeviceBuffer<int> a(dev, 1000);
    EXPECT_TRUE(a.fresh());
    first_ptr = a.device_data();
  }
  // Same bucket (1000 and 900 ints both round to 4096 B): cached block.
  {
    cudasim::PooledDeviceBuffer<int> b(dev, 900);
    EXPECT_FALSE(b.fresh());
    EXPECT_EQ(b.device_data(), first_ptr);
  }
  // Different bucket: fresh allocation.
  {
    cudasim::PooledDeviceBuffer<int> c(dev, 5000);
    EXPECT_TRUE(c.fresh());
  }
  EXPECT_EQ(dev.metrics().pool_device_hits, 1u);
  EXPECT_EQ(dev.metrics().pool_device_misses, 2u);
}

TEST(BufferPool, PinnedAllocPaidOncePerBucketAcrossSweep) {
  // The N-variant reuse sweep: four builds staging through the same-sized
  // pinned buffer must page-lock exactly once. fresh() gates the modeled
  // pinned-alloc charge, so flat pinned time across variants follows.
  cudasim::Device dev({}, fast_options());
  for (int variant = 0; variant < 4; ++variant) {
    cudasim::PooledPinnedBuffer<float> staging(dev, 10'000);
    EXPECT_EQ(staging.fresh(), variant == 0) << "variant " << variant;
    std::memset(staging.data(), variant, staging.bytes());
  }
  EXPECT_EQ(dev.metrics().pool_pinned_misses, 1u);
  EXPECT_EQ(dev.metrics().pool_pinned_hits, 3u);
  // Trim only releases device blocks; the pinned cache (the expensive
  // page-locked memory) survives.
  dev.pool().trim();
  EXPECT_GT(dev.pool().cached_pinned_bytes(), 0u);
}

TEST(BufferPool, TrimFreesOnlyDeviceBlocks) {
  cudasim::Device dev({}, fast_options());
  { cudasim::PooledDeviceBuffer<int> a(dev, 4096); }
  { cudasim::PooledPinnedBuffer<int> p(dev, 4096); }
  EXPECT_GT(dev.pool().cached_device_bytes(), 0u);
  EXPECT_GT(dev.pool().cached_pinned_bytes(), 0u);
  const std::size_t freed = dev.pool().trim();
  EXPECT_EQ(freed, 16384u);
  EXPECT_EQ(dev.pool().cached_device_bytes(), 0u);
  EXPECT_GT(dev.pool().cached_pinned_bytes(), 0u);
  EXPECT_EQ(dev.used_global_bytes(), 0u);
}

TEST(BufferPool, OomTrimsCacheAndRetries) {
  // Device with room for one big block. A cached block from an earlier
  // checkout would block the next differently-sized acquire; the pool must
  // trim itself and retry rather than surface the OOM.
  cudasim::DeviceConfig cfg;
  cfg.global_mem_bytes = 1u << 20;  // 1 MiB
  cudasim::Device dev(cfg, fast_options());
  // 600 KB rounds to the 1 MiB bucket, exactly filling the device; once
  // released it sits in the cache still holding that capacity.
  { cudasim::PooledDeviceBuffer<char> big(dev, 600'000); }
  EXPECT_GT(dev.pool().cached_device_bytes(), 0u);
  // A 512 KiB bucket cannot fit until the pool trims its own cache.
  cudasim::PooledDeviceBuffer<char> other(dev, 300'000);
  EXPECT_TRUE(other.fresh());
  EXPECT_GT(dev.metrics().pool_trim_bytes, 0u);
}

TEST(BufferPool, ColdPoolRethrowsOom) {
  // Nothing cached: the trim frees zero bytes and the OOM must propagate
  // (this is what keeps scripted fault-injection OOMs driving the
  // builder's ladder instead of being silently absorbed).
  cudasim::DeviceConfig cfg;
  cfg.global_mem_bytes = 1u << 16;  // 64 KiB
  cudasim::Device dev(cfg, fast_options());
  EXPECT_THROW((void)cudasim::PooledDeviceBuffer<char>(dev, 1u << 20),
               cudasim::DeviceOutOfMemory);
}

TEST(BufferPool, LostDeviceFreesOnReleaseInsteadOfCaching) {
  cudasim::FaultPlan plan;
  plan.lost_at_op = 3;
  auto injector = std::make_shared<cudasim::FaultInjector>(plan);
  cudasim::SimulationOptions opt = fast_options();
  opt.fault = injector;
  cudasim::Device dev({}, opt);

  auto buf = std::make_unique<cudasim::PooledDeviceBuffer<int>>(dev, 1024);
  // Burn ops until the device is lost.
  std::vector<int> host(16, 0);
  cudasim::DeviceBuffer<int> tmp(dev, 16);
  while (!dev.lost()) {
    try {
      dev.blocking_transfer(tmp.device_data(), host.data(),
                            host.size() * sizeof(int), true, false);
    } catch (const cudasim::DeviceLost&) {
      break;
    }
  }
  ASSERT_TRUE(dev.lost());
  buf.reset();  // must not throw; block freed outright, not cached
  EXPECT_EQ(dev.pool().cached_device_bytes(), 0u);
}

TEST(BufferPool, ConcurrentCheckoutHammer) {
  // Races between acquire/release across threads (run under TSan in the
  // sanitizer job): every checkout gets a private block, memset survives,
  // nothing leaks and nothing is double-returned.
  cudasim::Device dev({}, fast_options());
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&dev, t] {
      Xoshiro256 rng(1000 + t);
      for (int i = 0; i < kIters; ++i) {
        const std::size_t count = 64 + (rng() % 4096);
        if (rng() % 2 == 0) {
          cudasim::PooledDeviceBuffer<std::uint32_t> b(dev, count);
          ASSERT_NE(b.device_data(), nullptr);
          std::memset(b.device_data(), t, b.bytes());
        } else {
          cudasim::PooledPinnedBuffer<std::uint32_t> p(dev, count);
          ASSERT_NE(p.data(), nullptr);
          std::memset(p.data(), t, p.bytes());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto& m = dev.metrics();
  EXPECT_EQ(m.pool_device_hits + m.pool_device_misses +
                m.pool_pinned_hits + m.pool_pinned_misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  // Everything was returned: after a trim the device footprint is zero.
  dev.pool().trim();
  EXPECT_EQ(dev.used_global_bytes(), 0u);
}

TEST(BufferPool, SurvivesRandomizedFaultPlans) {
  // Chaos survival: randomized fault plans (OOMs, transients, degradation,
  // possibly device loss) over pooled builds must never leak device memory
  // or double-return a block — whatever the build outcome.
  const auto points = data::generate_space_weather(
      1500, 21, {.width = 8.0f, .height = 8.0f});
  const float eps = 0.35f;
  const GridIndex index = build_grid_index(points, eps);
  NeighborTable oracle = build_neighbor_table_host(index, eps);
  oracle.canonicalize();

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    cudasim::SimulationOptions opt = fast_options();
    opt.fault = std::make_shared<cudasim::FaultInjector>(
        cudasim::FaultPlan::randomized(seed));
    cudasim::Device dev({}, opt);
    {
      NeighborTableBuilder builder(dev);
      try {
        NeighborTable table = builder.build(index, eps);
        table.canonicalize();
        EXPECT_TRUE(table.identical_to(oracle)) << "seed " << seed;
      } catch (const std::exception&) {
        // A plan harsh enough to sink the build entirely is acceptable;
        // leaking memory on the way down is not.
      }
    }
    dev.pool().trim();
    EXPECT_EQ(dev.used_global_bytes(), 0u) << "seed " << seed;
  }
}

TEST(BufferPool, ScriptedOomDuringBuildLeavesPoolConsistent) {
  const auto points = data::generate_space_weather(
      2000, 45, {.width = 8.0f, .height = 8.0f});
  const float eps = 0.35f;
  const GridIndex index = build_grid_index(points, eps);
  NeighborTable oracle = build_neighbor_table_host(index, eps);
  oracle.canonicalize();

  cudasim::FaultPlan plan;
  plan.oom_allocs = {5, 6};
  cudasim::SimulationOptions opt = fast_options();
  opt.fault = std::make_shared<cudasim::FaultInjector>(plan);
  cudasim::Device dev({}, opt);
  BatchPolicy policy;
  policy.build_mode = TableBuildMode::kPairSort;
  BuildReport report;
  {
    NeighborTableBuilder builder(dev, policy);
    NeighborTable table = builder.build(index, eps, &report);
    table.canonicalize();
    EXPECT_TRUE(table.identical_to(oracle));
  }
  EXPECT_GE(report.alloc_retries, 1u);
  dev.pool().trim();
  EXPECT_EQ(dev.used_global_bytes(), 0u);
}

}  // namespace
}  // namespace hdbscan
