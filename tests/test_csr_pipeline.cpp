// The two-pass CSR pipeline must produce exactly the same neighbor table
// as the legacy pair-sort pipeline and the host oracle — across clustered,
// uniform, and degenerate (every point in one cell) data — while shipping
// fewer bytes over PCIe and issuing fewer global atomics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/neighbor_table_builder.hpp"
#include "data/generators.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

void expect_tables_equal(const NeighborTable& got, const NeighborTable& want) {
  ASSERT_EQ(got.num_points(), want.num_points());
  EXPECT_EQ(got.total_pairs(), want.total_pairs());
  for (PointId i = 0; i < got.num_points(); ++i) {
    std::vector<PointId> a(got.neighbors(i).begin(), got.neighbors(i).end());
    std::vector<PointId> b(want.neighbors(i).begin(), want.neighbors(i).end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << "neighborhood mismatch at point " << i;
  }
}

/// Builds T in the given mode and checks it against the host oracle.
BuildReport build_and_check(const std::vector<Point2>& points, float eps,
                            TableBuildMode mode) {
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable oracle = build_neighbor_table_host(index, eps);
  cudasim::Device dev({}, fast_options());
  BatchPolicy policy;
  policy.build_mode = mode;
  BuildReport report;
  NeighborTableBuilder builder(dev, policy);
  expect_tables_equal(builder.build(index, eps, &report), oracle);
  EXPECT_EQ(report.build_mode, mode);
  EXPECT_EQ(report.total_pairs, oracle.total_pairs());
  return report;
}

TEST(CsrPipeline, MatchesPairModeAndOracleClustered) {
  const auto points = data::generate_sky_survey(4000, 71);
  build_and_check(points, 0.3f, TableBuildMode::kCsrTwoPass);
  build_and_check(points, 0.3f, TableBuildMode::kPairSort);
}

TEST(CsrPipeline, MatchesPairModeAndOracleUniform) {
  const auto points = data::generate_uniform(4000, 72, 10.0f, 10.0f);
  build_and_check(points, 0.4f, TableBuildMode::kCsrTwoPass);
  build_and_check(points, 0.4f, TableBuildMode::kPairSort);
}

TEST(CsrPipeline, MatchesPairModeAndOracleDegenerateOneCell) {
  // Every point identical: the entire dataset lands in one grid cell and
  // every point neighbors every point (n^2 pairs) — worst-case skew for
  // batching, counting, and the CSR offsets.
  const std::vector<Point2> points(600, Point2{1.0f, 1.0f});
  build_and_check(points, 0.5f, TableBuildMode::kCsrTwoPass);
  build_and_check(points, 0.5f, TableBuildMode::kPairSort);
}

TEST(CsrPipeline, OverflowSplitsRecoverWithCsr) {
  // Sabotage the estimate so the planned buffer is ~50x too small: the
  // count pass detects the exact overflow before any fill work and the
  // batch splits recursively until everything fits.
  const auto points = data::generate_space_weather(3000, 73);
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable oracle = build_neighbor_table_host(index, eps);
  cudasim::Device dev({}, fast_options());
  BatchPolicy policy;
  policy.estimated_total_override = oracle.total_pairs() / 50 + 1;
  BuildReport report;
  NeighborTableBuilder builder(dev, policy);
  expect_tables_equal(builder.build(index, eps, &report), oracle);
  EXPECT_GT(report.overflow_splits, 0u);
  EXPECT_EQ(report.total_pairs, oracle.total_pairs());
}

TEST(CsrPipeline, ShipsFewerBytesAndAtomicsThanPairMode) {
  // Dense enough (~30 neighbors per point) that the per-point offsets
  // array is small against the values; sparse data dilutes the D2H win
  // because offsets cost 4 bytes per point regardless of degree.
  const auto points = data::generate_uniform(4000, 74, 10.0f, 10.0f);
  const BuildReport csr =
      build_and_check(points, 0.5f, TableBuildMode::kCsrTwoPass);
  const BuildReport pair =
      build_and_check(points, 0.5f, TableBuildMode::kPairSort);
  ASSERT_EQ(csr.total_pairs, pair.total_pairs);
  // Pair mode ships 8-byte (key, value) pairs; CSR ships 4-byte values
  // plus a small per-point offsets array.
  EXPECT_LT(csr.d2h_bytes, pair.d2h_bytes * 6 / 10);
  // CSR kernels use no result-set atomics at all; pair mode still pays one
  // bulk reservation per staged flush. Either way CSR must win clearly.
  EXPECT_LT(csr.atomic_ops, pair.atomic_ops);
  // CSR drops the device sort entirely (and its modeled time with it).
  EXPECT_EQ(csr.sort_modeled_seconds, 0.0);
  EXPECT_GT(pair.sort_modeled_seconds, 0.0);
  EXPECT_GT(csr.scan_modeled_seconds, 0.0);
}

TEST(CsrPipeline, StagedReservationCutsPairModeAtomics) {
  // With 128-slot staging, pair mode needs at most one global atomic per
  // 128 pairs plus one trailing flush per thread — at least 10x fewer
  // atomic ops than pairs produced (the pre-staging scheme paid one each).
  const auto points = data::generate_uniform(4000, 75, 10.0f, 10.0f);
  const BuildReport pair =
      build_and_check(points, 0.4f, TableBuildMode::kPairSort);
  ASSERT_GT(pair.atomic_ops, 0u);
  EXPECT_GE(pair.total_pairs / pair.atomic_ops, 10u);
}

}  // namespace
}  // namespace hdbscan
