#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hdbscan {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(123);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.uniform(-3.0f, 7.0f);
    ASSERT_GE(v, -3.0f);
    ASSERT_LT(v, 7.0f);
  }
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(99);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++histogram[v];
  }
  // Roughly uniform: each bucket within 10% of expectation.
  for (const int h : histogram) EXPECT_NEAR(h, 10000, 1000);
}

TEST(Xoshiro256, BelowOneAlwaysZero) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, NormalMomentsMatch) {
  Xoshiro256 rng(2024);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Xoshiro256, ExponentialIsPositiveWithMatchingMean) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Xoshiro256, ParetoRespectsMinimum) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 2.0), 2.0);
  }
}

TEST(Xoshiro256, SplitProducesIndependentStream) {
  Xoshiro256 parent(55);
  Xoshiro256 child = parent.split();
  // The child must not replay the parent's stream.
  Xoshiro256 parent_copy(55);
  parent_copy();  // consume the value used for the split
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (child() != parent_copy()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace hdbscan
