#include "core/similarity_join.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "data/generators.hpp"
#include "dbscan/neighbor_table.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

std::vector<NeighborPair> brute_join(std::span<const Point2> queries,
                                     std::span<const Point2> points,
                                     float eps) {
  std::vector<NeighborPair> out;
  for (PointId q = 0; q < queries.size(); ++q) {
    for (PointId p = 0; p < points.size(); ++p) {
      if (dist2(queries[q], points[p]) <= eps * eps) out.push_back({q, p});
    }
  }
  return out;
}

TEST(SimilarityJoin, MatchesBruteForceCrossDatasets) {
  const auto data_pts = data::generate_sky_survey(
      2000, 61, {.width = 8.0f, .height = 8.0f});
  const auto queries =
      data::generate_uniform(500, 62, 8.0f, 8.0f);
  const float eps = 0.4f;
  const GridIndex index = build_grid_index(data_pts, eps);
  cudasim::Device device({}, fast_options());

  JoinResult result = similarity_join(device, queries, index, eps);
  std::sort(result.pairs.begin(), result.pairs.end());

  auto expected = brute_join(queries, index.points, eps);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result.pairs, expected);
  EXPECT_GT(result.modeled_seconds, 0.0);
}

TEST(SimilarityJoin, SelfJoinEqualsNeighborTable) {
  const auto points = data::generate_space_weather(
      1500, 63, {.width = 8.0f, .height = 8.0f});
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable table = build_neighbor_table_host(index, eps);
  cudasim::Device device({}, fast_options());

  // Query with the index's own (reordered) points: key i == point i.
  JoinResult result = similarity_join(device, index.points, index, eps);
  EXPECT_EQ(result.pairs.size(), table.total_pairs());
  std::sort(result.pairs.begin(), result.pairs.end());
  std::vector<NeighborPair> expected;
  for (PointId i = 0; i < table.num_points(); ++i) {
    for (const PointId v : table.neighbors(i)) expected.push_back({i, v});
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result.pairs, expected);
}

TEST(SimilarityJoin, QueriesOutsideExtentHandled) {
  const auto points = data::generate_uniform(500, 64, 4.0f, 4.0f);
  const float eps = 0.5f;
  const GridIndex index = build_grid_index(points, eps);
  // Queries straddling and far beyond the boundary.
  const std::vector<Point2> queries{{-0.2f, 2.0f}, {4.3f, 2.0f},
                                    {2.0f, -0.2f}, {2.0f, 4.4f},
                                    {50.0f, 50.0f}, {-9.0f, -9.0f}};
  cudasim::Device device({}, fast_options());
  JoinResult result = similarity_join(device, queries, index, eps);
  std::sort(result.pairs.begin(), result.pairs.end());
  auto expected = brute_join(queries, index.points, eps);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result.pairs, expected);
}

TEST(SimilarityJoin, EmptyQueries) {
  const auto points = data::generate_uniform(100, 65, 2.0f, 2.0f);
  const GridIndex index = build_grid_index(points, 0.2f);
  cudasim::Device device({}, fast_options());
  const JoinResult result = similarity_join(device, {}, index, 0.2f);
  EXPECT_TRUE(result.pairs.empty());
}

TEST(SimilarityJoin, RejectsEpsBeyondCellWidth) {
  const auto points = data::generate_uniform(100, 66, 2.0f, 2.0f);
  const GridIndex index = build_grid_index(points, 0.2f);
  cudasim::Device device({}, fast_options());
  const std::vector<Point2> queries{{1.0f, 1.0f}};
  EXPECT_THROW((void)similarity_join(device, queries, index, 0.5f),
               std::invalid_argument);
}

// --- kNN ---

std::vector<KnnNeighbor> brute_knn(std::span<const Point2> points,
                                   const Point2& q, unsigned k) {
  std::vector<KnnNeighbor> all;
  for (PointId i = 0; i < points.size(); ++i) {
    all.push_back({i, dist(q, points[i])});
  }
  std::sort(all.begin(), all.end(),
            [](const KnnNeighbor& a, const KnnNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  all.resize(std::min<std::size_t>(k, all.size()));
  return all;
}

class KnnSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(KnnSweep, MatchesBruteForceDistances) {
  const unsigned k = GetParam();
  const auto points = data::generate_space_weather(
      2000, 67, {.width = 8.0f, .height = 8.0f});
  const GridIndex index = build_grid_index(points, 0.25f);
  Xoshiro256 rng(68);
  for (int trial = 0; trial < 20; ++trial) {
    const Point2 q{rng.uniform(0.0f, 8.0f), rng.uniform(0.0f, 8.0f)};
    const auto got = knn_search(index, q, k);
    const auto expected = brute_knn(index.points, q, k);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      // Ties may resolve to different ids; distances must match exactly.
      EXPECT_FLOAT_EQ(got[i].distance, expected[i].distance)
          << "k=" << k << " trial=" << trial << " rank=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnSweep, ::testing::Values(1u, 5u, 32u, 200u));

TEST(Knn, KLargerThanDatasetReturnsAll) {
  const auto points = data::generate_uniform(50, 69, 2.0f, 2.0f);
  const GridIndex index = build_grid_index(points, 0.3f);
  const auto got = knn_search(index, {1.0f, 1.0f}, 500);
  EXPECT_EQ(got.size(), 50u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].distance, got[i].distance);
  }
}

TEST(Knn, ZeroKIsEmpty) {
  const auto points = data::generate_uniform(50, 70, 2.0f, 2.0f);
  const GridIndex index = build_grid_index(points, 0.3f);
  EXPECT_TRUE(knn_search(index, {1.0f, 1.0f}, 0).empty());
}

}  // namespace
}  // namespace hdbscan
