// Fused no-table clustering (ClusterMode::kFused): label bit-identity
// against batch and streaming DBSCAN across backends, scan modes,
// degenerate inputs and dimensions, the zero-table contract, and the
// degradation ladder — scripted device loss fails over to survivors and
// randomized fault plans (including total fleet loss with host fallback)
// never change a single label.
#include "core/fused_clustering.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "core/hybrid_dbscan.hpp"
#include "core/hybrid_dbscan3.hpp"
#include "cudasim/buffer_pool.hpp"
#include "cudasim/fault.hpp"
#include "data/generators.hpp"
#include "dbscan/dbscan.hpp"
#include "dbscan/neighbor_table.hpp"
#include "dbscan/streaming_dbscan.hpp"
#include "index/grid_index.hpp"
#include "index/index_backend.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

cudasim::SimulationOptions faulted_options(cudasim::FaultPlan plan) {
  cudasim::SimulationOptions opt = fast_options();
  opt.fault = std::make_shared<cudasim::FaultInjector>(std::move(plan));
  return opt;
}

struct Fleet {
  std::vector<std::unique_ptr<cudasim::Device>> owned;
  std::vector<cudasim::Device*> ptrs;

  void add(cudasim::SimulationOptions opt) {
    owned.push_back(std::make_unique<cudasim::Device>(cudasim::DeviceConfig{},
                                                      std::move(opt)));
    ptrs.push_back(owned.back().get());
  }
};

// ---------------------------------------------------------------------------
// 2-D equivalence: fused == streaming == batch, both backends
// ---------------------------------------------------------------------------

class FusedEquivalence
    : public ::testing::TestWithParam<
          std::tuple<int, float, int, IndexBackend>> {};

TEST_P(FusedEquivalence, LabelsBitIdenticalToBatchAndStreaming) {
  const auto [family, eps, minpts, backend] = GetParam();
  const std::size_t n = 2500;
  const std::vector<Point2> points =
      family == 0 ? data::generate_uniform(n, 71, 10.0f, 10.0f)
                  : data::generate_space_weather(
                        n, 72, {.width = 10.0f, .height = 10.0f});

  cudasim::Device batch_dev({}, fast_options());
  const ClusterResult batch = hybrid_dbscan(batch_dev, points, eps, minpts);

  cudasim::Device stream_dev({}, fast_options());
  const ClusterResult streamed =
      hybrid_dbscan(stream_dev, points, eps, minpts, nullptr, {},
                    ClusterMode::kStreaming);
  EXPECT_EQ(streamed.labels, batch.labels);

  BatchPolicy policy;
  policy.index_backend = backend;
  HybridTimings timings;
  cudasim::Device fused_dev({}, fast_options());
  const ClusterResult fused =
      hybrid_dbscan(fused_dev, points, eps, minpts, &timings, policy,
                    ClusterMode::kFused);
  EXPECT_EQ(fused.labels, batch.labels);
  EXPECT_EQ(fused.num_clusters, batch.num_clusters);

  // The no-table contract: nothing materialized, only parked edges
  // crossed the bus, and the report owns up to the backend that ran.
  EXPECT_TRUE(timings.fused);
  EXPECT_TRUE(timings.build_report.fused);
  EXPECT_FALSE(timings.build_report.table_materialized);
  EXPECT_EQ(timings.build_report.index_backend, backend);
  EXPECT_GT(timings.build_report.total_pairs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FusedEquivalence,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0.2f, 0.5f),
                       ::testing::Values(4, 16),
                       ::testing::Values(IndexBackend::kGrid,
                                         IndexBackend::kBvh)));

TEST(FusedDbscan, FullScanModeMatchesBatch) {
  const auto points = data::generate_space_weather(
      2000, 73, {.width = 10.0f, .height = 10.0f});
  cudasim::Device batch_dev({}, fast_options());
  const ClusterResult batch = hybrid_dbscan(batch_dev, points, 0.4f, 4);
  for (const IndexBackend backend :
       {IndexBackend::kGrid, IndexBackend::kBvh}) {
    SCOPED_TRACE(to_string(backend));
    BatchPolicy policy;
    policy.index_backend = backend;
    policy.scan_mode = ScanMode::kFull;
    cudasim::Device dev({}, fast_options());
    const ClusterResult fused = hybrid_dbscan(
        dev, points, 0.4f, 4, nullptr, policy, ClusterMode::kFused);
    EXPECT_EQ(fused.labels, batch.labels);
  }
}

TEST(FusedDbscan, DuplicatePointsCluster) {
  // 300 coincident points plus a sparse ring of strays: the duplicate pile
  // exercises degree saturation and self-pair handling in one cell/leaf.
  std::vector<Point2> points(300, Point2{3.0f, 3.0f});
  Xoshiro256 rng(74);
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.uniform(0.0f, 10.0f), rng.uniform(0.0f, 10.0f)});
  }
  cudasim::Device batch_dev({}, fast_options());
  const ClusterResult batch = hybrid_dbscan(batch_dev, points, 0.3f, 8);
  for (const IndexBackend backend :
       {IndexBackend::kGrid, IndexBackend::kBvh}) {
    SCOPED_TRACE(to_string(backend));
    BatchPolicy policy;
    policy.index_backend = backend;
    cudasim::Device dev({}, fast_options());
    const ClusterResult fused = hybrid_dbscan(
        dev, points, 0.3f, 8, nullptr, policy, ClusterMode::kFused);
    EXPECT_EQ(fused.labels, batch.labels);
  }
  EXPECT_GE(batch.num_clusters, 1);
}

TEST(FusedDbscan, ExactEpsBoundaryPairsAreNeighbors) {
  // Chains of points spaced exactly eps apart: the closed-ball (<=)
  // semantic must hold identically in the fused traversal, on both
  // backends, or the chain fragments.
  const float eps = 0.25f;
  std::vector<Point2> points;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 30; ++i) {
      points.push_back({static_cast<float>(i) * eps,
                        2.0f * static_cast<float>(c)});
    }
  }
  cudasim::Device batch_dev({}, fast_options());
  const ClusterResult batch = hybrid_dbscan(batch_dev, points, eps, 2);
  EXPECT_EQ(batch.num_clusters, 4);
  for (const IndexBackend backend :
       {IndexBackend::kGrid, IndexBackend::kBvh}) {
    SCOPED_TRACE(to_string(backend));
    BatchPolicy policy;
    policy.index_backend = backend;
    cudasim::Device dev({}, fast_options());
    const ClusterResult fused = hybrid_dbscan(
        dev, points, eps, 2, nullptr, policy, ClusterMode::kFused);
    EXPECT_EQ(fused.labels, batch.labels);
  }
}

// ---------------------------------------------------------------------------
// 3-D: fused_dbscan3 == hybrid_dbscan3
// ---------------------------------------------------------------------------

std::vector<Point3> random_points3(std::size_t n, std::uint64_t seed,
                                   float extent) {
  Xoshiro256 rng(seed);
  std::vector<Point3> points(n);
  for (Point3& p : points) {
    p = {rng.uniform(0.0f, extent), rng.uniform(0.0f, extent),
         rng.uniform(0.0f, extent)};
  }
  return points;
}

TEST(FusedDbscan3, MatchesBatchAcrossScanModes) {
  const auto points = random_points3(2000, 75, 5.0f);
  cudasim::Device batch_dev({}, fast_options());
  const ClusterResult batch = hybrid_dbscan3(batch_dev, points, 0.4f, 4);
  for (const ScanMode scan : {ScanMode::kHalf, ScanMode::kFull}) {
    SCOPED_TRACE(scan == ScanMode::kHalf ? "kHalf" : "kFull");
    cudasim::Device dev({}, fast_options());
    Build3Report report;
    const ClusterResult fused =
        fused_dbscan3(dev, points, 0.4f, 4, &report, scan);
    EXPECT_EQ(fused.labels, batch.labels);
    EXPECT_EQ(fused.num_clusters, batch.num_clusters);
    EXPECT_GT(report.total_pairs, 0u);
    EXPECT_GT(report.kernel_flops, 0u);
    // Nothing to transpose: no forward rows ever became a table.
    EXPECT_EQ(report.expand_seconds, 0.0);
  }
}

TEST(FusedDbscan3, DenseClumpsAndMinptsSweep) {
  // Two tight clumps plus noise; sweep minpts so the core threshold moves
  // through the clump sizes.
  Xoshiro256 rng(76);
  std::vector<Point3> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back({1.0f + rng.uniform(0.0f, 0.2f),
                      1.0f + rng.uniform(0.0f, 0.2f),
                      1.0f + rng.uniform(0.0f, 0.2f)});
    points.push_back({4.0f + rng.uniform(0.0f, 0.2f),
                      4.0f + rng.uniform(0.0f, 0.2f),
                      4.0f + rng.uniform(0.0f, 0.2f)});
  }
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.uniform(0.0f, 5.0f), rng.uniform(0.0f, 5.0f),
                      rng.uniform(0.0f, 5.0f)});
  }
  for (const int minpts : {2, 8, 64}) {
    SCOPED_TRACE("minpts " + std::to_string(minpts));
    cudasim::Device batch_dev({}, fast_options());
    const ClusterResult batch =
        hybrid_dbscan3(batch_dev, points, 0.3f, minpts);
    cudasim::Device dev({}, fast_options());
    const ClusterResult fused = fused_dbscan3(dev, points, 0.3f, minpts);
    EXPECT_EQ(fused.labels, batch.labels);
  }
}

// ---------------------------------------------------------------------------
// Degradation ladder: failover, host fallback, randomized chaos
// ---------------------------------------------------------------------------

struct Scenario {
  std::vector<Point2> points;
  GridIndex index;
  NeighborTable oracle;  ///< full table, index point order
  std::vector<std::int32_t> want;  ///< batch labels, index point order
  float eps = 0.0f;
  int minpts = 4;
};

Scenario make_scenario(std::size_t n, float eps, int minpts,
                       std::uint64_t seed) {
  Scenario s;
  s.eps = eps;
  s.minpts = minpts;
  s.points = data::generate_space_weather(
      n, seed, {.width = 10.0f, .height = 10.0f});
  s.index = build_grid_index(s.points, eps);
  s.oracle = build_neighbor_table_host(s.index, eps);
  s.want = dbscan_neighbor_table(s.oracle, minpts).labels;
  return s;
}

/// Buffer/estimation policy fields are ignored by the fused path (nothing
/// to size); only the backend, scan mode and resilience ladder matter.
BatchPolicy chaos_policy(IndexBackend backend) {
  BatchPolicy policy;
  policy.index_backend = backend;
  return policy;
}

void expect_exact(const Scenario& s, StreamingDbscan& consumer) {
  for (PointId i = 0; i < s.index.size(); ++i) {
    ASSERT_EQ(consumer.degree(i), s.oracle.neighbor_count(i))
        << "degree mismatch at point " << i;
  }
  EXPECT_EQ(consumer.finalize().labels, s.want);
}

TEST(FusedChaos, DeviceLossFailsOverToSurvivorExactly) {
  const Scenario s = make_scenario(2500, 0.35f, 4, 77);
  for (const IndexBackend backend :
       {IndexBackend::kGrid, IndexBackend::kBvh}) {
    SCOPED_TRACE(to_string(backend));
    cudasim::FaultPlan lost;
    // The index upload is 4 allocations + 4 transfers = 8 ops; each fused
    // batch is one launch after that. Op 11 is that device's third batch:
    // a loss mid-traversal with work left to orphan.
    lost.lost_at_op = 11;
    Fleet fleet;
    fleet.add(fast_options());
    fleet.add(faulted_options(lost));

    StreamingDbscan consumer(s.index.size(), s.minpts);
    const BuildReport report = fused_cluster(fleet.ptrs, s.index, s.eps,
                                             consumer, chaos_policy(backend));

    EXPECT_EQ(report.devices_lost, 1u);
    EXPECT_GT(report.failover_batches, 0u);
    EXPECT_FALSE(report.used_host_fallback);
    EXPECT_FALSE(report.table_materialized);
    expect_exact(s, consumer);

    // The survivor returned every pooled buffer.
    for (const auto& dev : fleet.owned) {
      if (dev->lost()) continue;
      dev->pool().trim();
      EXPECT_EQ(dev->used_global_bytes(), 0u);
    }
  }
}

TEST(FusedChaos, TotalFleetLossCompletesOnHostExactly) {
  // Both backends must fall back under their own pair-ownership rule —
  // the BVH id rule via the R-tree, the grid's forward stencil — or the
  // degree parity check below catches the double-counted cross pairs.
  const Scenario s = make_scenario(1500, 0.35f, 4, 78);
  for (const IndexBackend backend :
       {IndexBackend::kGrid, IndexBackend::kBvh}) {
    SCOPED_TRACE(to_string(backend));
    cudasim::FaultPlan lost;
    lost.lost_at_op = 10;  // second batch launch of the only device
    Fleet fleet;
    fleet.add(faulted_options(lost));

    StreamingDbscan consumer(s.index.size(), s.minpts);
    BatchPolicy policy = chaos_policy(backend);
    policy.resilience.host_fallback = true;
    const BuildReport report =
        fused_cluster(fleet.ptrs, s.index, s.eps, consumer, policy);

    EXPECT_TRUE(report.used_host_fallback);
    EXPECT_GT(report.host_fallback_batches, 0u);
    EXPECT_EQ(report.devices_lost, 1u);
    expect_exact(s, consumer);
  }
}

TEST(FusedChaos, RandomizedFaultPlansKeepLabelsExact) {
  const Scenario s = make_scenario(1500, 0.35f, 4, 79);
  for (const IndexBackend backend :
       {IndexBackend::kGrid, IndexBackend::kBvh}) {
    for (const std::uint64_t seed : {5ull, 17ull, 42ull}) {
      SCOPED_TRACE(std::string(to_string(backend)) + " fault seed " +
                   std::to_string(seed));
      Fleet fleet;
      for (int d = 0; d < 3; ++d) {
        fleet.add(faulted_options(
            cudasim::FaultPlan::randomized(seed + 100ull * d)));
      }
      StreamingDbscan consumer(s.index.size(), s.minpts);
      BatchPolicy policy = chaos_policy(backend);
      policy.resilience.host_fallback = true;  // survive total loss
      (void)fused_cluster(fleet.ptrs, s.index, s.eps, consumer, policy);
      expect_exact(s, consumer);
    }
  }
}

}  // namespace
}  // namespace hdbscan
