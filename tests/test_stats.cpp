#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hdbscan {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, Interpolates) {
  // Sorted: 10, 20, 30, 40 -> p50 is between 20 and 30.
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0, 30.0, 40.0}, 0.5), 25.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -0.1), std::invalid_argument);
}

TEST(Percentile, SingleElementIsEveryQuantile) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 1.0), 7.0);
}

TEST(RunningStatsMerge, EmptyIntoEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(RunningStatsMerge, EmptyIsIdentity) {
  RunningStats a;
  for (const double v : {1.0, 2.0, 3.0}) a.add(v);
  const RunningStats empty;

  RunningStats left = a;
  left.merge(empty);  // a ⊕ 0
  RunningStats right = empty;
  right.merge(a);  // 0 ⊕ a
  for (const RunningStats& s : {left, right}) {
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.variance(), 1.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
  }
}

TEST(RunningStatsMerge, MatchesSequentialAdd) {
  RunningStats whole, lo, hi;
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (std::size_t i = 0; i < values.size(); ++i) {
    whole.add(values[i]);
    (i < 4 ? lo : hi).add(values[i]);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count(), whole.count());
  EXPECT_NEAR(lo.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(lo.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(lo.min(), whole.min());
  EXPECT_DOUBLE_EQ(lo.max(), whole.max());
}

TEST(RunningStatsMerge, AssociativeAcrossShards) {
  // (a ⊕ b) ⊕ c vs a ⊕ (b ⊕ c): per-thread accumulators may fold in any
  // order.
  std::vector<RunningStats> shard(3);
  for (int i = 0; i < 300; ++i) {
    shard[static_cast<std::size_t>(i % 3)].add(0.37 * i - 21.0);
  }
  RunningStats ab = shard[0];
  ab.merge(shard[1]);
  ab.merge(shard[2]);
  RunningStats bc = shard[1];
  bc.merge(shard[2]);
  RunningStats a_bc = shard[0];
  a_bc.merge(bc);
  EXPECT_EQ(ab.count(), a_bc.count());
  EXPECT_NEAR(ab.mean(), a_bc.mean(), 1e-9);
  EXPECT_NEAR(ab.variance(), a_bc.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(ab.min(), a_bc.min());
  EXPECT_DOUBLE_EQ(ab.max(), a_bc.max());
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(2.5), "2.500 s");
  EXPECT_EQ(format_seconds(0.0123), "12.300 ms");
  EXPECT_EQ(format_seconds(3.4e-5), "34.0 us");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(5ull << 30), "5.00 GiB");
}

TEST(Format, CountInsertsThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1864620), "1,864,620");
  EXPECT_EQ(format_count(15228633), "15,228,633");
}

}  // namespace
}  // namespace hdbscan
