// DeviceMetrics snapshot coherency under concurrent stream traffic.
//
// Device::metrics() returns a copy taken under the device mutex, so every
// snapshot must be internally consistent (peak >= current memory) and
// successive snapshots must be monotone in the cumulative counters, even
// while two streams are hammering transfers and allocations. A torn or
// unsynchronized read would show peak < current or a counter that moves
// backwards.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "cudasim/buffer.hpp"
#include "cudasim/device.hpp"
#include "cudasim/stream.hpp"

namespace cudasim {
namespace {

TEST(MetricsCoherency, SnapshotsUnderTwoStreamHammer) {
  SimulationOptions options;
  options.throttle_transfers = false;
  options.throttle_pinned_alloc = false;
  Device device(DeviceConfig{}, options);

  constexpr int kIterations = 200;
  constexpr std::size_t kCount = 512;
  std::atomic<bool> done{false};

  auto hammer = [&](Stream& stream) {
    std::vector<std::uint32_t> host(kCount);
    std::iota(host.begin(), host.end(), 0u);
    std::vector<std::uint32_t> back(kCount);
    for (int i = 0; i < kIterations; ++i) {
      DeviceBuffer<std::uint32_t> buf(device, kCount);
      stream.memcpy_to_device(buf, host.data(), kCount);
      stream.memcpy_to_host(back.data(), buf, kCount);
      stream.synchronize();
    }
  };

  Stream s1(device);
  Stream s2(device);
  std::thread t1([&] { hammer(s1); });
  std::thread t2([&] { hammer(s2); });

  // Poll snapshots concurrently with the traffic and check invariants on
  // every one of them.
  DeviceMetrics prev = device.metrics();
  std::size_t polls = 0;
  while (!done.load(std::memory_order_relaxed)) {
    const DeviceMetrics m = device.metrics();
    EXPECT_GE(m.peak_mem_bytes, m.current_mem_bytes);
    EXPECT_GE(m.h2d_bytes, prev.h2d_bytes);
    EXPECT_GE(m.d2h_bytes, prev.d2h_bytes);
    EXPECT_GE(m.transfer_seconds, prev.transfer_seconds);
    EXPECT_GE(m.kernel_launches, prev.kernel_launches);
    // h2d and d2h run in lock-step per iteration per stream, so the two
    // byte counters can never drift apart by more than two in-flight
    // copies per stream.
    const auto per_copy = kCount * sizeof(std::uint32_t);
    EXPECT_LE(m.d2h_bytes, m.h2d_bytes);
    EXPECT_GE(m.d2h_bytes + 4 * per_copy, m.h2d_bytes);
    prev = m;
    if (++polls % 64 == 0) std::this_thread::yield();
    if (m.d2h_bytes >= 2ull * kIterations * per_copy) {
      done.store(true, std::memory_order_relaxed);  // both hammers finished
    }
  }
  t1.join();
  t2.join();

  const DeviceMetrics last = device.metrics();
  const std::uint64_t expected_bytes =
      2ull * kIterations * kCount * sizeof(std::uint32_t);
  EXPECT_EQ(last.h2d_bytes, expected_bytes);
  EXPECT_EQ(last.d2h_bytes, expected_bytes);
  EXPECT_EQ(last.current_mem_bytes, 0u);  // all buffers released
  EXPECT_GE(last.peak_mem_bytes, kCount * sizeof(std::uint32_t));
  EXPECT_EQ(device.used_global_bytes(), 0u);
}

TEST(MetricsCoherency, PeakNeverBelowCurrentDuringAllocChurn) {
  Device device;
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    for (int i = 0; i < 400; ++i) {
      DeviceBuffer<std::uint8_t> a(device, 4096);
      DeviceBuffer<std::uint8_t> b(device, 8192);
    }
    stop.store(true, std::memory_order_relaxed);
  });
  while (!stop.load(std::memory_order_relaxed)) {
    const DeviceMetrics m = device.metrics();
    ASSERT_GE(m.peak_mem_bytes, m.current_mem_bytes);
  }
  churn.join();
  EXPECT_EQ(device.metrics().current_mem_bytes, 0u);
  EXPECT_GE(device.metrics().peak_mem_bytes, 4096u + 8192u);
}

}  // namespace
}  // namespace cudasim
