// The two epsilon-neighborhood kernels must agree with each other, with the
// host oracle, and under any batch decomposition (paper §IV and §VI).
#include "gpu/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "data/generators.hpp"
#include "dbscan/neighbor_table.hpp"
#include "gpu/result_sink.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

/// Sorted canonical pair list (key asc, value asc) from a sink.
std::vector<NeighborPair> sink_pairs(gpu::ResultSetDevice& sink) {
  EXPECT_FALSE(sink.overflowed());
  auto view = sink.pairs().unsafe_host_view();
  std::vector<NeighborPair> pairs(view.begin(),
                                  view.begin() + static_cast<std::ptrdiff_t>(
                                                     sink.count()));
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

/// Oracle pair list from the host-side neighbor table.
std::vector<NeighborPair> oracle_pairs(const GridIndex& index, float eps) {
  const NeighborTable table = build_neighbor_table_host(index, eps);
  std::vector<NeighborPair> pairs;
  pairs.reserve(table.total_pairs());
  for (PointId i = 0; i < table.num_points(); ++i) {
    for (const PointId v : table.neighbors(i)) pairs.push_back({i, v});
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

struct KernelTestData {
  GridIndex index;
  std::vector<NeighborPair> expected;
  float eps;
};

KernelTestData make_data(int family, float eps, std::size_t n = 2000) {
  std::vector<Point2> points =
      family == 0   ? data::generate_uniform(n, 7, 8.0f, 8.0f)
      : family == 1 ? data::generate_space_weather(
                          n, 8, {.width = 8.0f, .height = 8.0f})
                    : data::generate_sky_survey(
                          n, 9, {.width = 8.0f, .height = 8.0f});
  KernelTestData d{build_grid_index(points, eps), {}, eps};
  d.expected = oracle_pairs(d.index, eps);
  return d;
}

class KernelProperty
    : public ::testing::TestWithParam<std::tuple<int, float>> {};

TEST_P(KernelProperty, GlobalKernelMatchesHostOracle) {
  const auto [family, eps] = GetParam();
  const KernelTestData d = make_data(family, eps);
  cudasim::Device dev({}, fast_options());
  gpu::ResultSetDevice sink(dev, d.expected.size() + 16);
  const auto stats =
      gpu::run_calc_global(dev, GridView::of(d.index), d.eps, {}, sink.view());
  EXPECT_EQ(sink_pairs(sink), d.expected);
  // nGPU ~ |D| rounded up to blocks (Table II property).
  EXPECT_GE(stats.threads, d.index.size());
  EXPECT_LT(stats.threads, d.index.size() + 256);
}

TEST_P(KernelProperty, SharedKernelMatchesGlobalKernel) {
  const auto [family, eps] = GetParam();
  const KernelTestData d = make_data(family, eps);
  cudasim::Device dev({}, fast_options());
  gpu::ResultSetDevice sink(dev, d.expected.size() + 16);
  const auto stats = gpu::run_calc_shared(
      dev, GridView::of(d.index), d.index.nonempty_cells.data(),
      static_cast<std::uint32_t>(d.index.nonempty_cells.size()), d.eps,
      sink.view());
  EXPECT_EQ(sink_pairs(sink), d.expected);
  // Block-per-cell mapping: nGPU = non-empty cells x block size.
  EXPECT_EQ(stats.threads, d.index.nonempty_cells.size() * 256);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndEps, KernelProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.1f, 0.35f, 0.9f)));

class BatchedKernel : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BatchedKernel, UnionOfBatchesEqualsUnbatched) {
  const std::uint32_t nb = GetParam();
  const KernelTestData d = make_data(1, 0.4f);
  cudasim::Device dev({}, fast_options());
  std::vector<NeighborPair> all;
  for (std::uint32_t l = 0; l < nb; ++l) {
    gpu::ResultSetDevice sink(dev, d.expected.size() + 16);
    gpu::run_calc_global(dev, GridView::of(d.index), d.eps, {l, nb},
                         sink.view());
    const auto batch = sink_pairs(sink);
    // Strided assignment: batch l must contain exactly keys == l (mod nb).
    for (const NeighborPair& p : batch) EXPECT_EQ(p.key % nb, l);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, d.expected);
}

INSTANTIATE_TEST_SUITE_P(BatchCounts, BatchedKernel,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 16u, 101u));

TEST(BatchedKernel, BatchSizesAreBalanced) {
  // Fig. 2 rationale: strided assignment over spatially sorted D keeps
  // per-batch result sizes roughly equal, even on skewed data.
  const KernelTestData d = make_data(1, 0.4f, 4000);
  cudasim::Device dev({}, fast_options());
  const std::uint32_t nb = 4;
  std::vector<std::uint64_t> sizes;
  for (std::uint32_t l = 0; l < nb; ++l) {
    gpu::ResultSetDevice sink(dev, d.expected.size() + 16);
    gpu::run_calc_global(dev, GridView::of(d.index), d.eps, {l, nb},
                         sink.view());
    sizes.push_back(sink.count());
  }
  const std::uint64_t max_size = *std::max_element(sizes.begin(), sizes.end());
  const std::uint64_t min_size = *std::min_element(sizes.begin(), sizes.end());
  EXPECT_LT(static_cast<double>(max_size - min_size),
            0.15 * static_cast<double>(max_size))
      << "batches unbalanced: min " << min_size << " max " << max_size;
}

TEST(ResultSink, OverflowFlagRaisedNotCorrupted) {
  const KernelTestData d = make_data(0, 0.5f);
  ASSERT_GT(d.expected.size(), 100u);
  cudasim::Device dev({}, fast_options());
  gpu::ResultSetDevice sink(dev, 50);  // deliberately too small
  gpu::run_calc_global(dev, GridView::of(d.index), d.eps, {}, sink.view());
  EXPECT_TRUE(sink.overflowed());
  EXPECT_GT(sink.count(), 50u);  // counter keeps counting
  // reset clears the state for the next batch.
  sink.reset();
  EXPECT_FALSE(sink.overflowed());
  EXPECT_EQ(sink.count(), 0u);
}

TEST(ResultSink, ExactCapacityIsNotOverflow) {
  // Filling every slot exactly must not raise the flag; one pair more must,
  // while stored() clamps to the buffer and produced() keeps counting.
  cudasim::Device dev({}, fast_options());
  gpu::ResultSetDevice sink(dev, 8);
  cudasim::BlockCounters counters;
  cudasim::ThreadCtx ctx;
  ctx.block_dim = 1;
  ctx.grid_dim = 1;
  ctx.counters_ = &counters;
  const gpu::ResultSinkView view = sink.view();
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(view.push({i, i}, ctx));
  }
  EXPECT_FALSE(sink.overflowed());
  EXPECT_EQ(sink.produced(), 8u);
  EXPECT_EQ(sink.stored(), 8u);

  EXPECT_FALSE(view.push({8, 8}, ctx));
  EXPECT_TRUE(sink.overflowed());
  EXPECT_EQ(sink.produced(), 9u);
  EXPECT_EQ(sink.stored(), 8u);  // safe read extent stays in bounds
}

TEST(ResultSink, StagedSinkOneAtomicPerFlush) {
  cudasim::Device dev({}, fast_options());
  gpu::ResultSetDevice sink(dev, 1000);
  cudasim::BlockCounters counters;
  cudasim::ThreadCtx ctx;
  ctx.block_dim = 1;
  ctx.grid_dim = 1;
  ctx.counters_ = &counters;
  gpu::StagedSink staged(sink.view());
  const std::size_t n = 2 * gpu::StagedSink::kStageCapacity + 44;
  for (std::uint32_t i = 0; i < n; ++i) {
    staged.push({i, i}, ctx);
  }
  EXPECT_EQ(counters.atomic_ops, 2u);  // two automatic flushes at capacity
  EXPECT_EQ(staged.staged(), 44u);
  staged.flush(ctx);
  EXPECT_EQ(counters.atomic_ops, 3u);
  EXPECT_EQ(staged.staged(), 0u);
  EXPECT_EQ(sink.produced(), n);
  EXPECT_FALSE(sink.overflowed());
  // Every pair landed, in reservation order.
  const auto slots = sink.pairs().unsafe_host_view();
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(slots[i].key, i);
    EXPECT_EQ(slots[i].value, i);
  }
}

TEST(ResultSink, StagedFlushSpanningCapacityRaisesOverflow) {
  // A bulk reservation that starts in bounds but extends past capacity
  // must flag overflow, store only the in-bounds prefix, and keep the raw
  // cursor counting the full reservation.
  cudasim::Device dev({}, fast_options());
  gpu::ResultSetDevice sink(dev, 100);
  cudasim::BlockCounters counters;
  cudasim::ThreadCtx ctx;
  ctx.block_dim = 1;
  ctx.grid_dim = 1;
  ctx.counters_ = &counters;
  gpu::StagedSink staged(sink.view());
  for (std::uint32_t i = 0; i < gpu::StagedSink::kStageCapacity; ++i) {
    staged.push({i, i}, ctx);
  }
  EXPECT_EQ(staged.staged(), 0u);  // auto-flushed at kStageCapacity
  EXPECT_TRUE(sink.overflowed());
  EXPECT_EQ(sink.produced(), gpu::StagedSink::kStageCapacity);
  EXPECT_EQ(sink.stored(), 100u);
  const auto slots = sink.pairs().unsafe_host_view();
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(slots[i].key, i);  // in-bounds prefix written, tail dropped
  }
}

TEST(CountKernel, FullCensusEqualsTotalPairs) {
  const KernelTestData d = make_data(2, 0.3f);
  cudasim::Device dev({}, fast_options());
  const std::uint64_t counted =
      gpu::run_count_kernel(dev, GridView::of(d.index), d.eps, 1);
  EXPECT_EQ(counted, d.expected.size());
}

TEST(CountKernel, StridedSampleCountsSubset) {
  const KernelTestData d = make_data(0, 0.3f);
  cudasim::Device dev({}, fast_options());
  const std::uint64_t full =
      gpu::run_count_kernel(dev, GridView::of(d.index), d.eps, 1);
  const std::uint64_t sampled =
      gpu::run_count_kernel(dev, GridView::of(d.index), d.eps, 10);
  EXPECT_LT(sampled, full);
  EXPECT_GT(sampled, 0u);
  // Uniform data: the 10% sample extrapolates to ~the full census.
  EXPECT_NEAR(static_cast<double>(sampled * 10),
              static_cast<double>(full), 0.25 * static_cast<double>(full));
}

TEST(SharedKernel, HandlesCellsLargerThanBlock) {
  // All points in one cell, block size 32 -> the tiling loops must cover
  // every origin/comparison tile combination.
  std::vector<Point2> points;
  Xoshiro256 rng(5);
  for (int i = 0; i < 300; ++i) {
    points.push_back({rng.uniform(0.0f, 0.2f), rng.uniform(0.0f, 0.2f)});
  }
  const GridIndex index = build_grid_index(points, 0.5f);
  ASSERT_EQ(index.nonempty_cells.size(), 1u);
  ASSERT_EQ(index.max_cell_occupancy, 300u);
  cudasim::Device dev({}, fast_options());
  const std::uint64_t expected_pairs = 300ull * 300ull;  // all within eps
  gpu::ResultSetDevice sink(dev, expected_pairs + 16);
  gpu::run_calc_shared(dev, GridView::of(index), index.nonempty_cells.data(),
                       1, 0.5f, sink.view(), ScanMode::kFull,
                       /*block_size=*/32);
  EXPECT_FALSE(sink.overflowed());
  EXPECT_EQ(sink.count(), expected_pairs);
}

TEST(SharedKernel, SubsetScheduleProcessesOnlyThoseCells) {
  // Processing a subset of cells (the dense-cell hybrid ablation) emits
  // exactly the pairs whose *key* lives in a scheduled cell.
  const KernelTestData d = make_data(1, 0.4f);
  const std::uint32_t half =
      static_cast<std::uint32_t>(d.index.nonempty_cells.size() / 2);
  ASSERT_GT(half, 0u);
  cudasim::Device dev({}, fast_options());
  gpu::ResultSetDevice sink(dev, d.expected.size() + 16);
  gpu::run_calc_shared(dev, GridView::of(d.index),
                       d.index.nonempty_cells.data(), half, d.eps,
                       sink.view());
  std::vector<bool> scheduled_cell(d.index.cells.size(), false);
  for (std::uint32_t c = 0; c < half; ++c) {
    scheduled_cell[d.index.nonempty_cells[c]] = true;
  }
  std::vector<NeighborPair> expected;
  for (const NeighborPair& p : d.expected) {
    if (scheduled_cell[d.index.params.linear_cell(d.index.points[p.key])]) {
      expected.push_back(p);
    }
  }
  EXPECT_EQ(sink_pairs(sink), expected);
}

TEST(GlobalKernel, ModeledTimeBeatsSharedOnUniformData) {
  // The headline of Table II: GPUCalcGlobal wins, by the most on uniform
  // (SDSS-like) data where block-per-cell overhead dominates.
  const KernelTestData d = make_data(2, 0.15f, 20000);
  cudasim::Device dev({}, fast_options());
  gpu::ResultSetDevice sink_a(dev, d.expected.size() + 16);
  const auto global_stats =
      gpu::run_calc_global(dev, GridView::of(d.index), d.eps, {}, sink_a.view());
  gpu::ResultSetDevice sink_b(dev, d.expected.size() + 16);
  const auto shared_stats = gpu::run_calc_shared(
      dev, GridView::of(d.index), d.index.nonempty_cells.data(),
      static_cast<std::uint32_t>(d.index.nonempty_cells.size()), d.eps,
      sink_b.view());
  EXPECT_LT(global_stats.modeled_seconds, shared_stats.modeled_seconds);
  EXPECT_GT(shared_stats.threads, global_stats.threads);
}

}  // namespace
}  // namespace hdbscan
