#include "index/grid_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "data/generators.hpp"

namespace hdbscan {
namespace {

std::vector<PointId> brute_force_neighbors(std::span<const Point2> points,
                                           const Point2& q, float eps) {
  std::vector<PointId> out;
  for (PointId i = 0; i < points.size(); ++i) {
    if (dist2(q, points[i]) <= eps * eps) out.push_back(i);
  }
  return out;
}

TEST(GridIndex, RejectsBadInput) {
  const std::vector<Point2> points{{0, 0}, {1, 1}};
  EXPECT_THROW(build_grid_index({}, 1.0f), std::invalid_argument);
  EXPECT_THROW(build_grid_index(points, 0.0f), std::invalid_argument);
  EXPECT_THROW(build_grid_index(points, -1.0f), std::invalid_argument);
  EXPECT_THROW(build_grid_index(points, 1e-9f, /*max_cells=*/100),
               std::invalid_argument);
}

TEST(GridIndex, SinglePointGrid) {
  const std::vector<Point2> points{{3.5f, -2.0f}};
  const GridIndex g = build_grid_index(points, 0.5f);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.params.cells_x, 1u);
  EXPECT_EQ(g.params.cells_y, 1u);
  EXPECT_EQ(g.lookup.size(), 1u);
  EXPECT_EQ(g.nonempty_cells.size(), 1u);
  EXPECT_EQ(g.max_cell_occupancy, 1u);
}

TEST(GridIndex, LookupArrayIsPermutationOfPointIds) {
  const auto points = data::generate_uniform(5000, 1, 10.0f, 10.0f);
  const GridIndex g = build_grid_index(points, 0.3f);
  ASSERT_EQ(g.lookup.size(), points.size());
  std::vector<PointId> sorted(g.lookup.begin(), g.lookup.end());
  std::sort(sorted.begin(), sorted.end());
  for (PointId i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(GridIndex, OriginalIdsArePermutation) {
  const auto points = data::generate_uniform(3000, 2, 10.0f, 10.0f);
  const GridIndex g = build_grid_index(points, 0.5f);
  std::vector<PointId> sorted(g.original_ids.begin(), g.original_ids.end());
  std::sort(sorted.begin(), sorted.end());
  for (PointId i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  // Reordered points really are the originals.
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.points[i], points[g.original_ids[i]]);
  }
}

TEST(GridIndex, CellRangesPartitionLookup) {
  const auto points = data::generate_sky_survey(4000, 3);
  const GridIndex g = build_grid_index(points, 0.4f);
  std::uint32_t covered = 0;
  std::uint32_t prev_end = 0;
  for (const CellRange& c : g.cells) {
    EXPECT_EQ(c.begin, prev_end);  // contiguous, in cell order
    EXPECT_LE(c.begin, c.end);
    covered += c.count();
    prev_end = c.end;
  }
  EXPECT_EQ(covered, points.size());
}

TEST(GridIndex, EveryPointInItsOwnCellRange) {
  const auto points = data::generate_space_weather(3000, 4);
  const GridIndex g = build_grid_index(points, 0.25f);
  for (PointId i = 0; i < g.size(); ++i) {
    const std::uint32_t h = g.params.linear_cell(g.points[i]);
    const CellRange range = g.cells[h];
    bool found = false;
    for (std::uint32_t a = range.begin; a < range.end && !found; ++a) {
      found = g.lookup[a] == i;
    }
    EXPECT_TRUE(found) << "point " << i << " missing from its cell";
  }
}

TEST(GridIndex, NonemptyCellsMatchOccupancy) {
  const auto points = data::generate_space_weather(2000, 5);
  const GridIndex g = build_grid_index(points, 0.5f);
  std::set<std::uint32_t> nonempty(g.nonempty_cells.begin(),
                                   g.nonempty_cells.end());
  std::uint32_t max_occ = 0;
  for (std::uint32_t h = 0; h < g.cells.size(); ++h) {
    if (g.cells[h].count() > 0) {
      EXPECT_TRUE(nonempty.count(h)) << h;
      max_occ = std::max(max_occ, g.cells[h].count());
    } else {
      EXPECT_FALSE(nonempty.count(h)) << h;
    }
  }
  EXPECT_EQ(g.max_cell_occupancy, max_occ);
}

TEST(NeighborCells, InteriorCellHasNine) {
  GridParams p{0, 0, 1.0f, 5, 5};
  std::array<std::uint32_t, 9> out{};
  EXPECT_EQ(get_neighbor_cells(p, 12, out), 9u);  // center of 5x5
  std::set<std::uint32_t> cells(out.begin(), out.end());
  for (const std::uint32_t c : {6u, 7u, 8u, 11u, 12u, 13u, 16u, 17u, 18u}) {
    EXPECT_TRUE(cells.count(c));
  }
}

TEST(NeighborCells, CornerCellHasFour) {
  GridParams p{0, 0, 1.0f, 5, 5};
  std::array<std::uint32_t, 9> out{};
  EXPECT_EQ(get_neighbor_cells(p, 0, out), 4u);
  EXPECT_EQ(get_neighbor_cells(p, 24, out), 4u);
}

TEST(NeighborCells, EdgeCellHasSix) {
  GridParams p{0, 0, 1.0f, 5, 5};
  std::array<std::uint32_t, 9> out{};
  EXPECT_EQ(get_neighbor_cells(p, 2, out), 6u);   // top edge
  EXPECT_EQ(get_neighbor_cells(p, 10, out), 6u);  // left edge
}

TEST(NeighborCells, SingleCellGrid) {
  GridParams p{0, 0, 1.0f, 1, 1};
  std::array<std::uint32_t, 9> out{};
  EXPECT_EQ(get_neighbor_cells(p, 0, out), 1u);
  EXPECT_EQ(out[0], 0u);
}

// Property sweep: grid_query must agree with brute force over datasets of
// both characters and a range of eps values.
class GridQueryProperty
    : public ::testing::TestWithParam<std::tuple<int, float>> {};

TEST_P(GridQueryProperty, MatchesBruteForce) {
  const auto [family, eps] = GetParam();
  const std::size_t n = 1500;
  const std::vector<Point2> points =
      family == 0   ? data::generate_uniform(n, 77, 8.0f, 8.0f)
      : family == 1 ? data::generate_space_weather(
                          n, 78, {.width = 8.0f, .height = 8.0f})
                    : data::generate_sky_survey(
                          n, 79, {.width = 8.0f, .height = 8.0f});
  const GridIndex g = build_grid_index(points, eps);

  std::vector<PointId> got;
  for (PointId q = 0; q < g.size(); q += 37) {  // sample queries
    grid_query(g, g.points[q], eps, got);
    auto expected = brute_force_neighbors(g.points, g.points[q], eps);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expected) << "query " << q << " eps " << eps;
    // Self-inclusion: the point itself is always within eps.
    EXPECT_TRUE(std::binary_search(got.begin(), got.end(), q));
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndEps, GridQueryProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.05f, 0.2f, 0.5f, 1.0f, 2.5f)));

TEST(GridIndex, DuplicatePointsAllIndexed) {
  std::vector<Point2> points(100, Point2{1.0f, 1.0f});
  const GridIndex g = build_grid_index(points, 0.5f);
  EXPECT_EQ(g.max_cell_occupancy, 100u);
  std::vector<PointId> out;
  grid_query(g, {1.0f, 1.0f}, 0.5f, out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(GridIndex, EpsLargerThanExtent) {
  const auto points = data::generate_uniform(200, 11, 2.0f, 2.0f);
  const GridIndex g = build_grid_index(points, 10.0f);
  EXPECT_EQ(g.params.num_cells(), 1u);
  std::vector<PointId> out;
  grid_query(g, points[0], 10.0f, out);
  EXPECT_EQ(out.size(), 200u);
}

}  // namespace
}  // namespace hdbscan
