#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "cudasim/device.hpp"
#include "cudasim/kernel.hpp"

namespace {

using cudasim::Device;
using cudasim::KernelStats;
using cudasim::LaunchError;
using cudasim::SimulationOptions;
using cudasim::ThreadCtx;

SimulationOptions fast_options() {
  SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

TEST(FlatKernel, EveryThreadRunsExactlyOnce) {
  Device dev({}, fast_options());
  std::vector<std::atomic<int>> hits(4 * 64);
  const KernelStats stats = cudasim::run_flat_kernel(
      dev, 4, 64, [&](ThreadCtx& ctx) { hits[ctx.global_id()]++; });
  EXPECT_EQ(stats.threads, 256u);
  EXPECT_EQ(stats.blocks, 4u);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(FlatKernel, IdsAreConsistent) {
  Device dev({}, fast_options());
  std::atomic<bool> ok{true};
  cudasim::run_flat_kernel(dev, 8, 32, [&](ThreadCtx& ctx) {
    if (ctx.block_dim != 32 || ctx.grid_dim != 8 ||
        ctx.thread_idx >= ctx.block_dim || ctx.block_idx >= ctx.grid_dim ||
        ctx.global_id() != ctx.block_idx * 32 + ctx.thread_idx) {
      ok.store(false);
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(FlatKernel, WorkCountersAggregate) {
  Device dev({}, fast_options());
  const KernelStats stats =
      cudasim::run_flat_kernel(dev, 2, 10, [&](ThreadCtx& ctx) {
        ctx.count_flops(3);
        ctx.count_global_bytes(8);
        ctx.count_atomic();
      });
  EXPECT_EQ(stats.work.flops, 60u);
  EXPECT_EQ(stats.work.global_bytes, 160u);
  EXPECT_EQ(stats.work.atomic_ops, 20u);
}

TEST(FlatKernel, ModeledTimePositiveAndScalesWithWork) {
  Device dev({}, fast_options());
  const KernelStats small = cudasim::run_flat_kernel(
      dev, 1, 32, [&](ThreadCtx& ctx) { ctx.count_global_bytes(1000); });
  const KernelStats large = cudasim::run_flat_kernel(
      dev, 1, 32, [&](ThreadCtx& ctx) { ctx.count_global_bytes(100000000); });
  EXPECT_GT(small.modeled_seconds, 0.0);
  EXPECT_GT(large.modeled_seconds, small.modeled_seconds);
}

TEST(FlatKernel, BlockOverheadShowsUpForManyBlocks) {
  Device dev({}, fast_options());
  // Same total work, far more blocks -> larger modeled time (the effect
  // that makes GPUCalcShared lose on uniform data in the paper).
  const KernelStats few = cudasim::run_flat_kernel(dev, 4, 256,
                                                   [](ThreadCtx&) {});
  const KernelStats many = cudasim::run_flat_kernel(dev, 4096, 1,
                                                    [](ThreadCtx&) {});
  EXPECT_GT(many.modeled_seconds, few.modeled_seconds);
}

TEST(FlatKernel, RejectsInvalidLaunches) {
  Device dev({}, fast_options());
  auto noop = [](ThreadCtx&) {};
  EXPECT_THROW(cudasim::run_flat_kernel(dev, 0, 32, noop), LaunchError);
  EXPECT_THROW(cudasim::run_flat_kernel(dev, 1, 0, noop), LaunchError);
  EXPECT_THROW(cudasim::run_flat_kernel(dev, 1, 2048, noop), LaunchError);
}

TEST(FlatKernel, DeviceMetricsAccumulate) {
  Device dev({}, fast_options());
  cudasim::run_flat_kernel(dev, 1, 1, [](ThreadCtx&) {});
  cudasim::run_flat_kernel(dev, 1, 1, [](ThreadCtx&) {});
  const auto m = dev.metrics();
  EXPECT_EQ(m.kernel_launches, 2u);
  EXPECT_GT(m.kernel_modeled_seconds, 0.0);
}

TEST(FlatKernel, LargeGridExecutesCorrectTotal) {
  Device dev({}, fast_options());
  std::atomic<std::uint64_t> sum{0};
  cudasim::run_flat_kernel(dev, 1000, 64, [&](ThreadCtx& ctx) {
    sum.fetch_add(ctx.global_id(), std::memory_order_relaxed);
  });
  const std::uint64_t n = 64000;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
