#include "data/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "data/datasets.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

TEST(Generators, RequestedSizeProduced) {
  EXPECT_EQ(data::generate_space_weather(1234, 1).size(), 1234u);
  EXPECT_EQ(data::generate_sky_survey(777, 2).size(), 777u);
  EXPECT_EQ(data::generate_uniform(10, 3, 1.0f, 1.0f).size(), 10u);
}

TEST(Generators, DeterministicPerSeed) {
  const auto a = data::generate_space_weather(500, 42);
  const auto b = data::generate_space_weather(500, 42);
  EXPECT_EQ(a, b);
  const auto c = data::generate_space_weather(500, 43);
  EXPECT_NE(a, c);
}

TEST(Generators, PointsStayInDomain) {
  data::SpaceWeatherParams swp;
  swp.width = 12.0f;
  swp.height = 7.0f;
  for (const Point2& p : data::generate_space_weather(5000, 5, swp)) {
    EXPECT_GE(p.x, 0.0f);
    EXPECT_LE(p.x, 12.0f);
    EXPECT_GE(p.y, 0.0f);
    EXPECT_LE(p.y, 7.0f);
  }
  data::SkySurveyParams ssp;
  ssp.width = 9.0f;
  ssp.height = 4.0f;
  for (const Point2& p : data::generate_sky_survey(5000, 6, ssp)) {
    EXPECT_GE(p.x, 0.0f);
    EXPECT_LE(p.x, 9.0f);
    EXPECT_GE(p.y, 0.0f);
    EXPECT_LE(p.y, 4.0f);
  }
}

TEST(Generators, SpaceWeatherIsMoreSkewedThanSkySurvey) {
  // The property the paper's kernel comparison hinges on: SW- piles far
  // more points into its densest grid cell than SDSS- at equal |D|.
  const std::size_t n = 20000;
  const float eps = 0.25f;
  data::SpaceWeatherParams swp;  // same 35x35 default domain for both
  data::SkySurveyParams ssp;
  const GridIndex sw =
      build_grid_index(data::generate_space_weather(n, 7, swp), eps);
  const GridIndex sdss =
      build_grid_index(data::generate_sky_survey(n, 8, ssp), eps);
  EXPECT_GT(sw.max_cell_occupancy, 4 * sdss.max_cell_occupancy);
  // ... and spreads over fewer non-empty cells.
  EXPECT_LT(sw.nonempty_cells.size(), sdss.nonempty_cells.size());
}

TEST(Generators, BlobsCarryGroundTruthLabels) {
  std::vector<int> labels;
  const auto points =
      data::generate_gaussian_blobs(1000, 9, 4, 0.1f, 10.0f, 10.0f, 0.25,
                                    &labels);
  ASSERT_EQ(labels.size(), points.size());
  std::size_t noise = 0;
  for (const int l : labels) {
    EXPECT_GE(l, -1);
    EXPECT_LT(l, 4);
    noise += (l == -1);
  }
  EXPECT_NEAR(static_cast<double>(noise), 250.0, 60.0);
}

TEST(Datasets, RegistryHasPaperDatasets) {
  const auto& reg = data::dataset_registry();
  ASSERT_EQ(reg.size(), 5u);
  EXPECT_EQ(data::dataset_info("SW1").paper_size, 1'864'620u);
  EXPECT_EQ(data::dataset_info("SDSS3").paper_size, 15'228'633u);
  EXPECT_TRUE(data::dataset_info("SW4").skewed);
  EXPECT_FALSE(data::dataset_info("SDSS2").skewed);
}

TEST(Datasets, SizeRatiosTrackThePaper) {
  const auto& sw1 = data::dataset_info("SW1");
  const auto& sdss3 = data::dataset_info("SDSS3");
  const double paper_ratio = static_cast<double>(sdss3.paper_size) /
                             static_cast<double>(sw1.paper_size);
  const double our_ratio = static_cast<double>(sdss3.default_size) /
                           static_cast<double>(sw1.default_size);
  EXPECT_NEAR(our_ratio, paper_ratio, 0.05 * paper_ratio);
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(data::dataset_info("SW9"), std::invalid_argument);
  EXPECT_THROW(data::make_dataset("nope"), std::invalid_argument);
}

TEST(Datasets, ExplicitSizeOverridesDefault) {
  EXPECT_EQ(data::make_dataset("SW1", 2500).size(), 2500u);
}

TEST(Datasets, MakeDatasetIsDeterministic) {
  EXPECT_EQ(data::make_dataset("SDSS1", 1000), data::make_dataset("SDSS1", 1000));
  EXPECT_NE(data::make_dataset("SDSS1", 1000), data::make_dataset("SDSS2", 1000));
}

}  // namespace
}  // namespace hdbscan
