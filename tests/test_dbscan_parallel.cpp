#include "dbscan/dbscan_parallel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "data/generators.hpp"
#include "dbscan/cluster_compare.hpp"
#include "dbscan/dbscan.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

struct Fixture {
  explicit Fixture(int family, float eps_in, int minpts_in,
                   std::size_t n = 3000) {
    points = family == 0
                 ? data::generate_sky_survey(n, 91,
                                             {.width = 10.0f, .height = 10.0f})
                 : data::generate_space_weather(
                       n, 92, {.width = 10.0f, .height = 10.0f});
    eps = eps_in;
    minpts = minpts_in;
    index = build_grid_index(points, eps);
    table = build_neighbor_table_host(index, eps);
  }
  std::vector<Point2> points;
  float eps;
  int minpts;
  GridIndex index;
  NeighborTable table;
};

class ParallelDbscanSweep
    : public ::testing::TestWithParam<std::tuple<int, float, int, unsigned>> {
};

TEST_P(ParallelDbscanSweep, EquivalentToSequential) {
  const auto [family, eps, minpts, threads] = GetParam();
  const Fixture f(family, eps, minpts);
  const ClusterResult sequential = dbscan_neighbor_table(f.table, f.minpts);
  const ClusterResult parallel =
      dbscan_parallel(f.table, f.minpts, threads);
  const auto outcome =
      compare_clusterings(sequential, parallel, f.table, f.minpts);
  EXPECT_TRUE(outcome.equivalent) << outcome.diagnostic;
  EXPECT_EQ(sequential.num_clusters, parallel.num_clusters);
  EXPECT_EQ(sequential.noise_count(), parallel.noise_count());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelDbscanSweep,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0.3f, 0.6f),
                       ::testing::Values(4, 20),
                       ::testing::Values(1u, 4u, 16u)));

TEST(ParallelDbscan, DeterministicAcrossThreadCounts) {
  const Fixture f(1, 0.4f, 6);
  const ClusterResult one = dbscan_parallel(f.table, f.minpts, 1);
  for (const unsigned threads : {2u, 3u, 8u, 32u}) {
    const ClusterResult many = dbscan_parallel(f.table, f.minpts, threads);
    // Bitwise identical: the smallest-root border rule and id-ordered
    // renumbering remove all scheduling nondeterminism.
    EXPECT_EQ(one.labels, many.labels) << threads << " threads";
    EXPECT_EQ(one.num_clusters, many.num_clusters);
  }
}

TEST(ParallelDbscan, RepeatedRunsIdentical) {
  const Fixture f(0, 0.5f, 8);
  const ClusterResult a = dbscan_parallel(f.table, f.minpts, 8);
  const ClusterResult b = dbscan_parallel(f.table, f.minpts, 8);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(ParallelDbscan, RejectsInvalidMinpts) {
  const Fixture f(0, 0.3f, 4, 100);
  EXPECT_THROW(dbscan_parallel(f.table, 0), std::invalid_argument);
}

TEST(ParallelDbscan, AllNoiseWhenMinptsHuge) {
  const Fixture f(0, 0.2f, 4, 500);
  const ClusterResult r = dbscan_parallel(f.table, 100000, 4);
  EXPECT_EQ(r.num_clusters, 0);
  EXPECT_EQ(r.noise_count(), f.points.size());
}

}  // namespace
}  // namespace hdbscan
