// The headline correctness property: HYBRID-DBSCAN (GPU neighbor table +
// host DBSCAN over T) must produce clusterings equivalent to the reference
// sequential R-tree DBSCAN, across datasets, eps, and minpts.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "core/hybrid_dbscan.hpp"
#include "data/datasets.hpp"
#include "data/generators.hpp"
#include "dbscan/cluster_compare.hpp"
#include "dbscan/dbscan.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

/// Builds an input-order neighbor table (oracle for the comparator).
NeighborTable input_order_table(std::span<const Point2> points, float eps) {
  const GridIndex index = build_grid_index(points, eps);
  NeighborTable table(points.size());
  std::vector<PointId> neighbors;
  std::vector<NeighborPair> pairs;
  for (PointId i = 0; i < points.size(); ++i) {
    // Query with the original point; translate ids back to input order.
    grid_query(index, points[i], eps, neighbors);
    pairs.clear();
    for (const PointId v : neighbors) {
      pairs.push_back({i, index.original_ids[v]});
    }
    table.append_sorted_batch(pairs);
  }
  return table;
}

class HybridEquivalence
    : public ::testing::TestWithParam<std::tuple<int, float, int>> {};

TEST_P(HybridEquivalence, MatchesReferenceImplementation) {
  const auto [family, eps, minpts] = GetParam();
  const std::size_t n = 3000;
  const std::vector<Point2> points =
      family == 0   ? data::generate_uniform(n, 61, 10.0f, 10.0f)
      : family == 1 ? data::generate_space_weather(
                          n, 62, {.width = 10.0f, .height = 10.0f})
                    : data::generate_sky_survey(
                          n, 63, {.width = 10.0f, .height = 10.0f});

  cudasim::Device dev({}, fast_options());
  const ClusterResult hybrid = hybrid_dbscan(dev, points, eps, minpts);
  const ClusterResult reference = dbscan_rtree(points, eps, minpts);

  const NeighborTable oracle = input_order_table(points, eps);
  const auto outcome =
      compare_clusterings(hybrid, reference, oracle, minpts);
  EXPECT_TRUE(outcome.equivalent)
      << "family=" << family << " eps=" << eps << " minpts=" << minpts
      << ": " << outcome.diagnostic;
  EXPECT_EQ(hybrid.num_clusters, reference.num_clusters);
  EXPECT_EQ(hybrid.noise_count(), reference.noise_count());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HybridEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.15f, 0.4f, 0.8f),
                       ::testing::Values(2, 4, 16)));

TEST(HybridDbscan, TimingsArePopulated) {
  const auto points = data::make_dataset("SDSS1", 5000);
  cudasim::Device dev({}, fast_options());
  HybridTimings timings;
  hybrid_dbscan(dev, points, 0.3f, 4, &timings);
  EXPECT_GT(timings.index_seconds, 0.0);
  EXPECT_GT(timings.gpu_table_seconds, 0.0);
  EXPECT_GT(timings.dbscan_seconds, 0.0);
  EXPECT_GE(timings.total_seconds, timings.index_seconds +
                                       timings.gpu_table_seconds +
                                       timings.dbscan_seconds - 1e-6);
  EXPECT_GT(timings.build_report.total_pairs, 0u);
}

TEST(HybridDbscan, LabelsAreInInputOrder) {
  // Two clumps placed so the grid reorders them; labels must still line up
  // with the input ordering.
  std::vector<Point2> points;
  Xoshiro256 rng(64);
  for (int i = 0; i < 50; ++i) {  // clump B first in input, high coords
    points.push_back({9.0f + rng.uniform(0.0f, 0.2f),
                      9.0f + rng.uniform(0.0f, 0.2f)});
  }
  for (int i = 0; i < 50; ++i) {
    points.push_back({rng.uniform(0.0f, 0.2f), rng.uniform(0.0f, 0.2f)});
  }
  cudasim::Device dev({}, fast_options());
  const ClusterResult r = hybrid_dbscan(dev, points, 0.3f, 4);
  EXPECT_EQ(r.num_clusters, 2);
  for (int i = 1; i < 50; ++i) {
    EXPECT_EQ(r.labels[i], r.labels[0]);
    EXPECT_EQ(r.labels[50 + i], r.labels[50]);
  }
  EXPECT_NE(r.labels[0], r.labels[50]);
}

TEST(HybridDbscan, ReusedTableMatchesFreshRunsAcrossMinpts) {
  // Fix eps, sweep minpts off one table (S3 semantics): every result must
  // equal a fresh hybrid run with the same parameters.
  const auto points = data::generate_space_weather(
      2000, 65, {.width = 10.0f, .height = 10.0f});
  const float eps = 0.4f;
  cudasim::Device dev({}, fast_options());

  const GridIndex index = build_grid_index(points, eps);
  NeighborTableBuilder builder(dev);
  const NeighborTable table = builder.build(index, eps);
  const NeighborTable oracle = input_order_table(points, eps);

  for (const int minpts : {2, 4, 8, 32, 128}) {
    const ClusterResult from_reuse =
        unmap_labels(dbscan_neighbor_table(table, minpts), index.original_ids);
    const ClusterResult fresh = hybrid_dbscan(dev, points, eps, minpts);
    const auto outcome =
        compare_clusterings(from_reuse, fresh, oracle, minpts);
    EXPECT_TRUE(outcome.equivalent) << "minpts=" << minpts << ": "
                                    << outcome.diagnostic;
  }
}

}  // namespace
}  // namespace hdbscan
