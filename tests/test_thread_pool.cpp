#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hdbscan {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequested) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRespectsRange) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(100, 200, [&](std::size_t i) {
    EXPECT_GE(i, 100u);
    EXPECT_LT(i, 200u);
    ++count;
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(5, 5, [&](std::size_t) { ++count; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPool, ParallelForSingleIteration) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 50) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForWithExplicitGrain) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(0, 1000, [&](std::size_t i) { sum += static_cast<long>(i); },
                    /*grain=*/7);
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] { done++; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(0, 64, [&](std::size_t) { ++count; }, 1);
  EXPECT_EQ(count.load(), 64);
}

TEST(GlobalPool, IsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1u);
}

}  // namespace
}  // namespace hdbscan
