#include "dbscan/atomic_union_find.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dbscan/union_find.hpp"

namespace hdbscan {
namespace {

TEST(AtomicUnionFind, BasicUniteAndFind) {
  AtomicUnionFind uf(8);
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(2, 1));
  EXPECT_TRUE(uf.connected(1, 2));
  EXPECT_FALSE(uf.connected(1, 3));
}

TEST(AtomicUnionFind, SmallestIdBecomesRoot) {
  AtomicUnionFind uf(10);
  uf.unite(7, 3);
  EXPECT_EQ(uf.find(7), 3u);
  uf.unite(3, 9);
  EXPECT_EQ(uf.find(9), 3u);
  uf.unite(1, 9);
  EXPECT_EQ(uf.find(7), 1u);  // 1 takes over the whole component
}

TEST(AtomicUnionFind, MatchesSequentialUnionFind) {
  Xoshiro256 rng(17);
  const std::uint32_t n = 500;
  AtomicUnionFind atomic_uf(n);
  UnionFind seq_uf(n);
  for (int step = 0; step < 1000; ++step) {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    const auto b = static_cast<std::uint32_t>(rng.below(n));
    atomic_uf.unite(a, b);
    seq_uf.unite(a, b);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; j += 7) {
      EXPECT_EQ(atomic_uf.connected(i, j), seq_uf.connected(i, j));
    }
  }
}

TEST(AtomicUnionFind, ConcurrentUnionsProduceCorrectComponents) {
  // 4 threads unite disjoint chain segments that ultimately form rings;
  // the final components must be exact regardless of interleaving.
  const std::uint32_t n = 40000;
  AtomicUnionFind uf(n);
  auto worker = [&](std::uint32_t offset) {
    // Chain i -> i+4 within the same residue class (mod 4).
    for (std::uint32_t i = offset; i + 4 < n; i += 4) {
      uf.unite(i, i + 4);
    }
  };
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < 4; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  // Each residue class is one component rooted at its smallest element.
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(uf.find(i), i % 4);
  }
}

TEST(AtomicUnionFind, ConcurrentCrossUnions) {
  // All threads hammer the same elements: result must still be one
  // component with the smallest id as root.
  const std::uint32_t n = 1000;
  AtomicUnionFind uf(n);
  Xoshiro256 seed_rng(5);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&uf, rng = seed_rng.split()]() mutable {
      for (int step = 0; step < 5000; ++step) {
        const auto a = static_cast<std::uint32_t>(rng.below(1000));
        const auto b = static_cast<std::uint32_t>(rng.below(1000));
        uf.unite(a, b);
      }
      // Stitch everything to be safe: the test checks full connectivity.
      for (std::uint32_t i = 1; i < 1000; ++i) uf.unite(0, i);
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(uf.find(i), 0u);
}

}  // namespace
}  // namespace hdbscan
