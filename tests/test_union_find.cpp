#include "dbscan/union_find.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include <vector>

namespace hdbscan {
namespace {

TEST(UnionFind, SingletonsInitially) {
  UnionFind uf(10);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
}

TEST(UnionFind, UniteMergesAndReportsNewness) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.set_size(0), 2u);
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.connected(0, 3));
  EXPECT_EQ(uf.set_size(3), 4u);
  EXPECT_FALSE(uf.connected(0, 4));
}

TEST(UnionFind, ChainCollapsesToOneRoot) {
  const std::uint32_t n = 1000;
  UnionFind uf(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) uf.unite(i, i + 1);
  const std::uint32_t root = uf.find(0);
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(uf.find(i), root);
  EXPECT_EQ(uf.set_size(0), n);
}

TEST(UnionFind, RandomUnionsMatchNaiveModel) {
  Xoshiro256 rng(3);
  const std::uint32_t n = 200;
  UnionFind uf(n);
  // Naive model: component id per element, relabel on union.
  std::vector<std::uint32_t> model(n);
  for (std::uint32_t i = 0; i < n; ++i) model[i] = i;
  for (int step = 0; step < 300; ++step) {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    const auto b = static_cast<std::uint32_t>(rng.below(n));
    uf.unite(a, b);
    const std::uint32_t from = model[b], to = model[a];
    for (auto& m : model) {
      if (m == from) m = to;
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      EXPECT_EQ(uf.connected(i, j), model[i] == model[j]);
    }
  }
}

}  // namespace
}  // namespace hdbscan
