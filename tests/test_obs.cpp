// Tracer, metrics registry, and exporter tests. The tracer and registry
// are process-wide singletons, so every test re-enables (which clears
// state) or uses test-unique metric names.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace hdbscan::obs {
namespace {

#if !defined(HDBSCAN_TRACE_DISABLED)

TEST(Tracer, DisabledRecordsNothing) {
  Tracer& t = Tracer::global();
  t.enable();
  t.disable();
  TRACE_SPAN("test", "ignored");
  TRACE_INSTANT("test", "ignored");
  TRACE_COUNTER("test", "ignored", 1.0);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(Tracer, SpanCarriesDurationAndTrack) {
  Tracer& t = Tracer::global();
  t.enable();
  set_thread_track(kHostPid, "test-main");
  {
    TRACE_SPAN("test", "scope %d", 42);
  }
  t.disable();
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventType::kSpan);
  EXPECT_STREQ(events[0].name, "scope 42");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_EQ(events[0].pid, kHostPid);
  EXPECT_GE(events[0].dur_us, 0.0);
  EXPECT_LT(events[0].model_dur_us, 0.0);  // no modeled time advanced
}

TEST(Tracer, ModeledAdvanceProducesMirrorDuration) {
  Tracer& t = Tracer::global();
  t.enable();
  {
    TRACE_SPAN("test", "modeled");
    modeled_advance(0.25);
  }
  t.disable();
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].model_dur_us, 250000.0, 1e-6);
}

TEST(Tracer, EnableClearsPreviousRun) {
  Tracer& t = Tracer::global();
  t.enable();
  TRACE_INSTANT("test", "first run");
  t.enable();  // restart: the old event must be gone
  TRACE_INSTANT("test", "second run");
  t.disable();
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "second run");
}

TEST(Tracer, SnapshotSortedAcrossThreads) {
  Tracer& t = Tracer::global();
  t.enable();
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([w] {
      set_thread_track(device_pid(static_cast<std::uint32_t>(w)), "worker");
      for (int i = 0; i < 50; ++i) TRACE_INSTANT("test", "w%d i%d", w, i);
    });
  }
  for (auto& th : workers) th.join();
  t.disable();
  const auto events = t.snapshot();
  EXPECT_EQ(events.size(), 200u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(Tracer, RingKeepsOldestAndCountsDropped) {
  Tracer& t = Tracer::global();
  t.set_thread_capacity(8);
  t.enable();
  for (int i = 0; i < 20; ++i) TRACE_INSTANT("test", "i%d", i);
  t.disable();
  const auto events = t.snapshot();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_STREQ(events[0].name, "i0");  // oldest kept
  EXPECT_EQ(t.dropped(), 12u);
  t.set_thread_capacity(16384);
  t.enable();  // reallocate rings at the default capacity for later tests
  t.disable();
}

TEST(Registry, CounterGaugeHistogramRoundTrip) {
  Registry& r = Registry::global();
  Counter& c = r.counter("test_rt_counter", "case=a");
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4u);
  EXPECT_EQ(&c, &r.counter("test_rt_counter", "case=a"));  // stable address

  Gauge& g = r.gauge("test_rt_gauge");
  g.set(2.5);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);

  Histogram& h = r.histogram("test_rt_hist", "", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 105.5);
}

TEST(Registry, KindMismatchThrows) {
  Registry& r = Registry::global();
  r.counter("test_kind_clash");
  EXPECT_THROW(r.gauge("test_kind_clash"), std::logic_error);
  EXPECT_THROW(r.histogram("test_kind_clash"), std::logic_error);
}

TEST(Registry, SameNameDifferentLabelsAreDistinct) {
  Registry& r = Registry::global();
  r.counter("test_labeled", "device=0").add(1);
  r.counter("test_labeled", "device=1").add(2);
  EXPECT_EQ(r.counter("test_labeled", "device=0").value(), 1u);
  EXPECT_EQ(r.counter("test_labeled", "device=1").value(), 2u);
}

TEST(Registry, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Registry, ExpositionFormats) {
  Registry& r = Registry::global();
  r.counter("test_expo_counter", "kind=x").add(7);
  const std::string text = r.text();
  EXPECT_NE(text.find("test_expo_counter{kind=x} 7"), std::string::npos);
  const std::string json = r.json();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"test_expo_counter\""), std::string::npos);
}

TEST(Histogram, QuantileEmptyAndClamped) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram reports 0
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(100.0);
  // q outside [0, 1] clamps rather than misbehaving.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
  // Mass in the +inf bucket clamps to the last finite bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h({10.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  // All mass sits in [0, 10]: the estimate is linear in q across it.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.9), 9.0, 1e-9);
}

TEST(Histogram, QuantileCrossesBuckets) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(1.5);
  h.observe(1.5);
  // rank 1 lands exactly on bucket [0,1]'s cumulative edge -> 1.0.
  EXPECT_NEAR(h.quantile(0.25), 1.0, 1e-9);
  // rank 3 is 2/3 of the way through bucket (1,2].
  EXPECT_NEAR(h.quantile(0.75), 1.0 + 2.0 / 3.0, 1e-9);
}

TEST(Registry, HistogramExpositionAndResetBetweenRuns) {
  Registry& r = Registry::global();
  Histogram& h = r.histogram("test_expo_hist", "stage=build", {0.5, 1.5});
  h.observe(0.1);
  h.observe(1.0);
  h.observe(9.0);
  const std::string text = r.text();
  EXPECT_NE(text.find("test_expo_hist{stage=build}_count 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_hist{stage=build}_sum 10.1"),
            std::string::npos);
  const std::string json = r.json();
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 0.5, \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 1.5, \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": \"inf\", \"count\": 1}"), std::string::npos);

  // reset_values between serve runs: registrations (and the addresses
  // call sites cached) survive, every value zeroes.
  r.reset_values();
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_NE(r.json().find("{\"le\": 0.5, \"count\": 0}"), std::string::npos);
  EXPECT_EQ(&h, &r.histogram("test_expo_hist", "stage=build"));
  h.observe(0.2);
  EXPECT_EQ(h.quantile(1.0), 0.5);
}

TEST(Registry, JsonEscapesLabelText) {
  Registry& r = Registry::global();
  r.counter("test_escape", "tenant=\"a\\b\"").add(1);
  const std::string json = r.json();
  EXPECT_NE(json.find("tenant=\\\"a\\\\b\\\""), std::string::npos);
}

TEST(Export, WriteValidateRoundTrip) {
  Tracer& t = Tracer::global();
  t.enable();
  set_thread_track(kHostPid, "main");
  {
    TRACE_SPAN("host", "host work");
  }
  std::thread dev([] {
    set_thread_track(device_pid(0), "stream0");
    TRACE_SPAN("kernel", "kernel work");
    modeled_advance(0.001);
    TRACE_INSTANT("fault", "transient_kernel d0");
  });
  dev.join();
  t.disable();

  const std::string path = "test_obs_roundtrip.json";
  std::string error;
  ASSERT_TRUE(write_chrome_trace(path, &error)) << error;

  const TraceValidation v = validate_trace_file(path);
  EXPECT_TRUE(v.ok) << v.error;
  // Two wall-clock spans plus the kernel span's modeled-time mirror.
  EXPECT_EQ(v.complete_spans, 3u);
  EXPECT_EQ(v.instants, 1u);
  ASSERT_EQ(v.device_pids.size(), 1u);
  EXPECT_EQ(v.device_pids[0], device_pid(0));
  EXPECT_EQ(v.device_span_tracks, 1u);
  EXPECT_EQ(v.modeled_span_events, 1u);  // only the kernel advanced a model
  EXPECT_EQ(v.host_spans, 1u);
  EXPECT_TRUE(v.has_fault_instant);
  std::remove(path.c_str());
}

TEST(Export, ValidateRejectsGarbage) {
  const std::string path = "test_obs_garbage.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"traceEvents\": [", f);  // truncated document
  std::fclose(f);
  const TraceValidation v = validate_trace_file(path);
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(v.error.empty());
  std::remove(path.c_str());
}

#endif  // !HDBSCAN_TRACE_DISABLED

TraceEvent make_span(const char* cat, std::uint32_t pid, std::uint32_t tid,
                     double ts_us, double dur_us, double model_dur_us = -1.0) {
  TraceEvent e;
  std::snprintf(e.name, sizeof(e.name), "%s", cat);
  e.category = cat;
  e.type = EventType::kSpan;
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.model_dur_us = model_dur_us;
  return e;
}

TEST(Profile, EmptySnapshot) {
  const TraceProfile p = profile_trace({});
  EXPECT_DOUBLE_EQ(p.overlap_ratio, 0.0);
  EXPECT_TRUE(p.phases.empty());
}

TEST(Profile, SerialRunHasOverlapOne) {
  std::vector<TraceEvent> ev;
  ev.push_back(make_span("build", kHostPid, 0, 0.0, 1e6));
  ev.push_back(make_span("dbscan", kHostPid, 0, 1e6, 1e6));
  const TraceProfile p = profile_trace(ev);
  EXPECT_NEAR(p.wall_span_seconds, 2.0, 1e-9);
  EXPECT_NEAR(p.busy_seconds, 2.0, 1e-9);
  EXPECT_NEAR(p.coverage_seconds, 2.0, 1e-9);
  EXPECT_NEAR(p.overlap_ratio, 1.0, 1e-9);
  ASSERT_EQ(p.phases.size(), 2u);
}

TEST(Profile, TwoTracksFullyOverlappedIsTwo) {
  std::vector<TraceEvent> ev;
  ev.push_back(make_span("build", kHostPid, 0, 0.0, 1e6));
  ev.push_back(make_span("dbscan", kHostPid, 1, 0.0, 1e6));
  const TraceProfile p = profile_trace(ev);
  EXPECT_NEAR(p.overlap_ratio, 2.0, 1e-9);
}

TEST(Profile, NestedSpansDoNotDoubleCountBusy) {
  // A kernel span nested in its batch span on the same track: busy time
  // for the track is the union, not the sum.
  std::vector<TraceEvent> ev;
  ev.push_back(make_span("batch", device_pid(0), 0, 0.0, 1e6));
  ev.push_back(make_span("kernel", device_pid(0), 0, 2e5, 4e5));
  const TraceProfile p = profile_trace(ev);
  EXPECT_NEAR(p.busy_seconds, 1.0, 1e-9);
  EXPECT_NEAR(p.overlap_ratio, 1.0, 1e-9);
}

TEST(Profile, ModeledSecondsRollUpPerCategory) {
  std::vector<TraceEvent> ev;
  ev.push_back(make_span("kernel", device_pid(0), 0, 0.0, 1e6, 5e5));
  ev.push_back(make_span("kernel", device_pid(0), 0, 1e6, 1e6, 2.5e5));
  const TraceProfile p = profile_trace(ev);
  ASSERT_EQ(p.phases.size(), 1u);
  EXPECT_EQ(p.phases[0].category, "kernel");
  EXPECT_EQ(p.phases[0].spans, 2u);
  EXPECT_NEAR(p.phases[0].modeled_seconds, 0.75, 1e-9);
}

}  // namespace
}  // namespace hdbscan::obs
