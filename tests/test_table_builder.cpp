// End-to-end batched construction of T on the simulated device must equal
// the host-built oracle, across batch counts, stream counts, kernels, and
// under deliberately broken estimates (overflow-recovery path).
#include "core/neighbor_table_builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cudasim/buffer_pool.hpp"
#include "data/generators.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

void expect_tables_equal(const NeighborTable& got, const NeighborTable& want) {
  ASSERT_EQ(got.num_points(), want.num_points());
  EXPECT_EQ(got.total_pairs(), want.total_pairs());
  for (PointId i = 0; i < got.num_points(); ++i) {
    std::vector<PointId> a(got.neighbors(i).begin(), got.neighbors(i).end());
    std::vector<PointId> b(want.neighbors(i).begin(), want.neighbors(i).end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << "neighborhood mismatch at point " << i;
  }
}

TEST(TableBuilder, MatchesHostOracleDefaultPolicy) {
  const auto points = data::generate_space_weather(4000, 51);
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable oracle = build_neighbor_table_host(index, eps);
  cudasim::Device dev({}, fast_options());
  BuildReport report;
  // A denser sample than the paper's 1% keeps the estimate tight enough on
  // this small skewed input that no overflow split should ever trigger.
  BatchPolicy policy;
  policy.sample_fraction = 0.2;
  NeighborTableBuilder builder(dev, policy);
  const NeighborTable table = builder.build(index, eps, &report);
  expect_tables_equal(table, oracle);
  EXPECT_EQ(report.total_pairs, oracle.total_pairs());
  EXPECT_EQ(report.plan.num_batches, 3u);  // variable-buffer path
  EXPECT_EQ(report.overflow_splits, 0u);
  EXPECT_GT(report.kernel_modeled_seconds, 0.0);
}

class TableBuilderStreams : public ::testing::TestWithParam<unsigned> {};

TEST_P(TableBuilderStreams, MatchesOracleForAnyStreamCount) {
  const auto points = data::generate_sky_survey(3000, 52);
  const float eps = 0.35f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable oracle = build_neighbor_table_host(index, eps);
  cudasim::Device dev({}, fast_options());
  BatchPolicy policy;
  policy.num_streams = GetParam();
  NeighborTableBuilder builder(dev, policy);
  expect_tables_equal(builder.build(index, eps), oracle);
}

INSTANTIATE_TEST_SUITE_P(Streams, TableBuilderStreams,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(TableBuilder, ManyBatchesViaStaticPolicy) {
  const auto points = data::generate_space_weather(3000, 53);
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable oracle = build_neighbor_table_host(index, eps);
  cudasim::Device dev({}, fast_options());
  BatchPolicy policy;
  policy.static_threshold_pairs = 1;  // always static
  policy.static_buffer_pairs = oracle.total_pairs() / 10 + 1;
  policy.sample_fraction = 1.0;       // exact a_b
  BuildReport report;
  NeighborTableBuilder builder(dev, policy);
  expect_tables_equal(builder.build(index, eps, &report), oracle);
  EXPECT_GE(report.plan.num_batches, 10u);
}

TEST(TableBuilder, OverflowRecoveryViaSplitting) {
  // Lie to the planner: claim the result is 50x smaller than reality. The
  // per-batch buffers overflow and the builder must recover by splitting
  // batches instead of crashing or dropping pairs.
  const auto points = data::generate_space_weather(3000, 54);
  const float eps = 0.4f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable oracle = build_neighbor_table_host(index, eps);
  cudasim::Device dev({}, fast_options());
  BatchPolicy policy;
  policy.estimated_total_override = oracle.total_pairs() / 50 + 1;
  BuildReport report;
  NeighborTableBuilder builder(dev, policy);
  expect_tables_equal(builder.build(index, eps, &report), oracle);
  EXPECT_GT(report.overflow_splits, 0u);
  EXPECT_GT(report.batches_run, report.plan.num_batches);
}

TEST(TableBuilder, SharedKernelSingleBatch) {
  const auto points = data::generate_space_weather(2500, 55);
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable oracle = build_neighbor_table_host(index, eps);
  cudasim::Device dev({}, fast_options());
  BatchPolicy policy;
  policy.use_shared_kernel = true;
  policy.num_streams = 1;      // variable path -> 1 batch
  policy.sample_fraction = 1.0;  // exact estimate: no overflow possible
  BuildReport report;
  NeighborTableBuilder builder(dev, policy);
  expect_tables_equal(builder.build(index, eps, &report), oracle);
  EXPECT_TRUE(report.used_shared_kernel);
}

TEST(TableBuilder, DeviceMemoryFullyReleased) {
  const auto points = data::generate_sky_survey(2000, 56);
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);
  cudasim::Device dev({}, fast_options());
  {
    NeighborTableBuilder builder(dev);
    builder.build(index, eps);
  }
  // Scratch is cached in the device's pool across builds; after a trim the
  // device must be back to an empty footprint.
  dev.pool().trim();
  EXPECT_EQ(dev.used_global_bytes(), 0u);
}

TEST(TableBuilder, TinyDeviceMemoryForcesManySmallBatches) {
  // 2 MB of "GPU" memory: index + three tiny buffers. Exercises the
  // device-capacity cap in the planner on the legacy pair pipeline (a pair
  // slot costs sink + sort scratch, so the cap bites hardest there).
  const auto points = data::generate_uniform(5000, 57, 10.0f, 10.0f);
  const float eps = 0.5f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable oracle = build_neighbor_table_host(index, eps);
  cudasim::DeviceConfig cfg;
  cfg.global_mem_bytes = 2ull << 20;
  cudasim::Device dev(cfg, fast_options());
  BatchPolicy policy;
  policy.build_mode = TableBuildMode::kPairSort;
  BuildReport report;
  NeighborTableBuilder builder(dev, policy);
  expect_tables_equal(builder.build(index, eps, &report), oracle);
  EXPECT_GT(report.plan.num_batches, 3u);
}

TEST(TableBuilder, TinyDeviceMemoryForcesManySmallBatchesCsr) {
  // CSR slots are bare PointIds (no key, no sort scratch), so the same
  // dataset needs ~4x less memory per slot; shrink the device further to
  // force the cap on the CSR path too.
  const auto points = data::generate_uniform(5000, 57, 10.0f, 10.0f);
  const float eps = 0.5f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable oracle = build_neighbor_table_host(index, eps);
  cudasim::DeviceConfig cfg;
  cfg.global_mem_bytes = 768ull << 10;
  cudasim::Device dev(cfg, fast_options());
  BuildReport report;
  NeighborTableBuilder builder(dev);
  expect_tables_equal(builder.build(index, eps, &report), oracle);
  EXPECT_EQ(report.build_mode, TableBuildMode::kCsrTwoPass);
  EXPECT_GT(report.plan.num_batches, 3u);
}

TEST(TableBuilder, EstimateSecondsAreNegligible) {
  // Paper: the estimation kernel "executes once in negligible time".
  const auto points = data::generate_sky_survey(20000, 58);
  const float eps = 0.25f;
  const GridIndex index = build_grid_index(points, eps);
  cudasim::Device dev({}, fast_options());
  BuildReport report;
  NeighborTableBuilder builder(dev);
  builder.build(index, eps, &report);
  EXPECT_LT(report.estimate_seconds, 0.25 * report.table_seconds);
}

}  // namespace
}  // namespace hdbscan
