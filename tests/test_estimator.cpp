#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include "data/generators.hpp"
#include "dbscan/neighbor_table.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

TEST(Estimator, FullFractionIsExact) {
  const auto points = data::generate_sky_survey(2000, 41);
  const float eps = 0.3f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable table = build_neighbor_table_host(index, eps);
  cudasim::Device dev({}, fast_options());
  const auto est =
      estimate_result_size(dev, GridView::of(index), eps, /*fraction=*/1.0);
  EXPECT_EQ(est.sample_stride, 1u);
  EXPECT_EQ(est.sampled_pairs, table.total_pairs());
  EXPECT_EQ(est.estimated_total, table.total_pairs());
}

TEST(Estimator, OnePercentSampleWithinTolerance) {
  // 1% sampling over spatially sorted data: the paper relies on this being
  // accurate enough that alpha = 5-10% covers the error.
  const auto points = data::generate_space_weather(60000, 42);
  const float eps = 0.25f;
  const GridIndex index = build_grid_index(points, eps);
  const NeighborTable table = build_neighbor_table_host(index, eps);
  cudasim::Device dev({}, fast_options());
  const auto est =
      estimate_result_size(dev, GridView::of(index), eps, /*fraction=*/0.01);
  EXPECT_EQ(est.sample_stride, 100u);
  const auto actual = static_cast<double>(table.total_pairs());
  EXPECT_NEAR(static_cast<double>(est.estimated_total), actual, 0.15 * actual);
}

TEST(Estimator, TinyDatasetFallsBackToCensus) {
  const auto points = data::generate_uniform(50, 43, 3.0f, 3.0f);
  const GridIndex index = build_grid_index(points, 0.5f);
  cudasim::Device dev({}, fast_options());
  const auto est = estimate_result_size(dev, GridView::of(index), 0.5f, 0.01);
  // stride capped at |D|: at least one sample point.
  EXPECT_LE(est.sample_stride, 50u);
  EXPECT_GT(est.sampled_pairs, 0u);
}

TEST(Estimator, RejectsBadFraction) {
  const auto points = data::generate_uniform(100, 44, 3.0f, 3.0f);
  const GridIndex index = build_grid_index(points, 0.5f);
  cudasim::Device dev({}, fast_options());
  EXPECT_THROW(estimate_result_size(dev, GridView::of(index), 0.5f, 0.0),
               std::invalid_argument);
  EXPECT_THROW(estimate_result_size(dev, GridView::of(index), 0.5f, 1.5),
               std::invalid_argument);
}

TEST(Estimator, GrowsWithEps) {
  const auto points = data::generate_sky_survey(20000, 45);
  cudasim::Device dev({}, fast_options());
  std::uint64_t prev = 0;
  for (const float eps : {0.1f, 0.3f, 0.6f}) {
    const GridIndex index = build_grid_index(points, eps);
    const auto est =
        estimate_result_size(dev, GridView::of(index), eps, 0.01);
    EXPECT_GT(est.estimated_total, prev);
    prev = est.estimated_total;
  }
}

}  // namespace
}  // namespace hdbscan
