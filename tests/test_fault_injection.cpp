// Scripted fault injection (cudasim::FaultInjector) and the consumers'
// degradation ladder: retry transient faults, shrink on allocation
// failure, fail work over from lost devices, and fall back to the host —
// all without ever producing a wrong table.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/neighbor_table_builder.hpp"
#include "core/pipeline.hpp"
#include "core/reuse.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/error.hpp"
#include "cudasim/fault.hpp"
#include "cudasim/kernel.hpp"
#include "data/generators.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

cudasim::SimulationOptions faulted_options(
    cudasim::FaultPlan plan,
    std::shared_ptr<cudasim::FaultInjector>* injector_out = nullptr) {
  cudasim::SimulationOptions opt = fast_options();
  auto injector = std::make_shared<cudasim::FaultInjector>(std::move(plan));
  if (injector_out != nullptr) *injector_out = injector;
  opt.fault = std::move(injector);
  return opt;
}

/// Byte-level equality after canonicalization: same neighborhoods, however
/// the batches were split, retried or failed over.
void expect_identical(NeighborTable got, NeighborTable want) {
  got.canonicalize();
  want.canonicalize();
  EXPECT_EQ(got.total_pairs(), want.total_pairs());
  EXPECT_TRUE(got.identical_to(want));
}

struct Scenario {
  std::vector<Point2> points;
  GridIndex index;
  NeighborTable oracle;
  float eps = 0.0f;
};

Scenario make_scenario(std::size_t n, float eps) {
  Scenario s;
  s.eps = eps;
  s.points = data::generate_space_weather(
      n, 77, {.width = 10.0f, .height = 10.0f});
  s.index = build_grid_index(s.points, eps);
  s.oracle = build_neighbor_table_host(s.index, eps);
  return s;
}

/// Deterministic single-context policy with enough batches that mid-build
/// faults reliably leave unfinished work behind.
BatchPolicy many_batch_policy(const Scenario& s, TableBuildMode mode) {
  BatchPolicy policy;
  policy.build_mode = mode;
  policy.num_streams = 1;
  policy.estimated_total_override = s.oracle.total_pairs();
  policy.static_threshold_pairs = 1;  // force the static-buffer path
  policy.static_buffer_pairs =
      std::max<std::uint64_t>(1, s.oracle.total_pairs() / 12);
  return policy;
}

// ---------------------------------------------------------------------------
// FaultInjector unit behavior through the Device hooks.
// ---------------------------------------------------------------------------

TEST(FaultInjector, OomFiresOnScriptedAllocOnly) {
  cudasim::FaultPlan plan;
  plan.oom_allocs = {2};
  cudasim::Device device({}, faulted_options(plan));
  cudasim::DeviceBuffer<int> first(device, 1024);  // alloc 1: fine
  EXPECT_THROW((void)cudasim::DeviceBuffer<int>(device, 1024),  // alloc 2
               cudasim::DeviceOutOfMemory);
  cudasim::DeviceBuffer<int> third(device, 1024);  // alloc 3: fine again
  EXPECT_EQ(device.metrics().injected_oom_faults, 1u);
  // The failed allocation consumed no capacity.
  EXPECT_EQ(device.used_global_bytes(), 2u * 1024u * sizeof(int));
}

TEST(FaultInjector, TransientLaunchFailsOnceBeforeAnyBlockRuns) {
  cudasim::FaultPlan plan;
  plan.transient_launches = {1};
  cudasim::Device device({}, faulted_options(plan));
  std::atomic<int> ran{0};
  auto body = [&](cudasim::ThreadCtx&) {
    ran.fetch_add(1, std::memory_order_relaxed);
  };
  EXPECT_THROW(cudasim::run_flat_kernel(device, 1, 32, body),
               cudasim::TransientKernelFault);
  EXPECT_EQ(ran.load(), 0);  // the faulted launch did no work
  cudasim::run_flat_kernel(device, 1, 32, body);  // re-issue succeeds
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(device.metrics().injected_transient_faults, 1u);
}

TEST(FaultInjector, DegradedPcieSlowsModeledTransfers) {
  std::vector<float> host(1 << 16);
  auto run = [&](cudasim::SimulationOptions opt) {
    cudasim::Device device({}, std::move(opt));
    cudasim::DeviceBuffer<float> buf(device, host.size());
    device.blocking_transfer(buf.device_data(), host.data(),
                             host.size() * sizeof(float),
                             /*to_device=*/true, /*pinned_host=*/false);
    return device.metrics();
  };
  const auto clean = run(fast_options());
  cudasim::FaultPlan plan;
  plan.degrade_from_transfer = 1;
  plan.degrade_factor = 4.0;
  const auto degraded = run(faulted_options(plan));
  EXPECT_EQ(clean.degraded_transfers, 0u);
  EXPECT_EQ(degraded.degraded_transfers, 1u);
  // 4x less bandwidth -> markedly more modeled transfer time.
  EXPECT_GT(degraded.transfer_seconds, 2.0 * clean.transfer_seconds);
}

TEST(FaultInjector, DeviceLossRefusesEveryLaterOp) {
  cudasim::FaultPlan plan;
  plan.lost_at_op = 2;
  std::shared_ptr<cudasim::FaultInjector> injector;
  cudasim::Device device({}, faulted_options(plan, &injector));
  cudasim::DeviceBuffer<int> survivor(device, 16);  // op 1: fine
  EXPECT_FALSE(device.lost());
  EXPECT_THROW((void)cudasim::DeviceBuffer<int>(device, 16),  // op 2: lost
               cudasim::DeviceLost);
  EXPECT_TRUE(device.lost());
  EXPECT_THROW(
      cudasim::run_flat_kernel(device, 1, 1, [](cudasim::ThreadCtx&) {}),
      cudasim::DeviceLost);
  std::vector<int> host(16);
  EXPECT_THROW(device.blocking_transfer(survivor.device_data(), host.data(),
                                        host.size() * sizeof(int), true,
                                        false),
               cudasim::DeviceLost);
  EXPECT_TRUE(device.metrics().device_lost);
  EXPECT_GE(device.metrics().refused_ops, 2u);
  EXPECT_GE(injector->ops(), 4u);
  // Cleanup still works on a lost device: freeing must not throw.
}

// ---------------------------------------------------------------------------
// NeighborTableBuilder under the ResiliencePolicy ladder.
// ---------------------------------------------------------------------------

TEST(ResilientBuild, TransientFaultsAreRetriedAndTableMatches) {
  const Scenario s = make_scenario(3000, 0.35f);
  cudasim::FaultPlan plan;
  plan.transient_launches = {2, 5};
  cudasim::Device device({}, faulted_options(plan));
  NeighborTableBuilder builder(
      device, many_batch_policy(s, TableBuildMode::kCsrTwoPass));
  BuildReport report;
  const NeighborTable table = builder.build(s.index, s.eps, &report);
  EXPECT_GE(report.transient_retries, 2u);
  EXPECT_TRUE(report.degraded());
  EXPECT_FALSE(report.used_host_fallback);
  EXPECT_EQ(device.metrics().injected_transient_faults, 2u);
  expect_identical(table, s.oracle);
}

TEST(ResilientBuild, MidBatchOomSplitsTheBatchAndRecovers) {
  const Scenario s = make_scenario(2500, 0.35f);
  // Pair mode checks its sort scratch out of the buffer pool, which only
  // allocates on the first batch (later batches reuse the cached block).
  // Alloc #6 is that first mid-batch scratch acquire: the pool is cold, so
  // the trim-and-retry frees nothing and the OOM reaches the ladder, which
  // splits the batch (half the pairs, half the scratch) instead of failing
  // the build.
  cudasim::FaultPlan plan;
  plan.oom_allocs = {6};
  cudasim::Device device({}, faulted_options(plan));
  NeighborTableBuilder builder(
      device, many_batch_policy(s, TableBuildMode::kPairSort));
  BuildReport report;
  const NeighborTable table = builder.build(s.index, s.eps, &report);
  EXPECT_GE(report.alloc_retries, 1u);
  EXPECT_EQ(device.metrics().injected_oom_faults, 1u);
  EXPECT_EQ(report.devices_lost, 0u);
  expect_identical(table, s.oracle);
}

TEST(ResilientBuild, SameSeedAndPlanReplayIdentically) {
  const Scenario s = make_scenario(2500, 0.35f);
  const cudasim::FaultPlan plan = cudasim::FaultPlan::randomized(42);
  const BatchPolicy policy =
      many_batch_policy(s, TableBuildMode::kCsrTwoPass);

  auto run = [&](BuildReport* report) {
    cudasim::SimulationOptions opt = faulted_options(plan);
    cudasim::Device device(cudasim::DeviceConfig{}, opt);
    BatchPolicy p = policy;
    p.resilience.host_fallback = true;  // survive whatever the plan stacks
    NeighborTableBuilder builder(device, p);
    return builder.build(s.index, s.eps, report);
  };
  BuildReport a_report;
  BuildReport b_report;
  NeighborTable a = run(&a_report);
  NeighborTable b = run(&b_report);

  // Deterministic accounting: the same plan on the same single-context
  // policy fires at the same ordinals both times.
  EXPECT_EQ(a_report.transient_retries, b_report.transient_retries);
  EXPECT_EQ(a_report.alloc_retries, b_report.alloc_retries);
  EXPECT_EQ(a_report.devices_lost, b_report.devices_lost);
  EXPECT_EQ(a_report.failover_batches, b_report.failover_batches);
  EXPECT_EQ(a_report.host_fallback_batches, b_report.host_fallback_batches);
  EXPECT_EQ(a_report.used_host_fallback, b_report.used_host_fallback);
  EXPECT_EQ(a_report.batches_run, b_report.batches_run);
  EXPECT_EQ(a_report.total_pairs, b_report.total_pairs);
  // And both degraded builds still produced the exact table.
  expect_identical(std::move(a), s.oracle);
  expect_identical(std::move(b), s.oracle);
}

TEST(ResilientBuild, TwoDeviceAcceptanceScenario) {
  // The PR's acceptance scenario: device 0 takes a transient kernel fault
  // and runs on degraded PCIe, device 1 is lost mid-build. The build must
  // complete without throwing, record the retries and the failover, and
  // produce a table byte-identical (canonicalized) to a fault-free build.
  const Scenario s = make_scenario(4000, 0.35f);
  const BatchPolicy policy =
      many_batch_policy(s, TableBuildMode::kCsrTwoPass);

  // Fault-free reference on the same 2-device topology.
  cudasim::Device ref0({}, fast_options());
  cudasim::Device ref1({}, fast_options());
  NeighborTableBuilder ref_builder({&ref0, &ref1}, policy);
  const NeighborTable reference = ref_builder.build(s.index, s.eps);

  cudasim::FaultPlan plan0;
  plan0.transient_launches = {4};
  plan0.degrade_from_transfer = 3;
  plan0.degrade_factor = 3.0;
  cudasim::FaultPlan plan1;
  plan1.lost_at_op = 25;  // after setup, well before its batches finish
  cudasim::Device dev0({}, faulted_options(plan0));
  cudasim::Device dev1({}, faulted_options(plan1));
  NeighborTableBuilder builder({&dev0, &dev1}, policy);
  BuildReport report;
  const NeighborTable table = builder.build(s.index, s.eps, &report);

  EXPECT_TRUE(report.degraded());
  EXPECT_GE(report.transient_retries, 1u);
  EXPECT_EQ(report.devices_lost, 1u);
  EXPECT_GE(report.failover_batches, 1u);
  EXPECT_FALSE(report.used_host_fallback);
  EXPECT_GT(dev0.metrics().degraded_transfers, 0u);
  EXPECT_TRUE(dev1.metrics().device_lost);
  expect_identical(table, reference);
  expect_identical(table, s.oracle);
}

TEST(ResilientBuild, AllDevicesLostFallsBackToHost) {
  const Scenario s = make_scenario(3000, 0.35f);
  BatchPolicy policy = many_batch_policy(s, TableBuildMode::kCsrTwoPass);
  policy.resilience.host_fallback = true;
  cudasim::FaultPlan plan0;
  plan0.lost_at_op = 20;
  cudasim::FaultPlan plan1;
  plan1.lost_at_op = 24;
  cudasim::Device dev0({}, faulted_options(plan0));
  cudasim::Device dev1({}, faulted_options(plan1));
  NeighborTableBuilder builder({&dev0, &dev1}, policy);
  BuildReport report;
  const NeighborTable table = builder.build(s.index, s.eps, &report);
  EXPECT_TRUE(report.used_host_fallback);
  EXPECT_EQ(report.devices_lost, 2u);
  expect_identical(table, s.oracle);
}

TEST(ResilientBuild, HostFallbackDisabledSurfacesDeviceLoss) {
  const Scenario s = make_scenario(3000, 0.35f);
  const BatchPolicy policy =
      many_batch_policy(s, TableBuildMode::kCsrTwoPass);  // fallback off
  cudasim::FaultPlan plan;
  plan.lost_at_op = 20;
  cudasim::Device device({}, faulted_options(plan));
  NeighborTableBuilder builder(device, policy);
  EXPECT_THROW((void)builder.build(s.index, s.eps), cudasim::DeviceLost);
  // Loss never leaks device memory: every buffer was released.
  EXPECT_EQ(device.used_global_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Pipelines keep going when one variant fails.
// ---------------------------------------------------------------------------

TEST(PipelineResilience, ContinuesAfterDeviceLossMidVariant) {
  const auto points = data::generate_space_weather(
      2000, 33, {.width = 10.0f, .height = 10.0f});
  PipelineOptions options;
  options.policy.num_streams = 1;

  // Probe run: measure how many device ops one variant consumes, so the
  // loss can be scripted to land inside variant 2 of 5.
  std::shared_ptr<cudasim::FaultInjector> probe;
  {
    cudasim::Device probe_device({},
                                 faulted_options(cudasim::FaultPlan{},
                                                 &probe));
    const std::vector<Variant> one{{0.3f, 4}};
    (void)run_multi_clustering(probe_device, points, one, options);
  }
  const std::uint64_t ops_per_variant = probe->ops();
  ASSERT_GT(ops_per_variant, 0u);

  cudasim::FaultPlan plan;
  plan.lost_at_op = ops_per_variant + 3;
  cudasim::Device device({}, faulted_options(plan));
  const std::vector<Variant> variants(5, Variant{0.3f, 4});
  const PipelineReport report =
      run_multi_clustering(device, points, variants, options);

  ASSERT_EQ(report.variants.size(), 5u);
  EXPECT_TRUE(report.variants[0].outcome.ok);
  EXPECT_FALSE(report.variants[0].outcome.host_fallback);
  EXPECT_FALSE(report.variants[1].outcome.ok);  // the device died here
  EXPECT_FALSE(report.variants[1].outcome.error.empty());
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_TRUE(report.variants[i].outcome.ok) << "variant " << i;
    EXPECT_TRUE(report.variants[i].outcome.host_fallback) << "variant " << i;
    // Identical parameters must keep producing identical clusterings.
    EXPECT_EQ(report.variants[i].num_clusters,
              report.variants[0].num_clusters);
    EXPECT_EQ(report.variants[i].noise_count,
              report.variants[0].noise_count);
  }
}

TEST(ReuseResilience, SweepSurvivesOneInvalidMinpts) {
  const auto points = data::generate_space_weather(
      1500, 9, {.width = 8.0f, .height = 8.0f});
  cudasim::Device device({}, fast_options());
  const std::vector<int> minpts{4, 0, 8};  // the middle one is invalid
  const ReuseReport report =
      cluster_minpts_sweep(device, points, 0.3f, minpts, 2);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_TRUE(report.outcomes[0].ok);
  EXPECT_FALSE(report.outcomes[1].ok);
  EXPECT_FALSE(report.outcomes[1].error.empty());
  EXPECT_TRUE(report.outcomes[2].ok);
  EXPECT_GE(report.variant_clusters[0], 0);
  EXPECT_GE(report.variant_clusters[2], 0);

  // An all-failing sweep still throws (single-variant callers keep their
  // exception).
  const std::vector<int> all_bad{0, 0};
  EXPECT_THROW(
      (void)cluster_minpts_sweep(device, points, 0.3f, all_bad, 2),
      std::invalid_argument);
}

}  // namespace
}  // namespace hdbscan
