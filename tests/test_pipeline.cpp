#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "data/generators.hpp"
#include "dbscan/cluster_compare.hpp"
#include "dbscan/neighbor_table.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {
namespace {

cudasim::SimulationOptions fast_options() {
  cudasim::SimulationOptions opt;
  opt.throttle_transfers = false;
  opt.throttle_pinned_alloc = false;
  opt.executor_threads = 2;
  return opt;
}

std::vector<Variant> test_variants() {
  return {{0.2f, 4}, {0.3f, 4}, {0.4f, 4}, {0.5f, 4}, {0.6f, 4}};
}

NeighborTable input_order_table(std::span<const Point2> points, float eps) {
  const GridIndex index = build_grid_index(points, eps);
  NeighborTable table(points.size());
  std::vector<PointId> neighbors;
  std::vector<NeighborPair> pairs;
  for (PointId i = 0; i < points.size(); ++i) {
    grid_query(index, points[i], eps, neighbors);
    pairs.clear();
    for (const PointId v : neighbors) {
      pairs.push_back({i, index.original_ids[v]});
    }
    table.append_sorted_batch(pairs);
  }
  return table;
}

TEST(Pipeline, PipelinedMatchesNonPipelined) {
  const auto points = data::generate_space_weather(
      2500, 71, {.width = 10.0f, .height = 10.0f});
  const auto variants = test_variants();
  cudasim::Device dev({}, fast_options());

  PipelineOptions seq_opts;
  seq_opts.pipelined = false;
  seq_opts.keep_results = true;
  const PipelineReport seq =
      run_multi_clustering(dev, points, variants, seq_opts);

  PipelineOptions pipe_opts;
  pipe_opts.pipelined = true;
  pipe_opts.keep_results = true;
  const PipelineReport pipe =
      run_multi_clustering(dev, points, variants, pipe_opts);

  ASSERT_EQ(seq.results.size(), variants.size());
  ASSERT_EQ(pipe.results.size(), variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const NeighborTable oracle = input_order_table(points, variants[i].eps);
    const auto outcome = compare_clusterings(
        seq.results[i], pipe.results[i], oracle, variants[i].minpts);
    EXPECT_TRUE(outcome.equivalent)
        << "variant " << i << ": " << outcome.diagnostic;
  }
}

TEST(Pipeline, TimingsPopulatedPerVariant) {
  const auto points = data::generate_sky_survey(
      2000, 72, {.width = 10.0f, .height = 10.0f});
  const auto variants = test_variants();
  cudasim::Device dev({}, fast_options());
  const PipelineReport report =
      run_multi_clustering(dev, points, variants, {});
  ASSERT_EQ(report.variants.size(), variants.size());
  for (const VariantTiming& t : report.variants) {
    EXPECT_GT(t.table_seconds, 0.0);
    EXPECT_GT(t.dbscan_seconds, 0.0);
  }
  EXPECT_GT(report.total_seconds, 0.0);
  // Without keep_results no labels are retained.
  EXPECT_TRUE(report.results.empty());
}

TEST(Pipeline, VariantMetadataPreserved) {
  const auto points = data::generate_uniform(1000, 73, 8.0f, 8.0f);
  const std::vector<Variant> variants{{0.3f, 2}, {0.5f, 10}};
  cudasim::Device dev({}, fast_options());
  const PipelineReport report =
      run_multi_clustering(dev, points, variants, {});
  EXPECT_EQ(report.variants[0].variant.eps, 0.3f);
  EXPECT_EQ(report.variants[0].variant.minpts, 2);
  EXPECT_EQ(report.variants[1].variant.eps, 0.5f);
  EXPECT_EQ(report.variants[1].variant.minpts, 10);
}

TEST(Pipeline, SingleConsumerWorks) {
  const auto points = data::generate_uniform(1500, 74, 8.0f, 8.0f);
  cudasim::Device dev({}, fast_options());
  PipelineOptions opts;
  opts.num_consumers = 1;
  opts.queue_capacity = 1;
  const PipelineReport report =
      run_multi_clustering(dev, points, test_variants(), opts);
  for (const auto& t : report.variants) EXPECT_GT(t.dbscan_seconds, 0.0);
}

TEST(Pipeline, EmptyVariantListIsNoop) {
  const auto points = data::generate_uniform(500, 75, 8.0f, 8.0f);
  cudasim::Device dev({}, fast_options());
  const PipelineReport report = run_multi_clustering(dev, points, {}, {});
  EXPECT_TRUE(report.variants.empty());
}

TEST(Pipeline, ProducerErrorPropagates) {
  const auto points = data::generate_uniform(500, 76, 8.0f, 8.0f);
  cudasim::Device dev({}, fast_options());
  const std::vector<Variant> bad{{-1.0f, 4}};  // invalid eps
  EXPECT_THROW(run_multi_clustering(dev, points, bad, {}),
               std::invalid_argument);
}

TEST(Pipeline, ByteBudgetAdmitsAsymmetricTables) {
  // Two-variant sweep with very different table sizes: eps=0.15 yields a
  // small table, eps=0.7 a much larger one. A budget well below the large
  // table's payload must still admit it (one-item minimum) and the sweep
  // must finish with the same labels as the unbudgeted run.
  const auto points = data::generate_space_weather(
      2000, 78, {.width = 10.0f, .height = 10.0f});
  const std::vector<Variant> variants{{0.15f, 4}, {0.7f, 4}};
  cudasim::Device dev_a({}, fast_options());
  cudasim::Device dev_b({}, fast_options());

  PipelineOptions unbudgeted;
  unbudgeted.keep_results = true;
  const PipelineReport want =
      run_multi_clustering(dev_a, points, variants, unbudgeted);

  PipelineOptions budgeted;
  budgeted.keep_results = true;
  budgeted.queue_capacity = 4;
  budgeted.queue_bytes_budget = 1024;  // below either table's payload
  const PipelineReport got =
      run_multi_clustering(dev_b, points, variants, budgeted);

  for (std::size_t i = 0; i < variants.size(); ++i) {
    ASSERT_TRUE(got.variants[i].outcome.ok) << got.variants[i].outcome.error;
    const NeighborTable oracle = input_order_table(points, variants[i].eps);
    const auto outcome = compare_clusterings(
        got.results[i], want.results[i], oracle, variants[i].minpts);
    EXPECT_TRUE(outcome.equivalent)
        << "variant " << i << ": " << outcome.diagnostic;
  }
}

TEST(Pipeline, ByteBudgetZeroIsLegacyCountOnly) {
  const auto points = data::generate_uniform(1200, 79, 8.0f, 8.0f);
  cudasim::Device dev({}, fast_options());
  PipelineOptions opts;
  opts.queue_bytes_budget = 0;  // legacy: only queue_capacity bounds
  const PipelineReport report =
      run_multi_clustering(dev, points, test_variants(), opts);
  for (const auto& t : report.variants) {
    EXPECT_TRUE(t.outcome.ok) << t.outcome.error;
    EXPECT_GT(t.dbscan_seconds, 0.0);
  }
}

TEST(Pipeline, ClusterCountsMonotoneInMinpts) {
  // Same eps, rising minpts: noise can only grow.
  const auto points = data::generate_sky_survey(
      3000, 77, {.width = 10.0f, .height = 10.0f});
  const std::vector<Variant> variants{{0.35f, 2}, {0.35f, 8}, {0.35f, 32}};
  cudasim::Device dev({}, fast_options());
  const PipelineReport report =
      run_multi_clustering(dev, points, variants, {});
  EXPECT_LE(report.variants[0].noise_count, report.variants[1].noise_count);
  EXPECT_LE(report.variants[1].noise_count, report.variants[2].noise_count);
}

}  // namespace
}  // namespace hdbscan
