#include "core/batch_planner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace hdbscan {
namespace {

TEST(BatchPlanner, VariablePathYieldsOneBatchPerStream) {
  // Small estimate (paper: a_b < 3e8): b_b = a_b (1 + 2a) / 3, which makes
  // Eq. 1 come out to exactly num_streams batches.
  const BatchPlan plan = plan_batches(1'000'000, BatchPolicy{});
  EXPECT_FALSE(plan.static_buffer);
  EXPECT_DOUBLE_EQ(plan.alpha_used, 0.10);
  EXPECT_EQ(plan.num_batches, 3u);
  EXPECT_GE(plan.buffer_pairs * 3, plan.estimated_total_pairs);
}

TEST(BatchPlanner, StaticPathUsesFixedBuffer) {
  const std::uint64_t ab = 600'000'000;  // >= 3e8
  const BatchPlan plan = plan_batches(ab, BatchPolicy{});
  EXPECT_TRUE(plan.static_buffer);
  EXPECT_DOUBLE_EQ(plan.alpha_used, 0.05);
  EXPECT_EQ(plan.buffer_pairs, 100'000'000u);
  // Eq. 1: ceil(1.05 * 6e8 / 1e8) = 7.
  EXPECT_EQ(plan.num_batches, 7u);
}

TEST(BatchPlanner, ThresholdBoundary) {
  BatchPolicy policy;
  const BatchPlan below = plan_batches(299'999'999, policy);
  const BatchPlan at = plan_batches(300'000'000, policy);
  EXPECT_FALSE(below.static_buffer);
  EXPECT_TRUE(at.static_buffer);
}

TEST(BatchPlanner, BufferCapIncreasesBatchCount) {
  BatchPolicy policy;
  const BatchPlan uncapped = plan_batches(1'000'000, policy);
  const BatchPlan capped = plan_batches(1'000'000, policy, 100'000);
  EXPECT_EQ(capped.buffer_pairs, 100'000u);
  EXPECT_GT(capped.num_batches, uncapped.num_batches);
  // Capacity still covers the (over-estimated) total.
  EXPECT_GE(capped.buffer_pairs * capped.num_batches,
            uncapped.estimated_total_pairs);
}

TEST(BatchPlanner, ZeroEstimateStillPlansOneBatch) {
  const BatchPlan plan = plan_batches(0, BatchPolicy{});
  EXPECT_GE(plan.num_batches, 1u);
  EXPECT_GE(plan.buffer_pairs, 1u);
}

TEST(BatchPlanner, CustomAlphaPropagates) {
  BatchPolicy policy;
  policy.alpha = 0.25;
  const BatchPlan variable = plan_batches(1'000, policy);
  EXPECT_DOUBLE_EQ(variable.alpha_used, 0.5);
  policy.static_threshold_pairs = 1;  // force static
  const BatchPlan fixed = plan_batches(1'000, policy);
  EXPECT_DOUBLE_EQ(fixed.alpha_used, 0.25);
}

TEST(BatchPlanner, CustomStreamCount) {
  BatchPolicy policy;
  policy.num_streams = 5;
  const BatchPlan plan = plan_batches(1'000'000, policy);
  EXPECT_EQ(plan.num_batches, 5u);
}

TEST(BatchPlanner, RejectsZeroStreams) {
  BatchPolicy policy;
  policy.num_streams = 0;
  EXPECT_THROW((void)plan_batches(100, policy), std::invalid_argument);
}

TEST(BatchPlanner, Equation1Holds) {
  // Spot-check n_b = ceil((1 + alpha) a_b / b_b) across a sweep.
  BatchPolicy policy;
  policy.static_threshold_pairs = 1;  // always static for determinism
  policy.static_buffer_pairs = 1'000;
  for (const std::uint64_t ab : {1ull, 999ull, 1000ull, 1001ull, 123456ull}) {
    const BatchPlan plan = plan_batches(ab, policy);
    const auto expected = static_cast<std::uint32_t>(
        std::ceil(1.05 * static_cast<double>(ab) / 1000.0));
    EXPECT_EQ(plan.num_batches, expected) << "ab=" << ab;
  }
}

}  // namespace
}  // namespace hdbscan
