# Empty compiler generated dependencies file for hdbscan_data.
# This may be replaced when dependencies are built.
