file(REMOVE_RECURSE
  "CMakeFiles/hdbscan_data.dir/datasets.cpp.o"
  "CMakeFiles/hdbscan_data.dir/datasets.cpp.o.d"
  "CMakeFiles/hdbscan_data.dir/generators.cpp.o"
  "CMakeFiles/hdbscan_data.dir/generators.cpp.o.d"
  "CMakeFiles/hdbscan_data.dir/io.cpp.o"
  "CMakeFiles/hdbscan_data.dir/io.cpp.o.d"
  "libhdbscan_data.a"
  "libhdbscan_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdbscan_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
