file(REMOVE_RECURSE
  "libhdbscan_data.a"
)
