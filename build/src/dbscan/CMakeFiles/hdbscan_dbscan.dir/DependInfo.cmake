
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbscan/cluster_compare.cpp" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/cluster_compare.cpp.o" "gcc" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/cluster_compare.cpp.o.d"
  "/root/repo/src/dbscan/cluster_result.cpp" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/cluster_result.cpp.o" "gcc" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/cluster_result.cpp.o.d"
  "/root/repo/src/dbscan/dbscan.cpp" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/dbscan.cpp.o" "gcc" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/dbscan.cpp.o.d"
  "/root/repo/src/dbscan/dbscan_parallel.cpp" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/dbscan_parallel.cpp.o" "gcc" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/dbscan_parallel.cpp.o.d"
  "/root/repo/src/dbscan/neighbor_table.cpp" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/neighbor_table.cpp.o" "gcc" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/neighbor_table.cpp.o.d"
  "/root/repo/src/dbscan/optics.cpp" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/optics.cpp.o" "gcc" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/optics.cpp.o.d"
  "/root/repo/src/dbscan/table_io.cpp" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/table_io.cpp.o" "gcc" "src/dbscan/CMakeFiles/hdbscan_dbscan.dir/table_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdbscan_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hdbscan_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
