# Empty dependencies file for hdbscan_dbscan.
# This may be replaced when dependencies are built.
