file(REMOVE_RECURSE
  "libhdbscan_dbscan.a"
)
