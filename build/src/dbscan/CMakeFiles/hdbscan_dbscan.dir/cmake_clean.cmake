file(REMOVE_RECURSE
  "CMakeFiles/hdbscan_dbscan.dir/cluster_compare.cpp.o"
  "CMakeFiles/hdbscan_dbscan.dir/cluster_compare.cpp.o.d"
  "CMakeFiles/hdbscan_dbscan.dir/cluster_result.cpp.o"
  "CMakeFiles/hdbscan_dbscan.dir/cluster_result.cpp.o.d"
  "CMakeFiles/hdbscan_dbscan.dir/dbscan.cpp.o"
  "CMakeFiles/hdbscan_dbscan.dir/dbscan.cpp.o.d"
  "CMakeFiles/hdbscan_dbscan.dir/dbscan_parallel.cpp.o"
  "CMakeFiles/hdbscan_dbscan.dir/dbscan_parallel.cpp.o.d"
  "CMakeFiles/hdbscan_dbscan.dir/neighbor_table.cpp.o"
  "CMakeFiles/hdbscan_dbscan.dir/neighbor_table.cpp.o.d"
  "CMakeFiles/hdbscan_dbscan.dir/optics.cpp.o"
  "CMakeFiles/hdbscan_dbscan.dir/optics.cpp.o.d"
  "CMakeFiles/hdbscan_dbscan.dir/table_io.cpp.o"
  "CMakeFiles/hdbscan_dbscan.dir/table_io.cpp.o.d"
  "libhdbscan_dbscan.a"
  "libhdbscan_dbscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdbscan_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
