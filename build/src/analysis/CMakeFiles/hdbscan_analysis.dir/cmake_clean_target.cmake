file(REMOVE_RECURSE
  "libhdbscan_analysis.a"
)
