file(REMOVE_RECURSE
  "CMakeFiles/hdbscan_analysis.dir/cluster_analysis.cpp.o"
  "CMakeFiles/hdbscan_analysis.dir/cluster_analysis.cpp.o.d"
  "libhdbscan_analysis.a"
  "libhdbscan_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdbscan_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
