# Empty dependencies file for hdbscan_analysis.
# This may be replaced when dependencies are built.
