
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch_planner.cpp" "src/core/CMakeFiles/hdbscan_core.dir/batch_planner.cpp.o" "gcc" "src/core/CMakeFiles/hdbscan_core.dir/batch_planner.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/hdbscan_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/hdbscan_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/hybrid_dbscan.cpp" "src/core/CMakeFiles/hdbscan_core.dir/hybrid_dbscan.cpp.o" "gcc" "src/core/CMakeFiles/hdbscan_core.dir/hybrid_dbscan.cpp.o.d"
  "/root/repo/src/core/hybrid_dbscan3.cpp" "src/core/CMakeFiles/hdbscan_core.dir/hybrid_dbscan3.cpp.o" "gcc" "src/core/CMakeFiles/hdbscan_core.dir/hybrid_dbscan3.cpp.o.d"
  "/root/repo/src/core/neighbor_table_builder.cpp" "src/core/CMakeFiles/hdbscan_core.dir/neighbor_table_builder.cpp.o" "gcc" "src/core/CMakeFiles/hdbscan_core.dir/neighbor_table_builder.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/hdbscan_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/hdbscan_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/reuse.cpp" "src/core/CMakeFiles/hdbscan_core.dir/reuse.cpp.o" "gcc" "src/core/CMakeFiles/hdbscan_core.dir/reuse.cpp.o.d"
  "/root/repo/src/core/similarity_join.cpp" "src/core/CMakeFiles/hdbscan_core.dir/similarity_join.cpp.o" "gcc" "src/core/CMakeFiles/hdbscan_core.dir/similarity_join.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdbscan_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cudasim/CMakeFiles/hdbscan_cudasim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hdbscan_index.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/hdbscan_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/dbscan/CMakeFiles/hdbscan_dbscan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
