# Empty dependencies file for hdbscan_core.
# This may be replaced when dependencies are built.
