file(REMOVE_RECURSE
  "libhdbscan_core.a"
)
