file(REMOVE_RECURSE
  "CMakeFiles/hdbscan_core.dir/batch_planner.cpp.o"
  "CMakeFiles/hdbscan_core.dir/batch_planner.cpp.o.d"
  "CMakeFiles/hdbscan_core.dir/estimator.cpp.o"
  "CMakeFiles/hdbscan_core.dir/estimator.cpp.o.d"
  "CMakeFiles/hdbscan_core.dir/hybrid_dbscan.cpp.o"
  "CMakeFiles/hdbscan_core.dir/hybrid_dbscan.cpp.o.d"
  "CMakeFiles/hdbscan_core.dir/hybrid_dbscan3.cpp.o"
  "CMakeFiles/hdbscan_core.dir/hybrid_dbscan3.cpp.o.d"
  "CMakeFiles/hdbscan_core.dir/neighbor_table_builder.cpp.o"
  "CMakeFiles/hdbscan_core.dir/neighbor_table_builder.cpp.o.d"
  "CMakeFiles/hdbscan_core.dir/pipeline.cpp.o"
  "CMakeFiles/hdbscan_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/hdbscan_core.dir/reuse.cpp.o"
  "CMakeFiles/hdbscan_core.dir/reuse.cpp.o.d"
  "CMakeFiles/hdbscan_core.dir/similarity_join.cpp.o"
  "CMakeFiles/hdbscan_core.dir/similarity_join.cpp.o.d"
  "libhdbscan_core.a"
  "libhdbscan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdbscan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
