file(REMOVE_RECURSE
  "CMakeFiles/hdbscan_common.dir/env.cpp.o"
  "CMakeFiles/hdbscan_common.dir/env.cpp.o.d"
  "CMakeFiles/hdbscan_common.dir/makespan.cpp.o"
  "CMakeFiles/hdbscan_common.dir/makespan.cpp.o.d"
  "CMakeFiles/hdbscan_common.dir/stats.cpp.o"
  "CMakeFiles/hdbscan_common.dir/stats.cpp.o.d"
  "CMakeFiles/hdbscan_common.dir/thread_pool.cpp.o"
  "CMakeFiles/hdbscan_common.dir/thread_pool.cpp.o.d"
  "libhdbscan_common.a"
  "libhdbscan_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdbscan_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
