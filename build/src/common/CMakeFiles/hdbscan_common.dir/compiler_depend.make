# Empty compiler generated dependencies file for hdbscan_common.
# This may be replaced when dependencies are built.
