file(REMOVE_RECURSE
  "libhdbscan_common.a"
)
