
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/grid_index.cpp" "src/index/CMakeFiles/hdbscan_index.dir/grid_index.cpp.o" "gcc" "src/index/CMakeFiles/hdbscan_index.dir/grid_index.cpp.o.d"
  "/root/repo/src/index/grid_index3.cpp" "src/index/CMakeFiles/hdbscan_index.dir/grid_index3.cpp.o" "gcc" "src/index/CMakeFiles/hdbscan_index.dir/grid_index3.cpp.o.d"
  "/root/repo/src/index/rtree.cpp" "src/index/CMakeFiles/hdbscan_index.dir/rtree.cpp.o" "gcc" "src/index/CMakeFiles/hdbscan_index.dir/rtree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdbscan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
