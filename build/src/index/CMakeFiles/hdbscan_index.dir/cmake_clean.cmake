file(REMOVE_RECURSE
  "CMakeFiles/hdbscan_index.dir/grid_index.cpp.o"
  "CMakeFiles/hdbscan_index.dir/grid_index.cpp.o.d"
  "CMakeFiles/hdbscan_index.dir/grid_index3.cpp.o"
  "CMakeFiles/hdbscan_index.dir/grid_index3.cpp.o.d"
  "CMakeFiles/hdbscan_index.dir/rtree.cpp.o"
  "CMakeFiles/hdbscan_index.dir/rtree.cpp.o.d"
  "libhdbscan_index.a"
  "libhdbscan_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdbscan_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
