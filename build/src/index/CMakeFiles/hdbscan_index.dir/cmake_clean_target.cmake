file(REMOVE_RECURSE
  "libhdbscan_index.a"
)
