# Empty compiler generated dependencies file for hdbscan_index.
# This may be replaced when dependencies are built.
