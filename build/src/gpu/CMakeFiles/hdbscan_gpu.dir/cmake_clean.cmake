file(REMOVE_RECURSE
  "CMakeFiles/hdbscan_gpu.dir/gpu_dbscan.cpp.o"
  "CMakeFiles/hdbscan_gpu.dir/gpu_dbscan.cpp.o.d"
  "CMakeFiles/hdbscan_gpu.dir/kernels.cpp.o"
  "CMakeFiles/hdbscan_gpu.dir/kernels.cpp.o.d"
  "CMakeFiles/hdbscan_gpu.dir/kernels3.cpp.o"
  "CMakeFiles/hdbscan_gpu.dir/kernels3.cpp.o.d"
  "libhdbscan_gpu.a"
  "libhdbscan_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdbscan_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
