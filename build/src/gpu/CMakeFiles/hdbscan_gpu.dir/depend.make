# Empty dependencies file for hdbscan_gpu.
# This may be replaced when dependencies are built.
