file(REMOVE_RECURSE
  "libhdbscan_gpu.a"
)
