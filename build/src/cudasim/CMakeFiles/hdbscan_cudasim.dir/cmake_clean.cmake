file(REMOVE_RECURSE
  "CMakeFiles/hdbscan_cudasim.dir/device.cpp.o"
  "CMakeFiles/hdbscan_cudasim.dir/device.cpp.o.d"
  "CMakeFiles/hdbscan_cudasim.dir/stream.cpp.o"
  "CMakeFiles/hdbscan_cudasim.dir/stream.cpp.o.d"
  "libhdbscan_cudasim.a"
  "libhdbscan_cudasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdbscan_cudasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
