# Empty dependencies file for hdbscan_cudasim.
# This may be replaced when dependencies are built.
