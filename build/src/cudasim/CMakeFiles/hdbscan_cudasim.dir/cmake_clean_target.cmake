file(REMOVE_RECURSE
  "libhdbscan_cudasim.a"
)
