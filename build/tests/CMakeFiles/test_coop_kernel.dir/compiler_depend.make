# Empty compiler generated dependencies file for test_coop_kernel.
# This may be replaced when dependencies are built.
