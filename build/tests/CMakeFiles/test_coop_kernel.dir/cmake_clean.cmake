file(REMOVE_RECURSE
  "CMakeFiles/test_coop_kernel.dir/test_coop_kernel.cpp.o"
  "CMakeFiles/test_coop_kernel.dir/test_coop_kernel.cpp.o.d"
  "test_coop_kernel"
  "test_coop_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coop_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
