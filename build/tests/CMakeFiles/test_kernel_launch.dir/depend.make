# Empty dependencies file for test_kernel_launch.
# This may be replaced when dependencies are built.
