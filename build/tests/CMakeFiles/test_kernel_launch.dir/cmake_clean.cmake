file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_launch.dir/test_kernel_launch.cpp.o"
  "CMakeFiles/test_kernel_launch.dir/test_kernel_launch.cpp.o.d"
  "test_kernel_launch"
  "test_kernel_launch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
