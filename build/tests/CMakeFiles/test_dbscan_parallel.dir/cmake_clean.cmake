file(REMOVE_RECURSE
  "CMakeFiles/test_dbscan_parallel.dir/test_dbscan_parallel.cpp.o"
  "CMakeFiles/test_dbscan_parallel.dir/test_dbscan_parallel.cpp.o.d"
  "test_dbscan_parallel"
  "test_dbscan_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbscan_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
