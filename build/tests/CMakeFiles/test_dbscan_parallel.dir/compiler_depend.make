# Empty compiler generated dependencies file for test_dbscan_parallel.
# This may be replaced when dependencies are built.
