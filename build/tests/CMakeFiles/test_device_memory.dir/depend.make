# Empty dependencies file for test_device_memory.
# This may be replaced when dependencies are built.
