# Empty dependencies file for test_cluster_analysis.
# This may be replaced when dependencies are built.
