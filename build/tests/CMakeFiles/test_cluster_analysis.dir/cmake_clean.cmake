file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_analysis.dir/test_cluster_analysis.cpp.o"
  "CMakeFiles/test_cluster_analysis.dir/test_cluster_analysis.cpp.o.d"
  "test_cluster_analysis"
  "test_cluster_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
