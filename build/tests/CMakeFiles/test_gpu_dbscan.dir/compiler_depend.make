# Empty compiler generated dependencies file for test_gpu_dbscan.
# This may be replaced when dependencies are built.
