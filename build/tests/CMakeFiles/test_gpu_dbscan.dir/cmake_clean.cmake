file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_dbscan.dir/test_gpu_dbscan.cpp.o"
  "CMakeFiles/test_gpu_dbscan.dir/test_gpu_dbscan.cpp.o.d"
  "test_gpu_dbscan"
  "test_gpu_dbscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
