file(REMOVE_RECURSE
  "CMakeFiles/test_batch_planner.dir/test_batch_planner.cpp.o"
  "CMakeFiles/test_batch_planner.dir/test_batch_planner.cpp.o.d"
  "test_batch_planner"
  "test_batch_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
