# Empty dependencies file for test_batch_planner.
# This may be replaced when dependencies are built.
