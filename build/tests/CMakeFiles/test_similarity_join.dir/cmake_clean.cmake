file(REMOVE_RECURSE
  "CMakeFiles/test_similarity_join.dir/test_similarity_join.cpp.o"
  "CMakeFiles/test_similarity_join.dir/test_similarity_join.cpp.o.d"
  "test_similarity_join"
  "test_similarity_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_similarity_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
