# Empty dependencies file for test_similarity_join.
# This may be replaced when dependencies are built.
