file(REMOVE_RECURSE
  "CMakeFiles/test_sort_by_key.dir/test_sort_by_key.cpp.o"
  "CMakeFiles/test_sort_by_key.dir/test_sort_by_key.cpp.o.d"
  "test_sort_by_key"
  "test_sort_by_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sort_by_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
