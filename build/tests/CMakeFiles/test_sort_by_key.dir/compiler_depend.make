# Empty compiler generated dependencies file for test_sort_by_key.
# This may be replaced when dependencies are built.
