file(REMOVE_RECURSE
  "CMakeFiles/test_stream_event.dir/test_stream_event.cpp.o"
  "CMakeFiles/test_stream_event.dir/test_stream_event.cpp.o.d"
  "test_stream_event"
  "test_stream_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
