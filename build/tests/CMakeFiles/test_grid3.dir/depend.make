# Empty dependencies file for test_grid3.
# This may be replaced when dependencies are built.
