file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_equivalence.dir/test_hybrid_equivalence.cpp.o"
  "CMakeFiles/test_hybrid_equivalence.dir/test_hybrid_equivalence.cpp.o.d"
  "test_hybrid_equivalence"
  "test_hybrid_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
