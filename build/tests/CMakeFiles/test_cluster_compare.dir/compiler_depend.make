# Empty compiler generated dependencies file for test_cluster_compare.
# This may be replaced when dependencies are built.
