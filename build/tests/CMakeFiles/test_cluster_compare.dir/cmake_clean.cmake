file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_compare.dir/test_cluster_compare.cpp.o"
  "CMakeFiles/test_cluster_compare.dir/test_cluster_compare.cpp.o.d"
  "test_cluster_compare"
  "test_cluster_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
