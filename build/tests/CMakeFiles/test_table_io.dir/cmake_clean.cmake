file(REMOVE_RECURSE
  "CMakeFiles/test_table_io.dir/test_table_io.cpp.o"
  "CMakeFiles/test_table_io.dir/test_table_io.cpp.o.d"
  "test_table_io"
  "test_table_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
