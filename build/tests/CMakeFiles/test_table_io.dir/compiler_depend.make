# Empty compiler generated dependencies file for test_table_io.
# This may be replaced when dependencies are built.
