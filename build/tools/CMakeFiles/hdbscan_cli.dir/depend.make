# Empty dependencies file for hdbscan_cli.
# This may be replaced when dependencies are built.
