file(REMOVE_RECURSE
  "CMakeFiles/hdbscan_cli.dir/hdbscan_cli.cpp.o"
  "CMakeFiles/hdbscan_cli.dir/hdbscan_cli.cpp.o.d"
  "hdbscan_cli"
  "hdbscan_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdbscan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
