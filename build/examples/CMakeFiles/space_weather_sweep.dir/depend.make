# Empty dependencies file for space_weather_sweep.
# This may be replaced when dependencies are built.
