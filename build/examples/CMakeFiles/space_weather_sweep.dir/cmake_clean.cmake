file(REMOVE_RECURSE
  "CMakeFiles/space_weather_sweep.dir/space_weather_sweep.cpp.o"
  "CMakeFiles/space_weather_sweep.dir/space_weather_sweep.cpp.o.d"
  "space_weather_sweep"
  "space_weather_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_weather_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
