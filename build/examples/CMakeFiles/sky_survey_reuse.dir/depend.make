# Empty dependencies file for sky_survey_reuse.
# This may be replaced when dependencies are built.
