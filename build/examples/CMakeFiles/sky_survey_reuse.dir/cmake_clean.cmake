file(REMOVE_RECURSE
  "CMakeFiles/sky_survey_reuse.dir/sky_survey_reuse.cpp.o"
  "CMakeFiles/sky_survey_reuse.dir/sky_survey_reuse.cpp.o.d"
  "sky_survey_reuse"
  "sky_survey_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sky_survey_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
