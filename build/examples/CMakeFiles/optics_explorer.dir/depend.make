# Empty dependencies file for optics_explorer.
# This may be replaced when dependencies are built.
