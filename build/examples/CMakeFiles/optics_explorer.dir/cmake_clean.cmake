file(REMOVE_RECURSE
  "CMakeFiles/optics_explorer.dir/optics_explorer.cpp.o"
  "CMakeFiles/optics_explorer.dir/optics_explorer.cpp.o.d"
  "optics_explorer"
  "optics_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optics_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
