# Empty dependencies file for fig6_reuse_speedup.
# This may be replaced when dependencies are built.
