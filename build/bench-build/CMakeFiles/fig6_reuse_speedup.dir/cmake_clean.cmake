file(REMOVE_RECURSE
  "../bench/fig6_reuse_speedup"
  "../bench/fig6_reuse_speedup.pdb"
  "CMakeFiles/fig6_reuse_speedup.dir/fig6_reuse_speedup.cpp.o"
  "CMakeFiles/fig6_reuse_speedup.dir/fig6_reuse_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_reuse_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
