file(REMOVE_RECURSE
  "../bench/ablate_hybrid_kernel"
  "../bench/ablate_hybrid_kernel.pdb"
  "CMakeFiles/ablate_hybrid_kernel.dir/ablate_hybrid_kernel.cpp.o"
  "CMakeFiles/ablate_hybrid_kernel.dir/ablate_hybrid_kernel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_hybrid_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
