# Empty compiler generated dependencies file for ablate_hybrid_kernel.
# This may be replaced when dependencies are built.
