# Empty dependencies file for fig4_pipeline_totals.
# This may be replaced when dependencies are built.
