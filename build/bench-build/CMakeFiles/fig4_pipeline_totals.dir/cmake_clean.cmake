file(REMOVE_RECURSE
  "../bench/fig4_pipeline_totals"
  "../bench/fig4_pipeline_totals.pdb"
  "CMakeFiles/fig4_pipeline_totals.dir/fig4_pipeline_totals.cpp.o"
  "CMakeFiles/fig4_pipeline_totals.dir/fig4_pipeline_totals.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pipeline_totals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
