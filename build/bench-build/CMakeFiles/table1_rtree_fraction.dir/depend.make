# Empty dependencies file for table1_rtree_fraction.
# This may be replaced when dependencies are built.
