file(REMOVE_RECURSE
  "../bench/table1_rtree_fraction"
  "../bench/table1_rtree_fraction.pdb"
  "CMakeFiles/table1_rtree_fraction.dir/table1_rtree_fraction.cpp.o"
  "CMakeFiles/table1_rtree_fraction.dir/table1_rtree_fraction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rtree_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
