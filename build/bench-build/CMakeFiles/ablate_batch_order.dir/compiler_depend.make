# Empty compiler generated dependencies file for ablate_batch_order.
# This may be replaced when dependencies are built.
