file(REMOVE_RECURSE
  "../bench/ablate_batch_order"
  "../bench/ablate_batch_order.pdb"
  "CMakeFiles/ablate_batch_order.dir/ablate_batch_order.cpp.o"
  "CMakeFiles/ablate_batch_order.dir/ablate_batch_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_batch_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
