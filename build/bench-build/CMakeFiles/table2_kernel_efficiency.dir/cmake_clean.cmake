file(REMOVE_RECURSE
  "../bench/table2_kernel_efficiency"
  "../bench/table2_kernel_efficiency.pdb"
  "CMakeFiles/table2_kernel_efficiency.dir/table2_kernel_efficiency.cpp.o"
  "CMakeFiles/table2_kernel_efficiency.dir/table2_kernel_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_kernel_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
