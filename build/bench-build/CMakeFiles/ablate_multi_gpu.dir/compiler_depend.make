# Empty compiler generated dependencies file for ablate_multi_gpu.
# This may be replaced when dependencies are built.
