file(REMOVE_RECURSE
  "../bench/ablate_multi_gpu"
  "../bench/ablate_multi_gpu.pdb"
  "CMakeFiles/ablate_multi_gpu.dir/ablate_multi_gpu.cpp.o"
  "CMakeFiles/ablate_multi_gpu.dir/ablate_multi_gpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_multi_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
