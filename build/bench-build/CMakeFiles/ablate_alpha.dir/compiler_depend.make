# Empty compiler generated dependencies file for ablate_alpha.
# This may be replaced when dependencies are built.
