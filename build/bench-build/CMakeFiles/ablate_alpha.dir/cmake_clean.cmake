file(REMOVE_RECURSE
  "../bench/ablate_alpha"
  "../bench/ablate_alpha.pdb"
  "CMakeFiles/ablate_alpha.dir/ablate_alpha.cpp.o"
  "CMakeFiles/ablate_alpha.dir/ablate_alpha.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
