file(REMOVE_RECURSE
  "../bench/fig5_reuse_threads"
  "../bench/fig5_reuse_threads.pdb"
  "CMakeFiles/fig5_reuse_threads.dir/fig5_reuse_threads.cpp.o"
  "CMakeFiles/fig5_reuse_threads.dir/fig5_reuse_threads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_reuse_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
