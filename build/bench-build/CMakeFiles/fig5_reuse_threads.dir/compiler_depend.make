# Empty compiler generated dependencies file for fig5_reuse_threads.
# This may be replaced when dependencies are built.
