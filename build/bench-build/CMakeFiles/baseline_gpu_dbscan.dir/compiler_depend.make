# Empty compiler generated dependencies file for baseline_gpu_dbscan.
# This may be replaced when dependencies are built.
