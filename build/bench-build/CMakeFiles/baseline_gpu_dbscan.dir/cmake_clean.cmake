file(REMOVE_RECURSE
  "../bench/baseline_gpu_dbscan"
  "../bench/baseline_gpu_dbscan.pdb"
  "CMakeFiles/baseline_gpu_dbscan.dir/baseline_gpu_dbscan.cpp.o"
  "CMakeFiles/baseline_gpu_dbscan.dir/baseline_gpu_dbscan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_gpu_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
