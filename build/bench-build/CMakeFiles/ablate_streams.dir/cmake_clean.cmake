file(REMOVE_RECURSE
  "../bench/ablate_streams"
  "../bench/ablate_streams.pdb"
  "CMakeFiles/ablate_streams.dir/ablate_streams.cpp.o"
  "CMakeFiles/ablate_streams.dir/ablate_streams.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
