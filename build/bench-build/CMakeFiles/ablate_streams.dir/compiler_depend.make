# Empty compiler generated dependencies file for ablate_streams.
# This may be replaced when dependencies are built.
