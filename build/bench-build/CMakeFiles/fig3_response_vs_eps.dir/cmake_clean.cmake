file(REMOVE_RECURSE
  "../bench/fig3_response_vs_eps"
  "../bench/fig3_response_vs_eps.pdb"
  "CMakeFiles/fig3_response_vs_eps.dir/fig3_response_vs_eps.cpp.o"
  "CMakeFiles/fig3_response_vs_eps.dir/fig3_response_vs_eps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_response_vs_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
