# Empty compiler generated dependencies file for fig3_response_vs_eps.
# This may be replaced when dependencies are built.
