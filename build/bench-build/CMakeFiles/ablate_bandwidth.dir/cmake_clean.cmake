file(REMOVE_RECURSE
  "../bench/ablate_bandwidth"
  "../bench/ablate_bandwidth.pdb"
  "CMakeFiles/ablate_bandwidth.dir/ablate_bandwidth.cpp.o"
  "CMakeFiles/ablate_bandwidth.dir/ablate_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
