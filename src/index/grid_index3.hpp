// 3-D grid index: the straightforward extension of the paper's 2-D scheme
// (§IV) to spatial volumes — eps-cube cells, a lookup array A with
// |A| = |D|, and neighborhoods guaranteed to lie within the 27-cell block
// around a point's cell.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "index/grid_index.hpp"  // CellRange

namespace hdbscan {

struct GridParams3 {
  float min_x = 0.0f;
  float min_y = 0.0f;
  float min_z = 0.0f;
  float eps = 0.0f;
  std::uint32_t cells_x = 0;
  std::uint32_t cells_y = 0;
  std::uint32_t cells_z = 0;

  [[nodiscard]] std::uint64_t num_cells() const noexcept {
    return static_cast<std::uint64_t>(cells_x) * cells_y * cells_z;
  }

  [[nodiscard]] std::uint32_t axis_cell(float v, float lo,
                                        std::uint32_t n) const noexcept {
    auto c = static_cast<std::int64_t>((v - lo) / eps);
    if (c < 0) c = 0;
    if (c >= static_cast<std::int64_t>(n)) c = n - 1;
    return static_cast<std::uint32_t>(c);
  }

  [[nodiscard]] std::uint32_t linear_cell(const Point3& p) const noexcept {
    const std::uint32_t cx = axis_cell(p.x, min_x, cells_x);
    const std::uint32_t cy = axis_cell(p.y, min_y, cells_y);
    const std::uint32_t cz = axis_cell(p.z, min_z, cells_z);
    return (cz * cells_y + cy) * cells_x + cx;
  }
};

/// Fills `out` with the (at most 27) linear cell ids adjacent to `cell`
/// (inclusive); returns how many. Boundary cells are clipped.
unsigned get_neighbor_cells3(const GridParams3& params, std::uint32_t cell,
                             std::array<std::uint32_t, 27>& out) noexcept;

/// Forward half of the 27-cell stencil: the (at most 13) adjacent cells
/// with linear id strictly greater than `cell` — the 2-D forward stencil
/// in the dz = 0 plane plus the entire dz = +1 plane. Excludes `cell`
/// itself; same-cell pairs are halved via the lookup ordering invariant,
/// exactly as in 2-D (see build_grid_index).
unsigned get_forward_neighbor_cells3(
    const GridParams3& params, std::uint32_t cell,
    std::array<std::uint32_t, 27>& out) noexcept;

struct GridIndex3 {
  GridParams3 params;
  std::vector<Point3> points;
  std::vector<PointId> original_ids;
  std::vector<CellRange> cells;
  std::vector<PointId> lookup;
  std::vector<std::uint32_t> nonempty_cells;
  std::uint32_t max_cell_occupancy = 0;

  [[nodiscard]] std::size_t size() const noexcept { return points.size(); }
};

/// Non-owning kernel view (host vectors or device buffers).
struct GridView3 {
  GridParams3 params;
  const Point3* points = nullptr;
  std::uint32_t num_points = 0;
  const CellRange* cells = nullptr;
  const PointId* lookup = nullptr;

  [[nodiscard]] static GridView3 of(const GridIndex3& g) noexcept {
    return GridView3{g.params, g.points.data(),
                     static_cast<std::uint32_t>(g.points.size()),
                     g.cells.data(), g.lookup.data()};
  }
};

GridIndex3 build_grid_index3(std::span<const Point3> input, float eps,
                             std::uint64_t max_cells = 1ull << 27);

void grid_query3(const GridIndex3& index, const Point3& q, float eps,
                 std::vector<PointId>& out);

/// Forward-only reference search mirroring ScanMode::kHalf in 3-D: same-cell
/// candidates with id >= query plus all points of the forward 27-stencil
/// cells, distance-filtered (see grid_query_forward in grid_index.hpp).
void grid_query3_forward(const GridIndex3& index, PointId query, float eps,
                         std::vector<PointId>& out);

}  // namespace hdbscan
