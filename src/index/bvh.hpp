// Packed bounding-volume hierarchy index (the IndexBackend::kBvh seam).
//
// LBVH-style construction: points are sorted by 32-bit Morton code
// (16 bits per axis over the dataset's bounding box), packed into fixed-
// capacity leaves, and the upper levels are packed bottom-up with a fixed
// fan-out — every node's children are contiguous, so the whole tree is
// four flat arrays that upload to the device as-is (gpu/bvh_device_index).
// The same spatial-locality property the grid gets from bin-sorting, the
// BVH gets from the Morton order.
//
// Id space: the tree is built over the grid index's reordered database D,
// and `leaf_ids` are *resident* ids (positions in D). Degrees, union-find
// parents, CSR rows and labels all stay in the one id space regardless of
// backend, so tables and clusterings are comparable bit-for-bit.
//
// ScanMode::kHalf under a tree: there is no forward cell stencil, so the
// half-traversal rule is id-based instead — row i owns exactly the
// candidates with id >= i (self included). Every cross pair (i, j) then
// appears in exactly one row (the smaller id's), which is precisely the
// cover NeighborTable::expand_half_table and the streaming consumer
// require. Each node records the maximum resident id in its subtree so a
// half-traversal can prune whole subtrees that hold only smaller ids.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace hdbscan {

/// Tree node; a POD so the nodes array can live in a device buffer.
/// Children of an internal node are contiguous: [first, first + count).
/// A leaf's entries are contiguous in the leaf-packed arrays likewise.
struct BvhNode {
  Rect2 mbr;
  std::uint32_t first = 0;   ///< first child node index, or first entry
  std::uint32_t count = 0;   ///< children (internal) or entries (leaf)
  std::uint32_t max_id = 0;  ///< max resident id in the subtree (kHalf prune)
  std::uint32_t leaf = 0;    ///< 1 = leaf (u32 keeps the struct tightly POD)
};

/// Host-resident BVH index over the grid index's reordered database.
struct BvhIndex {
  std::vector<BvhNode> nodes;
  std::uint32_t root = 0;
  std::vector<Point2> points;       ///< D in resident-id order
  std::vector<PointId> leaf_ids;    ///< resident ids, leaf-packed order
  std::vector<Point2> leaf_points;  ///< point copies, leaf-packed order
  unsigned leaf_capacity = 0;
  unsigned fanout = 0;
  unsigned height = 0;
  /// Owned-query prefix, mirroring GridIndex::num_query; 0 = all points.
  std::uint32_t num_query = 0;

  [[nodiscard]] std::size_t size() const noexcept { return points.size(); }
  [[nodiscard]] std::size_t query_count() const noexcept {
    return num_query != 0 ? num_query : points.size();
  }
};

/// Non-owning view passed to kernels; pointers may reference host vectors
/// (tests) or device buffers (gpu/bvh_device_index).
struct BvhView {
  const BvhNode* nodes = nullptr;
  std::uint32_t num_nodes = 0;
  std::uint32_t root = 0;
  const Point2* points = nullptr;       ///< resident-id order (query reads)
  const PointId* leaf_ids = nullptr;    ///< leaf-packed candidate ids
  const Point2* leaf_points = nullptr;  ///< leaf-packed candidate points
  std::uint32_t num_points = 0;
  std::uint32_t num_query = 0;  ///< owned prefix; 0 = num_points

  [[nodiscard]] std::uint32_t query_count() const noexcept {
    return num_query != 0 ? num_query : num_points;
  }

  [[nodiscard]] static BvhView of(const BvhIndex& b) noexcept {
    return BvhView{b.nodes.data(),
                   static_cast<std::uint32_t>(b.nodes.size()),
                   b.root,
                   b.points.data(),
                   b.leaf_ids.data(),
                   b.leaf_points.data(),
                   static_cast<std::uint32_t>(b.points.size()),
                   b.num_query};
  }
};

/// Builds the packed BVH over `points` (the grid index's reordered D, so
/// resident ids are array positions). Throws std::invalid_argument on an
/// empty database or capacities < 2.
BvhIndex build_bvh_index(std::span<const Point2> points,
                         unsigned leaf_capacity = 16, unsigned fanout = 4);

/// Reference search used by tests: all resident ids within eps of q.
void bvh_query(const BvhIndex& index, const Point2& q, float eps,
               std::vector<PointId>& out);

/// Forward-only reference search mirroring the kernels' kHalf traversal
/// under the tree's id-ownership rule: all resident ids >= `query`
/// (including query itself) within eps of point `query`. The union of
/// forward results over all queries, transposed, is the full neighbor
/// table — exactly the expand_half_table contract.
void bvh_query_forward(const BvhIndex& index, PointId query, float eps,
                       std::vector<PointId>& out);

}  // namespace hdbscan
