#include "index/grid_index3.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <tuple>
#include <stdexcept>

namespace hdbscan {

unsigned get_neighbor_cells3(const GridParams3& params, std::uint32_t cell,
                             std::array<std::uint32_t, 27>& out) noexcept {
  const std::uint32_t plane = params.cells_x * params.cells_y;
  const std::uint32_t cz = cell / plane;
  const std::uint32_t rem = cell % plane;
  const std::uint32_t cy = rem / params.cells_x;
  const std::uint32_t cx = rem % params.cells_x;
  unsigned n = 0;
  for (int dz = -1; dz <= 1; ++dz) {
    const std::int64_t nz = static_cast<std::int64_t>(cz) + dz;
    if (nz < 0 || nz >= static_cast<std::int64_t>(params.cells_z)) continue;
    for (int dy = -1; dy <= 1; ++dy) {
      const std::int64_t ny = static_cast<std::int64_t>(cy) + dy;
      if (ny < 0 || ny >= static_cast<std::int64_t>(params.cells_y)) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        const std::int64_t nx = static_cast<std::int64_t>(cx) + dx;
        if (nx < 0 || nx >= static_cast<std::int64_t>(params.cells_x)) {
          continue;
        }
        out[n++] = (static_cast<std::uint32_t>(nz) * params.cells_y +
                    static_cast<std::uint32_t>(ny)) *
                       params.cells_x +
                   static_cast<std::uint32_t>(nx);
      }
    }
  }
  return n;
}

unsigned get_forward_neighbor_cells3(
    const GridParams3& params, std::uint32_t cell,
    std::array<std::uint32_t, 27>& out) noexcept {
  const std::uint32_t plane = params.cells_x * params.cells_y;
  const std::uint32_t cz = cell / plane;
  const std::uint32_t rem = cell % plane;
  const std::uint32_t cy = rem / params.cells_x;
  const std::uint32_t cx = rem % params.cells_x;
  unsigned n = 0;
  // dz = 0 plane: the 2-D forward stencil (+1, 0) plus the whole dy = +1 row.
  if (cx + 1 < params.cells_x) out[n++] = cell + 1;
  if (cy + 1 < params.cells_y) {
    const std::uint32_t row = cell + params.cells_x;
    if (cx > 0) out[n++] = row - 1;
    out[n++] = row;
    if (cx + 1 < params.cells_x) out[n++] = row + 1;
  }
  // dz = +1 plane: all 9 adjacent columns have a larger linear id.
  if (cz + 1 < params.cells_z) {
    for (int dy = -1; dy <= 1; ++dy) {
      const std::int64_t ny = static_cast<std::int64_t>(cy) + dy;
      if (ny < 0 || ny >= static_cast<std::int64_t>(params.cells_y)) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        const std::int64_t nx = static_cast<std::int64_t>(cx) + dx;
        if (nx < 0 || nx >= static_cast<std::int64_t>(params.cells_x)) {
          continue;
        }
        out[n++] = ((cz + 1) * params.cells_y +
                    static_cast<std::uint32_t>(ny)) *
                       params.cells_x +
                   static_cast<std::uint32_t>(nx);
      }
    }
  }
  return n;
}

GridIndex3 build_grid_index3(std::span<const Point3> input, float eps,
                             std::uint64_t max_cells) {
  if (input.empty()) {
    throw std::invalid_argument("grid index 3d: empty database");
  }
  if (!(eps > 0.0f) || !std::isfinite(eps)) {
    throw std::invalid_argument("grid index 3d: eps must be positive");
  }

  GridIndex3 index;

  float min_x = std::numeric_limits<float>::max(), max_x = -min_x;
  float min_y = min_x, max_y = max_x;
  float min_z = min_x, max_z = max_x;
  for (const Point3& p : input) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
    min_z = std::min(min_z, p.z);
    max_z = std::max(max_z, p.z);
  }

  GridParams3& params = index.params;
  params.min_x = min_x;
  params.min_y = min_y;
  params.min_z = min_z;
  params.eps = eps;
  params.cells_x =
      static_cast<std::uint32_t>(std::floor((max_x - min_x) / eps)) + 1;
  params.cells_y =
      static_cast<std::uint32_t>(std::floor((max_y - min_y) / eps)) + 1;
  params.cells_z =
      static_cast<std::uint32_t>(std::floor((max_z - min_z) / eps)) + 1;
  if (params.num_cells() > max_cells) {
    throw std::invalid_argument(
        "grid index 3d: cell array would exceed the configured capacity");
  }

  // Locality sort by unit-width bins (z, y, x), as in the 2-D builder.
  std::vector<PointId> order(input.size());
  std::iota(order.begin(), order.end(), PointId{0});
  auto unit_bin = [&](PointId id) {
    const Point3& p = input[id];
    return std::tuple<std::int64_t, std::int64_t, std::int64_t>(
        static_cast<std::int64_t>(std::floor(p.z - min_z)),
        static_cast<std::int64_t>(std::floor(p.y - min_y)),
        static_cast<std::int64_t>(std::floor(p.x - min_x)));
  };
  std::stable_sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    return unit_bin(a) < unit_bin(b);
  });
  index.points.reserve(input.size());
  index.original_ids = std::move(order);
  for (PointId id : index.original_ids) index.points.push_back(input[id]);

  // Counting sort into cells.
  const auto num_cells = static_cast<std::size_t>(params.num_cells());
  std::vector<std::uint32_t> counts(num_cells, 0);
  std::vector<std::uint32_t> cell_of(index.points.size());
  for (std::size_t i = 0; i < index.points.size(); ++i) {
    const std::uint32_t h = params.linear_cell(index.points[i]);
    cell_of[i] = h;
    ++counts[h];
  }
  index.cells.resize(num_cells);
  std::uint32_t running = 0;
  for (std::size_t h = 0; h < num_cells; ++h) {
    index.cells[h].begin = running;
    running += counts[h];
    index.cells[h].end = running;
    if (counts[h] > 0) {
      index.nonempty_cells.push_back(static_cast<std::uint32_t>(h));
      index.max_cell_occupancy = std::max(index.max_cell_occupancy, counts[h]);
    }
  }
  index.lookup.resize(index.points.size());
  std::vector<std::uint32_t> cursor(num_cells);
  for (std::size_t h = 0; h < num_cells; ++h) cursor[h] = index.cells[h].begin;
  for (std::size_t i = 0; i < index.points.size(); ++i) {
    index.lookup[cursor[cell_of[i]]++] = static_cast<PointId>(i);
  }

  // Same ordering invariant as the 2-D builder: each cell's slice of A is
  // strictly ascending. ScanMode::kHalf depends on it, so verify.
  for (std::size_t a = 1; a < index.lookup.size(); ++a) {
    if (cell_of[index.lookup[a - 1]] == cell_of[index.lookup[a]] &&
        index.lookup[a - 1] >= index.lookup[a]) {
      throw std::logic_error(
          "grid index 3d: lookup ids not ascending within a cell (ordering "
          "invariant violated)");
    }
  }
  return index;
}

void grid_query3(const GridIndex3& index, const Point3& q, float eps,
                 std::vector<PointId>& out) {
  out.clear();
  const float eps2 = eps * eps;
  std::array<std::uint32_t, 27> neighbors{};
  const unsigned n =
      get_neighbor_cells3(index.params, index.params.linear_cell(q), neighbors);
  for (unsigned c = 0; c < n; ++c) {
    const CellRange range = index.cells[neighbors[c]];
    for (std::uint32_t a = range.begin; a < range.end; ++a) {
      const PointId id = index.lookup[a];
      if (dist2(q, index.points[id]) <= eps2) out.push_back(id);
    }
  }
}

void grid_query3_forward(const GridIndex3& index, PointId query, float eps,
                         std::vector<PointId>& out) {
  out.clear();
  const float eps2 = eps * eps;
  const Point3 point = index.points[query];
  const std::uint32_t cell = index.params.linear_cell(point);

  const CellRange own = index.cells[cell];
  const auto* first = index.lookup.data() + own.begin;
  const auto* last = index.lookup.data() + own.end;
  for (const auto* a = std::lower_bound(first, last, query); a != last; ++a) {
    if (dist2(point, index.points[*a]) <= eps2) out.push_back(*a);
  }

  std::array<std::uint32_t, 27> cells{};
  const unsigned n = get_forward_neighbor_cells3(index.params, cell, cells);
  for (unsigned c = 0; c < n; ++c) {
    const CellRange range = index.cells[cells[c]];
    for (std::uint32_t a = range.begin; a < range.end; ++a) {
      const PointId id = index.lookup[a];
      if (dist2(point, index.points[id]) <= eps2) out.push_back(id);
    }
  }
}

}  // namespace hdbscan
