#include "index/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hdbscan {

unsigned get_neighbor_cells(const GridParams& params, std::uint32_t cell,
                            std::array<std::uint32_t, 9>& out) noexcept {
  const std::uint32_t cx = cell % params.cells_x;
  const std::uint32_t cy = cell / params.cells_x;
  unsigned n = 0;
  for (int dy = -1; dy <= 1; ++dy) {
    const std::int64_t ny = static_cast<std::int64_t>(cy) + dy;
    if (ny < 0 || ny >= static_cast<std::int64_t>(params.cells_y)) continue;
    for (int dx = -1; dx <= 1; ++dx) {
      const std::int64_t nx = static_cast<std::int64_t>(cx) + dx;
      if (nx < 0 || nx >= static_cast<std::int64_t>(params.cells_x)) continue;
      out[n++] = static_cast<std::uint32_t>(ny) * params.cells_x +
                 static_cast<std::uint32_t>(nx);
    }
  }
  return n;
}

GridIndex build_grid_index(std::span<const Point2> input, float eps,
                           std::uint64_t max_cells) {
  if (input.empty()) throw std::invalid_argument("grid index: empty database");
  if (!(eps > 0.0f) || !std::isfinite(eps)) {
    throw std::invalid_argument("grid index: eps must be positive and finite");
  }

  GridIndex index;

  // Dataset extent.
  Rect2 extent;
  for (const Point2& p : input) extent.expand(p);

  // Locality pre-sort: order the database by unit-width spatial bins (paper
  // §IV: "binning p_i in x and y dimensions of unit width such that points
  // in similar spatial locations will be stored nearby each other").
  std::vector<PointId> order(input.size());
  std::iota(order.begin(), order.end(), PointId{0});
  auto unit_bin = [&](PointId id) {
    const Point2& p = input[id];
    const auto bx = static_cast<std::int64_t>(std::floor(p.x - extent.min_x));
    const auto by = static_cast<std::int64_t>(std::floor(p.y - extent.min_y));
    return std::pair<std::int64_t, std::int64_t>(by, bx);
  };
  std::stable_sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    return unit_bin(a) < unit_bin(b);
  });

  index.points.reserve(input.size());
  index.original_ids = std::move(order);
  for (PointId id : index.original_ids) index.points.push_back(input[id]);

  // Grid geometry.
  GridParams& params = index.params;
  params.min_x = extent.min_x;
  params.min_y = extent.min_y;
  params.eps = eps;
  params.cells_x = static_cast<std::uint32_t>(
                       std::floor((extent.max_x - extent.min_x) / eps)) +
                   1;
  params.cells_y = static_cast<std::uint32_t>(
                       std::floor((extent.max_y - extent.min_y) / eps)) +
                   1;
  if (params.num_cells() > max_cells) {
    throw std::invalid_argument(
        "grid index: cell array would exceed the configured capacity (eps "
        "too small for this extent)");
  }

  // Counting sort of point ids into cells: G holds [Amin, Amax) ranges into
  // the lookup array A, |A| == |D| (paper Figure 1).
  const auto num_cells = static_cast<std::size_t>(params.num_cells());
  std::vector<std::uint32_t> counts(num_cells, 0);
  std::vector<std::uint32_t> cell_of(index.points.size());
  for (std::size_t i = 0; i < index.points.size(); ++i) {
    const std::uint32_t h = params.linear_cell(index.points[i]);
    cell_of[i] = h;
    ++counts[h];
  }

  index.cells.resize(num_cells);
  std::uint32_t running = 0;
  for (std::size_t h = 0; h < num_cells; ++h) {
    index.cells[h].begin = running;
    running += counts[h];
    index.cells[h].end = running;
    if (counts[h] > 0) {
      index.nonempty_cells.push_back(static_cast<std::uint32_t>(h));
      index.max_cell_occupancy = std::max(index.max_cell_occupancy, counts[h]);
    }
  }

  index.lookup.resize(index.points.size());
  std::vector<std::uint32_t> cursor(num_cells);
  for (std::size_t h = 0; h < num_cells; ++h) cursor[h] = index.cells[h].begin;
  for (std::size_t i = 0; i < index.points.size(); ++i) {
    index.lookup[cursor[cell_of[i]]++] = static_cast<PointId>(i);
  }

  return index;
}

void grid_query(const GridIndex& index, const Point2& q, float eps,
                std::vector<PointId>& out) {
  out.clear();
  const float eps2 = eps * eps;
  const std::uint32_t cell = index.params.linear_cell(q);
  std::array<std::uint32_t, 9> neighbors{};
  const unsigned n = get_neighbor_cells(index.params, cell, neighbors);
  for (unsigned c = 0; c < n; ++c) {
    const CellRange range = index.cells[neighbors[c]];
    for (std::uint32_t a = range.begin; a < range.end; ++a) {
      const PointId id = index.lookup[a];
      if (dist2(q, index.points[id]) <= eps2) out.push_back(id);
    }
  }
}

}  // namespace hdbscan
