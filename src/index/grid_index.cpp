#include "index/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hdbscan {

unsigned get_neighbor_cells(const GridParams& params, std::uint32_t cell,
                            std::array<std::uint32_t, 9>& out) noexcept {
  const std::uint32_t cx = cell % params.cells_x;
  const std::uint32_t cy = cell / params.cells_x;
  unsigned n = 0;
  for (int dy = -1; dy <= 1; ++dy) {
    const std::int64_t ny = static_cast<std::int64_t>(cy) + dy;
    if (ny < 0 || ny >= static_cast<std::int64_t>(params.cells_y)) continue;
    for (int dx = -1; dx <= 1; ++dx) {
      const std::int64_t nx = static_cast<std::int64_t>(cx) + dx;
      if (nx < 0 || nx >= static_cast<std::int64_t>(params.cells_x)) continue;
      out[n++] = static_cast<std::uint32_t>(ny) * params.cells_x +
                 static_cast<std::uint32_t>(nx);
    }
  }
  return n;
}

unsigned get_forward_neighbor_cells(
    const GridParams& params, std::uint32_t cell,
    std::array<std::uint32_t, 9>& out) noexcept {
  const std::uint32_t cx = cell % params.cells_x;
  const std::uint32_t cy = cell / params.cells_x;
  unsigned n = 0;
  // Row-major linearization: (+1, 0) and every dy = +1 cell have a larger
  // linear id than `cell`; everything else is smaller.
  if (cx + 1 < params.cells_x) out[n++] = cell + 1;
  if (cy + 1 < params.cells_y) {
    const std::uint32_t row = cell + params.cells_x;
    if (cx > 0) out[n++] = row - 1;
    out[n++] = row;
    if (cx + 1 < params.cells_x) out[n++] = row + 1;
  }
  return n;
}

GridIndex build_grid_index(std::span<const Point2> input, float eps,
                           std::uint64_t max_cells) {
  if (input.empty()) throw std::invalid_argument("grid index: empty database");
  if (!(eps > 0.0f) || !std::isfinite(eps)) {
    throw std::invalid_argument("grid index: eps must be positive and finite");
  }

  GridIndex index;

  // Dataset extent.
  Rect2 extent;
  for (const Point2& p : input) extent.expand(p);

  // Locality pre-sort: order the database by unit-width spatial bins (paper
  // §IV: "binning p_i in x and y dimensions of unit width such that points
  // in similar spatial locations will be stored nearby each other").
  std::vector<PointId> order(input.size());
  std::iota(order.begin(), order.end(), PointId{0});
  auto unit_bin = [&](PointId id) {
    const Point2& p = input[id];
    const auto bx = static_cast<std::int64_t>(std::floor(p.x - extent.min_x));
    const auto by = static_cast<std::int64_t>(std::floor(p.y - extent.min_y));
    return std::pair<std::int64_t, std::int64_t>(by, bx);
  };
  std::stable_sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    return unit_bin(a) < unit_bin(b);
  });

  index.points.reserve(input.size());
  index.original_ids = std::move(order);
  for (PointId id : index.original_ids) index.points.push_back(input[id]);

  // Grid geometry.
  GridParams& params = index.params;
  params.min_x = extent.min_x;
  params.min_y = extent.min_y;
  params.eps = eps;
  params.cells_x = static_cast<std::uint32_t>(
                       std::floor((extent.max_x - extent.min_x) / eps)) +
                   1;
  params.cells_y = static_cast<std::uint32_t>(
                       std::floor((extent.max_y - extent.min_y) / eps)) +
                   1;
  if (params.num_cells() > max_cells) {
    throw std::invalid_argument(
        "grid index: cell array would exceed the configured capacity (eps "
        "too small for this extent)");
  }

  // Counting sort of point ids into cells: G holds [Amin, Amax) ranges into
  // the lookup array A, |A| == |D| (paper Figure 1).
  const auto num_cells = static_cast<std::size_t>(params.num_cells());
  std::vector<std::uint32_t> counts(num_cells, 0);
  std::vector<std::uint32_t> cell_of(index.points.size());
  for (std::size_t i = 0; i < index.points.size(); ++i) {
    const std::uint32_t h = params.linear_cell(index.points[i]);
    cell_of[i] = h;
    ++counts[h];
  }

  index.cells.resize(num_cells);
  std::uint32_t running = 0;
  for (std::size_t h = 0; h < num_cells; ++h) {
    index.cells[h].begin = running;
    running += counts[h];
    index.cells[h].end = running;
    if (counts[h] > 0) {
      index.nonempty_cells.push_back(static_cast<std::uint32_t>(h));
      index.max_cell_occupancy = std::max(index.max_cell_occupancy, counts[h]);
    }
  }

  index.lookup.resize(index.points.size());
  std::vector<std::uint32_t> cursor(num_cells);
  for (std::size_t h = 0; h < num_cells; ++h) cursor[h] = index.cells[h].begin;
  for (std::size_t i = 0; i < index.points.size(); ++i) {
    index.lookup[cursor[cell_of[i]]++] = static_cast<PointId>(i);
  }

  // Ordering invariant: filling A in increasing point-index order with one
  // cursor per cell leaves every cell's slice of A strictly ascending. The
  // half-comparison kernels depend on this, so verify it here (one linear
  // pass — noise next to the sorts above) rather than trusting it silently.
  for (std::size_t a = 1; a < index.lookup.size(); ++a) {
    if (cell_of[index.lookup[a - 1]] == cell_of[index.lookup[a]] &&
        index.lookup[a - 1] >= index.lookup[a]) {
      throw std::logic_error(
          "grid index: lookup ids not ascending within a cell (ordering "
          "invariant violated)");
    }
  }

  return index;
}

void grid_query(const GridIndex& index, const Point2& q, float eps,
                std::vector<PointId>& out) {
  out.clear();
  const float eps2 = eps * eps;
  const std::uint32_t cell = index.params.linear_cell(q);
  std::array<std::uint32_t, 9> neighbors{};
  const unsigned n = get_neighbor_cells(index.params, cell, neighbors);
  for (unsigned c = 0; c < n; ++c) {
    // Shard sub-indexes hold a slab: global cell h lives at h - cell_base.
    // Queries for owned points never leave the slab; the bound check only
    // guards direct queries of ghost/outside points (unsigned wrap covers
    // cells below the base).
    const std::uint32_t local = neighbors[c] - index.cell_base;
    if (local >= index.cells.size()) continue;
    const CellRange range = index.cells[local];
    for (std::uint32_t a = range.begin; a < range.end; ++a) {
      const PointId id = index.lookup[a];
      if (dist2(q, index.points[id]) <= eps2) out.push_back(id);
    }
  }
}

void grid_query_forward(const GridIndex& index, PointId query, float eps,
                        std::vector<PointId>& out) {
  out.clear();
  const float eps2 = eps * eps;
  const Point2 point = index.points[query];
  const std::uint32_t cell = index.params.linear_cell(point);

  // Same cell: the ordering invariant makes the slice of A ascending, so
  // candidates with id >= query occupy a suffix starting at lower_bound.
  const CellRange own = index.cells[cell - index.cell_base];
  const auto* first = index.lookup.data() + own.begin;
  const auto* last = index.lookup.data() + own.end;
  for (const auto* a = std::lower_bound(first, last, query); a != last; ++a) {
    if (dist2(point, index.points[*a]) <= eps2) out.push_back(*a);
  }

  std::array<std::uint32_t, 9> cells{};
  const unsigned n = get_forward_neighbor_cells(index.params, cell, cells);
  for (unsigned c = 0; c < n; ++c) {
    const std::uint32_t local = cells[c] - index.cell_base;
    if (local >= index.cells.size()) continue;
    const CellRange range = index.cells[local];
    for (std::uint32_t a = range.begin; a < range.end; ++a) {
      const PointId id = index.lookup[a];
      if (dist2(point, index.points[id]) <= eps2) out.push_back(id);
    }
  }
}

}  // namespace hdbscan
