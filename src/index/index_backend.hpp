// The spatial-index backend seam.
//
// The paper's pipeline is built around the eps-width grid (§IV); related
// work (Prokopenko et al., "Fast tree-based algorithms for DBSCAN for
// low-dimensional data on GPUs") shows a bounding-volume hierarchy wins on
// skewed densities where eps-cells overflow. Every layer that launches a
// neighborhood traversal — the batched table builder, the fused
// no-table clustering path, the service front-end — selects the backend
// through this enum rather than hard-coding the grid.
#pragma once

#include <optional>
#include <string_view>

namespace hdbscan {

enum class IndexBackend {
  kGrid,  ///< eps-cell grid index (paper §IV): D, G, A, S arrays
  kBvh,   ///< packed Morton-built BVH (LBVH-style), leaf-pruned traversal
};

[[nodiscard]] constexpr std::string_view to_string(IndexBackend b) noexcept {
  switch (b) {
    case IndexBackend::kGrid: return "grid";
    case IndexBackend::kBvh: return "bvh";
  }
  return "?";
}

/// Parses "grid" / "bvh" (CLI flag values); nullopt on anything else.
[[nodiscard]] inline std::optional<IndexBackend> parse_index_backend(
    std::string_view s) noexcept {
  if (s == "grid") return IndexBackend::kGrid;
  if (s == "bvh") return IndexBackend::kBvh;
  return std::nullopt;
}

}  // namespace hdbscan
