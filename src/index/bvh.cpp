#include "index/bvh.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace hdbscan {

namespace {

/// Spreads the low 16 bits of v so a bit lands at every even position.
[[nodiscard]] std::uint32_t part1by1(std::uint32_t v) noexcept {
  v &= 0x0000ffffu;
  v = (v | (v << 8)) & 0x00ff00ffu;
  v = (v | (v << 4)) & 0x0f0f0f0fu;
  v = (v | (v << 2)) & 0x33333333u;
  v = (v | (v << 1)) & 0x55555555u;
  return v;
}

/// 32-bit Morton code from 16-bit quantized coordinates.
[[nodiscard]] std::uint32_t morton2(std::uint32_t x, std::uint32_t y) noexcept {
  return part1by1(x) | (part1by1(y) << 1);
}

[[nodiscard]] std::uint32_t quantize(float v, float lo, float inv_extent) {
  float t = (v - lo) * inv_extent;
  if (t < 0.0f) t = 0.0f;
  if (t > 1.0f) t = 1.0f;
  return static_cast<std::uint32_t>(t * 65535.0f);
}

}  // namespace

BvhIndex build_bvh_index(std::span<const Point2> points,
                         unsigned leaf_capacity, unsigned fanout) {
  if (points.empty()) throw std::invalid_argument("BVH: empty database");
  if (leaf_capacity < 2 || fanout < 2) {
    throw std::invalid_argument("BVH: leaf capacity and fanout must be >= 2");
  }
  const std::size_t n = points.size();

  Rect2 bounds;
  for (const Point2& p : points) bounds.expand(p);
  const float ext_x = bounds.max_x - bounds.min_x;
  const float ext_y = bounds.max_y - bounds.min_y;
  const float inv_x = ext_x > 0.0f ? 1.0f / ext_x : 0.0f;
  const float inv_y = ext_y > 0.0f ? 1.0f / ext_y : 0.0f;

  // Morton sort; ties (duplicate coordinates) break by id so the build is
  // fully deterministic.
  std::vector<std::uint32_t> code(n);
  for (std::size_t i = 0; i < n; ++i) {
    code[i] = morton2(quantize(points[i].x, bounds.min_x, inv_x),
                      quantize(points[i].y, bounds.min_y, inv_y));
  }
  std::vector<PointId> order(n);
  std::iota(order.begin(), order.end(), PointId{0});
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    return code[a] != code[b] ? code[a] < code[b] : a < b;
  });

  BvhIndex out;
  out.leaf_capacity = leaf_capacity;
  out.fanout = fanout;
  out.points.assign(points.begin(), points.end());
  out.leaf_ids.reserve(n);
  out.leaf_points.reserve(n);
  for (PointId id : order) {
    out.leaf_ids.push_back(id);
    out.leaf_points.push_back(points[id]);
  }

  // Pack leaves over the Morton order.
  std::vector<std::uint32_t> level;
  for (std::size_t begin = 0; begin < n; begin += leaf_capacity) {
    const std::size_t end = std::min(n, begin + leaf_capacity);
    BvhNode leaf;
    leaf.leaf = 1;
    leaf.first = static_cast<std::uint32_t>(begin);
    leaf.count = static_cast<std::uint32_t>(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      leaf.mbr.expand(out.leaf_points[i]);
      leaf.max_id = std::max(leaf.max_id, out.leaf_ids[i]);
    }
    level.push_back(static_cast<std::uint32_t>(out.nodes.size()));
    out.nodes.push_back(leaf);
  }
  out.height = 1;

  // Pack upper levels: `fanout` consecutive children per parent. Children
  // are contiguous by construction, so a parent stores only [first, count).
  while (level.size() > 1) {
    std::vector<std::uint32_t> parents;
    for (std::size_t begin = 0; begin < level.size(); begin += fanout) {
      const std::size_t end = std::min(level.size(), begin + fanout);
      BvhNode parent;
      parent.leaf = 0;
      parent.first = level[begin];
      parent.count = static_cast<std::uint32_t>(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        const BvhNode& child = out.nodes[level[i]];
        parent.mbr.expand(child.mbr);
        parent.max_id = std::max(parent.max_id, child.max_id);
      }
      parents.push_back(static_cast<std::uint32_t>(out.nodes.size()));
      out.nodes.push_back(parent);
    }
    level = std::move(parents);
    ++out.height;
  }
  out.root = level.front();
  return out;
}

void bvh_query(const BvhIndex& index, const Point2& q, float eps,
               std::vector<PointId>& out) {
  const float eps2 = eps * eps;
  std::vector<std::uint32_t> stack;
  stack.push_back(index.root);
  while (!stack.empty()) {
    const BvhNode& node = index.nodes[stack.back()];
    stack.pop_back();
    if (node.leaf != 0) {
      for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
        if (dist2(q, index.leaf_points[i]) <= eps2) {
          out.push_back(index.leaf_ids[i]);
        }
      }
    } else {
      for (std::uint32_t c = node.first; c < node.first + node.count; ++c) {
        if (index.nodes[c].mbr.min_dist2(q) <= eps2) stack.push_back(c);
      }
    }
  }
}

void bvh_query_forward(const BvhIndex& index, PointId query, float eps,
                       std::vector<PointId>& out) {
  const Point2 q = index.points[query];
  const float eps2 = eps * eps;
  std::vector<std::uint32_t> stack;
  stack.push_back(index.root);
  while (!stack.empty()) {
    const BvhNode& node = index.nodes[stack.back()];
    stack.pop_back();
    if (node.max_id < query) continue;  // subtree holds only smaller ids
    if (node.leaf != 0) {
      for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
        const PointId cand = index.leaf_ids[i];
        if (cand < query) continue;  // id-ownership rule: row q owns id >= q
        if (dist2(q, index.leaf_points[i]) <= eps2) out.push_back(cand);
      }
    } else {
      for (std::uint32_t c = node.first; c < node.first + node.count; ++c) {
        if (index.nodes[c].mbr.min_dist2(q) <= eps2) stack.push_back(c);
      }
    }
  }
}

}  // namespace hdbscan
