// R-tree index (Guttman 1984) used by the reference sequential DBSCAN
// implementation the paper compares against (their citation [4]).
//
// Built with Sort-Tile-Recursive (STR) bulk loading and queried with an
// explicit stack. query_circle optionally charges its elapsed time to a
// TimeAccumulator — that instrumentation produces Table I (fraction of the
// total DBSCAN response time spent searching the R-tree).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/timer.hpp"
#include "common/types.hpp"

namespace hdbscan {

class RTree {
 public:
  /// Bulk-loads the tree over `points`. `node_capacity` is the fan-out of
  /// both leaves and internal nodes.
  explicit RTree(std::span<const Point2> points, unsigned node_capacity = 16);

  /// Appends to `out` the ids of all points within the closed eps-ball
  /// around q. When `acc` is non-null the call's wall time is added to it.
  void query_circle(const Point2& q, float eps, std::vector<PointId>& out,
                    TimeAccumulator* acc = nullptr) const;

  /// Appends ids of all points whose location intersects `rect`.
  void query_rect(const Rect2& rect, std::vector<PointId>& out) const;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] unsigned height() const noexcept { return height_; }

 private:
  struct Node {
    Rect2 mbr;
    std::uint32_t first = 0;  ///< index of first child node, or first entry
    std::uint32_t count = 0;
    bool leaf = false;
  };

  void query_impl(const Point2& q, float eps, std::vector<PointId>& out) const;

  std::vector<Point2> points_;   ///< copy of the data, in leaf-packed order
  std::vector<PointId> entries_; ///< original point ids, leaf-packed
  std::vector<Node> nodes_;
  std::uint32_t root_ = 0;
  unsigned capacity_;
  unsigned height_ = 0;
};

}  // namespace hdbscan
