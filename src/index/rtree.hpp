// R-tree index (Guttman 1984) used by the reference sequential DBSCAN
// implementation the paper compares against (their citation [4]), and as
// the host-fallback rung of the fused (no-table) clustering path — a
// degraded BVH-backed run falls back to R-tree circle queries because both
// share the tree-shaped pruning behavior the grid stencil lacks.
//
// Built with Sort-Tile-Recursive (STR) bulk loading — serially or with the
// slice sorts and leaf packing parallelized — or incrementally with
// Guttman's insert + linear split as a structural reference the bulk loads
// are validated against. All three builds produce the same packed node
// layout and answer queries through the same explicit-stack traversal.
// query_circle optionally charges its elapsed time to a TimeAccumulator —
// that instrumentation produces Table I (fraction of the total DBSCAN
// response time spent searching the R-tree).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/timer.hpp"
#include "common/types.hpp"

namespace hdbscan {

/// How the tree is constructed. The STR variants produce bit-identical
/// trees (the parallel build only distributes the slice sorts and leaf
/// packing); the incremental build produces a generally different — and
/// worse-packed — structure whose query *results* must nonetheless match.
enum class RTreeBuild {
  kStrSerial,    ///< original single-threaded STR bulk load
  kStrParallel,  ///< same STR layout, built across the global thread pool
  kIncremental,  ///< Guttman insert + linear split, one point at a time
};

class RTree {
 public:
  /// Builds the tree over `points`. `node_capacity` is the fan-out of both
  /// leaves and internal nodes.
  explicit RTree(std::span<const Point2> points, unsigned node_capacity = 16,
                 RTreeBuild build = RTreeBuild::kStrSerial);

  /// Appends to `out` the ids of all points within the closed eps-ball
  /// around q. When `acc` is non-null the call's wall time is added to it.
  void query_circle(const Point2& q, float eps, std::vector<PointId>& out,
                    TimeAccumulator* acc = nullptr) const;

  /// Appends ids of all points whose location intersects `rect`.
  void query_rect(const Rect2& rect, std::vector<PointId>& out) const;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] unsigned height() const noexcept { return height_; }

  /// Structural fingerprint (node MBRs + entry order) used by tests to
  /// assert the parallel STR build packs exactly like the serial one.
  [[nodiscard]] bool structurally_equal(const RTree& other) const noexcept;

 private:
  struct Node {
    Rect2 mbr;
    std::uint32_t first = 0;  ///< index of first child node, or first entry
    std::uint32_t count = 0;
    bool leaf = false;
  };

  void build_str(std::span<const Point2> points, bool parallel);
  void build_incremental(std::span<const Point2> points);
  void query_impl(const Point2& q, float eps, std::vector<PointId>& out) const;

  std::vector<Point2> points_;   ///< copy of the data, in leaf-packed order
  std::vector<PointId> entries_; ///< original point ids, leaf-packed
  std::vector<Node> nodes_;
  std::uint32_t root_ = 0;
  unsigned capacity_;
  unsigned height_ = 0;
};

}  // namespace hdbscan
