#include "index/rtree.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace hdbscan {

RTree::RTree(std::span<const Point2> points, unsigned node_capacity,
             RTreeBuild build)
    : capacity_(node_capacity) {
  if (node_capacity < 2) {
    throw std::invalid_argument("RTree: node capacity must be >= 2");
  }
  if (points.empty()) throw std::invalid_argument("RTree: empty database");
  switch (build) {
    case RTreeBuild::kStrSerial:
      build_str(points, /*parallel=*/false);
      break;
    case RTreeBuild::kStrParallel:
      build_str(points, /*parallel=*/true);
      break;
    case RTreeBuild::kIncremental:
      build_incremental(points);
      break;
  }
}

void RTree::build_str(std::span<const Point2> points, bool parallel) {
  const std::size_t n = points.size();

  // --- STR leaf packing ---
  // Sort ids by x, cut into ceil(sqrt(nleaves)) vertical slices, sort each
  // slice by y, then pack runs of `capacity_` points into leaves. The
  // slice sorts are independent, so the parallel build fans them out over
  // the global pool; every other step is order-deterministic, which keeps
  // the parallel tree bit-identical to the serial one.
  std::vector<PointId> order(n);
  std::iota(order.begin(), order.end(), PointId{0});
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    return points[a].x < points[b].x;
  });

  const std::size_t num_leaves = (n + capacity_ - 1) / capacity_;
  const auto num_slices = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const std::size_t slice_size =
      ((num_leaves + num_slices - 1) / num_slices) * capacity_;
  const std::size_t slices = (n + slice_size - 1) / slice_size;

  auto sort_slice = [&](std::size_t s) {
    const std::size_t begin = s * slice_size;
    const std::size_t end = std::min(n, begin + slice_size);
    std::sort(order.begin() + static_cast<std::ptrdiff_t>(begin),
              order.begin() + static_cast<std::ptrdiff_t>(end),
              [&](PointId a, PointId b) { return points[a].y < points[b].y; });
  };
  if (parallel && slices > 1) {
    global_pool().parallel_for(0, slices, sort_slice, 1);
  } else {
    for (std::size_t s = 0; s < slices; ++s) sort_slice(s);
  }

  points_.resize(n);
  entries_.resize(n);
  auto place = [&](std::size_t i) {
    points_[i] = points[order[i]];
    entries_[i] = order[i];
  };
  if (parallel && n > 4096) {
    global_pool().parallel_for(0, n, place);
  } else {
    for (std::size_t i = 0; i < n; ++i) place(i);
  }

  // Pack leaves. Leaf l covers entries [l * capacity_, ...), so the MBR
  // expansions are independent per leaf and parallelize cleanly.
  nodes_.resize(num_leaves);
  auto pack_leaf = [&](std::size_t l) {
    const std::size_t begin = l * capacity_;
    const std::size_t end = std::min(n, begin + capacity_);
    Node leaf;
    leaf.leaf = true;
    leaf.first = static_cast<std::uint32_t>(begin);
    leaf.count = static_cast<std::uint32_t>(end - begin);
    for (std::size_t i = begin; i < end; ++i) leaf.mbr.expand(points_[i]);
    nodes_[l] = leaf;
  };
  if (parallel && num_leaves > 64) {
    global_pool().parallel_for(0, num_leaves, pack_leaf);
  } else {
    for (std::size_t l = 0; l < num_leaves; ++l) pack_leaf(l);
  }
  std::vector<std::uint32_t> level(num_leaves);
  std::iota(level.begin(), level.end(), std::uint32_t{0});
  height_ = 1;

  // --- build upper levels by packing `capacity_` children per node ---
  // (serial either way: the upper levels are a vanishing fraction of n).
  while (level.size() > 1) {
    std::vector<std::uint32_t> parent_level;
    for (std::size_t begin = 0; begin < level.size(); begin += capacity_) {
      const std::size_t end = std::min(level.size(), begin + capacity_);
      Node parent;
      parent.leaf = false;
      parent.first = level[begin];  // children are contiguous by construction
      parent.count = static_cast<std::uint32_t>(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        parent.mbr.expand(nodes_[level[i]].mbr);
      }
      parent_level.push_back(static_cast<std::uint32_t>(nodes_.size()));
      nodes_.push_back(parent);
    }
    level = std::move(parent_level);
    ++height_;
  }
  root_ = level.front();
}

namespace {

/// Mutable tree used only during the incremental build; flattened into the
/// packed contiguous-children layout afterwards.
struct TmpNode {
  Rect2 mbr;
  std::vector<std::uint32_t> children;  ///< indices into the tmp pool
  std::vector<PointId> entries;         ///< leaf payload (original ids)
  bool leaf = true;
};

[[nodiscard]] float enlargement(const Rect2& mbr, const Rect2& add) noexcept {
  Rect2 grown = mbr;
  grown.expand(add);
  return grown.area() - mbr.area();
}

/// Guttman's linear pick-seeds: the pair with the greatest normalized
/// separation along either axis.
template <typename GetRect>
std::pair<std::size_t, std::size_t> linear_pick_seeds(std::size_t count,
                                                      GetRect&& rect_of) {
  std::size_t lo_x = 0, hi_x = 0, lo_y = 0, hi_y = 0;
  Rect2 total;
  for (std::size_t i = 0; i < count; ++i) {
    const Rect2 r = rect_of(i);
    total.expand(r);
    if (r.min_x > rect_of(lo_x).min_x) lo_x = i;
    if (r.max_x < rect_of(hi_x).max_x) hi_x = i;
    if (r.min_y > rect_of(lo_y).min_y) lo_y = i;
    if (r.max_y < rect_of(hi_y).max_y) hi_y = i;
  }
  const float ext_x = std::max(total.max_x - total.min_x, 1e-30f);
  const float ext_y = std::max(total.max_y - total.min_y, 1e-30f);
  const float sep_x =
      (rect_of(lo_x).min_x - rect_of(hi_x).max_x) / ext_x;
  const float sep_y =
      (rect_of(lo_y).min_y - rect_of(hi_y).max_y) / ext_y;
  std::size_t a = sep_x >= sep_y ? lo_x : lo_y;
  std::size_t b = sep_x >= sep_y ? hi_x : hi_y;
  if (a == b) b = (a + 1) % count;  // degenerate data: any split works
  if (a > b) std::swap(a, b);
  return {a, b};
}

}  // namespace

void RTree::build_incremental(std::span<const Point2> points) {
  std::vector<TmpNode> pool;
  pool.emplace_back();  // root starts as an empty leaf
  std::uint32_t root = 0;

  auto entry_rect = [&](PointId id) {
    Rect2 r;
    r.expand(points[id]);
    return r;
  };
  auto recompute_mbr = [&](TmpNode& node) {
    node.mbr = Rect2{};
    if (node.leaf) {
      for (PointId id : node.entries) node.mbr.expand(points[id]);
    } else {
      for (std::uint32_t c : node.children) node.mbr.expand(pool[c].mbr);
    }
  };

  // Splits `node_idx`'s overflowing payload across itself and a fresh
  // sibling (Guttman's linear split), returning the sibling's index.
  auto split = [&](std::uint32_t node_idx) -> std::uint32_t {
    const std::uint32_t sibling_idx =
        static_cast<std::uint32_t>(pool.size());
    pool.emplace_back();
    // NOTE: pool may reallocate above — re-acquire references after.
    TmpNode& node = pool[node_idx];
    TmpNode& sib = pool[sibling_idx];
    sib.leaf = node.leaf;

    if (node.leaf) {
      std::vector<PointId> all = std::move(node.entries);
      node.entries.clear();
      auto [sa, sb] = linear_pick_seeds(
          all.size(), [&](std::size_t i) { return entry_rect(all[i]); });
      node.entries.push_back(all[sa]);
      sib.entries.push_back(all[sb]);
      recompute_mbr(node);
      recompute_mbr(sib);
      for (std::size_t i = 0; i < all.size(); ++i) {
        if (i == sa || i == sb) continue;
        const Rect2 r = entry_rect(all[i]);
        TmpNode& tgt = enlargement(node.mbr, r) <= enlargement(sib.mbr, r)
                           ? node
                           : sib;
        tgt.entries.push_back(all[i]);
        tgt.mbr.expand(r);
      }
    } else {
      std::vector<std::uint32_t> all = std::move(node.children);
      node.children.clear();
      auto [sa, sb] = linear_pick_seeds(
          all.size(), [&](std::size_t i) { return pool[all[i]].mbr; });
      node.children.push_back(all[sa]);
      sib.children.push_back(all[sb]);
      recompute_mbr(node);
      recompute_mbr(sib);
      for (std::size_t i = 0; i < all.size(); ++i) {
        if (i == sa || i == sb) continue;
        const Rect2 r = pool[all[i]].mbr;
        TmpNode& tgt = enlargement(node.mbr, r) <= enlargement(sib.mbr, r)
                           ? node
                           : sib;
        tgt.children.push_back(all[i]);
        tgt.mbr.expand(r);
      }
    }
    return sibling_idx;
  };

  std::vector<std::uint32_t> path;  // root .. leaf of the current descent
  for (PointId id = 0; id < points.size(); ++id) {
    const Rect2 r = entry_rect(id);
    // Choose-leaf: descend by least area enlargement (ties: smaller area).
    path.clear();
    std::uint32_t cur = root;
    path.push_back(cur);
    while (!pool[cur].leaf) {
      const TmpNode& node = pool[cur];
      std::uint32_t best = node.children.front();
      float best_enl = enlargement(pool[best].mbr, r);
      for (std::uint32_t c : node.children) {
        const float enl = enlargement(pool[c].mbr, r);
        if (enl < best_enl ||
            (enl == best_enl && pool[c].mbr.area() < pool[best].mbr.area())) {
          best = c;
          best_enl = enl;
        }
      }
      cur = best;
      path.push_back(cur);
    }
    pool[cur].entries.push_back(id);
    pool[cur].mbr.expand(r);

    // Split overflowing nodes bottom-up; grow a new root if the old one
    // splits.
    for (std::size_t depth = path.size(); depth-- > 0;) {
      const std::uint32_t idx = path[depth];
      const TmpNode& node = pool[idx];
      const std::size_t load =
          node.leaf ? node.entries.size() : node.children.size();
      if (load <= capacity_) break;
      const std::uint32_t sibling = split(idx);
      if (depth == 0) {
        const auto new_root = static_cast<std::uint32_t>(pool.size());
        pool.emplace_back();
        TmpNode& nr = pool[new_root];
        nr.leaf = false;
        nr.children = {idx, sibling};
        recompute_mbr(nr);
        root = new_root;
      } else {
        TmpNode& parent = pool[path[depth - 1]];
        parent.children.push_back(sibling);
        parent.mbr.expand(pool[sibling].mbr);
      }
    }
    // Refresh the descent path's MBRs bottom-up (cheap: height-deep).
    for (std::size_t depth = path.size(); depth-- > 0;) {
      recompute_mbr(pool[path[depth]]);
    }
  }

  // --- flatten into the packed layout (contiguous children, leaf-packed
  // entry arrays) so the query path is shared with the STR builds ---
  points_.reserve(points.size());
  entries_.reserve(points.size());
  nodes_.clear();
  nodes_.push_back(Node{});  // packed root at index 0
  root_ = 0;
  std::deque<std::pair<std::uint32_t, std::uint32_t>> queue;  // (tmp, packed)
  queue.emplace_back(root, 0);
  unsigned max_depth = 1;
  std::vector<unsigned> depth_of(1, 1);
  while (!queue.empty()) {
    const auto [tmp_idx, packed_idx] = queue.front();
    queue.pop_front();
    const TmpNode& tmp = pool[tmp_idx];
    Node packed;
    packed.mbr = tmp.mbr;
    packed.leaf = tmp.leaf;
    if (tmp.leaf) {
      packed.first = static_cast<std::uint32_t>(points_.size());
      packed.count = static_cast<std::uint32_t>(tmp.entries.size());
      for (PointId id : tmp.entries) {
        points_.push_back(points[id]);
        entries_.push_back(id);
      }
    } else {
      packed.first = static_cast<std::uint32_t>(nodes_.size());
      packed.count = static_cast<std::uint32_t>(tmp.children.size());
      for (std::uint32_t c : tmp.children) {
        const auto child_packed = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(Node{});
        depth_of.push_back(depth_of[packed_idx] + 1);
        max_depth = std::max(max_depth, depth_of[packed_idx] + 1);
        queue.emplace_back(c, child_packed);
      }
    }
    nodes_[packed_idx] = packed;
  }
  height_ = max_depth;
}

bool RTree::structurally_equal(const RTree& other) const noexcept {
  if (entries_ != other.entries_ || root_ != other.root_ ||
      height_ != other.height_ || nodes_.size() != other.nodes_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& a = nodes_[i];
    const Node& b = other.nodes_[i];
    if (a.first != b.first || a.count != b.count || a.leaf != b.leaf ||
        a.mbr.min_x != b.mbr.min_x || a.mbr.min_y != b.mbr.min_y ||
        a.mbr.max_x != b.mbr.max_x || a.mbr.max_y != b.mbr.max_y) {
      return false;
    }
  }
  return true;
}

void RTree::query_circle(const Point2& q, float eps, std::vector<PointId>& out,
                         TimeAccumulator* acc) const {
  ScopedTimer timing(acc);
  query_impl(q, eps, out);
}

void RTree::query_impl(const Point2& q, float eps,
                       std::vector<PointId>& out) const {
  const float eps2 = eps * eps;
  std::uint32_t stack[256];
  unsigned depth = 0;
  stack[depth++] = root_;
  while (depth > 0) {
    const Node& node = nodes_[stack[--depth]];
    if (node.leaf) {
      for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
        if (dist2(q, points_[i]) <= eps2) out.push_back(entries_[i]);
      }
    } else {
      for (std::uint32_t c = node.first; c < node.first + node.count; ++c) {
        if (nodes_[c].mbr.min_dist2(q) <= eps2) stack[depth++] = c;
      }
    }
  }
}

void RTree::query_rect(const Rect2& rect, std::vector<PointId>& out) const {
  std::uint32_t stack[256];
  unsigned depth = 0;
  stack[depth++] = root_;
  while (depth > 0) {
    const Node& node = nodes_[stack[--depth]];
    if (!node.mbr.intersects(rect)) continue;
    if (node.leaf) {
      for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
        if (rect.contains(points_[i])) out.push_back(entries_[i]);
      }
    } else {
      for (std::uint32_t c = node.first; c < node.first + node.count; ++c) {
        stack[depth++] = c;
      }
    }
  }
}

}  // namespace hdbscan
