#include "index/rtree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hdbscan {

RTree::RTree(std::span<const Point2> points, unsigned node_capacity)
    : capacity_(node_capacity) {
  if (node_capacity < 2) {
    throw std::invalid_argument("RTree: node capacity must be >= 2");
  }
  if (points.empty()) throw std::invalid_argument("RTree: empty database");

  const std::size_t n = points.size();

  // --- STR leaf packing ---
  // Sort ids by x, cut into ceil(sqrt(nleaves)) vertical slices, sort each
  // slice by y, then pack runs of `capacity_` points into leaves.
  std::vector<PointId> order(n);
  std::iota(order.begin(), order.end(), PointId{0});
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    return points[a].x < points[b].x;
  });

  const std::size_t num_leaves = (n + capacity_ - 1) / capacity_;
  const auto num_slices = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const std::size_t slice_size =
      ((num_leaves + num_slices - 1) / num_slices) * capacity_;

  for (std::size_t s = 0; s * slice_size < n; ++s) {
    const std::size_t begin = s * slice_size;
    const std::size_t end = std::min(n, begin + slice_size);
    std::sort(order.begin() + static_cast<std::ptrdiff_t>(begin),
              order.begin() + static_cast<std::ptrdiff_t>(end),
              [&](PointId a, PointId b) { return points[a].y < points[b].y; });
  }

  points_.reserve(n);
  entries_.reserve(n);
  for (PointId id : order) {
    points_.push_back(points[id]);
    entries_.push_back(id);
  }

  // Pack leaves.
  std::vector<std::uint32_t> level;  // node indices of the level being built
  for (std::size_t begin = 0; begin < n; begin += capacity_) {
    const std::size_t end = std::min(n, begin + capacity_);
    Node leaf;
    leaf.leaf = true;
    leaf.first = static_cast<std::uint32_t>(begin);
    leaf.count = static_cast<std::uint32_t>(end - begin);
    for (std::size_t i = begin; i < end; ++i) leaf.mbr.expand(points_[i]);
    level.push_back(static_cast<std::uint32_t>(nodes_.size()));
    nodes_.push_back(leaf);
  }
  height_ = 1;

  // --- build upper levels by packing `capacity_` children per node ---
  while (level.size() > 1) {
    std::vector<std::uint32_t> parent_level;
    for (std::size_t begin = 0; begin < level.size(); begin += capacity_) {
      const std::size_t end = std::min(level.size(), begin + capacity_);
      Node parent;
      parent.leaf = false;
      parent.first = level[begin];  // children are contiguous by construction
      parent.count = static_cast<std::uint32_t>(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        parent.mbr.expand(nodes_[level[i]].mbr);
      }
      parent_level.push_back(static_cast<std::uint32_t>(nodes_.size()));
      nodes_.push_back(parent);
    }
    level = std::move(parent_level);
    ++height_;
  }
  root_ = level.front();
}

void RTree::query_circle(const Point2& q, float eps, std::vector<PointId>& out,
                         TimeAccumulator* acc) const {
  ScopedTimer timing(acc);
  query_impl(q, eps, out);
}

void RTree::query_impl(const Point2& q, float eps,
                       std::vector<PointId>& out) const {
  const float eps2 = eps * eps;
  std::uint32_t stack[256];
  unsigned depth = 0;
  stack[depth++] = root_;
  while (depth > 0) {
    const Node& node = nodes_[stack[--depth]];
    if (node.leaf) {
      for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
        if (dist2(q, points_[i]) <= eps2) out.push_back(entries_[i]);
      }
    } else {
      for (std::uint32_t c = node.first; c < node.first + node.count; ++c) {
        if (nodes_[c].mbr.min_dist2(q) <= eps2) stack[depth++] = c;
      }
    }
  }
}

void RTree::query_rect(const Rect2& rect, std::vector<PointId>& out) const {
  std::uint32_t stack[256];
  unsigned depth = 0;
  stack[depth++] = root_;
  while (depth > 0) {
    const Node& node = nodes_[stack[--depth]];
    if (!node.mbr.intersects(rect)) continue;
    if (node.leaf) {
      for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
        if (rect.contains(points_[i])) out.push_back(entries_[i]);
      }
    } else {
      for (std::uint32_t c = node.first; c < node.first + node.count; ++c) {
        stack[depth++] = c;
      }
    }
  }
}

}  // namespace hdbscan
