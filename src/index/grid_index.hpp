// Grid index for epsilon-neighborhood searches (paper §IV, Figure 1).
//
// The index consists of:
//   * D  — the database, re-ordered by unit-width spatial bins so points in
//          similar locations are nearby in memory (locality optimization);
//   * G  — an array of eps x eps cells, each holding a range [Amin, Amax]
//          into the lookup array;
//   * A  — the lookup array of point ids, |A| == |D| (a point lives in
//          exactly one cell, so no per-cell over-allocation is needed);
//   * S  — the schedule of non-empty cells (GPUCalcShared assigns one
//          thread block per entry of S).
//
// Because cells are eps wide, all neighbors within eps of a point are
// guaranteed to lie in the point's cell or the 8 adjacent cells.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace hdbscan {

/// Half-open range [begin, end) into the lookup array A.
struct CellRange {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  [[nodiscard]] bool empty() const noexcept { return begin == end; }
  [[nodiscard]] std::uint32_t count() const noexcept { return end - begin; }
};

/// Geometry of the grid; a POD so it can be passed to kernels by value.
struct GridParams {
  float min_x = 0.0f;
  float min_y = 0.0f;
  float eps = 0.0f;
  std::uint32_t cells_x = 0;
  std::uint32_t cells_y = 0;

  [[nodiscard]] std::uint64_t num_cells() const noexcept {
    return static_cast<std::uint64_t>(cells_x) * cells_y;
  }

  [[nodiscard]] std::uint32_t cell_x_of(float x) const noexcept {
    auto c = static_cast<std::int64_t>((x - min_x) / eps);
    if (c < 0) c = 0;
    if (c >= static_cast<std::int64_t>(cells_x)) c = cells_x - 1;
    return static_cast<std::uint32_t>(c);
  }

  [[nodiscard]] std::uint32_t cell_y_of(float y) const noexcept {
    auto c = static_cast<std::int64_t>((y - min_y) / eps);
    if (c < 0) c = 0;
    if (c >= static_cast<std::int64_t>(cells_y)) c = cells_y - 1;
    return static_cast<std::uint32_t>(c);
  }

  /// Linearized cell id h of a point (paper: h computed from x/y coords).
  [[nodiscard]] std::uint32_t linear_cell(const Point2& p) const noexcept {
    return cell_y_of(p.y) * cells_x + cell_x_of(p.x);
  }
};

/// Fills `out` with the linear ids of the (at most 9) cells that can
/// contain points within eps of anything in `cell`; returns how many.
/// Cells outside the grid boundary are clipped.
unsigned get_neighbor_cells(const GridParams& params, std::uint32_t cell,
                            std::array<std::uint32_t, 9>& out) noexcept;

/// Forward half of the 9-cell stencil: the (at most 4) adjacent cells with
/// linear id strictly greater than `cell` — (+1, 0) in the same row plus
/// the whole dy = +1 row. Cell adjacency is symmetric, so every adjacent
/// cell pair (a, b) with a != b appears in exactly one of the two forward
/// stencils; a unidirectional scan (ScanMode::kHalf) therefore tests every
/// cross-cell candidate pair exactly once. The cell itself is NOT included
/// — same-cell pairs are halved by the ordering invariant instead (see
/// build_grid_index).
unsigned get_forward_neighbor_cells(const GridParams& params,
                                    std::uint32_t cell,
                                    std::array<std::uint32_t, 9>& out) noexcept;

/// Host-resident grid index.
///
/// A *shard sub-index* (core/shard_planner.hpp) reuses this struct for a
/// contiguous slab of grid-cell rows: `params` keeps the GLOBAL geometry
/// (so every point hashes to the same cell id it has in the full index),
/// `cells` holds only the slab — cells[h - cell_base] is global cell h —
/// and `points`/`lookup` hold the slab's residents in *owned-first* order:
/// the first `num_query` points are the ones this shard owns (ascending
/// global id), followed by the epsilon-halo ghosts (ascending global id).
/// Kernels and host queries only ever query owned points, whose full
/// 9-cell stencil lies inside the slab by construction.
struct GridIndex {
  GridParams params;
  std::vector<Point2> points;          ///< D, bin-sorted
  std::vector<PointId> original_ids;   ///< points[i] came from input[original_ids[i]]
  std::vector<CellRange> cells;        ///< G
  std::vector<PointId> lookup;         ///< A
  std::vector<std::uint32_t> nonempty_cells;  ///< S
  std::uint32_t max_cell_occupancy = 0;
  /// Linear id of cells[0] (nonzero only for shard sub-indexes).
  std::uint32_t cell_base = 0;
  /// Number of query (owned) points; 0 means every point is owned. A
  /// shard's ghost points are resident for distance tests but never
  /// queried, counted, or assigned to batches.
  std::uint32_t num_query = 0;
  /// Value-emission map: neighbor candidates are emitted as emit_ids[c]
  /// instead of their resident id c. Empty means identity. Shard
  /// sub-indexes set this to local->global so kernels produce globally
  /// addressed neighbor values directly — the merge then never touches
  /// individual pairs. Comparisons (the half-scan ordering rule) stay in
  /// resident-id space; only the emitted value is mapped.
  std::vector<PointId> emit_ids;

  [[nodiscard]] std::size_t size() const noexcept { return points.size(); }
  [[nodiscard]] std::size_t query_count() const noexcept {
    return num_query != 0 ? num_query : points.size();
  }
  [[nodiscard]] PointId emit(PointId c) const noexcept {
    return emit_ids.empty() ? c : emit_ids[c];
  }
};

/// Non-owning view of the index data; what kernels receive. The pointers
/// may reference host vectors (tests) or device buffers (the real pipeline).
struct GridView {
  GridParams params;
  const Point2* points = nullptr;
  std::uint32_t num_points = 0;  ///< resident points (extent of the arrays)
  const CellRange* cells = nullptr;
  const PointId* lookup = nullptr;
  std::uint32_t cell_base = 0;  ///< linear id of cells[0] (shard slabs)
  std::uint32_t num_query = 0;  ///< owned prefix; 0 = num_points
  /// Optional value-emission map (GridIndex::emit_ids); null = identity.
  const PointId* emit_ids = nullptr;

  /// The batch/query domain: kernels iterate points [0, query_count()).
  [[nodiscard]] std::uint32_t query_count() const noexcept {
    return num_query != 0 ? num_query : num_points;
  }

  [[nodiscard]] PointId emit(PointId c) const noexcept {
    return emit_ids == nullptr ? c : emit_ids[c];
  }

  [[nodiscard]] static GridView of(const GridIndex& g) noexcept {
    return GridView{g.params,
                    g.points.data(),
                    static_cast<std::uint32_t>(g.points.size()),
                    g.cells.data(),
                    g.lookup.data(),
                    g.cell_base,
                    g.num_query,
                    g.emit_ids.empty() ? nullptr : g.emit_ids.data()};
  }
};

/// Builds the grid index for database `input` and search radius `eps`.
/// Throws std::invalid_argument for eps <= 0, an empty database, or a grid
/// that would exceed `max_cells` (the same capacity concern a 5 GB GPU
/// imposes on the cell array).
///
/// Ordering invariant (load-bearing for ScanMode::kHalf): within every
/// cell's [begin, end) range the lookup array A stores point ids in
/// strictly ascending order. The counting sort fills A by walking the
/// (bin-sorted) database in index order with one cursor per cell, so ids
/// land in each cell in increasing order by construction; the builder
/// verifies this before returning. Half-comparison kernels rely on it to
/// binary-search their own lookup position and scan only same-cell
/// candidates with id >= their own.
GridIndex build_grid_index(std::span<const Point2> input, float eps,
                           std::uint64_t max_cells = 1ull << 27);

/// Reference search used by tests and the host fallback: all point ids
/// (into the index's reordered D) within eps of q.
void grid_query(const GridIndex& index, const Point2& q, float eps,
                std::vector<PointId>& out);

/// Forward-only reference search mirroring the kernels' ScanMode::kHalf
/// traversal for point id `query` (an id into the index's reordered D):
/// same-cell candidates with id >= query (including query itself) plus all
/// points of the forward-stencil cells, distance-filtered. The union of
/// forward results over all queries, transposed, is the full neighbor
/// table — the host-fallback shard builder and the equivalence tests use
/// exactly this.
void grid_query_forward(const GridIndex& index, PointId query, float eps,
                        std::vector<PointId>& out);

}  // namespace hdbscan
