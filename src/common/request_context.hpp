// Request-scoped attribution context (DESIGN.md §14).
//
// The clustering service mints one RequestContext per admitted job and
// installs it — via the RAII RequestScope — on every thread that does
// work for that job: the service worker itself, the builder's stream
// pump threads, sharded_build's per-device workers, StreamingDbscan's
// finalize threads, and anything routed through ThreadPool. The tracer
// (obs/trace.cpp) reads the calling thread's context at record time, so
// every span/instant/counter carries the request it serves without any
// call-site changes.
//
// This lives in common/ (not obs/) because ThreadPool must capture the
// context at submit time and common cannot depend on obs. The context is
// plain thread-local data: installing or reading it never locks, and a
// thread with no scope installed reports request_id 0 ("unattributed").
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>

namespace hdbscan {

/// Identity of the request the calling thread is currently serving.
struct RequestContext {
  /// 0 = no request (unattributed background work).
  std::uint64_t request_id = 0;
  /// When this request rides another request's build (coalesced member,
  /// cache hit), the id of the request whose spans did the work.
  std::uint64_t link_id = 0;
  char tenant[24] = {};

  [[nodiscard]] bool valid() const noexcept { return request_id != 0; }

  void set_tenant(const char* name) noexcept {
    std::snprintf(tenant, sizeof(tenant), "%s", name == nullptr ? "" : name);
  }
};

namespace detail {
inline thread_local RequestContext t_request_context;
}  // namespace detail

/// The calling thread's current context (request_id 0 when none).
[[nodiscard]] inline const RequestContext& current_request_context() noexcept {
  return detail::t_request_context;
}

/// Installs `ctx` as the calling thread's context for the enclosing
/// scope; restores the previous context on destruction, so nested scopes
/// (a worker serving job B inside a pool task captured under job A)
/// unwind correctly.
class RequestScope {
 public:
  explicit RequestScope(const RequestContext& ctx) noexcept
      : prev_(detail::t_request_context) {
    detail::t_request_context = ctx;
  }
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;
  ~RequestScope() { detail::t_request_context = prev_; }

 private:
  RequestContext prev_;
};

/// Process-unique, monotonically increasing request id (never 0).
[[nodiscard]] inline std::uint64_t mint_request_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hdbscan
