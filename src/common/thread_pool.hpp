// Fixed-size worker pool with a blocking task queue and a parallel_for
// helper. Used by the host-side clustering pipeline, the data-reuse
// scheduler, and by cudasim to execute kernel blocks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/request_context.hpp"

namespace hdbscan {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1). Defaults to hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its result. The submitter's
  /// RequestContext is captured here and re-installed on the worker for
  /// the task's duration, so request attribution survives the pool hop
  /// (parallel_for inherits this through its submit calls).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task, ctx = current_request_context()]() mutable {
        RequestScope scope(ctx);
        (*task)();
      });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Iterations are chunked; `grain` caps the chunk size (0 = auto).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Process-wide pool shared by components that do not need isolation.
ThreadPool& global_pool();

}  // namespace hdbscan
