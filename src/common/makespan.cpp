#include "common/makespan.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

namespace hdbscan {

double makespan_seconds(std::span<const double> durations,
                        std::size_t num_workers) {
  if (num_workers == 0) throw std::invalid_argument("makespan: 0 workers");
  // Min-heap of worker free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (std::size_t i = 0; i < num_workers; ++i) free_at.push(0.0);
  double makespan = 0.0;
  for (double d : durations) {
    const double start = free_at.top();
    free_at.pop();
    const double finish = start + d;
    free_at.push(finish);
    makespan = std::max(makespan, finish);
  }
  return makespan;
}

double pipeline_makespan_seconds(std::span<const double> produce,
                                 std::span<const double> consume,
                                 std::size_t num_consumers) {
  if (produce.size() != consume.size()) {
    throw std::invalid_argument("pipeline_makespan: length mismatch");
  }
  if (num_consumers == 0) {
    throw std::invalid_argument("pipeline_makespan: 0 consumers");
  }
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (std::size_t i = 0; i < num_consumers; ++i) free_at.push(0.0);
  double produced_at = 0.0;
  double makespan = 0.0;
  for (std::size_t i = 0; i < produce.size(); ++i) {
    produced_at += produce[i];  // single producer, sequential
    const double start = std::max(produced_at, free_at.top());
    free_at.pop();
    const double finish = start + consume[i];
    free_at.push(finish);
    makespan = std::max(makespan, finish);
  }
  return std::max(makespan, produced_at);
}

double interval_union_seconds(std::span<const Interval> spans) {
  std::vector<Interval> sorted;
  sorted.reserve(spans.size());
  for (const Interval& s : spans) {
    if (s.end > s.begin) sorted.push_back(s);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  double total = 0.0;
  double cur_begin = 0.0;
  double cur_end = 0.0;
  bool open = false;
  for (const Interval& s : sorted) {
    if (!open) {
      cur_begin = s.begin;
      cur_end = s.end;
      open = true;
    } else if (s.begin <= cur_end) {
      cur_end = std::max(cur_end, s.end);
    } else {
      total += cur_end - cur_begin;
      cur_begin = s.begin;
      cur_end = s.end;
    }
  }
  if (open) total += cur_end - cur_begin;
  return total;
}

}  // namespace hdbscan
