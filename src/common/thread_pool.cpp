#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace hdbscan {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (active_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) {
    grain = std::max<std::size_t>(1, n / (size() * 8));
  }
  const std::size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{begin};
  std::atomic<std::size_t> done_chunks{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  auto run_chunk = [&] {
    for (;;) {
      const std::size_t chunk_begin =
          next.fetch_add(grain, std::memory_order_relaxed);
      if (chunk_begin >= end) break;
      const std::size_t chunk_end = std::min(end, chunk_begin + grain);
      try {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    }
  };

  // The caller participates: with a single hardware core this degrades
  // gracefully to sequential execution instead of deadlocking on itself.
  const std::size_t helpers = std::min(size(), num_chunks - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) {
    futures.push_back(submit(run_chunk));
  }
  run_chunk();
  {
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] {
      return done_chunks.load(std::memory_order_acquire) == num_chunks;
    });
  }
  for (auto& f : futures) f.get();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return active_ == 0 && queue_.empty(); });
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hdbscan
