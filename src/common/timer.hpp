// Wall-clock timing utilities.
//
// All reported experiment numbers are wall times from steady_clock;
// modeled (simulated-GPU) times come from cudasim's cost model instead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ctime>

namespace hdbscan {

/// Simple steady-clock stopwatch. Started on construction.
class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;

  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID). Unlike wall
/// time, this is immune to descheduling — on an oversubscribed host it
/// measures the work itself, not the contention. Used where a measured
/// host cost feeds the performance model.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() noexcept { reset(); }

  void reset() noexcept { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &start_); }

  [[nodiscard]] double seconds() const noexcept {
    timespec now{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &now);
    return static_cast<double>(now.tv_sec - start_.tv_sec) +
           1e-9 * static_cast<double>(now.tv_nsec - start_.tv_nsec);
  }

 private:
  timespec start_{};
};

/// Thread-safe accumulator of elapsed seconds, used e.g. to measure the
/// fraction of DBSCAN time spent inside index searches (paper Table I).
class TimeAccumulator {
 public:
  void add(double seconds) noexcept {
    double cur = total_.load(std::memory_order_relaxed);
    while (!total_.compare_exchange_weak(cur, cur + seconds,
                                         std::memory_order_relaxed)) {
    }
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] double total_seconds() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    total_.store(0.0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> total_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII guard that adds its lifetime to a TimeAccumulator. A null
/// accumulator disables measurement (zero-cost opt-out at call sites).
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator* acc) noexcept : acc_(acc) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (acc_ != nullptr) acc_->add(timer_.seconds());
  }

 private:
  TimeAccumulator* acc_;
  WallTimer timer_;
};

}  // namespace hdbscan
