// An allocator adaptor that default-initializes instead of value-
// initializing on vector growth. For trivial element types this makes
// `resize(n)` / `vector(n)` skip the zero-fill — the right tool for
// buffers whose every slot is written exactly once afterwards (the
// neighbor-table value array: multi-megabyte, rebuilt per expansion, and
// the zero-fill would sit on the serial critical path).
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace hdbscan {

template <typename T, typename A = std::allocator<T>>
class DefaultInitAllocator : public A {
  using traits = std::allocator_traits<A>;

 public:
  template <typename U>
  struct rebind {
    using other =
        DefaultInitAllocator<U, typename traits::template rebind_alloc<U>>;
  };

  using A::A;

  template <typename U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }

  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    traits::construct(static_cast<A&>(*this), ptr,
                      std::forward<Args>(args)...);
  }
};

}  // namespace hdbscan
