// Environment-variable knobs shared by benches and examples.
#pragma once

#include <cstddef>

namespace hdbscan {

/// HDBSCAN_SCALE: multiplier applied to default dataset sizes (default 1.0).
[[nodiscard]] double env_scale();

/// HDBSCAN_TRIALS: trials averaged per measurement (default 1; paper used 3).
[[nodiscard]] int env_trials();

/// Scale a default dataset size by env_scale(), with a floor of 1000 points.
[[nodiscard]] std::size_t scaled_size(std::size_t base);

}  // namespace hdbscan
