// Modeled parallel makespan.
//
// The paper's Figure 5 measures response time vs. number of host threads on
// a 16-core machine. This container has one physical core, so real wall
// times cannot show multicore scaling. We therefore (a) still execute the
// multithreaded code paths for correctness, and (b) report the makespan a
// k-worker machine would achieve, computed by scheduling each task's
// measured sequential duration with the same policy the real scheduler uses
// (greedy list scheduling in submission order — equivalent to a thread pool
// pulling tasks from a FIFO queue).
#pragma once

#include <cstddef>
#include <span>

namespace hdbscan {

/// Greedy list-scheduling makespan: tasks are assigned, in order, to the
/// worker that becomes free first. `durations` are per-task seconds.
[[nodiscard]] double makespan_seconds(std::span<const double> durations,
                                      std::size_t num_workers);

/// Makespan of the paper's producer/consumer pipeline: one producer builds
/// neighbor tables (durations `produce`) while `num_consumers` workers run
/// DBSCAN on them (durations `consume`, same length). Consumer i may start
/// only after producer finished item i.
[[nodiscard]] double pipeline_makespan_seconds(
    std::span<const double> produce, std::span<const double> consume,
    std::size_t num_consumers);

/// A half-open [begin, end) time interval in seconds.
struct Interval {
  double begin = 0.0;
  double end = 0.0;
};

/// Total covered time of the union of (possibly overlapping, possibly
/// nested) intervals. Zero- and negative-length intervals contribute
/// nothing. This is the makespan of work that may overlap — the
/// denominator of the trace profiler's overlap ratio.
[[nodiscard]] double interval_union_seconds(std::span<const Interval> spans);

}  // namespace hdbscan
