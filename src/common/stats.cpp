#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <stdexcept>

namespace hdbscan {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q not in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string format_bytes(std::size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (b >= 1ull << 30) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / double(1ull << 30));
  } else if (b >= 1ull << 20) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / double(1ull << 20));
  } else if (b >= 1ull << 10) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / double(1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace hdbscan
