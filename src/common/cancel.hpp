// Cooperative cancellation and deadline propagation.
//
// A CancelToken is a small shared flag a request front-end hands to the
// long-running build layers (NeighborTableBuilder, sharded_build,
// StreamingDbscan). The workers poll it at batch granularity — one relaxed
// atomic load on the happy path — and abandon the build by throwing
// OperationCancelled, which rides the existing hard-error unwind: streams
// drain, pooled buffers return to the device's BufferPool, and the caller
// sees a classified failure instead of a completed-but-unwanted result.
//
// Deadlines are just self-arming cancellation: set_deadline stores a
// steady_clock instant and the first poll past it latches the token into
// the kDeadline state. Latching makes the reason stable — every layer that
// observes the token afterwards reports the same cause, however the races
// between a client cancel and a deadline expiry fall.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace hdbscan {

/// Why a cancelled operation stopped. kNone means "not cancelled".
enum class CancelReason : int {
  kNone = 0,
  kCancelled = 1,  ///< explicit cancel() — client abandoned the request
  kDeadline = 2,   ///< the token's deadline passed
};

/// Thrown by workers that observe a cancelled token mid-operation.
class OperationCancelled : public std::runtime_error {
 public:
  explicit OperationCancelled(CancelReason reason)
      : std::runtime_error(reason == CancelReason::kDeadline
                               ? "operation deadline exceeded"
                               : "operation cancelled"),
        reason_(reason) {}

  [[nodiscard]] CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

/// Shared cancellation flag + optional deadline. Thread-safe; one token is
/// typically polled concurrently by every stream thread of a build.
class CancelToken {
 public:
  CancelToken() = default;

  /// Arms the token with an absolute steady_clock deadline. The token
  /// latches into the kDeadline state on the first poll at or past it.
  void set_deadline(std::chrono::steady_clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Convenience: deadline `seconds` from now (<= 0 expires immediately).
  void set_deadline_after(double seconds) noexcept {
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(
                     static_cast<std::int64_t>(seconds * 1e9)));
  }

  /// Client-abandoned cancellation. A deadline that already latched wins:
  /// the first observed reason is the reason.
  void cancel() noexcept {
    int expected = 0;
    state_.compare_exchange_strong(
        expected, static_cast<int>(CancelReason::kCancelled),
        std::memory_order_relaxed);
  }

  /// One relaxed load on the live path; checks (and latches) the deadline
  /// only while the token is still live.
  [[nodiscard]] bool cancelled() const noexcept {
    if (state_.load(std::memory_order_relaxed) != 0) return true;
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >= d) {
      int expected = 0;
      state_.compare_exchange_strong(
          expected, static_cast<int>(CancelReason::kDeadline),
          std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  [[nodiscard]] CancelReason reason() const noexcept {
    return static_cast<CancelReason>(state_.load(std::memory_order_relaxed));
  }

  /// Throws OperationCancelled if the token is cancelled or past deadline.
  void check() const {
    if (cancelled()) throw OperationCancelled(reason());
  }

 private:
  mutable std::atomic<int> state_{0};        ///< latched CancelReason
  std::atomic<std::int64_t> deadline_ns_{0}; ///< steady_clock ns; 0 = none
};

/// Polls a possibly-null token (the convention every build layer uses for
/// its optional cancellation hook).
inline void check_cancel(const CancelToken* token) {
  if (token != nullptr) token->check();
}

}  // namespace hdbscan
