// Deterministic, seedable random number generation.
//
// All stochastic components (data generators, property tests, failure
// injection) draw from these generators so every run is reproducible from a
// single 64-bit seed. xoshiro256** is used instead of std::mt19937 for
// speed and because its output is stable across standard library
// implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace hdbscan {

/// SplitMix64 — used to seed xoshiro from a single 64-bit value and as a
/// cheap standalone mixer.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9d2c5680u) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) noexcept {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with given rate (lambda).
  double exponential(double lambda) noexcept {
    return -std::log1p(-uniform()) / lambda;
  }

  /// Pareto (heavy tail) with shape alpha and scale x_min >= 1.
  double pareto(double alpha, double x_min = 1.0) noexcept {
    return x_min / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  /// Derive an independent child generator (for per-thread streams).
  Xoshiro256 split() noexcept { return Xoshiro256((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace hdbscan
