#include "common/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace hdbscan {

double env_scale() {
  if (const char* s = std::getenv("HDBSCAN_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

int env_trials() {
  if (const char* s = std::getenv("HDBSCAN_TRIALS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 1;
}

std::size_t scaled_size(std::size_t base) {
  const double scaled = static_cast<double>(base) * env_scale();
  return std::max<std::size_t>(1000, static_cast<std::size_t>(scaled));
}

}  // namespace hdbscan
