// Core value types shared by every subsystem.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>

namespace hdbscan {

/// A 2-D point. The paper clusters spatial (x, y) data; float matches the
/// precision used on the GPU in the original implementation.
struct Point2 {
  float x = 0.0f;
  float y = 0.0f;

  friend bool operator==(const Point2&, const Point2&) = default;
};

/// Squared Euclidean distance; kernels compare against eps^2 to avoid sqrt.
[[nodiscard]] inline float dist2(const Point2& a, const Point2& b) noexcept {
  const float dx = a.x - b.x;
  const float dy = a.y - b.y;
  return dx * dx + dy * dy;
}

[[nodiscard]] inline float dist(const Point2& a, const Point2& b) noexcept {
  return std::sqrt(dist2(a, b));
}

/// Returns true when q lies inside the closed eps-ball around p.
[[nodiscard]] inline bool within_eps(const Point2& p, const Point2& q,
                                     float eps) noexcept {
  return dist2(p, q) <= eps * eps;
}

/// A 3-D point (the paper's method generalizes beyond 2-D: the grid gains
/// a third axis and neighborhoods span 27 cells instead of 9).
struct Point3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  friend bool operator==(const Point3&, const Point3&) = default;
};

[[nodiscard]] inline float dist2(const Point3& a, const Point3& b) noexcept {
  const float dx = a.x - b.x;
  const float dy = a.y - b.y;
  const float dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

[[nodiscard]] inline float dist(const Point3& a, const Point3& b) noexcept {
  return std::sqrt(dist2(a, b));
}

/// Axis-aligned bounding rectangle (used by the R-tree and generators).
struct Rect2 {
  float min_x = std::numeric_limits<float>::max();
  float min_y = std::numeric_limits<float>::max();
  float max_x = std::numeric_limits<float>::lowest();
  float max_y = std::numeric_limits<float>::lowest();

  void expand(const Point2& p) noexcept {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }

  void expand(const Rect2& r) noexcept {
    min_x = std::min(min_x, r.min_x);
    max_x = std::max(max_x, r.max_x);
    min_y = std::min(min_y, r.min_y);
    max_y = std::max(max_y, r.max_y);
  }

  [[nodiscard]] bool contains(const Point2& p) const noexcept {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  [[nodiscard]] bool intersects(const Rect2& o) const noexcept {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }

  /// Minimum squared distance from p to this rectangle (0 when inside).
  [[nodiscard]] float min_dist2(const Point2& p) const noexcept {
    const float dx = p.x < min_x ? min_x - p.x : (p.x > max_x ? p.x - max_x : 0.0f);
    const float dy = p.y < min_y ? min_y - p.y : (p.y > max_y ? p.y - max_y : 0.0f);
    return dx * dx + dy * dy;
  }

  [[nodiscard]] float area() const noexcept {
    if (max_x < min_x || max_y < min_y) return 0.0f;
    return (max_x - min_x) * (max_y - min_y);
  }

  /// Rectangle enclosing the eps-ball around p (circle query pre-filter).
  [[nodiscard]] static Rect2 around(const Point2& p, float eps) noexcept {
    return Rect2{p.x - eps, p.y - eps, p.x + eps, p.y + eps};
  }
};

/// Point index into the database D. 32-bit matches the paper's GPU layout
/// (lookup array A and result-set keys/values are point ids).
using PointId = std::uint32_t;

/// A (key, value) neighbor pair produced by the GPU kernels: `value` lies
/// within eps of `key`. Matches the paper's result-set element r_j = (k, v).
struct NeighborPair {
  PointId key = 0;
  PointId value = 0;

  friend auto operator<=>(const NeighborPair&, const NeighborPair&) = default;
};

/// How the epsilon-neighborhood kernels traverse the candidate space.
///
/// Distance is symmetric, so the full 9-cell (27-cell in 3-D) scan
/// evaluates every qualifying pair (i, j) twice — once from each side.
/// kHalf exploits the grid index's ordering invariant (within a cell the
/// lookup array stores point ids in ascending order; see build_grid_index)
/// to test each pair exactly once: a query scans only the same-cell
/// candidates at lookup positions at or after its own, plus the cells of
/// the forward stencil (linear cell id greater than its own). Each tested
/// pair is then emitted in both directions — either device-side (the
/// shared-tile kernel's dual-row staged push) or host-side (the batched
/// pipelines emit forward rows and NeighborTable::expand_half_table
/// transposes them after the shard merge).
enum class ScanMode {
  kFull,  ///< legacy bidirectional scan: every pair tested twice
  kHalf,  ///< unidirectional scan: every pair tested once, emitted twice
};

/// How much exactness a clustering run trades for throughput. Every exact
/// pipeline does work proportional to the eps-pair count; the approximate
/// modes break that ceiling two grounded ways (see DESIGN.md §16):
/// subsampled similarity queries (SNG-DBSCAN) and eps/sqrt(d) cell-graph
/// unions (theoretically-efficient parallel DBSCAN).
enum class ClusterQuality {
  kExact,       ///< every eps-pair evaluated (the paper's pipelines)
  kSubsampled,  ///< seeded per-pair Bernoulli sampling of similarity queries
  kCellGraph,   ///< union whole eps/sqrt(d) cells; pairs -> cells + boundary
};

[[nodiscard]] constexpr std::string_view to_string(ClusterQuality q) noexcept {
  switch (q) {
    case ClusterQuality::kSubsampled: return "subsampled";
    case ClusterQuality::kCellGraph: return "cellgraph";
    case ClusterQuality::kExact: break;
  }
  return "exact";
}

[[nodiscard]] inline std::optional<ClusterQuality> parse_cluster_quality(
    std::string_view name) noexcept {
  if (name == "exact") return ClusterQuality::kExact;
  if (name == "subsampled") return ClusterQuality::kSubsampled;
  if (name == "cellgraph" || name == "cell-graph") {
    return ClusterQuality::kCellGraph;
  }
  return std::nullopt;
}

/// The quality knob an entire run is parameterized by: the mode plus the
/// Bernoulli sample rate and seed the subsampled kernels hash with.
///
/// Sampling is a pure function of (seed, unordered point-id pair), so the
/// kFull scan's two sides, the kHalf scan's single side, retries, batch
/// splits, device failover, and the host-fallback rungs all make the same
/// keep/drop decision — labels stay bit-identical for a fixed seed no
/// matter which ladder served the pair. Self-pairs are always kept (a
/// point is trivially its own neighbor; dropping them would skew degrees).
struct QualitySpec {
  ClusterQuality mode = ClusterQuality::kExact;
  float sample_rate = 1.0f;   ///< Bernoulli keep probability (kSubsampled)
  std::uint64_t seed = 0x5107u;  ///< hash seed for the per-pair decision

  friend bool operator==(const QualitySpec&, const QualitySpec&) = default;

  /// True when the kernels must actually filter candidate pairs.
  [[nodiscard]] bool sampled() const noexcept {
    return mode == ClusterQuality::kSubsampled && sample_rate < 1.0f;
  }

  /// keep iff mix(pair) < threshold; rate 1 maps to "keep everything".
  [[nodiscard]] std::uint64_t threshold() const noexcept {
    const float r = std::clamp(sample_rate, 0.0f, 1.0f);
    if (r >= 1.0f) return ~0ull;
    return static_cast<std::uint64_t>(
        static_cast<double>(r) * 18446744073709551616.0);
  }

  /// Deterministic symmetric per-pair Bernoulli trial (SplitMix64 mix of
  /// the canonicalized id pair). Both directions of a pair agree.
  [[nodiscard]] bool keep_pair(PointId a, PointId b) const noexcept {
    if (a == b || !sampled()) return true;
    const std::uint64_t lo = a < b ? a : b;
    const std::uint64_t hi = a < b ? b : a;
    std::uint64_t z = seed + (lo << 32 | hi) + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z < threshold();
  }

  /// The SNG-rescaled core threshold: a point that would see `minpts`
  /// neighbors exactly sees ~`minpts * s` of them after sampling.
  [[nodiscard]] int scaled_minpts(int minpts) const noexcept {
    if (mode != ClusterQuality::kSubsampled) return minpts;
    const float r = std::clamp(sample_rate, 0.0f, 1.0f);
    return std::max(1, static_cast<int>(
                           std::lround(r * static_cast<float>(minpts))));
  }

  /// Bit pattern of the sample rate, for hashable cache/coalescing keys.
  [[nodiscard]] std::uint32_t sample_rate_bits() const noexcept {
    return std::bit_cast<std::uint32_t>(sample_rate);
  }
};

}  // namespace hdbscan
