// Descriptive statistics and small formatting helpers for benches/tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hdbscan {

/// Streaming mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Folds another accumulator into this one (Chan et al. pairwise
  /// update). Associative and commutative up to floating-point rounding,
  /// so per-thread accumulators can be merged in any order.
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; `q` in [0, 1]. Sorts a copy.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Human-readable quantities for bench output ("1.24 s", "83.1 ms",
/// "3.2 GB", "1,864,620").
[[nodiscard]] std::string format_seconds(double seconds);
[[nodiscard]] std::string format_bytes(std::size_t bytes);
[[nodiscard]] std::string format_count(std::uint64_t n);

}  // namespace hdbscan
