// Dataset persistence: a simple binary format (magic + count + xy floats)
// and CSV import/export compatible with the paper's dbscandat layout
// (one "x,y" record per line).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace hdbscan::data {

/// Writes points as little-endian binary: "HDB2" magic, u64 count, then
/// count * 2 floats. Throws std::runtime_error on I/O failure.
void save_binary(const std::string& path, const std::vector<Point2>& points);

/// Reads the binary format written by save_binary.
std::vector<Point2> load_binary(const std::string& path);

/// Writes "x,y\n" per point.
void save_csv(const std::string& path, const std::vector<Point2>& points);

/// Reads "x,y" per line; skips blank lines and lines starting with '#'.
std::vector<Point2> load_csv(const std::string& path);

}  // namespace hdbscan::data
