// Synthetic 2-D dataset generators standing in for the paper's real data
// (the FTP-hosted space-weather TEC measurements and SDSS DR12 galaxies are
// not available offline; see DESIGN.md §1 for the substitution rationale).
//
// Two families reproduce the spatial characteristics the paper's analysis
// hinges on:
//  * Space weather (SW-)  — "many overdense regions as a function of the
//    relative locations of GPS receivers": receiver sites cluster into
//    geographic regions; measurements pile up tightly around sites with a
//    heavy-tailed site popularity, over a sparse background.
//  * Sky survey (SDSS-)   — "more uniformly distributed": a dominant
//    uniform field plus weak large-scale structure (low-contrast blobs and
//    thin filaments).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hdbscan::data {

struct SpaceWeatherParams {
  float width = 35.0f;
  float height = 35.0f;
  unsigned num_regions = 12;       ///< continental clumps of receivers
  unsigned sites_per_region = 80;  ///< GPS receiver sites per region
  float region_sigma = 3.0f;       ///< site scatter around a region center
  float site_sigma = 0.35f;        ///< measurement scatter around a site
  double background_fraction = 0.12;
  double site_zipf_exponent = 0.7; ///< heavy-tailed site popularity
};

struct SkySurveyParams {
  float width = 35.0f;
  float height = 35.0f;
  double uniform_fraction = 0.72;
  unsigned num_blobs = 350;        ///< weak galaxy-cluster overdensities
  float blob_sigma = 0.45f;
  double blob_fraction = 0.2;
  unsigned num_filaments = 25;     ///< thin large-scale-structure strands
  float filament_sigma = 0.15f;    ///< transverse scatter along a filament
};

/// Skewed, hotspot-heavy distribution (SW- family).
std::vector<Point2> generate_space_weather(std::size_t n, std::uint64_t seed,
                                           const SpaceWeatherParams& params = {});

/// Near-uniform distribution with mild structure (SDSS- family).
std::vector<Point2> generate_sky_survey(std::size_t n, std::uint64_t seed,
                                        const SkySurveyParams& params = {});

/// Plain uniform points (tests and ablations).
std::vector<Point2> generate_uniform(std::size_t n, std::uint64_t seed,
                                     float width, float height);

/// Gaussian blobs with known membership (tests: DBSCAN should recover the
/// blobs). `labels_out`, if non-null, receives the generating blob id of
/// each point (noise points get -1).
std::vector<Point2> generate_gaussian_blobs(std::size_t n, std::uint64_t seed,
                                            unsigned num_blobs, float sigma,
                                            float width, float height,
                                            double noise_fraction = 0.0,
                                            std::vector<int>* labels_out = nullptr);

}  // namespace hdbscan::data
