// Named datasets mirroring the paper's evaluation data at reduced scale.
//
// Paper sizes:  SW1 1,864,620 / SW4 5,159,737 / SDSS1 2e6 / SDSS2 5e6 /
// SDSS3 15,228,633 points. Defaults here keep the ratios at 1/32 scale so
// the single-core benches finish; HDBSCAN_SCALE scales all of them.
// Domains are sized per family so the paper's epsilon sweeps produce
// neighborhood cardinalities in a comparable regime (see DESIGN.md §4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace hdbscan::data {

struct DatasetInfo {
  std::string name;
  std::size_t paper_size = 0;    ///< |D| in the paper
  std::size_t default_size = 0;  ///< |D| here before HDBSCAN_SCALE
  bool skewed = false;           ///< SW- (true) vs SDSS- (false)
  float domain = 0.0f;           ///< square domain side length
};

/// The five evaluation datasets (SW1, SW4, SDSS1, SDSS2, SDSS3).
const std::vector<DatasetInfo>& dataset_registry();

/// Info for one name; throws std::invalid_argument for unknown names.
const DatasetInfo& dataset_info(std::string_view name);

/// The fixed generator seed for a named dataset (derived from the name).
/// Exposed so benchmark outputs can record the exact seed they ran with.
[[nodiscard]] std::uint64_t dataset_seed(std::string_view name);

/// Generates the named dataset at `size` points (0 = scaled default,
/// i.e. default_size * HDBSCAN_SCALE). Deterministic per name.
std::vector<Point2> make_dataset(std::string_view name, std::size_t size = 0);

}  // namespace hdbscan::data
