#include "data/io.hpp"

#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hdbscan::data {

namespace {
constexpr std::array<char, 4> kMagic = {'H', 'D', 'B', '2'};
}

void save_binary(const std::string& path, const std::vector<Point2>& points) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_binary: cannot open " + path);
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t count = points.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(points.data()),
            static_cast<std::streamsize>(points.size() * sizeof(Point2)));
  if (!out) throw std::runtime_error("save_binary: write failed for " + path);
}

std::vector<Point2> load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_binary: cannot open " + path);
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_binary: bad magic in " + path);
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw std::runtime_error("load_binary: truncated header in " + path);
  std::vector<Point2> points(count);
  in.read(reinterpret_cast<char*>(points.data()),
          static_cast<std::streamsize>(count * sizeof(Point2)));
  if (!in) throw std::runtime_error("load_binary: truncated data in " + path);
  return points;
}

void save_csv(const std::string& path, const std::vector<Point2>& points) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_csv: cannot open " + path);
  for (const Point2& p : points) {
    out << p.x << ',' << p.y << '\n';
  }
  if (!out) throw std::runtime_error("save_csv: write failed for " + path);
}

std::vector<Point2> load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_csv: cannot open " + path);
  std::vector<Point2> points;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    Point2 p;
    char comma = 0;
    if (!(ss >> p.x >> comma >> p.y) || comma != ',') {
      throw std::runtime_error("load_csv: malformed line " +
                               std::to_string(lineno) + " in " + path);
    }
    points.push_back(p);
  }
  return points;
}

}  // namespace hdbscan::data
