#include "data/datasets.hpp"

#include <stdexcept>

#include "common/env.hpp"
#include "data/generators.hpp"

namespace hdbscan::data {

const std::vector<DatasetInfo>& dataset_registry() {
  static const std::vector<DatasetInfo> registry = {
      {"SW1", 1'864'620, 29'135, true, 35.0f},
      {"SW4", 5'159'737, 80'621, true, 55.0f},
      {"SDSS1", 2'000'000, 31'250, false, 35.0f},
      {"SDSS2", 5'000'000, 78'125, false, 35.0f},
      {"SDSS3", 15'228'633, 237'947, false, 27.0f},
  };
  return registry;
}

const DatasetInfo& dataset_info(std::string_view name) {
  for (const auto& info : dataset_registry()) {
    if (info.name == name) return info;
  }
  throw std::invalid_argument("unknown dataset: " + std::string(name));
}

std::uint64_t dataset_seed(std::string_view name) {
  const DatasetInfo& info = dataset_info(name);
  // Seed derived from the name so each dataset is distinct but stable.
  std::uint64_t seed = 0x243f6a8885a308d3ull;
  for (const char c : info.name) {
    seed = seed * 131 + static_cast<unsigned char>(c);
  }
  return seed;
}

std::vector<Point2> make_dataset(std::string_view name, std::size_t size) {
  const DatasetInfo& info = dataset_info(name);
  if (size == 0) size = scaled_size(info.default_size);
  const std::uint64_t seed = dataset_seed(name);

  if (info.skewed) {
    SpaceWeatherParams params;
    params.width = params.height = info.domain;
    return generate_space_weather(size, seed, params);
  }
  SkySurveyParams params;
  params.width = params.height = info.domain;
  return generate_sky_survey(size, seed, params);
}

}  // namespace hdbscan::data
