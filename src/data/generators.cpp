#include "data/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace hdbscan::data {

namespace {

float clamp_to(float v, float lo, float hi) {
  return std::min(hi, std::max(lo, v));
}

/// Samples an index in [0, n) with Zipf-like weights i^-s via inverse CDF
/// over precomputed cumulative weights.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  std::size_t operator()(Xoshiro256& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

std::vector<Point2> generate_space_weather(std::size_t n, std::uint64_t seed,
                                           const SpaceWeatherParams& p) {
  Xoshiro256 rng(seed);
  std::vector<Point2> points;
  points.reserve(n);

  // Region centers (continents with GPS coverage), then receiver sites
  // scattered around them.
  std::vector<Point2> sites;
  sites.reserve(static_cast<std::size_t>(p.num_regions) * p.sites_per_region);
  for (unsigned r = 0; r < p.num_regions; ++r) {
    const Point2 center{rng.uniform(0.0f, p.width), rng.uniform(0.0f, p.height)};
    for (unsigned s = 0; s < p.sites_per_region; ++s) {
      sites.push_back(Point2{
          clamp_to(static_cast<float>(rng.normal(center.x, p.region_sigma)),
                   0.0f, p.width),
          clamp_to(static_cast<float>(rng.normal(center.y, p.region_sigma)),
                   0.0f, p.height)});
    }
  }
  // Heavy-tailed site popularity: a few sites account for most data, which
  // produces the strong over-dense regions the paper attributes to SW-.
  const ZipfSampler pick_site(sites.size(), p.site_zipf_exponent);

  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < p.background_fraction) {
      points.push_back(
          Point2{rng.uniform(0.0f, p.width), rng.uniform(0.0f, p.height)});
      continue;
    }
    const Point2& site = sites[pick_site(rng)];
    points.push_back(Point2{
        clamp_to(static_cast<float>(rng.normal(site.x, p.site_sigma)), 0.0f,
                 p.width),
        clamp_to(static_cast<float>(rng.normal(site.y, p.site_sigma)), 0.0f,
                 p.height)});
  }
  return points;
}

std::vector<Point2> generate_sky_survey(std::size_t n, std::uint64_t seed,
                                        const SkySurveyParams& p) {
  Xoshiro256 rng(seed);
  std::vector<Point2> points;
  points.reserve(n);

  std::vector<Point2> blob_centers;
  blob_centers.reserve(p.num_blobs);
  for (unsigned b = 0; b < p.num_blobs; ++b) {
    blob_centers.push_back(
        Point2{rng.uniform(0.0f, p.width), rng.uniform(0.0f, p.height)});
  }

  struct Filament {
    Point2 a, b;
  };
  std::vector<Filament> filaments;
  filaments.reserve(p.num_filaments);
  for (unsigned f = 0; f < p.num_filaments; ++f) {
    filaments.push_back(Filament{
        {rng.uniform(0.0f, p.width), rng.uniform(0.0f, p.height)},
        {rng.uniform(0.0f, p.width), rng.uniform(0.0f, p.height)}});
  }

  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    if (u < p.uniform_fraction || (p.num_blobs == 0 && p.num_filaments == 0)) {
      points.push_back(
          Point2{rng.uniform(0.0f, p.width), rng.uniform(0.0f, p.height)});
    } else if (u < p.uniform_fraction + p.blob_fraction && p.num_blobs > 0) {
      const Point2& c = blob_centers[rng.below(blob_centers.size())];
      points.push_back(Point2{
          clamp_to(static_cast<float>(rng.normal(c.x, p.blob_sigma)), 0.0f,
                   p.width),
          clamp_to(static_cast<float>(rng.normal(c.y, p.blob_sigma)), 0.0f,
                   p.height)});
    } else if (p.num_filaments > 0) {
      const Filament& f = filaments[rng.below(filaments.size())];
      const auto t = static_cast<float>(rng.uniform());
      const Point2 along{f.a.x + t * (f.b.x - f.a.x),
                         f.a.y + t * (f.b.y - f.a.y)};
      points.push_back(Point2{
          clamp_to(static_cast<float>(rng.normal(along.x, p.filament_sigma)),
                   0.0f, p.width),
          clamp_to(static_cast<float>(rng.normal(along.y, p.filament_sigma)),
                   0.0f, p.height)});
    } else {
      points.push_back(
          Point2{rng.uniform(0.0f, p.width), rng.uniform(0.0f, p.height)});
    }
  }
  return points;
}

std::vector<Point2> generate_uniform(std::size_t n, std::uint64_t seed,
                                     float width, float height) {
  Xoshiro256 rng(seed);
  std::vector<Point2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(
        Point2{rng.uniform(0.0f, width), rng.uniform(0.0f, height)});
  }
  return points;
}

std::vector<Point2> generate_gaussian_blobs(std::size_t n, std::uint64_t seed,
                                            unsigned num_blobs, float sigma,
                                            float width, float height,
                                            double noise_fraction,
                                            std::vector<int>* labels_out) {
  Xoshiro256 rng(seed);
  std::vector<Point2> points;
  points.reserve(n);
  if (labels_out != nullptr) {
    labels_out->clear();
    labels_out->reserve(n);
  }
  std::vector<Point2> centers;
  centers.reserve(num_blobs);
  // Place centers on a jittered grid so blobs stay separable.
  const auto side = static_cast<unsigned>(
      std::ceil(std::sqrt(static_cast<double>(num_blobs))));
  const float cell_w = width / static_cast<float>(side);
  const float cell_h = height / static_cast<float>(side);
  for (unsigned b = 0; b < num_blobs; ++b) {
    const unsigned gx = b % side;
    const unsigned gy = b / side;
    centers.push_back(Point2{
        (static_cast<float>(gx) + 0.5f) * cell_w +
            rng.uniform(-0.15f, 0.15f) * cell_w,
        (static_cast<float>(gy) + 0.5f) * cell_h +
            rng.uniform(-0.15f, 0.15f) * cell_h});
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < noise_fraction || num_blobs == 0) {
      points.push_back(
          Point2{rng.uniform(0.0f, width), rng.uniform(0.0f, height)});
      if (labels_out != nullptr) labels_out->push_back(-1);
      continue;
    }
    const std::size_t b = rng.below(num_blobs);
    points.push_back(Point2{
        clamp_to(static_cast<float>(rng.normal(centers[b].x, sigma)), 0.0f,
                 width),
        clamp_to(static_cast<float>(rng.normal(centers[b].y, sigma)), 0.0f,
                 height)});
    if (labels_out != nullptr) labels_out->push_back(static_cast<int>(b));
  }
  return points;
}

}  // namespace hdbscan::data
