#include "analysis/cluster_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace hdbscan::analysis {

std::vector<ClusterStats> compute_cluster_stats(
    std::span<const Point2> points, const ClusterResult& clusters) {
  if (points.size() != clusters.labels.size()) {
    throw std::invalid_argument("cluster_stats: size mismatch");
  }
  std::vector<ClusterStats> stats(
      static_cast<std::size_t>(clusters.num_clusters));
  for (std::size_t c = 0; c < stats.size(); ++c) {
    stats[c].cluster = static_cast<std::int32_t>(c);
  }
  // Accumulate sums.
  std::vector<double> sum_x(stats.size(), 0.0), sum_y(stats.size(), 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::int32_t l = clusters.labels[i];
    if (l < 0) continue;
    auto& s = stats[static_cast<std::size_t>(l)];
    ++s.size;
    sum_x[static_cast<std::size_t>(l)] += points[i].x;
    sum_y[static_cast<std::size_t>(l)] += points[i].y;
    s.bounds.expand(points[i]);
  }
  for (std::size_t c = 0; c < stats.size(); ++c) {
    if (stats[c].size == 0) continue;
    stats[c].centroid = {
        static_cast<float>(sum_x[c] / static_cast<double>(stats[c].size)),
        static_cast<float>(sum_y[c] / static_cast<double>(stats[c].size))};
  }
  // Second pass: RMS radius.
  std::vector<double> sq(stats.size(), 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::int32_t l = clusters.labels[i];
    if (l < 0) continue;
    sq[static_cast<std::size_t>(l)] +=
        dist2(points[i], stats[static_cast<std::size_t>(l)].centroid);
  }
  for (std::size_t c = 0; c < stats.size(); ++c) {
    if (stats[c].size == 0) continue;
    stats[c].rms_radius = static_cast<float>(
        std::sqrt(sq[c] / static_cast<double>(stats[c].size)));
    const float area = stats[c].bounds.area();
    stats[c].density = area > 0.0f
                           ? static_cast<float>(stats[c].size) / area
                           : std::numeric_limits<float>::infinity();
  }
  std::sort(stats.begin(), stats.end(),
            [](const ClusterStats& a, const ClusterStats& b) {
              if (a.size != b.size) return a.size > b.size;
              return a.cluster < b.cluster;
            });
  return stats;
}

namespace {

struct MapExtent {
  Rect2 bounds;
  float cell_w = 0.0f;
  float cell_h = 0.0f;

  MapExtent(std::span<const Point2> points, unsigned width, unsigned height) {
    if (points.empty() || width == 0 || height == 0) {
      throw std::invalid_argument("ascii map: empty input or zero size");
    }
    for (const Point2& p : points) bounds.expand(p);
    cell_w = std::max(1e-9f, (bounds.max_x - bounds.min_x)) /
             static_cast<float>(width);
    cell_h = std::max(1e-9f, (bounds.max_y - bounds.min_y)) /
             static_cast<float>(height);
  }

  [[nodiscard]] std::size_t cell(const Point2& p, unsigned width,
                                 unsigned height) const {
    auto cx = static_cast<std::size_t>((p.x - bounds.min_x) / cell_w);
    auto cy = static_cast<std::size_t>((p.y - bounds.min_y) / cell_h);
    cx = std::min<std::size_t>(cx, width - 1);
    cy = std::min<std::size_t>(cy, height - 1);
    return cy * width + cx;
  }
};

}  // namespace

std::string ascii_density_map(std::span<const Point2> points, unsigned width,
                              unsigned height) {
  const MapExtent extent(points, width, height);
  std::vector<std::size_t> counts(static_cast<std::size_t>(width) * height, 0);
  for (const Point2& p : points) ++counts[extent.cell(p, width, height)];

  std::size_t max_count = 0;
  for (const std::size_t c : counts) max_count = std::max(max_count, c);

  static constexpr char kRamp[] = {' ', '.', ':', '+', '#'};
  std::string out;
  out.reserve((width + 1) * height);
  for (unsigned row = 0; row < height; ++row) {
    // Rows top-down: larger y first, like a plot.
    const unsigned y = height - 1 - row;
    for (unsigned x = 0; x < width; ++x) {
      const std::size_t c = counts[static_cast<std::size_t>(y) * width + x];
      unsigned level = 0;
      if (c > 0 && max_count > 0) {
        const double frac = static_cast<double>(c) / static_cast<double>(max_count);
        level = frac > 0.5 ? 4 : frac > 0.15 ? 3 : frac > 0.04 ? 2 : 1;
      }
      out.push_back(kRamp[level]);
    }
    out.push_back('\n');
  }
  return out;
}

std::string ascii_cluster_map(std::span<const Point2> points,
                              const ClusterResult& clusters, unsigned width,
                              unsigned height) {
  if (points.size() != clusters.labels.size()) {
    throw std::invalid_argument("ascii_cluster_map: size mismatch");
  }
  const MapExtent extent(points, width, height);

  // Rank clusters by size: the biggest 26 get letters.
  std::vector<std::size_t> sizes(
      static_cast<std::size_t>(clusters.num_clusters), 0);
  for (const std::int32_t l : clusters.labels) {
    if (l >= 0) ++sizes[static_cast<std::size_t>(l)];
  }
  std::vector<std::int32_t> rank(sizes.size());
  for (std::size_t c = 0; c < rank.size(); ++c) {
    rank[c] = static_cast<std::int32_t>(c);
  }
  std::sort(rank.begin(), rank.end(), [&](std::int32_t a, std::int32_t b) {
    return sizes[static_cast<std::size_t>(a)] >
           sizes[static_cast<std::size_t>(b)];
  });
  std::vector<char> glyph(sizes.size(), '*');
  for (std::size_t r = 0; r < rank.size() && r < 26; ++r) {
    glyph[static_cast<std::size_t>(rank[r])] = static_cast<char>('a' + r);
  }

  // Dominant label per cell.
  const std::size_t num_cells = static_cast<std::size_t>(width) * height;
  std::vector<std::map<std::int32_t, std::size_t>> cell_votes(num_cells);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ++cell_votes[extent.cell(points[i], width, height)]
                [clusters.labels[i]];
  }

  std::string out;
  out.reserve((width + 1) * height);
  for (unsigned row = 0; row < height; ++row) {
    const unsigned y = height - 1 - row;
    for (unsigned x = 0; x < width; ++x) {
      const auto& votes = cell_votes[static_cast<std::size_t>(y) * width + x];
      if (votes.empty()) {
        out.push_back(' ');
        continue;
      }
      std::int32_t best_label = kNoise;
      std::size_t best_votes = 0;
      for (const auto& [label, count] : votes) {
        if (count > best_votes) {
          best_votes = count;
          best_label = label;
        }
      }
      out.push_back(best_label < 0
                        ? '.'
                        : glyph[static_cast<std::size_t>(best_label)]);
    }
    out.push_back('\n');
  }
  return out;
}

std::vector<ClusterMatch> track_clusters(const ClusterResult& from,
                                         const ClusterResult& to) {
  if (from.labels.size() != to.labels.size()) {
    throw std::invalid_argument("track_clusters: size mismatch");
  }
  // Overlap counts: (from cluster -> to cluster -> shared points).
  std::vector<std::map<std::int32_t, std::size_t>> overlap(
      static_cast<std::size_t>(from.num_clusters));
  std::vector<std::size_t> from_sizes(
      static_cast<std::size_t>(from.num_clusters), 0);
  std::vector<std::size_t> to_sizes(
      static_cast<std::size_t>(to.num_clusters), 0);
  for (std::size_t i = 0; i < from.labels.size(); ++i) {
    const std::int32_t f = from.labels[i];
    const std::int32_t t = to.labels[i];
    if (f >= 0) {
      ++from_sizes[static_cast<std::size_t>(f)];
      if (t >= 0) ++overlap[static_cast<std::size_t>(f)][t];
    }
    if (t >= 0) ++to_sizes[static_cast<std::size_t>(t)];
  }

  std::vector<ClusterMatch> matches;
  matches.reserve(overlap.size());
  for (std::size_t f = 0; f < overlap.size(); ++f) {
    ClusterMatch m;
    m.from_cluster = static_cast<std::int32_t>(f);
    for (const auto& [t, shared] : overlap[f]) {
      if (shared > m.shared) {
        m.shared = shared;
        m.to_cluster = t;
      }
    }
    if (m.to_cluster >= 0) {
      const std::size_t uni = from_sizes[f] +
                              to_sizes[static_cast<std::size_t>(m.to_cluster)] -
                              m.shared;
      m.jaccard = uni > 0 ? static_cast<double>(m.shared) /
                                static_cast<double>(uni)
                          : 0.0;
    }
    matches.push_back(m);
  }
  return matches;
}

}  // namespace hdbscan::analysis
