// Post-clustering analysis for the paper's motivating workflow: "large
// datasets in astronomy and geoscience often require clustering and
// visualizations of phenomena at different densities and scales in order
// to generate scientific insight" (§I).
//
//  * cluster statistics   — per-cluster centroid, extent, density;
//  * ASCII maps           — terminal-renderable density / cluster views;
//  * cluster tracking     — match clusters between two clusterings of the
//    same points (e.g. adjacent eps values of an S2 sweep) by overlap, to
//    follow how structures split and merge across scales.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dbscan/cluster_result.hpp"

namespace hdbscan::analysis {

struct ClusterStats {
  std::int32_t cluster = 0;
  std::size_t size = 0;
  Point2 centroid{};
  Rect2 bounds{};
  float rms_radius = 0.0f;  ///< RMS distance from the centroid
  float density = 0.0f;     ///< size / bounding-box area (inf-safe)
};

/// Per-cluster statistics, ordered by descending size.
std::vector<ClusterStats> compute_cluster_stats(
    std::span<const Point2> points, const ClusterResult& clusters);

/// Renders a width x height character map of point density (space, '.',
/// ':', '+', '#' by quantile).
std::string ascii_density_map(std::span<const Point2> points, unsigned width,
                              unsigned height);

/// Renders the clustering: the 26 largest clusters get 'a'..'z', smaller
/// ones '*', noise '.', empty cells ' '. Cells show the dominant label.
std::string ascii_cluster_map(std::span<const Point2> points,
                              const ClusterResult& clusters, unsigned width,
                              unsigned height);

/// How cluster `from_cluster` of `from` maps onto clusters of `to`.
struct ClusterMatch {
  std::int32_t from_cluster = 0;
  std::int32_t to_cluster = kNoise;  ///< best-overlap target (-1: dissolved)
  std::size_t shared = 0;            ///< points in both
  double jaccard = 0.0;
};

/// Greedy overlap matching between two clusterings of the same points —
/// tracks structures across scales (e.g. consecutive eps of a sweep).
std::vector<ClusterMatch> track_clusters(const ClusterResult& from,
                                         const ClusterResult& to);

}  // namespace hdbscan::analysis
