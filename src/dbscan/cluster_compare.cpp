#include "dbscan/cluster_compare.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "dbscan/union_find.hpp"

namespace hdbscan {

namespace {

std::vector<bool> core_mask(const NeighborTable& table, int minpts) {
  std::vector<bool> core(table.num_points());
  for (PointId i = 0; i < table.num_points(); ++i) {
    core[i] = table.neighbor_count(i) >= static_cast<std::uint32_t>(minpts);
  }
  return core;
}

CompareOutcome fail(std::string msg) { return {false, std::move(msg)}; }

}  // namespace

CompareOutcome validate_dbscan_result(const ClusterResult& result,
                                      const NeighborTable& table,
                                      int minpts) {
  const std::size_t n = table.num_points();
  if (result.labels.size() != n) {
    return fail("label vector size mismatch");
  }
  const std::vector<bool> core = core_mask(table, minpts);

  // Ground-truth core partition: union cores that are within eps.
  UnionFind uf(n);
  for (PointId i = 0; i < n; ++i) {
    if (!core[i]) continue;
    for (const PointId j : table.neighbors(i)) {
      if (core[j]) uf.unite(i, static_cast<std::uint32_t>(j));
    }
  }

  std::unordered_map<std::uint32_t, std::int32_t> component_label;
  std::unordered_map<std::int32_t, std::uint32_t> label_component;
  for (PointId i = 0; i < n; ++i) {
    const std::int32_t label = result.labels[i];
    if (core[i]) {
      if (label < 0) {
        return fail("core point " + std::to_string(i) + " not clustered");
      }
      const std::uint32_t comp = uf.find(static_cast<std::uint32_t>(i));
      // Each connected core component maps to exactly one cluster label,
      // and each label to exactly one component (bijection).
      if (auto [it, inserted] = component_label.try_emplace(comp, label);
          !inserted && it->second != label) {
        return fail("core component split across clusters at point " +
                    std::to_string(i));
      }
      if (auto [it, inserted] = label_component.try_emplace(label, comp);
          !inserted && it->second != comp) {
        return fail("distinct core components merged into one cluster at "
                    "point " +
                    std::to_string(i));
      }
    }
  }

  for (PointId i = 0; i < n; ++i) {
    if (core[i]) continue;
    const std::int32_t label = result.labels[i];
    bool has_core_neighbor = false;
    bool has_core_neighbor_in_cluster = false;
    for (const PointId j : table.neighbors(i)) {
      if (j == i || !core[j]) continue;
      has_core_neighbor = true;
      if (result.labels[j] == label) has_core_neighbor_in_cluster = true;
    }
    if (label == kNoise) {
      if (has_core_neighbor) {
        return fail("point " + std::to_string(i) +
                    " marked noise but is density-reachable from a core");
      }
    } else if (label >= 0) {
      if (!has_core_neighbor_in_cluster) {
        return fail("border point " + std::to_string(i) +
                    " assigned to a cluster with no adjacent core");
      }
    } else {
      return fail("point " + std::to_string(i) + " left unvisited");
    }
  }
  return {};
}

CompareOutcome compare_clusterings(const ClusterResult& a,
                                   const ClusterResult& b,
                                   const NeighborTable& table, int minpts) {
  if (a.labels.size() != b.labels.size()) {
    return fail("label vector sizes differ");
  }
  if (auto v = validate_dbscan_result(a, table, minpts); !v.equivalent) {
    return fail("first clustering invalid: " + v.diagnostic);
  }
  if (auto v = validate_dbscan_result(b, table, minpts); !v.equivalent) {
    return fail("second clustering invalid: " + v.diagnostic);
  }

  const std::vector<bool> core = core_mask(table, minpts);
  // Both are valid DBSCAN results, so their core partitions both equal the
  // ground-truth partition; verify the label bijection on cores directly
  // (cheap and yields a precise diagnostic on failure).
  std::unordered_map<std::int32_t, std::int32_t> a_to_b;
  std::unordered_map<std::int32_t, std::int32_t> b_to_a;
  for (std::size_t i = 0; i < a.labels.size(); ++i) {
    if (!core[i]) {
      // Noise must agree everywhere (it is deterministic); border points
      // were already validated per-result.
      const bool a_noise = a.labels[i] == kNoise;
      const bool b_noise = b.labels[i] == kNoise;
      if (a_noise != b_noise) {
        return fail("noise/border disagreement at point " + std::to_string(i));
      }
      continue;
    }
    const std::int32_t la = a.labels[i];
    const std::int32_t lb = b.labels[i];
    if (auto [it, inserted] = a_to_b.try_emplace(la, lb);
        !inserted && it->second != lb) {
      return fail("core cluster mapping not functional at point " +
                  std::to_string(i));
    }
    if (auto [it, inserted] = b_to_a.try_emplace(lb, la);
        !inserted && it->second != la) {
      return fail("core cluster mapping not injective at point " +
                  std::to_string(i));
    }
  }
  return {};
}

double rand_index(std::span<const std::int32_t> a,
                  std::span<const std::int32_t> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("rand_index: label vector size mismatch");
  }
  const std::size_t n = a.size();
  if (n <= 1) return 1.0;
  // Noise points are singletons: they pair "apart" with everything, so
  // they contribute nothing to any together-count. Pair counting over the
  // contingency cells therefore only needs the non-noise labels.
  const auto together = [](std::span<const std::int32_t> labels) {
    std::unordered_map<std::int32_t, std::uint64_t> sizes;
    for (const std::int32_t l : labels) {
      if (l >= 0) ++sizes[l];
    }
    double t = 0.0;
    for (const auto& [l, c] : sizes) {
      t += 0.5 * static_cast<double>(c) * static_cast<double>(c - 1);
    }
    return t;
  };
  const double pa = together(a);
  const double pb = together(b);
  std::unordered_map<std::uint64_t, std::uint64_t> cells;
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] < 0 || b[i] < 0) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a[i])) << 32) |
        static_cast<std::uint32_t>(b[i]);
    ++cells[key];
  }
  double pab = 0.0;
  for (const auto& [key, c] : cells) {
    pab += 0.5 * static_cast<double>(c) * static_cast<double>(c - 1);
  }
  const double total =
      0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  // Disagreeing pairs: together in exactly one of the two clusterings.
  return 1.0 - (pa + pb - 2.0 * pab) / total;
}

}  // namespace hdbscan
