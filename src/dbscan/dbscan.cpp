#include "dbscan/dbscan.hpp"

#include <stdexcept>
#include <vector>

#include "obs/trace.hpp"

namespace hdbscan {

namespace {

/// The expansion loop shared by every flavour. `search(p, out)` must fill
/// `out` with the eps-neighborhood of p including p itself.
template <typename SearchFn>
ClusterResult dbscan_impl(std::size_t n, int minpts, SearchFn&& search) {
  if (minpts < 1) throw std::invalid_argument("dbscan: minpts must be >= 1");

  ClusterResult result;
  result.labels.assign(n, kUnvisited);
  auto& labels = result.labels;
  std::int32_t cluster = 0;

  std::vector<PointId> neighbors;
  std::vector<PointId> seeds;

  for (PointId p = 0; p < n; ++p) {
    if (labels[p] != kUnvisited) continue;
    search(p, neighbors);
    if (neighbors.size() < static_cast<std::size_t>(minpts)) {
      labels[p] = kNoise;  // may be promoted to border later
      continue;
    }
    // p is a core point: start a new cluster and expand it. Neighbors of a
    // core point are density-reachable and labeled immediately; only
    // previously unvisited ones are enqueued for expansion, which bounds
    // the seed list by |D| instead of the total neighbor count.
    labels[p] = cluster;
    seeds.clear();
    auto absorb = [&](std::span<const PointId> reached) {
      for (const PointId j : reached) {
        if (labels[j] == kUnvisited) {
          labels[j] = cluster;
          seeds.push_back(j);
        } else if (labels[j] == kNoise) {
          labels[j] = cluster;  // border point
        }
      }
    };
    absorb(neighbors);
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const PointId q = seeds[s];
      search(q, neighbors);
      if (neighbors.size() >= static_cast<std::size_t>(minpts)) {
        absorb(neighbors);
      }
    }
    ++cluster;
  }
  result.num_clusters = cluster;
  result.finalize_noise_count();
  return result;
}

}  // namespace

ClusterResult dbscan_rtree(std::span<const Point2> points, float eps,
                           int minpts, const RTree& rtree,
                           TimeAccumulator* search_time) {
  return dbscan_impl(points.size(), minpts,
                     [&](PointId p, std::vector<PointId>& out) {
                       out.clear();
                       rtree.query_circle(points[p], eps, out, search_time);
                     });
}

ClusterResult dbscan_rtree(std::span<const Point2> points, float eps,
                           int minpts, TimeAccumulator* search_time) {
  const RTree rtree(points);
  return dbscan_rtree(points, eps, minpts, rtree, search_time);
}

ClusterResult dbscan_grid(const GridIndex& index, float eps, int minpts) {
  return dbscan_impl(index.size(), minpts,
                     [&](PointId p, std::vector<PointId>& out) {
                       grid_query(index, index.points[p], eps, out);
                     });
}

ClusterResult dbscan_neighbor_table(const NeighborTable& table, int minpts) {
  // Specialized expansion loop: the neighborhood is already materialized
  // in T, so it is consumed as a span with no per-query copy — this is the
  // entire point of precomputing T (paper Alg. 4 line 9).
  if (minpts < 1) throw std::invalid_argument("dbscan: minpts must be >= 1");
  const std::size_t n = table.num_points();
  TRACE_SPAN("dbscan", "dbscan_table n=%zu minpts=%d", n, minpts);
  const auto required = static_cast<std::uint32_t>(minpts);

  ClusterResult result;
  result.labels.assign(n, kUnvisited);
  auto& labels = result.labels;
  std::int32_t cluster = 0;
  std::vector<PointId> seeds;

  for (PointId p = 0; p < n; ++p) {
    if (labels[p] != kUnvisited) continue;
    if (table.neighbor_count(p) < required) {
      labels[p] = kNoise;
      continue;
    }
    labels[p] = cluster;
    seeds.clear();
    auto absorb = [&](std::span<const PointId> reached) {
      for (const PointId j : reached) {
        if (labels[j] == kUnvisited) {
          labels[j] = cluster;
          seeds.push_back(j);
        } else if (labels[j] == kNoise) {
          labels[j] = cluster;
        }
      }
    };
    absorb(table.neighbors(p));
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const PointId q = seeds[s];
      if (table.neighbor_count(q) >= required) {
        absorb(table.neighbors(q));
      }
    }
    ++cluster;
  }
  result.num_clusters = cluster;
  result.finalize_noise_count();
  return result;
}

}  // namespace hdbscan
