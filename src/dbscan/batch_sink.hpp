// Streaming delivery surface of the batched neighbor-table builder.
//
// The two-pass CSR pipeline knows two things long before the merged table
// exists: after pass 1 (count kernel + scan) it has *exact* per-key
// neighbor counts, and after each fill pass it holds one batch's CSR rows
// in pinned staging. A BatchSink receives both the moment they land, so a
// consumer (dbscan/streaming_dbscan.hpp) can resolve core flags and union
// core-core edges while the GPU is still filling later batches — instead
// of waiting for shard merge + half-table expansion + a full table scan.
//
// Delivery contract (what the builder guarantees):
//  * Callbacks run on the builder's stream threads, concurrently across
//    streams and devices. Implementations must be thread-safe.
//  * The spans point into the builder's staging buffers and are valid only
//    for the duration of the call.
//  * Exactly-once per key: whatever the degradation ladder does — transient
//    retries, OOM shrink-splits, overflow splits, failover to a surviving
//    device, host-fallback completion — every key's row is delivered
//    exactly once, and every key's count contribution is delivered exactly
//    once (`BatchDelivery::counts_delivered` says whether the count arrived
//    separately or must be derived from the row itself).
//  * Under ScanMode::kHalf rows are *forward* rows: row k holds self,
//    same-cell ids >= k and the forward stencil half, and every cross pair
//    (k, v) appears in exactly one of its two rows. Counts are forward
//    counts. Under ScanMode::kFull rows are symmetric and each cross pair
//    is delivered twice (once per direction).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace hdbscan {

/// Exact pass-1 neighbor counts for one batch's strided key set: key
/// first_key + g * key_stride has counts[g] neighbors (forward neighbors
/// under kHalf), self included. When `keys` is non-empty it overrides the
/// arithmetic key set: entry g belongs to keys[g] — the sharded build
/// delivers scattered *global* ids this way (a shard's strided local keys
/// translate to an arbitrary global subset).
struct CountDelivery {
  std::uint32_t first_key = 0;
  std::uint32_t key_stride = 1;
  ScanMode scan_mode = ScanMode::kFull;
  std::span<const std::uint32_t> counts;
  std::span<const PointId> keys;  ///< explicit keys; empty = strided

  [[nodiscard]] PointId key_at(std::size_t g) const noexcept {
    return keys.empty() ? first_key + static_cast<std::uint32_t>(g) *
                                          key_stride
                        : keys[g];
  }
};

/// One batch's CSR rows: key first_key + g * key_stride owns the values in
/// [offsets[g], offsets[g + 1]) — the last key runs to values.size().
/// `offsets` is the exclusive prefix scan the device produced. A non-empty
/// `keys` span overrides the arithmetic key set (see CountDelivery).
struct BatchDelivery {
  std::uint32_t first_key = 0;
  std::uint32_t key_stride = 1;
  ScanMode scan_mode = ScanMode::kFull;
  /// True when these keys' counts already arrived via consume_counts();
  /// false (host-fallback rungs) means degrees must be derived from the
  /// row lengths in this delivery.
  bool counts_delivered = false;
  std::span<const std::uint32_t> offsets;
  std::span<const PointId> values;
  std::span<const PointId> keys;  ///< explicit keys; empty = strided

  [[nodiscard]] PointId key_at(std::size_t g) const noexcept {
    return keys.empty() ? first_key + static_cast<std::uint32_t>(g) *
                                          key_stride
                        : keys[g];
  }
};

class BatchSink {
 public:
  virtual ~BatchSink() = default;

  /// Pass-1 counts for a batch — fires before that batch's fill kernel
  /// runs, so degrees accumulate ahead of the rows. Optional.
  virtual void consume_counts(const CountDelivery& /*delivery*/) {}

  /// One completed batch's CSR rows, straight from pinned staging.
  virtual void consume(const BatchDelivery& delivery) = 0;
};

/// Replicates every delivery to each registered sink — the data-reuse
/// scheduler feeds one streaming clusterer per minpts value from a single
/// build this way.
class FanoutSink final : public BatchSink {
 public:
  void add(BatchSink* sink) { sinks_.push_back(sink); }
  [[nodiscard]] bool empty() const noexcept { return sinks_.empty(); }

  void consume_counts(const CountDelivery& delivery) override {
    for (BatchSink* s : sinks_) s->consume_counts(delivery);
  }
  void consume(const BatchDelivery& delivery) override {
    for (BatchSink* s : sinks_) s->consume(delivery);
  }

 private:
  std::vector<BatchSink*> sinks_;
};

}  // namespace hdbscan
