// The neighbor table T (paper §III and §V).
//
// T maps every point p_i in D to its eps-neighborhood N_eps(p_i): per point
// a range [Tmin_i, Tmax_i) into the value array B. The GPU pipeline fills T
// incrementally, one batch at a time — each batch arrives as a key-sorted
// run of (key, value) pairs whose values are appended to B and whose key
// ranges are recorded. Batches cover disjoint key sets (the strided
// assignment of §VI), so appends never interleave a single key's values.
//
// Self-pairs are included (dist(p, p) = 0 <= eps), matching the DBSCAN
// definition where |N_eps(p)| counts p itself.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/default_init.hpp"
#include "common/types.hpp"
#include "index/grid_index.hpp"
#include "index/rtree.hpp"

namespace hdbscan {

class NeighborTable {
 public:
  NeighborTable() = default;

  /// Creates an empty table for `num_points` points with all ranges empty.
  explicit NeighborTable(std::size_t num_points)
      : begin_(num_points, 0), end_(num_points, 0) {}

  [[nodiscard]] std::size_t num_points() const noexcept {
    return begin_.size();
  }

  /// The eps-neighborhood of point i (ids into the same point ordering the
  /// table was built from), including i itself.
  [[nodiscard]] std::span<const PointId> neighbors(PointId i) const noexcept {
    return {values_.data() + begin_[i], values_.data() + end_[i]};
  }

  [[nodiscard]] std::uint32_t neighbor_count(PointId i) const noexcept {
    return end_[i] - begin_[i];
  }

  /// Total number of (key, value) pairs stored (|B|).
  [[nodiscard]] std::size_t total_pairs() const noexcept {
    return values_.size();
  }

  /// Appends one batch of key-sorted pairs: values are copied into B and
  /// each distinct key's [Tmin, Tmax) range is recorded. Keys must not have
  /// appeared in a previous batch. Not thread-safe; the batched builder
  /// serializes appends.
  void append_sorted_batch(std::span<const NeighborPair> pairs);

  /// Appends one CSR batch from the two-pass builder. The batch covers the
  /// strided key set first_key + g * key_stride for g in [0, offsets.size());
  /// key g's values occupy [offsets[g], offsets[g+1]) of `values` (the last
  /// key runs to values.size()). `offsets` is the exclusive prefix scan the
  /// device produced, so no sort and no per-pair key material is needed.
  /// Keys must not have appeared in a previous batch. Not thread-safe.
  void append_csr_batch(std::uint32_t first_key, std::uint32_t key_stride,
                        std::span<const std::uint32_t> offsets,
                        std::span<const PointId> values);

  /// Merges a per-stream shard built over a disjoint key set into this
  /// table: shard values are appended to B and the shard's ranges are
  /// rebased. The shard is consumed. Replaces per-batch appends under a
  /// shared mutex — each stream fills its own shard lock-free and the
  /// merge happens once, at the end of the build.
  void absorb_shard(NeighborTable&& shard);

  /// Rebases a shard-local table into the global key space. Local row l
  /// (owned rows only: l < num_owned; ghost rows are never filled) becomes
  /// global row to_global[l]; the VALUES move untouched — shard kernels
  /// emit them through the slab's emission map (GridIndex::emit_ids), so
  /// they are already global. O(num_owned) plus the storage handoff: no
  /// per-pair work. The result has num_global rows and is
  /// absorb_shard()-compatible — shards own disjoint global key sets, so
  /// translated shards merge without collision. Consumes this table.
  [[nodiscard]] NeighborTable translate(std::span<const PointId> to_global,
                                        std::uint32_t num_owned,
                                        std::size_t num_global) &&;

  /// Merges k translated shards with pairwise-disjoint key sets into this
  /// (empty) table in one shot: one exact-size allocation, then each
  /// shard's values are copied into its precomputed region and its rows
  /// rebased concurrently — regions and key sets are disjoint, so the
  /// workers share nothing. Layout equals absorbing the shards in their
  /// given order. Throws std::logic_error if a key appears in two shards
  /// and std::invalid_argument on size mismatch or a non-empty target.
  ///
  /// `check_collisions` controls the strictness sweep — a serial
  /// O(n * k) pass over the shards' range arrays before any data moves.
  /// Both builder merges pass false: their key disjointness is
  /// structural (strided batch assignment / row-homogeneous slab
  /// ownership) and property-tested, and the sweep would land on the
  /// modeled critical path of every build. With the check off a
  /// colliding key silently keeps the last shard's row — callers must
  /// guarantee disjointness by construction.
  ///
  /// Returns the merge's critical-path CPU seconds (slowest worker), the
  /// number a performance model should charge for the fan-in.
  double absorb_shards(std::vector<NeighborTable>&& shards,
                       unsigned num_threads = 0,
                       bool check_collisions = true);

  /// Reserve capacity for the expected total pair count.
  void reserve_values(std::size_t expected_pairs) {
    values_.reserve(expected_pairs);
  }

  /// Expands a *forward half* table into the full symmetric table. The
  /// batched ScanMode::kHalf pipelines ship only forward rows over PCIe —
  /// row k holds the neighbors the kernel tested from k's side (self,
  /// same-cell ids >= k, forward-stencil cells). Every cross pair (k, v)
  /// appears in exactly one of the two rows, so the full table is the
  /// forward rows plus the transpose of every cross pair: a count /
  /// prefix-sum / copy / scatter pass, parallelized over rows with atomic
  /// cursors. Call once, after all shards are merged. `num_threads` 0 =
  /// hardware concurrency.
  ///
  /// Returns the expansion's critical-path CPU seconds: the serial passes
  /// plus, per parallel pass, the slowest worker's thread CPU time. This
  /// is the number a performance model should charge — it reflects the
  /// work per core, not this machine's core count or scheduling noise.
  double expand_half_table(unsigned num_threads = 0);

  /// Rewrites the table into its canonical form: values laid out in
  /// ascending key order with each neighbor list sorted. Any two tables
  /// holding the same neighborhood sets — whatever batch interleave, split
  /// schedule, or retry/failover history produced them — canonicalize to
  /// byte-identical begin/end/value arrays, which is how the resilience
  /// tests and the chaos harness assert that a degraded build lost nothing.
  void canonicalize();

  /// Byte equality of ranges and values (meaningful after canonicalize()).
  [[nodiscard]] bool identical_to(const NeighborTable& other) const noexcept {
    return begin_ == other.begin_ && end_ == other.end_ &&
           values_ == other.values_;
  }

  /// Direct access for tests.
  [[nodiscard]] std::span<const PointId> values() const noexcept {
    return values_;
  }

 private:
  /// B grows by whole batches whose every slot is immediately written, so
  /// the vector skips zero-fill on growth (DefaultInitAllocator).
  using ValueVector = std::vector<PointId, DefaultInitAllocator<PointId>>;

  std::vector<std::uint32_t> begin_;  ///< Tmin per point (index into B)
  std::vector<std::uint32_t> end_;    ///< Tmax per point (one past last)
  ValueVector values_;                ///< B
};

/// CPU-only construction of T straight from a grid index — the host
/// fallback the paper mentions ("a CPU-only implementation could also
/// compute and reuse T") and the oracle for kernel tests.
/// Every host builder takes a trailing `quality`: under
/// ClusterQuality::kSubsampled the same seeded per-pair Bernoulli filter
/// the device kernels apply runs on each returned neighbor, so a degraded
/// build (host-fallback rung, shard host rung, oracle comparison) samples
/// exactly the pair set the kernels would have.
NeighborTable build_neighbor_table_host(const GridIndex& index, float eps,
                                        QualitySpec quality = {});

/// Multithreaded host construction of T: point ranges are searched in
/// parallel and appended as per-range batches. Produces exactly the same
/// table as the sequential builder. `num_threads` 0 = hardware concurrency.
NeighborTable build_neighbor_table_host_parallel(const GridIndex& index,
                                                 float eps,
                                                 unsigned num_threads = 0,
                                                 QualitySpec quality = {});

/// Host construction of one strided batch's shard: only the keys
/// first_key + g * key_stride (g = 0, 1, ...) are searched and filled; all
/// other ranges stay empty. This is the degradation ladder's final rung —
/// when every device is lost mid-build, the builder completes exactly the
/// unfinished batches on the host and absorbs the shards, keeping all
/// GPU-completed work. The shard is absorb_shard()-compatible.
/// Under ScanMode::kHalf the shard holds *forward* rows (grid_query_forward)
/// so it composes with device-built half shards; the builder expands the
/// merged table once at the end.
NeighborTable build_neighbor_table_host_strided(
    const GridIndex& index, float eps, std::uint32_t first_key,
    std::uint32_t key_stride, ScanMode mode = ScanMode::kFull,
    QualitySpec quality = {});

/// Strided host fallback for IndexBackend::kBvh builds. The tree kernels
/// have no forward stencil, so their ScanMode::kHalf cover is *id-based*:
/// row k owns exactly the neighbors with id >= k (self included). A
/// degraded BVH build must complete its unfinished batches under the same
/// ownership rule — mixing in the grid's stencil rule would double-count
/// cross pairs whose stencil owner differs from their id owner once the
/// merged table is expanded. Neighborhoods are searched through `rtree`
/// (the packed STR host index, built over the same reordered point array
/// as `index`, so ids agree); under kFull the rows match the grid
/// fallback's exactly.
NeighborTable build_neighbor_table_host_strided_idrule(
    const GridIndex& index, const RTree& rtree, float eps,
    std::uint32_t first_key, std::uint32_t key_stride,
    ScanMode mode = ScanMode::kFull, QualitySpec quality = {});

}  // namespace hdbscan
