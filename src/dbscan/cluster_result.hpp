// Clustering output representation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hdbscan {

/// Per-point labels: cluster ids are >= 0; special values below.
inline constexpr std::int32_t kNoise = -1;
inline constexpr std::int32_t kUnvisited = -2;

struct ClusterResult {
  std::vector<std::int32_t> labels;  ///< one entry per input point
  std::int32_t num_clusters = 0;

  [[nodiscard]] std::size_t noise_count() const noexcept {
    std::size_t n = 0;
    for (const std::int32_t l : labels) n += (l == kNoise);
    return n;
  }

  [[nodiscard]] std::size_t clustered_count() const noexcept {
    return labels.size() - noise_count();
  }

  /// Sizes of each cluster, indexed by cluster id.
  [[nodiscard]] std::vector<std::size_t> cluster_sizes() const {
    std::vector<std::size_t> sizes(static_cast<std::size_t>(num_clusters), 0);
    for (const std::int32_t l : labels) {
      if (l >= 0) ++sizes[static_cast<std::size_t>(l)];
    }
    return sizes;
  }
};

/// Renumbers cluster ids by order of first appearance so structurally
/// identical clusterings compare equal regardless of discovery order.
ClusterResult canonicalize(const ClusterResult& result);

}  // namespace hdbscan
