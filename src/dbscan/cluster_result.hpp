// Clustering output representation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hdbscan {

/// Per-point labels: cluster ids are >= 0; special values below.
inline constexpr std::int32_t kNoise = -1;
inline constexpr std::int32_t kUnvisited = -2;

struct ClusterResult {
  std::vector<std::int32_t> labels;  ///< one entry per input point
  std::int32_t num_clusters = 0;

  /// Number of noise points. O(1) once a producer called
  /// finalize_noise_count(); otherwise an O(n) scan per call — the
  /// clustering entry points all finalize, so reporting paths
  /// (VariantTiming, CLI summaries) hit the cached value.
  [[nodiscard]] std::size_t noise_count() const noexcept {
    if (cached_noise_ >= 0) return static_cast<std::size_t>(cached_noise_);
    std::size_t n = 0;
    for (const std::int32_t l : labels) n += (l == kNoise);
    return n;
  }

  /// Computes and caches noise_count(). Call once, where labels become
  /// final; mutate `labels` afterwards only via invalidate_noise_cache().
  void finalize_noise_count() noexcept {
    std::size_t n = 0;
    for (const std::int32_t l : labels) n += (l == kNoise);
    cached_noise_ = static_cast<std::int64_t>(n);
  }

  void invalidate_noise_cache() noexcept { cached_noise_ = -1; }

  [[nodiscard]] bool noise_count_cached() const noexcept {
    return cached_noise_ >= 0;
  }

  [[nodiscard]] std::size_t clustered_count() const noexcept {
    return labels.size() - noise_count();
  }

  /// Sizes of each cluster, indexed by cluster id.
  [[nodiscard]] std::vector<std::size_t> cluster_sizes() const {
    std::vector<std::size_t> sizes(static_cast<std::size_t>(num_clusters), 0);
    for (const std::int32_t l : labels) {
      if (l >= 0) ++sizes[static_cast<std::size_t>(l)];
    }
    return sizes;
  }

 private:
  std::int64_t cached_noise_ = -1;  ///< < 0: not computed yet
};

/// Renumbers cluster ids by order of first appearance so structurally
/// identical clusterings compare equal regardless of discovery order.
ClusterResult canonicalize(const ClusterResult& result);

}  // namespace hdbscan
