#include "dbscan/streaming_dbscan.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/timer.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace hdbscan {

namespace {

/// Static range split of [0, n) across `workers` threads.
template <typename F>
void run_partitioned(std::size_t n, unsigned workers, F&& body) {
  if (workers <= 1 || n < 2048) {
    body(0, n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t begin = static_cast<std::size_t>(w) * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back(
        [&body, begin, end, ctx = hdbscan::current_request_context()] {
          hdbscan::RequestScope scope(ctx);
          body(begin, end);
        });
  }
  for (auto& t : threads) t.join();
}

void atomic_min(std::atomic<std::uint32_t>& slot, std::uint32_t v) noexcept {
  std::uint32_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
  }
}

}  // namespace

StreamingDbscan::StreamingDbscan(std::size_t num_points, int minpts)
    : n_(num_points),
      required_(0),
      degree_(std::make_unique<std::atomic<std::uint32_t>[]>(num_points)),
      uf_(num_points) {
  if (minpts < 1) {
    throw std::invalid_argument("StreamingDbscan: minpts must be >= 1");
  }
  required_ = static_cast<std::uint32_t>(minpts);
  for (std::size_t i = 0; i < n_; ++i) {
    degree_[i].store(0, std::memory_order_relaxed);
  }
  // Degrees + union-find parents are the fixed footprint.
  peak_memory_bytes_ = 2 * sizeof(std::uint32_t) * n_;
}

void StreamingDbscan::consume_counts(const CountDelivery& d) {
  ThreadCpuTimer timer;
  const std::size_t keys = d.counts.size();
  for (std::size_t g = 0; g < keys; ++g) {
    degree_[d.key_at(g)].fetch_add(d.counts[g], std::memory_order_relaxed);
  }
  const double seconds = timer.seconds();
  std::lock_guard lock(deferred_mutex_);
  ++stats_.count_batches;
  stats_.consume_seconds += seconds;
  add_thread_seconds_locked(seconds);
}

void StreamingDbscan::add_thread_seconds_locked(double seconds) {
  const std::thread::id self = std::this_thread::get_id();
  for (auto& [id, total] : thread_consume_) {
    if (id == self) {
      total += seconds;
      stats_.max_thread_consume_seconds =
          std::max(stats_.max_thread_consume_seconds, total);
      return;
    }
  }
  thread_consume_.emplace_back(self, seconds);
  stats_.max_thread_consume_seconds =
      std::max(stats_.max_thread_consume_seconds, seconds);
}

void StreamingDbscan::consume(const BatchDelivery& d) {
  // Cancellation escapes through the builder's delivery callback: it
  // becomes the build's hard error, streams drain, buffers return.
  check_cancel(cancel_);
  ThreadCpuTimer timer;
  TRACE_SPAN("stream", "stream_consume %u/%u", d.first_key, d.key_stride);
  const std::size_t keys = d.offsets.size();
  std::vector<NeighborPair> local_deferred;
  std::uint64_t edges = 0;
  std::uint64_t streamed = 0;
  for (std::size_t g = 0; g < keys; ++g) {
    const PointId key = d.key_at(g);
    const std::size_t row_begin = d.offsets[g];
    const std::size_t row_end =
        g + 1 < keys ? d.offsets[g + 1] : d.values.size();
    if (!d.counts_delivered) {
      // No separate count delivery for these keys (host-fallback rows):
      // the row length *is* the pass-1 count (self included; forward
      // count under kHalf).
      degree_[key].fetch_add(static_cast<std::uint32_t>(row_end - row_begin),
                             std::memory_order_relaxed);
    }
    for (std::size_t idx = row_begin; idx < row_end; ++idx) {
      const PointId v = d.values[idx];
      if (v == key) continue;  // self pair: degree only, never an edge
      if (d.scan_mode == ScanMode::kHalf) {
        // Forward rows carry each cross pair once; the back direction's
        // degree contribution lands here, value by value — the streaming
        // equivalent of expand_half_table's counting pass.
        degree_[v].fetch_add(1, std::memory_order_relaxed);
      } else if (v < key) {
        // Full rows deliver each cross pair twice; keep the (key < v)
        // copy so every edge is considered exactly once.
        continue;
      }
      ++edges;
      // Core status is monotone (degrees only grow), so a both-core edge
      // can be settled right now, on the builder's stream thread.
      if (is_core(key) && is_core(v)) {
        uf_.unite(key, v);
        ++streamed;
      } else {
        local_deferred.push_back(NeighborPair{key, v});
      }
    }
  }
  const double seconds = timer.seconds();
  std::lock_guard lock(deferred_mutex_);
  deferred_.insert(deferred_.end(), local_deferred.begin(),
                   local_deferred.end());
  if (deferred_.size() >= compact_threshold_) compact_deferred_locked();
  stats_.deferred_peak =
      std::max<std::uint64_t>(stats_.deferred_peak, deferred_.size());
  peak_memory_bytes_ = std::max(
      peak_memory_bytes_, 2 * sizeof(std::uint32_t) * n_ +
                              deferred_.capacity() * sizeof(NeighborPair));
  ++stats_.row_batches;
  stats_.edges_seen += edges;
  stats_.edges_streamed += streamed;
  stats_.consume_seconds += seconds;
  add_thread_seconds_locked(seconds);
}

void StreamingDbscan::ingest_fused(std::span<const NeighborPair> undecided,
                                   std::uint64_t edges_seen,
                                   std::uint64_t edges_streamed) {
  check_cancel(cancel_);
  std::lock_guard lock(deferred_mutex_);
  deferred_.insert(deferred_.end(), undecided.begin(), undecided.end());
  if (deferred_.size() >= compact_threshold_) compact_deferred_locked();
  stats_.deferred_peak =
      std::max<std::uint64_t>(stats_.deferred_peak, deferred_.size());
  peak_memory_bytes_ = std::max(
      peak_memory_bytes_, 2 * sizeof(std::uint32_t) * n_ +
                              deferred_.capacity() * sizeof(NeighborPair));
  stats_.edges_seen += edges_seen;
  stats_.edges_streamed += edges_streamed;
  stats_.fused_parked += undecided.size();
}

void StreamingDbscan::compact_deferred_locked() {
  // Points keep resolving as core while batches land; edges parked early
  // often become decidable later in the stream. Settling them here keeps
  // the parked-edge high-water near the truly undecidable residue.
  std::size_t kept = 0;
  for (const NeighborPair& e : deferred_) {
    if (is_core(e.key) && is_core(e.value)) {
      uf_.unite(e.key, e.value);
      ++stats_.edges_streamed;
    } else {
      deferred_[kept++] = e;
    }
  }
  deferred_.resize(kept);
  compact_threshold_ = std::max<std::size_t>(std::size_t{1} << 15, kept * 2);
}

std::size_t StreamingDbscan::memory_bytes() const {
  std::lock_guard lock(deferred_mutex_);
  return 2 * sizeof(std::uint32_t) * n_ +
         deferred_.capacity() * sizeof(NeighborPair);
}

ClusterResult StreamingDbscan::finalize(unsigned num_threads) {
  if (finalized_) {
    throw std::logic_error("StreamingDbscan::finalize called twice");
  }
  check_cancel(cancel_);  // a cancelled job never pays the resolution tail
  finalized_ = true;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  TRACE_SPAN("stream", "stream_finalize n=%zu", n_);
  WallTimer tail_timer;

  stats_.edges_deferred = deferred_.size();
  stats_.deferred_peak =
      std::max<std::uint64_t>(stats_.deferred_peak, deferred_.size());

  // Degrees are exact now — the build delivered every contribution
  // exactly once — so the core mask is final.
  std::vector<std::uint8_t> core(n_);
  run_partitioned(n_, num_threads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      core[i] = is_core(static_cast<std::uint32_t>(i));
    }
  });

  // Settle the parked edges that turned out core-core (their endpoints
  // resolved after the edge was parked).
  run_partitioned(deferred_.size(), num_threads,
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t e = begin; e < end; ++e) {
                      const NeighborPair& edge = deferred_[e];
                      if (core[edge.key] && core[edge.value]) {
                        uf_.unite(edge.key, edge.value);
                      }
                    }
                  });

  // Dense renumbering of core roots in ascending id order — identical to
  // dbscan_parallel phase 3a, so cluster numbering is deterministic.
  ClusterResult result;
  result.labels.assign(n_, kNoise);
  std::vector<std::int32_t> root_label(n_, -1);
  std::int32_t next_cluster = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (!core[i]) continue;
    const std::uint32_t root = uf_.find(static_cast<std::uint32_t>(i));
    if (root_label[root] < 0) root_label[root] = next_cluster++;
    result.labels[i] = root_label[root];
  }
  result.num_clusters = next_cluster;

  // Borders — the deterministic smallest-root rule of dbscan_parallel,
  // evaluated over the parked edges. The adjacency needed here is
  // complete: only both-core edges were ever removed from the buffer, so
  // every core/non-core pair is still present.
  auto best_root = std::make_unique<std::atomic<std::uint32_t>[]>(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    best_root[i].store(std::numeric_limits<std::uint32_t>::max(),
                       std::memory_order_relaxed);
  }
  run_partitioned(deferred_.size(), num_threads,
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t e = begin; e < end; ++e) {
                      const NeighborPair& edge = deferred_[e];
                      const bool ck = core[edge.key];
                      const bool cv = core[edge.value];
                      if (ck == cv) continue;
                      const std::uint32_t border = ck ? edge.value : edge.key;
                      const std::uint32_t c = ck ? edge.key : edge.value;
                      atomic_min(best_root[border], uf_.find(c));
                    }
                  });
  run_partitioned(n_, num_threads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (core[i]) continue;
      const std::uint32_t best =
          best_root[i].load(std::memory_order_relaxed);
      if (best != std::numeric_limits<std::uint32_t>::max()) {
        result.labels[i] = root_label[best];
      }
    }
  });
  result.finalize_noise_count();

  stats_.finalize_seconds = tail_timer.seconds();
  peak_memory_bytes_ = std::max(
      peak_memory_bytes_,
      2 * sizeof(std::uint32_t) * n_ +
          deferred_.capacity() * sizeof(NeighborPair) +
          n_ * (sizeof(std::uint8_t) + sizeof(std::int32_t) +
                sizeof(std::uint32_t) + sizeof(std::int32_t)));

  obs::Registry& reg = obs::Registry::global();
  reg.counter("stream_row_batches").add(stats_.row_batches);
  reg.counter("stream_edges_seen").add(stats_.edges_seen);
  reg.counter("stream_edges_streamed").add(stats_.edges_streamed);
  reg.counter("stream_edges_deferred").add(stats_.edges_deferred);
  reg.gauge("stream_overlap_fraction").set(stats_.overlap_fraction());
  reg.gauge("stream_streamed_fraction").set(stats_.streamed_fraction());
  reg.gauge("stream_peak_memory_bytes")
      .set(static_cast<double>(peak_memory_bytes_));
  reg.histogram("stream_finalize_seconds").observe(stats_.finalize_seconds);
  return result;
}

}  // namespace hdbscan
