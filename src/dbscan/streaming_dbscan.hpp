// Streaming PDSDBSCAN: union-find clustering that consumes the batched
// builder's CSR deliveries *while the GPU is still filling later batches*,
// instead of waiting for the merged (and, under ScanMode::kHalf, expanded)
// neighbor table.
//
// Why this is possible:
//  * Pass 1 of the two-pass CSR builder yields exact per-key degrees
//    before any values cross PCIe, and degrees only grow as contributions
//    land — so "degree >= minpts" (core status) is monotone: once a point
//    resolves as core mid-stream it stays core.
//  * Disjoint-set DBSCAN (Patwary et al., the basis of dbscan_parallel) is
//    order-independent over core-core edges: edges can be unioned in any
//    arrival order, from any thread.
// So each delivered row is scanned once, on the builder's stream thread:
// edges whose endpoints are both already core are unioned immediately;
// edges that cannot be decided yet (either endpoint still below minpts)
// are parked in a deferred buffer. Under kHalf every cross pair arrives
// exactly once (forward rows) and is unioned in both directions, so the
// clustering path never needs expand_half_table. finalize() settles the
// tail: final core flags, the remaining deferred unions, dense cluster
// renumbering (id order, identical to dbscan_parallel) and the
// deterministic smallest-root border rule. The result is
// compare_clusterings-equivalent to dbscan_parallel over the full table.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/types.hpp"
#include "dbscan/atomic_union_find.hpp"
#include "dbscan/batch_sink.hpp"
#include "dbscan/cluster_result.hpp"

namespace hdbscan {

/// How the orchestration layers (hybrid_dbscan / pipeline / reuse) turn a
/// neighbor-table build into labels.
enum class ClusterMode {
  /// Materialize T, then run DBSCAN over it (paper Alg. 4). Required when
  /// the caller wants the table itself (reuse across calls, OPTICS, ...).
  kBatchTable,
  /// Union CSR batches as they arrive; T is never materialized. Labels
  /// only — single-variant wall time approaches max(GPU build, host
  /// union) plus a short resolution tail.
  kStreaming,
  /// No table, no sink: the traversal kernel itself counts degrees and
  /// unions both-core edges straight into the consumer's union-find
  /// (core/fused_clustering). The CSR count/fill passes, the value
  /// transfers, and the delivery hop all disappear; only undecided edges
  /// cross the kernel boundary. Labels only; zero table bytes.
  kFused,
};

class StreamingDbscan final : public BatchSink {
 public:
  /// `num_points` fixes the id space (the grid index's point order).
  StreamingDbscan(std::size_t num_points, int minpts);

  // BatchSink: called concurrently from the builder's stream threads.
  void consume_counts(const CountDelivery& delivery) override;
  void consume(const BatchDelivery& delivery) override;

  /// Settles everything the stream could not decide: final core flags,
  /// deferred unions, dense renumbering, borders, noise. Call exactly
  /// once, after the build returned (no concurrent consume calls).
  /// `num_threads` 0 = hardware concurrency. Labels are in the id order
  /// the deliveries used (the grid index's order).
  ClusterResult finalize(unsigned num_threads = 0);

  struct Stats {
    std::uint64_t count_batches = 0;  ///< CountDelivery calls
    std::uint64_t row_batches = 0;    ///< BatchDelivery calls
    std::uint64_t edges_seen = 0;     ///< distinct cross edges ingested
    std::uint64_t edges_streamed = 0; ///< unioned during the build
    std::uint64_t edges_deferred = 0; ///< parked for finalize
    std::uint64_t deferred_peak = 0;  ///< high-water of parked edges
    /// Edges ever parked by fused kernels (including ones a later
    /// compaction settled) — the fused path's total kernel-to-host edge
    /// traffic, which its modeled time charges at PCIe rate.
    std::uint64_t fused_parked = 0;
    double consume_seconds = 0.0;     ///< host CPU inside consume*(), summed
                                      ///< across all delivering threads
    /// Largest per-thread share of consume_seconds. Deliveries run
    /// concurrently (one per builder stream), so this — not the sum — is
    /// the union work's contribution to the critical path when each
    /// stream thread has its own core.
    double max_thread_consume_seconds = 0.0;
    double finalize_seconds = 0.0;    ///< wall time of the resolution tail

    /// Share of ingested edges that were settled while the GPU was still
    /// building.
    [[nodiscard]] double streamed_fraction() const noexcept {
      return edges_seen == 0
                 ? 0.0
                 : static_cast<double>(edges_streamed) /
                       static_cast<double>(edges_seen);
    }
    /// Share of the host clustering work that overlapped the build:
    /// consume / (consume + finalize).
    [[nodiscard]] double overlap_fraction() const noexcept {
      const double total = consume_seconds + finalize_seconds;
      return total <= 0.0 ? 0.0 : consume_seconds / total;
    }
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Optional cooperative-cancellation hook (not owned; must outlive this
  /// consumer). consume() and finalize() poll it: a cancelled token throws
  /// OperationCancelled out of the delivery callback, which the builder
  /// treats as a hard error — streams drain, pooled buffers return, and
  /// the abandoned clustering never reaches finalize.
  void set_cancel_token(const CancelToken* token) noexcept {
    cancel_ = token;
  }

  /// Direct-ingestion surface for the fused traversal kernel
  /// (ClusterMode::kFused): the kernel mutates the same degree array and
  /// union-find the consume() path uses, so finalize() — and therefore the
  /// labels — is shared verbatim with the streaming mode. Both-core
  /// decisions are safe in-kernel for the same reason they are safe
  /// in-stream: core status is monotone, and union-find accepts edges in
  /// any order from any thread.
  struct FusedView {
    std::atomic<std::uint32_t>* degree = nullptr;
    AtomicUnionFind* uf = nullptr;
    std::uint32_t required = 0;  ///< minpts as the kernel's core threshold
  };
  [[nodiscard]] FusedView fused_view() noexcept {
    return FusedView{degree_.get(), &uf_, required_};
  }

  /// Thread-safe landing zone for a fused kernel's per-thread residue:
  /// parks the edges it could not settle (an endpoint still below minpts
  /// at test time) and folds its edge tallies into the stats. Parked
  /// edges are compacted against the live core mask exactly like the
  /// streaming path's deferred buffer.
  void ingest_fused(std::span<const NeighborPair> undecided,
                    std::uint64_t edges_seen, std::uint64_t edges_streamed);

  /// Final degree of point i (self included; full degree, both directions
  /// under kHalf). Exact once the build has returned — the exactly-once
  /// test hook: any dropped or doubled delivery shows up here.
  [[nodiscard]] std::uint32_t degree(PointId i) const noexcept {
    return degree_[i].load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t num_points() const noexcept { return n_; }
  [[nodiscard]] int minpts() const noexcept {
    return static_cast<int>(required_);
  }

  /// Current resident bytes of the consumer (degrees + union-find parents
  /// + parked edges). The streaming replacement for holding T in memory.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// High-water bytes across the whole run, including finalize's
  /// temporary arrays — the number to compare against the materialized
  /// table's footprint.
  [[nodiscard]] std::size_t peak_memory_bytes() const noexcept {
    return peak_memory_bytes_;
  }

 private:
  [[nodiscard]] bool is_core(std::uint32_t i) const noexcept {
    return degree_[i].load(std::memory_order_relaxed) >= required_;
  }

  /// Unites parked both-core edges and drops them; keeps the rest. Called
  /// under deferred_mutex_ when the buffer doubles, bounding its
  /// high-water to roughly the undecidable edges of the moment.
  void compact_deferred_locked();

  std::size_t n_;
  std::uint32_t required_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> degree_;
  AtomicUnionFind uf_;

  /// Accumulates consume CPU time per delivering thread (a handful of
  /// builder stream threads); guarded by deferred_mutex_.
  void add_thread_seconds_locked(double seconds);

  mutable std::mutex deferred_mutex_;
  std::vector<NeighborPair> deferred_;
  std::size_t compact_threshold_ = 1 << 15;
  std::vector<std::pair<std::thread::id, double>> thread_consume_;

  Stats stats_;  ///< guarded by deferred_mutex_ until finalize
  std::size_t peak_memory_bytes_ = 0;
  bool finalized_ = false;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace hdbscan
