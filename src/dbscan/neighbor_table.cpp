#include "dbscan/neighbor_table.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/request_context.hpp"
#include "common/timer.hpp"

namespace hdbscan {

void NeighborTable::append_sorted_batch(std::span<const NeighborPair> pairs) {
  const std::size_t base = values_.size();
  values_.resize(base + pairs.size());
  // Single pass: copy values and record each key's [Tmin, Tmax) range at
  // the run boundaries. This is the host-side work that overlaps the GPU
  // in the paper's scheme, so it must stream at memcpy-like rates.
  std::size_t i = 0;
  while (i < pairs.size()) {
    const PointId key = pairs[i].key;
    if (key >= begin_.size()) {
      values_.resize(base);
      throw std::out_of_range("NeighborTable: key out of range");
    }
    if (end_[key] != begin_[key]) {
      values_.resize(base);
      throw std::logic_error("NeighborTable: key appears in two batches");
    }
    const std::size_t run_begin = i;
    PointId* out = values_.data() + base + i;
    while (i < pairs.size() && pairs[i].key == key) {
      *out++ = pairs[i].value;
      ++i;
    }
    begin_[key] = static_cast<std::uint32_t>(base + run_begin);
    end_[key] = static_cast<std::uint32_t>(base + i);
  }
}

void NeighborTable::append_csr_batch(std::uint32_t first_key,
                                     std::uint32_t key_stride,
                                     std::span<const std::uint32_t> offsets,
                                     std::span<const PointId> values) {
  if (key_stride == 0) {
    throw std::invalid_argument("NeighborTable: zero key stride");
  }
  const std::size_t base = values_.size();
  for (std::size_t g = 0; g < offsets.size(); ++g) {
    const std::uint64_t key =
        first_key + static_cast<std::uint64_t>(g) * key_stride;
    if (key >= begin_.size()) {
      throw std::out_of_range("NeighborTable: key out of range");
    }
    const std::uint32_t run_begin = offsets[g];
    const std::uint64_t run_end =
        g + 1 < offsets.size() ? offsets[g + 1] : values.size();
    if (run_begin > run_end || run_end > values.size()) {
      throw std::invalid_argument("NeighborTable: malformed CSR offsets");
    }
    if (end_[key] != begin_[key]) {
      throw std::logic_error("NeighborTable: key appears in two batches");
    }
    begin_[key] = static_cast<std::uint32_t>(base + run_begin);
    end_[key] = static_cast<std::uint32_t>(base + run_end);
  }
  values_.insert(values_.end(), values.begin(), values.end());
}

void NeighborTable::absorb_shard(NeighborTable&& shard) {
  if (shard.num_points() != num_points()) {
    throw std::invalid_argument("NeighborTable: shard size mismatch");
  }
  if (values_.empty()) {  // first shard: steal its storage wholesale
    begin_ = std::move(shard.begin_);
    end_ = std::move(shard.end_);
    values_ = std::move(shard.values_);
    return;
  }
  const std::size_t base = values_.size();
  for (std::size_t k = 0; k < begin_.size(); ++k) {
    if (shard.end_[k] == shard.begin_[k]) continue;  // key not in shard
    if (end_[k] != begin_[k]) {
      throw std::logic_error("NeighborTable: key appears in two shards");
    }
    begin_[k] = static_cast<std::uint32_t>(base + shard.begin_[k]);
    end_[k] = static_cast<std::uint32_t>(base + shard.end_[k]);
  }
  values_.insert(values_.end(), shard.values_.begin(), shard.values_.end());
}

NeighborTable NeighborTable::translate(std::span<const PointId> to_global,
                                       std::uint32_t num_owned,
                                       std::size_t num_global) && {
  if (to_global.size() != num_points()) {
    throw std::invalid_argument("NeighborTable: translate map size mismatch");
  }
  if (num_owned > to_global.size()) {
    throw std::invalid_argument("NeighborTable: num_owned exceeds residents");
  }
  NeighborTable out(num_global);
  // Values were emitted through the slab's emission map and are already
  // global; only the row keys move. The value storage is handed over
  // wholesale (offsets are position-based and survive).
  for (std::uint32_t l = 0; l < num_owned; ++l) {
    const PointId g = to_global[l];
    if (g >= num_global) {
      throw std::out_of_range("NeighborTable: global key out of range");
    }
    out.begin_[g] = begin_[l];
    out.end_[g] = end_[l];
  }
  out.values_ = std::move(values_);
  begin_.clear();
  end_.clear();
  return out;
}

double NeighborTable::absorb_shards(std::vector<NeighborTable>&& shards,
                                    unsigned num_threads,
                                    bool check_collisions) {
  if (!values_.empty()) {
    throw std::invalid_argument("NeighborTable: absorb_shards target not empty");
  }
  for (const NeighborTable& s : shards) {
    if (s.num_points() != num_points()) {
      throw std::invalid_argument("NeighborTable: shard size mismatch");
    }
  }
  if (shards.empty()) return 0.0;
  if (shards.size() == 1) {  // steal the storage wholesale
    ThreadCpuTimer timer;
    begin_ = std::move(shards[0].begin_);
    end_ = std::move(shards[0].end_);
    values_ = std::move(shards[0].values_);
    return timer.seconds();
  }

  // Region layout: shard s's values land at [region[s], region[s + 1]),
  // same order a serial absorb loop would produce.
  std::vector<std::size_t> region(shards.size() + 1, 0);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    region[s + 1] = region[s] + shards[s].values_.size();
  }
  ValueVector merged(region.back());  // skips zero-fill; fully overwritten

  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const unsigned W = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, shards.size()));

  // Key-collision detection needs cross-shard visibility, so it cannot
  // ride the parallel pass without atomics on every row; one serial O(n·k)
  // sweep over the range arrays (no pair data) keeps absorb_shard's strict
  // contract. Internal callers whose disjointness is structural skip it
  // (see the header) — the sweep would otherwise sit on the modeled
  // critical path of every build.
  double critical_seconds = 0.0;
  const std::size_t n = begin_.size();
  if (check_collisions) {
    ThreadCpuTimer serial_timer;
    for (std::size_t k = 0; k < n; ++k) {
      bool taken = false;
      for (const NeighborTable& s : shards) {
        if (s.end_[k] == s.begin_[k]) continue;
        if (taken) {
          throw std::logic_error("NeighborTable: key appears in two shards");
        }
        taken = true;
      }
    }
    critical_seconds = serial_timer.seconds();
  }

  // Parallel fan-in: worker w owns shards w, w + W, ... — each copies its
  // shards' values into their disjoint regions and rebases their disjoint
  // key ranges. Nothing is shared; the pass is bandwidth-bound.
  std::vector<double> cpu(W, 0.0);
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < W; ++w) {
    workers.emplace_back([&, w, ctx = current_request_context()] {
      RequestScope scope(ctx);
      ThreadCpuTimer timer;
      for (std::size_t s = w; s < shards.size(); s += W) {
        NeighborTable& shard = shards[s];
        std::copy(shard.values_.begin(), shard.values_.end(),
                  merged.begin() + region[s]);
        const auto base = static_cast<std::uint32_t>(region[s]);
        for (std::size_t k = 0; k < n; ++k) {
          if (shard.end_[k] == shard.begin_[k]) continue;
          begin_[k] = base + shard.begin_[k];
          end_[k] = base + shard.end_[k];
        }
      }
      cpu[w] = timer.seconds();
    });
  }
  for (auto& t : workers) t.join();
  critical_seconds += *std::max_element(cpu.begin(), cpu.end());

  values_ = std::move(merged);
  shards.clear();
  return critical_seconds;
}

double NeighborTable::expand_half_table(unsigned num_threads) {
  const std::size_t n = begin_.size();
  if (n == 0) return 0.0;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Thread spawn overhead beats the work itself on small tables.
  if (values_.size() < 1u << 15) num_threads = 1;
  const unsigned W = num_threads;
  const std::size_t chunk = (n + W - 1) / W;

  // Worker boundaries. Pass 2a's work is uniform per row, but passes 1
  // and 3 walk the values, so their chunks are balanced by *pair count* —
  // on clustered data equal row counts leave one worker holding most of
  // the values, and the critical path is the slowest worker.
  std::vector<std::size_t> row_cuts(W + 1), pair_cuts(W + 1, n);
  for (unsigned w = 0; w <= W; ++w) {
    row_cuts[w] = std::min(n, static_cast<std::size_t>(w) * chunk);
  }
  pair_cuts[0] = 0;
  {
    const std::uint64_t total = values_.size();
    std::uint64_t acc = 0;
    unsigned w = 1;
    for (std::size_t k = 0; k < n && w < W; ++k) {
      acc += end_[k] - begin_[k];
      while (w < W && acc * W >= total * w) pair_cuts[w++] = k + 1;
    }
  }

  double critical_seconds = 0.0;
  // Runs fn(w, cuts[w], cuts[w+1]) per worker and accumulates the slowest
  // worker's CPU time — the pass's critical path on a host with a core
  // per worker (this is what a performance model should charge; wall time
  // here would measure this machine's core count, not the work).
  auto parallel_rows = [&](const std::vector<std::size_t>& cuts, auto&& fn) {
    if (W <= 1) {
      ThreadCpuTimer timer;
      fn(0u, std::size_t{0}, n);
      critical_seconds += timer.seconds();
      return;
    }
    std::vector<double> cpu(W, 0.0);
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < W; ++w) {
      const std::size_t lo = cuts[w];
      const std::size_t hi = cuts[w + 1];
      if (lo >= hi) continue;
      workers.emplace_back([&fn, &cpu, w, lo, hi,
                            ctx = current_request_context()] {
        RequestScope scope(ctx);
        ThreadCpuTimer timer;
        fn(w, lo, hi);
        cpu[w] = timer.seconds();
      });
    }
    for (auto& t : workers) t.join();
    critical_seconds += *std::max_element(cpu.begin(), cpu.end());
  };

  // The expansion is a counting-sort transpose with per-worker histograms
  // — no atomics anywhere, every cursor is thread-private.
  //
  // Pass 1: worker w histograms the back contributions of its row chunk
  // into its private block back[w*n ...] (one entry per destination row).
  std::vector<std::uint32_t> back(static_cast<std::size_t>(W) * n, 0);
  parallel_rows(pair_cuts, [&](unsigned w, std::size_t lo, std::size_t hi) {
    std::uint32_t* mine = back.data() + static_cast<std::size_t>(w) * n;
    for (std::size_t k = lo; k < hi; ++k) {
      for (std::uint32_t a = begin_[k]; a < end_[k]; ++a) {
        const PointId v = values_[a];
        if (v != static_cast<PointId>(k)) ++mine[v];
      }
    }
  });

  // Pass 2a: per destination row, turn the worker histograms into
  // exclusive per-worker offsets and total the row's back contributions.
  std::vector<std::uint32_t> row_extra(n);
  parallel_rows(row_cuts, [&](unsigned, std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      std::uint32_t running = 0;
      for (unsigned w = 0; w < W; ++w) {
        std::uint32_t& slot = back[static_cast<std::size_t>(w) * n + v];
        const std::uint32_t c = slot;
        slot = running;
        running += c;
      }
      row_extra[v] = running;
    }
  });

  // Pass 2b: serial prefix sum into the new layout; fwd_base[v] is where
  // row v's back contributions start (right after its forward segment).
  ThreadCpuTimer serial_timer;
  std::vector<std::uint32_t> new_begin(n), new_end(n), fwd_base(n);
  std::uint64_t running = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t len = end_[k] - begin_[k];
    new_begin[k] = static_cast<std::uint32_t>(running);
    fwd_base[k] = static_cast<std::uint32_t>(running + len);
    running += len + row_extra[k];
    new_end[k] = static_cast<std::uint32_t>(running);
  }
  // ValueVector skips zero-fill: every slot is written below (forward
  // copies fill [new_begin, fwd_base), the scatter fills the rest).
  ValueVector new_values(running);
  critical_seconds += serial_timer.seconds();

  // Pass 3: copy each forward segment into place, and scatter the chunk's
  // transposes through the worker's private cursors (back[w*n + v] now
  // counts how many this worker has already placed for row v).
  parallel_rows(pair_cuts, [&](unsigned w, std::size_t lo, std::size_t hi) {
    std::uint32_t* mine = back.data() + static_cast<std::size_t>(w) * n;
    for (std::size_t k = lo; k < hi; ++k) {
      std::copy(values_.begin() + begin_[k], values_.begin() + end_[k],
                new_values.begin() + new_begin[k]);
      for (std::uint32_t a = begin_[k]; a < end_[k]; ++a) {
        const PointId v = values_[a];
        if (v == static_cast<PointId>(k)) continue;
        new_values[fwd_base[v] + mine[v]++] = static_cast<PointId>(k);
      }
    }
  });

  begin_ = std::move(new_begin);
  end_ = std::move(new_end);
  values_ = std::move(new_values);
  return critical_seconds;
}

void NeighborTable::canonicalize() {
  std::vector<std::uint32_t> new_begin(begin_.size(), 0);
  std::vector<std::uint32_t> new_end(end_.size(), 0);
  ValueVector new_values;
  new_values.reserve(values_.size());
  for (std::size_t k = 0; k < begin_.size(); ++k) {
    const std::size_t run_begin = new_values.size();
    new_values.insert(new_values.end(), values_.begin() + begin_[k],
                      values_.begin() + end_[k]);
    std::sort(new_values.begin() + run_begin, new_values.end());
    new_begin[k] = static_cast<std::uint32_t>(run_begin);
    new_end[k] = static_cast<std::uint32_t>(new_values.size());
  }
  begin_ = std::move(new_begin);
  end_ = std::move(new_end);
  values_ = std::move(new_values);
}

NeighborTable build_neighbor_table_host_strided(const GridIndex& index,
                                                float eps,
                                                std::uint32_t first_key,
                                                std::uint32_t key_stride,
                                                ScanMode mode,
                                                QualitySpec quality) {
  if (key_stride == 0) {
    throw std::invalid_argument("build_neighbor_table_host_strided: stride 0");
  }
  NeighborTable shard(index.size());
  // Only owned points are queried: a shard sub-index's ghost rows stay
  // empty, exactly like the device pipeline's batch domain.
  const std::size_t n = index.query_count();
  std::vector<PointId> neighbors;
  std::vector<NeighborPair> pairs;
  for (std::uint64_t key = first_key; key < n; key += key_stride) {
    if (mode == ScanMode::kHalf) {
      grid_query_forward(index, static_cast<PointId>(key), eps, neighbors);
    } else {
      grid_query(index, index.points[key], eps, neighbors);
    }
    pairs.clear();
    pairs.reserve(neighbors.size());
    // Values pass through the index's emission map, matching the device
    // kernels (shard slabs emit global ids; full indexes are identity).
    // The Bernoulli filter runs on resident ids, pre-emission — the same
    // pair the kernels hash — so a degraded build keeps the same sample.
    for (const PointId v : neighbors) {
      if (!quality.keep_pair(static_cast<PointId>(key), v)) continue;
      pairs.push_back({static_cast<PointId>(key), index.emit(v)});
    }
    shard.append_sorted_batch(pairs);
  }
  return shard;
}

NeighborTable build_neighbor_table_host_strided_idrule(const GridIndex& index,
                                                       const RTree& rtree,
                                                       float eps,
                                                       std::uint32_t first_key,
                                                       std::uint32_t key_stride,
                                                       ScanMode mode,
                                                       QualitySpec quality) {
  if (key_stride == 0) {
    throw std::invalid_argument(
        "build_neighbor_table_host_strided_idrule: stride 0");
  }
  if (rtree.size() != index.size()) {
    throw std::invalid_argument(
        "build_neighbor_table_host_strided_idrule: R-tree/index size mismatch");
  }
  NeighborTable shard(index.size());
  const std::size_t n = index.query_count();
  std::vector<PointId> neighbors;
  std::vector<NeighborPair> pairs;
  for (std::uint64_t key = first_key; key < n; key += key_stride) {
    neighbors.clear();
    rtree.query_circle(index.points[key], eps, neighbors);
    pairs.clear();
    pairs.reserve(neighbors.size());
    for (const PointId v : neighbors) {
      // The tree backends' kHalf cover: row `key` owns the pairs whose
      // partner id is not below it (self included).
      if (mode == ScanMode::kHalf && v < key) continue;
      if (!quality.keep_pair(static_cast<PointId>(key), v)) continue;
      pairs.push_back({static_cast<PointId>(key), v});
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const NeighborPair& a, const NeighborPair& b) {
                return a.value < b.value;
              });
    shard.append_sorted_batch(pairs);
  }
  return shard;
}

NeighborTable build_neighbor_table_host_parallel(const GridIndex& index,
                                                 float eps,
                                                 unsigned num_threads,
                                                 QualitySpec quality) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  NeighborTable table(index.size());
  const std::size_t n = index.query_count();

  // Each worker searches a contiguous id range and stages its pairs;
  // appends are serialized (ranges have disjoint keys, so order between
  // batches is irrelevant).
  std::mutex table_mutex;
  const std::size_t chunk =
      std::max<std::size_t>(1, (n + num_threads - 1) / num_threads);
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < num_threads; ++w) {
    const std::size_t begin = static_cast<std::size_t>(w) * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&, begin, end, ctx = current_request_context()] {
      RequestScope scope(ctx);
      std::vector<PointId> neighbors;
      std::vector<NeighborPair> pairs;
      for (std::size_t i = begin; i < end; ++i) {
        grid_query(index, index.points[i], eps, neighbors);
        for (const PointId v : neighbors) {
          if (!quality.keep_pair(static_cast<PointId>(i), v)) continue;
          pairs.push_back({static_cast<PointId>(i), v});
        }
      }
      std::lock_guard lock(table_mutex);
      table.append_sorted_batch(pairs);
    });
  }
  for (auto& t : workers) t.join();
  return table;
}

NeighborTable build_neighbor_table_host(const GridIndex& index, float eps,
                                        QualitySpec quality) {
  NeighborTable table(index.size());
  std::vector<PointId> neighbors;
  std::vector<NeighborPair> pairs;
  for (PointId i = 0; i < index.query_count(); ++i) {
    grid_query(index, index.points[i], eps, neighbors);
    pairs.clear();
    pairs.reserve(neighbors.size());
    for (const PointId v : neighbors) {
      if (!quality.keep_pair(i, v)) continue;
      pairs.push_back({i, v});
    }
    table.append_sorted_batch(pairs);
  }
  return table;
}

}  // namespace hdbscan
