#include "dbscan/neighbor_table.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace hdbscan {

void NeighborTable::append_sorted_batch(std::span<const NeighborPair> pairs) {
  const std::size_t base = values_.size();
  values_.resize(base + pairs.size());
  // Single pass: copy values and record each key's [Tmin, Tmax) range at
  // the run boundaries. This is the host-side work that overlaps the GPU
  // in the paper's scheme, so it must stream at memcpy-like rates.
  std::size_t i = 0;
  while (i < pairs.size()) {
    const PointId key = pairs[i].key;
    if (key >= begin_.size()) {
      values_.resize(base);
      throw std::out_of_range("NeighborTable: key out of range");
    }
    if (end_[key] != begin_[key]) {
      values_.resize(base);
      throw std::logic_error("NeighborTable: key appears in two batches");
    }
    const std::size_t run_begin = i;
    PointId* out = values_.data() + base + i;
    while (i < pairs.size() && pairs[i].key == key) {
      *out++ = pairs[i].value;
      ++i;
    }
    begin_[key] = static_cast<std::uint32_t>(base + run_begin);
    end_[key] = static_cast<std::uint32_t>(base + i);
  }
}

void NeighborTable::append_csr_batch(std::uint32_t first_key,
                                     std::uint32_t key_stride,
                                     std::span<const std::uint32_t> offsets,
                                     std::span<const PointId> values) {
  if (key_stride == 0) {
    throw std::invalid_argument("NeighborTable: zero key stride");
  }
  const std::size_t base = values_.size();
  for (std::size_t g = 0; g < offsets.size(); ++g) {
    const std::uint64_t key =
        first_key + static_cast<std::uint64_t>(g) * key_stride;
    if (key >= begin_.size()) {
      throw std::out_of_range("NeighborTable: key out of range");
    }
    const std::uint32_t run_begin = offsets[g];
    const std::uint64_t run_end =
        g + 1 < offsets.size() ? offsets[g + 1] : values.size();
    if (run_begin > run_end || run_end > values.size()) {
      throw std::invalid_argument("NeighborTable: malformed CSR offsets");
    }
    if (end_[key] != begin_[key]) {
      throw std::logic_error("NeighborTable: key appears in two batches");
    }
    begin_[key] = static_cast<std::uint32_t>(base + run_begin);
    end_[key] = static_cast<std::uint32_t>(base + run_end);
  }
  values_.insert(values_.end(), values.begin(), values.end());
}

void NeighborTable::absorb_shard(NeighborTable&& shard) {
  if (shard.num_points() != num_points()) {
    throw std::invalid_argument("NeighborTable: shard size mismatch");
  }
  if (values_.empty()) {  // first shard: steal its storage wholesale
    begin_ = std::move(shard.begin_);
    end_ = std::move(shard.end_);
    values_ = std::move(shard.values_);
    return;
  }
  const std::size_t base = values_.size();
  for (std::size_t k = 0; k < begin_.size(); ++k) {
    if (shard.end_[k] == shard.begin_[k]) continue;  // key not in shard
    if (end_[k] != begin_[k]) {
      throw std::logic_error("NeighborTable: key appears in two shards");
    }
    begin_[k] = static_cast<std::uint32_t>(base + shard.begin_[k]);
    end_[k] = static_cast<std::uint32_t>(base + shard.end_[k]);
  }
  values_.insert(values_.end(), shard.values_.begin(), shard.values_.end());
}

void NeighborTable::canonicalize() {
  std::vector<std::uint32_t> new_begin(begin_.size(), 0);
  std::vector<std::uint32_t> new_end(end_.size(), 0);
  std::vector<PointId> new_values;
  new_values.reserve(values_.size());
  for (std::size_t k = 0; k < begin_.size(); ++k) {
    const std::size_t run_begin = new_values.size();
    new_values.insert(new_values.end(), values_.begin() + begin_[k],
                      values_.begin() + end_[k]);
    std::sort(new_values.begin() + run_begin, new_values.end());
    new_begin[k] = static_cast<std::uint32_t>(run_begin);
    new_end[k] = static_cast<std::uint32_t>(new_values.size());
  }
  begin_ = std::move(new_begin);
  end_ = std::move(new_end);
  values_ = std::move(new_values);
}

NeighborTable build_neighbor_table_host_strided(const GridIndex& index,
                                                float eps,
                                                std::uint32_t first_key,
                                                std::uint32_t key_stride) {
  if (key_stride == 0) {
    throw std::invalid_argument("build_neighbor_table_host_strided: stride 0");
  }
  const std::size_t n = index.size();
  NeighborTable shard(n);
  std::vector<PointId> neighbors;
  std::vector<NeighborPair> pairs;
  for (std::uint64_t key = first_key; key < n; key += key_stride) {
    grid_query(index, index.points[key], eps, neighbors);
    pairs.clear();
    pairs.reserve(neighbors.size());
    for (const PointId v : neighbors) {
      pairs.push_back({static_cast<PointId>(key), v});
    }
    shard.append_sorted_batch(pairs);
  }
  return shard;
}

NeighborTable build_neighbor_table_host_parallel(const GridIndex& index,
                                                 float eps,
                                                 unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::size_t n = index.size();
  NeighborTable table(n);

  // Each worker searches a contiguous id range and stages its pairs;
  // appends are serialized (ranges have disjoint keys, so order between
  // batches is irrelevant).
  std::mutex table_mutex;
  const std::size_t chunk =
      std::max<std::size_t>(1, (n + num_threads - 1) / num_threads);
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < num_threads; ++w) {
    const std::size_t begin = static_cast<std::size_t>(w) * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&, begin, end] {
      std::vector<PointId> neighbors;
      std::vector<NeighborPair> pairs;
      for (std::size_t i = begin; i < end; ++i) {
        grid_query(index, index.points[i], eps, neighbors);
        for (const PointId v : neighbors) {
          pairs.push_back({static_cast<PointId>(i), v});
        }
      }
      std::lock_guard lock(table_mutex);
      table.append_sorted_batch(pairs);
    });
  }
  for (auto& t : workers) t.join();
  return table;
}

NeighborTable build_neighbor_table_host(const GridIndex& index, float eps) {
  NeighborTable table(index.size());
  std::vector<PointId> neighbors;
  std::vector<NeighborPair> pairs;
  for (PointId i = 0; i < index.size(); ++i) {
    grid_query(index, index.points[i], eps, neighbors);
    pairs.clear();
    pairs.reserve(neighbors.size());
    for (const PointId v : neighbors) pairs.push_back({i, v});
    table.append_sorted_batch(pairs);
  }
  return table;
}

}  // namespace hdbscan
