// DBSCAN-aware clustering equivalence.
//
// Two valid DBSCAN runs over the same (D, eps, minpts) must agree exactly
// on (a) which points are core, (b) the partition of core points into
// clusters, and (c) which points are noise. What they may legitimately
// disagree on is *which* adjacent cluster a border point joins — border
// assignment is visit-order dependent by the algorithm's definition. The
// checker enforces (a)-(c) and, for border points, that the assigned
// cluster contains a core point within eps.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "dbscan/cluster_result.hpp"
#include "dbscan/neighbor_table.hpp"

namespace hdbscan {

struct CompareOutcome {
  bool equivalent = true;
  std::string diagnostic;  ///< empty when equivalent
};

/// Compares two clusterings of the same point ordering. `table` must be
/// the eps-neighbor table for that ordering (it defines core points).
CompareOutcome compare_clusterings(const ClusterResult& a,
                                   const ClusterResult& b,
                                   const NeighborTable& table, int minpts);

/// Rand index of two label vectors over the same points: the fraction of
/// point pairs on which the clusterings agree (both together or both
/// apart). Noise points (label < 0) count as singletons — two noise
/// points are "apart" even though they share the sentinel label, matching
/// DBSCAN semantics where noise is unclustered rather than one cluster.
/// Invariant under label permutation. Returns 1.0 for n <= 1 (no pairs to
/// disagree on). Throws std::invalid_argument on size mismatch.
/// This is how the approximate quality modes (ClusterQuality::kSubsampled
/// / kCellGraph) report their agreement with the exact labels.
double rand_index(std::span<const std::int32_t> a,
                  std::span<const std::int32_t> b);

/// Validates a single clustering against DBSCAN's definition:
///  * every core point is clustered, and all cores within eps of each
///    other share a cluster;
///  * cores in the same cluster are connected through core-to-core eps
///    links (no accidental merges);
///  * border points belong to a cluster owning a core within eps;
///  * noise points have no core within eps.
CompareOutcome validate_dbscan_result(const ClusterResult& result,
                                      const NeighborTable& table, int minpts);

}  // namespace hdbscan
