// DBSCAN-aware clustering equivalence.
//
// Two valid DBSCAN runs over the same (D, eps, minpts) must agree exactly
// on (a) which points are core, (b) the partition of core points into
// clusters, and (c) which points are noise. What they may legitimately
// disagree on is *which* adjacent cluster a border point joins — border
// assignment is visit-order dependent by the algorithm's definition. The
// checker enforces (a)-(c) and, for border points, that the assigned
// cluster contains a core point within eps.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "dbscan/cluster_result.hpp"
#include "dbscan/neighbor_table.hpp"

namespace hdbscan {

struct CompareOutcome {
  bool equivalent = true;
  std::string diagnostic;  ///< empty when equivalent
};

/// Compares two clusterings of the same point ordering. `table` must be
/// the eps-neighbor table for that ordering (it defines core points).
CompareOutcome compare_clusterings(const ClusterResult& a,
                                   const ClusterResult& b,
                                   const NeighborTable& table, int minpts);

/// Validates a single clustering against DBSCAN's definition:
///  * every core point is clustered, and all cores within eps of each
///    other share a cluster;
///  * cores in the same cluster are connected through core-to-core eps
///    links (no accidental merges);
///  * border points belong to a cluster owning a core within eps;
///  * noise points have no core within eps.
CompareOutcome validate_dbscan_result(const ClusterResult& result,
                                      const NeighborTable& table, int minpts);

}  // namespace hdbscan
