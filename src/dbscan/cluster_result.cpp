#include "dbscan/cluster_result.hpp"

namespace hdbscan {

ClusterResult canonicalize(const ClusterResult& result) {
  ClusterResult out;
  out.labels.resize(result.labels.size(), kNoise);
  std::vector<std::int32_t> remap(
      static_cast<std::size_t>(result.num_clusters), -1);
  std::int32_t next = 0;
  for (std::size_t i = 0; i < result.labels.size(); ++i) {
    const std::int32_t l = result.labels[i];
    if (l < 0) {
      out.labels[i] = l;
      continue;
    }
    auto& m = remap[static_cast<std::size_t>(l)];
    if (m < 0) m = next++;
    out.labels[i] = m;
  }
  out.num_clusters = next;
  out.finalize_noise_count();
  return out;
}

}  // namespace hdbscan
