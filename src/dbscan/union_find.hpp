// Disjoint-set forest with path halving + union by size. Used by the
// clustering-equivalence checker (and available for subcluster-merge style
// DBSCAN variants).
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace hdbscan {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }

  [[nodiscard]] std::uint32_t find(std::uint32_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Returns true when the two elements were in different sets.
  bool unite(std::uint32_t a, std::uint32_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  [[nodiscard]] bool connected(std::uint32_t a, std::uint32_t b) noexcept {
    return find(a) == find(b);
  }

  [[nodiscard]] std::uint32_t set_size(std::uint32_t x) noexcept {
    return size_[find(x)];
  }

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace hdbscan
