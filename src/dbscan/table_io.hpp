// Neighbor-table persistence: because T depends only on (D, eps), a saved
// table lets later sessions sweep minpts (scenario S3) or re-extract
// clusterings without touching the GPU at all — data reuse across
// processes, not just across threads.
#pragma once

#include <string>

#include "dbscan/neighbor_table.hpp"

namespace hdbscan {

/// Stored alongside the table so consumers can validate compatibility.
struct TableHeader {
  float eps = 0.0f;
  std::uint64_t num_points = 0;
  std::uint64_t total_pairs = 0;
};

/// Writes the table (binary, little-endian). Throws std::runtime_error on
/// I/O failure.
void save_neighbor_table(const std::string& path, const NeighborTable& table,
                         float eps);

/// Reads a table written by save_neighbor_table. `header_out` (optional)
/// receives the stored metadata.
NeighborTable load_neighbor_table(const std::string& path,
                                  TableHeader* header_out = nullptr);

}  // namespace hdbscan
