#include "dbscan/table_io.hpp"

#include <array>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace hdbscan {

namespace {
constexpr std::array<char, 4> kMagic = {'H', 'D', 'B', 'T'};

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
}
}  // namespace

void save_neighbor_table(const std::string& path, const NeighborTable& table,
                         float eps) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_neighbor_table: cannot open " + path);
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, eps);
  write_pod(out, static_cast<std::uint64_t>(table.num_points()));
  write_pod(out, static_cast<std::uint64_t>(table.total_pairs()));
  for (PointId i = 0; i < table.num_points(); ++i) {
    const auto neighbors = table.neighbors(i);
    write_pod(out, static_cast<std::uint32_t>(neighbors.size()));
    out.write(reinterpret_cast<const char*>(neighbors.data()),
              static_cast<std::streamsize>(neighbors.size_bytes()));
  }
  if (!out) throw std::runtime_error("save_neighbor_table: write failed");
}

NeighborTable load_neighbor_table(const std::string& path,
                                  TableHeader* header_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_neighbor_table: cannot open " + path);
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_neighbor_table: bad magic in " + path);
  }
  TableHeader header;
  read_pod(in, header.eps);
  read_pod(in, header.num_points);
  read_pod(in, header.total_pairs);
  if (!in) throw std::runtime_error("load_neighbor_table: truncated header");

  NeighborTable table(header.num_points);
  table.reserve_values(header.total_pairs);
  std::vector<NeighborPair> batch;
  std::vector<PointId> values;
  std::uint64_t seen_pairs = 0;
  for (PointId i = 0; i < header.num_points; ++i) {
    std::uint32_t count = 0;
    read_pod(in, count);
    values.resize(count);
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(PointId)));
    if (!in) {
      throw std::runtime_error("load_neighbor_table: truncated data at point " +
                               std::to_string(i));
    }
    batch.resize(count);
    for (std::uint32_t v = 0; v < count; ++v) batch[v] = {i, values[v]};
    table.append_sorted_batch(batch);
    seen_pairs += count;
  }
  if (seen_pairs != header.total_pairs) {
    throw std::runtime_error("load_neighbor_table: pair count mismatch");
  }
  if (header_out != nullptr) *header_out = header;
  return table;
}

}  // namespace hdbscan
