// Lock-free concurrent disjoint-set forest (Anderson & Woll style):
// find uses path halving with relaxed loads; unite links the larger root
// under the smaller via CAS, retrying on contention. Linking by smaller
// root id (rather than by rank) makes the final component representatives
// deterministic regardless of thread interleaving — which in turn makes
// the parallel DBSCAN's output independent of the thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace hdbscan {

class AtomicUnionFind {
 public:
  explicit AtomicUnionFind(std::size_t n)
      : n_(n), parent_(std::make_unique<std::atomic<std::uint32_t>[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i].store(static_cast<std::uint32_t>(i),
                       std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Thread-safe find with path halving.
  [[nodiscard]] std::uint32_t find(std::uint32_t x) noexcept {
    for (;;) {
      std::uint32_t p = parent_[x].load(std::memory_order_relaxed);
      if (p == x) return x;
      const std::uint32_t gp = parent_[p].load(std::memory_order_relaxed);
      if (gp != p) {
        parent_[x].compare_exchange_weak(p, gp, std::memory_order_relaxed);
      }
      x = gp;
    }
  }

  /// Thread-safe union; the root with the smaller id wins. Returns true
  /// when the two elements were in different sets.
  bool unite(std::uint32_t a, std::uint32_t b) noexcept {
    for (;;) {
      std::uint32_t ra = find(a);
      std::uint32_t rb = find(b);
      if (ra == rb) return false;
      if (ra > rb) std::swap(ra, rb);  // deterministic winner: smaller id
      std::uint32_t expected = rb;
      if (parent_[rb].compare_exchange_strong(expected, ra,
                                              std::memory_order_acq_rel)) {
        return true;
      }
      // rb gained a parent concurrently; retry from the new roots.
      a = ra;
      b = rb;
    }
  }

  [[nodiscard]] bool connected(std::uint32_t a, std::uint32_t b) noexcept {
    // Standard double-check loop: roots may move during the first pass.
    for (;;) {
      const std::uint32_t ra = find(a);
      const std::uint32_t rb = find(b);
      if (ra == rb) return true;
      if (parent_[ra].load(std::memory_order_acquire) == ra) return false;
    }
  }

 private:
  std::size_t n_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> parent_;
};

}  // namespace hdbscan
