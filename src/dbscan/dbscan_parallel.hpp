// Parallel disjoint-set DBSCAN over a precomputed neighbor table, in the
// spirit of PDSDBSCAN (Patwary et al. 2012, the paper's citation [9]).
//
// With T in hand the clustering reduces to a graph problem:
//   1. (parallel) mark core points: |N_eps(p)| >= minpts;
//   2. (parallel) union every core with its core neighbors via a
//      lock-free disjoint-set forest;
//   3. (parallel) label borders: a non-core with core neighbors joins the
//      cluster of the core neighbor with the smallest component root —
//      a deterministic rule, so the output is identical for any thread
//      count; remaining points are noise.
//
// This is an alternative consumer for the hybrid pipeline's T that removes
// the sequential expansion loop entirely (useful when a single variant,
// not a variant sweep, must finish fastest).
#pragma once

#include "dbscan/cluster_result.hpp"
#include "dbscan/neighbor_table.hpp"

namespace hdbscan {

/// Clusters using `num_threads` workers (0 = hardware concurrency).
/// Produces a DBSCAN-valid clustering: identical to the sequential
/// algorithm on cores and noise; border assignment follows the
/// deterministic smallest-root rule.
ClusterResult dbscan_parallel(const NeighborTable& table, int minpts,
                              unsigned num_threads = 0);

}  // namespace hdbscan
