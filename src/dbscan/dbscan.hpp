// DBSCAN (Ester et al. 1996), paper Algorithm 1, in three flavours:
//
//  * dbscan_rtree — the reference implementation the paper compares
//    against: sequential DBSCAN whose NeighborSearch queries an R-tree.
//    Optionally charges search time to an accumulator (Table I).
//  * dbscan_grid — same algorithm over the grid index (host-only path).
//  * dbscan_neighbor_table — the modified DBSCAN of Algorithm 4 line 9:
//    NeighborSearch is a lookup into the precomputed neighbor table T, so
//    it takes (T, minpts) instead of (eps, minpts).
//
// All flavours produce identical clusterings on core points; border-point
// cluster assignment is visit-order dependent (inherent to DBSCAN).
#pragma once

#include <span>

#include "common/timer.hpp"
#include "common/types.hpp"
#include "dbscan/cluster_result.hpp"
#include "dbscan/neighbor_table.hpp"
#include "index/grid_index.hpp"
#include "index/rtree.hpp"

namespace hdbscan {

/// Reference sequential DBSCAN over an R-tree. Labels follow the order of
/// `points`. `search_time` (optional) accumulates NeighborSearch wall time.
ClusterResult dbscan_rtree(std::span<const Point2> points, float eps,
                           int minpts, const RTree& rtree,
                           TimeAccumulator* search_time = nullptr);

/// Convenience overload that builds the R-tree internally.
ClusterResult dbscan_rtree(std::span<const Point2> points, float eps,
                           int minpts, TimeAccumulator* search_time = nullptr);

/// Sequential DBSCAN over the grid index. Labels follow the *index's*
/// point order (index.points); use index.original_ids to map back.
ClusterResult dbscan_grid(const GridIndex& index, float eps, int minpts);

/// Modified DBSCAN taking the precomputed neighbor table T and minpts.
/// Labels follow the point ordering T was built from.
ClusterResult dbscan_neighbor_table(const NeighborTable& table, int minpts);

}  // namespace hdbscan
