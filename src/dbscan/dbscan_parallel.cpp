#include "dbscan/dbscan_parallel.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dbscan/atomic_union_find.hpp"

namespace hdbscan {

namespace {

/// Static range split of [0, n) across `workers` threads.
template <typename F>
void run_partitioned(std::size_t n, unsigned workers, F&& body) {
  if (workers <= 1 || n < 2048) {
    body(0, n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t begin = static_cast<std::size_t>(w) * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&body, begin, end] { body(begin, end); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace

ClusterResult dbscan_parallel(const NeighborTable& table, int minpts,
                              unsigned num_threads) {
  if (minpts < 1) {
    throw std::invalid_argument("dbscan_parallel: minpts must be >= 1");
  }
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::size_t n = table.num_points();
  const auto required = static_cast<std::uint32_t>(minpts);

  // Phase 1: core mask.
  std::vector<std::uint8_t> core(n, 0);
  run_partitioned(n, num_threads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      core[i] = table.neighbor_count(static_cast<PointId>(i)) >= required;
    }
  });

  // Phase 2: union core-core edges. Each edge appears twice (T is
  // symmetric); processing j > i halves the work without missing any.
  AtomicUnionFind uf(n);
  run_partitioned(n, num_threads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (!core[i]) continue;
      for (const PointId j : table.neighbors(static_cast<PointId>(i))) {
        if (j > i && core[j]) {
          uf.unite(static_cast<std::uint32_t>(i), j);
        }
      }
    }
  });

  // Phase 3a: dense-renumber the core component roots (sequential scan in
  // id order -> stable cluster numbering).
  ClusterResult result;
  result.labels.assign(n, kNoise);
  std::vector<std::int32_t> root_label(n, -1);
  std::int32_t next_cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!core[i]) continue;
    const std::uint32_t root = uf.find(static_cast<std::uint32_t>(i));
    if (root_label[root] < 0) root_label[root] = next_cluster++;
    result.labels[i] = root_label[root];
  }
  result.num_clusters = next_cluster;

  // Phase 3b: borders — deterministic smallest-root rule.
  run_partitioned(n, num_threads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (core[i]) continue;
      std::uint32_t best_root = std::numeric_limits<std::uint32_t>::max();
      for (const PointId j : table.neighbors(static_cast<PointId>(i))) {
        if (core[j]) {
          best_root = std::min(best_root, uf.find(j));
        }
      }
      if (best_root != std::numeric_limits<std::uint32_t>::max()) {
        result.labels[i] = root_label[best_root];
      }
    }
  });
  result.finalize_noise_count();
  return result;
}

}  // namespace hdbscan
