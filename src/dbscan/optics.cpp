#include "dbscan/optics.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "obs/trace.hpp"

namespace hdbscan {

namespace {

/// Lazy-deletion entry for the seed priority queue (min-heap by
/// reachability; ties broken by id for determinism).
struct Seed {
  float reachability;
  PointId id;

  friend bool operator>(const Seed& a, const Seed& b) noexcept {
    if (a.reachability != b.reachability) {
      return a.reachability > b.reachability;
    }
    return a.id > b.id;
  }
};

}  // namespace

OpticsResult optics(std::span<const Point2> points, const NeighborTable& table,
                    float eps, int minpts) {
  if (points.size() != table.num_points()) {
    throw std::invalid_argument("optics: points/table size mismatch");
  }
  if (minpts < 1) throw std::invalid_argument("optics: minpts must be >= 1");

  const std::size_t n = points.size();
  TRACE_SPAN("dbscan", "optics n=%zu minpts=%d", n, minpts);
  OpticsResult result;
  result.eps = eps;
  result.minpts = minpts;
  result.order.reserve(n);
  result.reachability.assign(n, kUndefinedDistance);
  result.core_distance.assign(n, kUndefinedDistance);

  // Core distances: the minpts-th smallest distance within the
  // eps-neighborhood (which T already materializes, self included).
  std::vector<float> dists;
  for (PointId i = 0; i < n; ++i) {
    const auto neighbors = table.neighbors(i);
    if (neighbors.size() < static_cast<std::size_t>(minpts)) continue;
    dists.clear();
    dists.reserve(neighbors.size());
    for (const PointId j : neighbors) {
      dists.push_back(dist(points[i], points[j]));
    }
    auto kth = dists.begin() + (minpts - 1);
    std::nth_element(dists.begin(), kth, dists.end());
    result.core_distance[i] = *kth;
  }

  std::vector<bool> processed(n, false);
  std::priority_queue<Seed, std::vector<Seed>, std::greater<>> seeds;

  auto update_neighbors = [&](PointId p) {
    const float core_d = result.core_distance[p];
    if (core_d == kUndefinedDistance) return;  // not core: no expansion
    for (const PointId q : table.neighbors(p)) {
      if (processed[q]) continue;
      const float reach = std::max(core_d, dist(points[p], points[q]));
      if (reach < result.reachability[q]) {
        result.reachability[q] = reach;
        seeds.push(Seed{reach, q});  // lazy decrease-key
      }
    }
  };

  for (PointId start = 0; start < n; ++start) {
    if (processed[start]) continue;
    processed[start] = true;
    result.order.push_back(start);
    update_neighbors(start);
    while (!seeds.empty()) {
      const Seed seed = seeds.top();
      seeds.pop();
      if (processed[seed.id]) continue;  // stale entry
      processed[seed.id] = true;
      result.order.push_back(seed.id);
      update_neighbors(seed.id);
    }
  }
  return result;
}

ClusterResult extract_dbscan_clustering(const OpticsResult& result,
                                        float eps_prime) {
  if (eps_prime > result.eps) {
    throw std::invalid_argument(
        "extract_dbscan_clustering: eps_prime exceeds the OPTICS radius");
  }
  ClusterResult out;
  out.labels.assign(result.size(), kNoise);
  std::int32_t cluster = -1;
  for (const PointId p : result.order) {
    if (result.reachability[p] > eps_prime) {
      // Not density-reachable at eps' from anything before it: either it
      // starts a new cluster (core at eps') or it is noise.
      if (result.core_distance[p] <= eps_prime) {
        ++cluster;
        out.labels[p] = cluster;
      } else {
        out.labels[p] = kNoise;
      }
    } else {
      out.labels[p] = cluster;
    }
  }
  out.num_clusters = cluster + 1;
  out.finalize_noise_count();
  return out;
}

}  // namespace hdbscan
