// OPTICS (Ankerst et al. 1999), the converse knob to the paper's
// data-reuse scheme: HYBRID-DBSCAN fixes eps and reuses T across minpts
// (paper §VII-F), OPTICS fixes minpts and orders points so that a
// DBSCAN-equivalent clustering for *any* eps' <= eps can be extracted.
//
// This implementation runs over the same precomputed neighbor table T the
// hybrid pipeline produces, so one GPU pass serves an entire (eps',
// cluster-structure) exploration — the "Computer-Aided Discovery" workflow
// of the paper's §III, extended along the second parameter axis.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "dbscan/cluster_result.hpp"
#include "dbscan/neighbor_table.hpp"

namespace hdbscan {

/// No reachability / not a core point.
inline constexpr float kUndefinedDistance =
    std::numeric_limits<float>::infinity();

struct OpticsResult {
  /// Points in cluster order (a permutation of the table's point ids).
  std::vector<PointId> order;
  /// reachability[i] is the reachability distance of point i (by point id,
  /// not by order position); kUndefinedDistance for component starters.
  std::vector<float> reachability;
  /// core_distance[i]: distance to the minpts-th nearest neighbor within
  /// eps, or kUndefinedDistance when |N_eps(i)| < minpts.
  std::vector<float> core_distance;
  float eps = 0.0f;
  int minpts = 0;

  [[nodiscard]] std::size_t size() const noexcept { return order.size(); }
};

/// Runs OPTICS. `points` must be in the same order the table was built
/// from (the grid index's internal ordering); `eps` must match the
/// table's construction radius.
OpticsResult optics(std::span<const Point2> points, const NeighborTable& table,
                    float eps, int minpts);

/// Extracts the DBSCAN-like clustering at eps_prime <= optics eps from the
/// ordering (ExtractDBSCAN-Clustering of the OPTICS paper). Agrees with
/// DBSCAN(eps_prime, minpts) exactly on core points; a handful of border
/// points may be classified noise instead (an inherent property of the
/// extraction, noted in the OPTICS paper).
ClusterResult extract_dbscan_clustering(const OpticsResult& result,
                                        float eps_prime);

}  // namespace hdbscan
