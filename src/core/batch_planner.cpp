#include "core/batch_planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hdbscan {

BatchPlan plan_batches(std::uint64_t estimated_total_pairs,
                       const BatchPolicy& policy,
                       std::uint64_t max_buffer_pairs) {
  if (policy.num_streams == 0) {
    throw std::invalid_argument("plan_batches: need at least one stream");
  }
  BatchPlan plan;
  plan.estimated_total_pairs = std::max<std::uint64_t>(1, estimated_total_pairs);

  if (plan.estimated_total_pairs >= policy.static_threshold_pairs) {
    plan.static_buffer = true;
    plan.alpha_used = policy.alpha;
    plan.buffer_pairs = policy.static_buffer_pairs;
  } else {
    // Variable buffer: alpha doubled because the estimate is noisier and
    // pinned allocation for an oversized static buffer would dominate.
    plan.static_buffer = false;
    plan.alpha_used = 2.0 * policy.alpha;
    plan.buffer_pairs = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(plan.estimated_total_pairs) *
                  (1.0 + plan.alpha_used) /
                  static_cast<double>(policy.num_streams)));
  }
  plan.buffer_pairs = std::max<std::uint64_t>(1, plan.buffer_pairs);
  if (max_buffer_pairs != 0) {
    plan.buffer_pairs = std::min(plan.buffer_pairs, max_buffer_pairs);
  }

  const double nb = std::ceil(
      (1.0 + plan.alpha_used) * static_cast<double>(plan.estimated_total_pairs) /
      static_cast<double>(plan.buffer_pairs));
  plan.num_batches = static_cast<std::uint32_t>(
      std::max(1.0, std::min(nb, 4.0e9)));
  return plan;
}

}  // namespace hdbscan
