// Data-reuse scheme (paper §VII-F / scenario S3).
//
// The neighbor table depends only on eps, so for a fixed eps and a sweep
// over minpts, T is computed once and consumed concurrently by up to 16
// threads, one DBSCAN run per minpts value. (This is the opposite knob to
// OPTICS, which fixes minpts and sweeps eps.)
#pragma once

#include <span>
#include <vector>

#include "core/batch_planner.hpp"
#include "core/pipeline.hpp"
#include "cudasim/device.hpp"
#include "dbscan/cluster_result.hpp"

namespace hdbscan {

struct ReuseReport {
  float eps = 0.0f;
  double table_seconds = 0.0;   ///< index build + T construction (once)
  /// Index build + modeled T construction (reference-hardware GPU model).
  double modeled_table_seconds = 0.0;
  double dbscan_wall_seconds = 0.0;  ///< concurrent clustering phase
  double total_seconds = 0.0;
  /// Streaming mode: all minpts consumers ingested the build's batches
  /// concurrently; phase 2 only ran their resolution tails.
  bool streamed = false;
  /// Mean per-consumer consume / (consume + finalize) in streaming mode.
  double overlap_fraction = 0.0;
  /// Measured per-variant sequential durations (indexed like the minpts
  /// input); feed these to makespan_seconds() to model k-core scaling.
  std::vector<double> variant_seconds;
  std::vector<std::int32_t> variant_clusters;
  /// Per-minpts outcome: a failing variant (e.g. an invalid minpts among
  /// valid ones) is recorded here and no longer aborts its siblings; the
  /// first error is rethrown only when every variant failed.
  std::vector<VariantOutcome> outcomes;
};

/// Builds T once for `eps`, then clusters every minpts value using
/// `num_threads` concurrent workers. Labels (input order) are written to
/// `results` when non-null. ClusterMode::kStreaming fans every CSR batch
/// out to one union-find consumer per minpts value during the single
/// build (T itself is never materialized); phase 2 then only runs each
/// consumer's resolution tail. Falls back to the batch path under
/// TableBuildMode::kPairSort.
ReuseReport cluster_minpts_sweep(cudasim::Device& device,
                                 std::span<const Point2> points, float eps,
                                 std::span<const int> minpts_values,
                                 unsigned num_threads,
                                 const BatchPolicy& policy = {},
                                 std::vector<ClusterResult>* results = nullptr,
                                 ClusterMode mode = ClusterMode::kBatchTable);

}  // namespace hdbscan
