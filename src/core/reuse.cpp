#include "core/reuse.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/timer.hpp"
#include "core/hybrid_dbscan.hpp"
#include "core/neighbor_table_builder.hpp"
#include "dbscan/dbscan.hpp"
#include "obs/trace.hpp"

namespace hdbscan {

ReuseReport cluster_minpts_sweep(cudasim::Device& device,
                                 std::span<const Point2> points, float eps,
                                 std::span<const int> minpts_values,
                                 unsigned num_threads,
                                 const BatchPolicy& policy,
                                 std::vector<ClusterResult>* results,
                                 ClusterMode mode) {
  ReuseReport report;
  report.eps = eps;
  report.variant_seconds.assign(minpts_values.size(), 0.0);
  report.variant_clusters.assign(minpts_values.size(), 0);
  report.outcomes.assign(minpts_values.size(), {});
  if (results != nullptr) results->assign(minpts_values.size(), {});

  WallTimer total_timer;

  const bool streaming = mode == ClusterMode::kStreaming &&
                         policy.build_mode == TableBuildMode::kCsrTwoPass;

  // Phase 1: one neighbor table build for this eps. In streaming mode a
  // FanoutSink replicates each CSR batch to one union-find consumer per
  // minpts value — k clusterings ride a single build, and T itself is
  // never materialized (the reuse scheme's memory win compounds: one
  // build, zero tables).
  TRACE_SPAN("reuse", "minpts_sweep eps=%.3f k=%zu",
             static_cast<double>(eps), minpts_values.size());
  WallTimer table_timer;
  WallTimer index_timer;
  const GridIndex index = build_grid_index(points, eps);
  const double index_s = index_timer.seconds();
  NeighborTableBuilder builder(device, policy);
  BuildReport build_report;

  std::vector<std::unique_ptr<StreamingDbscan>> consumers;
  NeighborTable table(0);
  if (streaming) {
    consumers.resize(minpts_values.size());
    FanoutSink fanout;
    for (std::size_t i = 0; i < minpts_values.size(); ++i) {
      try {
        consumers[i] =
            std::make_unique<StreamingDbscan>(index.size(), minpts_values[i]);
        fanout.add(consumers[i].get());
      } catch (const std::exception& e) {
        // An invalid minpts among valid ones is excluded from the fanout
        // and recorded; its siblings still stream.
        report.outcomes[i].ok = false;
        report.outcomes[i].error = e.what();
      }
    }
    builder.build(index, eps, &build_report,
                  fanout.empty() ? nullptr : &fanout,
                  /*materialize_table=*/fanout.empty());
    report.streamed = true;
  } else {
    table = builder.build(index, eps, &build_report);
  }
  report.table_seconds = table_timer.seconds();
  report.modeled_table_seconds =
      index_s + build_report.modeled_table_seconds;

  // Phase 2: concurrent minpts sweep — over the shared (read-only) table
  // in batch mode, or each consumer's resolution tail in streaming mode.
  WallTimer dbscan_timer;
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t failed = 0;  // guarded by error_mutex
  for (const VariantOutcome& o : report.outcomes) {
    if (!o.ok) {
      ++failed;  // minpts rejected before the fanout
      if (!first_error) {
        first_error =
            std::make_exception_ptr(std::invalid_argument(o.error));
      }
    }
  }

  // One failing minpts value (say, an invalid 0 in the middle of a sweep)
  // is recorded in its outcome slot and the worker moves on; the shared
  // table is read-only so the siblings are unaffected.
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= minpts_values.size()) return;
      if (!report.outcomes[i].ok) continue;  // rejected pre-fanout
      try {
        WallTimer t;
        ClusterResult indexed =
            streaming ? consumers[i]->finalize()
                      : dbscan_neighbor_table(table, minpts_values[i]);
        report.variant_seconds[i] = t.seconds();
        report.variant_clusters[i] = indexed.num_clusters;
        if (results != nullptr) {
          (*results)[i] = unmap_labels(indexed, index.original_ids);
        }
      } catch (const std::exception& e) {
        std::lock_guard lock(error_mutex);
        report.outcomes[i].ok = false;
        report.outcomes[i].error = e.what();
        ++failed;
        if (!first_error) first_error = std::current_exception();
      } catch (...) {
        std::lock_guard lock(error_mutex);
        report.outcomes[i].ok = false;
        report.outcomes[i].error = "unknown error";
        ++failed;
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  if (num_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }
  if (!minpts_values.empty() && failed == minpts_values.size()) {
    std::rethrow_exception(first_error);
  }

  if (streaming) {
    double sum = 0.0;
    std::size_t counted = 0;
    for (const auto& c : consumers) {
      if (c) {
        sum += c->stats().overlap_fraction();
        ++counted;
      }
    }
    if (counted > 0) report.overlap_fraction = sum / counted;
  }

  report.dbscan_wall_seconds = dbscan_timer.seconds();
  report.total_seconds = total_timer.seconds();
  return report;
}

}  // namespace hdbscan
