// Result-set size estimation (paper §VI).
//
// A lightweight kernel counts the neighbors of a uniformly distributed
// sample of f * |D| points (f = 0.01). Because D is spatially sorted at
// index-build time, striding through D samples the space uniformly. The
// kernel returns only the count e_b — no result set, so it runs in
// negligible time — and the total is extrapolated as a_b = e_b / f.
#pragma once

#include "cudasim/device.hpp"
#include "cudasim/metrics.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {

struct ResultSizeEstimate {
  std::uint64_t sampled_pairs = 0;    ///< e_b, pairs found in the sample
  std::uint64_t estimated_total = 0;  ///< a_b = e_b / f
  std::uint32_t sample_stride = 1;
  /// True when the sample was a full census (stride 1): a_b is exact, so
  /// downstream consumers (e.g. the CSR builder's buffer sizing) know the
  /// alpha over-provision is pure headroom rather than variance cover.
  bool exact = false;
  cudasim::KernelStats kernel_stats;
};

/// Runs the count kernel over every `stride`-th point, stride = round(1/f).
/// `view` may point at host vectors or device buffers.
ResultSizeEstimate estimate_result_size(cudasim::Device& device,
                                        const GridView& view, float eps,
                                        double sample_fraction = 0.01,
                                        unsigned block_size = 256);

}  // namespace hdbscan
