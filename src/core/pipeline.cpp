#include "core/pipeline.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/timer.hpp"
#include "core/cell_graph.hpp"
#include "core/fused_clustering.hpp"
#include "core/hybrid_dbscan.hpp"
#include "core/neighbor_table_builder.hpp"
#include "dbscan/dbscan.hpp"
#include "obs/trace.hpp"

namespace hdbscan {

namespace {

/// Work item flowing from the table producer to the DBSCAN consumers:
/// either a materialized table (batch mode) or an already-streamed
/// clusterer awaiting its resolution tail (streaming mode).
struct TableItem {
  std::size_t variant_index = 0;
  NeighborTable table;
  std::vector<PointId> original_ids;
  /// Streaming mode: the consumer that ingested this variant's batches
  /// during its build; the pipeline consumer only runs finalize().
  std::unique_ptr<StreamingDbscan> streaming;
  /// Host bytes this item holds in flight (table payload, or the
  /// streaming consumer's resident footprint).
  std::uint64_t payload_bytes = 0;
};

/// Minimal bounded MPMC queue (single producer here). Bounds the number
/// of in-flight items and, when `bytes_budget` is non-zero, their summed
/// payload bytes — with a one-item minimum: an empty queue admits any
/// item, so a single over-budget table stalls the producer only until the
/// consumers catch up, never forever.
class BoundedQueue {
 public:
  BoundedQueue(std::size_t capacity, std::uint64_t bytes_budget)
      : capacity_(capacity), bytes_budget_(bytes_budget) {}

  void push(TableItem item) {
    const std::uint64_t bytes = item.payload_bytes;
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] {
      if (queue_.size() >= capacity_) return false;
      if (bytes_budget_ == 0 || queue_.empty()) return true;
      return bytes_in_flight_ + bytes <= bytes_budget_;
    });
    bytes_in_flight_ += bytes;
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
  }

  /// Returns nullopt once closed and drained.
  std::optional<TableItem> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    TableItem item = std::move(queue_.front());
    queue_.pop_front();
    bytes_in_flight_ -= item.payload_bytes;
    not_full_.notify_all();
    return item;
  }

  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
  }

 private:
  std::size_t capacity_;
  std::uint64_t bytes_budget_;
  std::uint64_t bytes_in_flight_ = 0;
  std::deque<TableItem> queue_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  bool closed_ = false;
};

[[nodiscard]] std::uint64_t table_payload_bytes(const NeighborTable& t) {
  return t.total_pairs() * sizeof(PointId) +
         t.num_points() * 2 * sizeof(std::uint32_t);
}

/// what() of the in-flight exception; call only from a catch block.
std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

/// Cell-graph variants never enter the producer/consumer machinery: each
/// variant is one fused host pass (bin, degree, union, label), so there is
/// no table to hand off and nothing for a consumer to overlap with. Both
/// run_multi_clustering overloads branch here when the policy selects
/// ClusterQuality::kCellGraph.
PipelineReport run_cell_graph_variants(const cudasim::DeviceConfig& config,
                                       std::span<const Point2> points,
                                       std::span<const Variant> variants,
                                       const PipelineOptions& options) {
  if (options.cluster_mode == ClusterMode::kFused) {
    throw std::invalid_argument(
        "run_multi_clustering: ClusterQuality::kCellGraph is incompatible "
        "with ClusterMode::kFused");
  }
  PipelineReport report;
  report.variants.resize(variants.size());
  if (options.keep_results) report.results.resize(variants.size());
  WallTimer total_timer;
  std::exception_ptr first_error;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    report.variants[i].variant = variants[i];
    try {
      TRACE_SPAN("pipeline", "cellgraph v%zu eps=%.3f", i,
                 static_cast<double>(variants[i].eps));
      WallTimer t;
      CellGraphReport cg;
      ClusterResult r = cell_graph_dbscan(points, variants[i].eps,
                                          variants[i].minpts, config, &cg);
      report.variants[i].dbscan_seconds = t.seconds();
      report.variants[i].modeled_table_seconds = cg.modeled_seconds;
      report.variants[i].num_clusters = r.num_clusters;
      report.variants[i].noise_count = r.noise_count();
      if (options.keep_results) report.results[i] = std::move(r);
    } catch (...) {
      report.variants[i].outcome.ok = false;
      report.variants[i].outcome.error = describe_current_exception();
      report.variants[i].outcome.failure = classify_current_exception();
      ++failed;
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (!variants.empty() && failed == variants.size()) {
    std::rethrow_exception(first_error);
  }
  report.total_seconds = total_timer.seconds();
  return report;
}

}  // namespace

PipelineReport run_multi_clustering(cudasim::Device& device,
                                    std::span<const Point2> points,
                                    std::span<const Variant> variants,
                                    const PipelineOptions& options) {
  if (options.policy.quality.mode == ClusterQuality::kCellGraph) {
    return run_cell_graph_variants(device.config(), points, variants,
                                   options);
  }
  // Subsampled variants threshold their degrees at minpts * s (the
  // kernels keep that expected fraction of each neighborhood).
  const auto run_minpts = [&](std::size_t i) {
    return options.policy.quality.scaled_minpts(variants[i].minpts);
  };
  PipelineReport report;
  report.variants.resize(variants.size());
  if (options.keep_results) report.results.resize(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    report.variants[i].variant = variants[i];
  }
  WallTimer total_timer;

  if (!options.pipelined) {
    std::exception_ptr first_error;
    std::size_t failed = 0;
    for (std::size_t i = 0; i < variants.size(); ++i) {
      try {
        TRACE_SPAN("pipeline", "variant v%zu eps=%.3f", i,
                   static_cast<double>(variants[i].eps));
        if (device.lost()) {
          // The device died on an earlier variant: finish the sweep
          // host-side rather than failing every remaining variant.
          WallTimer t;
          GridIndex index = build_grid_index(points, variants[i].eps);
          NeighborTable table = build_neighbor_table_host_parallel(
              index, variants[i].eps, /*num_threads=*/0,
              options.policy.quality);
          const double table_s = t.seconds();
          WallTimer dbscan_timer;
          ClusterResult indexed = dbscan_neighbor_table(table, run_minpts(i));
          ClusterResult r = unmap_labels(indexed, index.original_ids);
          report.variants[i].table_seconds = table_s;
          report.variants[i].modeled_table_seconds = table_s;
          report.variants[i].dbscan_seconds = dbscan_timer.seconds();
          report.variants[i].num_clusters = r.num_clusters;
          report.variants[i].noise_count = r.noise_count();
          report.variants[i].outcome.host_fallback = true;
          if (options.keep_results) report.results[i] = std::move(r);
        } else {
          HybridTimings t;
          ClusterResult r =
              hybrid_dbscan(device, points, variants[i].eps,
                            variants[i].minpts, &t, options.policy,
                            options.cluster_mode);
          report.variants[i].table_seconds =
              t.index_seconds + t.gpu_table_seconds;
          report.variants[i].modeled_table_seconds =
              t.index_seconds + t.modeled_gpu_table_seconds;
          report.variants[i].dbscan_seconds = t.dbscan_seconds;
          report.variants[i].num_clusters = r.num_clusters;
          report.variants[i].noise_count = r.noise_count();
          report.variants[i].streamed = t.streamed;
          report.variants[i].overlap_fraction = t.overlap_fraction;
          if (options.keep_results) report.results[i] = std::move(r);
        }
      } catch (...) {
        report.variants[i].outcome.ok = false;
        report.variants[i].outcome.error = describe_current_exception();
        report.variants[i].outcome.failure = classify_current_exception();
        ++failed;
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (!variants.empty() && failed == variants.size()) {
      std::rethrow_exception(first_error);
    }
    report.total_seconds = total_timer.seconds();
    return report;
  }

  BoundedQueue queue(std::max(1u, options.queue_capacity),
                     options.queue_bytes_budget);
  std::mutex report_mutex;
  std::exception_ptr first_error;
  std::size_t failed_variants = 0;  // guarded by report_mutex

  auto record_failure = [&](std::size_t i) {
    std::lock_guard lock(report_mutex);
    report.variants[i].outcome.ok = false;
    report.variants[i].outcome.error = describe_current_exception();
    report.variants[i].outcome.failure = classify_current_exception();
    ++failed_variants;
    if (!first_error) first_error = std::current_exception();
  };

  // Producer: builds the grid index and T for v_{i+1} while the consumers
  // are still clustering v_i. A variant whose build fails is recorded and
  // skipped — its siblings keep flowing. Once the device is lost the
  // remaining variants' tables are built host-side instead.
  // Streaming requires the CSR pipeline's delivery surface; a pair-sort
  // policy silently falls back to batch-table consumption.
  const bool streaming =
      options.cluster_mode == ClusterMode::kStreaming &&
      options.policy.build_mode == TableBuildMode::kCsrTwoPass;
  const bool fused = options.cluster_mode == ClusterMode::kFused;

  std::thread producer([&] {
    obs::set_thread_track(obs::kHostPid, "producer");
    NeighborTableBuilder builder(device, options.policy);
    for (std::size_t i = 0; i < variants.size(); ++i) {
      try {
        TRACE_SPAN("pipeline", "produce v%zu eps=%.3f", i,
                   static_cast<double>(variants[i].eps));
        WallTimer t;
        WallTimer index_timer;
        GridIndex index = build_grid_index(points, variants[i].eps);
        const double index_s = index_timer.seconds();
        TableItem item;
        item.variant_index = i;
        const bool host = device.lost();
        double modeled_s = 0.0;
        if (host) {
          item.table = build_neighbor_table_host_parallel(
              index, variants[i].eps, /*num_threads=*/0,
              options.policy.quality);
          item.payload_bytes = table_payload_bytes(item.table);
        } else if (fused) {
          // Fused variants never touch the table builder: the traversal
          // kernel ingests straight into the clusterer, and the pipeline
          // consumers — like streaming mode — only run the tail.
          auto clusterer = std::make_unique<StreamingDbscan>(
              index.size(), run_minpts(i));
          clusterer->set_cancel_token(options.policy.cancel);
          const BuildReport build_report = fused_cluster(
              device, index, variants[i].eps, *clusterer, options.policy);
          modeled_s = index_s + build_report.modeled_table_seconds;
          item.payload_bytes = clusterer->memory_bytes();
          item.streaming = std::move(clusterer);
        } else if (streaming) {
          // This variant's core-core unions run on the builder's stream
          // threads *during* this build — intra-variant overlap on top of
          // the inter-variant producer/consumer overlap. The consumers
          // only run the resolution tail.
          auto clusterer = std::make_unique<StreamingDbscan>(
              index.size(), run_minpts(i));
          clusterer->set_cancel_token(options.policy.cancel);
          BuildReport build_report;
          builder.build(index, variants[i].eps, &build_report,
                        clusterer.get(), /*materialize_table=*/false);
          modeled_s = index_s + build_report.modeled_table_seconds;
          item.payload_bytes = clusterer->memory_bytes();
          item.streaming = std::move(clusterer);
        } else {
          BuildReport build_report;
          item.table = builder.build(index, variants[i].eps, &build_report);
          modeled_s = index_s + build_report.modeled_table_seconds;
          item.payload_bytes = table_payload_bytes(item.table);
        }
        item.original_ids = std::move(index.original_ids);
        {
          std::lock_guard lock(report_mutex);
          report.variants[i].table_seconds = t.seconds();
          report.variants[i].modeled_table_seconds =
              host ? t.seconds() : modeled_s;
          report.variants[i].outcome.host_fallback = host;
        }
        queue.push(std::move(item));
      } catch (...) {
        record_failure(i);
      }
    }
    queue.close();
  });

  std::vector<std::thread> consumers;
  consumers.reserve(std::max(1u, options.num_consumers));
  for (unsigned c = 0; c < std::max(1u, options.num_consumers); ++c) {
    consumers.emplace_back([&] {
      obs::set_thread_track(obs::kHostPid, "consumer");
      while (auto item = queue.pop()) {
        const std::size_t i = item->variant_index;
        try {
          TRACE_SPAN("pipeline", "consume v%zu minpts=%u", i,
                     variants[i].minpts);
          WallTimer t;
          ClusterResult indexed =
              item->streaming
                  ? item->streaming->finalize()
                  : dbscan_neighbor_table(item->table, run_minpts(i));
          const double dbscan_s = t.seconds();
          ClusterResult result = options.keep_results
                                     ? unmap_labels(indexed, item->original_ids)
                                     : std::move(indexed);
          std::lock_guard lock(report_mutex);
          report.variants[i].dbscan_seconds = dbscan_s;
          report.variants[i].num_clusters = result.num_clusters;
          report.variants[i].noise_count = result.noise_count();
          if (item->streaming) {
            report.variants[i].streamed = true;
            report.variants[i].overlap_fraction =
                item->streaming->stats().overlap_fraction();
          }
          if (options.keep_results) report.results[i] = std::move(result);
        } catch (...) {
          record_failure(i);
        }
      }
    });
  }

  producer.join();
  for (auto& c : consumers) c.join();
  if (!variants.empty() && failed_variants == variants.size()) {
    std::rethrow_exception(first_error);
  }
  report.total_seconds = total_timer.seconds();
  return report;
}

PipelineReport run_multi_clustering(
    const std::vector<cudasim::Device*>& devices,
    std::span<const Point2> points, std::span<const Variant> variants,
    const PipelineOptions& options) {
  std::vector<cudasim::Device*> fleet;
  for (cudasim::Device* d : devices) {
    if (d != nullptr) fleet.push_back(d);
  }
  if (fleet.empty()) {
    throw std::invalid_argument("run_multi_clustering: no devices");
  }
  if (options.policy.quality.mode == ClusterQuality::kCellGraph) {
    return run_cell_graph_variants(fleet.front()->config(), points, variants,
                                   options);
  }
  if (fleet.size() == 1 && options.num_shards <= 1) {
    return run_multi_clustering(*fleet.front(), points, variants, options);
  }
  const auto run_minpts = [&options, variants](std::size_t i) {
    return options.policy.quality.scaled_minpts(variants[i].minpts);
  };

  PipelineReport report;
  report.variants.resize(variants.size());
  if (options.keep_results) report.results.resize(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    report.variants[i].variant = variants[i];
  }
  WallTimer total_timer;

  const bool streaming =
      options.cluster_mode == ClusterMode::kStreaming &&
      options.policy.build_mode == TableBuildMode::kCsrTwoPass;
  const bool fused = options.cluster_mode == ClusterMode::kFused;
  const auto any_live = [&fleet] {
    for (const cudasim::Device* d : fleet) {
      if (!d->lost()) return true;
    }
    return false;
  };
  ShardedBuildOptions sopts;
  sopts.num_shards = options.num_shards;
  sopts.policy = options.policy;

  // Builds one variant's table (or streams its unions) across the fleet
  // and packages it for the consumers — the fleet analogue of the
  // single-device producer body. Returns the item plus its timing split.
  auto produce_item = [&](std::size_t i, double& wall_s, double& modeled_s,
                          bool& host) -> TableItem {
    WallTimer t;
    WallTimer index_timer;
    GridIndex index = build_grid_index(points, variants[i].eps);
    const double index_s = index_timer.seconds();
    TableItem item;
    item.variant_index = i;
    host = !any_live();
    modeled_s = 0.0;
    if (host) {
      item.table = build_neighbor_table_host_parallel(
          index, variants[i].eps, /*num_threads=*/0, options.policy.quality);
      item.payload_bytes = table_payload_bytes(item.table);
    } else if (fused) {
      // Fused fleet variants replicate the whole index (no slab sharding;
      // the kernels union global ids) and interleave the strided batches
      // across every live device's streams.
      std::vector<cudasim::Device*> live;
      for (cudasim::Device* d : fleet) {
        if (!d->lost()) live.push_back(d);
      }
      auto clusterer = std::make_unique<StreamingDbscan>(index.size(),
                                                         run_minpts(i));
      clusterer->set_cancel_token(options.policy.cancel);
      const BuildReport build_report = fused_cluster(
          live, index, variants[i].eps, *clusterer, options.policy);
      modeled_s = index_s + build_report.modeled_table_seconds;
      item.payload_bytes = clusterer->memory_bytes();
      item.streaming = std::move(clusterer);
    } else if (streaming) {
      auto clusterer = std::make_unique<StreamingDbscan>(index.size(),
                                                         run_minpts(i));
      clusterer->set_cancel_token(options.policy.cancel);
      BuildReport build_report;
      build_sharded_neighbor_table(fleet, index, variants[i].eps, sopts,
                                   &build_report, clusterer.get(),
                                   /*materialize_table=*/false);
      modeled_s = index_s + build_report.modeled_table_seconds;
      item.payload_bytes = clusterer->memory_bytes();
      item.streaming = std::move(clusterer);
    } else {
      BuildReport build_report;
      item.table = build_sharded_neighbor_table(fleet, index, variants[i].eps,
                                                sopts, &build_report);
      modeled_s = index_s + build_report.modeled_table_seconds;
      item.payload_bytes = table_payload_bytes(item.table);
    }
    item.original_ids = std::move(index.original_ids);
    wall_s = t.seconds();
    if (host) modeled_s = wall_s;
    return item;
  };

  if (!options.pipelined) {
    std::exception_ptr first_error;
    std::size_t failed = 0;
    for (std::size_t i = 0; i < variants.size(); ++i) {
      try {
        TRACE_SPAN("pipeline", "variant v%zu eps=%.3f", i,
                   static_cast<double>(variants[i].eps));
        double wall_s = 0.0;
        double modeled_s = 0.0;
        bool host = false;
        TableItem item = produce_item(i, wall_s, modeled_s, host);
        WallTimer dbscan_timer;
        ClusterResult indexed =
            item.streaming
                ? item.streaming->finalize()
                : dbscan_neighbor_table(item.table, run_minpts(i));
        ClusterResult result = unmap_labels(indexed, item.original_ids);
        report.variants[i].table_seconds = wall_s;
        report.variants[i].modeled_table_seconds = modeled_s;
        report.variants[i].dbscan_seconds = dbscan_timer.seconds();
        report.variants[i].num_clusters = result.num_clusters;
        report.variants[i].noise_count = result.noise_count();
        report.variants[i].outcome.host_fallback = host;
        if (item.streaming) {
          report.variants[i].streamed = true;
          report.variants[i].overlap_fraction =
              item.streaming->stats().overlap_fraction();
        }
        if (options.keep_results) report.results[i] = std::move(result);
      } catch (...) {
        report.variants[i].outcome.ok = false;
        report.variants[i].outcome.error = describe_current_exception();
        report.variants[i].outcome.failure = classify_current_exception();
        ++failed;
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (!variants.empty() && failed == variants.size()) {
      std::rethrow_exception(first_error);
    }
    report.total_seconds = total_timer.seconds();
    return report;
  }

  BoundedQueue queue(std::max(1u, options.queue_capacity),
                     options.queue_bytes_budget);
  std::mutex report_mutex;
  std::exception_ptr first_error;
  std::size_t failed_variants = 0;  // guarded by report_mutex

  auto record_failure = [&](std::size_t i) {
    std::lock_guard lock(report_mutex);
    report.variants[i].outcome.ok = false;
    report.variants[i].outcome.error = describe_current_exception();
    report.variants[i].outcome.failure = classify_current_exception();
    ++failed_variants;
    if (!first_error) first_error = std::current_exception();
  };

  std::thread producer([&] {
    obs::set_thread_track(obs::kHostPid, "producer");
    for (std::size_t i = 0; i < variants.size(); ++i) {
      try {
        TRACE_SPAN("pipeline", "produce v%zu eps=%.3f", i,
                   static_cast<double>(variants[i].eps));
        double wall_s = 0.0;
        double modeled_s = 0.0;
        bool host = false;
        TableItem item = produce_item(i, wall_s, modeled_s, host);
        {
          std::lock_guard lock(report_mutex);
          report.variants[i].table_seconds = wall_s;
          report.variants[i].modeled_table_seconds = modeled_s;
          report.variants[i].outcome.host_fallback = host;
        }
        queue.push(std::move(item));
      } catch (...) {
        record_failure(i);
      }
    }
    queue.close();
  });

  std::vector<std::thread> consumers;
  consumers.reserve(std::max(1u, options.num_consumers));
  for (unsigned c = 0; c < std::max(1u, options.num_consumers); ++c) {
    consumers.emplace_back([&] {
      obs::set_thread_track(obs::kHostPid, "consumer");
      while (auto item = queue.pop()) {
        const std::size_t i = item->variant_index;
        try {
          TRACE_SPAN("pipeline", "consume v%zu minpts=%u", i,
                     variants[i].minpts);
          WallTimer t;
          ClusterResult indexed =
              item->streaming
                  ? item->streaming->finalize()
                  : dbscan_neighbor_table(item->table, run_minpts(i));
          const double dbscan_s = t.seconds();
          ClusterResult result = options.keep_results
                                     ? unmap_labels(indexed, item->original_ids)
                                     : std::move(indexed);
          std::lock_guard lock(report_mutex);
          report.variants[i].dbscan_seconds = dbscan_s;
          report.variants[i].num_clusters = result.num_clusters;
          report.variants[i].noise_count = result.noise_count();
          if (item->streaming) {
            report.variants[i].streamed = true;
            report.variants[i].overlap_fraction =
                item->streaming->stats().overlap_fraction();
          }
          if (options.keep_results) report.results[i] = std::move(result);
        } catch (...) {
          record_failure(i);
        }
      }
    });
  }

  producer.join();
  for (auto& c : consumers) c.join();
  if (!variants.empty() && failed_variants == variants.size()) {
    std::rethrow_exception(first_error);
  }
  report.total_seconds = total_timer.seconds();
  return report;
}

}  // namespace hdbscan
