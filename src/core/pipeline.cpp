#include "core/pipeline.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "common/timer.hpp"
#include "core/hybrid_dbscan.hpp"
#include "core/neighbor_table_builder.hpp"
#include "dbscan/dbscan.hpp"

namespace hdbscan {

namespace {

/// Work item flowing from the table producer to the DBSCAN consumers.
struct TableItem {
  std::size_t variant_index = 0;
  NeighborTable table;
  std::vector<PointId> original_ids;
};

/// Minimal bounded MPMC queue (single producer here).
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(TableItem item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return queue_.size() < capacity_; });
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
  }

  /// Returns nullopt once closed and drained.
  std::optional<TableItem> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    TableItem item = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
  }

 private:
  std::size_t capacity_;
  std::deque<TableItem> queue_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  bool closed_ = false;
};

}  // namespace

PipelineReport run_multi_clustering(cudasim::Device& device,
                                    std::span<const Point2> points,
                                    std::span<const Variant> variants,
                                    const PipelineOptions& options) {
  PipelineReport report;
  report.variants.resize(variants.size());
  if (options.keep_results) report.results.resize(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    report.variants[i].variant = variants[i];
  }
  WallTimer total_timer;

  if (!options.pipelined) {
    for (std::size_t i = 0; i < variants.size(); ++i) {
      HybridTimings t;
      ClusterResult r = hybrid_dbscan(device, points, variants[i].eps,
                                      variants[i].minpts, &t, options.policy);
      report.variants[i].table_seconds = t.index_seconds + t.gpu_table_seconds;
      report.variants[i].modeled_table_seconds =
          t.index_seconds + t.modeled_gpu_table_seconds;
      report.variants[i].dbscan_seconds = t.dbscan_seconds;
      report.variants[i].num_clusters = r.num_clusters;
      report.variants[i].noise_count = r.noise_count();
      if (options.keep_results) report.results[i] = std::move(r);
    }
    report.total_seconds = total_timer.seconds();
    return report;
  }

  BoundedQueue queue(std::max(1u, options.queue_capacity));
  std::mutex report_mutex;
  std::exception_ptr first_error;

  // Producer: builds the grid index and T for v_{i+1} while the consumers
  // are still clustering v_i.
  std::thread producer([&] {
    try {
      NeighborTableBuilder builder(device, options.policy);
      for (std::size_t i = 0; i < variants.size(); ++i) {
        WallTimer t;
        WallTimer index_timer;
        GridIndex index = build_grid_index(points, variants[i].eps);
        const double index_s = index_timer.seconds();
        BuildReport build_report;
        NeighborTable table =
            builder.build(index, variants[i].eps, &build_report);
        {
          std::lock_guard lock(report_mutex);
          report.variants[i].table_seconds = t.seconds();
          report.variants[i].modeled_table_seconds =
              index_s + build_report.modeled_table_seconds;
        }
        queue.push(TableItem{i, std::move(table),
                             std::move(index.original_ids)});
      }
    } catch (...) {
      std::lock_guard lock(report_mutex);
      if (!first_error) first_error = std::current_exception();
    }
    queue.close();
  });

  std::vector<std::thread> consumers;
  consumers.reserve(std::max(1u, options.num_consumers));
  for (unsigned c = 0; c < std::max(1u, options.num_consumers); ++c) {
    consumers.emplace_back([&] {
      try {
        while (auto item = queue.pop()) {
          WallTimer t;
          const std::size_t i = item->variant_index;
          ClusterResult indexed =
              dbscan_neighbor_table(item->table, variants[i].minpts);
          const double dbscan_s = t.seconds();
          ClusterResult result = options.keep_results
                                     ? unmap_labels(indexed, item->original_ids)
                                     : std::move(indexed);
          std::lock_guard lock(report_mutex);
          report.variants[i].dbscan_seconds = dbscan_s;
          report.variants[i].num_clusters = result.num_clusters;
          report.variants[i].noise_count = result.noise_count();
          if (options.keep_results) report.results[i] = std::move(result);
        }
      } catch (...) {
        std::lock_guard lock(report_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }

  producer.join();
  for (auto& c : consumers) c.join();
  if (first_error) std::rethrow_exception(first_error);
  report.total_seconds = total_timer.seconds();
  return report;
}

}  // namespace hdbscan
