#include "core/cell_graph.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/timer.hpp"
#include "dbscan/union_find.hpp"
#include "obs/trace.hpp"

namespace hdbscan {

namespace {

constexpr std::int32_t kStencilReach = 2;  ///< sqrt(d) cells cover eps
constexpr PointId kNoCore = std::numeric_limits<PointId>::max();

/// Traits unify the 2-D and 3-D passes: coordinate count, per-axis access
/// and the per-distance-test FLOP charge (matching the traversal kernels:
/// 3 per axis for the squared difference plus the compare).
struct Traits2 {
  static constexpr int kDims = 2;
  static constexpr std::uint64_t kFlopsPerTest = 6;
  using Point = Point2;
  static float coord(const Point& p, int axis) noexcept {
    return axis == 0 ? p.x : p.y;
  }
};

struct Traits3 {
  static constexpr int kDims = 3;
  static constexpr std::uint64_t kFlopsPerTest = 9;
  using Point = Point3;
  static float coord(const Point& p, int axis) noexcept {
    return axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
  }
};

/// One occupied cell: its packed coordinates and resident point ids.
/// Cells are sorted by packed key, so every pass below iterates them in a
/// deterministic order regardless of the hash map's bucket layout.
struct Cell {
  std::uint64_t key = 0;
  std::array<std::int32_t, 3> coords{};
  std::vector<PointId> points;
  bool dense = false;
};

/// Packs per-axis cell coordinates (each fits 20 bits after offsetting by
/// the minimum) into one sortable key.
std::uint64_t pack_key(const std::array<std::int32_t, 3>& c) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c[2]))
          << 42) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c[1]) &
                                     0x1fffffu)
          << 21) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c[0]) &
                                     0x1fffffu));
}

/// Squared minimum distance between two cells of side `side` whose
/// coordinates differ by `delta` per axis: axes where the cells are
/// adjacent or equal contribute nothing; a gap of g cells contributes
/// ((g-1) * side)^2... strictly, (|delta|-1) empty cell widths.
double cell_min_dist2(const std::array<std::int32_t, 3>& a,
                      const std::array<std::int32_t, 3>& b, double side,
                      int dims) noexcept {
  double d2 = 0.0;
  for (int axis = 0; axis < dims; ++axis) {
    const auto gap = std::abs(a[axis] - b[axis]);
    if (gap > 1) {
      const double g = (gap - 1) * side;
      d2 += g * g;
    }
  }
  return d2;
}

template <typename Traits>
ClusterResult cell_graph_impl(std::span<const typename Traits::Point> points,
                              float eps, int minpts,
                              const cudasim::DeviceConfig& config,
                              CellGraphReport* report) {
  using Point = typename Traits::Point;
  if (eps <= 0.0f) {
    throw std::invalid_argument("cell_graph_dbscan: eps must be positive");
  }
  if (minpts < 1) {
    throw std::invalid_argument("cell_graph_dbscan: minpts must be >= 1");
  }
  WallTimer total_timer;
  TRACE_SPAN("cellgraph", "cell_graph n=%zu", points.size());
  CellGraphReport local;
  const auto n = points.size();
  ClusterResult result;
  result.labels.assign(n, kNoise);
  if (n == 0) {
    result.finalize_noise_count();
    if (report != nullptr) *report = local;
    return result;
  }

  // --- bin to side eps/sqrt(d): the diagonal of a cell is exactly eps,
  // so any two residents of one cell are eps-neighbors ---
  const double side =
      static_cast<double>(eps) / std::sqrt(static_cast<double>(Traits::kDims));
  std::array<float, 3> mins{};
  mins.fill(std::numeric_limits<float>::max());
  for (const Point& p : points) {
    for (int axis = 0; axis < Traits::kDims; ++axis) {
      mins[axis] = std::min(mins[axis], Traits::coord(p, axis));
    }
  }
  std::unordered_map<std::uint64_t, std::uint32_t> cell_of_key;
  std::vector<Cell> cells;
  std::vector<std::uint32_t> cell_of_point(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::array<std::int32_t, 3> c{};
    for (int axis = 0; axis < Traits::kDims; ++axis) {
      c[axis] = static_cast<std::int32_t>(
          (Traits::coord(points[i], axis) - mins[axis]) / side);
    }
    const std::uint64_t key = pack_key(c);
    auto [it, fresh] =
        cell_of_key.try_emplace(key, static_cast<std::uint32_t>(cells.size()));
    if (fresh) {
      cells.push_back(Cell{key, c, {}, false});
    }
    cells[it->second].points.push_back(static_cast<PointId>(i));
    cell_of_point[i] = it->second;
  }
  // Deterministic cell order; remap the per-point cell ids to match.
  std::vector<std::uint32_t> order(cells.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return cells[a].key < cells[b].key;
  });
  std::vector<Cell> sorted;
  sorted.reserve(cells.size());
  std::vector<std::uint32_t> new_id(cells.size());
  for (const std::uint32_t old : order) {
    new_id[old] = static_cast<std::uint32_t>(sorted.size());
    sorted.push_back(std::move(cells[old]));
  }
  cells = std::move(sorted);
  for (auto& id : cell_of_point) id = new_id[id];
  for (auto& [key, id] : cell_of_key) id = new_id[id];
  local.num_cells = cells.size();

  // --- dense cells: everyone is core, one union chain per cell ---
  UnionFind uf(n);
  std::vector<char> core(n, 0);
  for (Cell& cell : cells) {
    if (cell.points.size() < static_cast<std::size_t>(minpts)) continue;
    cell.dense = true;
    ++local.dense_cells;
    local.dense_points += cell.points.size();
    const PointId head = cell.points.front();
    core[head] = 1;
    for (std::size_t k = 1; k < cell.points.size(); ++k) {
      core[cell.points[k]] = 1;
      local.unions += uf.unite(head, cell.points[k]) ? 1 : 0;
    }
  }

  // Stencil walk shared by every pass below: visits the occupied cells
  // within kStencilReach of `cell` (min-distance pruned), self excluded
  // when `skip_self`.
  const double eps2 = static_cast<double>(eps) * eps;
  auto for_each_stencil_cell = [&](const Cell& cell, bool skip_self,
                                   auto&& fn) {
    std::array<std::int32_t, 3> c{};
    const std::int32_t z_lo =
        Traits::kDims == 3 ? cell.coords[2] - kStencilReach : 0;
    const std::int32_t z_hi =
        Traits::kDims == 3 ? cell.coords[2] + kStencilReach : 0;
    for (std::int32_t dz = z_lo; dz <= z_hi; ++dz) {
      c[2] = dz;
      for (std::int32_t dy = cell.coords[1] - kStencilReach;
           dy <= cell.coords[1] + kStencilReach; ++dy) {
        c[1] = dy;
        for (std::int32_t dx = cell.coords[0] - kStencilReach;
             dx <= cell.coords[0] + kStencilReach; ++dx) {
          c[0] = dx;
          const std::uint64_t key = pack_key(c);
          if (skip_self && key == cell.key) continue;
          if (cell_min_dist2(cell.coords, c, side, Traits::kDims) > eps2) {
            continue;
          }
          const auto it = cell_of_key.find(key);
          if (it == cell_of_key.end()) continue;
          fn(cells[it->second]);
        }
      }
    }
  };

  // --- sparse degrees: exact eps-ball counts (self included), only for
  // points whose cell did not already certify them ---
  std::vector<std::uint32_t> degree(n, 0);
  for (const Cell& cell : cells) {
    if (cell.dense) continue;
    for_each_stencil_cell(cell, /*skip_self=*/false, [&](const Cell& other) {
      for (const PointId p : cell.points) {
        for (const PointId q : other.points) {
          ++local.distance_tests;
          if (dist2(points[p], points[q]) <= static_cast<float>(eps2)) {
            ++degree[p];
          }
        }
      }
    });
    for (const PointId p : cell.points) {
      if (degree[p] >= static_cast<std::uint32_t>(minpts)) core[p] = 1;
    }
  }

  // --- dense-dense adjacency: any pair within eps connects two all-core
  // cells, so an early-exit bichromatic probe replaces the full pair scan ---
  for (const Cell& cell : cells) {
    if (!cell.dense) continue;
    for_each_stencil_cell(cell, /*skip_self=*/true, [&](const Cell& other) {
      // Each unordered cell pair probes once (smaller key drives).
      if (!other.dense || other.key < cell.key) return;
      if (uf.connected(cell.points.front(), other.points.front())) return;
      for (const PointId p : cell.points) {
        for (const PointId q : other.points) {
          ++local.distance_tests;
          if (dist2(points[p], points[q]) <= static_cast<float>(eps2)) {
            local.unions += uf.unite(p, q) ? 1 : 0;
            return;
          }
        }
      }
    });
  }

  // --- sparse connectivity + border capture: a sparse core unions with
  // every core neighbor (one union per dense cell suffices — the cell is
  // already one component); a sparse non-core remembers its smallest core
  // neighbor id, the deterministic border-assignment rule ---
  std::vector<PointId> border_core(n, kNoCore);
  for (const Cell& cell : cells) {
    if (cell.dense) continue;
    for_each_stencil_cell(cell, /*skip_self=*/false, [&](const Cell& other) {
      for (const PointId p : cell.points) {
        bool linked_dense = false;
        for (const PointId q : other.points) {
          if (p == q || !core[q]) continue;
          ++local.distance_tests;
          if (dist2(points[p], points[q]) > static_cast<float>(eps2)) {
            continue;
          }
          if (core[p]) {
            if (other.dense) {
              if (linked_dense) continue;
              linked_dense = true;
            }
            local.unions += uf.unite(p, q) ? 1 : 0;
          } else if (border_core[p] == kNoCore ||
                     q < border_core[p]) {
            border_core[p] = q;
          }
        }
      }
    });
  }

  // --- labels: cluster ids by first appearance in point order (core roots
  // first, then borders through their recorded core) — deterministic ---
  std::unordered_map<std::uint32_t, std::int32_t> label_of_root;
  std::int32_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!core[i]) continue;
    const std::uint32_t root = uf.find(static_cast<std::uint32_t>(i));
    auto [it, fresh] = label_of_root.try_emplace(root, next);
    if (fresh) ++next;
    result.labels[i] = it->second;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (core[i] || border_core[i] == kNoCore) continue;
    result.labels[i] = result.labels[border_core[i]];
  }
  result.num_clusters = next;
  result.finalize_noise_count();

  // --- modeled cost on the reference device: every distance test reads a
  // candidate id and point (roofline vs the distance FLOPs), every union
  // serializes like a global atomic, one launch for the whole pass ---
  const std::uint64_t bytes =
      local.distance_tests * (sizeof(Point) + sizeof(PointId));
  const double mem_s =
      static_cast<double>(bytes) / (config.mem_bandwidth_gbps * 1e9);
  const double compute_s =
      static_cast<double>(local.distance_tests * Traits::kFlopsPerTest) /
      config.peak_flops();
  local.modeled_seconds = std::max(mem_s, compute_s) +
                          static_cast<double>(local.unions) *
                              config.atomic_ns * 1e-9 +
                          config.kernel_launch_us * 1e-6;
  local.cpu_seconds = total_timer.seconds();
  if (report != nullptr) *report = local;
  return result;
}

}  // namespace

ClusterResult cell_graph_dbscan(std::span<const Point2> points, float eps,
                                int minpts,
                                const cudasim::DeviceConfig& config,
                                CellGraphReport* report) {
  return cell_graph_impl<Traits2>(points, eps, minpts, config, report);
}

ClusterResult cell_graph_dbscan3(std::span<const Point3> points, float eps,
                                 int minpts,
                                 const cudasim::DeviceConfig& config,
                                 CellGraphReport* report) {
  return cell_graph_impl<Traits3>(points, eps, minpts, config, report);
}

}  // namespace hdbscan
