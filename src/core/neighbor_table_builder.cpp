#include "core/neighbor_table_builder.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/timer.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/sort.hpp"
#include "cudasim/stream.hpp"
#include "gpu/device_index.hpp"
#include "gpu/kernels.hpp"
#include "gpu/result_sink.hpp"

namespace hdbscan {

namespace {

constexpr unsigned kMaxSplitDepth = 10;

/// Everything one (device, stream) pair needs to process its batches.
struct StreamContext {
  StreamContext(cudasim::Device& device_in, const GridView& view_in,
                std::uint64_t buffer_pairs, unsigned timeline_id_in)
      : device(device_in),
        view(view_in),
        timeline_id(timeline_id_in),
        stream(device_in),
        sink(device_in, buffer_pairs),
        staging(device_in, buffer_pairs) {}

  cudasim::Device& device;
  GridView view;
  unsigned timeline_id;  ///< index into the per-context model timelines
  cudasim::Stream stream;
  gpu::ResultSetDevice sink;
  cudasim::PinnedBuffer<NeighborPair> staging;
};

struct SharedBuildState {
  std::mutex mutex;  ///< guards table, report counters, first_error
  NeighborTable table;
  std::uint64_t total_pairs = 0;
  std::uint64_t max_batch_pairs = 0;
  std::uint32_t batches_run = 0;
  std::uint32_t overflow_splits = 0;
  double kernel_modeled_seconds = 0.0;
  /// Modeled device-side time per context (kernel + sort + D2H per batch).
  std::vector<double> stream_device_model;
  /// Measured host-side CPU time appending into B, per context. The mutex
  /// serializes the real appends, but on the paper's 16-core host each
  /// batching thread builds its fraction of T concurrently, so the model
  /// charges appends to their context's timeline.
  std::vector<double> stream_append_seconds;
  std::exception_ptr first_error;
};

/// Runs one batch synchronously on the calling (stream) thread; splits
/// recursively on overflow.
void process_batch(StreamContext& sc, float eps, gpu::BatchSpec spec,
                   unsigned block_size, SharedBuildState& state,
                   unsigned depth) {
  if (spec.points_in_batch(sc.view.num_points) == 0) return;

  sc.sink.reset();
  const cudasim::KernelStats stats = gpu::run_calc_global(
      sc.device, sc.view, eps, spec, sc.sink.view(), block_size);
  {
    std::lock_guard lock(state.mutex);
    ++state.batches_run;
    state.kernel_modeled_seconds += stats.modeled_seconds;
    state.stream_device_model[sc.timeline_id] += stats.modeled_seconds;
  }

  if (sc.sink.overflowed()) {
    if (depth >= kMaxSplitDepth) {
      throw std::runtime_error(
          "neighbor table build: batch overflowed even after splitting; "
          "result buffer too small for the data density");
    }
    {
      std::lock_guard lock(state.mutex);
      ++state.overflow_splits;
    }
    // (l, n_b) == (l, 2 n_b) u (l + n_b, 2 n_b): same points, half each.
    process_batch(sc, eps, {spec.batch, spec.num_batches * 2}, block_size,
                  state, depth + 1);
    process_batch(sc, eps,
                  {spec.batch + spec.num_batches, spec.num_batches * 2},
                  block_size, state, depth + 1);
    return;
  }

  const std::uint64_t pairs = sc.sink.count();
  // Group identical keys before shipping R to the host (Alg. 4 line 7).
  cudasim::sort_by_key(sc.device, sc.sink.pairs(), pairs,
                       [](const NeighborPair& p) { return p.key; });
  // D2H into this stream's pinned staging area.
  sc.device.blocking_transfer(sc.staging.data(), sc.sink.pairs().device_data(),
                              pairs * sizeof(NeighborPair),
                              /*to_device=*/false, /*pinned_host=*/true);
  // Host side: copy the values out of the staging buffer into B and record
  // the [Tmin, Tmax) ranges — the staging buffer is then free for the
  // stream's next batch.
  std::lock_guard lock(state.mutex);
  hdbscan::ThreadCpuTimer append_timer;  // CPU time: contention-immune
  state.stream_device_model[sc.timeline_id] +=
      cudasim::modeled_sort_seconds(sc.device.config(),
                                    pairs * sizeof(NeighborPair)) +
      cudasim::modeled_transfer_seconds(sc.device.config(),
                                        pairs * sizeof(NeighborPair),
                                        /*pinned=*/true);
  state.table.append_sorted_batch({sc.staging.data(), pairs});
  state.total_pairs += pairs;
  state.max_batch_pairs = std::max(state.max_batch_pairs, pairs);
  state.stream_append_seconds[sc.timeline_id] += append_timer.seconds();
}

}  // namespace

NeighborTableBuilder::NeighborTableBuilder(
    std::vector<cudasim::Device*> devices, BatchPolicy policy)
    : devices_(std::move(devices)), policy_(policy) {
  if (devices_.empty()) {
    throw std::invalid_argument("NeighborTableBuilder: no devices");
  }
  for (const cudasim::Device* d : devices_) {
    if (d == nullptr) {
      throw std::invalid_argument("NeighborTableBuilder: null device");
    }
  }
}

NeighborTable NeighborTableBuilder::build(const GridIndex& index, float eps,
                                          BuildReport* report) {
  WallTimer total_timer;
  BuildReport local_report;
  local_report.used_shared_kernel = policy_.use_shared_kernel;

  // Upload the index once per device (pageable host memory, as in the
  // paper: only the result set uses the pinned staging path). Multi-device
  // mode replicates the index, exactly like a GPU-per-node deployment
  // (the direction of Mr. Scan, the paper's citation [7]).
  std::vector<std::unique_ptr<gpu::GridDeviceIndex>> device_indexes;
  device_indexes.reserve(devices_.size());
  for (cudasim::Device* device : devices_) {
    cudasim::Stream upload_stream(*device);
    device_indexes.push_back(
        std::make_unique<gpu::GridDeviceIndex>(*device, upload_stream, index));
    upload_stream.synchronize();
  }
  cudasim::Device& first_device = *devices_.front();
  const GridView first_view = device_indexes.front()->view();

  // Estimate the result-set size from a 1% sample (negligible cost), or
  // take the caller's figure when provided.
  if (policy_.estimated_total_override != 0) {
    local_report.estimate.estimated_total = policy_.estimated_total_override;
    local_report.estimate.sampled_pairs = policy_.estimated_total_override;
    local_report.estimate.sample_stride = 1;
  } else {
    WallTimer est_timer;
    local_report.estimate =
        estimate_result_size(first_device, first_view, eps,
                             policy_.sample_fraction, policy_.block_size);
    local_report.estimate_seconds = est_timer.seconds();
  }

  // Plan n_b and b_b, capping the buffers so that num_streams sinks, their
  // sort scratch, and the staging never exceed any device's free memory.
  std::uint64_t min_free_bytes = first_device.free_global_bytes();
  for (const cudasim::Device* d : devices_) {
    min_free_bytes = std::min(min_free_bytes, d->free_global_bytes());
  }
  const std::uint64_t free_pairs = min_free_bytes / sizeof(NeighborPair);
  const std::uint64_t max_buffer_pairs = std::max<std::uint64_t>(
      1, free_pairs * 9 / (10ull * std::max(1u, policy_.num_streams) * 2));
  // With several devices, plan one batch per (device, stream) context so
  // every device contributes even on the variable-buffer path.
  BatchPolicy planning_policy = policy_;
  planning_policy.num_streams = std::max(1u, policy_.num_streams) *
                                static_cast<unsigned>(devices_.size());
  local_report.plan = plan_batches(local_report.estimate.estimated_total,
                                   planning_policy, max_buffer_pairs);
  const BatchPlan& plan = local_report.plan;

  const auto num_contexts = static_cast<unsigned>(devices_.size()) *
                            std::max(1u, policy_.num_streams);
  SharedBuildState state;
  state.table = NeighborTable(index.size());
  state.table.reserve_values(plan.estimated_total_pairs);
  state.stream_device_model.assign(num_contexts, 0.0);
  state.stream_append_seconds.assign(num_contexts, 0.0);

  // Modeled fixed costs on the reference hardware: index upload over the
  // pageable link (parallel across devices -> counted once), the
  // estimation kernel, and page-locking the staging buffers (spread across
  // the devices' hosts in multi-device mode).
  const auto& cfg = first_device.config();
  const std::uint64_t upload_bytes =
      index.points.size() * sizeof(Point2) +
      index.cells.size() * sizeof(CellRange) +
      index.lookup.size() * sizeof(PointId) +
      index.nonempty_cells.size() * sizeof(std::uint32_t);
  double modeled_fixed =
      cudasim::modeled_transfer_seconds(cfg, upload_bytes, /*pinned=*/false) +
      local_report.estimate.kernel_stats.modeled_seconds;

  if (policy_.use_shared_kernel && plan.num_batches == 1) {
    // GPUCalcShared path (single batch only: the block-per-cell mapping is
    // incompatible with the strided batch assignment). First device only.
    gpu::ResultSetDevice sink(first_device, plan.buffer_pairs);
    const cudasim::KernelStats stats = gpu::run_calc_shared(
        first_device, first_view, device_indexes.front()->schedule(),
        device_indexes.front()->num_nonempty_cells(), eps, sink.view(),
        policy_.block_size);
    state.batches_run = 1;
    state.kernel_modeled_seconds = stats.modeled_seconds;
    if (sink.overflowed()) {
      throw std::runtime_error(
          "neighbor table build (shared kernel): result buffer overflow");
    }
    const std::uint64_t pairs = sink.count();
    cudasim::sort_by_key(first_device, sink.pairs(), pairs,
                         [](const NeighborPair& p) { return p.key; });
    cudasim::PinnedBuffer<NeighborPair> staging(first_device, pairs);
    first_device.blocking_transfer(staging.data(), sink.pairs().device_data(),
                                   pairs * sizeof(NeighborPair), false, true);
    hdbscan::ThreadCpuTimer append_timer;
    state.table.append_sorted_batch({staging.data(), pairs});
    state.total_pairs = pairs;
    state.max_batch_pairs = pairs;
    state.stream_append_seconds[0] = append_timer.seconds();
    state.stream_device_model[0] +=
        stats.modeled_seconds +
        cudasim::modeled_sort_seconds(cfg, pairs * sizeof(NeighborPair)) +
        cudasim::modeled_transfer_seconds(cfg, pairs * sizeof(NeighborPair),
                                          true);
    modeled_fixed += cudasim::modeled_pinned_alloc_seconds(
        cfg, pairs * sizeof(NeighborPair));
  } else {
    local_report.used_shared_kernel = false;
    // One context (stream + device sink + pinned staging) per
    // (device, stream) pair.
    std::vector<std::unique_ptr<StreamContext>> contexts;
    contexts.reserve(num_contexts);
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      for (unsigned s = 0; s < std::max(1u, policy_.num_streams); ++s) {
        const auto id = static_cast<unsigned>(contexts.size());
        contexts.push_back(std::make_unique<StreamContext>(
            *devices_[d], device_indexes[d]->view(), plan.buffer_pairs, id));
        modeled_fixed += cudasim::modeled_pinned_alloc_seconds(
                             cfg, plan.buffer_pairs * sizeof(NeighborPair)) /
                         static_cast<double>(devices_.size());
      }
    }
    // Round-robin the batches; each context serializes its own batches and
    // overlaps with the others (kernel / sort / transfer / host append).
    for (std::uint32_t l = 0; l < plan.num_batches; ++l) {
      StreamContext& sc = *contexts[l % contexts.size()];
      const gpu::BatchSpec spec{l, plan.num_batches};
      sc.stream.host_fn([eps, spec, block = policy_.block_size, &sc, &state] {
        try {
          process_batch(sc, eps, spec, block, state, 0);
        } catch (...) {
          std::lock_guard lock(state.mutex);
          if (!state.first_error) state.first_error = std::current_exception();
        }
      });
    }
    for (auto& sc : contexts) sc->stream.synchronize();
    if (state.first_error) std::rethrow_exception(state.first_error);
  }

  // Compose the modeled build time: fixed costs plus the slowest context's
  // timeline (device work + that context's host-side append, which runs on
  // its own core on the reference host).
  double slowest_stream = 0.0;
  for (std::size_t s = 0; s < state.stream_device_model.size(); ++s) {
    slowest_stream = std::max(slowest_stream,
                              state.stream_device_model[s] +
                                  state.stream_append_seconds[s]);
  }
  local_report.modeled_table_seconds = modeled_fixed + slowest_stream;

  local_report.total_pairs = state.total_pairs;
  local_report.max_batch_pairs = state.max_batch_pairs;
  local_report.batches_run = state.batches_run;
  local_report.overflow_splits = state.overflow_splits;
  local_report.kernel_modeled_seconds = state.kernel_modeled_seconds;
  local_report.table_seconds = total_timer.seconds();
  if (report != nullptr) *report = local_report;
  return std::move(state.table);
}

}  // namespace hdbscan
