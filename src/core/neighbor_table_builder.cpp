#include "core/neighbor_table_builder.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/report_metrics.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/buffer_pool.hpp"
#include "cudasim/error.hpp"
#include "cudasim/sort.hpp"
#include "cudasim/stream.hpp"
#include "gpu/bvh_device_index.hpp"
#include "gpu/device_index.hpp"
#include "gpu/kernels.hpp"
#include "gpu/result_sink.hpp"
#include "index/bvh.hpp"
#include "index/rtree.hpp"
#include "obs/trace.hpp"

namespace hdbscan {

namespace {

/// Everything one (device, stream) pair needs to process its batches.
/// All tallies are context-private: the stream thread appends into its own
/// shard of T lock-free, and the builder harvests the numbers after the
/// streams synchronize — the shared mutex never sits on the batch path.
struct StreamContext {
  StreamContext(cudasim::Device& device_in, const GridView& view_in,
                TableBuildMode mode, std::uint64_t buffer_pairs,
                std::uint32_t max_batch_points, unsigned timeline_id_in)
      : device(device_in),
        view(view_in),
        timeline_id(timeline_id_in),
        stream(device_in),
        shard(view_in.num_points) {
    if (mode == TableBuildMode::kPairSort) {
      sink.emplace(device_in, buffer_pairs);
      pair_staging.emplace(device_in, buffer_pairs);
    } else {
      counts.emplace(device_in, max_batch_points);
      values.emplace(device_in, buffer_pairs);
      offsets_staging.emplace(device_in, max_batch_points);
      values_staging.emplace(device_in, buffer_pairs);
    }
  }

  /// Pinned staging bytes that required a *fresh* page-lock this build
  /// (pool hits were locked by an earlier build and cost nothing now).
  /// Feeds the modeled page-lock charge, which is why the N-variant reuse
  /// sweep pays the pinned-allocation cost only on its first variant.
  [[nodiscard]] std::uint64_t fresh_pinned_bytes() const noexcept {
    std::uint64_t b = 0;
    if (pair_staging && pair_staging->fresh()) b += pair_staging->bytes();
    if (offsets_staging && offsets_staging->fresh()) {
      b += offsets_staging->bytes();
    }
    if (values_staging && values_staging->fresh()) {
      b += values_staging->bytes();
    }
    return b;
  }

  cudasim::Device& device;
  GridView view;
  /// Which index the traversal kernels run against. kBvh contexts also
  /// carry a device BVH view; the grid view stays for the batch-domain
  /// arithmetic (query_count) and the estimation kernel.
  IndexBackend backend = IndexBackend::kGrid;
  BvhView bvh_view{};
  /// Per-pair Bernoulli filter the traversal kernels apply (exact builds
  /// carry the default no-op spec). Copied from the policy when the
  /// context is created so retries and failover re-run the same sample.
  QualitySpec quality{};
  unsigned timeline_id;  ///< index into the per-context model timelines
  cudasim::Stream stream;

  /// Private fraction of T; merged into the final table exactly once.
  NeighborTable shard;

  // --- pair-sort (legacy) pipeline state (pool-backed: returned to the
  // device's BufferPool on destruction, so the next build over the same
  // device checks the same memory back out instead of re-allocating) ---
  std::optional<gpu::ResultSetDevice> sink;
  std::optional<cudasim::PooledPinnedBuffer<NeighborPair>> pair_staging;

  // --- two-pass CSR pipeline state (pool-backed as above) ---
  std::optional<cudasim::PooledDeviceBuffer<std::uint32_t>> counts;
  std::optional<cudasim::PooledDeviceBuffer<PointId>> values;
  std::optional<cudasim::PooledPinnedBuffer<std::uint32_t>> offsets_staging;
  std::optional<cudasim::PooledPinnedBuffer<PointId>> values_staging;

  // --- streaming delivery state (CSR + sink builds) ---
  /// Host scratch for reconstructing pass-1 counts from the scanned
  /// offsets (counts[g] = offsets[g+1] - offsets[g]); reused per batch.
  std::vector<std::uint32_t> counts_scratch;

  // --- context-private tallies (harvested after synchronize) ---
  double device_model = 0.0;    ///< modeled device seconds on this timeline
  double consume_seconds = 0.0; ///< measured host CPU inside sink callbacks
  std::uint64_t sink_batches = 0;
  std::uint64_t sink_count_batches = 0;
  double append_seconds = 0.0;  ///< measured host CPU time appending into T
  double kernel_modeled = 0.0;
  double sort_modeled = 0.0;
  double scan_modeled = 0.0;
  std::uint64_t total_pairs = 0;
  std::uint64_t max_batch_pairs = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t kernel_flops = 0;
  std::uint64_t kernel_global_bytes = 0;
  std::uint32_t batches_run = 0;
  std::uint32_t overflow_splits = 0;
};

/// One unit of batch work. Strided batches cover disjoint key sets and a
/// batch's shard append is its final step, so an item that faulted mid-way
/// can always be re-run in full — on the same context, a surviving one, or
/// the host — without duplicating keys.
struct WorkItem {
  gpu::BatchSpec spec;
  unsigned depth = 0;              ///< overflow/shrink splits applied
  unsigned transient_retries = 0;  ///< TransientKernelFault retries so far
  unsigned alloc_retries = 0;      ///< OOM shrink-splits along this lineage
  /// The sink already received this lineage's pass-1 counts. The flag
  /// rides through retries, OOM splits and failover (push_halves and the
  /// orphan pool copy the item), which is what makes count delivery
  /// exactly-once: a split half or a retried launch re-runs its kernels
  /// but never re-adds degrees the parent item already delivered.
  bool counts_delivered = false;
};

/// Mutex-protected batch queue shared by every context's pump. Each
/// context owns a sub-queue (the round-robin assignment, so every device
/// keeps its share of the work and the modeled timelines stay balanced)
/// plus one orphan pool holding work pushed back by dead contexts — the
/// only items a foreign pump will pick up. Items only leave the queue for
/// the duration of one processing attempt; any failure that is not a hard
/// error pushes the item (or its two halves) back.
class WorkQueue {
 public:
  explicit WorkQueue(std::size_t num_contexts) : owned_(num_contexts) {}

  /// Queue an item on `ctx`'s own sub-queue (initial assignment, splits,
  /// transient retries — work that stays with its context).
  void push(std::size_t ctx, WorkItem item) {
    std::lock_guard lock(mutex_);
    owned_[ctx].push_back(item);
  }

  /// Queue an item for whoever gets to it first (failover).
  void push_orphan(WorkItem item) {
    std::lock_guard lock(mutex_);
    orphans_.push_back(item);
  }

  /// Move everything `ctx` still owns into the orphan pool — called when
  /// its device is lost, so survivors inherit the unfinished share.
  void orphan_context(std::size_t ctx) {
    std::lock_guard lock(mutex_);
    while (!owned_[ctx].empty()) {
      orphans_.push_back(owned_[ctx].front());
      owned_[ctx].pop_front();
    }
  }

  /// Pop `ctx`'s next item, falling back to the orphan pool.
  bool pop(std::size_t ctx, WorkItem& out) {
    std::lock_guard lock(mutex_);
    if (!owned_[ctx].empty()) {
      out = owned_[ctx].front();
      owned_[ctx].pop_front();
      return true;
    }
    if (!orphans_.empty()) {
      out = orphans_.front();
      orphans_.pop_front();
      return true;
    }
    return false;
  }

  [[nodiscard]] bool empty() {
    std::lock_guard lock(mutex_);
    if (!orphans_.empty()) return false;
    for (const auto& q : owned_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  /// Removes and returns everything still queued (the host-fallback path).
  [[nodiscard]] std::vector<WorkItem> drain() {
    std::lock_guard lock(mutex_);
    std::vector<WorkItem> v(orphans_.begin(), orphans_.end());
    orphans_.clear();
    for (auto& q : owned_) {
      v.insert(v.end(), q.begin(), q.end());
      q.clear();
    }
    return v;
  }

 private:
  std::mutex mutex_;
  std::vector<std::deque<WorkItem>> owned_;
  std::deque<WorkItem> orphans_;
};

/// State shared by all pumps: the first non-recoverable error plus the
/// cross-context resilience tallies (appends stay shard-local; this mutex
/// is touched only on faults and errors, never on the happy path).
struct SharedBuildState {
  std::mutex mutex;
  std::exception_ptr hard_error;
  std::uint32_t transient_retries = 0;
  std::uint32_t alloc_retries = 0;
  std::uint32_t failover_batches = 0;

  void set_hard_error(std::exception_ptr e) {
    std::lock_guard lock(mutex);
    if (!hard_error) hard_error = std::move(e);
  }

  [[nodiscard]] bool has_hard_error() {
    std::lock_guard lock(mutex);
    return hard_error != nullptr;
  }
};

[[noreturn]] void throw_split_exhausted(const gpu::BatchSpec& spec,
                                        unsigned depth,
                                        unsigned max_split_depth) {
  throw std::runtime_error(
      "neighbor table build: batch " + std::to_string(spec.batch) + "/" +
      std::to_string(spec.num_batches) + " exceeds the result buffer at "
      "split depth " + std::to_string(depth) + " (max_split_depth=" +
      std::to_string(max_split_depth) +
      "); buffer too small for the data density");
}

/// (l, n_b) == (l, 2 n_b) u (l + n_b, 2 n_b): same points, half each.
/// The halves stay on the splitting context's sub-queue.
void push_halves(WorkQueue& queue, std::size_t ctx, const WorkItem& item,
                 unsigned extra_alloc_retry) {
  WorkItem half = item;
  half.depth = item.depth + 1;
  half.alloc_retries = item.alloc_retries + extra_alloc_retry;
  half.spec = {item.spec.batch, item.spec.num_batches * 2};
  queue.push(ctx, half);
  half.spec = {item.spec.batch + item.spec.num_batches,
               item.spec.num_batches * 2};
  queue.push(ctx, half);
}

/// Legacy pair pipeline: kernel -> device sort_by_key -> D2H pairs ->
/// shard append. On buffer overflow the two halves go back to the queue.
/// Under ScanMode::kHalf the kernel emits forward rows only — about half
/// the pairs sort, ship and append; the builder transposes the merged
/// table once at the end.
void process_batch_pairs(StreamContext& sc, ScanMode scan, float eps,
                         WorkItem& item, unsigned block_size,
                         WorkQueue& queue, unsigned max_split_depth) {
  const gpu::BatchSpec spec = item.spec;
  if (spec.points_in_batch(sc.view.query_count()) == 0) return;
  TRACE_SPAN("batch", "batch %u/%u d%u", spec.batch, spec.num_batches,
             sc.device.id());

  sc.sink->reset();
  const cudasim::KernelStats stats = gpu::run_calc_global(
      sc.device, sc.view, eps, spec, sc.sink->view(), scan, block_size,
      sc.quality);
  ++sc.batches_run;
  sc.kernel_modeled += stats.modeled_seconds;
  sc.device_model += stats.modeled_seconds;
  sc.atomic_ops += stats.work.atomic_ops;
  sc.kernel_flops += stats.work.flops;
  sc.kernel_global_bytes += stats.work.global_bytes;

  if (sc.sink->overflowed()) {
    if (item.depth >= max_split_depth) {
      throw_split_exhausted(spec, item.depth, max_split_depth);
    }
    ++sc.overflow_splits;
    TRACE_INSTANT("resilience", "overflow_split %u/%u", spec.batch,
                  spec.num_batches);
    push_halves(queue, sc.timeline_id, item, /*extra_alloc_retry=*/0);
    return;
  }

  const std::uint64_t pairs = sc.sink->stored();
  // Group identical keys before shipping R to the host (Alg. 4 line 7).
  cudasim::sort_by_key(sc.device, sc.sink->pairs(), pairs,
                       [](const NeighborPair& p) { return p.key; });
  const std::uint64_t bytes = pairs * sizeof(NeighborPair);
  // D2H into this stream's pinned staging area.
  sc.device.blocking_transfer(sc.pair_staging->data(),
                              sc.sink->pairs().device_data(), bytes,
                              /*to_device=*/false, /*pinned_host=*/true);
  const double sort_s =
      cudasim::modeled_sort_seconds(sc.device.config(), bytes);
  sc.sort_modeled += sort_s;
  sc.device_model +=
      sort_s + cudasim::modeled_transfer_seconds(sc.device.config(), bytes,
                                                 /*pinned=*/true);
  sc.d2h_bytes += bytes;
  // Host side: append this batch into the context's private shard — no
  // lock; shards merge after all streams drain.
  hdbscan::ThreadCpuTimer append_timer;
  sc.shard.append_sorted_batch({sc.pair_staging->data(), pairs});
  sc.append_seconds += append_timer.seconds();
  sc.total_pairs += pairs;
  sc.max_batch_pairs = std::max(sc.max_batch_pairs, pairs);
}

/// Two-pass CSR pipeline: count kernel -> exclusive scan (exact batch
/// size) -> D2H offsets (+ count delivery to the sink) -> fill kernel into
/// exact slots -> D2H values -> shard append -> row delivery to the sink.
/// A batch whose exact size exceeds the value buffer splits *before* any
/// fill work runs — and before anything is delivered, so split halves
/// deliver themselves. Under ScanMode::kHalf both passes walk only the
/// forward half of the stencil (counts stay atomic-free) and the CSR rows
/// that cross PCIe are forward rows.
void process_batch_csr(StreamContext& sc, ScanMode scan, float eps,
                       WorkItem& item, unsigned block_size,
                       WorkQueue& queue, unsigned max_split_depth,
                       BatchSink* sink, bool materialize) {
  const gpu::BatchSpec spec = item.spec;
  // Query domain, not resident count: on a shard slab the ghost points
  // hold no batch slots (the kernels never write counts for them).
  const std::uint32_t pts = spec.points_in_batch(sc.view.query_count());
  if (pts == 0) return;
  TRACE_SPAN("batch", "batch %u/%u d%u", spec.batch, spec.num_batches,
             sc.device.id());

  const cudasim::KernelStats count_stats =
      sc.backend == IndexBackend::kBvh
          ? gpu::run_count_batch(sc.device, sc.bvh_view, eps, spec,
                                 sc.counts->device_data(), scan, block_size,
                                 sc.quality)
          : gpu::run_count_batch(sc.device, sc.view, eps, spec,
                                 sc.counts->device_data(), scan, block_size,
                                 sc.quality);
  ++sc.batches_run;
  sc.kernel_modeled += count_stats.modeled_seconds;
  sc.device_model += count_stats.modeled_seconds;
  sc.atomic_ops += count_stats.work.atomic_ops;
  sc.kernel_flops += count_stats.work.flops;
  sc.kernel_global_bytes += count_stats.work.global_bytes;

  // Exact batch size; counts become exclusive CSR offsets in place.
  const std::uint64_t total = cudasim::exclusive_scan(sc.device, *sc.counts,
                                                      pts);
  const double scan_s = cudasim::modeled_scan_seconds(
      sc.device.config(), pts * sizeof(std::uint32_t));
  sc.scan_modeled += scan_s;
  sc.device_model += scan_s;

  if (total > sc.values->size()) {
    if (item.depth >= max_split_depth) {
      throw_split_exhausted(spec, item.depth, max_split_depth);
    }
    ++sc.overflow_splits;
    TRACE_INSTANT("resilience", "overflow_split %u/%u", spec.batch,
                  spec.num_batches);
    push_halves(queue, sc.timeline_id, item, /*extra_alloc_retry=*/0);
    return;
  }

  // Ship the scanned offsets now — they are final before the fill pass
  // runs (the fill kernel reads them as const), and shipping them early
  // lets a streaming sink resolve per-key degrees (hence core flags)
  // while the fill kernel is still distance-testing. Same bytes as the
  // old post-fill offsets transfer, just earlier on the timeline.
  const std::uint64_t offset_bytes = pts * sizeof(std::uint32_t);
  sc.device.blocking_transfer(sc.offsets_staging->data(),
                              sc.counts->device_data(), offset_bytes,
                              /*to_device=*/false, /*pinned_host=*/true);
  sc.device_model += cudasim::modeled_transfer_seconds(
      sc.device.config(), offset_bytes, /*pinned=*/true);
  sc.d2h_bytes += offset_bytes;

  if (sink != nullptr && !item.counts_delivered) {
    // Exclusive offsets + the exact total reconstruct the pass-1 counts
    // without a second transfer: counts[g] = offsets[g+1] - offsets[g].
    sc.counts_scratch.resize(pts);
    const std::uint32_t* offs = sc.offsets_staging->data();
    for (std::uint32_t g = 0; g + 1 < pts; ++g) {
      sc.counts_scratch[g] = offs[g + 1] - offs[g];
    }
    sc.counts_scratch[pts - 1] =
        static_cast<std::uint32_t>(total) - offs[pts - 1];
    hdbscan::ThreadCpuTimer consume_timer;
    sink->consume_counts(CountDelivery{
        spec.batch, spec.num_batches, scan,
        {sc.counts_scratch.data(), pts}, {}});
    sc.consume_seconds += consume_timer.seconds();
    ++sc.sink_count_batches;
    item.counts_delivered = true;
  }

  const cudasim::KernelStats fill_stats =
      sc.backend == IndexBackend::kBvh
          ? gpu::run_fill_csr(sc.device, sc.bvh_view, eps, spec,
                              sc.counts->device_data(),
                              sc.values->device_data(), scan, block_size,
                              sc.quality)
          : gpu::run_fill_csr(sc.device, sc.view, eps, spec,
                              sc.counts->device_data(),
                              sc.values->device_data(), scan, block_size,
                              sc.quality);
  sc.kernel_modeled += fill_stats.modeled_seconds;
  sc.device_model += fill_stats.modeled_seconds;
  sc.atomic_ops += fill_stats.work.atomic_ops;
  sc.kernel_flops += fill_stats.work.flops;
  sc.kernel_global_bytes += fill_stats.work.global_bytes;

  // D2H: bare values only — the per-point offsets are already host-side
  // and no NeighborPair keys cross the wire, so about half the bytes of
  // the pair pipeline.
  const std::uint64_t value_bytes = total * sizeof(PointId);
  sc.device.blocking_transfer(sc.values_staging->data(),
                              sc.values->device_data(), value_bytes,
                              /*to_device=*/false, /*pinned_host=*/true);
  sc.device_model += cudasim::modeled_transfer_seconds(
      sc.device.config(), value_bytes, /*pinned=*/true);
  sc.d2h_bytes += value_bytes;

  if (materialize) {
    hdbscan::ThreadCpuTimer append_timer;
    sc.shard.append_csr_batch(spec.batch, spec.num_batches,
                              {sc.offsets_staging->data(), pts},
                              {sc.values_staging->data(), total});
    sc.append_seconds += append_timer.seconds();
  }
  if (sink != nullptr) {
    // Row delivery is the batch's last step: any fault before this point
    // re-runs the item without the sink ever having seen these rows.
    hdbscan::ThreadCpuTimer consume_timer;
    sink->consume(BatchDelivery{spec.batch, spec.num_batches, scan,
                                item.counts_delivered,
                                {sc.offsets_staging->data(), pts},
                                {sc.values_staging->data(), total}, {}});
    sc.consume_seconds += consume_timer.seconds();
    ++sc.sink_batches;
  }
  sc.total_pairs += total;
  sc.max_batch_pairs = std::max(sc.max_batch_pairs, total);
}

void process_item(StreamContext& sc, TableBuildMode mode, ScanMode scan,
                  float eps, WorkItem& item, unsigned block_size,
                  WorkQueue& queue, unsigned max_split_depth,
                  BatchSink* sink, bool materialize) {
  if (mode == TableBuildMode::kPairSort) {
    process_batch_pairs(sc, scan, eps, item, block_size, queue,
                        max_split_depth);
  } else {
    process_batch_csr(sc, scan, eps, item, block_size, queue,
                      max_split_depth, sink, materialize);
  }
}

/// One context's work pump, run on its stream thread. Pops items until the
/// queue is dry, applying the degradation ladder on faults:
///   * TransientKernelFault — the launch did no work; retry the item up to
///     max_transient_retries times before it becomes a hard error.
///   * DeviceOutOfMemory   — a mid-batch scratch allocation failed (e.g.
///     the pair sort's temp buffer); split the batch in two, which halves
///     the scratch, bounded by max_alloc_retries and max_split_depth.
///   * DeviceLost          — the context is dead; requeue the item for a
///     survivor (or the host) and exit the pump.
/// Anything else is a hard error: recorded once, every pump winds down,
/// and build() rethrows only after all streams have drained.
void pump(StreamContext& sc, WorkQueue& queue, SharedBuildState& state,
          TableBuildMode mode, ScanMode scan, float eps, unsigned block_size,
          const ResiliencePolicy& res, unsigned max_split_depth,
          BatchSink* sink, bool materialize, const CancelToken* cancel) {
  const std::size_t ctx = sc.timeline_id;
  WorkItem item;
  while (queue.pop(ctx, item)) {
    if (state.has_hard_error()) {
      queue.push(ctx, item);
      return;
    }
    // Cooperative cancellation, polled once per batch: becomes a hard
    // error so every pump winds down, streams drain, and the unwind
    // returns the pooled buffers. The item goes back so the unfinished
    // count in diagnostics stays truthful.
    if (cancel != nullptr && cancel->cancelled()) {
      queue.push(ctx, item);
      state.set_hard_error(
          std::make_exception_ptr(OperationCancelled(cancel->reason())));
      return;
    }
    try {
      process_item(sc, mode, scan, eps, item, block_size, queue,
                   max_split_depth, sink, materialize);
    } catch (const cudasim::TransientKernelFault&) {
      if (item.transient_retries < res.max_transient_retries) {
        ++item.transient_retries;
        TRACE_INSTANT("resilience", "retry %u/%u try=%u", item.spec.batch,
                      item.spec.num_batches, item.transient_retries);
        {
          std::lock_guard lock(state.mutex);
          ++state.transient_retries;
        }
        queue.push(ctx, item);
        continue;
      }
      state.set_hard_error(std::current_exception());
      return;
    } catch (const cudasim::DeviceOutOfMemory&) {
      if (item.alloc_retries < res.max_alloc_retries &&
          item.depth < max_split_depth) {
        TRACE_INSTANT("resilience", "oom_split %u/%u", item.spec.batch,
                      item.spec.num_batches);
        {
          std::lock_guard lock(state.mutex);
          ++state.alloc_retries;
        }
        push_halves(queue, ctx, item, /*extra_alloc_retry=*/1);
        continue;
      }
      state.set_hard_error(std::current_exception());
      return;
    } catch (const cudasim::DeviceLost&) {
      if (res.failover || res.host_fallback) {
        TRACE_INSTANT("resilience", "failover %u/%u", item.spec.batch,
                      item.spec.num_batches);
        {
          std::lock_guard lock(state.mutex);
          ++state.failover_batches;
        }
        // The in-flight item and everything this context still owned go
        // to the orphan pool, where a surviving context inherits them.
        queue.push_orphan(item);
        queue.orphan_context(ctx);
        return;
      }
      state.set_hard_error(std::current_exception());
      return;
    } catch (...) {
      state.set_hard_error(std::current_exception());
      return;
    }
  }
}

}  // namespace

NeighborTableBuilder::NeighborTableBuilder(
    std::vector<cudasim::Device*> devices, BatchPolicy policy)
    : devices_(std::move(devices)), policy_(policy) {
  if (devices_.empty()) {
    throw std::invalid_argument("NeighborTableBuilder: no devices");
  }
  for (const cudasim::Device* d : devices_) {
    if (d == nullptr) {
      throw std::invalid_argument("NeighborTableBuilder: null device");
    }
  }
}

NeighborTable NeighborTableBuilder::build(const GridIndex& index, float eps,
                                          BuildReport* report,
                                          BatchSink* sink,
                                          bool materialize_table) {
  try {
    return build_impl(index, eps, report, sink, materialize_table);
  } catch (...) {
    // Stamp the structured cause for callers that isolate the failure
    // (pipeline variants, the chaos CLI, the service) before they lose the
    // exception's type to a catch-all.
    if (report != nullptr) report->failure = classify_current_exception();
    throw;
  }
}

NeighborTable NeighborTableBuilder::build_impl(const GridIndex& index,
                                               float eps, BuildReport* report,
                                               BatchSink* sink,
                                               bool materialize_table) {
  TRACE_SPAN("build", "table_build n=%zu", index.size());
  if (sink != nullptr && policy_.build_mode == TableBuildMode::kPairSort) {
    throw std::invalid_argument(
        "NeighborTableBuilder: streaming delivery (BatchSink) requires "
        "TableBuildMode::kCsrTwoPass");
  }
  if (!materialize_table && sink == nullptr) {
    throw std::invalid_argument(
        "NeighborTableBuilder: materialize_table=false without a sink "
        "would discard the build");
  }
  const bool use_bvh = policy_.index_backend == IndexBackend::kBvh;
  if (use_bvh) {
    if (policy_.build_mode != TableBuildMode::kCsrTwoPass) {
      throw std::invalid_argument(
          "NeighborTableBuilder: IndexBackend::kBvh requires "
          "TableBuildMode::kCsrTwoPass");
    }
    if (policy_.use_shared_kernel) {
      throw std::invalid_argument(
          "NeighborTableBuilder: IndexBackend::kBvh has no shared-memory "
          "kernel (the block-per-cell schedule is a grid concept)");
    }
    if (!index.emit_ids.empty() || index.query_count() != index.size()) {
      throw std::invalid_argument(
          "NeighborTableBuilder: IndexBackend::kBvh supports whole-index "
          "builds only; sharded slabs keep the grid backend");
    }
  }
  const bool materialize = materialize_table;
  check_cancel(policy_.cancel);  // cheapest point to abandon: no device work yet
  WallTimer total_timer;
  BuildReport local_report;
  local_report.used_shared_kernel = policy_.use_shared_kernel;
  local_report.build_mode = policy_.build_mode;
  local_report.scan_mode = policy_.scan_mode;
  local_report.index_backend = policy_.index_backend;
  local_report.streamed = sink != nullptr;
  local_report.table_materialized = materialize;
  const ResiliencePolicy& res = policy_.resilience;

  // When every rung of the ladder above it has failed (or every device
  // failed setup), the whole table is built host-side in one go.
  auto full_host_fallback = [&]() -> NeighborTable {
    TRACE_SPAN("host", "host_fallback_full");
    check_cancel(policy_.cancel);
    local_report.used_host_fallback = true;
    // The parallel host builder queries full neighborhoods directly, so
    // no half-table expansion applies on this rung.
    local_report.scan_mode = ScanMode::kFull;
    NeighborTable t = build_neighbor_table_host_parallel(
        index, eps, /*num_threads=*/0, policy_.quality);
    local_report.total_pairs = t.total_pairs();
    if (sink != nullptr) {
      // This rung only fires before any batch ran, so the sink has seen
      // nothing: deliver the whole table, one (symmetric) row per key.
      hdbscan::ThreadCpuTimer consume_timer;
      const std::uint32_t zero = 0;
      const auto nq = static_cast<std::uint32_t>(index.query_count());
      for (std::uint32_t k = 0; k < nq; ++k) {
        sink->consume(BatchDelivery{k, /*key_stride=*/1, ScanMode::kFull,
                                    /*counts_delivered=*/false,
                                    {&zero, 1}, t.neighbors(k), {}});
      }
      local_report.sink_consume_seconds += consume_timer.seconds();
      local_report.sink_batches += nq;
    }
    local_report.table_seconds = total_timer.seconds();
    publish_build_report(local_report, policy_.metrics_labels);
    if (report != nullptr) *report = local_report;
    if (!materialize) return NeighborTable(index.size());
    return t;
  };

  // Upload the index once per device (pageable host memory, as in the
  // paper: only the result set uses the pinned staging path). Multi-device
  // mode replicates the index, exactly like a GPU-per-node deployment
  // (the direction of Mr. Scan, the paper's citation [7]). A device that
  // cannot even hold the index — or dies during the upload — is dropped;
  // the remaining devices absorb its share of the batches. The failure
  // only becomes the caller's problem when no device survives setup.
  struct DeviceSlot {
    cudasim::Device* device;
    std::unique_ptr<gpu::GridDeviceIndex> dev_index;
    std::unique_ptr<gpu::BvhDeviceIndex> bvh_index;  ///< kBvh builds only
  };
  // The host BVH is built once over the index's reordered point array (so
  // ids agree with the grid's), then replicated to every device exactly
  // like the grid arrays. The grid index still uploads alongside it: the
  // estimation kernel always samples through the grid, keeping e_b a
  // property of the data rather than of the traversal structure.
  std::optional<BvhIndex> host_bvh;
  if (use_bvh) {
    TRACE_SPAN("build", "bvh_build n=%zu", index.size());
    host_bvh.emplace(build_bvh_index(index.points));
  }
  std::vector<DeviceSlot> slots;
  slots.reserve(devices_.size());
  std::exception_ptr setup_error;
  for (cudasim::Device* device : devices_) {
    try {
      TRACE_SPAN("build", "index_upload d%u", device->id());
      cudasim::Stream upload_stream(*device);
      auto di = std::make_unique<gpu::GridDeviceIndex>(*device, upload_stream,
                                                       index);
      std::unique_ptr<gpu::BvhDeviceIndex> bi;
      if (host_bvh) {
        bi = std::make_unique<gpu::BvhDeviceIndex>(*device, upload_stream,
                                                   *host_bvh);
      }
      upload_stream.synchronize();
      slots.push_back(DeviceSlot{device, std::move(di), std::move(bi)});
    } catch (const cudasim::DeviceOutOfMemory&) {
      ++local_report.devices_lost;
      if (!setup_error) setup_error = std::current_exception();
    } catch (const cudasim::DeviceLost&) {
      ++local_report.devices_lost;
      if (!setup_error) setup_error = std::current_exception();
    }
  }
  if (slots.empty()) {
    if (res.host_fallback) return full_host_fallback();
    std::rethrow_exception(setup_error);
  }

  // Estimate the result-set size from a 1% sample (negligible cost), or
  // take the caller's figure when provided. Estimation fails over device
  // by device: transient faults retry in place, a lost or out-of-memory
  // device passes the baton to the next one.
  if (policy_.estimated_total_override != 0) {
    local_report.estimate.estimated_total = policy_.estimated_total_override;
    local_report.estimate.sampled_pairs = policy_.estimated_total_override;
    local_report.estimate.sample_stride = 1;
  } else {
    TRACE_SPAN("build", "estimate");
    WallTimer est_timer;
    bool estimated = false;
    std::exception_ptr est_error;
    for (DeviceSlot& slot : slots) {
      if (slot.device->lost()) continue;
      unsigned retries = 0;
      while (!estimated) {
        check_cancel(policy_.cancel);
        try {
          local_report.estimate = estimate_result_size(
              *slot.device, slot.dev_index->view(), eps,
              policy_.sample_fraction, policy_.block_size);
          estimated = true;
        } catch (const cudasim::TransientKernelFault&) {
          if (retries < res.max_transient_retries) {
            ++retries;
            ++local_report.transient_retries;
            continue;
          }
          if (!est_error) est_error = std::current_exception();
          break;
        } catch (const cudasim::DeviceLost&) {
          if (!est_error) est_error = std::current_exception();
          break;
        } catch (const cudasim::DeviceOutOfMemory&) {
          if (!est_error) est_error = std::current_exception();
          break;
        }
      }
      if (estimated) break;
    }
    if (!estimated) {
      if (res.host_fallback) return full_host_fallback();
      std::rethrow_exception(est_error);
    }
    local_report.estimate_seconds = est_timer.seconds();
    local_report.atomic_ops +=
        local_report.estimate.kernel_stats.work.atomic_ops;
  }
  // The estimation kernel always counts the exact neighborhood — e_b is a
  // property of the data, not of the quality mode — so a subsampled build
  // plans its buffers for the expected kept fraction instead. The planner's
  // alpha slack absorbs the Bernoulli variance on top.
  if (policy_.quality.sampled()) {
    const double r = std::clamp(policy_.quality.sample_rate, 0.0f, 1.0f);
    local_report.estimate.estimated_total = std::max<std::uint64_t>(
        index.size(),
        static_cast<std::uint64_t>(
            static_cast<double>(local_report.estimate.estimated_total) * r));
  }

  // Drop slots whose device died since the last check, tallying each loss
  // exactly once (later phases only ever see surviving slots).
  auto drop_lost_slots = [&] {
    for (auto it = slots.begin(); it != slots.end();) {
      if (it->device->lost()) {
        ++local_report.devices_lost;
        it = slots.erase(it);
      } else {
        ++it;
      }
    }
  };

  // Plan n_b and b_b, capping the buffers so that num_streams result
  // buffers and their scratch never exceed any surviving device's free
  // memory. A pair-mode slot costs sizeof(NeighborPair) twice over (sink +
  // the sort's Thrust-style temp); a CSR slot is a bare PointId plus the
  // small per-point counts array — the same memory therefore holds ~4x
  // more neighbors in CSR mode, which shrinks n_b. `shrink_shift` halves
  // the buffer cap per out-of-memory retry of the context setup.
  const bool pair_mode = policy_.build_mode == TableBuildMode::kPairSort;
  const std::uint64_t bytes_per_slot =
      pair_mode ? 2 * sizeof(NeighborPair) : sizeof(PointId);
  const std::uint64_t counts_reserve_bytes =
      pair_mode ? 0
                : static_cast<std::uint64_t>(index.size()) *
                      sizeof(std::uint32_t);
  auto compute_plan = [&](unsigned shrink_shift) {
    std::uint64_t min_free_bytes =
        std::numeric_limits<std::uint64_t>::max();
    for (const DeviceSlot& slot : slots) {
      min_free_bytes = std::min(min_free_bytes,
                                slot.device->free_global_bytes());
    }
    const std::uint64_t budget_bytes =
        min_free_bytes * 9 / 10 -
        std::min(min_free_bytes * 9 / 10, counts_reserve_bytes);
    std::uint64_t max_buffer_pairs = std::max<std::uint64_t>(
        1, budget_bytes /
               (std::max(1u, policy_.num_streams) * bytes_per_slot));
    max_buffer_pairs =
        std::max<std::uint64_t>(1, max_buffer_pairs >> shrink_shift);
    // With several devices, plan one batch per (device, stream) context so
    // every device contributes even on the variable-buffer path.
    BatchPolicy planning_policy = policy_;
    planning_policy.num_streams = std::max(1u, policy_.num_streams) *
                                  static_cast<unsigned>(slots.size());
    return plan_batches(local_report.estimate.estimated_total,
                        planning_policy, max_buffer_pairs);
  };
  local_report.plan = compute_plan(0);

  NeighborTable table(index.size());

  // Modeled fixed costs on the reference hardware: index upload over the
  // pageable link (parallel across devices -> counted once), the
  // estimation kernel, and page-locking the staging buffers (spread across
  // the devices' hosts in multi-device mode).
  cudasim::Device& first_device = *slots.front().device;
  const auto& cfg = first_device.config();
  const std::uint64_t upload_bytes =
      index.points.size() * sizeof(Point2) +
      index.cells.size() * sizeof(CellRange) +
      index.lookup.size() * sizeof(PointId) +
      index.nonempty_cells.size() * sizeof(std::uint32_t) +
      index.emit_ids.size() * sizeof(PointId) +
      (slots.front().bvh_index ? slots.front().bvh_index->upload_bytes() : 0);
  double modeled_fixed =
      cudasim::modeled_transfer_seconds(cfg, upload_bytes, /*pinned=*/false) +
      local_report.estimate.kernel_stats.modeled_seconds;

  double slowest_stream = 0.0;
  double append_total = 0.0;

  if (policy_.use_shared_kernel && local_report.plan.num_batches == 1 &&
      sink == nullptr) {
    // GPUCalcShared path (single batch only: the block-per-cell mapping is
    // incompatible with the strided batch assignment). First surviving
    // device only; always the pair pipeline — the block-per-cell schedule
    // has no per-thread point to count for CSR slots, and for the same
    // reason it cannot feed a streaming sink (a non-null sink falls
    // through to the batched CSR pipeline). This legacy path has no
    // degradation ladder: a fault here propagates to the caller.
    const BatchPlan& plan = local_report.plan;
    local_report.build_mode = TableBuildMode::kPairSort;
    const gpu::GridDeviceIndex& dev_index = *slots.front().dev_index;
    const GridView first_view = dev_index.view();
    gpu::ResultSetDevice result_sink(first_device, plan.buffer_pairs);
    // kHalf here halves the distance tests but the kernel push_dual's both
    // directions device-side (the result set never crosses PCIe per-batch
    // in this single-batch path), so the sink already holds the full table.
    const cudasim::KernelStats stats = gpu::run_calc_shared(
        first_device, first_view, dev_index.schedule(),
        dev_index.num_nonempty_cells(), eps, result_sink.view(), policy_.scan_mode,
        policy_.block_size, policy_.quality);
    local_report.batches_run = 1;
    local_report.kernel_modeled_seconds = stats.modeled_seconds;
    local_report.atomic_ops += stats.work.atomic_ops;
    local_report.kernel_flops += stats.work.flops;
    local_report.kernel_global_bytes += stats.work.global_bytes;
    if (result_sink.overflowed()) {
      throw std::runtime_error(
          "neighbor table build (shared kernel): batch 0/1 overflowed the "
          "result buffer of " + std::to_string(plan.buffer_pairs) +
          " pairs; the single-batch shared kernel cannot split — use the "
          "batched pipeline for this density");
    }
    const std::uint64_t pairs = result_sink.stored();
    const std::uint64_t bytes = pairs * sizeof(NeighborPair);
    cudasim::sort_by_key(first_device, result_sink.pairs(), pairs,
                         [](const NeighborPair& p) { return p.key; });
    cudasim::PooledPinnedBuffer<NeighborPair> staging(first_device, pairs);
    first_device.blocking_transfer(staging.data(), result_sink.pairs().device_data(),
                                   bytes, false, true);
    hdbscan::ThreadCpuTimer append_timer;
    table.reserve_values(pairs);
    table.append_sorted_batch({staging.data(), pairs});
    append_total = append_timer.seconds();
    local_report.total_pairs = pairs;
    local_report.max_batch_pairs = pairs;
    local_report.sort_modeled_seconds =
        cudasim::modeled_sort_seconds(cfg, bytes);
    local_report.d2h_bytes = bytes;
    slowest_stream = stats.modeled_seconds +
                     local_report.sort_modeled_seconds +
                     cudasim::modeled_transfer_seconds(cfg, bytes, true) +
                     append_total;
    // Page-lock cost only when the pool actually had to pin new memory.
    if (staging.fresh()) {
      modeled_fixed += cudasim::modeled_pinned_alloc_seconds(cfg, bytes);
    }
  } else {
    local_report.used_shared_kernel = false;
    // One context (stream + device buffers + pinned staging + private
    // shard) per (device, stream) pair. Creating them allocates the big
    // result buffers, so this is where a tight device first runs out of
    // memory: each retry halves the buffer cap (growing n_b to match) —
    // bounded by max_alloc_retries — and a device that dies here is
    // dropped and planning redone for the survivors.
    std::vector<std::unique_ptr<StreamContext>> contexts;
    unsigned shrink = 0;
    for (;;) {
      drop_lost_slots();
      if (slots.empty()) {
        if (res.host_fallback) return full_host_fallback();
        throw cudasim::DeviceLost(
            "neighbor table build: every device was lost before batching "
            "started");
      }
      local_report.plan = compute_plan(shrink);
      const std::uint32_t max_batch_points =
          (static_cast<std::uint32_t>(index.size()) +
           local_report.plan.num_batches - 1) /
          local_report.plan.num_batches;
      const auto num_contexts = static_cast<unsigned>(slots.size()) *
                                std::max(1u, policy_.num_streams);
      try {
        for (DeviceSlot& slot : slots) {
          for (unsigned s = 0; s < std::max(1u, policy_.num_streams); ++s) {
            const auto id = static_cast<unsigned>(contexts.size());
            contexts.push_back(std::make_unique<StreamContext>(
                *slot.device, slot.dev_index->view(), policy_.build_mode,
                local_report.plan.buffer_pairs, std::max(1u, max_batch_points),
                id));
            contexts.back()->backend = policy_.index_backend;
            contexts.back()->quality = policy_.quality;
            if (slot.bvh_index) {
              contexts.back()->bvh_view = slot.bvh_index->view();
            }
            contexts.back()->shard.reserve_values(
                local_report.plan.estimated_total_pairs / num_contexts);
          }
        }
        break;
      } catch (const cudasim::DeviceOutOfMemory&) {
        contexts.clear();
        if (shrink >= res.max_alloc_retries) throw;
        ++shrink;
        ++local_report.alloc_retries;
      } catch (const cudasim::DeviceLost&) {
        contexts.clear();  // next iteration drops the dead slot and replans
      }
    }
    const BatchPlan& plan = local_report.plan;
    for (const auto& sc : contexts) {
      // Only buffers the pool had to freshly page-lock are charged; reuse
      // sweeps over N parameter variants pay this once, on the first one.
      modeled_fixed += cudasim::modeled_pinned_alloc_seconds(
                           cfg, sc->fresh_pinned_bytes()) /
                       static_cast<double>(slots.size());
    }

    // All batches start in a shared work queue; each context's pump pops,
    // processes into the private shard, and applies the degradation ladder
    // on faults (see pump()). The rounds loop re-arms pumps on surviving
    // contexts until the queue is dry — this is what makes failover work:
    // an item a dying context pushed back is picked up next round by a
    // survivor, and the strided key sets stay disjoint whoever runs it.
    WorkQueue queue(contexts.size());
    for (std::uint32_t l = 0; l < plan.num_batches; ++l) {
      queue.push(l % contexts.size(),
                 WorkItem{gpu::BatchSpec{l, plan.num_batches}});
    }
    SharedBuildState state;
    const TableBuildMode mode = policy_.build_mode;
    const ScanMode scan = policy_.scan_mode;
    while (!queue.empty()) {
      bool any_live = false;
      for (auto& sc : contexts) {
        if (sc->device.lost()) {
          // A sibling stream's fault may have killed this device before
          // this context's pump ever ran — surface its share regardless.
          queue.orphan_context(sc->timeline_id);
          continue;
        }
        any_live = true;
        StreamContext* scp = sc.get();
        sc->stream.host_fn([scp, &queue, &state, mode, scan, eps,
                            block = policy_.block_size, &res,
                            depth_max = policy_.max_split_depth, sink,
                            materialize, cancel = policy_.cancel,
                            ctx = policy_.trace] {
          // Stream threads outlive any one build; attribute this pump's
          // spans to the request the build serves.
          RequestScope scope(ctx);
          pump(*scp, queue, state, mode, scan, eps, block, res, depth_max,
               sink, materialize, cancel);
        });
      }
      if (!any_live) break;
      // Drain every stream — on every device — before looking at the
      // outcome: an error on one context must never leave another
      // context's in-flight work racing the cleanup below.
      for (auto& sc : contexts) {
        try {
          sc->stream.synchronize();
        } catch (...) {
          state.set_hard_error(std::current_exception());
        }
      }
      if (state.has_hard_error()) break;
    }
    {
      std::lock_guard lock(state.mutex);
      local_report.transient_retries += state.transient_retries;
      local_report.alloc_retries += state.alloc_retries;
      local_report.failover_batches += state.failover_batches;
    }
    if (state.hard_error) {
      // Streams are already drained (the rounds loop synchronizes every
      // context before breaking), so rethrowing here unwinds contexts and
      // device indexes with no op left in flight anywhere.
      std::rethrow_exception(state.hard_error);
    }

    // Whatever is still queued could not run on any device (every context
    // is dead). The last rung: finish exactly those batches on the host —
    // their key sets are disjoint from everything the devices completed,
    // so the shards absorb like any other.
    std::vector<NeighborTable> host_shards;
    if (!queue.empty()) {
      if (!res.host_fallback) {
        const std::size_t unfinished = queue.drain().size();
        throw cudasim::DeviceLost(
            "neighbor table build: all devices lost with " +
            std::to_string(unfinished) + " batches unfinished");
      }
      local_report.used_host_fallback = true;
      // A degraded BVH build must finish its batches under the kernels'
      // *id-based* kHalf cover, not the grid stencil's — mixing ownership
      // rules within one build double-counts the cross pairs whose stencil
      // owner differs from their id owner once the merged table expands.
      // The host rung for the tree backends is the packed STR R-tree
      // (parallel bulk load), searched through the same reordered ids.
      std::optional<RTree> fallback_rtree;
      for (const WorkItem& item : queue.drain()) {
        check_cancel(policy_.cancel);  // host batches are slow; poll each one
        TRACE_SPAN("host", "host_fallback %u/%u", item.spec.batch,
                   item.spec.num_batches);
        if (use_bvh) {
          if (!fallback_rtree) {
            fallback_rtree.emplace(index.points, /*node_capacity=*/16u,
                                   RTreeBuild::kStrParallel);
          }
          host_shards.push_back(build_neighbor_table_host_strided_idrule(
              index, *fallback_rtree, eps, item.spec.batch,
              item.spec.num_batches, policy_.scan_mode, policy_.quality));
        } else {
          host_shards.push_back(build_neighbor_table_host_strided(
              index, eps, item.spec.batch, item.spec.num_batches,
              policy_.scan_mode, policy_.quality));
        }
        ++local_report.host_fallback_batches;
        local_report.total_pairs += host_shards.back().total_pairs();
        if (sink != nullptr) {
          // Deliver the host-built rows one key at a time (the shard's
          // value layout is private). An item whose counts already went
          // out on a device that died later keeps its flag, so the sink
          // derives degrees from the rows only when it must.
          hdbscan::ThreadCpuTimer consume_timer;
          const NeighborTable& shard = host_shards.back();
          const std::uint32_t zero = 0;
          const auto n = static_cast<std::uint32_t>(index.query_count());
          for (std::uint32_t k = item.spec.batch; k < n;
               k += item.spec.num_batches) {
            sink->consume(BatchDelivery{k, /*key_stride=*/1,
                                        policy_.scan_mode,
                                        item.counts_delivered,
                                        {&zero, 1}, shard.neighbors(k), {}});
            ++local_report.sink_batches;
          }
          local_report.sink_consume_seconds += consume_timer.seconds();
        }
      }
    }

    // Merge the per-stream shards into T exactly once (deterministic
    // order), and harvest the context-private tallies. The fan-in is
    // parallel (absorb_shards: disjoint value regions + key ranges, one
    // exact allocation) and skips the collision sweep — the strided
    // batch assignment makes the contexts' and host shards' key sets
    // disjoint by construction, splits and failover included, and the
    // property tests compare the result against serial absorption. A
    // streaming-only build (materialize_table=false) skips the merge
    // entirely: the sink already consumed every row, so T is never
    // assembled and the shard memory is simply dropped.
    double merge_seconds = 0.0;
    if (materialize) {
      TRACE_SPAN("build", "shard_merge");
      std::vector<NeighborTable> parts;
      parts.reserve(contexts.size() + host_shards.size());
      for (auto& sc : contexts) {
        parts.push_back(std::move(sc->shard));
      }
      for (auto& shard : host_shards) {
        parts.push_back(std::move(shard));
      }
      merge_seconds = table.absorb_shards(
          std::move(parts), static_cast<unsigned>(std::max(1, cfg.host_cores)),
          /*check_collisions=*/false);
    }
    for (const auto& sc : contexts) {
      local_report.total_pairs += sc->total_pairs;
      local_report.max_batch_pairs =
          std::max(local_report.max_batch_pairs, sc->max_batch_pairs);
      local_report.batches_run += sc->batches_run;
      local_report.overflow_splits += sc->overflow_splits;
      local_report.kernel_modeled_seconds += sc->kernel_modeled;
      local_report.sort_modeled_seconds += sc->sort_modeled;
      local_report.scan_modeled_seconds += sc->scan_modeled;
      local_report.atomic_ops += sc->atomic_ops;
      local_report.d2h_bytes += sc->d2h_bytes;
      local_report.kernel_flops += sc->kernel_flops;
      local_report.kernel_global_bytes += sc->kernel_global_bytes;
      local_report.sink_batches += sc->sink_batches;
      local_report.sink_count_batches += sc->sink_count_batches;
      local_report.sink_consume_seconds += sc->consume_seconds;
      append_total += sc->append_seconds;
      slowest_stream = std::max(slowest_stream,
                                sc->device_model + sc->append_seconds);
    }
    // The final merge runs after the streams drain; like expand_half it
    // parallelizes on the reference host, so the model charges its
    // critical path (absorb_shards' slowest worker), not its CPU sum.
    modeled_fixed += merge_seconds;
    append_total += merge_seconds;

    // Half-scan builds merged *forward* rows; one host transpose restores
    // the back rows and makes the table identical to a full-scan build.
    // Like the merge it runs after the streams drain, but it parallelizes
    // across rows, so the model charges its critical path over the
    // reference host's cores rather than this machine's. A streaming sink
    // consumed forward rows directly (it unions both directions as rows
    // arrive), so a non-materialized build never pays the transpose.
    if (policy_.scan_mode == ScanMode::kHalf && materialize &&
        policy_.expand_half) {
      TRACE_SPAN("build", "expand_half");
      local_report.expand_seconds = table.expand_half_table(
          static_cast<unsigned>(std::max(1, cfg.host_cores)));
      modeled_fixed += local_report.expand_seconds;
      append_total += local_report.expand_seconds;
      local_report.total_pairs = table.total_pairs();
    }

    // Devices that died during batching (their setup losses were tallied
    // when their slots were dropped).
    for (const DeviceSlot& slot : slots) {
      if (slot.device->lost()) ++local_report.devices_lost;
    }
  }

  // Compose the modeled build time: fixed costs plus the slowest context's
  // timeline (device work + that context's host-side shard appends, which
  // run on its own core on the reference host).
  local_report.shard_fixed_seconds = modeled_fixed;
  local_report.shard_stream_seconds = slowest_stream;
  local_report.modeled_table_seconds = modeled_fixed + slowest_stream;
  local_report.table_seconds = total_timer.seconds();
  publish_build_report(local_report, policy_.metrics_labels);
  if (report != nullptr) *report = local_report;
  return table;
}

}  // namespace hdbscan
