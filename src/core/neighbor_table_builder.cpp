#include "core/neighbor_table_builder.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/timer.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/sort.hpp"
#include "cudasim/stream.hpp"
#include "gpu/device_index.hpp"
#include "gpu/kernels.hpp"
#include "gpu/result_sink.hpp"

namespace hdbscan {

namespace {

constexpr unsigned kMaxSplitDepth = 10;

/// Everything one (device, stream) pair needs to process its batches.
/// All tallies are context-private: the stream thread appends into its own
/// shard of T lock-free, and the builder harvests the numbers after the
/// streams synchronize — the shared mutex never sits on the batch path.
struct StreamContext {
  StreamContext(cudasim::Device& device_in, const GridView& view_in,
                TableBuildMode mode, std::uint64_t buffer_pairs,
                std::uint32_t max_batch_points, unsigned timeline_id_in)
      : device(device_in),
        view(view_in),
        timeline_id(timeline_id_in),
        stream(device_in),
        shard(view_in.num_points) {
    if (mode == TableBuildMode::kPairSort) {
      sink.emplace(device_in, buffer_pairs);
      pair_staging.emplace(device_in, buffer_pairs);
    } else {
      counts.emplace(device_in, max_batch_points);
      values.emplace(device_in, buffer_pairs);
      offsets_staging.emplace(device_in, max_batch_points);
      values_staging.emplace(device_in, buffer_pairs);
    }
  }

  /// Pinned staging footprint (for the modeled page-lock cost).
  [[nodiscard]] std::uint64_t pinned_bytes() const noexcept {
    std::uint64_t b = 0;
    if (pair_staging) b += pair_staging->bytes();
    if (offsets_staging) b += offsets_staging->bytes();
    if (values_staging) b += values_staging->bytes();
    return b;
  }

  cudasim::Device& device;
  GridView view;
  unsigned timeline_id;  ///< index into the per-context model timelines
  cudasim::Stream stream;

  /// Private fraction of T; merged into the final table exactly once.
  NeighborTable shard;

  // --- pair-sort (legacy) pipeline state ---
  std::optional<gpu::ResultSetDevice> sink;
  std::optional<cudasim::PinnedBuffer<NeighborPair>> pair_staging;

  // --- two-pass CSR pipeline state ---
  std::optional<cudasim::DeviceBuffer<std::uint32_t>> counts;
  std::optional<cudasim::DeviceBuffer<PointId>> values;
  std::optional<cudasim::PinnedBuffer<std::uint32_t>> offsets_staging;
  std::optional<cudasim::PinnedBuffer<PointId>> values_staging;

  // --- context-private tallies (harvested after synchronize) ---
  double device_model = 0.0;    ///< modeled device seconds on this timeline
  double append_seconds = 0.0;  ///< measured host CPU time appending into T
  double kernel_modeled = 0.0;
  double sort_modeled = 0.0;
  double scan_modeled = 0.0;
  std::uint64_t total_pairs = 0;
  std::uint64_t max_batch_pairs = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t atomic_ops = 0;
  std::uint32_t batches_run = 0;
  std::uint32_t overflow_splits = 0;
};

struct SharedBuildState {
  std::mutex mutex;  ///< guards first_error only (appends are shard-local)
  std::exception_ptr first_error;
};

/// Legacy pair pipeline: kernel -> device sort_by_key -> D2H pairs ->
/// shard append. Splits recursively on buffer overflow.
void process_batch_pairs(StreamContext& sc, float eps, gpu::BatchSpec spec,
                         unsigned block_size, unsigned depth) {
  if (spec.points_in_batch(sc.view.num_points) == 0) return;

  sc.sink->reset();
  const cudasim::KernelStats stats = gpu::run_calc_global(
      sc.device, sc.view, eps, spec, sc.sink->view(), block_size);
  ++sc.batches_run;
  sc.kernel_modeled += stats.modeled_seconds;
  sc.device_model += stats.modeled_seconds;
  sc.atomic_ops += stats.work.atomic_ops;

  if (sc.sink->overflowed()) {
    if (depth >= kMaxSplitDepth) {
      throw std::runtime_error(
          "neighbor table build: batch overflowed even after splitting; "
          "result buffer too small for the data density");
    }
    ++sc.overflow_splits;
    // (l, n_b) == (l, 2 n_b) u (l + n_b, 2 n_b): same points, half each.
    process_batch_pairs(sc, eps, {spec.batch, spec.num_batches * 2},
                        block_size, depth + 1);
    process_batch_pairs(sc, eps,
                        {spec.batch + spec.num_batches, spec.num_batches * 2},
                        block_size, depth + 1);
    return;
  }

  const std::uint64_t pairs = sc.sink->stored();
  // Group identical keys before shipping R to the host (Alg. 4 line 7).
  cudasim::sort_by_key(sc.device, sc.sink->pairs(), pairs,
                       [](const NeighborPair& p) { return p.key; });
  const std::uint64_t bytes = pairs * sizeof(NeighborPair);
  // D2H into this stream's pinned staging area.
  sc.device.blocking_transfer(sc.pair_staging->data(),
                              sc.sink->pairs().device_data(), bytes,
                              /*to_device=*/false, /*pinned_host=*/true);
  const double sort_s =
      cudasim::modeled_sort_seconds(sc.device.config(), bytes);
  sc.sort_modeled += sort_s;
  sc.device_model +=
      sort_s + cudasim::modeled_transfer_seconds(sc.device.config(), bytes,
                                                 /*pinned=*/true);
  sc.d2h_bytes += bytes;
  // Host side: append this batch into the context's private shard — no
  // lock; shards merge after all streams drain.
  hdbscan::ThreadCpuTimer append_timer;
  sc.shard.append_sorted_batch({sc.pair_staging->data(), pairs});
  sc.append_seconds += append_timer.seconds();
  sc.total_pairs += pairs;
  sc.max_batch_pairs = std::max(sc.max_batch_pairs, pairs);
}

/// Two-pass CSR pipeline: count kernel -> exclusive scan (exact batch
/// size) -> fill kernel into exact slots -> D2H offsets + values -> shard
/// append. A batch whose exact size exceeds the value buffer splits
/// *before* any fill work runs.
void process_batch_csr(StreamContext& sc, float eps, gpu::BatchSpec spec,
                       unsigned block_size, unsigned depth) {
  const std::uint32_t pts = spec.points_in_batch(sc.view.num_points);
  if (pts == 0) return;

  const cudasim::KernelStats count_stats = gpu::run_count_batch(
      sc.device, sc.view, eps, spec, sc.counts->device_data(), block_size);
  ++sc.batches_run;
  sc.kernel_modeled += count_stats.modeled_seconds;
  sc.device_model += count_stats.modeled_seconds;
  sc.atomic_ops += count_stats.work.atomic_ops;

  // Exact batch size; counts become exclusive CSR offsets in place.
  const std::uint64_t total = cudasim::exclusive_scan(sc.device, *sc.counts,
                                                      pts);
  const double scan_s = cudasim::modeled_scan_seconds(
      sc.device.config(), pts * sizeof(std::uint32_t));
  sc.scan_modeled += scan_s;
  sc.device_model += scan_s;

  if (total > sc.values->size()) {
    if (depth >= kMaxSplitDepth) {
      throw std::runtime_error(
          "neighbor table build: batch exceeds the result buffer even "
          "after splitting; buffer too small for the data density");
    }
    ++sc.overflow_splits;
    process_batch_csr(sc, eps, {spec.batch, spec.num_batches * 2},
                      block_size, depth + 1);
    process_batch_csr(sc, eps,
                      {spec.batch + spec.num_batches, spec.num_batches * 2},
                      block_size, depth + 1);
    return;
  }

  const cudasim::KernelStats fill_stats = gpu::run_fill_csr(
      sc.device, sc.view, eps, spec, sc.counts->device_data(),
      sc.values->device_data(), block_size);
  sc.kernel_modeled += fill_stats.modeled_seconds;
  sc.device_model += fill_stats.modeled_seconds;
  sc.atomic_ops += fill_stats.work.atomic_ops;

  // D2H: per-point offsets (tiny) + bare values — no NeighborPair keys on
  // the wire, so about half the bytes of the pair pipeline.
  const std::uint64_t offset_bytes = pts * sizeof(std::uint32_t);
  const std::uint64_t value_bytes = total * sizeof(PointId);
  sc.device.blocking_transfer(sc.offsets_staging->data(),
                              sc.counts->device_data(), offset_bytes,
                              /*to_device=*/false, /*pinned_host=*/true);
  sc.device.blocking_transfer(sc.values_staging->data(),
                              sc.values->device_data(), value_bytes,
                              /*to_device=*/false, /*pinned_host=*/true);
  sc.device_model +=
      cudasim::modeled_transfer_seconds(sc.device.config(), offset_bytes,
                                        /*pinned=*/true) +
      cudasim::modeled_transfer_seconds(sc.device.config(), value_bytes,
                                        /*pinned=*/true);
  sc.d2h_bytes += offset_bytes + value_bytes;

  hdbscan::ThreadCpuTimer append_timer;
  sc.shard.append_csr_batch(spec.batch, spec.num_batches,
                            {sc.offsets_staging->data(), pts},
                            {sc.values_staging->data(), total});
  sc.append_seconds += append_timer.seconds();
  sc.total_pairs += total;
  sc.max_batch_pairs = std::max(sc.max_batch_pairs, total);
}

void process_batch(StreamContext& sc, TableBuildMode mode, float eps,
                   gpu::BatchSpec spec, unsigned block_size) {
  if (mode == TableBuildMode::kPairSort) {
    process_batch_pairs(sc, eps, spec, block_size, 0);
  } else {
    process_batch_csr(sc, eps, spec, block_size, 0);
  }
}

}  // namespace

NeighborTableBuilder::NeighborTableBuilder(
    std::vector<cudasim::Device*> devices, BatchPolicy policy)
    : devices_(std::move(devices)), policy_(policy) {
  if (devices_.empty()) {
    throw std::invalid_argument("NeighborTableBuilder: no devices");
  }
  for (const cudasim::Device* d : devices_) {
    if (d == nullptr) {
      throw std::invalid_argument("NeighborTableBuilder: null device");
    }
  }
}

NeighborTable NeighborTableBuilder::build(const GridIndex& index, float eps,
                                          BuildReport* report) {
  WallTimer total_timer;
  BuildReport local_report;
  local_report.used_shared_kernel = policy_.use_shared_kernel;
  local_report.build_mode = policy_.build_mode;

  // Upload the index once per device (pageable host memory, as in the
  // paper: only the result set uses the pinned staging path). Multi-device
  // mode replicates the index, exactly like a GPU-per-node deployment
  // (the direction of Mr. Scan, the paper's citation [7]).
  std::vector<std::unique_ptr<gpu::GridDeviceIndex>> device_indexes;
  device_indexes.reserve(devices_.size());
  for (cudasim::Device* device : devices_) {
    cudasim::Stream upload_stream(*device);
    device_indexes.push_back(
        std::make_unique<gpu::GridDeviceIndex>(*device, upload_stream, index));
    upload_stream.synchronize();
  }
  cudasim::Device& first_device = *devices_.front();
  const GridView first_view = device_indexes.front()->view();

  // Estimate the result-set size from a 1% sample (negligible cost), or
  // take the caller's figure when provided.
  if (policy_.estimated_total_override != 0) {
    local_report.estimate.estimated_total = policy_.estimated_total_override;
    local_report.estimate.sampled_pairs = policy_.estimated_total_override;
    local_report.estimate.sample_stride = 1;
  } else {
    WallTimer est_timer;
    local_report.estimate =
        estimate_result_size(first_device, first_view, eps,
                             policy_.sample_fraction, policy_.block_size);
    local_report.estimate_seconds = est_timer.seconds();
    local_report.atomic_ops +=
        local_report.estimate.kernel_stats.work.atomic_ops;
  }

  // Plan n_b and b_b, capping the buffers so that num_streams result
  // buffers and their scratch never exceed any device's free memory. A
  // pair-mode slot costs sizeof(NeighborPair) twice over (sink + the
  // sort's Thrust-style temp); a CSR slot is a bare PointId plus the small
  // per-point counts array — the same memory therefore holds ~4x more
  // neighbors in CSR mode, which shrinks n_b.
  std::uint64_t min_free_bytes = first_device.free_global_bytes();
  for (const cudasim::Device* d : devices_) {
    min_free_bytes = std::min(min_free_bytes, d->free_global_bytes());
  }
  const bool pair_mode = policy_.build_mode == TableBuildMode::kPairSort;
  const std::uint64_t bytes_per_slot =
      pair_mode ? 2 * sizeof(NeighborPair) : sizeof(PointId);
  const std::uint64_t counts_reserve_bytes =
      pair_mode ? 0
                : static_cast<std::uint64_t>(index.size()) *
                      sizeof(std::uint32_t);
  const std::uint64_t budget_bytes =
      min_free_bytes * 9 / 10 -
      std::min(min_free_bytes * 9 / 10, counts_reserve_bytes);
  const std::uint64_t max_buffer_pairs = std::max<std::uint64_t>(
      1, budget_bytes /
             (std::max(1u, policy_.num_streams) * bytes_per_slot));
  // With several devices, plan one batch per (device, stream) context so
  // every device contributes even on the variable-buffer path.
  BatchPolicy planning_policy = policy_;
  planning_policy.num_streams = std::max(1u, policy_.num_streams) *
                                static_cast<unsigned>(devices_.size());
  local_report.plan = plan_batches(local_report.estimate.estimated_total,
                                   planning_policy, max_buffer_pairs);
  const BatchPlan& plan = local_report.plan;

  const auto num_contexts = static_cast<unsigned>(devices_.size()) *
                            std::max(1u, policy_.num_streams);
  NeighborTable table(index.size());
  SharedBuildState state;

  // Modeled fixed costs on the reference hardware: index upload over the
  // pageable link (parallel across devices -> counted once), the
  // estimation kernel, and page-locking the staging buffers (spread across
  // the devices' hosts in multi-device mode).
  const auto& cfg = first_device.config();
  const std::uint64_t upload_bytes =
      index.points.size() * sizeof(Point2) +
      index.cells.size() * sizeof(CellRange) +
      index.lookup.size() * sizeof(PointId) +
      index.nonempty_cells.size() * sizeof(std::uint32_t);
  double modeled_fixed =
      cudasim::modeled_transfer_seconds(cfg, upload_bytes, /*pinned=*/false) +
      local_report.estimate.kernel_stats.modeled_seconds;

  double slowest_stream = 0.0;
  double append_total = 0.0;

  if (policy_.use_shared_kernel && plan.num_batches == 1) {
    // GPUCalcShared path (single batch only: the block-per-cell mapping is
    // incompatible with the strided batch assignment). First device only;
    // always the pair pipeline — the block-per-cell schedule has no
    // per-thread point to count for CSR slots.
    local_report.build_mode = TableBuildMode::kPairSort;
    gpu::ResultSetDevice sink(first_device, plan.buffer_pairs);
    const cudasim::KernelStats stats = gpu::run_calc_shared(
        first_device, first_view, device_indexes.front()->schedule(),
        device_indexes.front()->num_nonempty_cells(), eps, sink.view(),
        policy_.block_size);
    local_report.batches_run = 1;
    local_report.kernel_modeled_seconds = stats.modeled_seconds;
    local_report.atomic_ops += stats.work.atomic_ops;
    if (sink.overflowed()) {
      throw std::runtime_error(
          "neighbor table build (shared kernel): result buffer overflow");
    }
    const std::uint64_t pairs = sink.stored();
    const std::uint64_t bytes = pairs * sizeof(NeighborPair);
    cudasim::sort_by_key(first_device, sink.pairs(), pairs,
                         [](const NeighborPair& p) { return p.key; });
    cudasim::PinnedBuffer<NeighborPair> staging(first_device, pairs);
    first_device.blocking_transfer(staging.data(), sink.pairs().device_data(),
                                   bytes, false, true);
    hdbscan::ThreadCpuTimer append_timer;
    table.reserve_values(pairs);
    table.append_sorted_batch({staging.data(), pairs});
    append_total = append_timer.seconds();
    local_report.total_pairs = pairs;
    local_report.max_batch_pairs = pairs;
    local_report.sort_modeled_seconds =
        cudasim::modeled_sort_seconds(cfg, bytes);
    local_report.d2h_bytes = bytes;
    slowest_stream = stats.modeled_seconds +
                     local_report.sort_modeled_seconds +
                     cudasim::modeled_transfer_seconds(cfg, bytes, true) +
                     append_total;
    modeled_fixed += cudasim::modeled_pinned_alloc_seconds(cfg, bytes);
  } else {
    local_report.used_shared_kernel = false;
    // Largest point count any batch can see (splits only shrink batches).
    const std::uint32_t max_batch_points =
        (static_cast<std::uint32_t>(index.size()) + plan.num_batches - 1) /
        plan.num_batches;
    // One context (stream + device buffers + pinned staging + private
    // shard) per (device, stream) pair.
    std::vector<std::unique_ptr<StreamContext>> contexts;
    contexts.reserve(num_contexts);
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      for (unsigned s = 0; s < std::max(1u, policy_.num_streams); ++s) {
        const auto id = static_cast<unsigned>(contexts.size());
        contexts.push_back(std::make_unique<StreamContext>(
            *devices_[d], device_indexes[d]->view(), policy_.build_mode,
            plan.buffer_pairs, std::max(1u, max_batch_points), id));
        contexts.back()->shard.reserve_values(plan.estimated_total_pairs /
                                              num_contexts);
        modeled_fixed += cudasim::modeled_pinned_alloc_seconds(
                             cfg, contexts.back()->pinned_bytes()) /
                         static_cast<double>(devices_.size());
      }
    }
    // Round-robin the batches; each context serializes its own batches and
    // overlaps with the others (kernel / scan-or-sort / transfer / host
    // append into the private shard).
    const TableBuildMode mode = policy_.build_mode;
    for (std::uint32_t l = 0; l < plan.num_batches; ++l) {
      StreamContext& sc = *contexts[l % contexts.size()];
      const gpu::BatchSpec spec{l, plan.num_batches};
      sc.stream.host_fn([mode, eps, spec, block = policy_.block_size, &sc,
                         &state] {
        try {
          process_batch(sc, mode, eps, spec, block);
        } catch (...) {
          std::lock_guard lock(state.mutex);
          if (!state.first_error) state.first_error = std::current_exception();
        }
      });
    }
    for (auto& sc : contexts) sc->stream.synchronize();
    if (state.first_error) std::rethrow_exception(state.first_error);

    // Merge the per-stream shards into T exactly once (deterministic
    // order), and harvest the context-private tallies.
    table.reserve_values(plan.estimated_total_pairs);
    hdbscan::ThreadCpuTimer merge_timer;
    for (auto& sc : contexts) {
      table.absorb_shard(std::move(sc->shard));
    }
    const double merge_seconds = merge_timer.seconds();
    for (const auto& sc : contexts) {
      local_report.total_pairs += sc->total_pairs;
      local_report.max_batch_pairs =
          std::max(local_report.max_batch_pairs, sc->max_batch_pairs);
      local_report.batches_run += sc->batches_run;
      local_report.overflow_splits += sc->overflow_splits;
      local_report.kernel_modeled_seconds += sc->kernel_modeled;
      local_report.sort_modeled_seconds += sc->sort_modeled;
      local_report.scan_modeled_seconds += sc->scan_modeled;
      local_report.atomic_ops += sc->atomic_ops;
      local_report.d2h_bytes += sc->d2h_bytes;
      append_total += sc->append_seconds;
      slowest_stream = std::max(slowest_stream,
                                sc->device_model + sc->append_seconds);
    }
    // The single final merge is serial host work after the streams drain.
    modeled_fixed += merge_seconds;
    append_total += merge_seconds;
  }

  // Compose the modeled build time: fixed costs plus the slowest context's
  // timeline (device work + that context's host-side shard appends, which
  // run on its own core on the reference host).
  local_report.modeled_table_seconds = modeled_fixed + slowest_stream;
  local_report.table_seconds = total_timer.seconds();
  if (report != nullptr) *report = local_report;
  return table;
}

}  // namespace hdbscan
