#include "core/fused_clustering.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/timer.hpp"
#include "core/report_metrics.hpp"
#include "cudasim/error.hpp"
#include "cudasim/sort.hpp"
#include "cudasim/stream.hpp"
#include "gpu/bvh_device_index.hpp"
#include "gpu/device_index.hpp"
#include "gpu/kernels.hpp"
#include "index/bvh.hpp"
#include "index/rtree.hpp"
#include "obs/trace.hpp"

namespace hdbscan {

namespace {

/// One (device, stream) traversal lane. Fused contexts hold no result
/// buffers at all — the only per-context state is the stream, the device
/// index view(s) and the private tallies harvested after the drain.
struct FusedContext {
  FusedContext(cudasim::Device& device_in, unsigned timeline_id_in)
      : device(device_in), timeline_id(timeline_id_in), stream(device_in) {}

  cudasim::Device& device;
  GridView view{};     ///< kGrid traversal + batch-domain arithmetic
  BvhView bvh_view{};  ///< kBvh traversal
  IndexBackend backend = IndexBackend::kGrid;
  unsigned timeline_id;
  cudasim::Stream stream;

  double device_model = 0.0;
  double kernel_modeled = 0.0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t kernel_flops = 0;
  std::uint64_t kernel_global_bytes = 0;
  std::uint32_t batches_run = 0;
};

struct FusedWorkItem {
  gpu::BatchSpec spec;
  unsigned transient_retries = 0;
};

/// Same shape as the table builder's queue: per-context sub-queues plus an
/// orphan pool for failover. Fused batches never split (nothing can
/// overflow), so items move whole.
class FusedWorkQueue {
 public:
  explicit FusedWorkQueue(std::size_t num_contexts) : owned_(num_contexts) {}

  void push(std::size_t ctx, FusedWorkItem item) {
    std::lock_guard lock(mutex_);
    owned_[ctx].push_back(item);
  }
  void push_orphan(FusedWorkItem item) {
    std::lock_guard lock(mutex_);
    orphans_.push_back(item);
  }
  void orphan_context(std::size_t ctx) {
    std::lock_guard lock(mutex_);
    while (!owned_[ctx].empty()) {
      orphans_.push_back(owned_[ctx].front());
      owned_[ctx].pop_front();
    }
  }
  bool pop(std::size_t ctx, FusedWorkItem& out) {
    std::lock_guard lock(mutex_);
    if (!owned_[ctx].empty()) {
      out = owned_[ctx].front();
      owned_[ctx].pop_front();
      return true;
    }
    if (!orphans_.empty()) {
      out = orphans_.front();
      orphans_.pop_front();
      return true;
    }
    return false;
  }
  [[nodiscard]] bool empty() {
    std::lock_guard lock(mutex_);
    if (!orphans_.empty()) return false;
    for (const auto& q : owned_) {
      if (!q.empty()) return false;
    }
    return true;
  }
  [[nodiscard]] std::vector<FusedWorkItem> drain() {
    std::lock_guard lock(mutex_);
    std::vector<FusedWorkItem> v(orphans_.begin(), orphans_.end());
    orphans_.clear();
    for (auto& q : owned_) {
      v.insert(v.end(), q.begin(), q.end());
      q.clear();
    }
    return v;
  }

 private:
  std::mutex mutex_;
  std::vector<std::deque<FusedWorkItem>> owned_;
  std::deque<FusedWorkItem> orphans_;
};

struct FusedSharedState {
  std::mutex mutex;
  std::exception_ptr hard_error;
  std::uint32_t transient_retries = 0;
  std::uint32_t failover_batches = 0;

  void set_hard_error(std::exception_ptr e) {
    std::lock_guard lock(mutex);
    if (!hard_error) hard_error = std::move(e);
  }
  [[nodiscard]] bool has_hard_error() {
    std::lock_guard lock(mutex);
    return hard_error != nullptr;
  }
};

/// One context's pump. The fused ladder is the table builder's minus the
/// out-of-memory rung (a fused launch allocates nothing): transient faults
/// retry the launch — injected faults fire before any block executes, so
/// a faulted launch mutated no degree, no parent and parked no edge, and
/// the retry re-traverses from a clean slate — and a lost device's items
/// go to the orphan pool for the survivors.
void fused_pump(FusedContext& fc, FusedWorkQueue& queue,
                FusedSharedState& state, float eps, ScanMode scan,
                unsigned block_size, QualitySpec quality,
                StreamingDbscan& consumer, const ResiliencePolicy& res,
                const CancelToken* cancel) {
  const std::size_t ctx = fc.timeline_id;
  FusedWorkItem item;
  while (queue.pop(ctx, item)) {
    if (state.has_hard_error()) {
      queue.push(ctx, item);
      return;
    }
    if (cancel != nullptr && cancel->cancelled()) {
      queue.push(ctx, item);
      state.set_hard_error(
          std::make_exception_ptr(OperationCancelled(cancel->reason())));
      return;
    }
    try {
      const gpu::BatchSpec spec = item.spec;
      if (spec.points_in_batch(fc.view.query_count()) == 0) continue;
      TRACE_SPAN("fused", "fused_batch %u/%u d%u", spec.batch,
                 spec.num_batches, fc.device.id());
      const cudasim::KernelStats stats =
          fc.backend == IndexBackend::kBvh
              ? gpu::run_fused_batch(fc.device, fc.bvh_view, eps, spec,
                                     consumer, scan, block_size, quality)
              : gpu::run_fused_batch(fc.device, fc.view, eps, spec,
                                     consumer, scan, block_size, quality);
      ++fc.batches_run;
      fc.kernel_modeled += stats.modeled_seconds;
      fc.device_model += stats.modeled_seconds;
      fc.atomic_ops += stats.work.atomic_ops;
      fc.kernel_flops += stats.work.flops;
      fc.kernel_global_bytes += stats.work.global_bytes;
    } catch (const cudasim::TransientKernelFault&) {
      if (item.transient_retries < res.max_transient_retries) {
        ++item.transient_retries;
        TRACE_INSTANT("resilience", "fused_retry %u/%u try=%u",
                      item.spec.batch, item.spec.num_batches,
                      item.transient_retries);
        {
          std::lock_guard lock(state.mutex);
          ++state.transient_retries;
        }
        queue.push(ctx, item);
        continue;
      }
      state.set_hard_error(std::current_exception());
      return;
    } catch (const cudasim::DeviceLost&) {
      if (res.failover || res.host_fallback) {
        TRACE_INSTANT("resilience", "fused_failover %u/%u", item.spec.batch,
                      item.spec.num_batches);
        {
          std::lock_guard lock(state.mutex);
          ++state.failover_batches;
        }
        queue.push_orphan(item);
        queue.orphan_context(ctx);
        return;
      }
      state.set_hard_error(std::current_exception());
      return;
    } catch (...) {
      state.set_hard_error(std::current_exception());
      return;
    }
  }
}

}  // namespace

BuildReport fused_cluster(const std::vector<cudasim::Device*>& devices,
                          const GridIndex& index, float eps,
                          StreamingDbscan& consumer,
                          const BatchPolicy& policy) {
  TRACE_SPAN("fused", "fused_cluster n=%zu", index.size());
  if (devices.empty()) {
    throw std::invalid_argument("fused_cluster: no devices");
  }
  for (const cudasim::Device* d : devices) {
    if (d == nullptr) throw std::invalid_argument("fused_cluster: null device");
  }
  if (!index.emit_ids.empty() || index.query_count() != index.size()) {
    throw std::invalid_argument(
        "fused_cluster: whole-index builds only — the fused kernels union "
        "global ids directly, so sharded slabs must use the table pipelines");
  }
  if (consumer.num_points() != index.size()) {
    throw std::invalid_argument(
        "fused_cluster: consumer id space does not match the index");
  }
  check_cancel(policy.cancel);
  WallTimer total_timer;
  BuildReport report;
  report.fused = true;
  report.streamed = true;
  report.table_materialized = false;
  report.build_mode = policy.build_mode;
  report.scan_mode = policy.scan_mode;
  report.index_backend = policy.index_backend;
  const ResiliencePolicy& res = policy.resilience;
  const bool use_bvh = policy.index_backend == IndexBackend::kBvh;
  const ScanMode scan = policy.scan_mode;

  // The host fallback: complete unfinished strided batches by delivering
  // host-searched rows into the same consumer, under the *same* ownership
  // rule the device kernels used — the grid's forward stencil for kGrid,
  // the R-tree/BVH id rule (partner id >= key, self included) for kBvh.
  // Mixing rules would deliver some cross pairs twice and double their
  // degree contributions.
  std::optional<RTree> fallback_rtree;
  auto host_finish = [&](const FusedWorkItem& item) {
    TRACE_SPAN("host", "fused_host_fallback %u/%u", item.spec.batch,
               item.spec.num_batches);
    if (use_bvh && !fallback_rtree) {
      fallback_rtree.emplace(index.points, /*node_capacity=*/16u,
                             RTreeBuild::kStrParallel);
    }
    const auto n = static_cast<std::uint32_t>(index.query_count());
    const std::uint32_t zero = 0;
    std::vector<PointId> row;
    std::vector<PointId> scratch;
    hdbscan::ThreadCpuTimer consume_timer;
    for (std::uint32_t k = item.spec.batch; k < n;
         k += item.spec.num_batches) {
      check_cancel(policy.cancel);
      row.clear();
      if (use_bvh) {
        scratch.clear();
        fallback_rtree->query_circle(index.points[k], eps, scratch);
        for (const PointId v : scratch) {
          if (scan == ScanMode::kHalf && v < k) continue;
          row.push_back(v);
        }
      } else if (scan == ScanMode::kHalf) {
        grid_query_forward(index, k, eps, row);
      } else {
        grid_query(index, index.points[k], eps, row);
      }
      if (policy.quality.sampled()) {
        // Same Bernoulli filter the fused kernels apply, on the same
        // (key, partner) ids — a host-finished batch keeps the sample.
        std::erase_if(row, [&](PointId v) {
          return !policy.quality.keep_pair(k, v);
        });
      }
      consumer.consume(BatchDelivery{k, /*key_stride=*/1, scan,
                                     /*counts_delivered=*/false,
                                     {&zero, 1}, row, {}});
      ++report.sink_batches;
    }
    report.sink_consume_seconds += consume_timer.seconds();
    ++report.host_fallback_batches;
  };

  // Upload only what the chosen backend traverses: the grid arrays for
  // kGrid, the packed BVH for kBvh. There is no estimation kernel — with
  // no result buffers there is nothing to size — which is also why the
  // BVH backend skips the grid upload entirely here, unlike the table
  // builder.
  struct FusedSlot {
    cudasim::Device* device;
    std::unique_ptr<gpu::GridDeviceIndex> grid_index;
    std::unique_ptr<gpu::BvhDeviceIndex> bvh_index;
  };
  std::optional<BvhIndex> host_bvh;
  if (use_bvh) {
    TRACE_SPAN("fused", "bvh_build n=%zu", index.size());
    host_bvh.emplace(build_bvh_index(index.points));
  }
  std::vector<FusedSlot> slots;
  slots.reserve(devices.size());
  std::exception_ptr setup_error;
  std::uint64_t upload_bytes = 0;
  for (cudasim::Device* device : devices) {
    try {
      TRACE_SPAN("fused", "index_upload d%u", device->id());
      cudasim::Stream upload_stream(*device);
      FusedSlot slot{device, nullptr, nullptr};
      if (use_bvh) {
        slot.bvh_index = std::make_unique<gpu::BvhDeviceIndex>(
            *device, upload_stream, *host_bvh);
      } else {
        slot.grid_index = std::make_unique<gpu::GridDeviceIndex>(
            *device, upload_stream, index);
      }
      upload_stream.synchronize();
      if (upload_bytes == 0) {
        upload_bytes =
            use_bvh ? slot.bvh_index->upload_bytes()
                    : index.points.size() * sizeof(Point2) +
                          index.cells.size() * sizeof(CellRange) +
                          index.lookup.size() * sizeof(PointId) +
                          index.nonempty_cells.size() * sizeof(std::uint32_t);
      }
      slots.push_back(std::move(slot));
    } catch (const cudasim::DeviceOutOfMemory&) {
      ++report.devices_lost;
      if (!setup_error) setup_error = std::current_exception();
    } catch (const cudasim::DeviceLost&) {
      ++report.devices_lost;
      if (!setup_error) setup_error = std::current_exception();
    }
  }

  double modeled_fixed = 0.0;
  double slowest_stream = 0.0;
  std::vector<std::unique_ptr<FusedContext>> contexts;

  if (slots.empty()) {
    if (!res.host_fallback) std::rethrow_exception(setup_error);
    report.used_host_fallback = true;
    host_finish(FusedWorkItem{gpu::BatchSpec{0, 1}});
  } else {
    const auto& cfg = slots.front().device->config();
    modeled_fixed = cudasim::modeled_transfer_seconds(cfg, upload_bytes,
                                                      /*pinned=*/false);

    for (FusedSlot& slot : slots) {
      for (unsigned s = 0; s < std::max(1u, policy.num_streams); ++s) {
        const auto id = static_cast<unsigned>(contexts.size());
        contexts.push_back(std::make_unique<FusedContext>(*slot.device, id));
        contexts.back()->backend = policy.index_backend;
        if (use_bvh) {
          contexts.back()->bvh_view = slot.bvh_index->view();
          // The grid view is absent; only query_count() is consulted, so a
          // minimal view carries the batch domain.
          contexts.back()->view.num_points =
              static_cast<std::uint32_t>(index.size());
          contexts.back()->view.num_query =
              static_cast<std::uint32_t>(index.query_count());
        } else {
          contexts.back()->view = slot.grid_index->view();
        }
      }
    }

    // Enough strided batches that every context gets two waves — failover
    // granularity and stream overlap without per-batch buffer planning.
    const auto num_batches = static_cast<std::uint32_t>(
        std::max<std::size_t>(1, contexts.size() * 2));
    report.plan.num_batches = num_batches;
    FusedWorkQueue queue(contexts.size());
    for (std::uint32_t l = 0; l < num_batches; ++l) {
      queue.push(l % contexts.size(),
                 FusedWorkItem{gpu::BatchSpec{l, num_batches}});
    }
    FusedSharedState state;
    while (!queue.empty()) {
      bool any_live = false;
      for (auto& fc : contexts) {
        if (fc->device.lost()) {
          queue.orphan_context(fc->timeline_id);
          continue;
        }
        any_live = true;
        FusedContext* fcp = fc.get();
        fc->stream.host_fn([fcp, &queue, &state, eps, scan,
                            block = policy.block_size,
                            quality = policy.quality, &consumer, &res,
                            cancel = policy.cancel, ctx = policy.trace] {
          RequestScope scope(ctx);
          fused_pump(*fcp, queue, state, eps, scan, block, quality, consumer,
                     res, cancel);
        });
      }
      if (!any_live) break;
      for (auto& fc : contexts) {
        try {
          fc->stream.synchronize();
        } catch (...) {
          state.set_hard_error(std::current_exception());
        }
      }
      if (state.has_hard_error()) break;
    }
    {
      std::lock_guard lock(state.mutex);
      report.transient_retries += state.transient_retries;
      report.failover_batches += state.failover_batches;
    }
    if (state.hard_error) std::rethrow_exception(state.hard_error);

    if (!queue.empty()) {
      if (!res.host_fallback) {
        const std::size_t unfinished = queue.drain().size();
        throw cudasim::DeviceLost(
            "fused_cluster: all devices lost with " +
            std::to_string(unfinished) + " batches unfinished");
      }
      report.used_host_fallback = true;
      for (const FusedWorkItem& item : queue.drain()) host_finish(item);
    }

    for (const auto& fc : contexts) {
      report.batches_run += fc->batches_run;
      report.kernel_modeled_seconds += fc->kernel_modeled;
      report.atomic_ops += fc->atomic_ops;
      report.kernel_flops += fc->kernel_flops;
      report.kernel_global_bytes += fc->kernel_global_bytes;
      slowest_stream = std::max(slowest_stream, fc->device_model);
    }
    for (const FusedSlot& slot : slots) {
      if (slot.device->lost()) ++report.devices_lost;
    }
  }

  // The only result bytes that cross PCIe are the parked (undecided)
  // edges; they ride the pinned staging path like every other result
  // transfer and are charged to the serial share — each flush is tiny and
  // asynchronous on real hardware, so billing them once at the end is the
  // conservative bound.
  const StreamingDbscan::Stats& st = consumer.stats();
  const std::uint64_t parked_bytes = st.fused_parked * sizeof(NeighborPair);
  report.d2h_bytes = parked_bytes;
  if (parked_bytes != 0 && !slots.empty()) {
    modeled_fixed += cudasim::modeled_transfer_seconds(
        slots.front().device->config(), parked_bytes, /*pinned=*/true);
  }
  report.total_pairs = st.edges_seen;
  report.shard_fixed_seconds = modeled_fixed;
  report.shard_stream_seconds = slowest_stream;
  report.modeled_table_seconds = modeled_fixed + slowest_stream;
  report.table_seconds = total_timer.seconds();
  publish_build_report(report, policy.metrics_labels);
  return report;
}

BuildReport fused_cluster(cudasim::Device& device, const GridIndex& index,
                          float eps, StreamingDbscan& consumer,
                          const BatchPolicy& policy) {
  return fused_cluster(std::vector<cudasim::Device*>{&device}, index, eps,
                       consumer, policy);
}

}  // namespace hdbscan
