#include "core/report_metrics.hpp"

#include <string>

#include "obs/registry.hpp"

namespace hdbscan {

namespace {

/// Mirrors one DeviceMetrics snapshot under the given label set. Gauges,
/// not counters: the values are themselves cumulative snapshots, so
/// re-publishing must overwrite, not add.
void publish_device_metrics_labeled(const std::string& labels,
                                    const cudasim::DeviceMetrics& m) {
  obs::Registry& r = obs::Registry::global();
  r.gauge("cudasim_kernel_launches", labels)
      .set(static_cast<double>(m.kernel_launches));
  r.gauge("cudasim_kernel_modeled_seconds", labels)
      .set(m.kernel_modeled_seconds);
  r.gauge("cudasim_kernel_wall_seconds", labels).set(m.kernel_wall_seconds);
  r.gauge("cudasim_h2d_bytes", labels).set(static_cast<double>(m.h2d_bytes));
  r.gauge("cudasim_d2h_bytes", labels).set(static_cast<double>(m.d2h_bytes));
  r.gauge("cudasim_transfer_seconds", labels).set(m.transfer_seconds);
  r.gauge("cudasim_pinned_alloc_seconds", labels)
      .set(m.pinned_alloc_seconds);
  r.gauge("cudasim_sort_seconds", labels).set(m.sort_seconds);
  r.gauge("cudasim_scan_seconds", labels).set(m.scan_seconds);
  r.gauge("cudasim_peak_mem_bytes", labels)
      .set(static_cast<double>(m.peak_mem_bytes));
  r.gauge("cudasim_injected_oom_faults", labels)
      .set(static_cast<double>(m.injected_oom_faults));
  r.gauge("cudasim_injected_transient_faults", labels)
      .set(static_cast<double>(m.injected_transient_faults));
  r.gauge("cudasim_degraded_transfers", labels)
      .set(static_cast<double>(m.degraded_transfers));
  r.gauge("cudasim_refused_ops", labels)
      .set(static_cast<double>(m.refused_ops));
  r.gauge("cudasim_device_lost", labels).set(m.device_lost ? 1.0 : 0.0);
  r.gauge("cudasim_pool_device_hits", labels)
      .set(static_cast<double>(m.pool_device_hits));
  r.gauge("cudasim_pool_device_misses", labels)
      .set(static_cast<double>(m.pool_device_misses));
  r.gauge("cudasim_pool_pinned_hits", labels)
      .set(static_cast<double>(m.pool_pinned_hits));
  r.gauge("cudasim_pool_pinned_misses", labels)
      .set(static_cast<double>(m.pool_pinned_misses));
  r.gauge("cudasim_pool_trim_bytes", labels)
      .set(static_cast<double>(m.pool_trim_bytes));
}

}  // namespace

void publish_device_metrics(std::uint32_t device_id,
                            const cudasim::DeviceMetrics& m) {
  publish_device_metrics_labeled("device=" + std::to_string(device_id), m);
}

void publish_fleet_metrics(std::span<const cudasim::DeviceMetrics> devices) {
  cudasim::DeviceMetrics sum;
  for (const cudasim::DeviceMetrics& m : devices) {
    sum.kernel_launches += m.kernel_launches;
    sum.kernel_modeled_seconds += m.kernel_modeled_seconds;
    sum.kernel_wall_seconds += m.kernel_wall_seconds;
    sum.h2d_bytes += m.h2d_bytes;
    sum.d2h_bytes += m.d2h_bytes;
    sum.transfer_seconds += m.transfer_seconds;
    sum.pinned_alloc_seconds += m.pinned_alloc_seconds;
    sum.sort_seconds += m.sort_seconds;
    sum.scan_seconds += m.scan_seconds;
    sum.current_mem_bytes += m.current_mem_bytes;
    sum.peak_mem_bytes += m.peak_mem_bytes;  // upper bound: peaks may not align
    sum.pool_device_hits += m.pool_device_hits;
    sum.pool_device_misses += m.pool_device_misses;
    sum.pool_pinned_hits += m.pool_pinned_hits;
    sum.pool_pinned_misses += m.pool_pinned_misses;
    sum.pool_trim_bytes += m.pool_trim_bytes;
    sum.injected_oom_faults += m.injected_oom_faults;
    sum.injected_transient_faults += m.injected_transient_faults;
    sum.degraded_transfers += m.degraded_transfers;
    sum.refused_ops += m.refused_ops;
    sum.device_lost = sum.device_lost || m.device_lost;
  }
  publish_device_metrics_labeled("device=fleet", sum);
  obs::Registry::global()
      .gauge("cudasim_fleet_devices", "device=fleet")
      .set(static_cast<double>(devices.size()));
}

void publish_build_report(const BuildReport& report,
                          const std::string& labels) {
  obs::Registry& r = obs::Registry::global();
  r.counter("build_batches_run", labels).add(report.batches_run);
  r.counter("build_overflow_splits", labels).add(report.overflow_splits);
  r.counter("build_total_pairs", labels).add(report.total_pairs);
  r.counter("build_d2h_bytes", labels).add(report.d2h_bytes);
  r.counter("build_atomic_ops", labels).add(report.atomic_ops);
  r.counter("build_kernel_flops", labels).add(report.kernel_flops);
  r.counter("build_kernel_global_bytes", labels)
      .add(report.kernel_global_bytes);
  if (report.scan_mode == ScanMode::kHalf) {
    r.counter("build_half_scan_builds", labels).add(1);
    r.histogram("build_expand_seconds", labels)
        .observe(report.expand_seconds);
  }
  r.counter("build_transient_retries", labels).add(report.transient_retries);
  r.counter("build_alloc_retries", labels).add(report.alloc_retries);
  r.counter("build_devices_lost", labels).add(report.devices_lost);
  r.counter("build_failover_batches", labels).add(report.failover_batches);
  r.counter("build_host_fallback_batches", labels)
      .add(report.host_fallback_batches);
  if (report.used_host_fallback) {
    r.counter("build_host_fallbacks", labels).add(1);
  }
  if (report.streamed) {
    r.counter("build_streamed_builds", labels).add(1);
    r.counter("build_sink_batches", labels).add(report.sink_batches);
    r.counter("build_sink_count_batches", labels)
        .add(report.sink_count_batches);
    r.histogram("build_sink_consume_seconds", labels)
        .observe(report.sink_consume_seconds);
  }
  if (!report.table_materialized) {
    r.counter("build_tables_skipped", labels).add(1);
  }
  if (report.shards != 0) {
    r.counter("build_sharded_builds", labels).add(1);
    r.counter("build_shards", labels).add(report.shards);
    r.counter("build_shard_repartitions", labels)
        .add(report.shard_repartitions);
    r.counter("build_halo_ghost_points", labels)
        .add(report.halo_ghost_points);
    r.counter("build_cross_shard_pairs", labels)
        .add(report.cross_shard_pairs);
  }
  r.histogram("build_table_seconds", labels).observe(report.table_seconds);
  r.histogram("build_modeled_table_seconds", labels)
      .observe(report.modeled_table_seconds);
  r.gauge("build_last_estimate_pairs", labels)
      .set(static_cast<double>(report.estimate.estimated_total));
  r.gauge("build_last_num_batches", labels)
      .set(static_cast<double>(report.plan.num_batches));
}

}  // namespace hdbscan
