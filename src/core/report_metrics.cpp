#include "core/report_metrics.hpp"

#include <string>

#include "obs/registry.hpp"

namespace hdbscan {

void publish_device_metrics(std::uint32_t device_id,
                            const cudasim::DeviceMetrics& m) {
  obs::Registry& r = obs::Registry::global();
  const std::string labels = "device=" + std::to_string(device_id);
  // Gauges, not counters: DeviceMetrics values are themselves cumulative
  // snapshots, so re-publishing must overwrite, not add.
  r.gauge("cudasim_kernel_launches", labels)
      .set(static_cast<double>(m.kernel_launches));
  r.gauge("cudasim_kernel_modeled_seconds", labels)
      .set(m.kernel_modeled_seconds);
  r.gauge("cudasim_kernel_wall_seconds", labels).set(m.kernel_wall_seconds);
  r.gauge("cudasim_h2d_bytes", labels).set(static_cast<double>(m.h2d_bytes));
  r.gauge("cudasim_d2h_bytes", labels).set(static_cast<double>(m.d2h_bytes));
  r.gauge("cudasim_transfer_seconds", labels).set(m.transfer_seconds);
  r.gauge("cudasim_pinned_alloc_seconds", labels)
      .set(m.pinned_alloc_seconds);
  r.gauge("cudasim_sort_seconds", labels).set(m.sort_seconds);
  r.gauge("cudasim_scan_seconds", labels).set(m.scan_seconds);
  r.gauge("cudasim_peak_mem_bytes", labels)
      .set(static_cast<double>(m.peak_mem_bytes));
  r.gauge("cudasim_injected_oom_faults", labels)
      .set(static_cast<double>(m.injected_oom_faults));
  r.gauge("cudasim_injected_transient_faults", labels)
      .set(static_cast<double>(m.injected_transient_faults));
  r.gauge("cudasim_degraded_transfers", labels)
      .set(static_cast<double>(m.degraded_transfers));
  r.gauge("cudasim_refused_ops", labels)
      .set(static_cast<double>(m.refused_ops));
  r.gauge("cudasim_device_lost", labels).set(m.device_lost ? 1.0 : 0.0);
  r.gauge("cudasim_pool_device_hits", labels)
      .set(static_cast<double>(m.pool_device_hits));
  r.gauge("cudasim_pool_device_misses", labels)
      .set(static_cast<double>(m.pool_device_misses));
  r.gauge("cudasim_pool_pinned_hits", labels)
      .set(static_cast<double>(m.pool_pinned_hits));
  r.gauge("cudasim_pool_pinned_misses", labels)
      .set(static_cast<double>(m.pool_pinned_misses));
  r.gauge("cudasim_pool_trim_bytes", labels)
      .set(static_cast<double>(m.pool_trim_bytes));
}

void publish_build_report(const BuildReport& report) {
  obs::Registry& r = obs::Registry::global();
  r.counter("build_batches_run").add(report.batches_run);
  r.counter("build_overflow_splits").add(report.overflow_splits);
  r.counter("build_total_pairs").add(report.total_pairs);
  r.counter("build_d2h_bytes").add(report.d2h_bytes);
  r.counter("build_atomic_ops").add(report.atomic_ops);
  r.counter("build_kernel_flops").add(report.kernel_flops);
  r.counter("build_kernel_global_bytes").add(report.kernel_global_bytes);
  if (report.scan_mode == ScanMode::kHalf) {
    r.counter("build_half_scan_builds").add(1);
    r.histogram("build_expand_seconds").observe(report.expand_seconds);
  }
  r.counter("build_transient_retries").add(report.transient_retries);
  r.counter("build_alloc_retries").add(report.alloc_retries);
  r.counter("build_devices_lost").add(report.devices_lost);
  r.counter("build_failover_batches").add(report.failover_batches);
  r.counter("build_host_fallback_batches").add(report.host_fallback_batches);
  if (report.used_host_fallback) r.counter("build_host_fallbacks").add(1);
  if (report.streamed) {
    r.counter("build_streamed_builds").add(1);
    r.counter("build_sink_batches").add(report.sink_batches);
    r.counter("build_sink_count_batches").add(report.sink_count_batches);
    r.histogram("build_sink_consume_seconds")
        .observe(report.sink_consume_seconds);
  }
  if (!report.table_materialized) {
    r.counter("build_tables_skipped").add(1);
  }
  r.histogram("build_table_seconds").observe(report.table_seconds);
  r.histogram("build_modeled_table_seconds")
      .observe(report.modeled_table_seconds);
  r.gauge("build_last_estimate_pairs")
      .set(static_cast<double>(report.estimate.estimated_total));
  r.gauge("build_last_num_batches")
      .set(static_cast<double>(report.plan.num_batches));
}

}  // namespace hdbscan
