// Distance-threshold similarity search beyond DBSCAN (paper §VIII: "the
// techniques described in this work are applicable to other similarity
// searches").
//
// * similarity_join  — all pairs (a in A, b in B) with dist <= eps,
//   computed with the same GPU machinery as the neighbor table: grid index
//   over B, one thread per query point of A, batched atomic-append result
//   sink. A == B with eps reproduces exactly the neighbor-table relation.
// * knn_search       — k nearest neighbors per query via expanding grid
//   rings (host-side; the index is the same structure the device uses).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "cudasim/device.hpp"
#include "index/grid_index.hpp"

namespace hdbscan {

struct JoinResult {
  /// (key = index into queries, value = index into the *indexed* data's
  /// internal order; map through index.original_ids for input order).
  std::vector<NeighborPair> pairs;
  double modeled_seconds = 0.0;
  std::uint32_t batches = 0;
};

/// All (query, data) pairs within eps. `index` must have been built with a
/// cell width >= eps.
JoinResult similarity_join(cudasim::Device& device,
                           std::span<const Point2> queries,
                           const GridIndex& index, float eps);

struct KnnNeighbor {
  PointId id = 0;       ///< id in the index's internal order
  float distance = 0.0f;
};

/// k nearest neighbors of `query` among the indexed points, in ascending
/// distance order (fewer than k when the dataset is smaller).
std::vector<KnnNeighbor> knn_search(const GridIndex& index,
                                    const Point2& query, unsigned k);

}  // namespace hdbscan
