// Spatial sharding of the grid index across k (simulated) devices.
//
// The planner cuts the grid into k contiguous slabs of *cell rows*,
// balanced by a per-row work estimate — each cell's occupancy times its
// 3x3-stencil occupancy, i.e. candidate distance tests, so a dense band
// does not land on one device while the others idle (row-major
// linearization makes a row slab a contiguous range of both the cell
// array G and the lookup array A). Each shard owns the points of its
// rows and additionally holds the
// epsilon-halo: the one row above and the one row below the owned slab,
// whose points are resident *ghosts* — cells are exactly eps wide, so an
// owned point's whole 9-cell stencil lies inside owned-rows +/- 1.
//
// Shard sub-indexes keep the GLOBAL grid geometry (GridParams) so every
// point hashes to the same cell id as in the full index — re-deriving a
// local geometry would move float-boundary points across rows and silently
// clip true neighbors. The slab's cell array is indexed relative to
// GridIndex::cell_base instead.
//
// Local point numbering is owned-first: local ids [0, num_owned) are the
// owned points in ascending global id order, ids [num_owned, resident) the
// ghosts in ascending global id order. Ownership is row-homogeneous, so
// every cell's lookup slice keeps the ascending-id invariant the
// half-comparison kernels binary-search on, and — because the local order
// is a monotone relabeling of the global order within each cell — a pair
// is "forward" locally exactly when it is forward globally.
//
// Exactly-once cross-shard edges fall out of that consistency: a shard
// emits rows only for points it owns, every point has exactly one owner,
// and under ScanMode::kHalf each cross pair (a, b) appears in exactly one
// forward row — so it is produced by exactly one shard, with no dedup
// structure. Under kFull each pair still appears once per *endpoint row*,
// same as the single-device build.
#pragma once

#include <cstdint>
#include <vector>

#include "index/grid_index.hpp"

namespace hdbscan {

/// One shard: a slab sub-index plus the local<->global id mapping.
struct GridShard {
  std::uint32_t shard_id = 0;
  std::uint32_t row_begin = 0;  ///< first owned cell row
  std::uint32_t row_end = 0;    ///< one past the last owned cell row
  std::uint32_t num_owned = 0;  ///< owned (query) points == index.num_query
  /// Slab sub-index: global params, cells/lookup for owned rows +/- 1
  /// halo, owned-first points. Empty (size() == 0) when the slab owns no
  /// points — such shards have nothing to build and are skipped.
  GridIndex index;
  /// Local id -> global id (into the full index's point order); size is
  /// the resident count (owned + ghosts).
  std::vector<PointId> to_global;

  [[nodiscard]] std::uint32_t num_ghosts() const noexcept {
    return static_cast<std::uint32_t>(to_global.size()) - num_owned;
  }
  [[nodiscard]] bool empty() const noexcept { return num_owned == 0; }
};

struct ShardPlan {
  std::vector<GridShard> shards;
  /// Global point id -> owning shard id; only points whose cell row lies
  /// in the planned row range are assigned (kUnowned otherwise).
  std::vector<std::uint32_t> owner_of;
  std::uint64_t total_ghosts = 0;  ///< summed halo residents across shards
  std::uint64_t owned_points = 0;  ///< points covered by the planned rows
  /// Host CPU on the planning critical path: the serial prefix (row
  /// weights, cuts, ownership table) plus the slowest of the per-shard
  /// assembly workers, which run one per shard on the reference host's
  /// cores. This is what a performance model should charge for planning —
  /// not the summed CPU of all workers.
  double critical_seconds = 0.0;

  static constexpr std::uint32_t kUnowned = 0xffffffffu;

  /// Halo duplication: ghost residents relative to owned points — the
  /// fraction of extra index data (not extra distance tests, under kHalf)
  /// the sharding pays.
  [[nodiscard]] double halo_overhead_fraction() const noexcept {
    return owned_points == 0 ? 0.0
                             : static_cast<double>(total_ghosts) /
                                   static_cast<double>(owned_points);
  }
};

/// Partitions cell rows [row_begin, row_end) of the *global* index (the
/// full-grid overload covers every row) into at most `num_shards`
/// contiguous slabs balanced by point count. Fewer shards come back when
/// the range has fewer rows than requested; shards that would own zero
/// points are dropped. shard_id values are assigned 0..k-1 in row order —
/// re-partitioning a dead shard's range yields fresh ids; callers keep
/// their own shard->device mapping.
///
/// Sub-index assembly (gather + relabel + slab cell rebuild) is
/// independent per shard and runs on up to `num_threads` workers
/// (0 = hardware concurrency); the result is bit-identical to serial
/// assembly and ShardPlan::critical_seconds charges the slowest worker.
ShardPlan plan_shards(const GridIndex& index, unsigned num_shards,
                      std::uint32_t row_begin, std::uint32_t row_end,
                      unsigned num_threads = 0);

ShardPlan plan_shards(const GridIndex& index, unsigned num_shards,
                      unsigned num_threads = 0);

}  // namespace hdbscan
