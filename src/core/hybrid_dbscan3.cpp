#include "core/hybrid_dbscan3.hpp"

#include "common/timer.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/sort.hpp"
#include "cudasim/stream.hpp"
#include "dbscan/dbscan.hpp"
#include "gpu/kernels3.hpp"
#include "gpu/result_sink.hpp"

namespace hdbscan {

NeighborTable build_neighbor_table_host3(const GridIndex3& index, float eps) {
  NeighborTable table(index.size());
  std::vector<PointId> neighbors;
  std::vector<NeighborPair> pairs;
  for (PointId i = 0; i < index.size(); ++i) {
    grid_query3(index, index.points[i], eps, neighbors);
    pairs.clear();
    for (const PointId v : neighbors) pairs.push_back({i, v});
    table.append_sorted_batch(pairs);
  }
  return table;
}

NeighborTable build_neighbor_table_device3(cudasim::Device& device,
                                           const GridIndex3& index, float eps,
                                           Build3Report* report) {
  WallTimer total_timer;
  Build3Report local;

  // Upload D, G, A.
  cudasim::Stream stream(device);
  cudasim::DeviceBuffer<Point3> d_points(device, index.points.size());
  cudasim::DeviceBuffer<CellRange> d_cells(device, index.cells.size());
  cudasim::DeviceBuffer<PointId> d_lookup(device, index.lookup.size());
  stream.memcpy_to_device(d_points, index.points.data(), index.points.size());
  stream.memcpy_to_device(d_cells, index.cells.data(), index.cells.size());
  stream.memcpy_to_device(d_lookup, index.lookup.data(), index.lookup.size());
  stream.synchronize();
  const GridView3 view{index.params, d_points.device_data(),
                       static_cast<std::uint32_t>(index.points.size()),
                       d_cells.device_data(), d_lookup.device_data()};

  const std::uint64_t upload_bytes = d_points.bytes() + d_cells.bytes() +
                                     d_lookup.bytes();
  local.modeled_table_seconds +=
      cudasim::modeled_transfer_seconds(device.config(), upload_bytes, false);

  // Exact sizing pass, then fill.
  cudasim::KernelStats stats;
  const std::uint64_t total =
      gpu::run_count_kernel3(device, view, eps, 1, &stats);
  local.modeled_table_seconds += stats.modeled_seconds;

  gpu::ResultSetDevice sink(device, total + 1);
  stats = gpu::run_calc_global3(device, view, eps, {}, sink.view());
  local.modeled_table_seconds += stats.modeled_seconds;
  const std::uint64_t pairs = sink.count();

  cudasim::sort_by_key(device, sink.pairs(), pairs,
                       [](const NeighborPair& p) { return p.key; });
  cudasim::PinnedBuffer<NeighborPair> staging(device, pairs);
  device.blocking_transfer(staging.data(), sink.pairs().device_data(),
                           pairs * sizeof(NeighborPair), false, true);
  local.modeled_table_seconds +=
      cudasim::modeled_sort_seconds(device.config(),
                                    pairs * sizeof(NeighborPair)) +
      cudasim::modeled_transfer_seconds(device.config(),
                                        pairs * sizeof(NeighborPair), true) +
      cudasim::modeled_pinned_alloc_seconds(device.config(),
                                            pairs * sizeof(NeighborPair));

  NeighborTable table(index.size());
  table.reserve_values(pairs);
  ThreadCpuTimer append_timer;
  table.append_sorted_batch({staging.data(), pairs});
  local.modeled_table_seconds += append_timer.seconds();

  local.total_pairs = pairs;
  local.table_seconds = total_timer.seconds();
  if (report != nullptr) *report = local;
  return table;
}

ClusterResult hybrid_dbscan3(cudasim::Device& device,
                             std::span<const Point3> points, float eps,
                             int minpts, Build3Report* report) {
  const GridIndex3 index = build_grid_index3(points, eps);
  const NeighborTable table =
      build_neighbor_table_device3(device, index, eps, report);
  const ClusterResult indexed = dbscan_neighbor_table(table, minpts);
  ClusterResult out;
  out.num_clusters = indexed.num_clusters;
  out.labels.resize(indexed.labels.size());
  for (std::size_t i = 0; i < indexed.labels.size(); ++i) {
    out.labels[index.original_ids[i]] = indexed.labels[i];
  }
  return out;
}

}  // namespace hdbscan
