#include "core/hybrid_dbscan3.hpp"

#include <stdexcept>

#include "common/timer.hpp"
#include "core/cell_graph.hpp"
#include "cudasim/buffer.hpp"
#include "cudasim/buffer_pool.hpp"
#include "cudasim/sort.hpp"
#include "cudasim/stream.hpp"
#include "dbscan/dbscan.hpp"
#include "gpu/kernels3.hpp"
#include "gpu/result_sink.hpp"

namespace hdbscan {

NeighborTable build_neighbor_table_host3(const GridIndex3& index, float eps) {
  NeighborTable table(index.size());
  std::vector<PointId> neighbors;
  std::vector<NeighborPair> pairs;
  for (PointId i = 0; i < index.size(); ++i) {
    grid_query3(index, index.points[i], eps, neighbors);
    pairs.clear();
    for (const PointId v : neighbors) pairs.push_back({i, v});
    table.append_sorted_batch(pairs);
  }
  return table;
}

NeighborTable build_neighbor_table_device3(cudasim::Device& device,
                                           const GridIndex3& index, float eps,
                                           Build3Report* report,
                                           ScanMode mode,
                                           QualitySpec quality) {
  WallTimer total_timer;
  Build3Report local;

  // Upload D, G, A.
  cudasim::Stream stream(device);
  cudasim::DeviceBuffer<Point3> d_points(device, index.points.size());
  cudasim::DeviceBuffer<CellRange> d_cells(device, index.cells.size());
  cudasim::DeviceBuffer<PointId> d_lookup(device, index.lookup.size());
  stream.memcpy_to_device(d_points, index.points.data(), index.points.size());
  stream.memcpy_to_device(d_cells, index.cells.data(), index.cells.size());
  stream.memcpy_to_device(d_lookup, index.lookup.data(), index.lookup.size());
  stream.synchronize();
  const GridView3 view{index.params, d_points.device_data(),
                       static_cast<std::uint32_t>(index.points.size()),
                       d_cells.device_data(), d_lookup.device_data()};

  const std::uint64_t upload_bytes = d_points.bytes() + d_cells.bytes() +
                                     d_lookup.bytes();
  local.modeled_table_seconds +=
      cudasim::modeled_transfer_seconds(device.config(), upload_bytes, false);

  // Two-pass CSR build, single batch: count per point, scan to exact
  // offsets, fill straight into the slots. No device sort, no pair keys on
  // the wire — only the offsets array and the bare neighbor ids go D2H.
  const auto npts = static_cast<std::uint32_t>(index.points.size());
  cudasim::PooledDeviceBuffer<std::uint32_t> d_counts(
      device, std::max<std::uint32_t>(1, npts));
  cudasim::KernelStats stats = gpu::run_count_batch3(
      device, view, eps, {}, d_counts.device_data(), mode,
      gpu::kDefaultBlockSize, quality);
  local.modeled_table_seconds += stats.modeled_seconds;
  local.kernel_flops += stats.work.flops;

  const std::uint64_t pairs = cudasim::exclusive_scan(device, d_counts, npts);
  local.modeled_table_seconds += cudasim::modeled_scan_seconds(
      device.config(), npts * sizeof(std::uint32_t));

  cudasim::PooledDeviceBuffer<PointId> d_values(
      device, std::max<std::uint64_t>(1, pairs));
  stats = gpu::run_fill_csr3(device, view, eps, {}, d_counts.device_data(),
                             d_values.device_data(), mode,
                             gpu::kDefaultBlockSize, quality);
  local.modeled_table_seconds += stats.modeled_seconds;
  local.kernel_flops += stats.work.flops;

  const std::uint64_t offset_bytes = npts * sizeof(std::uint32_t);
  const std::uint64_t value_bytes = pairs * sizeof(PointId);
  cudasim::PooledPinnedBuffer<std::uint32_t> offsets_staging(device, npts);
  cudasim::PooledPinnedBuffer<PointId> values_staging(device, pairs);
  device.blocking_transfer(offsets_staging.data(), d_counts.device_data(),
                           offset_bytes, false, true);
  device.blocking_transfer(values_staging.data(), d_values.device_data(),
                           value_bytes, false, true);
  local.modeled_table_seconds +=
      cudasim::modeled_transfer_seconds(device.config(), offset_bytes, true) +
      cudasim::modeled_transfer_seconds(device.config(), value_bytes, true);
  // Page-lock cost only for staging the pool had to freshly pin.
  std::uint64_t fresh_pinned = 0;
  if (offsets_staging.fresh()) fresh_pinned += offset_bytes;
  if (values_staging.fresh()) fresh_pinned += value_bytes;
  local.modeled_table_seconds +=
      cudasim::modeled_pinned_alloc_seconds(device.config(), fresh_pinned);

  NeighborTable table(index.size());
  table.reserve_values(pairs);
  ThreadCpuTimer append_timer;
  table.append_csr_batch(0, 1, {offsets_staging.data(), npts},
                         {values_staging.data(), pairs});
  local.modeled_table_seconds += append_timer.seconds();

  if (mode == ScanMode::kHalf) {
    local.expand_seconds = table.expand_half_table(
        static_cast<unsigned>(std::max(1, device.config().host_cores)));
    local.modeled_table_seconds += local.expand_seconds;
  }

  local.total_pairs = table.total_pairs();
  local.table_seconds = total_timer.seconds();
  if (report != nullptr) *report = local;
  return table;
}

ClusterResult hybrid_dbscan3(cudasim::Device& device,
                             std::span<const Point3> points, float eps,
                             int minpts, Build3Report* report, ScanMode mode,
                             QualitySpec quality) {
  if (quality.mode == ClusterQuality::kCellGraph) {
    WallTimer total_timer;
    CellGraphReport cg;
    ClusterResult out =
        cell_graph_dbscan3(points, eps, minpts, device.config(), &cg);
    if (report != nullptr) {
      Build3Report local;
      local.total_pairs = cg.distance_tests;
      local.table_seconds = total_timer.seconds();
      local.modeled_table_seconds = cg.modeled_seconds;
      *report = local;
    }
    return out;
  }
  const GridIndex3 index = build_grid_index3(points, eps);
  const NeighborTable table =
      build_neighbor_table_device3(device, index, eps, report, mode, quality);
  const ClusterResult indexed =
      dbscan_neighbor_table(table, quality.scaled_minpts(minpts));
  ClusterResult out;
  out.num_clusters = indexed.num_clusters;
  out.labels.resize(indexed.labels.size());
  for (std::size_t i = 0; i < indexed.labels.size(); ++i) {
    out.labels[index.original_ids[i]] = indexed.labels[i];
  }
  out.finalize_noise_count();
  return out;
}

ClusterResult fused_dbscan3(cudasim::Device& device,
                            std::span<const Point3> points, float eps,
                            int minpts, Build3Report* report, ScanMode mode,
                            QualitySpec quality) {
  if (quality.mode == ClusterQuality::kCellGraph) {
    throw std::invalid_argument(
        "fused_dbscan3: ClusterQuality::kCellGraph replaces the traversal "
        "kernel — use hybrid_dbscan3");
  }
  WallTimer total_timer;
  Build3Report local;
  const GridIndex3 index = build_grid_index3(points, eps);

  // Upload D, G, A — the only device-resident state the fused kernel
  // needs; no counts buffer, no CSR values, no staging.
  cudasim::Stream stream(device);
  cudasim::DeviceBuffer<Point3> d_points(device, index.points.size());
  cudasim::DeviceBuffer<CellRange> d_cells(device, index.cells.size());
  cudasim::DeviceBuffer<PointId> d_lookup(device, index.lookup.size());
  stream.memcpy_to_device(d_points, index.points.data(), index.points.size());
  stream.memcpy_to_device(d_cells, index.cells.data(), index.cells.size());
  stream.memcpy_to_device(d_lookup, index.lookup.data(), index.lookup.size());
  stream.synchronize();
  const GridView3 view{index.params, d_points.device_data(),
                       static_cast<std::uint32_t>(index.points.size()),
                       d_cells.device_data(), d_lookup.device_data()};
  local.modeled_table_seconds += cudasim::modeled_transfer_seconds(
      device.config(),
      d_points.bytes() + d_cells.bytes() + d_lookup.bytes(), false);

  StreamingDbscan consumer(index.size(), quality.scaled_minpts(minpts));
  const cudasim::KernelStats stats =
      gpu::run_fused_batch3(device, view, eps, {}, consumer, mode,
                            gpu::kDefaultBlockSize, quality);
  local.modeled_table_seconds += stats.modeled_seconds;
  local.kernel_flops += stats.work.flops;

  const ClusterResult indexed = consumer.finalize();
  const StreamingDbscan::Stats& st = consumer.stats();
  // Parked edges are the only result traffic; charge their D2H at the
  // pinned rate, as the 2-D orchestrator does.
  local.modeled_table_seconds += cudasim::modeled_transfer_seconds(
      device.config(), st.fused_parked * sizeof(NeighborPair), true);
  local.total_pairs = st.edges_seen;
  local.table_seconds = total_timer.seconds();
  if (report != nullptr) *report = local;

  ClusterResult out;
  out.num_clusters = indexed.num_clusters;
  out.labels.resize(indexed.labels.size());
  for (std::size_t i = 0; i < indexed.labels.size(); ++i) {
    out.labels[index.original_ids[i]] = indexed.labels[i];
  }
  out.finalize_noise_count();
  return out;
}

}  // namespace hdbscan
