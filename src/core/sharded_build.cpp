#include "core/sharded_build.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/timer.hpp"
#include "core/failure.hpp"
#include "core/report_metrics.hpp"
#include "core/shard_planner.hpp"
#include "cudasim/error.hpp"
#include "obs/trace.hpp"

namespace hdbscan {

namespace {

/// Per-global-key delivery ledger shared by every shard's TranslatingSink.
/// On the fault-free path it is write-once bookkeeping (shards own disjoint
/// keys, so concurrent sinks touch disjoint bytes); its purpose is the
/// resilience ladder — a shard re-partitioned off a dead device must not
/// re-deliver counts or rows a previous attempt already pushed into the
/// caller's sink. Cross-round visibility comes from the thread joins
/// between rounds.
struct DedupLedger {
  std::vector<std::uint8_t> counts_sent;
  std::vector<std::uint8_t> row_sent;
  explicit DedupLedger(std::size_t n) : counts_sent(n, 0), row_sent(n, 0) {}
};

/// Rewrites one shard's deliveries into the global key space before
/// handing them to the caller's sink: keys are shard-local resident ids,
/// the consumer speaks global ids. VALUES arrive already global — the
/// slab kernels emit through the shard's emission map — so on the
/// fault-free path the value and offset spans pass through untouched and
/// the per-delivery work is O(keys), not O(pairs). Ghost-key rows never
/// occur (the slab kernels only run over owned points). Serialized per
/// shard; distinct shards deliver concurrently, which is the same
/// contract the builder's stream threads already impose on the
/// downstream sink.
class TranslatingSink final : public BatchSink {
 public:
  TranslatingSink(BatchSink* downstream, const GridShard* shard,
                  DedupLedger* ledger,
                  std::atomic<std::uint64_t>* cross_pairs,
                  const std::uint32_t* row_of)
      : downstream_(downstream),
        shard_(shard),
        ledger_(ledger),
        cross_pairs_(cross_pairs),
        row_of_(row_of) {}

  void consume_counts(const CountDelivery& d) override {
    std::lock_guard lock(mutex_);
    keys_.clear();
    counts_.clear();
    for (std::size_t g = 0; g < d.counts.size(); ++g) {
      const PointId local = d.key_at(g);
      if (local >= shard_->num_owned) continue;
      const PointId global = shard_->to_global[local];
      // A prior attempt on a lost device may already have delivered this
      // key's degree, via its counts or via a counts-less row.
      if (ledger_->counts_sent[global] != 0 ||
          ledger_->row_sent[global] != 0) {
        continue;
      }
      ledger_->counts_sent[global] = 1;
      keys_.push_back(global);
      counts_.push_back(d.counts[g]);
    }
    if (keys_.empty()) return;
    CountDelivery out;
    out.scan_mode = d.scan_mode;
    out.counts = counts_;
    out.keys = keys_;
    downstream_->consume_counts(out);
  }

  void consume(const BatchDelivery& d) override {
    std::lock_guard lock(mutex_);
    const std::size_t nkeys = d.offsets.size();
    // Fast path: every key is owned, fresh, and counted — true on every
    // delivery of a fault-free build. Keys are translated (O(keys)); the
    // offset and value spans alias the builder's staging untouched.
    bool fresh = true;
    for (std::size_t g = 0; g < nkeys && fresh; ++g) {
      const PointId local = d.key_at(g);
      fresh = local < shard_->num_owned &&
              ledger_->row_sent[shard_->to_global[local]] == 0 &&
              ledger_->counts_sent[shard_->to_global[local]] != 0;
    }
    if (fresh) {
      keys_.clear();
      for (std::size_t g = 0; g < nkeys; ++g) {
        const PointId global = shard_->to_global[d.key_at(g)];
        ledger_->row_sent[global] = 1;
        keys_.push_back(global);
      }
      BatchDelivery out = d;
      out.counts_delivered = true;
      out.keys = keys_;
      downstream_->consume(out);
      cross_pairs_->fetch_add(count_ghost_values(d.values),
                              std::memory_order_relaxed);
      return;
    }
    // One outgoing batch carries a single counts_delivered flag, but after
    // a device loss the surviving keys can be in mixed states (a dead
    // attempt delivered some counts but not the rows); emit one batch per
    // state.
    for (const bool counted : {true, false}) {
      keys_.clear();
      offsets_.clear();
      values_.clear();
      std::uint64_t cross = 0;
      for (std::size_t g = 0; g < nkeys; ++g) {
        const PointId local = d.key_at(g);
        if (local >= shard_->num_owned) continue;
        const PointId global = shard_->to_global[local];
        if (ledger_->row_sent[global] != 0) continue;
        if ((ledger_->counts_sent[global] != 0) != counted) continue;
        ledger_->row_sent[global] = 1;
        if (!counted) ledger_->counts_sent[global] = 1;  // degree from row
        offsets_.push_back(static_cast<std::uint32_t>(values_.size()));
        keys_.push_back(global);
        const std::size_t row_begin = d.offsets[g];
        const std::size_t row_end =
            g + 1 < nkeys ? d.offsets[g + 1] : d.values.size();
        for (std::size_t a = row_begin; a < row_end; ++a) {
          const PointId v = d.values[a];  // already global (emission map)
          if (row_of_[v] < shard_->row_begin || row_of_[v] >= shard_->row_end) {
            ++cross;  // ghost endpoint: another shard owns it
          }
          values_.push_back(v);
        }
      }
      if (keys_.empty()) continue;
      BatchDelivery out;
      out.scan_mode = d.scan_mode;
      out.counts_delivered = counted;
      out.offsets = offsets_;
      out.values = values_;
      out.keys = keys_;
      downstream_->consume(out);
      cross_pairs_->fetch_add(cross, std::memory_order_relaxed);
    }
  }

 private:
  [[nodiscard]] std::uint64_t count_ghost_values(
      std::span<const PointId> values) const noexcept {
    std::uint64_t cross = 0;
    for (const PointId v : values) {
      if (row_of_[v] < shard_->row_begin || row_of_[v] >= shard_->row_end) {
        ++cross;
      }
    }
    return cross;
  }

  BatchSink* downstream_;
  const GridShard* shard_;
  DedupLedger* ledger_;
  std::atomic<std::uint64_t>* cross_pairs_;
  const std::uint32_t* row_of_;  ///< global id -> cell row (cross tally)
  std::mutex mutex_;
  std::vector<PointId> keys_;
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint32_t> offsets_;
  std::vector<PointId> values_;
};

/// Sums one shard's per-build counters into the fleet report. Timings that
/// the orchestrator re-derives (modeled_table_seconds, table_seconds,
/// expand_seconds) are deliberately not folded in here.
void accumulate_report(BuildReport& agg, const BuildReport& r) {
  agg.plan.num_batches += r.plan.num_batches;
  agg.plan.estimated_total_pairs += r.plan.estimated_total_pairs;
  agg.plan.buffer_pairs = std::max(agg.plan.buffer_pairs, r.plan.buffer_pairs);
  agg.estimate.sampled_pairs += r.estimate.sampled_pairs;
  agg.estimate.estimated_total += r.estimate.estimated_total;
  agg.batches_run += r.batches_run;
  agg.overflow_splits += r.overflow_splits;
  agg.total_pairs += r.total_pairs;
  agg.max_batch_pairs = std::max(agg.max_batch_pairs, r.max_batch_pairs);
  agg.estimate_seconds += r.estimate_seconds;
  agg.kernel_modeled_seconds += r.kernel_modeled_seconds;
  agg.sort_modeled_seconds += r.sort_modeled_seconds;
  agg.scan_modeled_seconds += r.scan_modeled_seconds;
  agg.atomic_ops += r.atomic_ops;
  agg.d2h_bytes += r.d2h_bytes;
  agg.kernel_flops += r.kernel_flops;
  agg.kernel_global_bytes += r.kernel_global_bytes;
  agg.sink_batches += r.sink_batches;
  agg.sink_count_batches += r.sink_count_batches;
  agg.sink_consume_seconds += r.sink_consume_seconds;
  agg.transient_retries += r.transient_retries;
  agg.alloc_retries += r.alloc_retries;
  agg.failover_batches += r.failover_batches;
  agg.host_fallback_batches += r.host_fallback_batches;
  agg.used_host_fallback = agg.used_host_fallback || r.used_host_fallback;
}

/// Forward cross pairs visible in a shard-local table: values are global
/// (emission map); one whose cell row falls outside the shard's owned
/// rows is a ghost, i.e. the other endpoint belongs to another shard.
std::uint64_t count_cross_pairs(const NeighborTable& local,
                                std::uint32_t num_owned,
                                const std::uint32_t* row_of,
                                std::uint32_t row_begin,
                                std::uint32_t row_end) {
  std::uint64_t cross = 0;
  for (std::uint32_t k = 0; k < num_owned; ++k) {
    for (const PointId v : local.neighbors(k)) {
      if (row_of[v] < row_begin || row_of[v] >= row_end) ++cross;
    }
  }
  return cross;
}

/// One shard's outcome, produced on the owning device's host thread.
struct ShardOutcome {
  std::uint32_t row_begin = 0;
  NeighborTable translated;  ///< global-sized table (materialized builds)
  BuildReport report;
  double timeline_seconds = 0.0;  ///< modeled device time + host translate
  std::uint64_t ghosts = 0;
  std::uint64_t cross = 0;  ///< table-derived cross pairs (no-sink path)
  bool ok = false;
  std::uint32_t fail_row_begin = 0;  ///< owned range to re-partition
  std::uint32_t fail_row_end = 0;
};

NeighborTable build_sharded_impl(
    const std::vector<cudasim::Device*>& devices, const GridIndex& index,
    float eps, const ShardedBuildOptions& options, BuildReport* report,
    BatchSink* sink, bool materialize_table) {
  if (devices.empty()) {
    throw std::invalid_argument("build_sharded_neighbor_table: no devices");
  }
  WallTimer total_timer;
  TRACE_SPAN("build", "sharded_build n=%zu", index.size());

  BuildReport agg;
  agg.build_mode = options.policy.build_mode;
  agg.scan_mode = options.policy.scan_mode;
  agg.streamed = sink != nullptr;
  agg.table_materialized = materialize_table;

  std::vector<cudasim::Device*> live;
  for (cudasim::Device* d : devices) {
    if (d != nullptr && !d->lost()) live.push_back(d);
  }

  const unsigned requested =
      options.num_shards != 0 ? options.num_shards
                              : static_cast<unsigned>(
                                    std::max<std::size_t>(1, live.size()));

  // Serial host phases (planning, shard merges, the final expansion) and
  // the per-round slowest-device timeline compose the modeled wall time:
  // devices run their shards concurrently, so a round costs its slowest
  // device, never the sum.
  double modeled_fixed = 0.0;
  double modeled_stream = 0.0;

  const unsigned host_cores = static_cast<unsigned>(
      std::max(1, live.empty() ? cudasim::DeviceConfig{}.host_cores
                               : live.front()->config().host_cores));
  ShardPlan plan;
  if (options.plan != nullptr) {
    if (options.plan->owner_of.size() != index.size()) {
      throw std::invalid_argument(
          "build_sharded_neighbor_table: options.plan was computed for a "
          "different index");
    }
    // Deep-copy the borrowed plan's shards: the build queue consumes
    // them destructively (ids relabeled per round, sub-indexes moved to
    // the device threads) and the caller's plan must stay reusable. The
    // copy is host bookkeeping — a deployment keeps each resident
    // sub-index on its device across builds — so it is not on the
    // modeled clock; a reused plan's construction was charged when the
    // caller ran plan_shards.
    plan.shards = options.plan->shards;
  } else {
    plan = plan_shards(index, requested, host_cores);
    modeled_fixed += plan.critical_seconds;
  }

  std::unique_ptr<DedupLedger> ledger;
  if (sink != nullptr) ledger = std::make_unique<DedupLedger>(index.size());
  std::atomic<std::uint64_t> cross_pairs{0};

  // Global id -> cell row, for the O(1)-per-value cross-pair tally.
  // Bookkeeping, not pipeline work: on the reference hardware the fill
  // kernel counts ghost-valued emissions as it writes them, so neither
  // this map nor the tallies that use it sit on the modeled clock.
  std::vector<std::uint32_t> row_of(index.size());
  for (std::size_t i = 0; i < index.size(); ++i) {
    row_of[i] = index.params.cell_y_of(index.points[i].y);
  }

  NeighborTable table(index.size());
  std::vector<NeighborTable> merge_parts;  ///< translated shard tables
  std::deque<GridShard> pending;
  for (GridShard& s : plan.shards) pending.push_back(std::move(s));
  agg.shards = static_cast<std::uint32_t>(pending.size());

  std::uint32_t shard_uid = 0;
  std::uint32_t devices_died = 0;
  // Shard-level OOM strikes per device. A single-device shard build cannot
  // fail over, so a setup-stage OOM (index upload, context creation past
  // the builder's own shrink ladder) escapes build(); the orchestrator's
  // answer is to re-partition the slab into smaller shards — which shrinks
  // the resident set, unlike retrying — and bench a device that keeps
  // striking out.
  std::unordered_map<cudasim::Device*, unsigned> oom_strikes;

  while (!pending.empty() && !live.empty()) {
    // Cancellation between rounds; mid-round polls happen inside each
    // shard's builder (the token rides options.policy into every build).
    check_cancel(options.policy.cancel);
    const std::size_t ndev = live.size();
    std::vector<std::vector<GridShard>> assigned(ndev);
    {
      std::size_t i = 0;
      while (!pending.empty()) {
        pending.front().shard_id = shard_uid++;  // unique metric label
        assigned[i % ndev].push_back(std::move(pending.front()));
        pending.pop_front();
        ++i;
      }
    }

    std::vector<std::vector<ShardOutcome>> results(ndev);
    std::vector<std::uint8_t> dev_died(ndev, 0);
    std::vector<std::uint32_t> dev_oom(ndev, 0);
    std::vector<std::exception_ptr> hard_errors(ndev);

    std::vector<std::thread> workers;
    for (std::size_t d = 0; d < ndev; ++d) {
      if (assigned[d].empty()) continue;
      workers.emplace_back([&, d, ctx = current_request_context()] {
        RequestScope scope(ctx);
        auto& mine = assigned[d];
        for (std::size_t s = 0; s < mine.size(); ++s) {
          GridShard& shard = mine[s];
          ShardOutcome out;
          out.row_begin = shard.row_begin;
          out.fail_row_begin = shard.row_begin;
          out.fail_row_end = shard.row_end;
          out.ghosts = shard.num_ghosts();
          BatchPolicy sp = options.policy;
          // Deferred expansion and no shared kernel: both would emit
          // ghost-key rows that collide at the global merge. Device loss
          // is recovered here (re-partition), not inside the shard build.
          sp.expand_half = false;
          sp.use_shared_kernel = false;
          sp.resilience.failover = false;
          sp.resilience.host_fallback = false;
          sp.metrics_labels = "shard=" + std::to_string(shard.shard_id);
          TranslatingSink tsink(sink, &shard, ledger.get(), &cross_pairs,
                                row_of.data());
          try {
            NeighborTableBuilder builder(*live[d], sp);
            NeighborTable local =
                builder.build(shard.index, eps, &out.report,
                              sink != nullptr ? &tsink : nullptr,
                              materialize_table);
            double translate_seconds = 0.0;
            if (materialize_table) {
              if (sink == nullptr) {
                out.cross = count_cross_pairs(local, shard.num_owned,
                                              row_of.data(), shard.row_begin,
                                              shard.row_end);
              }
              ThreadCpuTimer translate_timer;
              out.translated = std::move(local).translate(
                  shard.to_global, shard.num_owned, index.size());
              translate_seconds = translate_timer.seconds();
            }
            out.timeline_seconds =
                out.report.modeled_table_seconds + translate_seconds;
            out.ok = true;
            results[d].push_back(std::move(out));
          } catch (const cudasim::DeviceLost&) {
            dev_died[d] = 1;
            results[d].push_back(std::move(out));
            // The device refuses all further work; everything else queued
            // on it goes back for re-partitioning.
            for (std::size_t rest = s + 1; rest < mine.size(); ++rest) {
              ShardOutcome skipped;
              skipped.fail_row_begin = mine[rest].row_begin;
              skipped.fail_row_end = mine[rest].row_end;
              results[d].push_back(std::move(skipped));
            }
            return;
          } catch (const cudasim::DeviceOutOfMemory&) {
            // The device survives an OOM; the shard goes back for
            // re-partitioning into smaller slabs. Dead-attempt sink
            // deliveries are filtered by the ledger exactly as after a
            // device loss.
            ++dev_oom[d];
            results[d].push_back(std::move(out));
          } catch (...) {
            hard_errors[d] = std::current_exception();
            return;
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    for (std::exception_ptr& e : hard_errors) {
      if (e) std::rethrow_exception(e);
    }

    double round_max = 0.0;
    std::vector<ShardOutcome*> successes;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> failed_ranges;
    for (std::size_t d = 0; d < ndev; ++d) {
      double timeline = 0.0;
      for (ShardOutcome& o : results[d]) {
        if (o.ok) {
          timeline += o.timeline_seconds;
          accumulate_report(agg, o.report);
          agg.halo_ghost_points += o.ghosts;
          cross_pairs.fetch_add(o.cross, std::memory_order_relaxed);
          successes.push_back(&o);
        } else {
          failed_ranges.emplace_back(o.fail_row_begin, o.fail_row_end);
        }
      }
      round_max = std::max(round_max, timeline);
    }
    modeled_stream += round_max;

    if (materialize_table) {
      // Stash the round's tables; the fan-in happens once, in parallel,
      // after every shard (including repartitioned ones) has built.
      std::sort(successes.begin(), successes.end(),
                [](const ShardOutcome* a, const ShardOutcome* b) {
                  return a->row_begin < b->row_begin;
                });
      for (ShardOutcome* o : successes) {
        merge_parts.push_back(std::move(o->translated));
      }
    }

    std::vector<cudasim::Device*> survivors;
    for (std::size_t d = 0; d < ndev; ++d) {
      if (dev_died[d] != 0) {
        ++devices_died;
        continue;
      }
      agg.alloc_retries += dev_oom[d];
      const unsigned strikes = (oom_strikes[live[d]] += dev_oom[d]);
      if (strikes > options.policy.resilience.max_alloc_retries) {
        continue;  // benched: keeps OOMing even on shrinking slabs
      }
      survivors.push_back(live[d]);
    }
    live = std::move(survivors);

    for (const auto& [rb, re] : failed_ranges) {
      ++agg.shard_repartitions;
      // With survivors, spread the dead slab across them; with none, keep
      // it whole for the host-fallback path below.
      ShardPlan replan = plan_shards(
          index, std::max<unsigned>(1, static_cast<unsigned>(live.size())),
          rb, re, host_cores);
      agg.shards += static_cast<std::uint32_t>(replan.shards.size());
      for (GridShard& s : replan.shards) pending.push_back(std::move(s));
      modeled_fixed += replan.critical_seconds;
    }
  }

  if (materialize_table && !merge_parts.empty()) {
    // One parallel fan-in: exact-size allocation, then disjoint region
    // copies and disjoint key rebases run concurrently — the model
    // charges the slowest worker, the way the reference host (a core per
    // shard) would experience the merge. The collision sweep is skipped:
    // row-homogeneous slab ownership makes the translated key sets
    // disjoint by construction (bit-identity to the one-device table is
    // property-tested).
    TRACE_SPAN("build", "sharded_merge parts=%zu", merge_parts.size());
    modeled_fixed += table.absorb_shards(std::move(merge_parts), host_cores,
                                         /*check_collisions=*/false);
  }

  if (!pending.empty()) {
    if (!options.policy.resilience.host_fallback) {
      throw cudasim::DeviceLost(
          "sharded build: all devices lost with work remaining");
    }
    // Final rung: finish the unbuilt slabs on the host, through the same
    // translation/dedup path, keeping everything the devices completed.
    agg.used_host_fallback = true;
    ThreadCpuTimer host_timer;
    const std::uint32_t zero = 0;
    for (GridShard& shard : pending) {
      check_cancel(options.policy.cancel);
      NeighborTable local = build_neighbor_table_host_strided(
          shard.index, eps, 0, 1, options.policy.scan_mode,
          options.policy.quality);
      ++agg.host_fallback_batches;
      agg.halo_ghost_points += shard.num_ghosts();
      if (sink != nullptr) {
        TranslatingSink tsink(sink, &shard, ledger.get(), &cross_pairs,
                              row_of.data());
        for (std::uint32_t k = 0; k < shard.num_owned; ++k) {
          BatchDelivery d;
          d.first_key = k;
          d.key_stride = 1;
          d.scan_mode = options.policy.scan_mode;
          d.counts_delivered = false;
          d.offsets = {&zero, 1};
          d.values = local.neighbors(k);
          tsink.consume(d);
        }
      } else if (materialize_table) {
        cross_pairs.fetch_add(
            count_cross_pairs(local, shard.num_owned, row_of.data(),
                              shard.row_begin, shard.row_end),
            std::memory_order_relaxed);
      }
      if (!materialize_table) continue;
      agg.total_pairs += local.total_pairs();
      table.absorb_shard(std::move(local).translate(
          shard.to_global, shard.num_owned, index.size()));
    }
    pending.clear();
    modeled_fixed += host_timer.seconds();
  }

  if (materialize_table && options.policy.scan_mode == ScanMode::kHalf) {
    // Shard builds merged forward rows; one global transpose restores the
    // back rows, making the table identical to a single-device build.
    TRACE_SPAN("build", "sharded_expand_half");
    agg.expand_seconds = table.expand_half_table(host_cores);
    modeled_fixed += agg.expand_seconds;
  }
  if (materialize_table) agg.total_pairs = table.total_pairs();

  agg.devices_lost = devices_died;
  agg.cross_shard_pairs = cross_pairs.load(std::memory_order_relaxed);
  agg.shard_fixed_seconds = modeled_fixed;
  agg.shard_stream_seconds = modeled_stream;
  agg.modeled_table_seconds = modeled_fixed + modeled_stream;
  agg.table_seconds = total_timer.seconds();

  std::vector<cudasim::DeviceMetrics> fleet;
  fleet.reserve(devices.size());
  for (cudasim::Device* d : devices) {
    if (d == nullptr) continue;
    const cudasim::DeviceMetrics m = d->metrics();
    publish_device_metrics(d->id(), m);
    fleet.push_back(m);
  }
  publish_fleet_metrics(fleet);
  publish_build_report(agg, options.policy.metrics_labels);

  if (report != nullptr) *report = agg;
  if (!materialize_table) return NeighborTable(index.size());
  return table;
}

}  // namespace

NeighborTable build_sharded_neighbor_table(
    const std::vector<cudasim::Device*>& devices, const GridIndex& index,
    float eps, const ShardedBuildOptions& options, BuildReport* report,
    BatchSink* sink, bool materialize_table) {
  try {
    return build_sharded_impl(devices, index, eps, options, report, sink,
                              materialize_table);
  } catch (...) {
    if (report != nullptr) report->failure = classify_current_exception();
    throw;
  }
}

}  // namespace hdbscan
