#include "core/shard_planner.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "common/timer.hpp"

namespace hdbscan {

namespace {

/// [begin, end) of the global lookup array covered by cell row r — the
/// counting sort lays rows out contiguously in linearization order.
struct RowSpan {
  std::uint32_t begin;
  std::uint32_t end;
};

RowSpan row_span(const GridIndex& index, std::uint32_t r) {
  const std::uint32_t cx = index.params.cells_x;
  return {index.cells[static_cast<std::size_t>(r) * cx].begin,
          index.cells[static_cast<std::size_t>(r + 1) * cx - 1].end};
}

/// Fills one shard in place: gather owned + ghost residents, owned-first
/// relabeling, slab cell/lookup rebuild. Independent of every other
/// shard except for owner_of writes, which are disjoint (each point has
/// exactly one owner). `row_of` maps global id -> cell row (shared,
/// read-only); `g2l` is caller-provided scratch of full-index size,
/// written for each resident before any read — no reset needed.
void assemble_shard(const GridIndex& index, GridShard& shard,
                    const std::vector<std::uint32_t>& row_of,
                    std::vector<std::uint32_t>& owner_of,
                    std::vector<PointId>& g2l) {
  const std::uint32_t cx = index.params.cells_x;
  const std::uint32_t cy = index.params.cells_y;
  const std::uint32_t rb = shard.row_begin;
  const std::uint32_t re = shard.row_end;
  const std::uint32_t n = static_cast<std::uint32_t>(index.size());

  // Epsilon-halo: one row above and below the owned slab (clipped at
  // the grid boundary, matching the stencil clipping).
  const std::uint32_t slab_lo = rb > 0 ? rb - 1 : 0;
  const std::uint32_t slab_hi = std::min(cy, re + 1);

  // Gather owned and ghost ids in one ascending scan of the row map —
  // a sort-free gather: scanning ids in order IS ascending order, and a
  // shard's residents are exactly the points whose row falls in the slab.
  std::uint64_t owned_hint = 0;
  std::uint64_t ghost_hint = 0;
  for (std::uint32_t row = slab_lo; row < slab_hi; ++row) {
    const RowSpan span = row_span(index, row);
    if (row >= rb && row < re) {
      owned_hint += span.end - span.begin;
    } else {
      ghost_hint += span.end - span.begin;
    }
  }
  std::vector<PointId> owned;
  std::vector<PointId> ghosts;
  owned.reserve(owned_hint);
  ghosts.reserve(ghost_hint);
  for (PointId id = 0; id < n; ++id) {
    const std::uint32_t row = row_of[id];
    if (row < slab_lo || row >= slab_hi) continue;
    if (row >= rb && row < re) {
      owned.push_back(id);
    } else {
      ghosts.push_back(id);
    }
  }
  shard.num_owned = static_cast<std::uint32_t>(owned.size());
  for (const PointId id : owned) owner_of[id] = shard.shard_id;

  // Owned-first local numbering; ghosts follow. Ownership is
  // row-homogeneous, so each cell's residents are one class and the
  // ascending-in-cell invariant survives the relabeling.
  shard.to_global = std::move(owned);
  shard.to_global.insert(shard.to_global.end(), ghosts.begin(),
                         ghosts.end());
  for (std::size_t l = 0; l < shard.to_global.size(); ++l) {
    g2l[shard.to_global[l]] = static_cast<PointId>(l);
  }

  GridIndex& sub = shard.index;
  sub.params = index.params;  // global geometry, by design
  sub.cell_base = slab_lo * cx;
  sub.num_query = shard.num_owned;
  // Kernels emit neighbor VALUES through this map, so they leave the
  // device already globally addressed: the merge path never rewrites a
  // pair, only row keys (NeighborTable::translate).
  sub.emit_ids = shard.to_global;
  sub.points.reserve(shard.to_global.size());
  sub.original_ids = shard.to_global;  // local -> full-index order
  for (const PointId g : shard.to_global) {
    sub.points.push_back(index.points[g]);
  }

  const std::size_t slab_cells =
      static_cast<std::size_t>(slab_hi - slab_lo) * cx;
  sub.cells.resize(slab_cells);
  sub.lookup.resize(shard.to_global.size());
  std::uint32_t cursor = 0;
  for (std::size_t c = 0; c < slab_cells; ++c) {
    const CellRange global_range = index.cells[sub.cell_base + c];
    sub.cells[c].begin = cursor;
    for (std::uint32_t a = global_range.begin; a < global_range.end; ++a) {
      sub.lookup[cursor++] = g2l[index.lookup[a]];
    }
    sub.cells[c].end = cursor;
    const std::uint32_t count = global_range.end - global_range.begin;
    if (count > 0) {
      sub.max_cell_occupancy = std::max(sub.max_cell_occupancy, count);
      // Schedule only owned cells: a block-per-cell kernel over the
      // slab must not emit ghost rows.
      const std::uint32_t row = static_cast<std::uint32_t>(
          (sub.cell_base + c) / cx);
      if (row >= rb && row < re) {
        sub.nonempty_cells.push_back(
            static_cast<std::uint32_t>(sub.cell_base + c));
      }
    }
  }
}

}  // namespace

ShardPlan plan_shards(const GridIndex& index, unsigned num_shards,
                      unsigned num_threads) {
  return plan_shards(index, num_shards, 0, index.params.cells_y,
                     num_threads);
}

ShardPlan plan_shards(const GridIndex& index, unsigned num_shards,
                      std::uint32_t row_begin, std::uint32_t row_end,
                      unsigned num_threads) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned threads = num_threads != 0 ? num_threads : hw;
  ThreadCpuTimer serial_timer;
  if (index.cell_base != 0 || index.num_query != 0) {
    throw std::invalid_argument(
        "plan_shards: expected the full (global) index, not a shard");
  }
  if (row_begin >= row_end || row_end > index.params.cells_y) {
    throw std::invalid_argument("plan_shards: bad row range");
  }
  const std::uint32_t cx = index.params.cells_x;
  const std::uint32_t cy = index.params.cells_y;
  const std::uint32_t rows = row_end - row_begin;
  const std::uint32_t k =
      std::max(1u, std::min<std::uint32_t>(num_shards, rows));

  ShardPlan plan;
  plan.owner_of.assign(index.size(), ShardPlan::kUnowned);

  std::uint64_t range_points = 0;
  for (std::uint32_t r = row_begin; r < row_end; ++r) {
    const RowSpan s = row_span(index, r);
    range_points += s.end - s.begin;
  }
  plan.owned_points = range_points;

  // Per-row work estimate: a row's build cost is dominated by candidate
  // tests, i.e. each cell's occupancy times the occupancy of its 3x3
  // stencil — clustered rows cost far more than their point count
  // suggests, and cutting by raw counts leaves one device holding the
  // dense band while the others idle. Two rolling horizontal 3-sums keep
  // this O(range cells) with three row buffers.
  const auto cell_count = [&](std::uint32_t row, std::uint32_t x) {
    return static_cast<std::uint64_t>(
        index.cells[static_cast<std::size_t>(row) * cx + x].count());
  };
  const auto fill_hsum = [&](std::uint32_t row, std::vector<std::uint64_t>& h) {
    for (std::uint32_t x = 0; x < cx; ++x) {
      std::uint64_t s = cell_count(row, x);
      if (x > 0) s += cell_count(row, x - 1);
      if (x + 1 < cx) s += cell_count(row, x + 1);
      h[x] = s;
    }
  };
  std::vector<std::uint64_t> work(rows, 0);
  const auto weigh_rows = [&](std::uint32_t wb, std::uint32_t we) {
    std::vector<std::uint64_t> hp(cx, 0), hc(cx, 0), hn(cx, 0);
    if (wb > 0) fill_hsum(wb - 1, hp);
    fill_hsum(wb, hc);
    for (std::uint32_t r = wb; r < we; ++r) {
      if (r + 1 < cy) {
        fill_hsum(r + 1, hn);
      } else {
        std::fill(hn.begin(), hn.end(), 0);
      }
      std::uint64_t w = 0;
      for (std::uint32_t x = 0; x < cx; ++x) {
        w += cell_count(r, x) * (hp[x] + hc[x] + hn[x]);
      }
      work[r - row_begin] = w;
      hp.swap(hc);
      hc.swap(hn);
    }
  };
  // The weight pass touches every slab cell three times — on a fine grid
  // it rivals the assembly cost, so it runs chunked over the row range,
  // each worker restarting the rolling sums at its chunk border. The
  // model charges the slowest chunk.
  double serial_seconds = serial_timer.seconds();
  double weigh_seconds = 0.0;
  const unsigned WV = static_cast<unsigned>(
      std::min<std::uint64_t>(threads, rows));
  if (WV <= 1) {
    ThreadCpuTimer t;
    weigh_rows(row_begin, row_end);
    weigh_seconds = t.seconds();
  } else {
    std::vector<double> chunk_seconds(WV, 0.0);
    std::vector<std::thread> weighers;
    weighers.reserve(WV);
    for (unsigned w = 0; w < WV; ++w) {
      weighers.emplace_back([&, w] {
        ThreadCpuTimer t;
        const std::uint32_t wb =
            row_begin + static_cast<std::uint32_t>(
                            std::uint64_t{rows} * w / WV);
        const std::uint32_t we =
            row_begin + static_cast<std::uint32_t>(
                            std::uint64_t{rows} * (w + 1) / WV);
        weigh_rows(wb, we);
        chunk_seconds[w] = t.seconds();
      });
    }
    for (std::thread& t : weighers) t.join();
    weigh_seconds =
        *std::max_element(chunk_seconds.begin(), chunk_seconds.end());
  }
  serial_timer.reset();
  std::uint64_t range_work = 0;
  for (const std::uint64_t w : work) range_work += w;

  // Exact min-max cut: binary-search the smallest bottleneck B such that
  // the rows pack into at most k contiguous slabs of weight <= B, then
  // lay the cuts with that B. The slowest shard sets the build's modeled
  // critical path, so the bottleneck — not the average — is what the
  // partition must minimize; a prefix-target greedy can strand one slab
  // with far more than total/k when a dense band straddles its target.
  const auto slabs_needed = [&](std::uint64_t bound) {
    std::uint32_t slabs = 1;
    std::uint64_t acc = 0;
    for (const std::uint64_t w : work) {
      if (acc + w > bound) {
        ++slabs;
        acc = w;
      } else {
        acc += w;
      }
    }
    return slabs;
  };
  std::uint64_t lo = *std::max_element(work.begin(), work.end());
  std::uint64_t hi = range_work;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (slabs_needed(mid) <= k) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<std::uint32_t> cuts;
  cuts.reserve(k + 1);
  cuts.push_back(row_begin);
  {
    std::uint64_t acc = 0;
    for (std::uint32_t r = row_begin; r < row_end; ++r) {
      const std::uint64_t w = work[r - row_begin];
      if (acc + w > lo && r > cuts.back()) {
        cuts.push_back(r);
        acc = w;
      } else {
        acc += w;
      }
    }
  }
  // Fewer than k slabs is fine (the tail cuts collapse onto row_end and
  // the zero-row slabs are dropped below); more than k cannot happen by
  // the binary-search invariant.
  while (cuts.size() < k + 1) cuts.push_back(row_end);
  cuts[k] = row_end;

  // Slabs that own no points have nothing to build: drop them here (the
  // owned count of a slab is one row-span subtraction per row) so the
  // assembly stage sees only real shards, numbered 0..k'-1 in row order.
  for (std::uint32_t s = 0; s < k; ++s) {
    std::uint64_t slab_points = 0;
    for (std::uint32_t row = cuts[s]; row < cuts[s + 1]; ++row) {
      const RowSpan span = row_span(index, row);
      slab_points += span.end - span.begin;
    }
    if (slab_points == 0) continue;
    GridShard shard;
    shard.shard_id = static_cast<std::uint32_t>(plan.shards.size());
    shard.row_begin = cuts[s];
    shard.row_end = cuts[s + 1];
    plan.shards.push_back(std::move(shard));
  }
  // Global id -> cell row, shared read-only by the assembly workers so
  // each shard's resident gather is one ascending id scan, not a sort.
  std::vector<std::uint32_t> row_of(index.size());
  for (std::uint32_t rr = 0; rr < cy; ++rr) {
    const RowSpan span = row_span(index, rr);
    for (std::uint32_t a = span.begin; a < span.end; ++a) {
      row_of[index.lookup[a]] = rr;
    }
  }
  serial_seconds += serial_timer.seconds();

  // Per-shard assembly is embarrassingly parallel: worker w assembles
  // shards w, w + W, ... with its own full-size g2l scratch (written per
  // shard before any read, so workers never share relabeling state), and
  // owner_of writes are disjoint across shards. The critical path charges
  // the slowest worker — on the reference host each shard gets a core.
  const unsigned W = static_cast<unsigned>(std::min<std::size_t>(
      threads, std::max<std::size_t>(1, plan.shards.size())));
  std::vector<double> worker_seconds(W, 0.0);
  if (W <= 1) {
    ThreadCpuTimer t;
    std::vector<PointId> g2l(index.size());
    for (GridShard& shard : plan.shards) {
      assemble_shard(index, shard, row_of, plan.owner_of, g2l);
    }
    worker_seconds[0] = t.seconds();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(W);
    for (unsigned w = 0; w < W; ++w) {
      workers.emplace_back([&, w] {
        ThreadCpuTimer t;
        std::vector<PointId> g2l(index.size());
        for (std::size_t s = w; s < plan.shards.size(); s += W) {
          assemble_shard(index, plan.shards[s], row_of, plan.owner_of, g2l);
        }
        worker_seconds[w] = t.seconds();
      });
    }
    for (std::thread& t : workers) t.join();
  }
  for (const GridShard& shard : plan.shards) {
    plan.total_ghosts += shard.num_ghosts();
  }
  plan.critical_seconds =
      serial_seconds + weigh_seconds +
      *std::max_element(worker_seconds.begin(), worker_seconds.end());

  return plan;
}

}  // namespace hdbscan
