// HYBRID-DBSCAN in three dimensions: 3-D grid index and kernels feed the
// same neighbor table, so the host-side clustering, reuse and comparison
// machinery is shared with the 2-D pipeline unchanged.
#pragma once

#include <span>

#include "cudasim/device.hpp"
#include "dbscan/cluster_result.hpp"
#include "dbscan/neighbor_table.hpp"
#include "index/grid_index3.hpp"

namespace hdbscan {

struct Build3Report {
  std::uint64_t total_pairs = 0;
  double table_seconds = 0.0;
  double modeled_table_seconds = 0.0;
  std::uint64_t kernel_flops = 0;  ///< distance-test FLOPs across both passes
  double expand_seconds = 0.0;     ///< host transpose of forward rows (kHalf)
};

/// Builds the eps-neighbor table for a 3-D dataset on the device:
/// count pass (exact sizing) -> scan -> fill kernel -> D2H. Under
/// ScanMode::kHalf (the default) each pair is distance-tested once, only
/// forward rows cross PCIe, and one host transpose restores the full
/// table. Staging and scratch come from the device's BufferPool, so the
/// pinned page-lock cost is paid once per process, not per call.
NeighborTable build_neighbor_table_device3(cudasim::Device& device,
                                           const GridIndex3& index, float eps,
                                           Build3Report* report = nullptr,
                                           ScanMode mode = ScanMode::kHalf,
                                           QualitySpec quality = {});

/// End-to-end 3-D HYBRID-DBSCAN; labels are returned in input order.
/// `quality` selects the exact pipeline (default), the subsampled build
/// (kernels keep a seeded Bernoulli fraction of each neighborhood and the
/// density threshold rescales to minpts * s), or the cell-graph mode
/// (eps/sqrt(3) re-binning in core/cell_graph; no device work at all).
ClusterResult hybrid_dbscan3(cudasim::Device& device,
                             std::span<const Point3> points, float eps,
                             int minpts, Build3Report* report = nullptr,
                             ScanMode mode = ScanMode::kHalf,
                             QualitySpec quality = {});

/// Fused no-table 3-D clustering (see core/fused_clustering for the 2-D
/// orchestrated version): one traversal kernel counts degrees and unions
/// both-core edges straight into the union-find, so neither the CSR
/// passes nor the value transfer run and T is never materialized. 3-D has
/// no streaming/ladder infrastructure, so this is a one-shot synchronous
/// launch; labels are bit-identical to hybrid_dbscan3. `report` fields:
/// total_pairs counts tested cross pairs (edges seen), kernel_flops the
/// traversal's distance tests; expand_seconds stays 0 (nothing to
/// transpose).
ClusterResult fused_dbscan3(cudasim::Device& device,
                            std::span<const Point3> points, float eps,
                            int minpts, Build3Report* report = nullptr,
                            ScanMode mode = ScanMode::kHalf,
                            QualitySpec quality = {});

/// Host oracle (tests): T built by direct 3-D grid queries.
NeighborTable build_neighbor_table_host3(const GridIndex3& index, float eps);

}  // namespace hdbscan
