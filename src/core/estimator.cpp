#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gpu/kernels.hpp"

namespace hdbscan {

ResultSizeEstimate estimate_result_size(cudasim::Device& device,
                                        const GridView& view, float eps,
                                        double sample_fraction,
                                        unsigned block_size) {
  if (!(sample_fraction > 0.0) || sample_fraction > 1.0) {
    throw std::invalid_argument("estimate_result_size: fraction in (0, 1]");
  }
  ResultSizeEstimate est;
  est.sample_stride = static_cast<std::uint32_t>(
      std::max(1.0, std::round(1.0 / sample_fraction)));
  // Never stride past the whole dataset: tiny inputs fall back to a census.
  est.sample_stride = std::min<std::uint32_t>(
      est.sample_stride, std::max<std::uint32_t>(1, view.query_count()));
  est.sampled_pairs = gpu::run_count_kernel(
      device, view, eps, est.sample_stride, &est.kernel_stats, block_size);
  est.estimated_total =
      est.sampled_pairs * static_cast<std::uint64_t>(est.sample_stride);
  est.exact = est.sample_stride == 1;
  return est;
}

}  // namespace hdbscan
