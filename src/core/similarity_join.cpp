#include "core/similarity_join.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <queue>
#include <stdexcept>

#include "cudasim/buffer.hpp"
#include "cudasim/kernel.hpp"
#include "cudasim/sort.hpp"
#include "cudasim/stream.hpp"
#include "gpu/device_index.hpp"
#include "gpu/result_sink.hpp"

namespace hdbscan {

namespace {

constexpr unsigned kBlock = 256;

/// Shared scan logic of the two join kernels: visit all candidates of a
/// query point and invoke `emit(candidate)` for matches.
template <typename Emit>
void scan_query(cudasim::ThreadCtx& ctx, const GridView& view,
                const Point2& query, float eps2, Emit&& emit) {
  std::array<std::uint32_t, 9> cells{};
  const unsigned n = get_neighbor_cells(
      view.params, view.params.linear_cell(query), cells);
  for (unsigned c = 0; c < n; ++c) {
    const CellRange range = view.cells[cells[c]];
    ctx.count_global_bytes(sizeof(CellRange) +
                           std::uint64_t(range.count()) *
                               (sizeof(PointId) + sizeof(Point2)));
    ctx.count_flops(std::uint64_t(range.count()) * 6);
    for (std::uint32_t a = range.begin; a < range.end; ++a) {
      const PointId candidate = view.lookup[a];
      if (dist2(query, view.points[candidate]) <= eps2) {
        emit(candidate);
      }
    }
  }
}

struct CountJoinKernel {
  GridView view;
  const Point2* queries;
  std::uint32_t num_queries;
  float eps2;
  std::atomic<std::uint64_t>* total;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t i = ctx.global_id();
    if (i >= num_queries) return;
    const Point2 q = queries[i];
    ctx.count_global_bytes(sizeof(Point2));
    std::uint64_t matches = 0;
    scan_query(ctx, view, q, eps2, [&](PointId) { ++matches; });
    total->fetch_add(matches, std::memory_order_relaxed);
    ctx.count_atomic();
  }
};

struct FillJoinKernel {
  GridView view;
  const Point2* queries;
  std::uint32_t num_queries;
  float eps2;
  gpu::ResultSinkView sink;

  void operator()(cudasim::ThreadCtx& ctx) const {
    const std::uint64_t i = ctx.global_id();
    if (i >= num_queries) return;
    const Point2 q = queries[i];
    ctx.count_global_bytes(sizeof(Point2));
    // Stage locally and reserve sink slots in bulk: one atomic per flush
    // instead of one per pair.
    gpu::StagedSink staged(sink);
    scan_query(ctx, view, q, eps2, [&](PointId candidate) {
      staged.push({static_cast<PointId>(i), candidate}, ctx);
    });
    staged.flush(ctx);
  }
};

}  // namespace

JoinResult similarity_join(cudasim::Device& device,
                           std::span<const Point2> queries,
                           const GridIndex& index, float eps) {
  if (eps > index.params.eps + 1e-6f) {
    throw std::invalid_argument(
        "similarity_join: eps exceeds the index cell width");
  }
  JoinResult result;
  if (queries.empty()) return result;

  cudasim::Stream stream(device);
  gpu::GridDeviceIndex device_index(device, stream, index);
  cudasim::DeviceBuffer<Point2> device_queries(device, queries.size());
  stream.memcpy_to_device(device_queries, queries.data(), queries.size());
  stream.synchronize();
  const GridView view = device_index.view();
  const auto nq = static_cast<std::uint32_t>(queries.size());
  const unsigned grid_dim = (nq + kBlock - 1) / kBlock;
  const float eps2 = eps * eps;

  // Pass 1: exact match count (no result materialization).
  std::atomic<std::uint64_t> total{0};
  auto stats = cudasim::run_flat_kernel(
      device, grid_dim, kBlock,
      CountJoinKernel{view, device_queries.device_data(), nq, eps2, &total});
  result.modeled_seconds += stats.modeled_seconds;

  // Pass 2: exact-size sink, fill, sort by query, D2H.
  gpu::ResultSetDevice sink(device, total.load() + 1);
  stats = cudasim::run_flat_kernel(
      device, grid_dim, kBlock,
      FillJoinKernel{view, device_queries.device_data(), nq, eps2,
                     sink.view()});
  result.modeled_seconds += stats.modeled_seconds;
  result.batches = 1;

  const std::uint64_t pairs = sink.count();
  cudasim::sort_by_key(device, sink.pairs(), pairs,
                       [](const NeighborPair& p) { return p.key; });
  result.modeled_seconds +=
      cudasim::modeled_sort_seconds(device.config(),
                                    pairs * sizeof(NeighborPair)) +
      cudasim::modeled_transfer_seconds(device.config(),
                                        pairs * sizeof(NeighborPair), false);
  result.pairs.resize(pairs);
  device.blocking_transfer(result.pairs.data(), sink.pairs().device_data(),
                           pairs * sizeof(NeighborPair), false, false);
  return result;
}

std::vector<KnnNeighbor> knn_search(const GridIndex& index,
                                    const Point2& query, unsigned k) {
  std::vector<KnnNeighbor> result;
  if (k == 0) return result;
  const GridParams& params = index.params;
  const float w = params.eps;  // cell width

  // Max-heap of the best k seen so far (top = current worst).
  auto worse = [](const KnnNeighbor& a, const KnnNeighbor& b) {
    return a.distance < b.distance;
  };
  std::priority_queue<KnnNeighbor, std::vector<KnnNeighbor>, decltype(worse)>
      best(worse);

  const std::int64_t qx = params.cell_x_of(query.x);
  const std::int64_t qy = params.cell_y_of(query.y);
  const std::int64_t max_ring =
      std::max<std::int64_t>(params.cells_x, params.cells_y);

  for (std::int64_t ring = 0; ring <= max_ring; ++ring) {
    // Early exit: every cell at Chebyshev ring r is at least (r-1) cell
    // widths away from the query.
    if (best.size() == k &&
        static_cast<float>(ring - 1) * w > best.top().distance) {
      break;
    }
    for (std::int64_t dy = -ring; dy <= ring; ++dy) {
      const std::int64_t cy = qy + dy;
      if (cy < 0 || cy >= static_cast<std::int64_t>(params.cells_y)) continue;
      const bool edge_row = (dy == -ring || dy == ring);
      const std::int64_t step = edge_row ? 1 : 2 * ring;
      for (std::int64_t dx = -ring; dx <= ring;
           dx += (step == 0 ? 1 : step)) {
        const std::int64_t cx = qx + dx;
        if (cx < 0 || cx >= static_cast<std::int64_t>(params.cells_x)) {
          if (step == 0) break;
          continue;
        }
        const CellRange range =
            index.cells[static_cast<std::size_t>(cy) * params.cells_x +
                        static_cast<std::size_t>(cx)];
        for (std::uint32_t a = range.begin; a < range.end; ++a) {
          const PointId id = index.lookup[a];
          const float d = dist(query, index.points[id]);
          if (best.size() < k) {
            best.push({id, d});
          } else if (d < best.top().distance) {
            best.pop();
            best.push({id, d});
          }
        }
        if (step == 0) break;  // ring 0 has a single cell
      }
    }
  }

  result.resize(best.size());
  for (auto it = result.rbegin(); it != result.rend(); ++it) {
    *it = best.top();
    best.pop();
  }
  return result;
}

}  // namespace hdbscan
