#include "core/hybrid_dbscan.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/timer.hpp"
#include "core/cell_graph.hpp"
#include "core/fused_clustering.hpp"
#include "obs/trace.hpp"

namespace hdbscan {

namespace {

/// Cell-graph mode bypasses the device pipelines entirely: no grid index,
/// no batches, no table — the eps/sqrt(d) re-binning happens inside
/// cell_graph_dbscan and the labels come back in input order. The fused
/// traversal has nothing to fuse with here, so the combination is
/// rejected rather than silently served by a different algorithm.
ClusterResult run_cell_graph_mode(const cudasim::DeviceConfig& config,
                                  std::span<const Point2> points, float eps,
                                  int minpts, ClusterMode mode,
                                  HybridTimings& local,
                                  WallTimer& total_timer) {
  if (mode == ClusterMode::kFused) {
    throw std::invalid_argument(
        "hybrid_dbscan: ClusterQuality::kCellGraph is incompatible with "
        "ClusterMode::kFused — the cell graph replaces the traversal "
        "kernels the fused path would fuse into");
  }
  WallTimer phase_timer;
  CellGraphReport cg;
  ClusterResult out = cell_graph_dbscan(points, eps, minpts, config, &cg);
  local.dbscan_seconds = phase_timer.seconds();
  local.total_seconds = total_timer.seconds();
  local.modeled_gpu_table_seconds = cg.modeled_seconds;
  local.modeled_total_seconds = cg.modeled_seconds;
  local.build_report.total_pairs = cg.distance_tests;
  local.build_report.table_materialized = false;
  return out;
}

/// Shared fused-mode tail of both hybrid_dbscan overloads: run the
/// traversal, finalize the consumer, fill the streaming/fused timing
/// fields. `local.index_seconds` must already be set.
ClusterResult run_fused_mode(const std::vector<cudasim::Device*>& devices,
                             const GridIndex& index, float eps, int minpts,
                             const BatchPolicy& policy, HybridTimings& local,
                             WallTimer& total_timer) {
  WallTimer phase_timer;
  StreamingDbscan consumer(index.size(), minpts);
  consumer.set_cancel_token(policy.cancel);
  local.build_report = fused_cluster(devices, index, eps, consumer, policy);
  local.gpu_table_seconds = phase_timer.seconds();

  phase_timer.reset();
  const ClusterResult indexed = consumer.finalize();
  local.dbscan_seconds = phase_timer.seconds();

  const StreamingDbscan::Stats& st = consumer.stats();
  local.fused = true;
  local.streamed = true;
  local.consume_seconds = st.consume_seconds;
  local.finalize_seconds = st.finalize_seconds;
  local.overlap_fraction = st.overlap_fraction();
  local.streamed_edge_fraction = st.streamed_fraction();
  local.peak_consumer_bytes = consumer.peak_memory_bytes();
  local.total_seconds = total_timer.seconds();
  local.modeled_gpu_table_seconds = local.build_report.modeled_table_seconds;
  // As in streaming mode, the in-flight union work runs on the consumer's
  // own cores; the post-build tail is the only serial clustering share.
  local.modeled_total_seconds =
      local.index_seconds +
      std::max(local.modeled_gpu_table_seconds,
               st.max_thread_consume_seconds) +
      st.finalize_seconds;
  return unmap_labels(indexed, index.original_ids);
}

}  // namespace

ClusterResult unmap_labels(const ClusterResult& indexed,
                           std::span<const PointId> original_ids) {
  ClusterResult out;
  out.num_clusters = indexed.num_clusters;
  out.labels.resize(indexed.labels.size());
  for (std::size_t i = 0; i < indexed.labels.size(); ++i) {
    out.labels[original_ids[i]] = indexed.labels[i];
  }
  out.finalize_noise_count();
  return out;
}

ClusterResult hybrid_dbscan(cudasim::Device& device,
                            std::span<const Point2> points, float eps,
                            int minpts, HybridTimings* timings,
                            const BatchPolicy& policy, ClusterMode mode) {
  HybridTimings local;
  WallTimer total_timer;

  if (policy.quality.mode == ClusterQuality::kCellGraph) {
    const ClusterResult out = run_cell_graph_mode(
        device.config(), points, eps, minpts, mode, local, total_timer);
    if (timings != nullptr) *timings = local;
    return out;
  }
  // Under kSubsampled every kernel keeps an expected `sample_rate`
  // fraction of each neighborhood, so the density threshold rescales to
  // minpts * s (the SNG estimator) wherever degrees are thresholded.
  const int run_minpts = policy.quality.scaled_minpts(minpts);

  WallTimer phase_timer;
  const GridIndex index = [&] {
    TRACE_SPAN("index", "grid_index n=%zu", points.size());
    return build_grid_index(points, eps);
  }();
  local.index_seconds = phase_timer.seconds();

  if (mode == ClusterMode::kFused) {
    const ClusterResult out = run_fused_mode({&device}, index, eps,
                                             run_minpts, policy, local,
                                             total_timer);
    if (timings != nullptr) *timings = local;
    return out;
  }

  if (mode == ClusterMode::kStreaming &&
      policy.build_mode == TableBuildMode::kCsrTwoPass) {
    // Streaming fast path: the union-find consumer ingests every CSR
    // batch on the builder's stream threads, so the host clustering work
    // runs while the GPU is still filling later batches — and T is never
    // materialized (no shard merge, no half-table expansion, no table
    // memory).
    phase_timer.reset();
    StreamingDbscan consumer(index.size(), run_minpts);
    NeighborTableBuilder builder(device, policy);
    builder.build(index, eps, &local.build_report, &consumer,
                  /*materialize_table=*/false);
    local.gpu_table_seconds = phase_timer.seconds();

    phase_timer.reset();
    const ClusterResult indexed = consumer.finalize();
    local.dbscan_seconds = phase_timer.seconds();

    const StreamingDbscan::Stats& st = consumer.stats();
    local.streamed = true;
    local.consume_seconds = st.consume_seconds;
    local.finalize_seconds = st.finalize_seconds;
    local.overlap_fraction = st.overlap_fraction();
    local.streamed_edge_fraction = st.streamed_fraction();
    local.peak_consumer_bytes = consumer.peak_memory_bytes();
    local.total_seconds = total_timer.seconds();
    local.modeled_gpu_table_seconds =
        local.build_report.modeled_table_seconds;
    // On the reference host the consumers drain completed staging buffers
    // on their own cores (one per builder stream), so the union work adds
    // its slowest thread — not the summed CPU time — to the critical
    // path: response time is max(build, slowest union thread) + tail.
    local.modeled_total_seconds =
        local.index_seconds +
        std::max(local.modeled_gpu_table_seconds,
                 st.max_thread_consume_seconds) +
        st.finalize_seconds;
    if (timings != nullptr) *timings = local;
    return unmap_labels(indexed, index.original_ids);
  }

  phase_timer.reset();
  NeighborTableBuilder builder(device, policy);
  const NeighborTable table = builder.build(index, eps, &local.build_report);
  local.gpu_table_seconds = phase_timer.seconds();

  phase_timer.reset();
  const ClusterResult indexed = dbscan_neighbor_table(table, run_minpts);
  local.dbscan_seconds = phase_timer.seconds();

  local.total_seconds = total_timer.seconds();
  local.modeled_gpu_table_seconds = local.build_report.modeled_table_seconds;
  local.modeled_total_seconds = local.index_seconds +
                                local.modeled_gpu_table_seconds +
                                local.dbscan_seconds;
  if (timings != nullptr) *timings = local;
  return unmap_labels(indexed, index.original_ids);
}

ClusterResult hybrid_dbscan(const std::vector<cudasim::Device*>& devices,
                            std::span<const Point2> points, float eps,
                            int minpts, HybridTimings* timings,
                            const ShardedBuildOptions& options,
                            ClusterMode mode) {
  HybridTimings local;
  WallTimer total_timer;

  if (options.policy.quality.mode == ClusterQuality::kCellGraph) {
    if (devices.empty() || devices.front() == nullptr) {
      throw std::invalid_argument("hybrid_dbscan: no devices");
    }
    const ClusterResult out = run_cell_graph_mode(
        devices.front()->config(), points, eps, minpts, mode, local,
        total_timer);
    if (timings != nullptr) *timings = local;
    return out;
  }
  const int run_minpts = options.policy.quality.scaled_minpts(minpts);

  WallTimer phase_timer;
  const GridIndex index = [&] {
    TRACE_SPAN("index", "grid_index n=%zu", points.size());
    return build_grid_index(points, eps);
  }();
  local.index_seconds = phase_timer.seconds();

  if (mode == ClusterMode::kFused) {
    // Fused mode replicates the (whole) index across the devices and
    // interleaves the strided batches — no slab sharding applies, since
    // the kernels union global ids directly.
    const ClusterResult out = run_fused_mode(devices, index, eps, run_minpts,
                                             options.policy, local,
                                             total_timer);
    if (timings != nullptr) *timings = local;
    return out;
  }

  if (mode == ClusterMode::kStreaming &&
      options.policy.build_mode == TableBuildMode::kCsrTwoPass) {
    phase_timer.reset();
    StreamingDbscan consumer(index.size(), run_minpts);
    build_sharded_neighbor_table(devices, index, eps, options,
                                 &local.build_report, &consumer,
                                 /*materialize_table=*/false);
    local.gpu_table_seconds = phase_timer.seconds();

    phase_timer.reset();
    const ClusterResult indexed = consumer.finalize();
    local.dbscan_seconds = phase_timer.seconds();

    const StreamingDbscan::Stats& st = consumer.stats();
    local.streamed = true;
    local.consume_seconds = st.consume_seconds;
    local.finalize_seconds = st.finalize_seconds;
    local.overlap_fraction = st.overlap_fraction();
    local.streamed_edge_fraction = st.streamed_fraction();
    local.peak_consumer_bytes = consumer.peak_memory_bytes();
    local.total_seconds = total_timer.seconds();
    local.modeled_gpu_table_seconds =
        local.build_report.modeled_table_seconds;
    local.modeled_total_seconds =
        local.index_seconds +
        std::max(local.modeled_gpu_table_seconds,
                 st.max_thread_consume_seconds) +
        st.finalize_seconds;
    if (timings != nullptr) *timings = local;
    return unmap_labels(indexed, index.original_ids);
  }

  phase_timer.reset();
  const NeighborTable table = build_sharded_neighbor_table(
      devices, index, eps, options, &local.build_report);
  local.gpu_table_seconds = phase_timer.seconds();

  phase_timer.reset();
  const ClusterResult indexed = dbscan_neighbor_table(table, run_minpts);
  local.dbscan_seconds = phase_timer.seconds();

  local.total_seconds = total_timer.seconds();
  local.modeled_gpu_table_seconds = local.build_report.modeled_table_seconds;
  local.modeled_total_seconds = local.index_seconds +
                                local.modeled_gpu_table_seconds +
                                local.dbscan_seconds;
  if (timings != nullptr) *timings = local;
  return unmap_labels(indexed, index.original_ids);
}

}  // namespace hdbscan
