#include "core/hybrid_dbscan.hpp"

#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace hdbscan {

ClusterResult unmap_labels(const ClusterResult& indexed,
                           std::span<const PointId> original_ids) {
  ClusterResult out;
  out.num_clusters = indexed.num_clusters;
  out.labels.resize(indexed.labels.size());
  for (std::size_t i = 0; i < indexed.labels.size(); ++i) {
    out.labels[original_ids[i]] = indexed.labels[i];
  }
  return out;
}

ClusterResult hybrid_dbscan(cudasim::Device& device,
                            std::span<const Point2> points, float eps,
                            int minpts, HybridTimings* timings,
                            const BatchPolicy& policy) {
  HybridTimings local;
  WallTimer total_timer;

  WallTimer phase_timer;
  const GridIndex index = [&] {
    TRACE_SPAN("index", "grid_index n=%zu", points.size());
    return build_grid_index(points, eps);
  }();
  local.index_seconds = phase_timer.seconds();

  phase_timer.reset();
  NeighborTableBuilder builder(device, policy);
  const NeighborTable table = builder.build(index, eps, &local.build_report);
  local.gpu_table_seconds = phase_timer.seconds();

  phase_timer.reset();
  const ClusterResult indexed = dbscan_neighbor_table(table, minpts);
  local.dbscan_seconds = phase_timer.seconds();

  local.total_seconds = total_timer.seconds();
  local.modeled_gpu_table_seconds = local.build_report.modeled_table_seconds;
  local.modeled_total_seconds = local.index_seconds +
                                local.modeled_gpu_table_seconds +
                                local.dbscan_seconds;
  if (timings != nullptr) *timings = local;
  return unmap_labels(indexed, index.original_ids);
}

}  // namespace hdbscan
