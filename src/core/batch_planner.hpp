// The efficient batching scheme's planning logic (paper §VI).
//
// Given the sampled result-size estimate, the planner chooses the number
// of batches n_b and the per-stream GPU buffer size b_b:
//
//   n_b = ceil( (1 + alpha) * a_b / b_b )        (Eq. 1)
//
// where a_b = e_b / f is the estimated total result size and alpha is the
// over-estimation factor guarding against batch-size variance. Two buffer
// policies (paper values):
//   * static  — when a_b >= 3e8 pairs:  b_b = 1e8, alpha = 0.05;
//   * variable — otherwise: b_b = a_b * (1 + 2*alpha) / 3 with alpha
//     doubled, because small estimates are noisier and pinned-memory
//     allocation cost would dominate if the static buffer were used. With
//     three streams this yields exactly n_b = 3 (one batch per stream).
//
// The planner additionally respects a device-memory cap: if three stream
// buffers (plus the sort's scratch duplicate) would not fit alongside the
// index, b_b shrinks and n_b grows accordingly.
#pragma once

#include <cstdint>
#include <string>

#include "common/cancel.hpp"
#include "common/request_context.hpp"
#include "common/types.hpp"
#include "index/index_backend.hpp"

namespace hdbscan {

/// How each batch's neighbor pairs are materialized and shipped to the
/// host.
enum class TableBuildMode {
  /// Two-pass CSR (default): count kernel -> exclusive scan -> fill kernel
  /// writing values into exact per-point slots. No device sort, no per-pair
  /// keys on the wire (half the D2H bytes), overflow splits only when the
  /// exact batch size exceeds the buffer (known before the fill pass runs).
  kCsrTwoPass,
  /// Legacy pair pipeline (paper Alg. 4): kernel appends (key, value)
  /// pairs through the atomic cursor, device sort_by_key groups keys, the
  /// full pairs go over PCIe. Kept for A/B benchmarking and as the
  /// fallback the ablations compare against.
  kPairSort,
};

/// How the builder reacts to injected (or, on real hardware, actual)
/// device faults — the degradation ladder: retry transient kernel faults,
/// shrink batches on allocation failure, fail work over from a lost device
/// to the survivors, and finally fall back to the host builder when no
/// device remains.
struct ResiliencePolicy {
  /// Retries of one batch after TransientKernelFault before it becomes a
  /// hard error (the launch did no work, so a retry is always safe).
  unsigned max_transient_retries = 2;
  /// Times one batch may be split in two after DeviceOutOfMemory before
  /// the allocation failure becomes a hard error.
  unsigned max_alloc_retries = 3;
  /// Requeue a lost device's unfinished batches onto surviving devices.
  /// Safe because strided batches cover disjoint key sets and a batch's
  /// shard append happens only after every device op for it succeeded.
  bool failover = true;
  /// When every device is lost, finish the remaining batches with the
  /// host builder instead of throwing. Off by default so a single-device
  /// out-of-memory condition still surfaces as DeviceOutOfMemory.
  bool host_fallback = false;
};

struct BatchPolicy {
  double sample_fraction = 0.01;  ///< f, fraction of points sampled
  double alpha = 0.05;            ///< base over-estimation factor
  std::uint64_t static_threshold_pairs = 300'000'000;  ///< a_b >= this -> static
  std::uint64_t static_buffer_pairs = 100'000'000;     ///< b_b in static mode
  unsigned num_streams = 3;
  unsigned block_size = 256;
  bool use_shared_kernel = false;  ///< build T with GPUCalcShared instead
  /// When non-zero, skips the estimation kernel and uses this as a_b
  /// directly (callers that already know the result size, e.g. repeated
  /// runs; also how tests exercise the overflow-recovery path).
  std::uint64_t estimated_total_override = 0;
  /// Neighbor-table materialization strategy (see TableBuildMode).
  TableBuildMode build_mode = TableBuildMode::kCsrTwoPass;
  /// Which spatial index the traversal kernels run against. kBvh requires
  /// the CSR pipeline (build_mode kCsrTwoPass, no shared kernel) and
  /// whole-index builds — sharded slabs keep the grid. The estimation
  /// kernel always samples through the grid: the estimate is a property of
  /// the data, not of the traversal structure.
  IndexBackend index_backend = IndexBackend::kGrid;
  /// Candidate-pair traversal (see ScanMode in common/types.hpp). kHalf
  /// tests each pair once — roughly half the distance FLOPs and candidate
  /// reads of kFull — and the builder restores symmetry afterwards
  /// (device-side for the shared kernel, host-side expand for the batched
  /// pipelines). kFull is kept for A/B benchmarking.
  ScanMode scan_mode = ScanMode::kHalf;
  /// Deepest recursive overflow/out-of-memory split allowed: a batch may
  /// shrink to 1/2^max_split_depth of its planned size before the builder
  /// gives up on it. Guards against a pathological estimate looping
  /// forever.
  unsigned max_split_depth = 10;
  /// Fault-degradation behavior (see ResiliencePolicy).
  ResiliencePolicy resilience;
  /// Under kHalf with a materialized table, expand the merged forward rows
  /// into the full symmetric table at the end of build(). The sharded
  /// orchestrator turns this off: shard tables hold *local* ids whose
  /// ghost-key back rows would collide across shards, so expansion must
  /// run once, globally, after every shard is translated and absorbed.
  bool expand_half = true;
  /// Extra metric labels ("key=value,key=value") for this builder's
  /// published build counters/gauges — the sharded orchestrator tags each
  /// shard's report "shard=<i>" so concurrent builds don't overwrite one
  /// another's gauges. Empty = unlabeled (the fleet-level series).
  std::string metrics_labels;
  /// Optional cooperative-cancellation hook (not owned; must outlive the
  /// build). Workers poll it at batch granularity; a cancelled token turns
  /// into OperationCancelled riding the hard-error unwind, so pooled
  /// buffers and device queues are released promptly. nullptr = never
  /// cancelled.
  const CancelToken* cancel = nullptr;
  /// Request attribution installed on every thread that works for this
  /// build (stream pumps, shard workers, host-builder threads), so their
  /// spans carry the request id the service minted (DESIGN.md §14).
  /// Default-constructed = unattributed.
  RequestContext trace;
  /// The quality knob (DESIGN.md §16). kSubsampled makes every traversal
  /// kernel — grid and BVH, batched and fused — apply the seeded per-pair
  /// Bernoulli filter before the candidate's point read and distance test;
  /// the orchestrators rescale minpts by the sample rate. kCellGraph is
  /// handled above the builder (core/cell_graph) and never reaches the
  /// batch kernels.
  QualitySpec quality;
};

struct BatchPlan {
  std::uint64_t estimated_total_pairs = 0;  ///< a_b
  std::uint64_t buffer_pairs = 0;           ///< b_b
  std::uint32_t num_batches = 0;            ///< n_b
  double alpha_used = 0.0;
  bool static_buffer = false;
};

/// Plans the batched execution. `estimated_total_pairs` is a_b = e_b / f;
/// `max_buffer_pairs` caps b_b (0 = uncapped) from device-memory headroom.
[[nodiscard]] BatchPlan plan_batches(std::uint64_t estimated_total_pairs,
                                     const BatchPolicy& policy,
                                     std::uint64_t max_buffer_pairs = 0);

}  // namespace hdbscan
